package flock_test

// Allocation-regression gate for the pooled hot path. The zero-copy
// refactor took the synchronous echo exchange from 17 allocs/op down to 2;
// this test pins a ceiling so a change that quietly reintroduces
// per-message allocation fails CI rather than showing up later as GC
// pressure under load.

import (
	"testing"

	"flock"
)

// allocCeiling is the allowed allocations per echo Call+Release.
// Measured steady state is 2 allocs/op; the ceiling leaves headroom for
// mallocs by the dispatcher/server goroutines that AllocsPerRun's
// process-wide counting attributes to the loop, while staying far below
// the pre-pool 17.
const allocCeiling = 8

func TestEchoAllocRegressionGate(t *testing.T) {
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()
	server, err := net.NewNode(1, flock.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	server.RegisterHandler(1, func(req []byte) []byte { return req })
	if err := server.Serve(); err != nil {
		t.Fatal(err)
	}
	client, err := net.NewNode(2, flock.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := client.Connect(1)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()
	payload := make([]byte, 64)

	// Warm the pool free lists and the connection's scratch buffers so the
	// measured window is steady state, not first-touch growth.
	for i := 0; i < 200; i++ {
		r, err := th.Call(1, payload)
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	}

	avg := testing.AllocsPerRun(500, func() {
		r, err := th.Call(1, payload)
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	})
	t.Logf("echo allocs/op: %.2f (ceiling %d)", avg, allocCeiling)
	if avg > allocCeiling {
		t.Fatalf("allocation regression: %.2f allocs per echo exchange, ceiling %d — the pooled hot path is leaking allocations",
			avg, allocCeiling)
	}
}
