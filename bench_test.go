package flock_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Figure benchmarks drive the deterministic DES models
// (internal/model) in quick mode and report the headline metric of the
// figure (throughput in Mops, or latency in µs) as custom benchmark
// metrics; run `go run ./cmd/flockbench -run <id>` for the full sweeps
// recorded in EXPERIMENTS.md. The Live* benchmarks exercise the real
// concurrent library: the TCQ-vs-spinlock comparison of §1 and the RPC
// hot paths.

import (
	"encoding/binary"
	"sync"
	"testing"

	"flock"
	"flock/internal/baseline/lockshare"
	"flock/internal/fabric"
	"flock/internal/kvstore"
	"flock/internal/model"
	"flock/internal/rnic"
)

// reportRows turns figure rows into benchmark metrics keyed by
// series/x so `go test -bench` output documents the reproduced shape.
func reportRows(b *testing.B, rows []model.Row, headline func(model.Row) (float64, string)) {
	b.Helper()
	for _, r := range rows {
		v, unit := headline(r)
		b.ReportMetric(v, r.Series+"/x"+trimFloat(r.X)+"_"+unit)
	}
}

func trimFloat(f float64) string {
	s := ""
	n := int(f)
	if n == 0 {
		return "0"
	}
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func mops(r model.Row) (float64, string) { return r.Mops, "Mops" }

// benchFigure runs a figure generator once per b.N loop (the models are
// deterministic, so N=1 is typical) and reports the headline series.
func benchFigure(b *testing.B, gen func(bool) []model.Row, headline func(model.Row) (float64, string), keep func(model.Row) bool) {
	var rows []model.Row
	for i := 0; i < b.N; i++ {
		rows = gen(true)
	}
	if keep != nil {
		var filtered []model.Row
		for _, r := range rows {
			if keep(r) {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
	}
	reportRows(b, rows, headline)
}

// BenchmarkTable1 validates the capability matrix (Table 1); it is a
// semantic table, so the "benchmark" asserts rather than measures.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !rnic.RC.Supports(rnic.OpFetchAdd) || rnic.UD.Supports(rnic.OpRead) || rnic.UC.Supports(rnic.OpCmpSwap) {
			b.Fatal("capability matrix violated")
		}
	}
}

// BenchmarkFig2a reproduces the RC read QP sweep (NIC cache cliff).
func BenchmarkFig2a(b *testing.B) { benchFigure(b, model.Fig2a, mops, nil) }

// BenchmarkFig2b reproduces the UD sender sweep (CPU saturation).
func BenchmarkFig2b(b *testing.B) { benchFigure(b, model.Fig2b, mops, nil) }

// BenchmarkFig6 reproduces the FLock-vs-eRPC throughput sweep (the
// one-outstanding panel; flockbench prints all three).
func BenchmarkFig6(b *testing.B) {
	benchFigure(b, model.Fig6, mops, func(r model.Row) bool { return r.Figure == "fig6a" })
}

// BenchmarkFig7 reports the median-latency view of the same sweep.
func BenchmarkFig7(b *testing.B) {
	benchFigure(b, model.Fig6,
		func(r model.Row) (float64, string) { return r.P50us, "p50us" },
		func(r model.Row) bool { return r.Figure == "fig6a" })
}

// BenchmarkFig8 reports the tail-latency view of the same sweep.
func BenchmarkFig8(b *testing.B) {
	benchFigure(b, model.Fig6,
		func(r model.Row) (float64, string) { return r.P99us, "p99us" },
		func(r model.Row) bool { return r.Figure == "fig6a" })
}

// BenchmarkFig9 reproduces the QP-sharing comparison (48-thread column).
func BenchmarkFig9(b *testing.B) {
	benchFigure(b, model.Fig9, mops, func(r model.Row) bool { return r.X == 48 })
}

// BenchmarkFig10 reproduces the coalescing on/off comparison.
func BenchmarkFig10(b *testing.B) { benchFigure(b, model.Fig10, mops, nil) }

// BenchmarkFig11 reproduces the thread-scheduling on/off comparison.
func BenchmarkFig11(b *testing.B) { benchFigure(b, model.Fig11, mops, nil) }

// BenchmarkFig12 reproduces the node-scalability sweep (368 clients).
func BenchmarkFig12(b *testing.B) {
	benchFigure(b, model.Fig12, mops, func(r model.Row) bool { return r.X == 368 })
}

// BenchmarkFig14 reproduces TATP: FLockTX vs FaSST (16-thread column).
func BenchmarkFig14(b *testing.B) {
	benchFigure(b, model.Fig14,
		func(r model.Row) (float64, string) { return r.Mops, "Mtps" },
		func(r model.Row) bool { return r.X == 16 })
}

// BenchmarkFig15 reproduces Smallbank: FLockTX vs FaSST (8 threads).
func BenchmarkFig15(b *testing.B) {
	benchFigure(b, model.Fig15,
		func(r model.Row) (float64, string) { return r.Mops, "Mtps" },
		func(r model.Row) bool { return r.X == 8 })
}

// BenchmarkFig16 reproduces the HydraList throughput sweep (8 outstanding,
// 32 threads).
func BenchmarkFig16(b *testing.B) {
	benchFigure(b, model.Fig16, mops,
		func(r model.Row) bool { return r.Figure == "fig16c" && r.X == 32 })
}

// BenchmarkFig17 reports HydraList per-class median latency.
func BenchmarkFig17(b *testing.B) {
	benchFigure(b, model.Fig16,
		func(r model.Row) (float64, string) { return r.P50us, "p50us" },
		func(r model.Row) bool { return r.Figure == "fig17c" && r.X == 32 })
}

// BenchmarkFig18 reports HydraList per-class tail latency.
func BenchmarkFig18(b *testing.B) {
	benchFigure(b, model.Fig16,
		func(r model.Row) (float64, string) { return r.P99us, "p99us" },
		func(r model.Row) bool { return r.Figure == "fig17c" && r.X == 32 })
}

// --- Live-library microbenchmarks -----------------------------------------

// liveCluster builds a real server+client pair for the live benches.
func liveCluster(b *testing.B, opts flock.Options) (*flock.Node, *flock.Conn, func()) {
	b.Helper()
	net := flock.NewNetwork(flock.FabricConfig{})
	server, err := net.NewNode(1, opts, 0)
	if err != nil {
		b.Fatal(err)
	}
	server.RegisterHandler(1, func(req []byte) []byte { return req })
	if err := server.Serve(); err != nil {
		b.Fatal(err)
	}
	client, err := net.NewNode(2, opts, 0)
	if err != nil {
		b.Fatal(err)
	}
	conn, err := client.Connect(1)
	if err != nil {
		b.Fatal(err)
	}
	return server, conn, net.Close
}

// BenchmarkLiveRPCEcho measures the live library's synchronous echo path.
func BenchmarkLiveRPCEcho(b *testing.B) {
	_, conn, closeNet := liveCluster(b, flock.Options{})
	defer closeNet()
	th := conn.RegisterThread()
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.Call(1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveRPCEchoParallel runs 8 threads over 1 shared QP.
func BenchmarkLiveRPCEchoParallel(b *testing.B) {
	server, conn, closeNet := liveCluster(b, flock.Options{QPsPerConn: 1})
	defer closeNet()
	var mu sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		th := conn.RegisterThread()
		mu.Unlock()
		payload := make([]byte, 64)
		for pb.Next() {
			if _, err := th.Call(1, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	m := server.Metrics()
	if m.MsgsIn > 0 {
		b.ReportMetric(float64(m.ItemsIn)/float64(m.MsgsIn), "coalesce-degree")
	}
}

// BenchmarkLiveOneSidedRead measures the live fl_read path.
func BenchmarkLiveOneSidedRead(b *testing.B) {
	_, conn, closeNet := liveCluster(b, flock.Options{})
	defer closeNet()
	region, err := conn.AttachMemRegion(4096)
	if err != nil {
		b.Fatal(err)
	}
	th := conn.RegisterThread()
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := th.Read(region, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveFetchAdd measures the live remote-atomic path.
func BenchmarkLiveFetchAdd(b *testing.B) {
	_, conn, closeNet := liveCluster(b, flock.Options{})
	defer closeNet()
	region, err := conn.AttachMemRegion(64)
	if err != nil {
		b.Fatal(err)
	}
	th := conn.RegisterThread()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.FetchAdd(region, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCQVsSpinlock is the §1 claim on real goroutines: FLock
// synchronization vs a FaRM-style spinlock around one shared QP, both
// carrying 8 threads of 64-byte echo over the same software RNIC.
func BenchmarkTCQVsSpinlock(b *testing.B) {
	const threads = 8
	b.Run("flock-tcq", func(b *testing.B) {
		_, conn, closeNet := liveCluster(b, flock.Options{QPsPerConn: 1})
		defer closeNet()
		ths := make([]*flock.Thread, threads)
		for i := range ths {
			ths[i] = conn.RegisterThread()
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N/threads + 1
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(th *flock.Thread) {
				defer wg.Done()
				payload := make([]byte, 64)
				for j := 0; j < per; j++ {
					if _, err := th.Call(1, payload); err != nil {
						b.Error(err)
						return
					}
				}
			}(ths[i])
		}
		wg.Wait()
	})
	b.Run("spinlock", func(b *testing.B) {
		fab := fabric.New(fabric.Config{})
		sdev, err := rnic.NewDevice(fab, rnic.Config{Node: 0})
		if err != nil {
			b.Fatal(err)
		}
		defer sdev.Close()
		cdev, err := rnic.NewDevice(fab, rnic.Config{Node: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer cdev.Close()
		cfg := lockshare.Config{ThreadsPerQP: threads, Spin: true}
		srv := lockshare.NewServer(sdev, cfg)
		defer srv.Close()
		srv.RegisterHandler(1, func(req []byte) []byte { return req })
		cl := lockshare.NewClient(cdev, cfg, srv)
		ths := make([]*lockshare.Thread, threads)
		for i := range ths {
			th, err := cl.RegisterThread()
			if err != nil {
				b.Fatal(err)
			}
			ths[i] = th
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N/threads + 1
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(th *lockshare.Thread) {
				defer wg.Done()
				payload := make([]byte, 64)
				for j := 0; j < per; j++ {
					if _, err := th.Call(1, payload); err != nil {
						b.Error(err)
						return
					}
				}
			}(ths[i])
		}
		wg.Wait()
	})
}

// --- Allocation benchmarks (pooled hot path) -------------------------------

// BenchmarkEchoAllocs measures steady-state allocations on the synchronous
// echo path with the response lease recycled after every call. Before the
// registered-memory pool this path cost 17 allocs/op (1372 B/op); the
// pooled path holds it in the low single digits — the alloc-gate test in
// alloc_test.go enforces the ceiling.
func BenchmarkEchoAllocs(b *testing.B) {
	_, conn, closeNet := liveCluster(b, flock.Options{})
	defer closeNet()
	th := conn.RegisterThread()
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := th.Call(1, payload)
		if err != nil {
			b.Fatal(err)
		}
		r.Release()
	}
}

// BenchmarkKVAllocs measures allocations on a put+get pair against a
// kvstore arena served over FLock RPC — the realistic "handler touches
// state" shape, as opposed to pure echo. Handlers run inline on the
// server dispatcher (Workers=0), so the get handler can reuse one scratch
// value buffer: the response staging copies it out synchronously before
// the dispatcher moves on.
func BenchmarkKVAllocs(b *testing.B) {
	const capacity, valSize = 256, 8
	server, conn, closeNet := liveCluster(b, flock.Options{})
	defer closeNet()
	arena, err := server.ExportMR("bench-kv", kvstore.ArenaSize(capacity, valSize))
	if err != nil {
		b.Fatal(err)
	}
	store, err := kvstore.New(arena, capacity, valSize)
	if err != nil {
		b.Fatal(err)
	}
	server.RegisterHandler(2, func(req []byte) []byte { // put: key u64 | val
		if store.Apply(binary.LittleEndian.Uint64(req[:8]), req[8:16]) != nil {
			return nil
		}
		return req[:1]
	})
	getScratch := make([]byte, valSize)
	server.RegisterHandler(3, func(req []byte) []byte { // get: key u64
		if _, err := store.Get(binary.LittleEndian.Uint64(req[:8]), getScratch); err != nil {
			return nil
		}
		return getScratch
	})
	th := conn.RegisterThread()
	req := make([]byte, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(req[:8], uint64(i)%capacity)
		binary.LittleEndian.PutUint64(req[8:], uint64(i)+1)
		r, err := th.Call(2, req)
		if err != nil {
			b.Fatal(err)
		}
		r.Release()
		if r, err = th.Call(3, req[:8]); err != nil {
			b.Fatal(err)
		}
		r.Release()
	}
}
