#!/bin/sh
# ci.sh — the checks every change must pass, in the order CI runs them.
# The race run is scoped to the concurrent packages (the FLock core, the
# software RNIC, and the buffer pool); the model/simulation packages are
# single-threaded and dominate wall-clock, so racing them buys nothing.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core ./internal/rnic ./internal/mem ./internal/telemetry ./internal/check ./internal/cluster

# Mutation self-test: rebuild the schedule explorer with the eight
# known-bad protocol variants (flockmut build tag) and assert the
# linearizability checker flags every one of them — the premature-ack
# mutants (ack-before-replicate, ack-before-batch-durable) run in the
# replica simulator, the rest in the combining-path and cluster
# simulators. This is the gate that proves
# the harness can actually see bugs — a checker that passes the
# mutants is itself broken.
go test -tags flockmut -race ./internal/check

# Coverage floor for the FLock core: the concurrency harness (ISSUE 4)
# raised internal/core to ~85% statement coverage; hold the floor at
# 70% so regressions in test reach fail loudly rather than rot quietly.
cov=$(go test -count=1 -cover ./internal/core | awk '{for (i=1;i<=NF;i++) if ($i=="coverage:") print $(i+1)}' | tr -d '%')
awk -v c="$cov" 'BEGIN { if (c+0 < 70.0) { print "internal/core coverage " c "% below 70% floor"; exit 1 } }'

# Allocation-regression gate: the pooled hot path must stay near its
# measured 2 allocs/op echo exchange (ceiling enforced by the test),
# with telemetry registered and publishing — observability is not
# allowed to cost the hot path allocations.
go test -run TestEchoAllocRegressionGate -count=1 .

# Telemetry-overhead gate: a counter increment stays in the
# tens-of-nanoseconds range (measured ~9ns, gated at 50ns for CI noise)
# and every hot-path telemetry op — counter inc, gauge set, histogram
# observe, disabled trace record — is allocation-free.
go test -run 'TestCounterOverheadGate|TestHotPathNoAlloc' -count=1 ./internal/telemetry

# Overload-chaos shard (ISSUE 6). Three gates: (1) the seeded
# overload/dedup/drain/breaker tests run under the package leak gate,
# which fails the binary if a single pooled lease is outstanding at
# exit; (2) a live flockload run under admission pressure plus a lossy
# fabric must report nonzero rejected/retries telemetry (vacuity check
# — a shard that never sheds or retries proves nothing) and drain every
# node to zero leases; (3) the flockbench goodput sweep must hold the
# overload-chaos point within 20% of the no-fault plateau (no
# congestion collapse) while regenerating BENCH_PR6.json.
go test -run 'TestOverload|TestDedup|TestHedged|TestDrain|TestBreaker' -count=1 ./internal/core
out=$(go run ./cmd/flockload -overload 4 -retry 6 -workers 2 -threads 8 -dur 500ms -faults seed=6,rc-loss=0.01)
echo "$out"
echo "$out" | grep -Eq 'resilience +rejected=[1-9]'
echo "$out" | grep -Eq ' retries=[1-9]'
echo "$out" | grep -q 'leases=0'
bench=$(go run ./cmd/flockbench -run overload -json BENCH_PR6.json)
echo "$bench"
echo "$bench" | awk '/chaos-goodput/ { found=1; r=$2; sub(/ratio=/,"",r); if (r+0 < 0.80) { print "chaos goodput ratio " r " below 0.80 gate"; exit 1 } } END { exit found ? 0 : 1 }'

# Pipelining shard (ISSUE 7). Two gates on the unified completion path:
# (1) the flockbench depth sweep must show the async pipeline actually
# pipelining — depth-8 goodput at least 1.5× depth-1 — while regenerating
# BENCH_PR7.json; (2) the echo exchange must still meet the allocation
# ceiling with the pending-call table on the hot path (the sync gate above
# already ran; re-run it here so this shard stands alone in a sharded CI).
pbench=$(go run ./cmd/flockbench -run pipeline -json BENCH_PR7.json)
echo "$pbench"
echo "$pbench" | awk '/pipeline-goodput/ { found=1; r=$2; sub(/ratio=/,"",r); if (r+0 < 1.50) { print "pipeline goodput ratio " r " below 1.50 gate"; exit 1 } } END { exit found ? 0 : 1 }'
go test -run TestEchoAllocRegressionGate -count=1 .

# Cluster shard (ISSUE 8). Four gates on the cluster layer: (1) the live
# migration-chaos test — concurrent clients, live shard moves, a flapping
# fabric — must stay linearizable under the package leak gate; (2) the
# check-package cluster simulator must hold 250 seeded schedules (node
# flaps + stretched handoffs across live migrations) linearizable, with
# vacuity asserts that shards actually moved and messages actually
# dropped; (3) a live flockload cluster run must complete its mid-window
# migrations and drain every node to zero leases; (4) the flockbench
# scaling sweep must show aggregate KV goodput at 4 members at least
# 2.5× 1 member while regenerating BENCH_PR8.json. The stale-shard-serve
# mutant is covered by the flockmut run above.
go test -run TestMigrationChaosLinearizable -count=1 ./internal/cluster
go test -run 'TestCluster|TestMigrationScheduleShape' -count=1 ./internal/check
cout=$(go run ./cmd/flockload -cluster 4 -shards 16 -threads 8 -dur 1s)
echo "$cout"
echo "$cout" | grep -Eq 'membership +live=4/4 moves=2'
echo "$cout" | grep -q 'leases=0'
cbench=$(go run ./cmd/flockbench -run cluster -json BENCH_PR8.json)
echo "$cbench"
echo "$cbench" | awk '/cluster-goodput/ { found=1; r=$2; sub(/ratio=/,"",r); if (r+0 < 2.50) { print "cluster goodput ratio " r " below 2.50 gate"; exit 1 } } END { exit found ? 0 : 1 }'

# Replication shard (ISSUEs 9 + 10). Five gates on group-commit
# primary–backup replication: (1) the live failover and group-commit
# suites — concurrent writers, a shard primary killed mid-traffic,
# backups promoted on an epoch bump, batches cut on epoch and death
# boundaries, reads gated on uncommitted puts — must keep every
# acknowledged write readable, the whole history linearizable, and
# replicas fingerprint-identical, under the package leak gate; (2) the
# check-package replica simulator must hold 250 seeded schedules
# (guaranteed mid-horizon primary kill + flaps) against the strict
# register model, with vacuity asserts that failovers actually
# promoted, forwards actually flowed, and frames actually coalesced
# (multi-entry batches happened); (3) a live flockload failover run
# must detect the kill, promote every victim-owned shard, show nonzero
# batched replication forwards, and drain every node to zero leases;
# (4) the flockbench replication sweep must hold R=2 put goodput above
# 0.5x unreplicated (group commit amortizes the backup fan-out; PR 9's
# per-put sync forward priced the same point at ~0.2) while
# regenerating BENCH_PR10.json; (5) internal/cluster holds the same
# 70% coverage floor as internal/core. The premature-ack mutants are
# covered by the flockmut run above.
go test -run 'TestFailoverPreservesAckedWrites|TestReplicatedPutReachesBackups|TestReplicationEpochFence|TestGroupCommit|TestReplicateTypedErrors|TestCutBatch|TestReplFrame' -count=1 ./internal/cluster
go test -run 'TestClusterReplica|TestReplica' -count=1 ./internal/check
rout=$(go run ./cmd/flockload -cluster 4 -shards 16 -replicas 2 -threads 8 -dur 1s)
echo "$rout"
echo "$rout" | grep -Eq 'failover +victim=n[0-9]+ shards=[1-9][0-9]* promoted=[1-9]'
echo "$rout" | grep -Eq 'replication replicas=2 forwards=[1-9]'
echo "$rout" | grep -Eq 'batches=[1-9]'
echo "$rout" | grep -q 'leases=0'
rbench=$(go run ./cmd/flockbench -run replication -json BENCH_PR10.json)
echo "$rbench"
echo "$rbench" | awk '/replication-goodput/ { found=1; r=$2; sub(/ratio=/,"",r); if (r+0 < 0.5) { print "replication goodput ratio " r " below 0.5 gate"; exit 1 } } END { exit found ? 0 : 1 }'
ccov=$(go test -count=1 -cover ./internal/cluster | awk '{for (i=1;i<=NF;i++) if ($i=="coverage:") print $(i+1)}' | tr -d '%')
awk -v c="$ccov" 'BEGIN { if (c+0 < 70.0) { print "internal/cluster coverage " c "% below 70% floor"; exit 1 } }'

# One-iteration benchmark smoke: every benchmark must still build and run
# (catches bit-rot in the bench harness without paying full measurement
# time).
go test -run '^$' -bench . -benchtime=1x ./...
