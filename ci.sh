#!/bin/sh
# ci.sh — the checks every change must pass, in the order CI runs them.
# The race run is scoped to the concurrent packages (the FLock core, the
# software RNIC, and the buffer pool); the model/simulation packages are
# single-threaded and dominate wall-clock, so racing them buys nothing.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core ./internal/rnic ./internal/mem ./internal/telemetry ./internal/check

# Mutation self-test: rebuild the schedule explorer with the three
# known-bad protocol variants (flockmut build tag) and assert the
# linearizability checker flags every one of them. This is the gate
# that proves the harness can actually see bugs — a checker that
# passes the mutants is itself broken.
go test -tags flockmut -race ./internal/check

# Coverage floor for the FLock core: the concurrency harness (ISSUE 4)
# raised internal/core to ~85% statement coverage; hold the floor at
# 70% so regressions in test reach fail loudly rather than rot quietly.
cov=$(go test -count=1 -cover ./internal/core | awk '{for (i=1;i<=NF;i++) if ($i=="coverage:") print $(i+1)}' | tr -d '%')
awk -v c="$cov" 'BEGIN { if (c+0 < 70.0) { print "internal/core coverage " c "% below 70% floor"; exit 1 } }'

# Allocation-regression gate: the pooled hot path must stay near its
# measured 2 allocs/op echo exchange (ceiling enforced by the test),
# with telemetry registered and publishing — observability is not
# allowed to cost the hot path allocations.
go test -run TestEchoAllocRegressionGate -count=1 .

# Telemetry-overhead gate: a counter increment stays in the
# tens-of-nanoseconds range (measured ~9ns, gated at 50ns for CI noise)
# and every hot-path telemetry op — counter inc, gauge set, histogram
# observe, disabled trace record — is allocation-free.
go test -run 'TestCounterOverheadGate|TestHotPathNoAlloc' -count=1 ./internal/telemetry

# One-iteration benchmark smoke: every benchmark must still build and run
# (catches bit-rot in the bench harness without paying full measurement
# time).
go test -run '^$' -bench . -benchtime=1x ./...
