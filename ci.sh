#!/bin/sh
# ci.sh — the checks every change must pass, in the order CI runs them.
# The race run is scoped to the concurrent packages (the FLock core and
# the software RNIC); the model/simulation packages are single-threaded
# and dominate wall-clock, so racing them buys nothing.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core ./internal/rnic
