// Command flockbench regenerates the tables and figures of "Birds of a
// Feather Flock Together: Scaling RDMA RPCs with FLock" (SOSP 2021).
//
// Usage:
//
//	flockbench -run all            # everything (several minutes)
//	flockbench -run fig6           # one experiment
//	flockbench -run fig6 -quick    # shortened simulation windows
//	flockbench -list               # list experiment IDs
//
// Figure experiments run on the deterministic discrete-event models in
// internal/model; table-1, the sync microbenchmark, and the credit/
// signaling ablations run on the real concurrent library. Output is one
// row per data point, aligned for diffing against EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"flock/internal/baseline/lockshare"
	"flock/internal/baseline/udrpc"
	"flock/internal/cluster"
	"flock/internal/core"
	"flock/internal/fabric"
	"flock/internal/model"
	"flock/internal/rnic"
)

// experiment is one runnable unit.
type experiment struct {
	name  string
	desc  string
	run   func(quick bool)
	alias string // non-empty: same runs as this experiment (skipped in -run all)
}

func main() {
	runFlag := flag.String("run", "", "experiment ID to run, or 'all'")
	quick := flag.Bool("quick", false, "shortened measurement windows")
	list := flag.Bool("list", false, "list experiment IDs")
	csvPath := flag.String("csv", "", "also append figure rows as CSV to this file")
	jsonPath := flag.String("json", "", "also write all results as a JSON document to this file")
	flag.Parse()
	jsonOut.enabled = *jsonPath != ""
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		csvSink = f
		fmt.Fprintln(f, "figure,series,x,mops,p50us,p99us,degree,cpu")
	}

	exps := experiments()
	if *list || *runFlag == "" {
		fmt.Println("experiments:")
		for _, e := range exps {
			fmt.Printf("  %-18s %s\n", e.name, e.desc)
		}
		if *runFlag == "" && !*list {
			os.Exit(2)
		}
		return
	}
	if *runFlag == "all" {
		for _, e := range exps {
			if e.alias != "" {
				fmt.Printf("== %s: %s (same runs as %s; skipped)\n\n", e.name, e.desc, e.alias)
				continue
			}
			fmt.Printf("== %s: %s\n", e.name, e.desc)
			jsonOut.cur = e.name
			e.run(*quick)
			fmt.Println()
		}
		writeJSONOut(*jsonPath, *quick)
		return
	}
	for _, e := range exps {
		if e.name == *runFlag {
			fmt.Printf("== %s: %s\n", e.name, e.desc)
			jsonOut.cur = e.name
			e.run(*quick)
			writeJSONOut(*jsonPath, *quick)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *runFlag)
	os.Exit(2)
}

// csvSink, when set, receives every figure row in CSV form.
var csvSink *os.File

// benchRecord is one machine-readable data point for -json. Figure rows
// carry figure/series/x straight from the model row; live-library
// experiments attach the telemetry snapshot of the run that produced them.
type benchRecord struct {
	Experiment string             `json:"experiment"`
	Figure     string             `json:"figure,omitempty"`
	Series     string             `json:"series,omitempty"`
	X          float64            `json:"x"`
	Metrics    map[string]float64 `json:"metrics"`
	Telemetry  json.RawMessage    `json:"telemetry,omitempty"`
}

// jsonOut accumulates benchRecords across experiments; main writes the
// document once at exit. cur is only written from the sequential main
// loop; the mutex covers record emission from experiment bodies.
var jsonOut struct {
	enabled       bool
	cur           string
	mu            sync.Mutex
	records       []benchRecord
	lastTelemetry json.RawMessage
}

// emitRecord appends one data point, stamping the current experiment.
func emitRecord(rec benchRecord) {
	if !jsonOut.enabled {
		return
	}
	jsonOut.mu.Lock()
	defer jsonOut.mu.Unlock()
	rec.Experiment = jsonOut.cur
	jsonOut.records = append(jsonOut.records, rec)
}

// emitModelRow converts a DES figure row into a benchRecord.
func emitModelRow(r model.Row) {
	emitRecord(benchRecord{
		Figure: r.Figure, Series: r.Series, X: r.X,
		Metrics: map[string]float64{
			"mops": r.Mops, "p50_us": r.P50us, "p99_us": r.P99us,
			"degree": r.Degree, "cpu": r.CPU,
		},
	})
}

// stashTelemetry records the telemetry snapshot of a just-finished live
// run; the caller's next emitRecord picks it up via takeTelemetry.
func stashTelemetry(nw *core.Network) {
	if !jsonOut.enabled {
		return
	}
	b, err := json.Marshal(nw.TelemetrySnapshot())
	if err != nil {
		return
	}
	jsonOut.mu.Lock()
	jsonOut.lastTelemetry = b
	jsonOut.mu.Unlock()
}

// takeTelemetry returns and clears the stashed snapshot.
func takeTelemetry() json.RawMessage {
	jsonOut.mu.Lock()
	defer jsonOut.mu.Unlock()
	b := jsonOut.lastTelemetry
	jsonOut.lastTelemetry = nil
	return b
}

// writeJSONOut writes the accumulated records as one JSON document.
func writeJSONOut(path string, quick bool) {
	if path == "" {
		return
	}
	doc := struct {
		Tool    string        `json:"tool"`
		Quick   bool          `json:"quick"`
		Records []benchRecord `json:"records"`
	}{Tool: "flockbench", Quick: quick, Records: jsonOut.records}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records to %s\n", len(jsonOut.records), path)
}

// experiments enumerates every table/figure reproduction and ablation.
func experiments() []experiment {
	rows := func(f func(bool) []model.Row) func(bool) {
		return func(quick bool) {
			for _, r := range f(quick) {
				fmt.Println(r)
				if csvSink != nil {
					fmt.Fprintf(csvSink, "%s,%s,%g,%.3f,%.2f,%.2f,%.3f,%.3f\n",
						r.Figure, r.Series, r.X, r.Mops, r.P50us, r.P99us, r.Degree, r.CPU)
				}
				emitModelRow(r)
			}
		}
	}
	return []experiment{
		{"table1", "transport capability matrix (Table 1)", runTable1, ""},
		{"fig2a", "RDMA read (RC) throughput vs #QPs — NIC cache cliff", rows(model.Fig2a), ""},
		{"fig2b", "UD RPC throughput vs #senders — server CPU saturation", rows(model.Fig2b), ""},
		{"fig6", "throughput: FLock vs eRPC, 1–48 thr, outstanding 1/4/8", rows(model.Fig6), ""},
		{"fig7", "median latency view of the fig6 sweep", rows(model.Fig6), "fig6"},
		{"fig8", "99th-percentile latency view of the fig6 sweep", rows(model.Fig6), "fig6"},
		{"fig9", "FLock vs no-sharing vs FaRM-style lock sharing", rows(model.Fig9), ""},
		{"fig10", "coalescing on/off at 32 thr, outstanding 1/4/8", rows(model.Fig10), ""},
		{"fig11", "sender-side thread scheduling on/off, large payloads", rows(model.Fig11), ""},
		{"fig12", "node scalability: 23–368 clients, 3 QP configs", rows(model.Fig12), ""},
		{"fig14", "TATP: FLockTX vs FaSST, 20 clients, 3 servers", rows(model.Fig14), ""},
		{"fig15", "Smallbank: FLockTX vs FaSST", rows(model.Fig15), ""},
		{"fig16", "HydraList 90% get / 10% scan: FLock vs eRPC", rows(model.Fig16), ""},
		{"fig17", "HydraList per-class latency view of the fig16 sweep", rows(model.Fig16), "fig16"},
		{"fig18", "HydraList tail-latency view of the fig16 sweep", rows(model.Fig16), "fig16"},
		{"ablation-maxaqp", "MAX_AQP sweep (why 256, §5.1)", rows(model.AblationMaxAQP), ""},
		{"ablation-batch", "leader combining bound sweep (§4.2)", rows(model.AblationBatch), ""},
		{"ablation-window", "combining window sweep (degree vs latency)", rows(model.AblationInterval), ""},
		{"ablation-credits", "credit budget C sweep on the live library", runCreditAblation, ""},
		{"ablation-udcoalesce", "UD response coalescing (§9 extension) on the live library", runUDCoalesceAblation, ""},
		{"ablation-signal", "selective signaling sweep on the live library", runSignalAblation, ""},
		{"sync-micro", "live TCQ vs spinlock QP sharing (§1's 2.3× claim)", runSyncMicro, ""},
		{"overload", "goodput vs offered load: resilience layer on vs off, plus overload-chaos ratio", runOverloadSweep, ""},
		{"pipeline", "goodput vs async pipeline depth: CallAsync depths 1/2/4/8/16 vs sync Call baseline", runPipelineSweep, ""},
		{"cluster", "aggregate sharded-KV goodput vs cluster size: 1/2/4/8 members behind the shard router", runClusterScaling, ""},
		{"replication", "replicated-write overhead: put goodput vs replica factor R=0/1/2 on 4 members", runReplicationSweep, ""},
	}
}

// runTable1 prints the capability matrix straight from the substrate.
func runTable1(bool) {
	ops := []rnic.Opcode{rnic.OpRead, rnic.OpFetchAdd, rnic.OpCmpSwap, rnic.OpWrite, rnic.OpSend}
	fmt.Printf("%-4s", "")
	for _, op := range ops {
		fmt.Printf(" %-10s", op)
	}
	fmt.Println(" MTU")
	for _, tr := range []rnic.Transport{rnic.RC, rnic.UC, rnic.UD} {
		fmt.Printf("%-4s", tr)
		for _, op := range ops {
			mark := "x"
			if tr.Supports(op) {
				mark = "v"
			}
			fmt.Printf(" %-10s", mark)
		}
		mtu := "2GB"
		if tr == rnic.UD {
			mtu = "4KB"
		}
		fmt.Println(" " + mtu)
	}
}

// liveEchoThroughput runs the real library: nClients client nodes × nThreads
// goroutines of 64-byte echo against one server for the wall duration.
func liveEchoThroughput(opts core.Options, nClients, nThreads, window int, dur time.Duration) (mops float64, m core.NodeMetrics) {
	nw := core.NewNetwork(fabric.Config{})
	defer nw.Close()
	server, err := nw.NewNode(0, opts, 0)
	if err != nil {
		panic(err)
	}
	server.RegisterHandler(1, func(req []byte) []byte { return req })
	server.Serve()

	var ops atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < nClients; c++ {
		client, err := nw.NewNode(fabric.NodeID(c+1), opts, 0)
		if err != nil {
			panic(err)
		}
		conn, err := client.Connect(0)
		if err != nil {
			panic(err)
		}
		for t := 0; t < nThreads; t++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := conn.RegisterThread()
				payload := make([]byte, 64)
				batch := make([]core.BatchOp, window)
				for k := range batch {
					batch[k] = core.BatchOp{RPCID: 1, Payload: payload}
				}
				for {
					select {
					case <-stop:
						return
					default:
					}
					// One combining-queue entry for the whole window: the
					// claiming leader coalesces it under a single doorbell.
					pends, err := th.SendBatch(batch, core.CallOptions{})
					if err != nil {
						return
					}
					for _, p := range pends {
						r, err := p.Wait()
						if err != nil {
							return
						}
						r.Release()
						ops.Add(1)
					}
				}
			}()
		}
	}
	// Warm up, reset, measure.
	time.Sleep(dur / 4)
	ops.Store(0)
	start := time.Now()
	time.Sleep(dur)
	measured := ops.Load()
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	stashTelemetry(nw)
	return float64(measured) / elapsed.Seconds() / 1e6, server.Metrics()
}

// runCreditAblation sweeps the per-QP credit budget C on the live library.
func runCreditAblation(quick bool) {
	dur := 800 * time.Millisecond
	if quick {
		dur = 200 * time.Millisecond
	}
	fmt.Println("C      Mops   renewals  degree")
	for _, credits := range []int{4, 8, 16, 32, 64, 128} {
		opts := core.Options{Credits: credits, QPsPerConn: 2}
		mops, m := liveEchoThroughput(opts, 2, 8, 8, dur)
		degree := 0.0
		if m.MsgsIn > 0 {
			degree = float64(m.ItemsIn) / float64(m.MsgsIn)
		}
		fmt.Printf("%-6d %6.3f %9d %7.2f\n", credits, mops, m.CreditRenewals, degree)
		emitRecord(benchRecord{
			Series: "credits", X: float64(credits),
			Metrics: map[string]float64{
				"mops": mops, "renewals": float64(m.CreditRenewals), "degree": degree,
			},
			Telemetry: takeTelemetry(),
		})
	}
}

// runSignalAblation sweeps the selective-signaling period on the live
// library, showing the completion-DMA savings of §7.
func runSignalAblation(quick bool) {
	dur := 800 * time.Millisecond
	if quick {
		dur = 200 * time.Millisecond
	}
	fmt.Println("signalEvery  Mops   (completions suppressed vs delivered on client NIC)")
	for _, every := range []int{1, 4, 16, 64} {
		nw := core.NewNetwork(fabric.Config{})
		opts := core.Options{SignalEvery: every, QPsPerConn: 1}
		server, _ := nw.NewNode(0, opts, 0)
		server.RegisterHandler(1, func(req []byte) []byte { return req })
		server.Serve()
		client, _ := nw.NewNode(1, opts, 0)
		conn, _ := client.Connect(0)
		var ops atomic.Uint64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for t := 0; t < 8; t++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := conn.RegisterThread()
				for {
					select {
					case <-stop:
						return
					default:
					}
					r, err := th.Call(1, []byte("signal-sweep"))
					if err != nil {
						return
					}
					r.Release()
					ops.Add(1)
				}
			}()
		}
		time.Sleep(dur)
		close(stop)
		wg.Wait()
		st := client.Device().Stats()
		fmt.Printf("%-12d %6.3f  suppressed=%d delivered=%d\n",
			every, float64(ops.Load())/dur.Seconds()/1e6,
			st.CompletionsSuppressed, st.CompletionsDelivered)
		emitRecord(benchRecord{
			Series: "signal_every", X: float64(every),
			Metrics: map[string]float64{
				"mops":       float64(ops.Load()) / dur.Seconds() / 1e6,
				"suppressed": float64(st.CompletionsSuppressed),
				"delivered":  float64(st.CompletionsDelivered),
			},
		})
		nw.Close()
	}
}

// runUDCoalesceAblation compares the UD baseline with and without the §9
// response-coalescing extension: same burst workload, counting server→
// client packets and throughput.
func runUDCoalesceAblation(quick bool) {
	rounds := 300
	if quick {
		rounds = 60
	}
	run := func(coalesce bool) (ops float64, pkts uint64, batched uint64) {
		fab := fabric.New(fabric.Config{})
		sdev, _ := rnic.NewDevice(fab, rnic.Config{Node: 0})
		cdev, _ := rnic.NewDevice(fab, rnic.Config{Node: 1})
		defer sdev.Close()
		defer cdev.Close()
		cfg := udrpc.Config{CoalesceResponses: coalesce}
		srv, err := udrpc.NewServer(sdev, cfg)
		if err != nil {
			panic(err)
		}
		defer srv.Close()
		srv.RegisterHandler(1, func(req []byte) []byte { return req })
		ct, err := udrpc.NewClientThread(cdev, cfg, int(srv.Node()), srv.QPNs()[0])
		if err != nil {
			panic(err)
		}
		const window = 16
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for k := 0; k < window; k++ {
				if _, err := ct.Send(1, []byte("coalesce-sweep-64-bytes-payload!")); err != nil {
					panic(err)
				}
			}
			for k := 0; k < window; k++ {
				if _, err := ct.Recv(); err != nil {
					panic(err)
				}
			}
		}
		total := float64(rounds * window)
		return total / time.Since(start).Seconds(), fab.Link(0, 1).Packets, srv.Metrics().BatchedResponses
	}
	fmt.Println("mode        ops/s     srv→cli pkts  batched")
	for _, coalesce := range []bool{false, true} {
		ops, pkts, batched := run(coalesce)
		name := "plain"
		if coalesce {
			name = "coalesced"
		}
		fmt.Printf("%-10s %9.0f %12d %8d\n", name, ops, pkts, batched)
		emitRecord(benchRecord{
			Series: name,
			Metrics: map[string]float64{
				"ops_per_s": ops, "srv_cli_pkts": float64(pkts), "batched": float64(batched),
			},
		})
	}
}

// runOverloadSweep is ISSUE 6's goodput-vs-offered-load experiment on
// the live library. One deliberately slow server (2 workers × ~1ms
// service time ⇒ on the order of 1–2K ops/s capacity) is offered
// stepped closed-loop load under a 20ms call deadline, twice per step:
//
//   - naive: no admission control; clients time out and immediately
//     re-offer the same work. Once the queue outgrows the deadline the
//     server burns its whole capacity on requests whose callers already
//     gave up — congestion collapse.
//   - resilient: AdmissionLimit bounds the admitted queue (excess is a
//     cheap wire NACK, no handler execution) and client retries are
//     budgeted with full-jitter backoff, so retry pressure
//     self-extinguishes and admitted work always completes inside its
//     deadline.
//
// The final row re-runs the heaviest resilient point under the seeded
// overload-chaos plan (1% RC loss) and prints its goodput as a ratio of
// the resilient no-fault plateau — the acceptance gate is ratio ≥ 0.8.
// Service time is wall-clock sleep, so on a 1-CPU container the real
// per-op cost lands at sleep-granularity (~1.2–1.5ms); the deadline and
// admission limit are sized so that admitted work always clears the
// 20ms/4 per-attempt window regardless.
func runOverloadSweep(quick bool) {
	dur := 600 * time.Millisecond
	if quick {
		dur = 200 * time.Millisecond
	}
	const serviceTime = time.Millisecond
	loads := []int{2, 8, 32, 64}
	if quick {
		loads = []int{2, 32, 64}
	}
	run := func(threads int, resilient bool, plan *fabric.FaultPlan) (gops float64, sm, cm core.NodeMetrics) {
		nw := core.NewNetwork(fabric.Config{})
		defer nw.Close()
		nw.Fabric().SetFaultPlan(plan)
		sOpts := core.Options{Workers: 2}
		cOpts := core.Options{RPCTimeout: 20 * time.Millisecond}
		if resilient {
			sOpts.AdmissionLimit = 8
			cOpts.RetryMaxAttempts = 4
		}
		server, err := nw.NewNode(0, sOpts, 0)
		if err != nil {
			panic(err)
		}
		server.RegisterHandler(1, func(req []byte) []byte {
			time.Sleep(serviceTime)
			return req
		})
		server.Serve()
		client, err := nw.NewNode(1, cOpts, 0)
		if err != nil {
			panic(err)
		}
		conn, err := client.Connect(0)
		if err != nil {
			panic(err)
		}
		var ok atomic.Uint64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := conn.RegisterThread()
				buf := make([]byte, 64)
				for {
					select {
					case <-stop:
						return
					default:
					}
					var r core.Response
					var err error
					if resilient {
						r, err = th.CallOpts(1, buf, core.CallOptions{})
					} else {
						r, err = th.Call(1, buf)
					}
					if err == nil {
						r.Release()
						ok.Add(1)
						continue
					}
					// Both series re-offer failed work immediately — the
					// collapse-vs-survival difference must come from the
					// library, not from a polite benchmark loop.
					if !errors.Is(err, core.ErrTimeout) && !errors.Is(err, core.ErrQPBroken) &&
						!errors.Is(err, core.ErrOverloaded) {
						return
					}
				}
			}()
		}
		start := time.Now()
		time.Sleep(dur)
		measured := ok.Load()
		elapsed := time.Since(start)
		close(stop)
		wg.Wait()
		stashTelemetry(nw)
		return float64(measured) / elapsed.Seconds(), server.Metrics(), client.Metrics()
	}

	fmt.Println("threads  naive(ops/s)  resilient(ops/s)  rejected  retries  budget-exhausted")
	var plateau float64
	for _, threads := range loads {
		naive, _, _ := run(threads, false, nil)
		res, sm, cm := run(threads, true, nil)
		if res > plateau {
			plateau = res
		}
		fmt.Printf("%-8d %12.0f %17.0f %9d %8d %17d\n",
			threads, naive, res, sm.RPCRejected, cm.Retries, cm.RetryBudgetExhausted)
		emitRecord(benchRecord{
			Series: "naive", X: float64(threads),
			Metrics: map[string]float64{"goodput_ops_s": naive},
		})
		emitRecord(benchRecord{
			Series: "resilient", X: float64(threads),
			Metrics: map[string]float64{
				"goodput_ops_s": res, "rejected": float64(sm.RPCRejected),
				"retries": float64(cm.Retries), "budget_exhausted": float64(cm.RetryBudgetExhausted),
			},
			Telemetry: takeTelemetry(),
		})
	}

	// Overload chaos: heaviest resilient point plus a lossy fabric. The
	// library's recovery (timeout-driven recycle) plus the resilience
	// layer must hold goodput near the no-fault plateau.
	chaosThreads := loads[len(loads)-1]
	chaos, sm, cm := run(chaosThreads, true, &fabric.FaultPlan{Seed: 6, RCLossProb: 0.01})
	ratio := chaos / plateau
	fmt.Printf("chaos    %12s %17.0f %9d %8d %17d  (rc-loss=1%%)\n",
		"-", chaos, sm.RPCRejected, cm.Retries, cm.RetryBudgetExhausted)
	fmt.Printf("chaos-goodput ratio=%.2f of no-fault plateau (%.0f ops/s, gate >= 0.80)\n", ratio, plateau)
	emitRecord(benchRecord{
		Series: "chaos", X: float64(chaosThreads),
		Metrics: map[string]float64{
			"goodput_ops_s": chaos, "plateau_ops_s": plateau, "ratio": ratio,
			"rejected": float64(sm.RPCRejected), "retries": float64(cm.Retries),
		},
		Telemetry: takeTelemetry(),
	})
}

// runPipelineSweep measures closed-loop echo goodput as a function of the
// async pipeline depth: each client goroutine keeps `depth` Pendings in
// flight via CallAsync (FIFO window), retiring the oldest before issuing
// the next. The handler carries a small service time and the server runs
// enough workers to overlap requests, so depth 1 — like the sync Call
// baseline — pays round trip + service per op, while deeper windows hide
// the service latency behind the pipeline. The acceptance gate is depth-8
// goodput ≥ 1.5× depth-1. (Service time is wall-clock sleep; on a 1-CPU
// container it lands at sleep granularity, which only widens the gap the
// gate checks for.)
func runPipelineSweep(quick bool) {
	dur := 600 * time.Millisecond
	if quick {
		dur = 200 * time.Millisecond
	}
	const (
		nThreads    = 4
		serviceTime = 200 * time.Microsecond
	)
	depths := []int{1, 2, 4, 8, 16}
	if quick {
		depths = []int{1, 8}
	}

	// depth == 0 selects the synchronous Call baseline.
	run := func(depth int) float64 {
		nw := core.NewNetwork(fabric.Config{})
		defer nw.Close()
		server, err := nw.NewNode(0, core.Options{Workers: 16}, 0)
		if err != nil {
			panic(err)
		}
		server.RegisterHandler(1, func(req []byte) []byte {
			time.Sleep(serviceTime)
			return req
		})
		server.Serve()
		client, err := nw.NewNode(1, core.Options{}, 0)
		if err != nil {
			panic(err)
		}
		conn, err := client.Connect(0)
		if err != nil {
			panic(err)
		}
		var ok atomic.Uint64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for t := 0; t < nThreads; t++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := conn.RegisterThread()
				buf := make([]byte, 64)
				if depth == 0 {
					for {
						select {
						case <-stop:
							return
						default:
						}
						r, err := th.Call(1, buf)
						if err != nil {
							return
						}
						r.Release()
						ok.Add(1)
					}
				}
				var pend []*core.Pending
				defer func() {
					for _, p := range pend {
						p.Cancel()
					}
				}()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for len(pend) < depth {
						p, err := th.CallAsync(1, buf, core.CallOptions{})
						if err != nil {
							return
						}
						pend = append(pend, p)
					}
					p := pend[0]
					pend = pend[:copy(pend, pend[1:])]
					r, err := p.Wait()
					if err != nil {
						return
					}
					r.Release()
					ok.Add(1)
				}
			}()
		}
		start := time.Now()
		time.Sleep(dur)
		measured := ok.Load()
		elapsed := time.Since(start)
		close(stop)
		wg.Wait()
		stashTelemetry(nw)
		return float64(measured) / elapsed.Seconds()
	}

	fmt.Printf("%d goroutines, 64-byte echo, %v window per point\n", nThreads, dur)
	fmt.Println("depth    goodput(ops/s)")
	sync := run(0)
	fmt.Printf("%-8s %14.0f\n", "sync", sync)
	emitRecord(benchRecord{
		Series: "sync-call", X: 1,
		Metrics:   map[string]float64{"goodput_ops_s": sync},
		Telemetry: takeTelemetry(),
	})
	byDepth := make(map[int]float64, len(depths))
	for _, d := range depths {
		g := run(d)
		byDepth[d] = g
		fmt.Printf("%-8d %14.0f\n", d, g)
		emitRecord(benchRecord{
			Series: "async", X: float64(d),
			Metrics:   map[string]float64{"goodput_ops_s": g},
			Telemetry: takeTelemetry(),
		})
	}
	ratio := byDepth[8] / byDepth[1]
	fmt.Printf("pipeline-goodput ratio=%.2f depth8/depth1 (depth8 %.0f ops/s, depth1 %.0f ops/s, gate >= 1.50)\n",
		ratio, byDepth[8], byDepth[1])
}

// runClusterScaling is ISSUE 8's cluster-size experiment on the live
// library: N member nodes behind the shard-aware router, each serving
// its share of a 16-shard KV space with an emulated ~1ms per-op service
// time. A fixed closed-loop client population (24 router threads, each
// on its own disjoint key range) drives puts and gets through the
// router's epoch-routing path.
//
// Service time is wall-clock sleep and every member runs 2 workers, so
// aggregate capacity is worker-seconds — it scales with member count
// even on a 1-CPU container, exactly as RDMA-side capacity scales with
// NICs rather than with a shared host CPU. The acceptance gate is
// 4-member goodput ≥ 2.5× 1-member (BENCH_PR8.json carries the rows).
func runClusterScaling(quick bool) {
	dur := 600 * time.Millisecond
	if quick {
		dur = 250 * time.Millisecond
	}
	const (
		serviceTime = time.Millisecond
		shards      = 16
		nThreads    = 24 // > 8 members × 2 workers: keep every worker fed
		keysPerG    = 64
	)
	sizes := []int{1, 2, 4, 8}
	if quick {
		sizes = []int{1, 4}
	}

	run := func(nNodes int) (gops float64, redirects uint64) {
		nw := core.NewNetwork(fabric.Config{})
		defer nw.Close()
		members := make([]fabric.NodeID, nNodes)
		for i := range members {
			members[i] = fabric.NodeID(i)
		}
		m, err := cluster.New(members, shards, 0)
		if err != nil {
			panic(err)
		}
		for _, id := range members {
			node, err := nw.NewNode(id, core.Options{Workers: 2}, 0)
			if err != nil {
				panic(err)
			}
			svc, err := cluster.NewService(node, m, 0)
			if err != nil {
				panic(err)
			}
			svc.ServiceDelay = serviceTime
			node.Serve()
		}
		client, err := nw.NewNode(100, core.Options{}, 0)
		if err != nil {
			panic(err)
		}
		router := cluster.NewRouter(client, m)
		defer router.Close()

		var ok atomic.Uint64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < nThreads; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rt := router.Thread()
				// Disjoint key range per goroutine with strictly increasing
				// values — the KV's non-decreasing value contract.
				base := uint64(g * keysPerG)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					key := base + uint64(i%keysPerG)
					var err error
					if i%2 == 0 {
						err = rt.Put(key, uint64(i+1))
					} else {
						_, _, err = rt.Get(key)
					}
					if err != nil {
						return
					}
					ok.Add(1)
				}
			}(g)
		}
		// Warm up, reset, measure.
		time.Sleep(dur / 4)
		ok.Store(0)
		start := time.Now()
		time.Sleep(dur)
		measured := ok.Load()
		elapsed := time.Since(start)
		close(stop)
		wg.Wait()
		stashTelemetry(nw)
		return float64(measured) / elapsed.Seconds(), router.Redirects()
	}

	fmt.Printf("%d router threads, %d shards, ~%v emulated service/op, %v window per point\n",
		nThreads, shards, serviceTime, dur)
	fmt.Println("members  goodput(ops/s)  redirects")
	bySize := make(map[int]float64, len(sizes))
	for _, n := range sizes {
		g, redirects := run(n)
		bySize[n] = g
		fmt.Printf("%-8d %14.0f %10d\n", n, g, redirects)
		emitRecord(benchRecord{
			Series: "cluster", X: float64(n),
			Metrics: map[string]float64{
				"goodput_ops_s": g, "redirects": float64(redirects),
			},
			Telemetry: takeTelemetry(),
		})
	}
	ratio := bySize[4] / bySize[1]
	fmt.Printf("cluster-goodput ratio=%.2f 4node/1node (4node %.0f ops/s, 1node %.0f ops/s, gate >= 2.50)\n",
		ratio, bySize[4], bySize[1])
	emitRecord(benchRecord{
		Series: "ratio", X: 4,
		Metrics: map[string]float64{
			"ratio": ratio, "node4_ops_s": bySize[4], "node1_ops_s": bySize[1],
		},
	})
}

// runReplicationSweep is ISSUE 10's group-commit replication
// experiment on the live library: a fixed 4-member cluster, put-only
// closed-loop traffic, replica factor swept over R = 0/1/2. Puts at
// R > 0 ride the per-(shard, backup) replication logs and ack when the
// multi-entry FRP1 batch carrying them is durable on every backup
// (internal/cluster/groupcommit.go), so the fan-out cost is amortized
// across whatever queued inside the flush window — the paper's flocking
// discipline applied to the replica plane. The goodput ratio R=2/R=0 is
// the price tag on durability; BENCH_PR10.json carries the rows and the
// CI gate holds the ratio above 0.5 (PR 9's per-put sync forward
// measured ~0.2 on the same 1-CPU container). A second dimension pins
// R=2 and sweeps FlushEntries to show the ratio is the batching's doing:
// cap 1 reproduces the per-put forward, 8 and 64 open the window.
func runReplicationSweep(quick bool) {
	dur := 600 * time.Millisecond
	if quick {
		dur = 250 * time.Millisecond
	}
	const (
		nNodes   = 4
		shards   = 4
		nThreads = 128
		keysPerG = 16
		workers  = 40
	)
	tuned := cluster.ReplTuning{FlushEntries: 32, FlushDelay: 0, PipeDepth: 2}
	factors := []int{0, 1, 2}
	if quick {
		factors = []int{0, 2}
	}

	run := func(replicas int, tuning cluster.ReplTuning) (gops float64, forwards, batches uint64, meanBatch float64) {
		nw := core.NewNetwork(fabric.Config{})
		defer nw.Close()
		members := make([]fabric.NodeID, nNodes)
		for i := range members {
			members[i] = fabric.NodeID(i)
		}
		m, err := cluster.NewReplicated(members, shards, 0, replicas)
		if err != nil {
			panic(err)
		}
		var services []*cluster.Service
		for _, id := range members {
			node, err := nw.NewNode(id, core.Options{Workers: workers}, 0)
			if err != nil {
				panic(err)
			}
			svc, err := cluster.NewService(node, m, 0)
			if err != nil {
				panic(err)
			}
			svc.Repl = tuning
			services = append(services, svc)
			node.Serve()
		}
		client, err := nw.NewNode(100, core.Options{}, 0)
		if err != nil {
			panic(err)
		}
		router := cluster.NewRouter(client, m)
		defer router.Close()

		var ok atomic.Uint64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < nThreads; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rt := router.Thread()
				// Disjoint key range per goroutine with strictly increasing
				// values — the KV's non-decreasing value contract.
				base := uint64(g * keysPerG)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := rt.Put(base+uint64(i%keysPerG), uint64(i+1)); err != nil {
						return
					}
					ok.Add(1)
				}
			}(g)
		}
		// Warm up, reset, measure.
		time.Sleep(dur / 4)
		ok.Store(0)
		start := time.Now()
		time.Sleep(dur)
		measured := ok.Load()
		elapsed := time.Since(start)
		close(stop)
		wg.Wait()
		var entrySum, entryCount uint64
		for _, svc := range services {
			tl := svc.Node().Telemetry()
			forwards += tl.Counter("cluster.replica_forwards").Load()
			batches += tl.Counter("cluster.repl_batches").Load()
			snap := tl.Hist("cluster.repl_batch_entries").Snapshot()
			entrySum += snap.Sum
			entryCount += snap.Count
		}
		if entryCount > 0 {
			meanBatch = float64(entrySum) / float64(entryCount)
		}
		stashTelemetry(nw)
		return float64(measured) / elapsed.Seconds(), forwards, batches, meanBatch
	}

	fmt.Printf("%d members, %d shards, %d put-only router threads, %v window per point\n",
		nNodes, shards, nThreads, dur)
	fmt.Printf("group-commit tuning: FlushEntries=%d FlushDelay=%v PipeDepth=%d\n",
		tuned.FlushEntries, tuned.FlushDelay, tuned.PipeDepth)
	fmt.Println("replicas  goodput(ops/s)  forwards   batches  entries/batch")
	byR := make(map[int]float64, len(factors))
	for _, r := range factors {
		g, fwds, batches, mean := run(r, tuned)
		byR[r] = g
		fmt.Printf("%-9d %14.0f %9d %9d %14.1f\n", r, g, fwds, batches, mean)
		emitRecord(benchRecord{
			Series: "replication", X: float64(r),
			Metrics: map[string]float64{
				"goodput_ops_s": g, "forwards": float64(fwds),
				"batches": float64(batches), "batch_mean": mean,
			},
			Telemetry: takeTelemetry(),
		})
	}

	// The batching dimension: R=2 fixed, flush cap swept. Entries=1 is
	// PR 9's per-put forward reproduced inside the new pipeline.
	caps := []int{1, 8, 64}
	if quick {
		caps = []int{1, 8}
	}
	fmt.Println("flush-cap  goodput(ops/s)  forwards   batches  entries/batch")
	for _, c := range caps {
		tn := tuned
		tn.FlushEntries = c
		g, fwds, batches, mean := run(2, tn)
		fmt.Printf("%-10d %14.0f %9d %9d %14.1f\n", c, g, fwds, batches, mean)
		emitRecord(benchRecord{
			Series: "replication-batch", X: float64(c),
			Metrics: map[string]float64{
				"goodput_ops_s": g, "forwards": float64(fwds),
				"batches": float64(batches), "batch_mean": mean,
				"ratio_vs_r0": g / byR[0],
			},
			Telemetry: takeTelemetry(),
		})
	}

	ratio := byR[2] / byR[0]
	fmt.Printf("replication-goodput ratio=%.2f r2/r0 (r2 %.0f ops/s, r0 %.0f ops/s, gate >= 0.5)\n",
		ratio, byR[2], byR[0])
	emitRecord(benchRecord{
		Series: "ratio", X: 2,
		Metrics: map[string]float64{
			"ratio": ratio, "r2_ops_s": byR[2], "r0_ops_s": byR[0],
		},
	})
}
func runSyncMicro(quick bool) {
	dur := time.Second
	if quick {
		dur = 250 * time.Millisecond
	}
	threads := 8
	fmt.Printf("%d goroutines sharing 1 QP, 64-byte echo, %v window\n", threads, dur)

	// FLock: one shared QP via the connection handle.
	flockOps := func() float64 {
		nw := core.NewNetwork(fabric.Config{})
		defer nw.Close()
		opts := core.Options{QPsPerConn: 1}
		server, _ := nw.NewNode(0, opts, 0)
		server.RegisterHandler(1, func(req []byte) []byte { return req })
		server.Serve()
		client, _ := nw.NewNode(1, opts, 0)
		conn, _ := client.Connect(0)
		var ops atomic.Uint64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := conn.RegisterThread()
				buf := make([]byte, 64)
				for {
					select {
					case <-stop:
						return
					default:
					}
					r, err := th.Call(1, buf)
					if err != nil {
						return
					}
					r.Release()
					ops.Add(1)
				}
			}()
		}
		time.Sleep(dur)
		close(stop)
		wg.Wait()
		return float64(ops.Load()) / dur.Seconds()
	}()

	// Spinlock sharing: the FaRM-style baseline with every thread on one QP.
	lockOps := func() float64 {
		fab := fabric.New(fabric.Config{})
		sdev, _ := rnic.NewDevice(fab, rnic.Config{Node: 0})
		cdev, _ := rnic.NewDevice(fab, rnic.Config{Node: 1})
		defer sdev.Close()
		defer cdev.Close()
		cfg := lockshare.Config{ThreadsPerQP: threads, Spin: true}
		srv := lockshare.NewServer(sdev, cfg)
		defer srv.Close()
		srv.RegisterHandler(1, func(req []byte) []byte { return req })
		cl := lockshare.NewClient(cdev, cfg, srv)
		var ops atomic.Uint64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for t := 0; t < threads; t++ {
			th, err := cl.RegisterThread()
			if err != nil {
				panic(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]byte, 64)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := th.Call(1, buf); err != nil {
						return
					}
					ops.Add(1)
				}
			}()
		}
		time.Sleep(dur)
		close(stop)
		wg.Wait()
		return float64(ops.Load()) / dur.Seconds()
	}()

	fmt.Printf("flock-sync  %10.0f ops/s\n", flockOps)
	fmt.Printf("spinlock    %10.0f ops/s\n", lockOps)
	fmt.Printf("ratio       %10.2fx (paper: lock-based up to 2.3x slower)\n", flockOps/lockOps)
	emitRecord(benchRecord{
		Metrics: map[string]float64{
			"flock_ops_per_s":    flockOps,
			"spinlock_ops_per_s": lockOps,
			"ratio":              flockOps / lockOps,
		},
	})
}
