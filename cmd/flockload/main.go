// Command flockload drives the live FLock library with a configurable
// synthetic workload and reports throughput, latency percentiles, and the
// coalescing/scheduling metrics the paper's evaluation revolves around.
// It is the interactive counterpart to cmd/flockbench's scripted sweeps:
//
//	flockload -clients 2 -threads 8 -qps 2 -payload 64 -window 8 -dur 2s
//	flockload -mem -payload 512            # one-sided read/write mix
//	flockload -threads 16 -no-coalesce     # MaxBatch=1 ablation, live
//	flockload -faults rc-loss=0.01,flap=1  # lossy fabric + flapping QP
//	flockload -overload 16 -retry 4        # admission control + budgeted retries
//	flockload -retry 4 -hedge 2ms          # hedged requests for tail latency
//
// The -check flag switches to flockcheck mode: instead of driving load, it
// runs the internal/check schedule explorer — seed-derived adversarial
// schedules against the simulated combining path, every history verified
// by the linearizability checker. A failure prints the seed and the
// minimal failing schedule, ready to paste into a replay:
//
//	flockload -check -check-seeds 5000            # all three workloads
//	flockload -check -check-workload counter -check-seed 41 -check-seeds 1
//
// The -cluster flag switches to cluster mode: N member nodes serve the
// sharded KV behind the epoch-routing client, a live shard migration
// runs mid-window, and the report shows per-shard routing stats,
// wrong-shard redirects, migration progress, and the membership view.
// The epilogue drains every node and asserts zero outstanding pooled
// buffers:
//
//	flockload -cluster 4 -shards 16 -threads 8 -dur 2s
//
// Adding -replicas R replicates every shard to R backups (synchronous
// forward before ACK) and swaps the mid-window migration for a primary
// kill: one member drops off the fabric, the detector walks it to dead,
// and the coordinator promotes backups — the report shows detection and
// promotion timings plus the replication counters:
//
//	flockload -cluster 4 -shards 16 -replicas 2 -threads 8 -dur 2s
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"flock"
	"flock/internal/check"
	mempool "flock/internal/mem"
	"flock/internal/stats"
)

func main() {
	var (
		clients    = flag.Int("clients", 1, "client nodes")
		threads    = flag.Int("threads", 8, "threads per client")
		qps        = flag.Int("qps", 2, "QPs per connection")
		payload    = flag.Int("payload", 64, "request payload bytes")
		window     = flag.Int("window", 4, "outstanding requests per thread")
		dur        = flag.Duration("dur", time.Second, "measurement window")
		mem        = flag.Bool("mem", false, "drive one-sided read/write instead of RPC")
		noCoalesce = flag.Bool("no-coalesce", false, "disable leader coalescing (MaxBatch=1)")
		workers    = flag.Int("workers", 0, "server RPC worker pool size (0 = inline)")
		maxAQP     = flag.Int("max-aqp", 0, "MAX_AQP override (0 = default 256)")
		faults     = flag.String("faults", "", "fault spec, e.g. seed=7,rc-loss=0.01,flap=3 (see fabric.ParseFaultPlan)")
		rpcTimeout = flag.Duration("rpc-timeout", 0, "per-RPC deadline (0 = none; implied 100ms when -faults is set)")
		overload   = flag.Int("overload", 0, "server admission limit: excess requests are NACKed with ErrOverloaded (0 = unlimited)")
		retry      = flag.Int("retry", 0, "client retry attempt cap: route calls through the resilient path with backoff + budget (0 = off)")
		hedge      = flag.Duration("hedge", 0, "hedge delay: send a second request copy after this much silence (0 = off)")
		pprofDir   = flag.String("pprof", "", "directory to write cpu/heap/mutex/block .pprof files into")
		metrics    = flag.Bool("metrics", false, "dump the full telemetry snapshot as JSON after the run")
		expvarAddr = flag.String("expvar", "", "serve the telemetry snapshot on this addr via expvar (e.g. :8080)")
		traceEvery = flag.Int("trace", 0, "record the RPC lifecycle trace, sampling 1 in N requests (0 = off)")
		nicCache   = flag.Int("nic-cache", 0, "NIC connection-context cache size (0 = unconstrained)")
		clusterN   = flag.Int("cluster", 0, "cluster mode: this many member nodes serve the sharded KV behind the shard router (0 = off)")
		shardsN    = flag.Int("shards", 16, "shard count in -cluster mode")
		replicasN  = flag.Int("replicas", 0, "backups per shard in -cluster mode; >0 replaces the mid-window migrations with a primary kill + failover (0 = unreplicated)")
		checkMode  = flag.Bool("check", false, "flockcheck mode: explore schedules and verify linearizability instead of driving load")
		checkSeeds = flag.Int("check-seeds", 1000, "schedules to explore per workload in -check mode")
		checkSeed  = flag.Uint64("check-seed", 1, "first seed in -check mode (replay a CI failure with -check-seeds 1)")
		checkWork  = flag.String("check-workload", "all", "workload to check: counter, echo, kv, or all")
	)
	flag.Parse()

	if *checkMode {
		os.Exit(runCheck(*checkWork, *checkSeed, *checkSeeds, *threads, *qps))
	}
	if *clusterN > 0 {
		os.Exit(runCluster(*clusterN, *shardsN, *replicasN, *threads, *dur, *faults))
	}

	opts := flock.Options{
		QPsPerConn:   *qps,
		Workers:      *workers,
		MaxActiveQPs: *maxAQP,
		RPCTimeout:   *rpcTimeout,
	}
	if *traceEvery > 0 {
		opts.Trace = true
		opts.TraceSample = *traceEvery
	}
	if *noCoalesce {
		opts.MaxBatch = 1
	}
	if *pprofDir != "" {
		// Contended-lock and blocking profiles are pay-to-play: the runtime
		// only samples them when the rates are set, so plain runs keep the
		// hot path unperturbed.
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(int(time.Microsecond))
	}
	// resilient selects the overload-control epilogue (drain + metrics
	// line) and, for -retry/-hedge, the closed-loop resilient call path.
	resilient := *overload > 0 || *retry > 0 || *hedge > 0
	if (*faults != "" || resilient) && opts.RPCTimeout == 0 {
		opts.RPCTimeout = 100 * time.Millisecond
	}
	serverOpts, clientOpts := opts, opts
	serverOpts.AdmissionLimit = *overload
	clientOpts.RetryMaxAttempts = *retry
	clientOpts.HedgeDelay = *hedge

	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()
	if *faults != "" {
		plan, err := flock.ParseFaultPlan(*faults)
		if err != nil {
			log.Fatal(err)
		}
		net.Fabric().SetFaultPlan(plan)
	}
	server, err := net.NewNode(0, serverOpts, *nicCache)
	if err != nil {
		log.Fatal(err)
	}
	if *expvarAddr != "" {
		expvar.Publish("flock", expvar.Func(func() interface{} {
			return net.TelemetrySnapshot()
		}))
		go func() {
			if err := http.ListenAndServe(*expvarAddr, nil); err != nil {
				log.Printf("expvar server: %v", err)
			}
		}()
	}
	server.RegisterHandler(1, func(req []byte) []byte { return req })
	if err := server.Serve(); err != nil {
		log.Fatal(err)
	}

	type worker struct {
		th     *flock.Thread
		reg    *flock.RemoteRegion
		hist   *stats.Hist
		ops    uint64
		failed uint64
	}
	var workersList []*worker
	var clientNodes []*flock.Node
	for c := 0; c < *clients; c++ {
		client, err := net.NewNode(flock.NodeID(c+1), clientOpts, *nicCache)
		if err != nil {
			log.Fatal(err)
		}
		clientNodes = append(clientNodes, client)
		conn, err := client.Connect(0)
		if err != nil {
			log.Fatal(err)
		}
		var region *flock.RemoteRegion
		if *mem {
			if region, err = conn.AttachMemRegion(1 << 20); err != nil {
				log.Fatal(err)
			}
		}
		for t := 0; t < *threads; t++ {
			workersList = append(workersList, &worker{
				th:   conn.RegisterThread(),
				reg:  region,
				hist: stats.NewHist(),
			})
		}
	}

	var cpuProf *os.File
	if *pprofDir != "" {
		if err := os.MkdirAll(*pprofDir, 0o755); err != nil {
			log.Fatal(err)
		}
		cpuProf, err = os.Create(filepath.Join(*pprofDir, "cpu.pprof"))
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(cpuProf); err != nil {
			log.Fatal(err)
		}
	}

	// MemStats baseline after setup: the deltas below isolate the steady
	// state of the measurement window from node/connection construction.
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	start := time.Now()
	for _, w := range workersList {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			buf := make([]byte, *payload)
			if *mem {
				for {
					select {
					case <-stop:
						return
					default:
					}
					t0 := time.Now()
					var err error
					if w.ops%2 == 0 {
						err = w.th.Write(w.reg, int(w.ops)%1024, buf)
					} else {
						err = w.th.Read(w.reg, int(w.ops)%1024, buf)
					}
					if err != nil {
						if errors.Is(err, flock.ErrTimeout) || errors.Is(err, flock.ErrQPBroken) {
							w.failed++
							continue
						}
						return
					}
					w.hist.Record(uint64(time.Since(t0).Nanoseconds()))
					w.ops++
				}
			}
			// Transient faults (deadline expiry, a QP breaking under the
			// window, overload pushback, an open breaker) abandon the
			// in-flight batch and keep driving; any other error is fatal
			// for the worker.
			transient := func(err error) bool {
				return errors.Is(err, flock.ErrTimeout) || errors.Is(err, flock.ErrQPBroken) ||
					errors.Is(err, flock.ErrOverloaded) || errors.Is(err, flock.ErrCircuitOpen)
			}
			if *retry > 0 || *hedge > 0 {
				// Resilient closed loop: CallOpts inherits the node's retry/
				// hedge knobs, so backoff, budget accounting, idempotency
				// keys, and hedges all happen inside the library. A call
				// that still fails after its attempts counts once.
				for {
					select {
					case <-stop:
						return
					default:
					}
					t0 := time.Now()
					r, err := w.th.CallOpts(1, buf, flock.CallOptions{})
					if err != nil {
						if transient(err) {
							w.failed++
							continue
						}
						return
					}
					r.Release()
					w.hist.Record(uint64(time.Since(t0).Nanoseconds()))
					w.ops++
				}
			}
			// Pipelined loop: keep `window` Pendings in flight and retire
			// the oldest. Each Pending owns its completion record, so this
			// is the supported interleaving pattern — no sequence matching.
			type inflight struct {
				p  *flock.Pending
				at time.Time
			}
			var pending []inflight
			for {
				select {
				case <-stop:
					for _, f := range pending {
						f.p.Cancel()
					}
					return
				default:
				}
				for len(pending) < *window {
					p, err := w.th.CallAsync(1, buf, flock.CallOptions{})
					if err != nil {
						if transient(err) {
							w.failed++
							break
						}
						for _, f := range pending {
							f.p.Cancel()
						}
						return
					}
					pending = append(pending, inflight{p: p, at: time.Now()})
				}
				if len(pending) == 0 {
					continue
				}
				f := pending[0]
				pending = pending[1:]
				resp, err := f.p.Wait()
				if err != nil {
					if transient(err) {
						w.failed++
						continue
					}
					for _, rest := range pending {
						rest.p.Cancel()
					}
					return
				}
				if resp.Status != 0 {
					w.failed++
				} else {
					w.hist.Record(uint64(time.Since(f.at).Nanoseconds()))
					w.ops++
				}
				resp.Release() // recycle the pooled response buffer
			}
		}(w)
	}
	time.Sleep(*dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	if cpuProf != nil {
		pprof.StopCPUProfile()
		cpuProf.Close() //nolint:errcheck
	}

	all := stats.NewHist()
	var totalOps uint64
	for _, w := range workersList {
		all.Merge(w.hist)
		totalOps += w.ops
	}
	mode := "rpc"
	if *mem {
		mode = "mem"
	}
	fmt.Printf("mode=%s clients=%d threads=%d qps=%d payload=%dB window=%d\n",
		mode, *clients, *threads, *qps, *payload, *window)
	fmt.Printf("throughput  %.0f ops/s (%d ops in %v)\n",
		float64(totalOps)/elapsed.Seconds(), totalOps, elapsed.Round(time.Millisecond))
	fmt.Printf("latency     p50=%v p99=%v max=%v\n",
		time.Duration(all.Median()), time.Duration(all.P99()), time.Duration(all.Max()))
	m := server.Metrics()
	if m.MsgsIn > 0 {
		fmt.Printf("server      degree=%.2f msgs=%d renewals=%d deact=%d react=%d migrations=%d\n",
			float64(m.ItemsIn)/float64(m.MsgsIn), m.MsgsIn, m.CreditRenewals,
			m.QPDeactivations, m.QPActivations, m.ThreadMigrations)
	}
	st := server.Device().Stats()
	fmt.Printf("server NIC  doorbells=%d wrs=%d pkts=%d suppressed-cqe=%d\n",
		st.Doorbells, st.WorkRequests, st.PacketsTX, st.CompletionsSuppressed)
	if totalOps > 0 {
		// Process-wide deltas over the measurement window: allocation count
		// and bytes per completed operation, plus GC cycles. These are the
		// numbers the pooled hot path is meant to hold flat as load grows.
		mallocs := msAfter.Mallocs - msBefore.Mallocs
		heapB := msAfter.TotalAlloc - msBefore.TotalAlloc
		fmt.Printf("memory      allocs/op=%.1f heap-bytes/op=%.0f gc-cycles=%d heap-live=%dKB\n",
			float64(mallocs)/float64(totalOps), float64(heapB)/float64(totalOps),
			msAfter.NumGC-msBefore.NumGC, msAfter.HeapAlloc/1024)
	}
	if *pprofDir != "" {
		hp, err := os.Create(filepath.Join(*pprofDir, "heap.pprof"))
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // up-to-date heap profile
		if err := pprof.WriteHeapProfile(hp); err != nil {
			log.Fatal(err)
		}
		hp.Close() //nolint:errcheck
		for _, prof := range []string{"mutex", "block"} {
			f, err := os.Create(filepath.Join(*pprofDir, prof+".pprof"))
			if err != nil {
				log.Fatal(err)
			}
			if err := pprof.Lookup(prof).WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
			f.Close() //nolint:errcheck
		}
		fmt.Printf("pprof       wrote cpu/heap/mutex/block .pprof in %s\n", *pprofDir)
	}
	if *faults != "" {
		var failed uint64
		for _, w := range workersList {
			failed += w.failed
		}
		fs := net.Fabric().FaultCounters()
		fmt.Printf("faults      rc-dropped=%d link-down=%d corrupted=%d delayed=%d failed-ops=%d\n",
			fs.RCDropped, fs.LinkDownDrops, fs.Corrupted, fs.RCDelayed, failed)
		var rec flock.NodeMetrics
		for _, cn := range clientNodes {
			cm := cn.Metrics()
			rec.QPRecycles += cm.QPRecycles
			rec.QPQuarantines += cm.QPQuarantines
			rec.RPCTimeouts += cm.RPCTimeouts
		}
		fmt.Printf("recovery    recycles=%d quarantines=%d rpc-timeouts=%d (clients) recycles=%d quarantines=%d (server)\n",
			rec.QPRecycles, rec.QPQuarantines, rec.RPCTimeouts,
			m.QPRecycles, m.QPQuarantines)
	}
	if resilient {
		var cl flock.NodeMetrics
		for _, cn := range clientNodes {
			cm := cn.Metrics()
			cl.Retries += cm.Retries
			cl.RetryBudgetExhausted += cm.RetryBudgetExhausted
			cl.Hedges += cm.Hedges
			cl.HedgesWon += cm.HedgesWon
			cl.BreakerOpens += cm.BreakerOpens
		}
		fmt.Printf("resilience  rejected=%d draining=%d dedup-hits=%d credit-withheld=%d (server) retries=%d budget-exhausted=%d hedges=%d hedges-won=%d breaker-opens=%d (clients)\n",
			m.RPCRejected, m.RPCRejectedDraining, m.DedupHits, m.CreditWithheld,
			cl.Retries, cl.RetryBudgetExhausted, cl.Hedges, cl.HedgesWon, cl.BreakerOpens)
	}
	if *metrics {
		snap := net.TelemetrySnapshot()
		b, err := snap.JSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(b) //nolint:errcheck
		fmt.Println()      // trailing newline after the JSON document
	}
	if resilient {
		// Graceful-drain epilogue: every node must quiesce (zero admitted
		// requests, zero outstanding client RPCs), and teardown must land
		// the pooled-buffer ledger at exactly zero leases — the same
		// invariant the package leak gate enforces on the test suite.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, cn := range clientNodes {
			if err := cn.Drain(ctx); err != nil {
				log.Fatalf("client drain: %v", err)
			}
		}
		if err := server.Drain(ctx); err != nil {
			log.Fatalf("server drain: %v", err)
		}
		net.Close()
		if n := mempool.Default.Outstanding(); n != 0 {
			log.Fatalf("lease leak: %d pooled buffers still outstanding after drain+close", n)
		}
		fmt.Println("drain       server=ok clients=ok leases=0")
	}
	if totalOps == 0 {
		os.Exit(1)
	}
}

// runCluster is cluster mode: nMembers member nodes serve the sharded
// KV, nThreads router threads drive closed-loop puts/gets through the
// epoch-routing client, and halfway through the window the coordinator
// live-migrates two shards away from their owners — so the report's
// wrong-shard redirect and migration numbers come from a real move, not
// a synthetic NACK. With replicas > 0 the mid-window event is a primary
// kill instead: every put synchronously replicates to its backups, one
// shard primary drops off the fabric entirely, the detector walks it to
// dead, and the coordinator promotes backups — the report then shows
// detection + promotion timings and the replication counters. The
// epilogue mirrors the resilient mode's: every node drains, the network
// closes, and the pooled-buffer ledger must be at exactly zero leases.
// Returns the process exit code.
func runCluster(nMembers, nShards, replicas, nThreads int, dur time.Duration, faults string) int {
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()
	if faults != "" {
		plan, err := flock.ParseFaultPlan(faults)
		if err != nil {
			log.Fatal(err)
		}
		net.Fabric().SetFaultPlan(plan)
	}
	ids := make([]flock.NodeID, nMembers)
	for i := range ids {
		ids[i] = flock.NodeID(i)
	}
	m, err := flock.NewReplicatedShardMap(ids, nShards, 0, replicas)
	if err != nil {
		log.Fatal(err)
	}
	coord := flock.NewClusterCoordinator(m)
	memberOpts := flock.Options{Workers: 2, RPCTimeout: 100 * time.Millisecond}
	var memberNodes []*flock.Node
	var services []*flock.ClusterService
	for _, id := range ids {
		node, err := net.NewNode(id, memberOpts, 0)
		if err != nil {
			log.Fatal(err)
		}
		svc, err := flock.NewClusterService(node, m, 0)
		if err != nil {
			log.Fatal(err)
		}
		coord.AddService(svc)
		if err := node.Serve(); err != nil {
			log.Fatal(err)
		}
		memberNodes = append(memberNodes, node)
		services = append(services, svc)
	}
	client, err := net.NewNode(flock.NodeID(100), flock.Options{RPCTimeout: 100 * time.Millisecond}, 0)
	if err != nil {
		log.Fatal(err)
	}
	// The router is deliberately NOT registered with the coordinator:
	// it must discover each migration the production way — a WrongShard
	// NACK carrying the newer map — so the redirect stats below are real.
	router := flock.NewClusterRouter(client, m)
	mship := flock.NewClusterMembership(router)
	if replicas > 0 {
		// Failover mode: the victim's shards have nobody left to NACK a
		// stale route, so the router learns the promoted map the way a
		// production client would — from the control plane's publish.
		coord.AddRouter(router)
		mship.ProbeTimeout = 100 * time.Millisecond
	}

	shardOps := make([]atomic.Uint64, nShards)
	var okOps, failed atomic.Uint64
	hists := make([]*stats.Hist, nThreads)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	start := time.Now()
	for g := 0; g < nThreads; g++ {
		hists[g] = stats.NewHist()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rt := router.Thread()
			// Disjoint per-goroutine key range with strictly increasing
			// values — the sharded KV's non-decreasing value contract.
			base := uint64(g) * 64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := base + uint64(i%64)
				t0 := time.Now()
				var err error
				if i%2 == 0 {
					err = rt.Put(key, uint64(i+1))
				} else {
					_, _, err = rt.Get(key)
				}
				if err != nil {
					if errors.Is(err, flock.ErrTimeout) || errors.Is(err, flock.ErrQPBroken) ||
						errors.Is(err, flock.ErrOverloaded) || errors.Is(err, flock.ErrNoRoute) ||
						errors.Is(err, flock.ErrDraining) {
						failed.Add(1)
						continue
					}
					return
				}
				hists[g].Record(uint64(time.Since(t0).Nanoseconds()))
				shardOps[router.Map().ShardOf(key)].Add(1)
				okOps.Add(1)
			}
		}(g)
	}

	// Mid-window event: with replicas, one shard primary drops off the
	// fabric entirely and the cluster fails over; otherwise two live
	// migrations — both with traffic still flowing.
	time.Sleep(dur / 2)
	type move struct {
		shard    int
		from, to flock.NodeID
		took     time.Duration
	}
	var moves []move
	victim := flock.NodeID(-1)
	var victimShards, promoted int
	var detect, promote time.Duration
	if replicas > 0 && nMembers > 1 {
		victim = coord.Map().Owner(0)
		victimShards = len(coord.Map().ShardsOwnedBy(victim))
		fab := net.Fabric()
		t0 := time.Now()
		for _, id := range append([]flock.NodeID{client.ID()}, ids...) {
			if id == victim {
				continue
			}
			fab.SetLinkDown(victim, id, true)
			fab.SetLinkDown(id, victim, true)
		}
		for mship.State(victim) != flock.MemberDead {
			if time.Since(t0) > 30*time.Second {
				log.Fatal("detector never declared the victim dead")
			}
			mship.ProbeOnce()
		}
		detect = time.Since(t0)
		t1 := time.Now()
		p, err := coord.FailOver(victim, mship.Live())
		if err != nil {
			log.Fatalf("failover: %v", err)
		}
		promoted, promote = p, time.Since(t1)
	} else if nMembers > 1 {
		for _, shard := range []int{0, 1} {
			from := coord.Map().Owner(shard)
			to := ids[(int(from)+1)%nMembers]
			t0 := time.Now()
			if err := coord.MigrateShard(shard, to); err != nil {
				log.Printf("migration of shard %d failed: %v", shard, err)
				continue
			}
			moves = append(moves, move{shard, from, to, time.Since(t0)})
		}
	}
	time.Sleep(dur - dur/2)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	mship.ProbeOnce()
	live := mship.Live()

	all := stats.NewHist()
	for _, h := range hists {
		all.Merge(h)
	}
	fmt.Printf("mode=cluster members=%d shards=%d threads=%d\n", nMembers, nShards, nThreads)
	fmt.Printf("throughput  %.0f ops/s (%d ops in %v)\n",
		float64(okOps.Load())/elapsed.Seconds(), okOps.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("latency     p50=%v p99=%v max=%v\n",
		time.Duration(all.Median()), time.Duration(all.P99()), time.Duration(all.Max()))
	fmt.Printf("routing     redirects=%d failed=%d epoch=%d\n",
		router.Redirects(), failed.Load(), router.Map().Epoch)
	// Per-shard routing stats: ops routed to each shard and its final
	// owner, eight shards per line.
	final := router.Map()
	for s := 0; s < nShards; s++ {
		if s%8 == 0 {
			if s > 0 {
				fmt.Println()
			}
			fmt.Printf("shard-ops  ")
		}
		fmt.Printf(" s%d=%d@n%d", s, shardOps[s].Load(), final.Owner(s))
	}
	fmt.Println()
	for _, mv := range moves {
		fmt.Printf("migration   shard=%d from=n%d to=n%d dur=%v\n",
			mv.shard, mv.from, mv.to, mv.took.Round(time.Microsecond))
	}
	if victim >= 0 {
		var fwds, promos, batches, entrySum, entryCount uint64
		var pendingLog int64
		for _, svc := range services {
			tl := svc.Node().Telemetry()
			fwds += tl.Counter("cluster.replica_forwards").Load()
			promos += tl.Counter("cluster.promotions").Load()
			batches += tl.Counter("cluster.repl_batches").Load()
			snap := tl.Hist("cluster.repl_batch_entries").Snapshot()
			entrySum += snap.Sum
			entryCount += snap.Count
			pendingLog += tl.Gauge("cluster.repl_log_pending").Load()
		}
		batchMean := 0.0
		if entryCount > 0 {
			batchMean = float64(entrySum) / float64(entryCount)
		}
		fmt.Printf("failover    victim=n%d shards=%d promoted=%d detect=%v promote=%v\n",
			victim, victimShards, promoted, detect.Round(time.Millisecond), promote.Round(time.Microsecond))
		fmt.Printf("replication replicas=%d forwards=%d promotions=%d batches=%d batch_mean=%.1f pending=%d\n",
			replicas, fwds, promos, batches, batchMean, pendingLog)
	}
	fmt.Printf("membership  live=%d/%d moves=%d\n", len(live), nMembers, len(moves))

	// Epilogue: drain everything and land the lease ledger at zero.
	router.Close()
	for _, svc := range services {
		svc.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := client.Drain(ctx); err != nil {
		log.Fatalf("client drain: %v", err)
	}
	for _, node := range memberNodes {
		if err := node.Drain(ctx); err != nil {
			log.Fatalf("member %d drain: %v", node.ID(), err)
		}
	}
	net.Close()
	if n := mempool.Default.Outstanding(); n != 0 {
		log.Fatalf("lease leak: %d pooled buffers still outstanding after drain+close", n)
	}
	fmt.Println("drain       members=ok client=ok leases=0")
	if okOps.Load() == 0 {
		return 1
	}
	return 0
}

// runCheck is flockcheck mode: sweep seed-derived adversarial schedules
// through the simulated combining path and verify every recorded history
// with the linearizability checker. Returns the process exit code.
func runCheck(workload string, startSeed uint64, seeds, threads, qps int) int {
	var workloads []check.Workload
	switch workload {
	case "counter":
		workloads = []check.Workload{check.WorkloadCounter}
	case "echo":
		workloads = []check.Workload{check.WorkloadEcho}
	case "kv":
		workloads = []check.Workload{check.WorkloadKV}
	case "all":
		workloads = []check.Workload{check.WorkloadCounter, check.WorkloadEcho, check.WorkloadKV}
	default:
		log.Fatalf("unknown -check-workload %q (counter, echo, kv, all)", workload)
	}
	code := 0
	for _, w := range workloads {
		cfg := check.SimConfig{Threads: threads, QPs: qps, Workload: w}
		start := time.Now()
		res := check.Explore(cfg, check.MutNone, startSeed, seeds)
		elapsed := time.Since(start)
		if res.Failures == 0 {
			fmt.Printf("flockcheck %-8s %d schedules (seeds %d..%d): all linearizable (%v)\n",
				w, res.Runs, startSeed, startSeed+uint64(seeds)-1, elapsed.Round(time.Millisecond))
			continue
		}
		code = 1
		fmt.Printf("flockcheck %-8s %d/%d schedules FAILED (%v)\n%s\n",
			w, res.Failures, res.Runs, elapsed.Round(time.Millisecond), res.First)
	}
	return code
}
