package flock_test

import (
	"fmt"

	"flock"
)

// Example shows the minimal server/client round trip through the
// connection-handle API.
func Example() {
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()

	server, _ := net.NewNode(1, flock.Options{}, 0)
	server.RegisterHandler(1, func(req []byte) []byte {
		return append([]byte("echo: "), req...)
	})
	server.Serve()

	client, _ := net.NewNode(2, flock.Options{}, 0)
	conn, _ := client.Connect(1)
	th := conn.RegisterThread()
	resp, _ := th.Call(1, []byte("hello"))
	fmt.Println(string(resp.Data))
	// Output: echo: hello
}

// ExampleThread_FetchAdd shows remote atomics through a connection handle.
func ExampleThread_FetchAdd() {
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()
	server, _ := net.NewNode(1, flock.Options{}, 0)
	server.Serve()
	client, _ := net.NewNode(2, flock.Options{}, 0)
	conn, _ := client.Connect(1)
	region, _ := conn.AttachMemRegion(64)
	th := conn.RegisterThread()

	old1, _ := th.FetchAdd(region, 0, 5)
	old2, _ := th.FetchAdd(region, 0, 5)
	fmt.Println(old1, old2)
	// Output: 0 5
}

// ExampleThread_SendRPC shows pipelined asynchronous requests: several in
// flight, responses matched by sequence ID.
func ExampleThread_SendRPC() {
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()
	server, _ := net.NewNode(1, flock.Options{}, 0)
	server.RegisterHandler(1, func(req []byte) []byte { return req })
	server.Serve()
	client, _ := net.NewNode(2, flock.Options{}, 0)
	conn, _ := client.Connect(1)
	th := conn.RegisterThread()

	seqs := make(map[uint64]string)
	for _, msg := range []string{"a", "b", "c"} {
		seq, _ := th.SendRPC(1, []byte(msg))
		seqs[seq] = msg
	}
	got := 0
	for got < 3 {
		resp, _ := th.RecvRes()
		if seqs[resp.Seq] == string(resp.Data) {
			got++
		}
	}
	fmt.Println("matched", got)
	// Output: matched 3
}

// ExampleThread_CallAsync shows the pending-call pipeline: a window of
// futures in flight on one thread, each completed by its own record, with
// a blocking Call interleaved mid-window.
func ExampleThread_CallAsync() {
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()
	server, _ := net.NewNode(1, flock.Options{}, 0)
	server.RegisterHandler(1, func(req []byte) []byte { return req })
	server.Serve()
	client, _ := net.NewNode(2, flock.Options{}, 0)
	conn, _ := client.Connect(1)
	th := conn.RegisterThread()

	var pends []*flock.Pending
	for _, msg := range []string{"a", "b", "c"} {
		p, _ := th.CallAsync(1, []byte(msg), flock.CallOptions{})
		pends = append(pends, p)
	}
	sync, _ := th.Call(1, []byte("mid")) // fine with futures outstanding
	fmt.Println(string(sync.Data))
	sync.Release()
	for _, p := range pends {
		resp, _ := p.Wait()
		fmt.Println(string(resp.Data))
		resp.Release()
	}
	// Output:
	// mid
	// a
	// b
	// c
}

// ExampleThread_SendBatch shows one combining-queue submission carrying a
// thread's whole batch, one Pending per op.
func ExampleThread_SendBatch() {
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()
	server, _ := net.NewNode(1, flock.Options{}, 0)
	server.RegisterHandler(1, func(req []byte) []byte { return req })
	server.Serve()
	client, _ := net.NewNode(2, flock.Options{}, 0)
	conn, _ := client.Connect(1)
	th := conn.RegisterThread()

	ops := []flock.BatchOp{
		{RPCID: 1, Payload: []byte("x")},
		{RPCID: 1, Payload: []byte("y")},
	}
	pends, _ := th.SendBatch(ops, flock.CallOptions{})
	for _, p := range pends {
		resp, _ := p.Wait()
		fmt.Println(string(resp.Data))
		resp.Release()
	}
	// Output:
	// x
	// y
}

// ExampleClusterRouter shows the shard-aware client against a two-member
// sharded KV: a put routes to the key's owner, the coordinator live-
// migrates that shard to the other member, and the next access
// self-corrects through the WrongShard NACK carrying the newer map.
func ExampleClusterRouter() {
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()

	members := []flock.NodeID{1, 2}
	m, _ := flock.NewShardMap(members, 8, 0)
	coord := flock.NewClusterCoordinator(m)
	for _, id := range members {
		node, _ := net.NewNode(id, flock.Options{Workers: 2}, 0)
		svc, _ := flock.NewClusterService(node, m, 0)
		coord.AddService(svc)
		node.Serve()
	}

	client, _ := net.NewNode(100, flock.Options{}, 0)
	router := flock.NewClusterRouter(client, m)
	rt := router.Thread()

	rt.Put(42, 7) //nolint:errcheck
	from := m.OwnerOfKey(42)
	to := members[0]
	if to == from {
		to = members[1]
	}
	coord.MigrateShard(m.ShardOf(42), to) //nolint:errcheck
	// The router still holds the old map; the stale owner NACKs with the
	// new one and the call lands on the new owner transparently.
	v, found, _ := rt.Get(42)
	fmt.Println(v, found, router.Redirects() > 0)
	// Output: 7 true true
}

// ExampleAssignThreads shows the exported Algorithm 1 policy function.
func ExampleAssignThreads() {
	threads := []flock.ThreadStat{
		{ID: 0, MedianReq: 64, Reqs: 160, Bytes: 10240},
		{ID: 1, MedianReq: 64, Reqs: 160, Bytes: 10240},
		{ID: 2, MedianReq: 2048, Reqs: 10, Bytes: 20480},
	}
	asg := flock.AssignThreads(threads, 2)
	// Small-request threads share a slot; the large-payload thread gets
	// its own (head-of-line avoidance, §5.2).
	fmt.Println(asg[0] == asg[1], asg[2] != asg[0])
	// Output: true true
}
