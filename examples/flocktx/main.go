// flocktx: a three-server distributed transaction cluster (§8.5): OCC +
// two-phase commit + 3-way primary-backup replication over FLock. Ten
// coordinator threads run the Smallbank mix; the example verifies the
// money-conservation invariant at the end — serializability made visible.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"flock"
	"flock/internal/txn"
	"flock/internal/workload"
)

const (
	nServers  = 3
	nAccounts = 500
	initBal   = 1000
)

func main() {
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()

	cfg := txn.Config{Servers: nServers, Replication: 3, StoreCapacity: 1 << 14}.WithDefaults()

	// --- Servers: each is primary for one partition, replica for two ---
	var servers []*txn.Server
	var serverIDs []flock.NodeID
	for i := 0; i < nServers; i++ {
		id := flock.NodeID(100 + i)
		node, err := net.NewNode(id, flock.Options{QPsPerConn: 4}, 0)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := txn.NewFlockServerNode(node, cfg, i)
		if err != nil {
			log.Fatal(err)
		}
		if err := node.Serve(); err != nil {
			log.Fatal(err)
		}
		servers = append(servers, srv)
		serverIDs = append(serverIDs, id)
	}

	// Load: every account gets a checking and a savings balance on its
	// partition's primary and replicas.
	var bal [8]byte
	binary.LittleEndian.PutUint64(bal[:], initBal)
	for acct := uint64(0); acct < nAccounts; acct++ {
		for _, key := range []uint64{workload.CheckingKey(acct), workload.SavingsKey(acct)} {
			p := cfg.PartitionOf(key)
			for s := 0; s < nServers; s++ {
				if cfg.HostsPartition(s, p) {
					if err := servers[s].Store(p).Insert(key, bal[:]); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
	}

	// --- Client: 10 coordinator threads running Smallbank ---
	client, err := net.NewNode(1, flock.Options{QPsPerConn: 4}, 0)
	if err != nil {
		log.Fatal(err)
	}
	var commits, aborts, deltaSum atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr, err := txn.NewFlockTransport(client, serverIDs)
			if err != nil {
				log.Print(err)
				return
			}
			co := txn.NewCoordinator(cfg, tr)
			gen := workload.NewSmallbank(uint64(w)+1, nAccounts)
			for i := 0; i < 100; i++ {
				t := gen.Next()
				attempts, err := co.RunRetry(&t, 200)
				if err != nil {
					log.Printf("txn failed after %d attempts: %v", attempts, err)
					return
				}
				commits.Add(1)
				aborts.Add(uint64(attempts - 1))
				// Every engine write adds Delta to each written key.
				deltaSum.Add(t.Delta * uint64(len(t.Writes)))
			}
		}(w)
	}
	wg.Wait()

	// Verify: Σ balances == initial + Σ committed deltas on every copy.
	want := uint64(nAccounts)*2*initBal + deltaSum.Load()
	for s := 0; s < nServers; s++ {
		for p := 0; p < nServers; p++ {
			if !cfg.HostsPartition(s, p) {
				continue
			}
			var total uint64
			var buf [8]byte
			for acct := uint64(0); acct < nAccounts; acct++ {
				for _, key := range []uint64{workload.CheckingKey(acct), workload.SavingsKey(acct)} {
					if cfg.PartitionOf(key) != p {
						continue
					}
					if _, err := servers[s].Store(p).Get(key, buf[:]); err != nil {
						log.Fatal(err)
					}
					total += binary.LittleEndian.Uint64(buf[:])
				}
			}
			_ = total // per-partition totals are verified in aggregate below
		}
	}
	var grand uint64
	var buf [8]byte
	for acct := uint64(0); acct < nAccounts; acct++ {
		for _, key := range []uint64{workload.CheckingKey(acct), workload.SavingsKey(acct)} {
			p := cfg.PartitionOf(key)
			if _, err := servers[p].Store(p).Get(key, buf[:]); err != nil {
				log.Fatal(err)
			}
			grand += binary.LittleEndian.Uint64(buf[:])
		}
	}
	fmt.Printf("committed=%d occ-retries=%d\n", commits.Load(), aborts.Load())
	fmt.Printf("balance sum=%d expected=%d match=%v\n", grand, want, grand == want)
	if grand != want {
		log.Fatal("invariant violated: lost or double-applied updates")
	}
}
