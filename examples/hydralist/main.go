// hydralist: the §8.6 scenario — an ordered in-memory index served over
// FLock. The server hosts the index and registers get and scan handlers;
// client threads issue the paper's 90 % get / 10 % scan(64) mix with
// several outstanding requests each.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"flock"
	"flock/internal/hydralist"
	"flock/internal/stats"
)

const (
	rpcGet  = 1
	rpcScan = 2

	keys      = 200_000
	nThreads  = 4
	window    = 4 // outstanding requests per thread
	runWindow = 500 * time.Millisecond
)

func main() {
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()

	// --- Server: build and populate the index, register handlers ---
	server, err := net.NewNode(1, flock.Options{Dispatchers: 2}, 0)
	if err != nil {
		log.Fatal(err)
	}
	index := hydralist.New()
	rng := stats.NewRNG(1)
	for k := uint64(1); k <= keys; k++ {
		index.Insert(k, k*3, rng)
	}
	server.RegisterHandler(rpcGet, func(req []byte) []byte {
		key := binary.LittleEndian.Uint64(req)
		v, ok := index.Get(key)
		if !ok {
			return nil
		}
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, v)
		return out
	})
	server.RegisterHandler(rpcScan, func(req []byte) []byte {
		start := binary.LittleEndian.Uint64(req)
		count := int(binary.LittleEndian.Uint64(req[8:]))
		n := index.Scan(start, count, nil)
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, uint64(n)) // reply: #keys found (§8.6)
		return out
	})
	server.Serve()

	// --- Clients: the 90/10 mix with latency accounting per class ---
	client, err := net.NewNode(2, flock.Options{QPsPerConn: 2}, 0)
	if err != nil {
		log.Fatal(err)
	}
	conn, err := client.Connect(1)
	if err != nil {
		log.Fatal(err)
	}

	var gets, scans atomic.Uint64
	getHist := make([]*stats.Hist, nThreads)
	scanHist := make([]*stats.Hist, nThreads)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < nThreads; w++ {
		getHist[w] = stats.NewHist()
		scanHist[w] = stats.NewHist()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := conn.RegisterThread()
			r := stats.NewRNG(uint64(w) + 99)
			type inflight struct {
				p      *flock.Pending
				isScan bool
				at     time.Time
			}
			// CallAsync pipeline: a FIFO window of futures, each matched
			// to its call by the per-call completion table — no sequence
			// bookkeeping on this side of the API.
			var pending []inflight
			for {
				select {
				case <-stop:
					for _, f := range pending {
						f.p.Cancel()
					}
					return
				default:
				}
				for len(pending) < window {
					key := r.Uint64n(keys) + 1
					isScan := r.Uint64n(10) == 0
					req := make([]byte, 16)
					binary.LittleEndian.PutUint64(req, key)
					var p *flock.Pending
					var err error
					if isScan {
						binary.LittleEndian.PutUint64(req[8:], 64)
						p, err = th.CallAsync(rpcScan, req, flock.CallOptions{})
					} else {
						p, err = th.CallAsync(rpcGet, req[:8], flock.CallOptions{})
					}
					if err != nil {
						return
					}
					pending = append(pending, inflight{p: p, isScan: isScan, at: time.Now()})
				}
				f := pending[0]
				pending = pending[:copy(pending, pending[1:])]
				resp, err := f.p.Wait()
				if err != nil {
					return
				}
				resp.Release() // only the completion is needed; recycle the buffer
				lat := uint64(time.Since(f.at).Nanoseconds())
				if f.isScan {
					scans.Add(1)
					scanHist[w].Record(lat)
				} else {
					gets.Add(1)
					getHist[w].Record(lat)
				}
			}
		}(w)
	}
	time.Sleep(runWindow)
	close(stop)
	wg.Wait()

	allGet, allScan := stats.NewHist(), stats.NewHist()
	for w := 0; w < nThreads; w++ {
		allGet.Merge(getHist[w])
		allScan.Merge(scanHist[w])
	}
	total := gets.Load() + scans.Load()
	fmt.Printf("ops=%d (%.1f%% get) throughput=%.0f ops/s\n",
		total, 100*float64(gets.Load())/float64(total), float64(total)/runWindow.Seconds())
	fmt.Printf("get  p50=%-8v p99=%v\n", time.Duration(allGet.Median()), time.Duration(allGet.P99()))
	fmt.Printf("scan p50=%-8v p99=%v\n", time.Duration(allScan.Median()), time.Duration(allScan.P99()))
	m := server.Metrics()
	fmt.Printf("coalescing degree at server: %.2f\n", float64(m.ItemsIn)/float64(m.MsgsIn))
}
