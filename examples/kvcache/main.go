// kvcache: a remote key-value cache in the style the paper's intro
// motivates — the server hosts a MICA-like store in RDMA-registered
// memory; clients mix two access paths, both through one connection
// handle:
//
//   - put and get via RPC handlers (two-sided, server CPU involved), and
//   - version checks via one-sided RDMA reads of the store arena
//     (zero server CPU), the same trick FLockTX validation uses.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"flock"
	"flock/internal/kvstore"
)

const (
	rpcPut = 1
	rpcGet = 2

	storeName = "kv-arena"
	capacity  = 1 << 14
	valSize   = 8
)

func main() {
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()

	// --- Server: store in an exported (RDMA-registered) arena ---
	server, err := net.NewNode(1, flock.Options{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	arena, err := server.ExportMR(storeName, kvstore.ArenaSize(capacity, valSize))
	if err != nil {
		log.Fatal(err)
	}
	store, err := kvstore.New(arena, capacity, valSize)
	if err != nil {
		log.Fatal(err)
	}
	server.RegisterHandler(rpcPut, func(req []byte) []byte {
		key := binary.LittleEndian.Uint64(req)
		if err := store.Apply(key, req[8:16]); err != nil {
			return []byte{0}
		}
		return []byte{1}
	})
	server.RegisterHandler(rpcGet, func(req []byte) []byte {
		key := binary.LittleEndian.Uint64(req)
		out := make([]byte, valSize)
		if _, err := store.Get(key, out); err != nil {
			return nil
		}
		return out
	})
	server.Serve()

	// --- Client: 8 worker threads over one connection handle ---
	client, err := net.NewNode(2, flock.Options{QPsPerConn: 2}, 0)
	if err != nil {
		log.Fatal(err)
	}
	conn, err := client.Connect(1)
	if err != nil {
		log.Fatal(err)
	}
	region, err := conn.AttachNamed(storeName)
	if err != nil {
		log.Fatal(err)
	}

	var puts, gets, checks atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := conn.RegisterThread()
			req := make([]byte, 16)
			for i := 0; i < 400; i++ {
				key := uint64(w*1000 + i)
				binary.LittleEndian.PutUint64(req[0:], key)
				binary.LittleEndian.PutUint64(req[8:], key*7)
				r, err := th.Call(rpcPut, req)
				if err != nil || r.Data[0] != 1 {
					log.Printf("put %d failed: %v", key, err)
					return
				}
				r.Release()
				puts.Add(1)
				r, err = th.Call(rpcGet, req[:8])
				if err != nil {
					log.Printf("get %d failed: %v", key, err)
					return
				}
				got := binary.LittleEndian.Uint64(r.Data)
				r.Release()
				if got != key*7 {
					log.Printf("get %d = %d, want %d", key, got, key*7)
					return
				}
				gets.Add(1)
				// One-sided freshness check: read the key's version word
				// directly from the server arena without touching its CPU.
				if off, err := store.VersionOffset(key); err == nil {
					var word [8]byte
					if err := th.Read(region, off, word[:]); err == nil &&
						!kvstore.Locked(binary.LittleEndian.Uint64(word[:])) {
						checks.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	m := server.Metrics()
	fmt.Printf("puts=%d gets=%d one-sided-checks=%d\n", puts.Load(), gets.Load(), checks.Load())
	fmt.Printf("server RPC load: %d requests in %d messages (degree %.2f); one-sided checks consumed no server CPU\n",
		m.ItemsIn, m.MsgsIn, float64(m.ItemsIn)/float64(m.MsgsIn))
}
