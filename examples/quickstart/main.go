// Quickstart: one server, one client, the full Table-2 API surface —
// RPCs through the coalescing RPC layer, one-sided reads and writes, and
// remote atomics, all over a shared-QP connection handle.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"flock"
)

func main() {
	// The network stands in for out-of-band bootstrap (and, in this
	// reproduction, for the RDMA fabric itself).
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()

	// Server: register handlers, then serve.
	server, err := net.NewNode(1, flock.Options{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	server.RegisterHandler(1, func(req []byte) []byte {
		return append([]byte("echo: "), req...)
	})
	if err := server.Serve(); err != nil {
		log.Fatal(err)
	}

	// Client: connect (fl_connect) and register a thread handle.
	client, err := net.NewNode(2, flock.Options{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	conn, err := client.Connect(1)
	if err != nil {
		log.Fatal(err)
	}

	// --- RPC (fl_send_rpc / fl_recv_res) ---
	th := conn.RegisterThread()
	resp, err := th.Call(1, []byte("hello, flock"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rpc: %s\n", resp.Data)
	resp.Release() // Data is a view of a pooled buffer; recycle it

	// --- One-sided memory operations (fl_attach_mreg, fl_read, fl_write) ---
	region, err := conn.AttachMemRegion(4096)
	if err != nil {
		log.Fatal(err)
	}
	if err := th.Write(region, 128, []byte("written one-sided")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 17)
	if err := th.Read(region, 128, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read-back: %s\n", buf)

	// --- Remote atomics (fl_fetch_and_add, fl_cmp_and_swap) ---
	old, err := th.FetchAdd(region, 0, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetch-add: old=%d\n", old)
	old, err = th.CompareSwap(region, 0, 5, 42)
	if err != nil {
		log.Fatal(err)
	}
	var cur [8]byte
	th.Read(region, 0, cur[:]) //nolint:errcheck
	fmt.Printf("cmp-swap: old=%d now=%d\n", old, binary.LittleEndian.Uint64(cur[:]))

	// --- Concurrent threads sharing QPs: coalescing in action ---
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t := conn.RegisterThread()
			for j := 0; j < 500; j++ {
				r, err := t.Call(1, []byte{byte(i), byte(j)})
				if err != nil {
					log.Println(err)
					return
				}
				r.Release()
			}
		}(i)
	}
	wg.Wait()
	m := server.Metrics()
	fmt.Printf("server saw %d requests in %d coalesced messages (degree %.2f)\n",
		m.ItemsIn, m.MsgsIn, float64(m.ItemsIn)/float64(m.MsgsIn))
}
