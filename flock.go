// Package flock is a Go reproduction of FLock ("Birds of a Feather Flock
// Together: Scaling RDMA RPCs with FLock", SOSP 2021): a communication
// framework that scales RDMA RPCs over hardware reliable connections by
// sharing queue pairs among threads.
//
// FLock combines three mechanisms:
//
//   - A connection handle that multiplexes application threads over a set
//     of RC queue pairs while exposing the full RDMA surface: RPCs,
//     one-sided reads/writes, and atomics.
//   - FLock synchronization: an MCS-style thread combining queue in which
//     a transient leader coalesces concurrent threads' requests into a
//     single message posted with one doorbell.
//   - Symbiotic send-recv scheduling: the server activates/deactivates
//     QPs with a credit scheme driven by the observed coalescing degree,
//     and the client packs threads onto active QPs to minimize
//     head-of-line blocking.
//
// Because this reproduction has no RDMA hardware, nodes run over the
// software RNIC and in-process fabric in internal/rnic and
// internal/fabric. The library structure matches what a libibverbs
// backend would need.
//
// # Quickstart
//
//	net := flock.NewNetwork(flock.FabricConfig{})
//	defer net.Close()
//
//	server, _ := net.NewNode(1, flock.Options{}, 0)
//	server.RegisterHandler(1, func(req []byte) []byte {
//		return append([]byte("echo: "), req...)
//	})
//	server.Serve()
//
//	client, _ := net.NewNode(2, flock.Options{}, 0)
//	conn, _ := client.Connect(1)
//	th := conn.RegisterThread()
//	resp, _ := th.Call(1, []byte("hello"))
//	fmt.Println(string(resp.Data))
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package flock

import (
	"flock/internal/cluster"
	"flock/internal/core"
	"flock/internal/fabric"
	"flock/internal/resilience"
	"flock/internal/telemetry"
)

// Core types re-exported from the implementation package. The aliases keep
// one implementation while giving applications a stable, documented root
// import.
type (
	// Network owns the fabric and the FLock nodes on it; it stands in for
	// out-of-band bootstrap in a real deployment.
	Network = core.Network
	// Node is one FLock endpoint; it can serve handlers and open
	// connection handles concurrently.
	Node = core.Node
	// Conn is the connection handle multiplexing threads over RC QPs.
	Conn = core.Conn
	// Thread is a per-application-thread handle carrying the RPC and
	// memory APIs.
	Thread = core.Thread
	// Response is one RPC response.
	Response = core.Response
	// RemoteRegion is server memory attached for one-sided operations.
	RemoteRegion = core.RemoteRegion
	// Options configures a node; the zero value uses paper defaults.
	Options = core.Options
	// Handler processes one RPC request.
	Handler = core.Handler
	// NodeMetrics aggregates a node's activity counters.
	NodeMetrics = core.NodeMetrics
	// ThreadStat is the sender-side scheduler's per-thread input.
	ThreadStat = core.ThreadStat
	// FabricConfig configures the underlying fabric (MTU, UD loss).
	FabricConfig = fabric.Config
	// NodeID addresses a node on the fabric.
	NodeID = fabric.NodeID
	// OpError reports a failed one-sided operation.
	OpError = core.OpError
	// FaultPlan is a seeded fault-injection schedule for the fabric.
	FaultPlan = fabric.FaultPlan
	// LinkFault is one scheduled per-link (optionally per-QP) outage.
	LinkFault = fabric.LinkFault
	// FaultStats aggregates the fabric's fault-injection counters.
	FaultStats = fabric.FaultStats
	// TelemetrySnapshot is a point-in-time, JSON-encodable copy of the
	// telemetry registries (Network.TelemetrySnapshot, Node.Telemetry).
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryRegistry is a named collection of counters, gauges,
	// histograms, and the RPC-lifecycle trace ring.
	TelemetryRegistry = telemetry.Registry
	// TraceEvent is one recorded RPC-lifecycle event.
	TraceEvent = telemetry.TraceEvent
	// CallOptions parameterizes one resilient call (Thread.CallOpts).
	CallOptions = core.CallOptions
	// Pending is an in-flight asynchronous call (Thread.CallAsync,
	// Thread.SendBatch): Wait blocks for the result, Done polls, Cancel
	// abandons.
	Pending = core.Pending
	// BatchOp is one request in a Thread.SendBatch submission.
	BatchOp = core.BatchOp
)

// Cluster-layer types re-exported from internal/cluster: versioned shard
// placement, the epoch-routing client, membership, and live migration.
type (
	// ShardMap is the versioned shard→member placement (consistent
	// hashing over virtual nodes, epoch-stamped, wire-encodable).
	ShardMap = cluster.ShardMap
	// ShardMigration is one pending shard move recorded in a ShardMap.
	ShardMigration = cluster.Migration
	// ClusterService is the member-side sharded KV plus migration
	// machinery (dual-write forwarding, snapshot copy, atomic handoff).
	ClusterService = cluster.Service
	// ClusterRouter is the shard-aware client: it routes by its cached
	// map and self-corrects from epoch piggybacks and WrongShard NACKs.
	ClusterRouter = cluster.Router
	// ClusterRouterThread is a single-goroutine handle on a ClusterRouter.
	ClusterRouterThread = cluster.RouterThread
	// ClusterMembership is the ping-driven failure detector
	// (alive → suspect → dead, with rejoin).
	ClusterMembership = cluster.Membership
	// ClusterCoordinator is the in-process control plane driving
	// migrations, rebalancing, route-around, and decommission.
	ClusterCoordinator = cluster.Coordinator
	// ReplTuning shapes the group-commit replication pipeline (flush
	// entry/byte caps, first-waiter flush deadline, in-flight frame
	// depth); the zero value selects the defaults.
	ReplTuning = cluster.ReplTuning
	// ReplError is the typed failure of one replication forward,
	// carrying the backup and rejection status; it matches
	// ErrReplicaFenced / ErrReplicaNACK via errors.Is.
	ReplError = cluster.ReplError
	// MemberState is the failure detector's per-member verdict.
	MemberState = resilience.MemberState
)

// Failure-detector member states (ClusterMembership.State).
const (
	MemberLive     = resilience.MemberLive
	MemberSuspect  = resilience.MemberSuspect
	MemberDead     = resilience.MemberDead
	MemberDraining = resilience.MemberDraining
)

// Errors re-exported from the implementation.
var (
	// ErrClosed reports an operation on a closed node or connection.
	ErrClosed = core.ErrClosed
	// ErrPayloadTooLarge reports a payload above Options.MaxPayload.
	ErrPayloadTooLarge = core.ErrPayloadTooLarge
	// ErrNotServing reports a Connect to a node that has not called Serve.
	ErrNotServing = core.ErrNotServing
	// ErrNoSuchNode reports a Connect to an unknown node ID.
	ErrNoSuchNode = core.ErrNoSuchNode
	// ErrTimeout reports an RPC that missed its per-call deadline
	// (Options.RPCTimeout or CallWithDeadline); it is safe to retry.
	ErrTimeout = core.ErrTimeout
	// ErrQPBroken reports an operation failed by a QP entering the error
	// state; the connection recycles the QP in the background.
	ErrQPBroken = core.ErrQPBroken
	// ErrConnClosed reports an operation poisoned by connection teardown;
	// it wraps ErrClosed.
	ErrConnClosed = core.ErrConnClosed
	// ErrOverloaded reports server-side admission pushback; retry after
	// backoff (Options.RetryMaxAttempts does this automatically).
	ErrOverloaded = core.ErrOverloaded
	// ErrDraining reports a draining node refusing new work; it does not
	// wrap ErrClosed — retry on another node.
	ErrDraining = core.ErrDraining
	// ErrCircuitOpen reports a call refused locally by the connection's
	// open circuit breaker.
	ErrCircuitOpen = core.ErrCircuitOpen
	// ErrCanceled reports a Pending canceled by its owner before
	// completion; a late response is dropped as stale.
	ErrCanceled = core.ErrCanceled
	// ErrNoRoute reports a cluster call that exhausted its redirect
	// budget without converging on the shard's owner.
	ErrNoRoute = cluster.ErrNoRoute
	// ErrBadShardMap reports a malformed shard-map wire encoding.
	ErrBadShardMap = cluster.ErrBadMap
	// ErrBadReplica reports a malformed replication forward or ack frame.
	ErrBadReplica = cluster.ErrBadReplica
	// ErrReplicaFenced reports a replication batch rejected by a backup
	// holding a newer epoch (the sender installs the attached map).
	ErrReplicaFenced = cluster.ErrReplicaFenced
	// ErrReplicaNACK reports a replication batch rejected by a backup
	// for any non-fence status.
	ErrReplicaNACK = cluster.ErrReplicaNACK
)

// Response status codes.
const (
	// StatusOK means the handler ran.
	StatusOK = core.StatusOK
	// StatusNoHandler means no handler was registered for the RPC ID.
	StatusNoHandler = core.StatusNoHandler
	// StatusHandlerPanic means the handler panicked.
	StatusHandlerPanic = core.StatusHandlerPanic
	// StatusOverloaded is the admission-control pushback NACK.
	StatusOverloaded = core.StatusOverloaded
	// StatusDraining is the graceful-drain pushback NACK.
	StatusDraining = core.StatusDraining
	// StatusWrongShard is the cluster layer's routing NACK: the replier
	// does not own the key's shard, and the payload carries its (newer)
	// shard map so the caller self-corrects before retrying.
	StatusWrongShard = core.StatusWrongShard
)

// NewNetwork creates a network over a fresh in-process fabric.
func NewNetwork(cfg FabricConfig) *Network { return core.NewNetwork(cfg) }

// ParseFaultPlan parses the compact key=value fault spec accepted by
// flockload's -faults flag, e.g. "seed=7,rc-loss=0.01,flap=3".
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	return fabric.ParseFaultPlan(spec)
}

// AssignThreads exposes the sender-side scheduling policy (Algorithm 1)
// as a pure function; the benchmark models exercise it directly.
func AssignThreads(threads []ThreadStat, activeQPs int) map[uint32]int {
	return core.AssignThreads(threads, activeQPs)
}

// RedistributeQPs exposes the receiver-side QP allocation formula (§5.1)
// as a pure function.
func RedistributeQPs(util [][]float64, maxAQP int) []int {
	return core.RedistributeQPs(util, maxAQP)
}

// NewShardMap builds the epoch-1 placement of `shards` shards over the
// member set via consistent hashing with `vnodes` virtual nodes per
// member (0 → default). Members must be non-empty and deduplicated.
func NewShardMap(members []NodeID, shards, vnodes int) (*ShardMap, error) {
	return cluster.New(members, shards, vnodes)
}

// NewReplicatedShardMap is NewShardMap plus a replica factor: every
// shard gets `replicas` backups (clamped to members-1) drawn from its
// ring successors, and every acknowledged put synchronously replicates
// to all of them before the primary ACKs.
func NewReplicatedShardMap(members []NodeID, shards, vnodes, replicas int) (*ShardMap, error) {
	return cluster.NewReplicated(members, shards, vnodes, replicas)
}

// DecodeShardMap parses a shard map from its wire encoding (the payload
// of a StatusWrongShard NACK or an RPCMap reply).
func DecodeShardMap(b []byte) (*ShardMap, error) { return cluster.DecodeShardMap(b) }

// NewClusterService stands the sharded KV + migration machinery up on a
// member node. The node must run with Options.Workers > 0.
func NewClusterService(node *Node, m *ShardMap, storeCap int) (*ClusterService, error) {
	return cluster.NewService(node, m, storeCap)
}

// NewClusterRouter builds a shard-aware client router on node seeded
// with the given map; it self-corrects as epochs advance.
func NewClusterRouter(node *Node, initial *ShardMap) *ClusterRouter {
	return cluster.NewRouter(node, initial)
}

// NewClusterMembership builds the ping-driven failure detector probing
// the router's member set over the router's connections.
func NewClusterMembership(r *ClusterRouter) *ClusterMembership {
	return cluster.NewMembership(r)
}

// NewClusterCoordinator builds the in-process control plane over the
// initial map; register member services and routers on it.
func NewClusterCoordinator(initial *ShardMap) *ClusterCoordinator {
	return cluster.NewCoordinator(initial)
}
