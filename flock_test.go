package flock_test

import (
	"bytes"
	"sync"
	"testing"

	"flock"
)

// TestPublicAPIQuickstart walks the documented quickstart path through the
// public (root-package) API only.
func TestPublicAPIQuickstart(t *testing.T) {
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()

	server, err := net.NewNode(1, flock.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	server.RegisterHandler(1, func(req []byte) []byte {
		return append([]byte("echo: "), req...)
	})
	if err := server.Serve(); err != nil {
		t.Fatal(err)
	}

	client, err := net.NewNode(2, flock.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := client.Connect(1)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()
	resp, err := th.Call(1, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Data) != "echo: hello" {
		t.Fatalf("resp = %q", resp.Data)
	}
	if resp.Status != flock.StatusOK {
		t.Fatalf("status = %d", resp.Status)
	}

	// Memory path.
	region, err := conn.AttachMemRegion(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Write(region, 0, []byte("mem")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := th.Read(region, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("mem")) {
		t.Fatalf("read back %q", got)
	}
	if old, err := th.FetchAdd(region, 8, 3); err != nil || old != 0 {
		t.Fatalf("faa: %v %d", err, old)
	}
}

func TestPublicAPIErrors(t *testing.T) {
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()
	client, _ := net.NewNode(1, flock.Options{}, 0)
	if _, err := client.Connect(99); err != flock.ErrNoSuchNode {
		t.Fatalf("connect unknown: %v", err)
	}
	srv, _ := net.NewNode(2, flock.Options{}, 0)
	if _, err := client.Connect(2); err != flock.ErrNotServing {
		t.Fatalf("connect non-serving: %v", err)
	}
	srv.Serve()
	conn, err := client.Connect(2)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()
	if _, err := th.SendRPC(1, make([]byte, flock.Options{}.MaxPayload+1<<20)); err != flock.ErrPayloadTooLarge {
		t.Fatalf("oversized: %v", err)
	}
}

// TestPolicyFunctionsExported sanity-checks the exported pure policy
// functions benchmarks and downstream schedulers can reuse.
func TestPolicyFunctionsExported(t *testing.T) {
	asg := flock.AssignThreads([]flock.ThreadStat{
		{ID: 0, MedianReq: 64, Reqs: 10, Bytes: 640},
		{ID: 1, MedianReq: 64, Reqs: 10, Bytes: 640},
	}, 2)
	if len(asg) != 2 {
		t.Fatalf("assignments: %v", asg)
	}
	counts := flock.RedistributeQPs([][]float64{{10, 10}, {1, 1}}, 2)
	if len(counts) != 2 || counts[0] < 1 || counts[1] < 1 {
		t.Fatalf("counts: %v", counts)
	}
}

func TestPublicAPIConcurrent(t *testing.T) {
	net := flock.NewNetwork(flock.FabricConfig{})
	defer net.Close()
	server, _ := net.NewNode(1, flock.Options{QPsPerConn: 2}, 0)
	server.RegisterHandler(7, func(req []byte) []byte { return req })
	server.Serve()
	client, _ := net.NewNode(2, flock.Options{QPsPerConn: 2}, 0)
	conn, err := client.Connect(1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := conn.RegisterThread()
			msg := []byte{byte(i)}
			for j := 0; j < 200; j++ {
				resp, err := th.Call(7, msg)
				if err != nil || !bytes.Equal(resp.Data, msg) {
					t.Errorf("call: %v %v", err, resp.Data)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
