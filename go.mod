module flock

go 1.22
