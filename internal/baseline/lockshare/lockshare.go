// Package lockshare is the FaRM-style RC RPC baseline of §8.3.1: RPC over
// two RDMA writes (request ring, response ring) where threads either own a
// dedicated QP ("no sharing", 1 thread/QP) or share a QP behind a spinlock
// (2 or 4 threads/QP in Figure 9). There is no coalescing: each thread
// stages and posts its own single-request message while holding the lock,
// which is exactly the serialization FLock's combining removes.
//
// The wire format is a single-item version of FLock's (§4.1): length,
// canary, metadata, payload, trailing canary. Keeping the framing
// comparable isolates the synchronization strategy as the only difference,
// as the paper's "fair comparison" requires.
package lockshare

import (
	"encoding/binary"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flock/internal/fabric"
	"flock/internal/mem"
	"flock/internal/rnic"
)

// zeroPage backs ring zeroing after consumption, replacing the per-request
// zero-slab allocation.
var zeroPage [4096]byte

// zeroRange clears n bytes of mr starting at off using the shared zero page.
func zeroRange(mr *rnic.MemRegion, off, n int) {
	for n > 0 {
		k := n
		if k > len(zeroPage) {
			k = len(zeroPage)
		}
		mr.WriteAt(zeroPage[:k], off) //nolint:errcheck // in range by construction
		off += k
		n -= k
	}
}

// Message layout: 24-byte header, payload (8-aligned), 8-byte trailer.
//
//	+0  totalLen uint32
//	+4  size     uint32  payload bytes
//	+8  canary   uint64
//	+16 threadID uint32
//	+20 rpcID    uint32
//	... payload
//	+n  canary   uint64
const (
	hdrBytes  = 24
	tailBytes = 8
)

// Errors.
var (
	ErrClosed  = errors.New("lockshare: endpoint closed")
	ErrTooBig  = errors.New("lockshare: payload exceeds ring capacity")
	ErrRingful = errors.New("lockshare: ring buffer wedged")
)

func pad8(n int) int { return (n + 7) &^ 7 }

// Handler processes a request payload into a response payload.
type Handler func(req []byte) []byte

// Config tunes the baseline.
type Config struct {
	// ThreadsPerQP is the sharing degree: 1 reproduces the "no sharing"
	// configuration; 2 or 4 the FaRM-like spinlock sharing of Figure 9.
	ThreadsPerQP int
	// RingBytes sizes each request/response ring. Default 1 MiB.
	RingBytes int
	// MaxPayload bounds one request or response. Default 64 KiB.
	MaxPayload int
	// Spin selects a spinlock (true, as FaRM) or sync.Mutex (false) for
	// QP sharing.
	Spin bool
}

func (c Config) withDefaults() Config {
	if c.ThreadsPerQP <= 0 {
		c.ThreadsPerQP = 1
	}
	if c.RingBytes <= 0 {
		c.RingBytes = 1 << 20
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = 64 << 10
	}
	return c
}

// spinLock is a test-and-set spinlock, as FaRM guards shared QPs.
type spinLock struct{ v atomic.Uint32 }

func (l *spinLock) Lock() {
	for !l.v.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

func (l *spinLock) Unlock() { l.v.Store(0) }

// qpShare is one shared QP with its rings.
type qpShare struct {
	mu        sync.Locker
	qp        *rnic.QP
	reqMirror *rnic.MemRegion // local staging, mirrors server request ring
	reqRKey   uint32
	respRing  *rnic.MemRegion // server writes responses here
	tail      uint64          // request ring tail (under mu)
	reqHead   uint64          // consumed head as last piggybacked (under mu)
	wrScratch []rnic.SendWR   // post batch staging (under mu; PostSend copies)

	// Per-thread response slots: the server writes thread t's response at
	// slot t, so concurrent threads on one QP don't contend on response
	// parsing. Slot size = MaxPayload + framing.
	slotBytes int
}

// Server is the baseline RPC server: it polls per-QP request rings and
// answers into per-thread response slots.
type Server struct {
	dev  *rnic.Device
	cfg  Config
	node fabric.NodeID

	handlers atomic.Value // map[uint32]Handler
	handMu   sync.Mutex

	mu   sync.Mutex
	qps  []*serverQP
	done chan struct{}
	wg   sync.WaitGroup

	served atomic.Uint64
}

type serverQP struct {
	qp         *rnic.QP
	reqRing    *rnic.MemRegion
	head       uint64
	respRKey   uint32
	respMirror *rnic.MemRegion
	slotBytes  int
	ringBytes  int
}

// NewServer starts the baseline server on dev.
func NewServer(dev *rnic.Device, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{dev: dev, cfg: cfg, node: dev.Node(), done: make(chan struct{})}
	s.handlers.Store(map[uint32]Handler{})
	s.wg.Add(1)
	go s.dispatch()
	return s
}

// RegisterHandler binds fn to rpcID.
func (s *Server) RegisterHandler(rpcID uint32, fn Handler) {
	s.handMu.Lock()
	defer s.handMu.Unlock()
	old := s.handlers.Load().(map[uint32]Handler)
	next := make(map[uint32]Handler, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[rpcID] = fn
	s.handlers.Store(next)
}

// Served reports handler executions.
func (s *Server) Served() uint64 { return s.served.Load() }

// Close stops the dispatcher.
func (s *Server) Close() {
	select {
	case <-s.done:
		return
	default:
	}
	close(s.done)
	s.wg.Wait()
}

// accept wires the server end of one shared QP (in-process bootstrap).
func (s *Server) accept(clientNode fabric.NodeID, clientQPN int, respRKey uint32, slotBytes int) (qpn int, reqRKey uint32, err error) {
	qp, err := s.dev.CreateQP(rnic.RC, s.dev.CreateCQ(), s.dev.CreateCQ())
	if err != nil {
		return 0, 0, err
	}
	reqRing, err := s.dev.RegisterMR(s.cfg.RingBytes, rnic.PermRemoteWrite)
	if err != nil {
		return 0, 0, err
	}
	respMirror, err := s.dev.RegisterMR(slotBytes*s.cfg.ThreadsPerQP, 0)
	if err != nil {
		return 0, 0, err
	}
	if err := qp.Connect(int(clientNode), clientQPN); err != nil {
		return 0, 0, err
	}
	s.mu.Lock()
	s.qps = append(s.qps, &serverQP{
		qp: qp, reqRing: reqRing, respRKey: respRKey,
		respMirror: respMirror, slotBytes: slotBytes, ringBytes: s.cfg.RingBytes,
	})
	s.mu.Unlock()
	return qp.QPN(), reqRing.RKey(), nil
}

// snapshotQPs copies the server QP list.
func (s *Server) snapshotQPs() []*serverQP {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*serverQP, len(s.qps))
	copy(out, s.qps)
	return out
}

// dispatch polls request rings and serves requests inline.
func (s *Server) dispatch() {
	defer s.wg.Done()
	idle := 0
	for {
		select {
		case <-s.done:
			return
		default:
		}
		busy := false
		for _, sq := range s.snapshotQPs() {
			for s.serveOne(sq) {
				busy = true
			}
		}
		if busy {
			idle = 0
		} else {
			idle++
			if idle < 64 {
				runtime.Gosched()
			} else {
				time.Sleep(5 * time.Microsecond)
			}
		}
	}
}

// serveOne consumes and answers one request from sq's ring, if complete.
func (s *Server) serveOne(sq *serverQP) bool {
	off := int(sq.head) % sq.ringBytes
	word := sq.reqRing.Load64(off)
	totalLen := uint32(word)
	if totalLen == 0 {
		return false
	}
	if totalLen == ^uint32(0) { // wrap marker
		sq.reqRing.WriteAt(zeroPage[:8], off) //nolint:errcheck
		sq.head += uint64(sq.ringBytes - off)
		return true
	}
	if int(totalLen) < hdrBytes+tailBytes || int(totalLen) > sq.ringBytes-off {
		return false
	}
	canary := sq.reqRing.Load64(off + 8)
	if canary == 0 || sq.reqRing.Load64(off+int(totalLen)-tailBytes) != canary {
		return false // incomplete
	}
	// Copy the message once into a pooled buffer; the handler may return a
	// view of it (echo), so the lease is held until respond has staged the
	// response into the mirror MR.
	b := mem.Get(int(totalLen))
	buf := b.Data()
	sq.reqRing.ReadAt(buf, off) //nolint:errcheck
	size := binary.LittleEndian.Uint32(buf[4:])
	threadID := binary.LittleEndian.Uint32(buf[16:])
	rpcID := binary.LittleEndian.Uint32(buf[20:])
	payload := buf[hdrBytes : hdrBytes+size]

	fn := s.handlers.Load().(map[uint32]Handler)[rpcID]
	var resp []byte
	if fn != nil {
		resp = fn(payload)
	}
	s.served.Add(1)

	// Zero and advance.
	zeroRange(sq.reqRing, off, int(totalLen))
	sq.head += uint64(totalLen)

	// Respond into the thread's slot with the consumed head piggybacked
	// in place of the canary-protected header's reserved word.
	s.respond(sq, threadID, rpcID, resp)
	b.Release()
	return true
}

// respond writes one response message into the client's per-thread slot.
func (s *Server) respond(sq *serverQP, threadID, rpcID uint32, resp []byte) {
	if len(resp) > sq.slotBytes-hdrBytes-tailBytes-8 {
		resp = resp[:0]
	}
	msgLen := hdrBytes + 8 + pad8(len(resp)) + tailBytes // +8 carries the consumed head
	slotOff := int(threadID%uint32(s.cfg.ThreadsPerQP)) * sq.slotBytes
	// Staging lease: the message is copied into the mirror MR below, so the
	// buffer is recycled as soon as WriteAt returns. Clear the pad bytes
	// between payload and canary (recycled buffers carry old data).
	b := mem.Get(msgLen)
	buf := b.Data()
	for i := hdrBytes + 8 + len(resp); i < msgLen-tailBytes; i++ {
		buf[i] = 0
	}
	canary := uint64(time.Now().UnixNano())<<1 | 1
	binary.LittleEndian.PutUint32(buf[0:], uint32(msgLen))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(resp)))
	binary.LittleEndian.PutUint64(buf[8:], canary)
	binary.LittleEndian.PutUint32(buf[16:], threadID)
	binary.LittleEndian.PutUint32(buf[20:], rpcID)
	binary.LittleEndian.PutUint64(buf[hdrBytes:], sq.head) // piggybacked consumed head
	copy(buf[hdrBytes+8:], resp)
	binary.LittleEndian.PutUint64(buf[msgLen-tailBytes:], canary)
	sq.respMirror.WriteAt(buf, slotOff) //nolint:errcheck
	b.Release()
	sq.qp.PostSend(rnic.SendWR{ //nolint:errcheck
		Op: rnic.OpWrite, LocalMR: sq.respMirror, LocalOff: slotOff, LocalLen: msgLen,
		RKey: sq.respRKey, RemoteOff: slotOff,
	})
}

// Client is the baseline client: a set of shared QPs, each used by
// ThreadsPerQP threads under a lock.
type Client struct {
	dev    *rnic.Device
	cfg    Config
	server *Server

	mu      sync.Mutex
	shares  []*qpShare
	nextTID uint32
}

// NewClient creates a baseline client talking to srv (in-process
// bootstrap, as elsewhere).
func NewClient(dev *rnic.Device, cfg Config, srv *Server) *Client {
	cfg = cfg.withDefaults()
	return &Client{dev: dev, cfg: cfg, server: srv}
}

// Thread is one application thread's handle.
type Thread struct {
	c        *Client
	share    *qpShare
	id       uint32
	slot     int
	lastSeen uint64 // canary of the last consumed response
}

// RegisterThread allocates a thread handle, creating a new shared QP for
// every ThreadsPerQP threads.
func (c *Client) RegisterThread() (*Thread, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextTID
	c.nextTID++
	slot := int(id) % c.cfg.ThreadsPerQP
	if slot == 0 {
		share, err := c.newShare()
		if err != nil {
			return nil, err
		}
		c.shares = append(c.shares, share)
	}
	share := c.shares[len(c.shares)-1]
	return &Thread{c: c, share: share, id: id, slot: slot}, nil
}

// newShare builds one shared QP and its rings.
func (c *Client) newShare() (*qpShare, error) {
	slotBytes := pad8(c.cfg.MaxPayload) + hdrBytes + tailBytes + 16
	qp, err := c.dev.CreateQP(rnic.RC, c.dev.CreateCQ(), c.dev.CreateCQ())
	if err != nil {
		return nil, err
	}
	reqMirror, err := c.dev.RegisterMR(c.cfg.RingBytes, 0)
	if err != nil {
		return nil, err
	}
	respRing, err := c.dev.RegisterMR(slotBytes*c.cfg.ThreadsPerQP, rnic.PermRemoteWrite)
	if err != nil {
		return nil, err
	}
	qpn, reqRKey, err := c.server.accept(c.dev.Node(), qp.QPN(), respRing.RKey(), slotBytes)
	if err != nil {
		return nil, err
	}
	if err := qp.Connect(int(c.server.node), qpn); err != nil {
		return nil, err
	}
	var mu sync.Locker
	if c.cfg.Spin {
		mu = &spinLock{}
	} else {
		mu = &sync.Mutex{}
	}
	return &qpShare{
		mu: mu, qp: qp, reqMirror: reqMirror, reqRKey: reqRKey,
		respRing: respRing, slotBytes: slotBytes,
	}, nil
}

// Call performs one synchronous RPC: stage the single-request message,
// post it under the QP lock, then poll the thread's response slot.
func (t *Thread) Call(rpcID uint32, payload []byte) ([]byte, error) {
	if len(payload) > t.c.cfg.MaxPayload {
		return nil, ErrTooBig
	}
	sh := t.share
	msgLen := hdrBytes + pad8(len(payload)) + tailBytes
	canary := uint64(time.Now().UnixNano())<<8 | uint64(t.id&0x7f) | 1

	sh.mu.Lock()
	// Ring space: single-writer under the lock; consumed head is learned
	// from response piggybacks.
	for spin := 0; ; spin++ {
		off := int(sh.tail) % t.c.cfg.RingBytes
		need := msgLen
		if off+msgLen > t.c.cfg.RingBytes {
			need += t.c.cfg.RingBytes - off
		}
		if need <= t.c.cfg.RingBytes-int(sh.tail-sh.reqHead) {
			break
		}
		if spin > 1_000_000 {
			sh.mu.Unlock()
			return nil, ErrRingful
		}
		runtime.Gosched() // wait for a response to piggyback the head
	}
	off := int(sh.tail) % t.c.cfg.RingBytes
	wrs := sh.wrScratch[:0]
	if off+msgLen > t.c.cfg.RingBytes {
		rem := t.c.cfg.RingBytes - off
		var marker [8]byte
		binary.LittleEndian.PutUint32(marker[:], ^uint32(0))
		sh.reqMirror.WriteAt(marker[:], off) //nolint:errcheck
		wrs = append(wrs, rnic.SendWR{
			Op: rnic.OpWrite, LocalMR: sh.reqMirror, LocalOff: off, LocalLen: 8,
			RKey: sh.reqRKey, RemoteOff: off,
		})
		sh.tail += uint64(rem)
		off = 0
	}
	// Pooled staging lease: WriteAt copies the message into the mirror MR,
	// so the buffer is recycled before the post. Pad bytes between payload
	// and canary are cleared (recycled buffers carry old data).
	b := mem.Get(msgLen)
	buf := b.Data()
	for i := hdrBytes + len(payload); i < msgLen-tailBytes; i++ {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:], uint32(msgLen))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:], canary)
	binary.LittleEndian.PutUint32(buf[16:], t.id)
	binary.LittleEndian.PutUint32(buf[20:], rpcID)
	copy(buf[hdrBytes:], payload)
	binary.LittleEndian.PutUint64(buf[msgLen-tailBytes:], canary)
	sh.reqMirror.WriteAt(buf, off) //nolint:errcheck
	b.Release()
	sh.tail += uint64(msgLen)
	wrs = append(wrs, rnic.SendWR{
		Op: rnic.OpWrite, LocalMR: sh.reqMirror, LocalOff: off, LocalLen: msgLen,
		RKey: sh.reqRKey, RemoteOff: off,
	})
	err := sh.qp.PostSend(wrs...)
	sh.wrScratch = wrs[:0]
	sh.mu.Unlock()
	if err != nil {
		return nil, err
	}

	// Poll the private response slot; no lock needed.
	slotOff := t.slot * sh.slotBytes
	for {
		word := sh.respRing.Load64(slotOff)
		totalLen := uint32(word)
		if totalLen >= hdrBytes+tailBytes && int(totalLen) <= sh.slotBytes {
			can := sh.respRing.Load64(slotOff + 8)
			if can != 0 && can != t.lastSeen &&
				sh.respRing.Load64(slotOff+int(totalLen)-tailBytes) == can {
				rb := mem.Get(int(totalLen))
				rbuf := rb.Data()
				sh.respRing.ReadAt(rbuf, slotOff) //nolint:errcheck
				size := binary.LittleEndian.Uint32(rbuf[4:])
				head := binary.LittleEndian.Uint64(rbuf[hdrBytes:])
				t.lastSeen = can
				// Publish the piggybacked consumed head (monotonic).
				sh.mu.Lock()
				if head > sh.reqHead {
					sh.reqHead = head
				}
				sh.mu.Unlock()
				// The caller owns the returned payload, so this one copy
				// out of the lease remains.
				out := make([]byte, size)
				copy(out, rbuf[hdrBytes+8:hdrBytes+8+size])
				rb.Release()
				return out, nil
			}
		}
		runtime.Gosched()
	}
}
