package lockshare

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"flock/internal/fabric"
	"flock/internal/rnic"
)

func testSetup(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	fab := fabric.New(fabric.Config{})
	sdev, err := rnic.NewDevice(fab, rnic.Config{Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	cdev, err := rnic.NewDevice(fab, rnic.Config{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdev.Close(); cdev.Close() })
	srv := NewServer(sdev, cfg)
	t.Cleanup(srv.Close)
	srv.RegisterHandler(1, func(req []byte) []byte {
		out := make([]byte, len(req))
		copy(out, req)
		return out
	})
	return srv, NewClient(cdev, cfg, srv)
}

func TestNoSharingEcho(t *testing.T) {
	_, cl := testSetup(t, Config{ThreadsPerQP: 1})
	th, err := cl.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		msg := []byte(fmt.Sprintf("ns-%d", i))
		resp, err := th.Call(1, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp, msg) {
			t.Fatalf("mismatch: %q", resp)
		}
	}
}

func TestSpinlockSharing(t *testing.T) {
	for _, tpq := range []int{2, 4} {
		t.Run(fmt.Sprintf("threads-per-qp-%d", tpq), func(t *testing.T) {
			srv, cl := testSetup(t, Config{ThreadsPerQP: tpq, Spin: true})
			const nThreads = 8
			const perThread = 150
			var wg sync.WaitGroup
			for i := 0; i < nThreads; i++ {
				th, err := cl.RegisterThread()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(th *Thread, id int) {
					defer wg.Done()
					for j := 0; j < perThread; j++ {
						msg := []byte(fmt.Sprintf("t%d-%d", id, j))
						resp, err := th.Call(1, msg)
						if err != nil {
							t.Error(err)
							return
						}
						if !bytes.Equal(resp, msg) {
							t.Errorf("mismatch: %q != %q", resp, msg)
							return
						}
					}
				}(th, i)
			}
			wg.Wait()
			if got := srv.Served(); got != nThreads*perThread {
				t.Fatalf("served = %d, want %d", got, nThreads*perThread)
			}
		})
	}
}

func TestQPCountMatchesSharingDegree(t *testing.T) {
	srv, cl := testSetup(t, Config{ThreadsPerQP: 4})
	for i := 0; i < 8; i++ {
		if _, err := cl.RegisterThread(); err != nil {
			t.Fatal(err)
		}
	}
	// 8 threads at 4/QP ⇒ 2 shared QPs on the client.
	cl.mu.Lock()
	shares := len(cl.shares)
	cl.mu.Unlock()
	if shares != 2 {
		t.Fatalf("client created %d QPs, want 2", shares)
	}
	_ = srv
}

func TestRingWrapLongRun(t *testing.T) {
	// Small ring forces wraps; payloads vary to exercise padding.
	_, cl := testSetup(t, Config{ThreadsPerQP: 1, RingBytes: 4096, MaxPayload: 256})
	th, err := cl.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		msg := make([]byte, 1+i%256)
		for j := range msg {
			msg[j] = byte(i)
		}
		resp, err := th.Call(1, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp, msg) {
			t.Fatalf("round %d corrupted", i)
		}
	}
}

func TestPayloadTooBig(t *testing.T) {
	_, cl := testSetup(t, Config{ThreadsPerQP: 1, MaxPayload: 64})
	th, _ := cl.RegisterThread()
	if _, err := th.Call(1, make([]byte, 65)); err != ErrTooBig {
		t.Fatalf("expected ErrTooBig, got %v", err)
	}
}

func TestSpinLock(t *testing.T) {
	var l spinLock
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d (lock broken)", counter)
	}
}
