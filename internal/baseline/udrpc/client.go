package udrpc

import (
	"time"

	"flock/internal/rnic"
)

// ClientThread is one application thread's UD endpoint: its own datagram
// QP (as in FaSST/eRPC, where per-thread QPs are cheap because UD keeps no
// per-peer state), posted receive buffers for responses, and the software
// reliability state — outstanding table, retransmission timers, ack
// watermark.
//
// A ClientThread must be used by one goroutine.
type ClientThread struct {
	dev *rnic.Device
	cfg Config
	qp  *rnic.QP

	server   rnic.Address
	serverID uint64 // this thread's identity: (node << 32) | qpn

	slots []*recvSlot

	seq      uint32
	ackBelow uint32
	pending  map[uint32]*pendingReq
	partials map[uint32]*partial
	ready    []Response // completed exchanges beyond the one Recv returned

	retransmits uint64
	closed      bool
}

// pendingReq tracks one outstanding request for retransmission.
type pendingReq struct {
	rpcID    uint32
	payload  []byte
	sentAt   time.Time
	attempts int
}

// Response is one completed RPC exchange.
type Response struct {
	Seq   uint32
	RPCID uint32
	Data  []byte
}

// NewClientThread creates a client endpoint on dev talking to one server
// QP (pick the QPN from Server.QPNs, typically by thread hash — eRPC pins
// a client thread to a server thread the same way).
func NewClientThread(dev *rnic.Device, cfg Config, serverNode int, serverQPN int) (*ClientThread, error) {
	cfg = cfg.withDefaults()
	qp, err := dev.CreateQP(rnic.UD, dev.CreateCQ(), dev.CreateCQ())
	if err != nil {
		return nil, err
	}
	c := &ClientThread{
		dev:      dev,
		cfg:      cfg,
		qp:       qp,
		server:   rnic.Address{Node: serverNode, QPN: serverQPN},
		serverID: uint64(dev.Node())<<32 | uint64(qp.QPN()),
		pending:  make(map[uint32]*pendingReq),
		partials: make(map[uint32]*partial),
	}
	for j := 0; j < cfg.RecvDepth; j++ {
		mr, err := dev.RegisterMR(dev.Fabric().MTU(), 0)
		if err != nil {
			return nil, err
		}
		c.slots = append(c.slots, &recvSlot{mr: mr, len: dev.Fabric().MTU()})
		if err := qp.PostRecv(rnic.RecvWR{WRID: uint64(j), MR: mr, Off: 0, Len: mr.Len()}); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Close marks the endpoint closed; subsequent Sends fail. (The underlying
// QP lives until its device closes, as with real verbs resources.)
func (c *ClientThread) Close() { c.closed = true }

// Retransmits reports how many datagram retransmissions this thread has
// performed — pure software-reliability overhead that RC provides in
// hardware.
func (c *ClientThread) Retransmits() uint64 { return c.retransmits }

// Outstanding reports in-flight requests.
func (c *ClientThread) Outstanding() int { return len(c.pending) }

// Send transmits one request and returns its sequence number. The
// response arrives through Recv; retransmission happens inside Recv's
// polling loop.
func (c *ClientThread) Send(rpcID uint32, payload []byte) (uint32, error) {
	if c.closed {
		return 0, ErrClosed
	}
	if len(payload) > c.cfg.MaxPayload {
		return 0, ErrTooBig
	}
	c.seq++
	seq := c.seq
	// Retain the payload for retransmission.
	kept := make([]byte, len(payload))
	copy(kept, payload)
	c.pending[seq] = &pendingReq{rpcID: rpcID, payload: kept, sentAt: time.Now(), attempts: 1}
	sendFragments(c.qp, c.dev.Fabric().MTU(), c.server, kindRequest, rpcID, c.serverID, seq, c.ackBelow, payload)
	return seq, nil
}

// Recv blocks until any outstanding request completes, driving
// retransmission timers while it waits. Responses that arrived packed in
// a coalesced datagram are drained one per call.
func (c *ClientThread) Recv() (Response, error) {
	if len(c.ready) > 0 {
		r := c.ready[0]
		c.ready = c.ready[1:]
		return r, nil
	}
	if len(c.pending) == 0 {
		return Response{}, ErrClosed
	}
	var cqBuf [16]rnic.Completion
	idle := 0
	for {
		// Process EVERY polled completion: Poll consumes entries from the
		// CQ, so returning at the first match would lose the rest of the
		// batch (both their responses and their receive buffers).
		k := c.qp.RecvCQ().Poll(cqBuf[:])
		for _, comp := range cqBuf[:k] {
			slot := c.slots[comp.WRID]
			if comp.Status == rnic.StatusOK {
				pkt := make([]byte, comp.ByteLen)
				slot.mr.ReadAt(pkt, 0) //nolint:errcheck
				if resp := c.handleResponse(pkt); resp != nil {
					c.ready = append(c.ready, *resp)
				}
			}
			c.qp.PostRecv(rnic.RecvWR{WRID: comp.WRID, MR: slot.mr, Off: 0, Len: slot.len}) //nolint:errcheck
		}
		if len(c.ready) > 0 {
			r := c.ready[0]
			c.ready = c.ready[1:]
			return r, nil
		}
		if k == 0 {
			idle++
			if idle%32 == 0 {
				if err := c.checkRetransmit(); err != nil {
					return Response{}, err
				}
			}
			backoff(idle)
		} else {
			idle = 0
		}
	}
}

// Call is the synchronous convenience wrapper.
func (c *ClientThread) Call(rpcID uint32, payload []byte) (Response, error) {
	seq, err := c.Send(rpcID, payload)
	if err != nil {
		return Response{}, err
	}
	for {
		r, err := c.Recv()
		if err != nil {
			return Response{}, err
		}
		if r.Seq == seq {
			return r, nil
		}
	}
}

// handleResponse processes one inbound response datagram; returns the
// completed exchange when the (possibly fragmented) response is whole.
func (c *ClientThread) handleResponse(pkt []byte) *Response {
	if len(pkt) < hdrBytes {
		return nil
	}
	h := getPktHeader(pkt)
	if h.kind == kindBatch {
		return c.handleBatch(h, pkt[hdrBytes:])
	}
	if h.kind != kindResponse {
		return nil
	}
	req, outstanding := c.pending[h.seq]
	if !outstanding {
		return nil // duplicate response for an already-completed exchange
	}
	payload, complete := c.reassembleResp(h, pkt[hdrBytes:])
	if !complete {
		return nil
	}
	delete(c.pending, h.seq)
	// Advance the ack watermark: everything below the smallest pending
	// seq is complete.
	c.ackBelow = c.seq + 1
	for s := range c.pending {
		if s < c.ackBelow {
			c.ackBelow = s
		}
	}
	_ = req
	return &Response{Seq: h.seq, RPCID: h.rpcID, Data: payload}
}

// handleBatch unpacks a coalesced response datagram (§9 extension): each
// sub-response completes one outstanding exchange; the first is returned
// and the rest queue on c.ready.
func (c *ClientThread) handleBatch(h pktHeader, payload []byte) *Response {
	var first *Response
	off := 0
	for n := 0; n < int(h.fragCnt) && off+12 <= len(payload); n++ {
		seq := getLE32(payload[off:])
		rpcID := getLE32(payload[off+4:])
		size := int(getLE32(payload[off+8:]))
		if off+12+size > len(payload) {
			break
		}
		data := make([]byte, size)
		copy(data, payload[off+12:])
		off += 12 + size
		if _, outstanding := c.pending[seq]; !outstanding {
			continue // duplicate
		}
		delete(c.pending, seq)
		r := Response{Seq: seq, RPCID: rpcID, Data: data}
		if first == nil {
			first = &r
		} else {
			c.ready = append(c.ready, r)
		}
	}
	if first != nil {
		// Refresh the ack watermark after the batch.
		c.ackBelow = c.seq + 1
		for s := range c.pending {
			if s < c.ackBelow {
				c.ackBelow = s
			}
		}
	}
	return first
}

// reassembleResp merges response fragments.
func (c *ClientThread) reassembleResp(h pktHeader, frag []byte) ([]byte, bool) {
	if h.fragCnt <= 1 {
		out := make([]byte, len(frag))
		copy(out, frag)
		return out, true
	}
	p := c.partials[h.seq]
	if p == nil {
		p = &partial{seq: h.seq, buf: make([]byte, h.totalLen)}
		c.partials[h.seq] = p
	}
	chunk := c.dev.Fabric().MTU() - hdrBytes
	off := int(h.frag) * chunk
	if off+len(frag) <= len(p.buf) {
		copy(p.buf[off:], frag)
		p.got++
	}
	if p.got == int(h.fragCnt) {
		delete(c.partials, h.seq)
		return p.buf, true
	}
	return nil, false
}

// checkRetransmit resends timed-out requests; ErrTimeout after MaxRetries.
func (c *ClientThread) checkRetransmit() error {
	now := time.Now()
	for seq, p := range c.pending {
		if now.Sub(p.sentAt) < c.cfg.RetransmitTimeout {
			continue
		}
		if p.attempts >= c.cfg.MaxRetries {
			delete(c.pending, seq)
			return ErrTimeout
		}
		p.attempts++
		p.sentAt = now
		c.retransmits++
		sendFragments(c.qp, c.dev.Fabric().MTU(), c.server, kindRequest, p.rpcID, c.serverID, seq, c.ackBelow, p.payload)
	}
	return nil
}
