package udrpc

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"flock/internal/fabric"
	"flock/internal/rnic"
)

// The §9 "generalizability" extension: coalescing responses over UD.

func coalesceSetup(t *testing.T, fcfg fabric.Config) (*Server, *ClientThread, *fabric.Fabric) {
	t.Helper()
	fab := fabric.New(fcfg)
	sdev, err := rnic.NewDevice(fab, rnic.Config{Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	cdev, err := rnic.NewDevice(fab, rnic.Config{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdev.Close(); cdev.Close() })
	cfg := Config{CoalesceResponses: true}
	srv, err := NewServer(sdev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.RegisterHandler(1, func(req []byte) []byte {
		out := make([]byte, len(req))
		copy(out, req)
		return out
	})
	ct, err := NewClientThread(cdev, cfg, int(srv.Node()), srv.QPNs()[0])
	if err != nil {
		t.Fatal(err)
	}
	return srv, ct, fab
}

func TestCoalescedResponsesCorrect(t *testing.T) {
	srv, ct, _ := coalesceSetup(t, fabric.Config{})
	// Burst a window so the server's CQ poll sees several requests from
	// this client at once; all responses must still match.
	const window = 12
	const rounds = 50
	want := map[uint32][]byte{}
	for r := 0; r < rounds; r++ {
		for k := 0; k < window; k++ {
			msg := []byte(fmt.Sprintf("r%d-k%d", r, k))
			seq, err := ct.Send(1, msg)
			if err != nil {
				t.Fatal(err)
			}
			want[seq] = msg
		}
		for k := 0; k < window; k++ {
			resp, err := ct.Recv()
			if err != nil {
				t.Fatal(err)
			}
			w, ok := want[resp.Seq]
			if !ok {
				t.Fatalf("unknown seq %d", resp.Seq)
			}
			if !bytes.Equal(resp.Data, w) {
				t.Fatalf("seq %d: %q != %q", resp.Seq, resp.Data, w)
			}
			delete(want, resp.Seq)
		}
	}
	if ct.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", ct.Outstanding())
	}
	if srv.Metrics().BatchedResponses == 0 {
		t.Fatal("no responses were coalesced under burst")
	}
	t.Logf("batched responses: %d of %d", srv.Metrics().BatchedResponses, rounds*window)
}

func TestCoalescingReducesPackets(t *testing.T) {
	run := func(coalesce bool) uint64 {
		fab := fabric.New(fabric.Config{})
		sdev, _ := rnic.NewDevice(fab, rnic.Config{Node: 0})
		cdev, _ := rnic.NewDevice(fab, rnic.Config{Node: 1})
		defer sdev.Close()
		defer cdev.Close()
		cfg := Config{CoalesceResponses: coalesce}
		srv, err := NewServer(sdev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		srv.RegisterHandler(1, func(req []byte) []byte { return req })
		ct, err := NewClientThread(cdev, cfg, int(srv.Node()), srv.QPNs()[0])
		if err != nil {
			t.Fatal(err)
		}
		const window, rounds = 16, 10
		for r := 0; r < rounds; r++ {
			for k := 0; k < window; k++ {
				if _, err := ct.Send(1, []byte("pkt-count")); err != nil {
					t.Fatal(err)
				}
			}
			for k := 0; k < window; k++ {
				if _, err := ct.Recv(); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Server→client packets only.
		return fab.Link(0, 1).Packets
	}
	plain := run(false)
	packed := run(true)
	if packed >= plain {
		t.Fatalf("coalescing did not reduce packets: %d vs %d", packed, plain)
	}
	t.Logf("server→client packets: plain=%d coalesced=%d (%.0f%% saved)",
		plain, packed, 100*(1-float64(packed)/float64(plain)))
}

func TestCoalescingUnderLoss(t *testing.T) {
	// Coalesced responses + 15% wire loss: retransmission still recovers
	// everything (lost batches are re-served per request from the cache).
	srv, ct, _ := coalesceSetup(t, fabric.Config{UDLossProb: 0.15, Seed: 5})
	_ = srv
	ct.cfg.RetransmitTimeout = 200 * time.Microsecond
	const window, rounds = 8, 40
	want := map[uint32][]byte{}
	for r := 0; r < rounds; r++ {
		for k := 0; k < window; k++ {
			msg := []byte(fmt.Sprintf("loss-%d-%d", r, k))
			seq, err := ct.Send(1, msg)
			if err != nil {
				t.Fatal(err)
			}
			want[seq] = msg
		}
		for k := 0; k < window; k++ {
			resp, err := ct.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if w := want[resp.Seq]; !bytes.Equal(resp.Data, w) {
				t.Fatalf("seq %d: %q != %q", resp.Seq, resp.Data, w)
			}
			delete(want, resp.Seq)
		}
	}
	if len(want) != 0 {
		t.Fatalf("%d responses never arrived", len(want))
	}
}

func TestOversizedResponseFallsBackToPlain(t *testing.T) {
	// A response larger than the batch budget ships via the fragmented
	// plain path even with coalescing on.
	fab := fabric.New(fabric.Config{MTU: 512})
	sdev, _ := rnic.NewDevice(fab, rnic.Config{Node: 0})
	cdev, _ := rnic.NewDevice(fab, rnic.Config{Node: 1})
	defer sdev.Close()
	defer cdev.Close()
	cfg := Config{CoalesceResponses: true}
	srv, err := NewServer(sdev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	big := make([]byte, 2000)
	for i := range big {
		big[i] = byte(i * 13)
	}
	srv.RegisterHandler(1, func(req []byte) []byte { return big })
	ct, err := NewClientThread(cdev, cfg, int(srv.Node()), srv.QPNs()[0])
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ct.Call(1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, big) {
		t.Fatal("oversized response corrupted")
	}
}
