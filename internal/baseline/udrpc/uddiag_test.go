package udrpc

import (
	"testing"
	"time"

	"flock/internal/fabric"
	"flock/internal/rnic"
)

// Regression: Recv must drain every completion it polls off the CQ.
// An earlier version returned at the first matching response, discarding
// the remainder of the polled batch — their responses were lost and their
// receive buffers never reposted, which showed up as retransmit storms
// under bursts (hundreds of retransmits for a loss-free fabric).
func TestRecvDrainsPolledBatch(t *testing.T) {
	fab := fabric.New(fabric.Config{})
	sdev, _ := rnic.NewDevice(fab, rnic.Config{Node: 0})
	cdev, _ := rnic.NewDevice(fab, rnic.Config{Node: 1})
	defer sdev.Close()
	defer cdev.Close()
	srv, err := NewServer(sdev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterHandler(1, func(req []byte) []byte { return req })
	ct, err := NewClientThread(cdev, Config{}, int(srv.Node()), srv.QPNs()[0])
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const window, rounds = 16, 5
	for r := 0; r < rounds; r++ {
		for k := 0; k < window; k++ {
			if _, err := ct.Send(1, []byte("drain")); err != nil {
				t.Fatal(err)
			}
		}
		for k := 0; k < window; k++ {
			if _, err := ct.Recv(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if ct.Retransmits() != 0 {
		t.Fatalf("%d retransmits on a loss-free fabric (polled batch lost?)", ct.Retransmits())
	}
	if cdev.Stats().UDDropsNoRecv != 0 {
		t.Fatalf("%d responses dropped for missing recv buffers", cdev.Stats().UDDropsNoRecv)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("burst exchange pathologically slow: %v", elapsed)
	}
}
