// Package udrpc is the UD-datagram RPC baseline in the spirit of
// HERD/FaSST/eRPC (§2.2 of the FLock paper): every endpoint uses a handful
// of unreliable-datagram QPs, so the NIC holds almost no per-connection
// state — the scalability advantage — but the software must provide what
// RC gives in hardware:
//
//   - reliability: sequence numbers, response-as-ack, timeout-driven
//     retransmission, and a server-side response cache for duplicate
//     suppression (eRPC's approach; FaSST instead treats loss as fatal);
//   - fragmentation and reassembly: UD's MTU is 4 KB (Table 1), so larger
//     payloads ship as multiple datagrams;
//   - receive-buffer recycling and per-packet CQ polling — the CPU costs
//     that saturate UD servers in Figure 2(b).
//
// The package intentionally mirrors the shape of the core FLock API
// (handlers, per-thread handles, Call/Send/Recv) so applications like the
// FaSST-style transaction system can run over either.
package udrpc

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"flock/internal/fabric"
	"flock/internal/mem"
	"flock/internal/rnic"
)

// Packet header layout (32 bytes), little-endian:
//
//	+0  kind      uint8   request / response
//	+1  pad       [3]uint8
//	+4  rpcID     uint32
//	+8  client    uint64  (clientNode << 32) | clientQPN
//	+16 seq       uint32  per-client-thread request sequence
//	+20 ackBelow  uint32  all seqs below this are acked (cache pruning)
//	+24 frag      uint16  fragment index
//	+26 fragCnt   uint16  fragment count
//	+28 totalLen  uint32  reassembled payload length
const (
	hdrBytes = 32

	kindRequest  = 1
	kindResponse = 2
	// kindBatch carries several coalesced responses to one client in a
	// single datagram — the §9 "generalizability" extension: FLock's
	// coalescing applied to UD. Sub-response layout, repeated count
	// times after the packet header: {seq u32, rpcID u32, len u32, data}.
	kindBatch = 3
)

// Errors returned by the client.
var (
	ErrTimeout = errors.New("udrpc: request timed out after retransmissions")
	ErrClosed  = errors.New("udrpc: endpoint closed")
	ErrTooBig  = errors.New("udrpc: payload exceeds maximum")
)

type pktHeader struct {
	kind     uint8
	rpcID    uint32
	client   uint64
	seq      uint32
	ackBelow uint32
	frag     uint16
	fragCnt  uint16
	totalLen uint32
}

func putPktHeader(b []byte, h pktHeader) {
	b[0] = h.kind
	binary.LittleEndian.PutUint32(b[4:], h.rpcID)
	binary.LittleEndian.PutUint64(b[8:], h.client)
	binary.LittleEndian.PutUint32(b[16:], h.seq)
	binary.LittleEndian.PutUint32(b[20:], h.ackBelow)
	binary.LittleEndian.PutUint16(b[24:], h.frag)
	binary.LittleEndian.PutUint16(b[26:], h.fragCnt)
	binary.LittleEndian.PutUint32(b[28:], h.totalLen)
}

func getPktHeader(b []byte) pktHeader {
	return pktHeader{
		kind:     b[0],
		rpcID:    binary.LittleEndian.Uint32(b[4:]),
		client:   binary.LittleEndian.Uint64(b[8:]),
		seq:      binary.LittleEndian.Uint32(b[16:]),
		ackBelow: binary.LittleEndian.Uint32(b[20:]),
		frag:     binary.LittleEndian.Uint16(b[24:]),
		fragCnt:  binary.LittleEndian.Uint16(b[26:]),
		totalLen: binary.LittleEndian.Uint32(b[28:]),
	}
}

// Handler processes one request and returns the response payload.
type Handler func(req []byte) []byte

// Config tunes an endpoint.
type Config struct {
	// ServerQPs is the number of UD QPs (and dispatcher goroutines) a
	// server runs; clients hash across them. Default 1.
	ServerQPs int
	// RecvDepth is the number of receive buffers kept posted per QP.
	// Default 256.
	RecvDepth int
	// MaxPayload bounds a reassembled request or response. Default 64 KiB.
	MaxPayload int
	// RetransmitTimeout is the client's per-attempt response deadline.
	// Default 1ms (the in-process fabric is fast; real eRPC uses ~5 RTTs).
	RetransmitTimeout time.Duration
	// MaxRetries bounds retransmissions before ErrTimeout. Default 50.
	MaxRetries int
	// CoalesceResponses batches the responses of one CQ poll that share a
	// destination into single datagrams — the paper's §9 observation that
	// FLock-style coalescing also reduces UD's per-packet CPU and wire
	// overhead. Off by default (the faithful eRPC/FaSST baseline).
	CoalesceResponses bool
}

func (c Config) withDefaults() Config {
	if c.ServerQPs <= 0 {
		c.ServerQPs = 1
	}
	if c.RecvDepth <= 0 {
		c.RecvDepth = 256
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = 64 << 10
	}
	if c.RetransmitTimeout <= 0 {
		c.RetransmitTimeout = time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 50
	}
	return c
}

// Metrics counts endpoint activity.
type Metrics struct {
	// RequestsServed counts handler executions (including duplicate
	// re-sends served from cache as DuplicatesServed instead).
	RequestsServed uint64
	// DuplicatesServed counts retransmitted requests answered from the
	// response cache.
	DuplicatesServed uint64
	// Retransmits counts client-side retransmissions.
	Retransmits uint64
	// RecvRecycles counts receive-buffer repost operations — the
	// ibv_post_recv cost of §2.2.
	RecvRecycles uint64
	// BatchedResponses counts responses shipped inside coalesced (batch)
	// datagrams when CoalesceResponses is on.
	BatchedResponses uint64
}

// Server is a UD RPC server endpoint.
type Server struct {
	dev  *rnic.Device
	cfg  Config
	node fabric.NodeID

	handMu   sync.Mutex
	handlers atomic.Value // map[uint32]Handler

	qps   []*rnic.QP
	slots [][]*recvSlot

	// Response cache for duplicate suppression, per client thread.
	cacheMu sync.Mutex
	cache   map[uint64]*clientCache

	reqServed  atomic.Uint64
	dupServed  atomic.Uint64
	recycles   atomic.Uint64
	batched    atomic.Uint64
	reassembly map[uint64]*partial // keyed by client; one in-flight reassembly per client thread

	done chan struct{}
	wg   sync.WaitGroup
}

// clientCache retains responses for unacked seqs of one client thread.
type clientCache struct {
	mu       sync.Mutex
	ackBelow uint32
	resps    map[uint32][]byte // seq → encoded response payload
}

// partial is one in-progress fragment reassembly.
type partial struct {
	seq   uint32
	rpcID uint32
	buf   []byte
	got   int
}

// recvSlot is one posted receive buffer.
type recvSlot struct {
	mr  *rnic.MemRegion
	len int
}

// NewServer creates a UD RPC server on an existing device and starts its
// dispatcher goroutines.
func NewServer(dev *rnic.Device, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		dev:        dev,
		cfg:        cfg,
		node:       dev.Node(),
		cache:      make(map[uint64]*clientCache),
		reassembly: make(map[uint64]*partial),
		done:       make(chan struct{}),
	}
	s.handlers.Store(map[uint32]Handler{})
	for i := 0; i < cfg.ServerQPs; i++ {
		qp, err := dev.CreateQP(rnic.UD, dev.CreateCQ(), dev.CreateCQ())
		if err != nil {
			return nil, err
		}
		slots := make([]*recvSlot, cfg.RecvDepth)
		for j := range slots {
			mr, err := dev.RegisterMR(dev.Fabric().MTU(), 0)
			if err != nil {
				return nil, err
			}
			slots[j] = &recvSlot{mr: mr, len: dev.Fabric().MTU()}
			if err := qp.PostRecv(rnic.RecvWR{WRID: uint64(j), MR: mr, Off: 0, Len: slots[j].len}); err != nil {
				return nil, err
			}
		}
		s.qps = append(s.qps, qp)
		s.slots = append(s.slots, slots)
	}
	for i := range s.qps {
		s.wg.Add(1)
		go s.dispatch(i)
	}
	return s, nil
}

// RegisterHandler binds fn to rpcID.
func (s *Server) RegisterHandler(rpcID uint32, fn Handler) {
	s.handMu.Lock()
	defer s.handMu.Unlock()
	old := s.handlers.Load().(map[uint32]Handler)
	next := make(map[uint32]Handler, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[rpcID] = fn
	s.handlers.Store(next)
}

// QPNs returns the server's UD queue pair numbers; clients address
// requests to them (the out-of-band exchange).
func (s *Server) QPNs() []int {
	out := make([]int, len(s.qps))
	for i, q := range s.qps {
		out[i] = q.QPN()
	}
	return out
}

// Node returns the server's fabric address.
func (s *Server) Node() fabric.NodeID { return s.node }

// Metrics snapshots server counters.
func (s *Server) Metrics() Metrics {
	return Metrics{
		RequestsServed:   s.reqServed.Load(),
		DuplicatesServed: s.dupServed.Load(),
		RecvRecycles:     s.recycles.Load(),
		BatchedResponses: s.batched.Load(),
	}
}

// Close stops the dispatchers.
func (s *Server) Close() {
	select {
	case <-s.done:
		return
	default:
	}
	close(s.done)
	s.wg.Wait()
}

// dispatch is one server dispatcher: poll the recv CQ, recycle buffers,
// reassemble, execute, respond — the per-packet CPU loop of §2.2.
func (s *Server) dispatch(qpIdx int) {
	defer s.wg.Done()
	qp := s.qps[qpIdx]
	slots := s.slots[qpIdx]
	var cqBuf [64]rnic.Completion
	idle := 0
	for {
		select {
		case <-s.done:
			return
		default:
		}
		k := qp.RecvCQ().Poll(cqBuf[:])
		if k == 0 {
			idle++
			backoff(idle)
			continue
		}
		idle = 0
		var out []pendingResp
		for _, comp := range cqBuf[:k] {
			slot := slots[comp.WRID]
			if comp.Status == rnic.StatusOK {
				pkt := make([]byte, comp.ByteLen)
				slot.mr.ReadAt(pkt, 0) //nolint:errcheck
				if pr, ok := s.handlePacket(pkt, comp.SrcNode, comp.SrcQPN); ok {
					out = append(out, pr)
				}
			}
			// Recycle the receive buffer (ibv_post_recv).
			s.recycles.Add(1)
			qp.PostRecv(rnic.RecvWR{WRID: comp.WRID, MR: slot.mr, Off: 0, Len: slot.len}) //nolint:errcheck
		}
		s.flushResponses(qp, out)
	}
}

// pendingResp is one computed response awaiting transmission.
type pendingResp struct {
	dst    rnic.Address
	client uint64
	rpcID  uint32
	seq    uint32
	data   []byte
}

// flushResponses transmits the batch: one datagram per response in the
// faithful baseline, or packed kindBatch datagrams per destination when
// CoalesceResponses is on.
func (s *Server) flushResponses(qp *rnic.QP, out []pendingResp) {
	if !s.cfg.CoalesceResponses {
		for _, pr := range out {
			sendFragments(qp, s.dev.Fabric().MTU(), pr.dst, kindResponse, pr.rpcID, pr.client, pr.seq, 0, pr.data)
		}
		return
	}
	mtu := s.dev.Fabric().MTU()
	budget := mtu - hdrBytes
	// Group by destination client thread, preserving arrival order.
	groups := make(map[uint64][]pendingResp)
	var order []uint64
	for _, pr := range out {
		if _, seen := groups[pr.client]; !seen {
			order = append(order, pr.client)
		}
		groups[pr.client] = append(groups[pr.client], pr)
	}
	for _, client := range order {
		group := groups[client]
		for len(group) > 0 {
			// Greedily pack a prefix of the group into one datagram.
			n, used := 0, 0
			for n < len(group) && used+12+len(group[n].data) <= budget {
				used += 12 + len(group[n].data)
				n++
			}
			if n <= 1 {
				// Single (or oversized) response: the plain path handles
				// fragmentation.
				pr := group[0]
				sendFragments(qp, mtu, pr.dst, kindResponse, pr.rpcID, pr.client, pr.seq, 0, pr.data)
				group = group[1:]
				continue
			}
			// Stage sub-responses directly into a pooled datagram buffer
			// (no intermediate payload slab); ownership transfers to the
			// device via SendWR.Pooled.
			b := mem.Get(hdrBytes + used)
			pkt := b.Data()
			off := hdrBytes
			for _, q := range group[:n] {
				putLE32(pkt[off:], q.seq)
				putLE32(pkt[off+4:], q.rpcID)
				putLE32(pkt[off+8:], uint32(len(q.data)))
				copy(pkt[off+12:], q.data)
				off += 12 + len(q.data)
			}
			s.batched.Add(uint64(n))
			putPktHeader(pkt, pktHeader{
				kind: kindBatch, client: client,
				fragCnt: uint16(n), totalLen: uint32(used),
			})
			if err := qp.PostSend(rnic.SendWR{Op: rnic.OpSend, Inline: pkt, Pooled: b, Dst: group[0].dst}); err != nil {
				b.Release() // post rejected: lease stays with the caller
			}
			group = group[n:]
		}
	}
}

func putLE32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getLE32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// handlePacket processes one inbound request datagram, returning the
// response to transmit (if the request is complete).
func (s *Server) handlePacket(pkt []byte, srcNode, srcQPN int) (pendingResp, bool) {
	if len(pkt) < hdrBytes {
		return pendingResp{}, false
	}
	h := getPktHeader(pkt)
	if h.kind != kindRequest || int(h.totalLen) > s.cfg.MaxPayload {
		return pendingResp{}, false
	}
	dst := rnic.Address{Node: srcNode, QPN: srcQPN}
	cc := s.clientCache(h.client)
	cc.mu.Lock()
	// Prune acked responses.
	if h.ackBelow > cc.ackBelow {
		for seq := range cc.resps {
			if seq < h.ackBelow {
				delete(cc.resps, seq)
			}
		}
		cc.ackBelow = h.ackBelow
	}
	if cached, dup := cc.resps[h.seq]; dup {
		cc.mu.Unlock()
		s.dupServed.Add(1)
		return pendingResp{dst: dst, client: h.client, rpcID: h.rpcID, seq: h.seq, data: cached}, true
	}
	cc.mu.Unlock()

	payload, complete := s.reassemble(h, pkt[hdrBytes:])
	if !complete {
		return pendingResp{}, false
	}
	fn := s.handlers.Load().(map[uint32]Handler)[h.rpcID]
	var resp []byte
	if fn != nil {
		resp = fn(payload)
	}
	s.reqServed.Add(1)
	cc.mu.Lock()
	cc.resps[h.seq] = resp
	cc.mu.Unlock()
	return pendingResp{dst: dst, client: h.client, rpcID: h.rpcID, seq: h.seq, data: resp}, true
}

// reassemble merges one fragment; returns the full payload when complete.
func (s *Server) reassemble(h pktHeader, frag []byte) ([]byte, bool) {
	if h.fragCnt <= 1 {
		return frag, true
	}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	p := s.reassembly[h.client]
	if p == nil || p.seq != h.seq {
		p = &partial{seq: h.seq, rpcID: h.rpcID, buf: make([]byte, h.totalLen)}
		s.reassembly[h.client] = p
	}
	mtu := s.dev.Fabric().MTU() - hdrBytes
	off := int(h.frag) * mtu
	if off+len(frag) <= len(p.buf) {
		copy(p.buf[off:], frag)
		p.got++
	}
	if p.got == int(h.fragCnt) {
		delete(s.reassembly, h.client)
		return p.buf, true
	}
	return nil, false
}

// clientCache returns (creating if needed) the dedup cache for a client.
func (s *Server) clientCache(client uint64) *clientCache {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	cc := s.cache[client]
	if cc == nil {
		cc = &clientCache{resps: make(map[uint32][]byte)}
		s.cache[client] = cc
	}
	return cc
}

// sendFragments is the shared fragmentation path.
func sendFragments(qp *rnic.QP, mtu int, dst rnic.Address, kind uint8, rpcID uint32, client uint64, seq, ackBelow uint32, payload []byte) {
	chunk := mtu - hdrBytes
	fragCnt := (len(payload) + chunk - 1) / chunk
	if fragCnt == 0 {
		fragCnt = 1
	}
	for f := 0; f < fragCnt; f++ {
		lo := f * chunk
		hi := lo + chunk
		if hi > len(payload) {
			hi = len(payload)
		}
		b := mem.Get(hdrBytes + hi - lo)
		pkt := b.Data()
		putPktHeader(pkt, pktHeader{
			kind: kind, rpcID: rpcID, client: client, seq: seq, ackBelow: ackBelow,
			frag: uint16(f), fragCnt: uint16(fragCnt), totalLen: uint32(len(payload)),
		})
		copy(pkt[hdrBytes:], payload[lo:hi])
		// Pooled transfers the lease to the device; it is released when the
		// WR completes or flushes. Send failures surface as timeouts, but the
		// lease must still come back on a rejected post.
		if err := qp.PostSend(rnic.SendWR{
			Op: rnic.OpSend, Inline: pkt, Pooled: b, Dst: dst,
		}); err != nil {
			b.Release()
		}
	}
}

// backoff yields then sleeps as a poll loop stays idle.
func backoff(idle int) {
	if idle < 256 {
		time.Sleep(time.Microsecond)
	} else {
		time.Sleep(20 * time.Microsecond)
	}
}
