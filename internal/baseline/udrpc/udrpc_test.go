package udrpc

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"flock/internal/fabric"
	"flock/internal/rnic"
)

func testSetup(t *testing.T, fcfg fabric.Config, cfg Config) (*Server, *rnic.Device) {
	t.Helper()
	fab := fabric.New(fcfg)
	sdev, err := rnic.NewDevice(fab, rnic.Config{Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	cdev, err := rnic.NewDevice(fab, rnic.Config{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdev.Close(); cdev.Close() })
	srv, err := NewServer(sdev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.RegisterHandler(1, func(req []byte) []byte {
		out := make([]byte, len(req))
		copy(out, req)
		return out
	})
	return srv, cdev
}

func TestEcho(t *testing.T) {
	srv, cdev := testSetup(t, fabric.Config{}, Config{})
	ct, err := NewClientThread(cdev, Config{}, int(srv.Node()), srv.QPNs()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		msg := []byte(fmt.Sprintf("msg-%d", i))
		resp, err := ct.Call(1, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp.Data, msg) {
			t.Fatalf("echo mismatch: %q", resp.Data)
		}
	}
	if srv.Metrics().RequestsServed != 200 {
		t.Fatalf("served = %d", srv.Metrics().RequestsServed)
	}
}

func TestFragmentedPayload(t *testing.T) {
	srv, cdev := testSetup(t, fabric.Config{MTU: 1024}, Config{})
	ct, err := NewClientThread(cdev, Config{}, int(srv.Node()), srv.QPNs()[0])
	if err != nil {
		t.Fatal(err)
	}
	// 10 KB payload over 1 KB MTU: ~11 fragments each way.
	big := make([]byte, 10_000)
	for i := range big {
		big[i] = byte(i * 7)
	}
	resp, err := ct.Call(1, big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, big) {
		t.Fatal("fragmented payload corrupted")
	}
}

func TestOutstandingWindow(t *testing.T) {
	srv, cdev := testSetup(t, fabric.Config{}, Config{})
	_ = srv
	ct, err := NewClientThread(cdev, Config{}, int(srv.Node()), srv.QPNs()[0])
	if err != nil {
		t.Fatal(err)
	}
	const window = 8
	sent := map[uint32]bool{}
	for i := 0; i < window; i++ {
		seq, err := ct.Send(1, []byte(fmt.Sprintf("w%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		sent[seq] = true
	}
	for i := 0; i < window; i++ {
		r, err := ct.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !sent[r.Seq] {
			t.Fatalf("unexpected seq %d", r.Seq)
		}
		delete(sent, r.Seq)
	}
	if ct.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", ct.Outstanding())
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	// 20% wire loss: software reliability must still deliver everything.
	srv, cdev := testSetup(t, fabric.Config{UDLossProb: 0.2, Seed: 9}, Config{RetransmitTimeout: 200 * time.Microsecond})
	ct, err := NewClientThread(cdev, Config{RetransmitTimeout: 200 * time.Microsecond}, int(srv.Node()), srv.QPNs()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		msg := []byte(fmt.Sprintf("lossy-%d", i))
		resp, err := ct.Call(1, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp.Data, msg) {
			t.Fatalf("mismatch under loss: %q != %q", resp.Data, msg)
		}
	}
	if ct.Retransmits() == 0 {
		t.Fatal("no retransmissions under 20% loss")
	}
	t.Logf("retransmits=%d duplicates=%d", ct.Retransmits(), srv.Metrics().DuplicatesServed)
}

func TestTotalLossTimesOut(t *testing.T) {
	srv, cdev := testSetup(t, fabric.Config{UDLossProb: 1.0, Seed: 1},
		Config{RetransmitTimeout: 50 * time.Microsecond, MaxRetries: 3})
	ct, err := NewClientThread(cdev, Config{RetransmitTimeout: 50 * time.Microsecond, MaxRetries: 3},
		int(srv.Node()), srv.QPNs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Call(1, []byte("void")); err != ErrTimeout {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
}

func TestManyClientThreads(t *testing.T) {
	srv, cdev := testSetup(t, fabric.Config{}, Config{ServerQPs: 2})
	qpns := srv.QPNs()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ct, err := NewClientThread(cdev, Config{}, int(srv.Node()), qpns[id%len(qpns)])
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 100; j++ {
				msg := []byte(fmt.Sprintf("t%d-%d", id, j))
				resp, err := ct.Call(1, msg)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(resp.Data, msg) {
					t.Errorf("mismatch: %q", resp.Data)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := srv.Metrics().RequestsServed; got != 800 {
		t.Fatalf("served = %d, want 800", got)
	}
	// Receive-buffer recycling happened once per packet — the §2.2 cost.
	if srv.Metrics().RecvRecycles < 800 {
		t.Fatalf("recycles = %d", srv.Metrics().RecvRecycles)
	}
}

func TestPayloadTooBig(t *testing.T) {
	srv, cdev := testSetup(t, fabric.Config{}, Config{MaxPayload: 128})
	ct, err := NewClientThread(cdev, Config{MaxPayload: 128}, int(srv.Node()), srv.QPNs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Send(1, make([]byte, 129)); err != ErrTooBig {
		t.Fatalf("expected ErrTooBig, got %v", err)
	}
}

func TestNoHandlerEmptyResponse(t *testing.T) {
	srv, cdev := testSetup(t, fabric.Config{}, Config{})
	ct, _ := NewClientThread(cdev, Config{}, int(srv.Node()), srv.QPNs()[0])
	resp, err := ct.Call(99, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Data) != 0 {
		t.Fatalf("unregistered handler returned %q", resp.Data)
	}
}

func TestPktHeaderRoundTrip(t *testing.T) {
	var b [hdrBytes]byte
	in := pktHeader{
		kind: kindResponse, rpcID: 7, client: 0xAABBCCDD00112233,
		seq: 42, ackBelow: 40, frag: 3, fragCnt: 9, totalLen: 31337,
	}
	putPktHeader(b[:], in)
	if out := getPktHeader(b[:]); out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}
