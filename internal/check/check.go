// Package check is FLock's concurrency-correctness harness. It has three
// parts:
//
//   - A linearizability checker (this file): the Wing & Gong algorithm
//     with Lowe's just-in-time memoization and P-compositional
//     partitioning, in the style of porcupine. Histories of concurrent
//     operations — recorded from real traffic or from the simulated
//     combining path — are checked against a sequential model.
//   - Ready-made models (models.go) for the workloads the repository
//     serves: the echo RPC, the kvstore put/get contract, and fetch-add
//     counters.
//   - A deterministic schedule explorer (explore.go, tcqsim.go) that
//     replays the thread-combining-queue protocol on internal/sim virtual
//     time under seed-derived adversarial schedules, and shrinks a failing
//     schedule to a minimal reproducer.
//
// The harness validates itself: known-bad protocol variants behind the
// `flockmut` build tag (mutants.go) must be flagged non-linearizable by
// the checker, so a silent checker regression fails CI rather than
// silently passing broken code.
package check

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Infinity is the return timestamp of a pending operation: one whose
// caller never observed a response (timeout, broken QP, crash). A pending
// operation may take effect at any point after its call — or never, which
// the checker represents by linearizing it after every completed
// operation, where no later observation can contradict it. Models must
// accept a nil Output for pending operations (the result is unknown).
const Infinity int64 = math.MaxInt64

// Operation is one invocation/response pair in a history. Call and Return
// are timestamps from any strictly monotonic clock shared by all
// recorders; only their order matters, not their units.
type Operation struct {
	// ClientID identifies the calling thread; operations of one client
	// must not overlap in time.
	ClientID int
	// Input is the invocation (model-defined).
	Input interface{}
	// Output is the response (model-defined); nil for pending operations.
	Output interface{}
	// Call is the invocation timestamp.
	Call int64
	// Return is the response timestamp, or Infinity for pending
	// operations.
	Return int64
}

// Model is a sequential specification. The checker searches for a total
// order of the history's operations that respects real time and in which
// every Step is legal.
type Model struct {
	// Name labels the model in reports.
	Name string
	// Init returns the initial state.
	Init func() interface{}
	// Step applies one operation to state: it reports whether output is a
	// legal response to input in that state, and the resulting state.
	// Step must be pure — same inputs, same results — and must tolerate a
	// nil output (pending operation, unknown result) by returning the
	// state the input alone produces.
	Step func(state, input, output interface{}) (bool, interface{})
	// Equal compares states for the memoization cache; nil means ==
	// (states must then be comparable).
	Equal func(a, b interface{}) bool
	// Partition splits a history into independently-checkable
	// sub-histories (P-compositionality: a history is linearizable iff
	// every per-key sub-history is). Nil checks the whole history at once.
	Partition func(ops []Operation) [][]Operation
	// Describe renders an operation for failure reports; nil falls back
	// to %v formatting.
	Describe func(op Operation) string
}

func (m Model) describe(op Operation) string {
	if m.Describe != nil {
		return m.Describe(op)
	}
	return fmt.Sprintf("in=%v out=%v", op.Input, op.Output)
}

func (m Model) equal(a, b interface{}) bool {
	if m.Equal != nil {
		return m.Equal(a, b)
	}
	return a == b
}

// Result is the checker's verdict on one history.
type Result struct {
	// Ok reports linearizability. When TimedOut is set the search was
	// abandoned and Ok is conservatively true (no violation found).
	Ok bool
	// TimedOut reports that the search exceeded its deadline.
	TimedOut bool
	// Partitions is how many sub-histories were checked.
	Partitions int
	// FailedPartition describes the first non-linearizable sub-history:
	// its operations in call order, for the failure report.
	FailedPartition []Operation
	// model retained for String.
	model Model
}

// String renders a human-readable verdict, including the failing
// sub-history when there is one.
func (r Result) String() string {
	if r.Ok {
		if r.TimedOut {
			return fmt.Sprintf("%s: no violation found (search timed out, %d partitions)", r.model.Name, r.Partitions)
		}
		return fmt.Sprintf("%s: linearizable (%d partitions)", r.model.Name, r.Partitions)
	}
	s := fmt.Sprintf("%s: NOT linearizable; failing sub-history (%d ops, call order):\n", r.model.Name, len(r.FailedPartition))
	for _, op := range r.FailedPartition {
		ret := fmt.Sprintf("%d", op.Return)
		if op.Return == Infinity {
			ret = "pending"
		}
		s += fmt.Sprintf("  client %d  [%d,%s]  %s\n", op.ClientID, op.Call, ret, r.model.Describe(op))
	}
	return s
}

// Check tests whether history is linearizable with respect to model, with
// no time bound.
func Check(model Model, history []Operation) Result {
	return CheckTimeout(model, history, 0)
}

// CheckTimeout is Check bounded by a wall-clock budget (0 = unbounded).
// On timeout the result reports Ok=true, TimedOut=true: no violation was
// found within budget.
func CheckTimeout(model Model, history []Operation, timeout time.Duration) Result {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	parts := [][]Operation{history}
	if model.Partition != nil {
		parts = model.Partition(history)
	}
	res := Result{Ok: true, Partitions: len(parts), model: model}
	for _, part := range parts {
		if len(part) == 0 {
			continue
		}
		ok, timedOut := linearizable(model, part, deadline)
		if timedOut {
			res.TimedOut = true
		}
		if !ok {
			res.Ok = false
			res.FailedPartition = sortedByCall(part)
			return res
		}
	}
	return res
}

func sortedByCall(ops []Operation) []Operation {
	out := make([]Operation, len(ops))
	copy(out, ops)
	sort.Slice(out, func(i, j int) bool { return out[i].Call < out[j].Call })
	return out
}

// entry is one event (call or return) on the checker's doubly linked list.
type entry struct {
	op         int // index into ops
	isReturn   bool
	match      *entry // call's return entry (nil on return entries)
	prev, next *entry
}

// makeEntries builds the event list: calls and returns ordered by
// timestamp, returns of pending operations placed after everything else.
func makeEntries(ops []Operation) *entry {
	type ev struct {
		t        int64
		tie      int // returns sort after calls at equal timestamps
		op       int
		isReturn bool
	}
	evs := make([]ev, 0, 2*len(ops))
	for i, op := range ops {
		evs = append(evs, ev{t: op.Call, tie: 0, op: i})
		evs = append(evs, ev{t: op.Return, tie: 1, op: i, isReturn: true})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].tie < evs[j].tie
	})
	head := &entry{op: -1} // sentinel
	cur := head
	calls := make(map[int]*entry, len(ops))
	for _, e := range evs {
		ent := &entry{op: e.op, isReturn: e.isReturn, prev: cur}
		cur.next = ent
		cur = ent
		if e.isReturn {
			calls[e.op].match = ent
		} else {
			calls[e.op] = ent
		}
	}
	return head
}

// lift removes a call entry and its matching return from the list.
func lift(call *entry) {
	call.prev.next = call.next
	call.next.prev = call.prev
	ret := call.match
	ret.prev.next = ret.next
	if ret.next != nil {
		ret.next.prev = ret.prev
	}
}

// unlift restores a lifted call/return pair.
func unlift(call *entry) {
	ret := call.match
	ret.prev.next = ret
	if ret.next != nil {
		ret.next.prev = ret
	}
	call.prev.next = call
	call.next.prev = call
}

// bitset tracks which operations have been linearized.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)     { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)   { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) clone() bitset { c := make(bitset, len(b)); copy(c, b); return c }
func (b bitset) equals(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) hash() uint64 {
	h := uint64(1469598103934665603)
	for _, w := range b {
		h ^= w
		h *= 1099511628211
	}
	return h
}

// cacheEntry memoizes a (linearized-set, state) configuration already
// proven unextendable, so the DFS never re-explores it (Lowe's
// optimization of Wing & Gong).
type cacheEntry struct {
	set   bitset
	state interface{}
}

// linearizable runs the memoized DFS on one sub-history. It returns
// (ok, timedOut).
func linearizable(model Model, ops []Operation, deadline time.Time) (bool, bool) {
	head := makeEntries(ops)
	n := len(ops)
	linearized := newBitset(n)
	cache := make(map[uint64][]cacheEntry)
	seen := func(set bitset, state interface{}) bool {
		h := set.hash()
		for _, e := range cache[h] {
			if e.set.equals(set) && model.equal(e.state, state) {
				return true
			}
		}
		cache[h] = append(cache[h], cacheEntry{set: set.clone(), state: state})
		return false
	}

	type frame struct {
		entry *entry
		state interface{}
	}
	var stack []frame
	state := model.Init()
	ent := head.next
	steps := 0
	for head.next != nil {
		steps++
		if steps%4096 == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			return true, true
		}
		if ent == nil || ent.isReturn {
			// Hit a return of an op we haven't linearized (or exhausted the
			// window): backtrack.
			if len(stack) == 0 {
				return false, false
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			state = f.state
			linearized.clear(f.entry.op)
			unlift(f.entry)
			ent = f.entry.next
			continue
		}
		op := ops[ent.op]
		ok, next := model.Step(state, op.Input, op.Output)
		if ok {
			linearized.set(ent.op)
			if !seen(linearized, next) {
				stack = append(stack, frame{entry: ent, state: state})
				lift(ent)
				state = next
				ent = head.next
				continue
			}
			linearized.clear(ent.op)
		}
		ent = ent.next
	}
	return true, false
}
