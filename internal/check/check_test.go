package check

import (
	"strings"
	"testing"
	"time"
)

// h builds an operation with explicit timestamps.
func h(client int, call, ret int64, in, out interface{}) Operation {
	return Operation{ClientID: client, Input: in, Output: out, Call: call, Return: ret}
}

func TestRegisterSequential(t *testing.T) {
	hist := []Operation{
		h(0, 1, 2, KVIn{Key: 7, Put: true, Val: 10}, KVOut{}),
		h(0, 3, 4, KVIn{Key: 7}, KVOut{Val: 10, Found: true}),
	}
	if res := Check(RegisterModel(), hist); !res.Ok {
		t.Fatalf("sequential put/get should be linearizable:\n%s", res)
	}
}

func TestRegisterStaleReadRejected(t *testing.T) {
	hist := []Operation{
		h(0, 1, 2, KVIn{Key: 7, Put: true, Val: 10}, KVOut{}),
		// Strictly after the put completed, a get misses: not linearizable.
		h(1, 3, 4, KVIn{Key: 7}, KVOut{}),
	}
	res := Check(RegisterModel(), hist)
	if res.Ok {
		t.Fatal("stale read after completed put must be rejected")
	}
	if !strings.Contains(res.String(), "NOT linearizable") {
		t.Fatalf("report should name the violation: %s", res)
	}
}

func TestRegisterConcurrentPutAllowsEitherOrder(t *testing.T) {
	// Two overlapping puts; a later get may observe either winner.
	for _, val := range []uint64{10, 20} {
		hist := []Operation{
			h(0, 1, 4, KVIn{Key: 7, Put: true, Val: 10}, KVOut{}),
			h(1, 2, 3, KVIn{Key: 7, Put: true, Val: 20}, KVOut{}),
			h(0, 5, 6, KVIn{Key: 7}, KVOut{Val: val, Found: true}),
		}
		if res := Check(RegisterModel(), hist); !res.Ok {
			t.Fatalf("get=%d should be legal for overlapping puts:\n%s", val, res)
		}
	}
	// But a value no put wrote is not.
	hist := []Operation{
		h(0, 1, 4, KVIn{Key: 7, Put: true, Val: 10}, KVOut{}),
		h(1, 2, 3, KVIn{Key: 7, Put: true, Val: 20}, KVOut{}),
		h(0, 5, 6, KVIn{Key: 7}, KVOut{Val: 30, Found: true}),
	}
	if Check(RegisterModel(), hist).Ok {
		t.Fatal("get of a never-written value must be rejected")
	}
}

func TestRegisterPartitionIndependence(t *testing.T) {
	// Key 1 is broken, key 2 is fine: the failure report must contain only
	// key 1's sub-history.
	hist := []Operation{
		h(0, 1, 2, KVIn{Key: 1, Put: true, Val: 5}, KVOut{}),
		h(0, 3, 4, KVIn{Key: 1}, KVOut{}), // stale miss: violation
		h(1, 1, 2, KVIn{Key: 2, Put: true, Val: 9}, KVOut{}),
		h(1, 3, 4, KVIn{Key: 2}, KVOut{Val: 9, Found: true}),
	}
	res := Check(RegisterModel(), hist)
	if res.Ok {
		t.Fatal("expected key-1 violation")
	}
	if res.Partitions != 2 {
		t.Fatalf("Partitions = %d, want 2", res.Partitions)
	}
	for _, op := range res.FailedPartition {
		if op.Input.(KVIn).Key != 1 {
			t.Fatalf("failed partition leaked key %d", op.Input.(KVIn).Key)
		}
	}
}

func TestPendingOperationMayOrMayNotApply(t *testing.T) {
	// A pending put may take effect (get sees it) or not (get misses):
	// both observations are linearizable.
	for _, out := range []KVOut{{}, {Val: 10, Found: true}} {
		hist := []Operation{
			h(0, 1, Infinity, KVIn{Key: 7, Put: true, Val: 10}, nil),
			h(1, 2, 3, KVIn{Key: 7}, out),
		}
		if res := Check(RegisterModel(), hist); !res.Ok {
			t.Fatalf("pending put with get=%+v should be legal:\n%s", out, res)
		}
	}
	// A pending put cannot justify a value it never wrote.
	hist := []Operation{
		h(0, 1, Infinity, KVIn{Key: 7, Put: true, Val: 10}, nil),
		h(1, 2, 3, KVIn{Key: 7}, KVOut{Val: 11, Found: true}),
	}
	if Check(RegisterModel(), hist).Ok {
		t.Fatal("pending put must not justify an unwritten value")
	}
}

func TestPendingCannotApplyBeforeCall(t *testing.T) {
	// The get completes before the pending put is even invoked: the put
	// cannot explain the observed value.
	hist := []Operation{
		h(1, 1, 2, KVIn{Key: 7}, KVOut{Val: 10, Found: true}),
		h(0, 3, Infinity, KVIn{Key: 7, Put: true, Val: 10}, nil),
	}
	if Check(RegisterModel(), hist).Ok {
		t.Fatal("a pending op must not linearize before its call")
	}
}

func TestCounterModel(t *testing.T) {
	ok := []Operation{
		h(0, 1, 2, CounterIn{Add: true, Delta: 1}, CounterOut{Val: 0}),
		h(1, 3, 4, CounterIn{Add: true, Delta: 1}, CounterOut{Val: 1}),
		h(0, 5, 6, CounterIn{}, CounterOut{Val: 2}),
	}
	if res := Check(CounterModel(), ok); !res.Ok {
		t.Fatalf("sequential fetch-adds should pass:\n%s", res)
	}
	// Duplicate apply: two sequential adds both returning pre-value 0.
	dup := []Operation{
		h(0, 1, 2, CounterIn{Add: true, Delta: 1}, CounterOut{Val: 0}),
		h(1, 3, 4, CounterIn{Add: true, Delta: 1}, CounterOut{Val: 0}),
	}
	if Check(CounterModel(), dup).Ok {
		t.Fatal("two sequential fetch-adds returning 0 must be rejected")
	}
	// Lost apply: add acked, later read doesn't see it.
	lost := []Operation{
		h(0, 1, 2, CounterIn{Add: true, Delta: 1}, CounterOut{Val: 0}),
		h(0, 3, 4, CounterIn{}, CounterOut{Val: 0}),
	}
	if Check(CounterModel(), lost).Ok {
		t.Fatal("a lost acknowledged add must be rejected")
	}
	// Concurrent adds may legally return the same pre-value? No — each
	// fetch-add observes a distinct pre-value regardless of order.
	conc := []Operation{
		h(0, 1, 4, CounterIn{Add: true, Delta: 1}, CounterOut{Val: 0}),
		h(1, 2, 3, CounterIn{Add: true, Delta: 1}, CounterOut{Val: 0}),
	}
	if Check(CounterModel(), conc).Ok {
		t.Fatal("concurrent fetch-adds still return distinct pre-values")
	}
}

func TestEchoModel(t *testing.T) {
	ok := []Operation{
		h(0, 1, 2, EchoIn{Payload: "a"}, EchoOut{Payload: "a"}),
		h(1, 1, 2, EchoIn{Payload: "b"}, EchoOut{Payload: "b"}),
	}
	if res := Check(EchoModel(), ok); !res.Ok {
		t.Fatalf("matching echoes should pass:\n%s", res)
	}
	crossed := []Operation{
		h(0, 1, 2, EchoIn{Payload: "a"}, EchoOut{Payload: "b"}),
	}
	if Check(EchoModel(), crossed).Ok {
		t.Fatal("a cross-wired echo response must be rejected")
	}
	badStatus := []Operation{
		h(0, 1, 2, EchoIn{Payload: "a"}, EchoOut{Payload: "a", Status: 7}),
	}
	if Check(EchoModel(), badStatus).Ok {
		t.Fatal("a non-OK echo status must be rejected")
	}
}

func TestMonotonicKVAllowsDuplicates(t *testing.T) {
	// The same put applied twice (retry) is legal under the monotonic
	// model but a lost acknowledged put is not.
	dup := []Operation{
		h(0, 1, 2, KVIn{Key: 1, Put: true, Val: 5}, KVOut{}),
		h(0, 3, 4, KVIn{Key: 1, Put: true, Val: 5}, KVOut{}),
		h(0, 5, 6, KVIn{Key: 1}, KVOut{Val: 5, Found: true}),
	}
	if res := Check(MonotonicKVModel(), dup); !res.Ok {
		t.Fatalf("duplicate puts should be legal:\n%s", res)
	}
	stale := []Operation{
		h(0, 1, 2, KVIn{Key: 1, Put: true, Val: 5}, KVOut{}),
		h(0, 3, 4, KVIn{Key: 1, Put: true, Val: 9}, KVOut{}),
		h(0, 5, 6, KVIn{Key: 1}, KVOut{Val: 5, Found: true}),
	}
	if Check(MonotonicKVModel(), stale).Ok {
		t.Fatal("a read older than the max acknowledged put must be rejected")
	}
}

func TestCheckTimeout(t *testing.T) {
	// A wide all-concurrent history with an expired deadline: the search
	// must bail out reporting TimedOut, not hang.
	var hist []Operation
	for i := 0; i < 18; i++ {
		hist = append(hist, h(i, 1, 100, CounterIn{Add: true, Delta: 1}, CounterOut{Val: uint64(i)}))
	}
	res := CheckTimeout(CounterModel(), hist, time.Nanosecond)
	if !res.TimedOut && !res.Ok {
		t.Fatalf("expected timeout or pass, got %+v", res)
	}
}

func TestRecorder(t *testing.T) {
	rec := NewRecorder()
	c1 := rec.Begin()
	c2 := rec.Begin()
	if c2 <= c1 {
		t.Fatalf("clock not monotonic: %d then %d", c1, c2)
	}
	rec.End(0, c1, KVIn{Key: 1, Put: true, Val: 3}, KVOut{})
	rec.EndPending(1, c2, KVIn{Key: 1})
	hist := rec.History()
	if len(hist) != 2 || rec.Len() != 2 {
		t.Fatalf("history length = %d", len(hist))
	}
	var sawPending bool
	for _, op := range hist {
		if op.Return == Infinity {
			sawPending = true
			if op.Output != nil {
				t.Fatal("pending op must have nil output")
			}
		} else if op.Return <= op.Call {
			t.Fatalf("return %d not after call %d", op.Return, op.Call)
		}
	}
	if !sawPending {
		t.Fatal("pending op not recorded")
	}
	if res := Check(RegisterModel(), hist); !res.Ok {
		t.Fatalf("recorded history should be linearizable:\n%s", res)
	}
}
