package check

import (
	"sort"

	"flock/internal/sim"
)

// The cluster simulator: a deterministic, RPC-level model of the shard
// placement layer (internal/cluster) driven by the same seed-derived
// schedule machinery as the TCQ simulator. It models the pieces whose
// interleavings matter for linearizability across a live migration —
// epoch-stamped shard maps, a redirect-following client, and the
// freeze/copy/forward/handoff state machine — and deliberately nothing
// below them: the wire is a flat latency plus drop windows, not a
// queue-pair model. Node-flap perturbations knock a member off the
// network mid-migration (chunks and forwards retransmit through the
// window); handoff-delay perturbations stretch the gap between the
// source adopting the handoff epoch and the target learning it, the
// window where requests bounce between the two views.
//
// The invariants mirror the real protocol:
//
//   - Single authority: a shard is served by exactly the node whose own
//     map lists it as owner. The migration source keeps that role
//     through the copy (dual-writing applies to the target) and gives
//     it up atomically when it installs the handoff epoch; the target
//     takes it only when it installs that epoch. Between the two
//     installs nobody serves and clients bounce.
//   - Nothing acknowledged is lost: snapshot chunks and dual-write
//     forwards are retransmitted until acked, and the source refuses to
//     install the handoff epoch while any are outstanding.
//   - Exactly-once: applied put op-IDs go into a per-shard dedup memo
//     that travels with the shard (in chunks and on forwards), so a
//     retry of an already-applied put is answered from the memo on
//     whichever node owns the shard by then.
//
// Under those rules every completed history is an exact linearizable
// register per key, so RunClusterSchedule checks RegisterModel — no
// monotonic-value weakening. The MutStaleShardServe mutant breaks the
// first invariant (a node keeps serving every shard it ever owned) and
// the checker must catch it.

// clusterMigShard is the shard the seeded migrations move. With the
// initial table (shard s owned by node s % Nodes) its first source is
// node 0, which is why MigrationScheduleFromSeed's guaranteed flap
// targets node 0: the flap hits the copy path, not just client traffic.
const clusterMigShard = 0

const (
	// clusterService is the server-side processing delay between a
	// put's apply and its reply hitting the wire. It exists to open the
	// applied-but-unacknowledged window: a flap starting inside it
	// drops the ack after the apply landed, manufacturing the retries
	// the dedup memo exists to absorb.
	clusterService = sim.Microsecond
	// clusterThink separates a client's operations.
	clusterThink = sim.Microsecond
	// clusterNackBackoff is the client's pause after a wrong-shard
	// bounce before re-routing (mirrors the router's redirect sleep).
	clusterNackBackoff = 2 * sim.Microsecond
	// clusterRetransmit paces chunk/forward retransmission and
	// migration-start retries.
	clusterRetransmit = 5 * sim.Microsecond
)

// ClusterSimConfig sizes one simulated cluster run. Zero values take
// defaults.
type ClusterSimConfig struct {
	Nodes        int // cluster members (default 3)
	Shards       int // shard count (default 8); key k lives in shard k % Shards
	Clients      int // concurrent clients (default 4)
	OpsPerClient int // sequential ops per client (default 40)
	Keys         int // key-space size (default 12)
	Attempts     int // attempts per op before it goes pending (default 6)
	Migrations   int // seeded migrations of clusterMigShard (default 2)
	ChunkSize    int // snapshot entries per copy chunk (default 4)

	AttemptTimeout sim.Time // per-attempt deadline (default 20µs)
	HandoffGap     sim.Time // base source-install → target-install gap (default 3µs)
}

func (c ClusterSimConfig) withDefaults() ClusterSimConfig {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.OpsPerClient <= 0 {
		c.OpsPerClient = 40
	}
	if c.Keys <= 0 {
		c.Keys = 12
	}
	if c.Attempts <= 0 {
		c.Attempts = 6
	}
	if c.Migrations <= 0 {
		c.Migrations = 2
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 4
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 20 * sim.Microsecond
	}
	if c.HandoffGap <= 0 {
		c.HandoffGap = 3 * sim.Microsecond
	}
	return c
}

// clusterHorizon is the rough window during which client ops flow; the
// schedule derivation places perturbations and the world places
// migrations inside it so they land on live traffic.
func clusterHorizon(cfg ClusterSimConfig) sim.Time {
	return sim.Time(cfg.OpsPerClient) * (3 * simWireLatency)
}

// MigrationScheduleFromSeed derives the cluster-suite schedule for a
// seed: one guaranteed flap of the migrated shard's initial source
// (node 0, so the copy path itself rides through an outage) plus 0–4
// further node flaps and handoff delays. Like the overload and
// pipeline pools it is its own derivation with its own RNG salt, so
// the TCQ pools keep replaying bit-identically.
func MigrationScheduleFromSeed(seed uint64, cfg ClusterSimConfig) Schedule {
	cfg = cfg.withDefaults()
	rng := newScheduleRNG(seed ^ 0x0F10CCC105E4D5EE)
	horizon := clusterHorizon(cfg)
	at := cfg.AttemptTimeout
	flap := func(node int) Perturbation {
		return Perturbation{
			Kind: PerturbNodeFlap,
			At:   sim.Time(rng.Uint64n(uint64(horizon) + 1)),
			QP:   node,
			Dur:  at/2 + sim.Time(rng.Uint64n(uint64(at)*3)),
		}
	}
	s := Schedule{Seed: seed, Perturbs: []Perturbation{flap(clusterMigShard % cfg.Nodes)}}
	n := rng.Intn(5)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.Perturbs = append(s.Perturbs, flap(rng.Intn(cfg.Nodes)))
		} else {
			s.Perturbs = append(s.Perturbs, Perturbation{
				Kind: PerturbHandoffDelay,
				At:   sim.Time(rng.Uint64n(uint64(horizon) + 1)),
				Dur:  sim.Time(rng.Uint64n(uint64(at)*2) + 1),
			})
		}
	}
	return s
}

// clusterView is one immutable epoch-stamped shard map: table[s] is the
// owning node. Installs swap the pointer, newer epoch wins.
type clusterView struct {
	epoch uint64
	table []int
}

// clusterEntry is one key's value with its per-key write version. The
// version totally orders a key's writes across migrations (it is
// copied with the data), so an old snapshot chunk arriving after a
// newer dual-write forward cannot regress the target.
type clusterEntry struct{ val, ver uint64 }

// clusterMigEntry is one migrated key, tagged with the put op-ID when
// it rides a dual-write forward (zero for snapshot entries).
type clusterMigEntry struct {
	key  uint64
	e    clusterEntry
	opID uint64
}

// clusterChunk is one reliable migration message: data entries plus a
// batch of dedup-memo op-IDs.
type clusterChunk struct {
	entries []clusterMigEntry
	memo    []uint64
}

// clusterOpID uniquely names a client op; doubles as the put value so
// every written value is globally distinct (sharper for the checker).
func clusterOpID(client, idx int) uint64 {
	return uint64(client+1)<<32 | uint64(idx+1)
}

type clusterWorld struct {
	cfg ClusterSimConfig
	mut Mutation
	eng *sim.Engine
	rec *Recorder

	nodes   []*clusterNode
	clients []*clusterClient

	flaps    [][]Perturbation // per node: flap windows
	handoffs []Perturbation   // handoff-delay perturbs, consumed in At order

	curView   *clusterView // the coordinator's authoritative map
	migActive bool

	migrations int
	redirects  int
	flapDrops  int
	retried    int
	dedupHits  int
}

type clusterNode struct {
	w    *clusterWorld
	id   int
	view *clusterView

	data      []map[uint64]clusterEntry
	memo      []map[uint64]struct{}
	everOwned []bool

	// Active outbound migration state (one at a time, world-enforced).
	copying    bool
	copyShard  int
	copyDst    int
	chunksSent bool
	chunksOut  int
	fwdOut     int
}

type clusterClient struct {
	w    *clusterWorld
	id   int
	view *clusterView

	ops     []KVIn
	idx     int
	call    int64
	attempt int
	waiting bool
	done    bool
}

func newClusterWorld(cfg ClusterSimConfig, sched Schedule, mut Mutation) *clusterWorld {
	w := &clusterWorld{cfg: cfg, mut: mut, eng: sim.New(), rec: NewRecorder()}
	table := make([]int, cfg.Shards)
	for s := range table {
		table[s] = s % cfg.Nodes
	}
	w.curView = &clusterView{epoch: 1, table: table}

	w.flaps = make([][]Perturbation, cfg.Nodes)
	for _, p := range sched.Perturbs {
		switch p.Kind {
		case PerturbNodeFlap:
			node := p.QP % cfg.Nodes
			w.flaps[node] = append(w.flaps[node], p)
		case PerturbHandoffDelay:
			w.handoffs = append(w.handoffs, p)
		}
	}
	sort.Slice(w.handoffs, func(i, j int) bool { return w.handoffs[i].At < w.handoffs[j].At })

	for i := 0; i < cfg.Nodes; i++ {
		n := &clusterNode{
			w: w, id: i, view: w.curView,
			data:      make([]map[uint64]clusterEntry, cfg.Shards),
			memo:      make([]map[uint64]struct{}, cfg.Shards),
			everOwned: make([]bool, cfg.Shards),
		}
		for s := range n.data {
			n.data[s] = make(map[uint64]clusterEntry)
			n.memo[s] = make(map[uint64]struct{})
			n.everOwned[s] = table[s] == i
		}
		w.nodes = append(w.nodes, n)
	}

	// The world RNG (client op mix, start jitter, migration jitter) is
	// salted apart from the schedule RNG so the two streams never
	// correlate.
	rng := newScheduleRNG(sched.Seed ^ 0xC7E55EEDFA57F10C)
	for c := 0; c < cfg.Clients; c++ {
		cl := &clusterClient{w: w, id: c, view: w.curView}
		for i := 0; i < cfg.OpsPerClient; i++ {
			in := KVIn{Key: uint64(rng.Intn(cfg.Keys))}
			if rng.Intn(100) < 60 {
				in.Put = true
				in.Val = clusterOpID(c, i)
			}
			cl.ops = append(cl.ops, in)
		}
		w.clients = append(w.clients, cl)
		w.eng.At(sim.Time(rng.Uint64n(uint64(4*sim.Microsecond))), cl.next)
	}

	horizon := clusterHorizon(cfg)
	for j := 0; j < cfg.Migrations; j++ {
		at := horizon*sim.Time(j+1)/sim.Time(cfg.Migrations+1) +
			sim.Time(rng.Uint64n(uint64(horizon/10)+1))
		w.eng.At(at, w.tryStartMigration)
	}
	return w
}

// flapped reports whether a node is inside a flap window right now.
// Negative ids (clients) never flap.
func (w *clusterWorld) flapped(node int) bool {
	if node < 0 {
		return false
	}
	now := w.eng.Now()
	for _, p := range w.flaps[node] {
		if now >= p.At && now < p.At+p.Dur {
			return true
		}
	}
	return false
}

// send puts fn on the wire from one endpoint to another. A flapped
// sender drops at transmit, a flapped receiver at delivery; either way
// the message is silently gone and FlapDrops counts it.
func (w *clusterWorld) send(from, to int, fn func()) {
	if w.flapped(from) {
		w.flapDrops++
		return
	}
	w.eng.After(simWireLatency, func() {
		if w.flapped(to) {
			w.flapDrops++
			return
		}
		fn()
	})
}

// --- client ---

func (c *clusterClient) next() {
	if c.idx >= len(c.ops) {
		c.done = true
		return
	}
	c.call = c.w.rec.Begin()
	c.attempt = 0
	c.issue(c.idx, c.ops[c.idx])
}

func (c *clusterClient) issue(idx int, in KVIn) {
	if idx != c.idx {
		return // a reply already finished this op
	}
	c.attempt++
	a := c.attempt
	if a > c.w.cfg.Attempts {
		// Ambiguous: some attempt may have applied. Record pending and
		// let the checker linearize it anywhere after the call, or never.
		c.waiting = false
		c.w.rec.EndPending(c.id, c.call, in)
		c.idx++
		c.w.eng.After(clusterThink, c.next)
		return
	}
	c.waiting = true
	shard := int(in.Key) % c.w.cfg.Shards
	owner := c.view.table[shard]
	opID := clusterOpID(c.id, idx)
	n := c.w.nodes[owner]
	c.w.send(-1, owner, func() { n.handleKV(c, idx, a, in, opID) })
	c.w.eng.After(c.w.cfg.AttemptTimeout, func() {
		if idx == c.idx && a == c.attempt && c.waiting {
			c.w.retried++
			c.issue(idx, in)
		}
	})
}

func (c *clusterClient) install(v *clusterView) {
	if v.epoch > c.view.epoch {
		c.view = v
	}
}

func (c *clusterClient) onReply(idx, attempt int, in KVIn, out KVOut, v *clusterView) {
	c.install(v)
	if idx != c.idx || attempt != c.attempt {
		return // stale: a later attempt owns this op now
	}
	c.waiting = false
	c.w.rec.End(c.id, c.call, in, out)
	c.idx++
	c.w.eng.After(clusterThink, c.next)
}

func (c *clusterClient) onWrongShard(idx, attempt int, in KVIn, v *clusterView) {
	c.install(v)
	if idx != c.idx || attempt != c.attempt {
		return
	}
	c.waiting = false // kill the attempt's timeout; the bounce owns the retry
	c.w.redirects++
	c.w.eng.After(clusterNackBackoff, func() { c.issue(idx, in) })
}

// --- node ---

// serves reports whether this node is the serving authority for a
// shard: exactly when its own map says so. The stale-serve mutant
// keeps answering for every shard the node ever owned — the handoff
// bug the single-authority invariant exists to prevent.
func (n *clusterNode) serves(s int) bool {
	if n.view.table[s] == n.id {
		return true
	}
	return mutantOn(n.w.mut, MutStaleShardServe) && n.everOwned[s]
}

func (n *clusterNode) install(v *clusterView) {
	if v.epoch <= n.view.epoch {
		return
	}
	n.view = v
	for s, owner := range v.table {
		if owner == n.id {
			n.everOwned[s] = true
		}
	}
}

func (n *clusterNode) handleKV(c *clusterClient, idx, attempt int, in KVIn, opID uint64) {
	s := int(in.Key) % n.w.cfg.Shards
	v := n.view
	if !n.serves(s) {
		n.w.send(n.id, -1, func() { c.onWrongShard(idx, attempt, in, v) })
		return
	}
	out := n.apply(s, in, opID)
	// The apply is the linearization point; the reply leaves after a
	// service delay, opening the applied-but-unacked window that flap
	// boundaries turn into dedup'd retries.
	n.w.eng.After(clusterService, func() {
		n.w.send(n.id, -1, func() { c.onReply(idx, attempt, in, out, v) })
	})
}

func (n *clusterNode) apply(s int, in KVIn, opID uint64) KVOut {
	if !in.Put {
		e, ok := n.data[s][in.Key]
		return KVOut{Val: e.val, Found: ok}
	}
	if _, dup := n.memo[s][opID]; dup {
		n.w.dedupHits++
		return KVOut{}
	}
	e := clusterEntry{val: in.Val, ver: n.data[s][in.Key].ver + 1}
	n.data[s][in.Key] = e
	n.memo[s][opID] = struct{}{}
	if n.copying && n.copyShard == s {
		n.forward(in.Key, e, opID)
	}
	return KVOut{}
}

// absorb applies migrated state at the target: data entries only if
// strictly newer by version (chunk/forward reordering and retransmit
// duplicates are harmless), memo entries unconditionally.
func (n *clusterNode) absorb(s int, ch clusterChunk) {
	for _, me := range ch.entries {
		if me.e.ver > n.data[s][me.key].ver {
			n.data[s][me.key] = me.e
		}
		if me.opID != 0 {
			n.memo[s][me.opID] = struct{}{}
		}
	}
	for _, id := range ch.memo {
		n.memo[s][id] = struct{}{}
	}
}

// --- migration ---

func (w *clusterWorld) tryStartMigration() {
	if w.cfg.Nodes < 2 {
		return
	}
	src := w.curView.table[clusterMigShard]
	n := w.nodes[src]
	// One migration at a time, and the source must already hold the map
	// that makes it owner (it installs the previous handoff's epoch when
	// that migration releases migActive).
	if w.migActive || n.view.epoch < w.curView.epoch {
		w.eng.After(clusterRetransmit, w.tryStartMigration)
		return
	}
	w.migActive = true
	n.startCopy(clusterMigShard, (src+1)%w.cfg.Nodes)
}

func (n *clusterNode) startCopy(s, dst int) {
	n.copying = true
	n.copyShard = s
	n.copyDst = dst
	n.chunksSent = false
	n.chunksOut = 0

	// Deterministic snapshot: map iteration order is random, so sort.
	keys := make([]uint64, 0, len(n.data[s]))
	for k := range n.data[s] {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	memo := make([]uint64, 0, len(n.memo[s]))
	for id := range n.memo[s] {
		memo = append(memo, id)
	}
	sort.Slice(memo, func(i, j int) bool { return memo[i] < memo[j] })

	var chunks []clusterChunk
	for len(keys) > 0 {
		cs := n.w.cfg.ChunkSize
		if cs > len(keys) {
			cs = len(keys)
		}
		var ch clusterChunk
		for _, k := range keys[:cs] {
			ch.entries = append(ch.entries, clusterMigEntry{key: k, e: n.data[s][k]})
		}
		keys = keys[cs:]
		chunks = append(chunks, ch)
	}
	if len(chunks) == 0 {
		chunks = []clusterChunk{{}} // empty shard still does the handshake
	}
	// The memo snapshot rides the first chunk; entries memoized after
	// this point travel on their dual-write forwards.
	chunks[0].memo = memo

	n.chunksOut = len(chunks)
	n.chunksSent = true
	for _, ch := range chunks {
		n.sendChunk(ch)
	}
}

// sendChunk delivers one snapshot chunk reliably: retransmit every
// clusterRetransmit until the target's ack lands (flap windows just
// stretch the copy).
func (n *clusterNode) sendChunk(ch clusterChunk) {
	dst, s := n.copyDst, n.copyShard
	acked := false
	var xmit func()
	xmit = func() {
		if acked {
			return
		}
		n.w.send(n.id, dst, func() {
			n.w.nodes[dst].absorb(s, ch)
			n.w.send(dst, n.id, func() {
				if acked {
					return
				}
				acked = true
				n.chunksOut--
				n.tryHandoff()
			})
		})
		n.w.eng.After(clusterRetransmit, xmit)
	}
	xmit()
}

// forward reliably dual-writes one applied entry to the migration
// target; the handoff waits for every forward's ack.
func (n *clusterNode) forward(key uint64, e clusterEntry, opID uint64) {
	n.fwdOut++
	dst, s := n.copyDst, n.copyShard
	acked := false
	var xmit func()
	xmit = func() {
		if acked {
			return
		}
		n.w.send(n.id, dst, func() {
			n.w.nodes[dst].absorb(s, clusterChunk{entries: []clusterMigEntry{{key: key, e: e, opID: opID}}})
			n.w.send(dst, n.id, func() {
				if acked {
					return
				}
				acked = true
				n.fwdOut--
				n.tryHandoff()
			})
		})
		n.w.eng.After(clusterRetransmit, xmit)
	}
	xmit()
}

// tryHandoff runs on every chunk/forward ack. Once everything the
// source ever acknowledged is known to be applied at the target, the
// source atomically (one event) installs the handoff epoch, stops
// serving and stops dual-writing. The target installs after the
// handoff gap (plus any matured PerturbHandoffDelay); until then nobody
// serves the shard and clients bounce on WrongShard.
func (n *clusterNode) tryHandoff() {
	if !n.copying || !n.chunksSent || n.chunksOut > 0 || n.fwdOut > 0 {
		return
	}
	w := n.w
	s, dst := n.copyShard, n.copyDst
	table := append([]int(nil), w.curView.table...)
	table[s] = dst
	nv := &clusterView{epoch: w.curView.epoch + 1, table: table}
	n.copying = false
	n.install(nv)
	w.curView = nv
	w.migrations++
	gap := w.cfg.HandoffGap + w.consumeHandoffDelay()
	w.eng.After(gap, func() {
		w.nodes[dst].install(nv)
		w.migActive = false
	})
	// Bystanders hear a little later still; clients mostly learn from
	// reply piggybacks and WrongShard payloads before that.
	for i := range w.nodes {
		if i == n.id || i == dst {
			continue
		}
		other := w.nodes[i]
		w.eng.After(gap*2, func() { other.install(nv) })
	}
}

// consumeHandoffDelay takes the earliest matured handoff-delay
// perturbation, if any; each perturbation stretches exactly one
// handoff.
func (w *clusterWorld) consumeHandoffDelay() sim.Time {
	now := w.eng.Now()
	for i, p := range w.handoffs {
		if p.At <= now {
			w.handoffs = append(w.handoffs[:i], w.handoffs[i+1:]...)
			return p.Dur
		}
	}
	return 0
}

// --- driver ---

// RunClusterSchedule executes one deterministic cluster simulation
// under the given schedule and mutation and checks the history against
// the exact per-key register model.
func RunClusterSchedule(cfg ClusterSimConfig, sched Schedule, mut Mutation) RunReport {
	cfg = cfg.withDefaults()
	w := newClusterWorld(cfg, sched, mut)
	w.eng.Drain()
	completed := true
	for _, c := range w.clients {
		if !c.done {
			completed = false
		}
	}
	history := w.rec.History()
	return RunReport{
		Schedule:   sched,
		Result:     Check(RegisterModel(), history),
		Ops:        len(history),
		Completed:  completed,
		Retried:    w.retried,
		DedupHits:  w.dedupHits,
		Migrations: w.migrations,
		Redirects:  w.redirects,
		FlapDrops:  w.flapDrops,
	}
}

// ExploreCluster sweeps n seed-derived cluster schedules, mirroring
// ExploreSchedules. Migrations/Redirects/FlapDrops are summed so the
// gate can assert the sweep actually moved shards through faults.
func ExploreCluster(cfg ClusterSimConfig, mut Mutation, startSeed uint64, n int, derive func(uint64, ClusterSimConfig) Schedule) ExploreResult {
	var res ExploreResult
	for i := 0; i < n; i++ {
		seed := startSeed + uint64(i)
		sched := derive(seed, cfg)
		rep := RunClusterSchedule(cfg, sched, mut)
		res.Runs++
		res.Retried += rep.Retried
		res.DedupHits += rep.DedupHits
		res.Migrations += rep.Migrations
		res.Redirects += rep.Redirects
		res.FlapDrops += rep.FlapDrops
		if rep.Failed() {
			res.Failures++
			if res.First == nil {
				res.First = &FailureReport{Report: rep, Minimal: ShrinkCluster(cfg, sched, mut)}
			}
		}
	}
	return res
}

// ShrinkCluster is Shrink for cluster schedules: greedily drop
// perturbations while the schedule still fails.
func ShrinkCluster(cfg ClusterSimConfig, sched Schedule, mut Mutation) Schedule {
	if !RunClusterSchedule(cfg, sched, mut).Failed() {
		return sched
	}
	cur := sched
	for {
		removed := false
		for i := 0; i < len(cur.Perturbs); i++ {
			cand := Schedule{Seed: cur.Seed}
			cand.Perturbs = append(cand.Perturbs, cur.Perturbs[:i]...)
			cand.Perturbs = append(cand.Perturbs, cur.Perturbs[i+1:]...)
			if RunClusterSchedule(cfg, cand, mut).Failed() {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}
