package check

import (
	"testing"
)

// The cluster-suite gate: the sharded KV stays an exact linearizable
// register across live shard migrations under seeded node flaps and
// stretched handoffs, over a sweep big enough to hit the interesting
// interleavings. Vacuity is asserted alongside correctness — a sweep
// that never moved a shard, never bounced a client, or never dropped a
// message through a flap window would prove nothing.

const clusterGateSeeds = 250

func TestClusterMigrationLinearizable(t *testing.T) {
	res := ExploreCluster(ClusterSimConfig{}, MutNone, 1, clusterGateSeeds, MigrationScheduleFromSeed)
	if res.Failures != 0 {
		t.Fatalf("faithful cluster failed %d/%d schedules; first:\n%s", res.Failures, res.Runs, res.First)
	}
	if res.Migrations < res.Runs {
		t.Fatalf("vacuous sweep: %d migrations over %d runs (want >= 1 per run)", res.Migrations, res.Runs)
	}
	if res.Redirects == 0 {
		t.Fatal("vacuous sweep: no client ever took a wrong-shard redirect")
	}
	if res.FlapDrops == 0 {
		t.Fatal("vacuous sweep: no flap window ever dropped a message")
	}
	if res.Retried == 0 {
		t.Fatal("vacuous sweep: no attempt ever timed out and retried")
	}
	if res.DedupHits == 0 {
		t.Fatal("vacuous sweep: no retry was ever answered from the dedup memo")
	}
	t.Logf("cluster sweep: %d runs, %d migrations, %d redirects, %d flap drops, %d retries, %d dedup hits",
		res.Runs, res.Migrations, res.Redirects, res.FlapDrops, res.Retried, res.DedupHits)
}

// Replaying one schedule twice must produce an identical report —
// determinism is what makes a CI failure a one-seed repro.
func TestClusterRunDeterministic(t *testing.T) {
	cfg := ClusterSimConfig{}
	for seed := uint64(1); seed <= 8; seed++ {
		s1 := MigrationScheduleFromSeed(seed, cfg)
		s2 := MigrationScheduleFromSeed(seed, cfg)
		if s1.Hash() != s2.Hash() {
			t.Fatalf("seed %d: schedule derivation not deterministic", seed)
		}
		r1 := RunClusterSchedule(cfg, s1, MutNone)
		r2 := RunClusterSchedule(cfg, s2, MutNone)
		if r1.Ops != r2.Ops || r1.Migrations != r2.Migrations ||
			r1.Redirects != r2.Redirects || r1.FlapDrops != r2.FlapDrops ||
			r1.Retried != r2.Retried || r1.DedupHits != r2.DedupHits ||
			r1.Result.Ok != r2.Result.Ok || r1.Completed != r2.Completed {
			t.Fatalf("seed %d: replay diverged:\n  %+v\n  %+v", seed, r1, r2)
		}
	}
}

// The derivation's guarantees: the first perturbation is always a flap
// of the migrated shard's initial source (the copy path must ride
// through an outage), and only cluster perturbation kinds appear.
func TestMigrationScheduleShape(t *testing.T) {
	cfg := ClusterSimConfig{}.withDefaults()
	for seed := uint64(1); seed <= 200; seed++ {
		s := MigrationScheduleFromSeed(seed, cfg)
		if len(s.Perturbs) == 0 || s.Perturbs[0].Kind != PerturbNodeFlap || s.Perturbs[0].QP != 0 {
			t.Fatalf("seed %d: missing guaranteed source flap: %s", seed, s)
		}
		for _, p := range s.Perturbs {
			if p.Kind != PerturbNodeFlap && p.Kind != PerturbHandoffDelay {
				t.Fatalf("seed %d: foreign perturbation kind %s in cluster pool", seed, p.Kind)
			}
			if p.Kind == PerturbNodeFlap && (p.QP < 0 || p.QP >= cfg.Nodes) {
				t.Fatalf("seed %d: flap targets nonexistent node %d", seed, p.QP)
			}
		}
	}
}

// A perturbation-free run completes every seeded migration, stays
// linearizable, and (with nothing dropping messages) never retries.
func TestClusterQuiescentRun(t *testing.T) {
	cfg := ClusterSimConfig{}.withDefaults()
	rep := RunClusterSchedule(cfg, Schedule{Seed: 7}, MutNone)
	if rep.Failed() {
		t.Fatalf("quiescent run failed:\n%s", rep.Result)
	}
	if rep.Migrations != cfg.Migrations {
		t.Fatalf("quiescent run completed %d migrations, want %d", rep.Migrations, cfg.Migrations)
	}
	if rep.FlapDrops != 0 || rep.Retried != 0 {
		t.Fatalf("quiescent run dropped/retried (%d drops, %d retries) with no perturbations",
			rep.FlapDrops, rep.Retried)
	}
	if rep.Ops != cfg.Clients*cfg.OpsPerClient {
		t.Fatalf("quiescent run recorded %d ops, want %d", rep.Ops, cfg.Clients*cfg.OpsPerClient)
	}
	// Shrinking a passing schedule is the identity.
	s := MigrationScheduleFromSeed(3, cfg)
	if rep := RunClusterSchedule(cfg, s, MutNone); !rep.Failed() {
		if got := ShrinkCluster(cfg, s, MutNone); got.Hash() != s.Hash() {
			t.Fatalf("shrink modified a passing schedule: %s -> %s", s, got)
		}
	}
}
