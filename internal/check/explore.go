package check

import (
	"fmt"
	"strings"

	"flock/internal/sim"
)

// The schedule explorer. A Schedule is derived deterministically from a
// seed: the seed drives both the base interleaving (thread start jitter,
// QP choice on migration) and a small set of adversarial perturbations
// aimed at the combining path's race windows. Running the same schedule
// twice yields bit-identical histories, so a CI failure is reproduced by a
// single seed, and a failing schedule shrinks to a minimal perturbation
// set.

// PerturbKind names one adversarial scheduling decision.
type PerturbKind int

const (
	// PerturbLeaderStall deschedules a QP's combining leader for Dur,
	// opening the follower-timeout / re-election race.
	PerturbLeaderStall PerturbKind = iota
	// PerturbQPBreak breaks a QP with batches in flight; Dur is the
	// recycle delay.
	PerturbQPBreak
	// PerturbDeliveryDelay stretches the QP's wire latency by Dur for a
	// window, reordering deliveries against handoffs.
	PerturbDeliveryDelay
	// PerturbCreditStarve defers credit renewal grants until now+Dur,
	// stalling leaders mid-claim.
	PerturbCreditStarve
	// PerturbRedistribute rotates every thread's QP assignment, as the
	// receiver-side scheduler reshuffling the active set would.
	PerturbRedistribute
	// PerturbServiceInflate is the overload perturbation: server service
	// time inflates by Dur for a 4×Dur window, pushing responses past
	// attempt deadlines so clients retry under their idempotency keys.
	// Only OverloadScheduleFromSeed and PipelineScheduleFromSeed derive
	// it — the canonical ScheduleFromSeed pool is frozen so existing
	// seeds stay replayable.
	PerturbServiceInflate
	// PerturbNodeFlap takes one cluster member off the network for Dur
	// (every message to or from it is dropped), then brings it back — a
	// crash-recover or link flap against the cluster sim's membership and
	// migration machinery. QP carries the member index. Only
	// MigrationScheduleFromSeed derives it; the TCQ pools stay frozen.
	PerturbNodeFlap
	// PerturbHandoffDelay stretches the cluster sim's handoff window by
	// Dur: the gap between the migration source adopting the handoff
	// epoch (and starting to NACK) and the target learning it. Requests
	// bounce between the two views for the whole window — the redirect
	// storm the router's bounded retry loop must survive. Only
	// MigrationScheduleFromSeed derives it.
	PerturbHandoffDelay
	// PerturbPrimaryKill permanently silences one replica-sim member from
	// At on — a crash with no recovery, the failure synchronous
	// replication exists to survive. QP carries the member index; Dur is
	// ignored (death is forever). The world's failure detector notices
	// after its detect delay and promotes backups. Only
	// ReplicaScheduleFromSeed derives it; every other pool stays frozen.
	PerturbPrimaryKill
)

func (k PerturbKind) String() string {
	switch k {
	case PerturbLeaderStall:
		return "stall"
	case PerturbQPBreak:
		return "break"
	case PerturbDeliveryDelay:
		return "delay"
	case PerturbCreditStarve:
		return "starve"
	case PerturbRedistribute:
		return "redist"
	case PerturbServiceInflate:
		return "inflate"
	case PerturbNodeFlap:
		return "flap"
	case PerturbHandoffDelay:
		return "handoff"
	case PerturbPrimaryKill:
		return "kill"
	}
	return fmt.Sprintf("perturb(%d)", int(k))
}

// Perturbation is one scheduled adversarial event.
type Perturbation struct {
	Kind PerturbKind
	At   sim.Time // virtual time the event fires
	QP   int
	Dur  sim.Time
}

func (p Perturbation) String() string {
	if p.Kind == PerturbRedistribute {
		return fmt.Sprintf("redist@%dus", p.At/sim.Microsecond)
	}
	return fmt.Sprintf("%s(qp%d,%dus)@%dus", p.Kind, p.QP, p.Dur/sim.Microsecond, p.At/sim.Microsecond)
}

// Schedule is a fully deterministic run description: the seed (base
// interleaving) plus the perturbation list. ScheduleFromSeed derives the
// canonical schedule; a shrunk schedule keeps the seed but drops
// perturbations.
type Schedule struct {
	Seed     uint64
	Perturbs []Perturbation
}

// String renders the schedule in the replayable form printed on failure.
func (s Schedule) String() string {
	parts := make([]string, len(s.Perturbs))
	for i, p := range s.Perturbs {
		parts[i] = p.String()
	}
	return fmt.Sprintf("seed=%d perturbs=[%s]", s.Seed, strings.Join(parts, " "))
}

// Hash is a stable fingerprint of the schedule, for log correlation.
func (s Schedule) Hash() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(s.Seed)
	for _, p := range s.Perturbs {
		mix(uint64(p.Kind))
		mix(uint64(p.At))
		mix(uint64(p.QP))
		mix(uint64(p.Dur))
	}
	return h
}

// ScheduleFromSeed derives the canonical schedule for a seed: 0–5
// perturbations placed inside the window where the workload is active,
// with durations sized to straddle the follower stall timeout (so leader
// stalls really do race re-election).
func ScheduleFromSeed(seed uint64, cfg SimConfig) Schedule {
	cfg = cfg.withDefaults()
	rng := newScheduleRNG(seed)
	// Rough active window: ops flow for about opsPerThread round trips.
	horizon := sim.Time(cfg.OpsPerThread) * (4 * simWireLatency)
	n := rng.Intn(6)
	s := Schedule{Seed: seed}
	for i := 0; i < n; i++ {
		p := Perturbation{
			Kind: PerturbKind(rng.Intn(5)),
			At:   sim.Time(rng.Uint64n(uint64(horizon) + 1)),
			QP:   rng.Intn(cfg.QPs),
		}
		switch p.Kind {
		case PerturbLeaderStall:
			// Half a stall timeout up to 3×: some stalls the followers
			// ride out, some force abandonment.
			p.Dur = cfg.StallTimeout/2 + sim.Time(rng.Uint64n(uint64(cfg.StallTimeout)*3))
		case PerturbQPBreak:
			p.Dur = simRecycleDelay + sim.Time(rng.Uint64n(uint64(10*sim.Microsecond)))
		case PerturbDeliveryDelay, PerturbCreditStarve:
			p.Dur = sim.Time(rng.Uint64n(uint64(cfg.StallTimeout)*2) + 1)
		}
		s.Perturbs = append(s.Perturbs, p)
	}
	return s
}

// OverloadScheduleFromSeed derives the overload-suite schedule for a
// seed: one guaranteed service-inflation window plus 0–4 perturbations
// drawn from the full kind set (inflation included). It is a separate
// derivation — with its own RNG salt — so the canonical ScheduleFromSeed
// pool is untouched and historical seeds keep replaying bit-identically.
// Inflation windows are sized around the attempt timeout: some the
// attempts ride out, some force abandonment and an idempotent retry.
func OverloadScheduleFromSeed(seed uint64, cfg SimConfig) Schedule {
	cfg = cfg.withDefaults()
	rng := newScheduleRNG(seed ^ 0x0F10CC0AD5EED5A1)
	at := cfg.AttemptTimeout
	if at <= 0 {
		at = 4 * cfg.StallTimeout
	}
	horizon := sim.Time(cfg.OpsPerThread) * (4 * simWireLatency)
	inflate := func() Perturbation {
		return Perturbation{
			Kind: PerturbServiceInflate,
			At:   sim.Time(rng.Uint64n(uint64(horizon) + 1)),
			QP:   rng.Intn(cfg.QPs),
			Dur:  at/2 + sim.Time(rng.Uint64n(uint64(at)*2)),
		}
	}
	s := Schedule{Seed: seed, Perturbs: []Perturbation{inflate()}}
	n := rng.Intn(5)
	for i := 0; i < n; i++ {
		p := Perturbation{
			Kind: PerturbKind(rng.Intn(6)),
			At:   sim.Time(rng.Uint64n(uint64(horizon) + 1)),
			QP:   rng.Intn(cfg.QPs),
		}
		switch p.Kind {
		case PerturbLeaderStall:
			p.Dur = cfg.StallTimeout/2 + sim.Time(rng.Uint64n(uint64(cfg.StallTimeout)*3))
		case PerturbQPBreak:
			p.Dur = simRecycleDelay + sim.Time(rng.Uint64n(uint64(10*sim.Microsecond)))
		case PerturbDeliveryDelay, PerturbCreditStarve:
			p.Dur = sim.Time(rng.Uint64n(uint64(cfg.StallTimeout)*2) + 1)
		case PerturbServiceInflate:
			p = inflate()
		}
		s.Perturbs = append(s.Perturbs, p)
	}
	return s
}

// PipelineScheduleFromSeed derives the pipelining-suite schedule for a
// seed — the pool that drives SimConfig.Pipeline windows. Like the
// overload pool it is its own derivation with its own RNG salt, so the
// canonical and overload pools keep replaying bit-identically. Every
// schedule carries one guaranteed service-inflation window (inflation
// pushes attempts past their deadline, so retries of one op interleave
// with its window-mates — the completion-matching races the suite exists
// to explore) plus 0–4 perturbations from the full kind set.
func PipelineScheduleFromSeed(seed uint64, cfg SimConfig) Schedule {
	cfg = cfg.withDefaults()
	rng := newScheduleRNG(seed ^ 0x0F10CCB1BE5EED07)
	at := cfg.AttemptTimeout
	if at <= 0 {
		at = 4 * cfg.StallTimeout
	}
	horizon := sim.Time(cfg.OpsPerThread) * (4 * simWireLatency)
	inflate := func() Perturbation {
		return Perturbation{
			Kind: PerturbServiceInflate,
			At:   sim.Time(rng.Uint64n(uint64(horizon) + 1)),
			QP:   rng.Intn(cfg.QPs),
			Dur:  at/2 + sim.Time(rng.Uint64n(uint64(at)*2)),
		}
	}
	s := Schedule{Seed: seed, Perturbs: []Perturbation{inflate()}}
	n := rng.Intn(5)
	for i := 0; i < n; i++ {
		p := Perturbation{
			Kind: PerturbKind(rng.Intn(6)),
			At:   sim.Time(rng.Uint64n(uint64(horizon) + 1)),
			QP:   rng.Intn(cfg.QPs),
		}
		switch p.Kind {
		case PerturbLeaderStall:
			p.Dur = cfg.StallTimeout/2 + sim.Time(rng.Uint64n(uint64(cfg.StallTimeout)*3))
		case PerturbQPBreak:
			p.Dur = simRecycleDelay + sim.Time(rng.Uint64n(uint64(10*sim.Microsecond)))
		case PerturbDeliveryDelay, PerturbCreditStarve:
			p.Dur = sim.Time(rng.Uint64n(uint64(cfg.StallTimeout)*2) + 1)
		case PerturbServiceInflate:
			p = inflate()
		}
		s.Perturbs = append(s.Perturbs, p)
	}
	return s
}

// RunReport is the outcome of one simulated schedule.
type RunReport struct {
	Schedule  Schedule
	Result    Result
	Ops       int
	Completed bool // false: a thread never finished — the protocol wedged
	// Retried counts attempt abandonments (deadline expiry or ambiguous
	// retry); DedupHits counts applies answered from the dedup memo. Both
	// are vacuity signals for the overload suite: a sweep that never
	// retries or never dedups proved nothing.
	Retried   int
	DedupHits int
	// Migrations counts shard handoffs completed during the run, and
	// Redirects counts wrong-shard bounces clients absorbed — the
	// vacuity signals for the cluster suite: a sweep where no shard
	// moved (or no client ever chased a moved shard) proved nothing
	// about migration. FlapDrops counts messages dropped by node-flap
	// perturbation windows. All three are zero outside the cluster sim.
	Migrations int
	Redirects  int
	FlapDrops  int
	// Pipelined counts ops issued while their thread already had one in
	// flight — the vacuity signal for the pipelining suite: a sweep that
	// never overlapped two ops of one thread proved nothing about the
	// completion-matching path.
	Pipelined int
	// Failovers counts backup promotions after a primary kill, and
	// Forwards counts primary→backup replication forwards — the vacuity
	// signals for the replica suite: a sweep where no shard ever failed
	// over (or no write was ever replicated) proved nothing about the
	// sync-forward ACK rule. Both are zero outside the replica sim.
	Failovers int
	Forwards  int
	// Batches counts replication-forward frames flushed and MultiBatches
	// the frames that carried more than one entry — the vacuity signals
	// for the group-commit suite: a sweep where every frame held a
	// single put proved nothing about batch-granular failure semantics.
	// Both are zero outside the replica sim.
	Batches      int
	MultiBatches int
}

// Failed reports whether the run violated the model or wedged.
func (r RunReport) Failed() bool { return !r.Result.Ok || !r.Completed }

// RunSchedule executes one deterministic simulation of the combining path
// under the given schedule and mutation, and checks the recorded history
// against the workload's model.
func RunSchedule(cfg SimConfig, sched Schedule, mut Mutation) RunReport {
	w := newSimWorld(cfg, sched.Seed, mut)
	history, completed := w.run(sched)
	res := Check(cfg.Workload.Model(), history)
	return RunReport{
		Schedule:  sched,
		Result:    res,
		Ops:       len(history),
		Completed: completed,
		Retried:   w.retried,
		DedupHits: w.dedupHits,
		Pipelined: w.pipelined,
	}
}

// FailureReport describes the first failing schedule of an exploration,
// with its shrunk minimal form.
type FailureReport struct {
	Report  RunReport
	Minimal Schedule
}

func (f FailureReport) String() string {
	verdict := f.Report.Result.String()
	if !f.Report.Completed {
		verdict = "protocol wedged: some threads never completed\n" + verdict
	}
	return fmt.Sprintf(
		"schedule exploration failure\n  schedule: %s (hash %016x)\n  minimal:  %s (hash %016x)\n  replay:   RunSchedule(cfg, minimal, mut)\n%s",
		f.Report.Schedule, f.Report.Schedule.Hash(), f.Minimal, f.Minimal.Hash(), verdict)
}

// ExploreResult summarizes an exploration sweep.
type ExploreResult struct {
	Runs     int
	Failures int
	// Retried, DedupHits, and Pipelined are summed over the sweep
	// (vacuity signals for the overload and pipelining suites).
	Retried   int
	DedupHits int
	Pipelined int
	// Migrations, Redirects, and FlapDrops are summed over cluster-suite
	// sweeps (zero for the TCQ suites).
	Migrations int
	Redirects  int
	FlapDrops  int
	// Failovers, Forwards, Batches, and MultiBatches are summed over
	// replica-suite sweeps (zero everywhere else).
	Failovers    int
	Forwards     int
	Batches      int
	MultiBatches int
	// First is the first failure, shrunk; nil when all runs passed.
	First *FailureReport
}

// Explore runs n seed-derived schedules starting at startSeed and checks
// every history. On the first failure it shrinks the schedule and records
// the report; remaining seeds still run so Failures counts the full sweep.
func Explore(cfg SimConfig, mut Mutation, startSeed uint64, n int) ExploreResult {
	return ExploreSchedules(cfg, mut, startSeed, n, ScheduleFromSeed)
}

// ExploreSchedules is Explore with a pluggable schedule derivation —
// ScheduleFromSeed for the canonical pool, OverloadScheduleFromSeed for
// the overload suite. Retried/DedupHits are summed across the sweep so
// callers can assert the sweep actually exercised what it claims to.
func ExploreSchedules(cfg SimConfig, mut Mutation, startSeed uint64, n int, derive func(uint64, SimConfig) Schedule) ExploreResult {
	var res ExploreResult
	for i := 0; i < n; i++ {
		seed := startSeed + uint64(i)
		sched := derive(seed, cfg)
		rep := RunSchedule(cfg, sched, mut)
		res.Runs++
		res.Retried += rep.Retried
		res.DedupHits += rep.DedupHits
		res.Pipelined += rep.Pipelined
		if rep.Failed() {
			res.Failures++
			if res.First == nil {
				res.First = &FailureReport{Report: rep, Minimal: Shrink(cfg, sched, mut)}
			}
		}
	}
	return res
}

// Shrink greedily removes perturbations from a failing schedule while it
// still fails, iterating to a fixpoint: the result is the minimal failing
// schedule (for this seed) to print in reports.
func Shrink(cfg SimConfig, sched Schedule, mut Mutation) Schedule {
	if !RunSchedule(cfg, sched, mut).Failed() {
		return sched // not actually failing; nothing to shrink
	}
	cur := sched
	for {
		removed := false
		for i := 0; i < len(cur.Perturbs); i++ {
			cand := Schedule{Seed: cur.Seed}
			cand.Perturbs = append(cand.Perturbs, cur.Perturbs[:i]...)
			cand.Perturbs = append(cand.Perturbs, cur.Perturbs[i+1:]...)
			if RunSchedule(cfg, cand, mut).Failed() {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}

// newScheduleRNG isolates schedule derivation from the simulation's own
// RNG stream so the two never correlate.
func newScheduleRNG(seed uint64) *scheduleRNG {
	return &scheduleRNG{s: seed ^ 0xD1B54A32D192ED03}
}

// scheduleRNG is a tiny splitmix64 stream, deliberately separate from
// stats.RNG so changes to one cannot silently reshuffle the other's
// schedules.
type scheduleRNG struct{ s uint64 }

func (r *scheduleRNG) Uint64() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *scheduleRNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.Uint64() % n
}

func (r *scheduleRNG) Intn(n int) int { return int(r.Uint64n(uint64(n))) }
