package check

import (
	"testing"
)

// exploreSeeds is the per-model schedule budget for the correct
// implementation. ISSUE 4 requires 1,000+ explored schedules per model.
const exploreSeeds = 1100

func exploreCfg(w Workload) SimConfig {
	return SimConfig{
		Threads:      4,
		OpsPerThread: 6,
		QPs:          2,
		MaxBatch:     4,
		Credits:      4,
		Workload:     w,
	}
}

// TestExploreCorrectImplementation sweeps 1000+ seed-derived adversarial
// schedules per model against the faithful combining-path simulation and
// requires every history to be linearizable and every run to complete.
func TestExploreCorrectImplementation(t *testing.T) {
	for _, w := range []Workload{WorkloadCounter, WorkloadEcho, WorkloadKV} {
		w := w
		t.Run(w.String(), func(t *testing.T) {
			t.Parallel()
			res := Explore(exploreCfg(w), MutNone, 1, exploreSeeds)
			if res.Runs != exploreSeeds {
				t.Fatalf("ran %d schedules, want %d", res.Runs, exploreSeeds)
			}
			if res.Failures != 0 {
				t.Fatalf("%d/%d schedules failed; first:\n%s", res.Failures, res.Runs, res.First)
			}
		})
	}
}

// TestScheduleDeterminism: the same seed must yield an identical schedule,
// an identical history, and an identical verdict — that is what makes a
// CI failure replayable from its logged seed.
func TestScheduleDeterminism(t *testing.T) {
	cfg := exploreCfg(WorkloadCounter)
	for seed := uint64(1); seed < 25; seed++ {
		s1 := ScheduleFromSeed(seed, cfg)
		s2 := ScheduleFromSeed(seed, cfg)
		if s1.Hash() != s2.Hash() || s1.String() != s2.String() {
			t.Fatalf("seed %d derived two different schedules", seed)
		}
		w1 := newSimWorld(cfg, seed, MutNone)
		h1, c1 := w1.run(s1)
		w2 := newSimWorld(cfg, seed, MutNone)
		h2, c2 := w2.run(s2)
		if c1 != c2 || len(h1) != len(h2) {
			t.Fatalf("seed %d: runs diverged (%d/%v vs %d/%v ops)", seed, len(h1), c1, len(h2), c2)
		}
		for i := range h1 {
			if h1[i] != h2[i] {
				t.Fatalf("seed %d op %d diverged: %+v vs %+v", seed, i, h1[i], h2[i])
			}
		}
	}
}

// TestScheduleCoversAllPerturbations: the seed-derived pool must actually
// exercise every perturbation kind, or the explorer silently loses its
// adversarial coverage.
func TestScheduleCoversAllPerturbations(t *testing.T) {
	cfg := exploreCfg(WorkloadCounter)
	seen := map[PerturbKind]int{}
	for seed := uint64(1); seed <= exploreSeeds; seed++ {
		for _, p := range ScheduleFromSeed(seed, cfg).Perturbs {
			seen[p.Kind]++
		}
	}
	for _, k := range []PerturbKind{PerturbLeaderStall, PerturbQPBreak, PerturbDeliveryDelay, PerturbCreditStarve, PerturbRedistribute} {
		if seen[k] == 0 {
			t.Fatalf("perturbation %s never derived across %d seeds", k, exploreSeeds)
		}
	}
}

// TestRunScheduleProducesWork sanity-checks that the simulation records a
// plausible number of operations (no silent early exit).
func TestRunScheduleProducesWork(t *testing.T) {
	cfg := exploreCfg(WorkloadCounter)
	rep := RunSchedule(cfg, ScheduleFromSeed(7, cfg), MutNone)
	want := cfg.Threads * cfg.OpsPerThread
	if rep.Ops != want {
		t.Fatalf("recorded %d ops, want %d", rep.Ops, want)
	}
	if !rep.Completed {
		t.Fatal("run did not complete")
	}
	if !rep.Result.Ok {
		t.Fatalf("seed 7 should pass:\n%s", rep.Result)
	}
}

// TestShrinkKeepsFailureMinimal: shrinking a passing schedule is the
// identity; shrinking preserves the seed.
func TestShrinkIdentityOnPass(t *testing.T) {
	cfg := exploreCfg(WorkloadCounter)
	sched := ScheduleFromSeed(7, cfg)
	got := Shrink(cfg, sched, MutNone)
	if got.Seed != sched.Seed || len(got.Perturbs) != len(sched.Perturbs) {
		t.Fatalf("shrink modified a passing schedule: %s -> %s", sched, got)
	}
}
