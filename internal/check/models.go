package check

import (
	"bytes"
	"fmt"
)

// Models for the workloads this repository serves. Inputs and outputs are
// small comparable structs (plus []byte payloads compared by value) so the
// default state equality and the memoization cache stay cheap.

// EchoIn is an echo-RPC invocation.
type EchoIn struct{ Payload string }

// EchoOut is an echo-RPC response.
type EchoOut struct {
	Payload string
	Status  uint32
}

// EchoModel checks the echo contract: every completed call returns status
// OK and its own payload, unchanged. Echo is stateless, so each operation
// is its own partition — a cross-wired response (another thread's payload,
// a torn or stale buffer) fails its partition immediately.
func EchoModel() Model {
	return Model{
		Name: "echo",
		Partition: func(ops []Operation) [][]Operation {
			parts := make([][]Operation, len(ops))
			for i, op := range ops {
				parts[i] = []Operation{op}
			}
			return parts
		},
		Init: func() interface{} { return nil },
		Step: func(state, input, output interface{}) (bool, interface{}) {
			if output == nil {
				return true, state // pending: unknown result
			}
			in, out := input.(EchoIn), output.(EchoOut)
			return out.Status == 0 && out.Payload == in.Payload, state
		},
		Describe: func(op Operation) string {
			return fmt.Sprintf("echo(%q) -> %v", op.Input.(EchoIn).Payload, op.Output)
		},
	}
}

// KVIn is a kvstore invocation: a put when Put is set, else a get.
type KVIn struct {
	Key uint64
	Put bool
	Val uint64
}

// KVOut is a kvstore response. For gets, Val is the observed value and
// Found reports presence; puts carry no output state.
type KVOut struct {
	Val   uint64
	Found bool
}

// kvPartition groups operations by key (P-compositionality: the store is
// linearizable iff every per-key history is).
func kvPartition(ops []Operation) [][]Operation {
	byKey := make(map[uint64][]Operation)
	var keys []uint64
	for _, op := range ops {
		k := op.Input.(KVIn).Key
		if _, ok := byKey[k]; !ok {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], op)
	}
	parts := make([][]Operation, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, byKey[k])
	}
	return parts
}

func describeKV(op Operation) string {
	in := op.Input.(KVIn)
	if in.Put {
		return fmt.Sprintf("put(%d, %d) -> %v", in.Key, in.Val, op.Output)
	}
	return fmt.Sprintf("get(%d) -> %v", in.Key, op.Output)
}

// kvState is a per-key register value; ok distinguishes "never written".
type kvState struct {
	val uint64
	ok  bool
}

// RegisterModel is the exact per-key register: put replaces the value, get
// returns the last put. It requires exactly-once writes — use it on
// fault-free histories, or with failed writes recorded as pending.
func RegisterModel() Model {
	return Model{
		Name:      "kv-register",
		Partition: kvPartition,
		Init:      func() interface{} { return kvState{} },
		Step: func(state, input, output interface{}) (bool, interface{}) {
			s := state.(kvState)
			in := input.(KVIn)
			if in.Put {
				return true, kvState{val: in.Val, ok: true}
			}
			if output == nil {
				return true, s // pending get: unknown result
			}
			out := output.(KVOut)
			if !s.ok {
				return !out.Found, s
			}
			return out.Found && out.Val == s.val, s
		},
		Describe: describeKV,
	}
}

// MonotonicKVModel is the at-least-once contract the chaos suite's guarded
// put handler provides: put values per key come from a monotonic sequence,
// the server applies only newer values (so a duplicated or late retry of
// an older put is a no-op), and a get observes the maximum applied value.
// Under this model retries and duplicate applies are legal, but a lost
// acknowledged put or a stale read remain violations.
func MonotonicKVModel() Model {
	return Model{
		Name:      "kv-monotonic",
		Partition: kvPartition,
		Init:      func() interface{} { return kvState{} },
		Step: func(state, input, output interface{}) (bool, interface{}) {
			s := state.(kvState)
			in := input.(KVIn)
			if in.Put {
				if !s.ok || in.Val > s.val {
					return true, kvState{val: in.Val, ok: true}
				}
				return true, s // older than applied: no-op by the guard
			}
			if output == nil {
				return true, s
			}
			out := output.(KVOut)
			if !s.ok {
				return !out.Found, s
			}
			return out.Found && out.Val == s.val, s
		},
		Describe: describeKV,
	}
}

// CounterIn is a fetch-add-counter invocation: a fetch-add of Delta when
// Add is set, else a read.
type CounterIn struct {
	Add   bool
	Delta uint64
}

// CounterOut carries the fetch-add's previous value, or the read's value.
type CounterOut struct{ Val uint64 }

// CounterModel checks a 64-bit fetch-add counter: fetch-add returns the
// pre-add value and advances the state; read returns the current value.
// It is the model for the fetch-add verb and for the simulated combining
// path's counter workload: a duplicated apply (two combining leaders own
// the same node) or a lost-but-acknowledged apply both break it.
func CounterModel() Model {
	return Model{
		Name: "fetch-add",
		Init: func() interface{} { return uint64(0) },
		Step: func(state, input, output interface{}) (bool, interface{}) {
			v := state.(uint64)
			in := input.(CounterIn)
			if in.Add {
				if output == nil {
					return true, v + in.Delta // pending add: effect unknown result
				}
				return output.(CounterOut).Val == v, v + in.Delta
			}
			if output == nil {
				return true, v
			}
			return output.(CounterOut).Val == v, v
		},
		Describe: func(op Operation) string {
			in := op.Input.(CounterIn)
			if in.Add {
				return fmt.Sprintf("fetch-add(%d) -> %v", in.Delta, op.Output)
			}
			return fmt.Sprintf("read() -> %v", op.Output)
		},
	}
}

// BytesEqual is a helper for models carrying raw payloads.
func BytesEqual(a, b []byte) bool { return bytes.Equal(a, b) }
