//go:build !flockmut

package check

// Mutation selects an intentionally-broken protocol variant for the
// mutation self-test. In normal builds only MutNone exists in spirit:
// mutantOn is a constant false, so the compiler removes every mutant code
// path from the simulator. Build with -tags flockmut to compile the eight
// known-bad variants in and run the self-test that proves the checker
// catches each one.
type Mutation int

const (
	// MutNone is the faithful protocol.
	MutNone Mutation = iota
	// MutClaimTimedOut: the leader's claim skips the waiting-state CAS
	// and stages abandoned (timed-out) nodes — the bug the CAS in
	// tcq.go's claim exists to prevent. The abandoned op executes twice:
	// once via the mutant leader, once via its thread's re-election.
	MutClaimTimedOut
	// MutBatchDropTail: the leader stages all but the last item of a
	// multi-item batch yet delivers a sent verdict for the whole batch —
	// an off-by-one in batch staging. The dropped op is acknowledged with
	// a stale slot but never applied.
	MutBatchDropTail
	// MutRecycleAckInflight: QP recycle acknowledges in-flight batches as
	// sent instead of failing them — recovery that fabricates results for
	// messages the server may never have seen.
	MutRecycleAckInflight
	// MutDedupSkip: the server forgets to consult the dedup window before
	// applying, so an idempotency-keyed retry whose original already
	// landed executes a second time — the double-apply the window exists
	// to prevent. Only visible under the overload schedules, which are
	// what manufacture retries.
	MutDedupSkip
	// MutPipelineMisroute: when a response message carries two ops of the
	// same thread, the completion path swaps their outputs — matching a
	// response to whichever outstanding call is waiting instead of to the
	// call whose sequence number it carries. This is the bug the per-call
	// completion table exists to prevent, and it is pipelining-aware by
	// construction: a synchronous thread never has two live ops in one
	// batch, so only the Pipeline > 1 schedule pool can catch it.
	MutPipelineMisroute
	// MutStaleShardServe: a cluster node keeps serving every shard it
	// ever owned, ignoring the handoff epoch that moved ownership away —
	// the migration bug the single-authority rule (serve only what your
	// own map assigns you) exists to prevent. Reads at the stale source
	// miss the target's writes, and puts that land there are
	// acknowledged but never reach the new owner. Only the cluster
	// schedule pool can catch it: the TCQ sims have no shards to move.
	MutStaleShardServe
	// MutAckBeforeReplicate: a replicated primary acknowledges a put as
	// soon as the local apply lands, replicating to backups lazily — the
	// premature-ack bug the sync-forward ACK rule exists to prevent. The
	// ack promises durability the backups don't yet have: kill the
	// primary inside the ack-to-forward window and the promoted backup
	// serves reads that miss an acknowledged write. Only the replica
	// schedule pool can catch it: no other pool kills a primary.
	MutAckBeforeReplicate
	// MutAckBeforeBatchDurable: the group-commit variant of the same
	// lie — a primary acknowledges a put the moment it joins the
	// replication log, instead of waiting for the batch carrying it to
	// commit on every backup. The batch still flushes and transmits,
	// but the ack races the flush window: kill the primary between
	// enqueue and backup absorption and the promoted backup misses an
	// acknowledged write. This is the ack rule the batched forwarder
	// must preserve — group commit changes the granularity of
	// durability, never its timing relative to the ack.
	MutAckBeforeBatchDurable
)

// EnabledMutations lists the mutants compiled into this build: none.
func EnabledMutations() []Mutation { return nil }

// mutantOn reports whether mutant `want` is active. Without the flockmut
// build tag this is constant false and mutant branches are dead code.
func mutantOn(m, want Mutation) bool { return false }
