//go:build flockmut

package check

// Mutation selects an intentionally-broken protocol variant. This is the
// flockmut build: the eight known-bad variants are compiled into the
// simulator and selectable at runtime, so the self-test can assert the
// checker flags every one of them. See mutants_off.go for the per-variant
// documentation.
type Mutation int

const (
	MutNone Mutation = iota
	MutClaimTimedOut
	MutBatchDropTail
	MutRecycleAckInflight
	MutDedupSkip
	MutPipelineMisroute
	MutStaleShardServe
	MutAckBeforeReplicate
	MutAckBeforeBatchDurable
)

func (m Mutation) String() string {
	switch m {
	case MutNone:
		return "none"
	case MutClaimTimedOut:
		return "claim-timed-out"
	case MutBatchDropTail:
		return "batch-drop-tail"
	case MutRecycleAckInflight:
		return "recycle-ack-inflight"
	case MutDedupSkip:
		return "dedup-skip"
	case MutPipelineMisroute:
		return "pipeline-misroute"
	case MutStaleShardServe:
		return "stale-shard-serve"
	case MutAckBeforeReplicate:
		return "ack-before-replicate"
	case MutAckBeforeBatchDurable:
		return "ack-before-batch-durable"
	}
	return "unknown"
}

// EnabledMutations lists the mutants compiled into this build.
func EnabledMutations() []Mutation {
	return []Mutation{MutClaimTimedOut, MutBatchDropTail, MutRecycleAckInflight, MutDedupSkip, MutPipelineMisroute, MutStaleShardServe, MutAckBeforeReplicate, MutAckBeforeBatchDurable}
}

// mutantOn reports whether mutant `want` is the active one.
func mutantOn(m, want Mutation) bool { return m == want }
