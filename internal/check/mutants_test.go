//go:build flockmut

package check

import (
	"strings"
	"testing"
)

// The mutation self-test: the harness is only trustworthy if it catches
// known-bad protocol variants. Each mutant breaks one rule the real
// implementation enforces (tcq.go's claim CAS, batch staging, recovery's
// fail-don't-fabricate); the explorer must flag every one of them as
// non-linearizable within the seed budget, while the same sweep passes
// the faithful protocol.

const mutantSeeds = 400

// mutantWorkload picks the most sensitive model per mutant. The misroute
// mutant swaps outputs between two ops of one thread, which echo — every
// response must carry its own call's payload — sees unconditionally.
func mutantWorkload(m Mutation) Workload {
	if m == MutPipelineMisroute {
		return WorkloadEcho
	}
	return WorkloadCounter
}

func TestMutantsAreCaught(t *testing.T) {
	muts := EnabledMutations()
	if len(muts) != 8 {
		t.Fatalf("expected 8 compiled mutants, got %d", len(muts))
	}
	for _, mut := range muts {
		mut := mut
		t.Run(mut.String(), func(t *testing.T) {
			t.Parallel()
			// The dedup mutant only bites when retries happen, so it gets
			// the overload schedules; the misroute mutant only bites when a
			// thread has two ops in flight, so it gets the pipeline
			// schedules; the stale-shard mutant only bites when a shard
			// migrates, so it gets the cluster simulator; the premature-ack
			// mutants (before-replicate and before-batch-durable) only bite
			// when a primary dies mid-replication, so they get the replica
			// simulator; the combining-path mutants keep the canonical pool.
			var res ExploreResult
			var replay func(Schedule) bool
			if mut == MutStaleShardServe {
				ccfg := ClusterSimConfig{}
				res = ExploreCluster(ccfg, mut, 1, mutantSeeds, MigrationScheduleFromSeed)
				replay = func(s Schedule) bool { return RunClusterSchedule(ccfg, s, mut).Failed() }
			} else if mut == MutAckBeforeReplicate || mut == MutAckBeforeBatchDurable {
				rcfg := ReplicaSimConfig{}
				res = ExploreReplica(rcfg, mut, 1, mutantSeeds, ReplicaScheduleFromSeed)
				replay = func(s Schedule) bool { return RunReplicaSchedule(rcfg, s, mut).Failed() }
			} else {
				cfg := exploreCfg(mutantWorkload(mut))
				derive := ScheduleFromSeed
				switch mut {
				case MutDedupSkip:
					cfg = overloadCfg(mutantWorkload(mut))
					derive = OverloadScheduleFromSeed
				case MutPipelineMisroute:
					cfg = pipelineCfg(mutantWorkload(mut))
					derive = PipelineScheduleFromSeed
				}
				res = ExploreSchedules(cfg, mut, 1, mutantSeeds, derive)
				replay = func(s Schedule) bool { return RunSchedule(cfg, s, mut).Failed() }
			}
			if res.Failures == 0 {
				t.Fatalf("mutant %s survived %d schedules: the checker is blind to it", mut, res.Runs)
			}
			t.Logf("mutant %s: caught in %d/%d schedules", mut, res.Failures, res.Runs)

			// The failure report must be replayable: re-running the shrunk
			// minimal schedule must still fail, and the report must print
			// both the seed and the failing sub-history.
			f := res.First
			if f == nil {
				t.Fatal("failures counted but no report captured")
			}
			if !replay(f.Minimal) {
				t.Fatalf("minimal schedule does not reproduce: %s", f.Minimal)
			}
			if len(f.Minimal.Perturbs) > len(f.Report.Schedule.Perturbs) {
				t.Fatalf("shrink grew the schedule: %s -> %s", f.Report.Schedule, f.Minimal)
			}
			rep := f.String()
			if !strings.Contains(rep, "seed=") || !strings.Contains(rep, "minimal:") {
				t.Fatalf("failure report missing replay info:\n%s", rep)
			}
		})
	}
}

// TestMisrouteInvisibleWithoutPipelining: the misroute mutant must survive
// the canonical synchronous pool — one op in flight per thread means no
// message ever carries two live ops of one thread, so there is nothing to
// swap. If this sweep starts failing, the mutant stopped being a
// pipelining bug and the pipeline suite's catch proves nothing new.
func TestMisrouteInvisibleWithoutPipelining(t *testing.T) {
	res := Explore(exploreCfg(WorkloadEcho), MutPipelineMisroute, 1, mutantSeeds)
	if res.Failures != 0 {
		t.Fatalf("misroute mutant caught by the synchronous pool (%d/%d schedules); first:\n%s",
			res.Failures, res.Runs, res.First)
	}
}

// TestFaithfulProtocolSurvivesMutantSweep: the exact sweep that kills the
// mutants passes the unmodified protocol — the checker discriminates, it
// does not just reject everything.
func TestFaithfulProtocolSurvivesMutantSweep(t *testing.T) {
	cfg := exploreCfg(WorkloadCounter)
	res := Explore(cfg, MutNone, 1, mutantSeeds)
	if res.Failures != 0 {
		t.Fatalf("faithful protocol failed %d/%d schedules; first:\n%s", res.Failures, res.Runs, res.First)
	}
}
