package check

import (
	"testing"

	"flock/internal/sim"
)

// The overload suite: service-time inflation pushes attempts past their
// deadline, clients resubmit under stable idempotency keys, and the
// server's dedup memo must keep every history exactly-once linearizable.
// overloadSeeds×3 workloads comfortably clears the ≥200-schedule floor.
const overloadSeeds = 250

// overloadCfg is exploreCfg plus the overload-control knobs: per-attempt
// deadlines (which manufacture retries under inflation) and the dedup
// window (which must absorb them). Also used by the flockmut build to
// hunt MutDedupSkip.
func overloadCfg(w Workload) SimConfig {
	return SimConfig{
		Threads:        4,
		OpsPerThread:   6,
		QPs:            2,
		MaxBatch:       4,
		Credits:        4,
		Workload:       w,
		AttemptTimeout: 15 * sim.Microsecond,
		Dedup:          true,
	}
}

// TestOverloadRetriesLinearizable sweeps overload schedules per model and
// requires every history to be linearizable with every thread completing
// — retried and deduped ops included. The vacuity gates reject a sweep
// that never actually retried or never hit the dedup memo: such a run
// would prove nothing about the overload path.
func TestOverloadRetriesLinearizable(t *testing.T) {
	for _, w := range []Workload{WorkloadCounter, WorkloadEcho, WorkloadKV} {
		w := w
		t.Run(w.String(), func(t *testing.T) {
			t.Parallel()
			res := ExploreSchedules(overloadCfg(w), MutNone, 1, overloadSeeds, OverloadScheduleFromSeed)
			if res.Runs != overloadSeeds {
				t.Fatalf("ran %d schedules, want %d", res.Runs, overloadSeeds)
			}
			if res.Failures != 0 {
				t.Fatalf("%d/%d overload schedules failed; first:\n%s", res.Failures, res.Runs, res.First)
			}
			if res.Retried == 0 {
				t.Fatal("no attempt was ever retried — the overload sweep was vacuous")
			}
			if res.DedupHits == 0 {
				t.Fatal("the dedup window never absorbed a duplicate — the sweep proved nothing about it")
			}
			t.Logf("%s: %d schedules, %d retries, %d dedup hits", w, res.Runs, res.Retried, res.DedupHits)
		})
	}
}

// TestOverloadWithoutDedupDuplicates is the sensitivity check for the
// suite above: the same schedules with the dedup window disabled must
// produce at least one non-linearizable history, because an abandoned
// attempt that was already claimed applies alongside its retry. If this
// sweep passes clean, the overload schedules stopped exercising the
// duplication window and the suite's green is meaningless.
func TestOverloadWithoutDedupDuplicates(t *testing.T) {
	cfg := overloadCfg(WorkloadCounter)
	cfg.Dedup = false
	res := ExploreSchedules(cfg, MutNone, 1, overloadSeeds, OverloadScheduleFromSeed)
	if res.Retried == 0 {
		t.Fatal("no attempt was ever retried — cannot exercise the duplication window")
	}
	if res.Failures == 0 {
		t.Fatalf("retry-without-dedup survived %d schedules: the schedules no longer reach the double-apply window", res.Runs)
	}
	t.Logf("without dedup: %d/%d schedules caught the double-apply", res.Failures, res.Runs)
}

// TestOverloadScheduleDeterminism: same seed, same schedule — and the
// overload pool is its own derivation: every schedule carries at least
// one inflation window, while the canonical ScheduleFromSeed pool never
// derives one (historical seeds must keep replaying bit-identically).
func TestOverloadScheduleDeterminism(t *testing.T) {
	cfg := overloadCfg(WorkloadCounter)
	for seed := uint64(1); seed < 25; seed++ {
		s1 := OverloadScheduleFromSeed(seed, cfg)
		s2 := OverloadScheduleFromSeed(seed, cfg)
		if s1.Hash() != s2.Hash() || s1.String() != s2.String() {
			t.Fatalf("seed %d derived two different overload schedules", seed)
		}
		inflates := 0
		for _, p := range s1.Perturbs {
			if p.Kind == PerturbServiceInflate {
				inflates++
			}
		}
		if inflates == 0 {
			t.Fatalf("seed %d overload schedule has no inflation window: %s", seed, s1)
		}
	}
	for seed := uint64(1); seed <= exploreSeeds; seed++ {
		for _, p := range ScheduleFromSeed(seed, exploreCfg(WorkloadCounter)).Perturbs {
			if p.Kind == PerturbServiceInflate {
				t.Fatalf("canonical pool derived an inflation perturbation at seed %d — frozen schedules changed", seed)
			}
		}
	}
}

// TestOverloadScheduleCoversAllPerturbations: the overload pool must mix
// inflation with every canonical perturbation kind, or the suite loses
// the overload×fault interleavings it exists to explore.
func TestOverloadScheduleCoversAllPerturbations(t *testing.T) {
	cfg := overloadCfg(WorkloadCounter)
	seen := map[PerturbKind]int{}
	for seed := uint64(1); seed <= overloadSeeds; seed++ {
		for _, p := range OverloadScheduleFromSeed(seed, cfg).Perturbs {
			seen[p.Kind]++
		}
	}
	for _, k := range []PerturbKind{PerturbLeaderStall, PerturbQPBreak, PerturbDeliveryDelay, PerturbCreditStarve, PerturbRedistribute, PerturbServiceInflate} {
		if seen[k] == 0 {
			t.Fatalf("perturbation %s never derived across %d overload seeds", k, overloadSeeds)
		}
	}
}
