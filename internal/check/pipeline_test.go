package check

import (
	"testing"

	"flock/internal/sim"
)

// The pipelining suite: each simulated thread drives a CallAsync-style
// window of ops against the combining path, so retries, dedup replays,
// and batch completions of one thread's ops interleave — the surface the
// per-call completion table (ISSUE 7) has to match correctly.
// pipelineSeeds × 2 workloads clears the ≥250-schedule floor per model.
const pipelineSeeds = 250

// pipelineCfg is overloadCfg plus the async window: four ops in flight
// per thread, per-attempt deadlines to manufacture retries mid-window,
// and the dedup memo to keep every retried outcome definite.
func pipelineCfg(w Workload) SimConfig {
	return SimConfig{
		Threads:        4,
		OpsPerThread:   8,
		QPs:            2,
		MaxBatch:       4,
		Credits:        4,
		Workload:       w,
		Pipeline:       4,
		AttemptTimeout: 15 * sim.Microsecond,
		Dedup:          true,
	}
}

// TestPipelinedOpsLinearizable sweeps the pipeline schedule pool per model
// and requires every history to be linearizable with every thread
// completing — windowed, retried, and deduped ops included. The vacuity
// gates reject a sweep that never overlapped two ops of one thread, never
// retried, or never hit the dedup memo: such a run would prove nothing
// about completion matching under pipelining.
func TestPipelinedOpsLinearizable(t *testing.T) {
	for _, w := range []Workload{WorkloadEcho, WorkloadKV} {
		w := w
		t.Run(w.String(), func(t *testing.T) {
			t.Parallel()
			res := ExploreSchedules(pipelineCfg(w), MutNone, 1, pipelineSeeds, PipelineScheduleFromSeed)
			if res.Runs != pipelineSeeds {
				t.Fatalf("ran %d schedules, want %d", res.Runs, pipelineSeeds)
			}
			if res.Failures != 0 {
				t.Fatalf("%d/%d pipeline schedules failed; first:\n%s", res.Failures, res.Runs, res.First)
			}
			if res.Pipelined == 0 {
				t.Fatal("no op ever overlapped a window-mate — the pipeline sweep was vacuous")
			}
			if res.Retried == 0 {
				t.Fatal("no attempt was ever retried — the sweep never raced a retry against the window")
			}
			if res.DedupHits == 0 {
				t.Fatal("the dedup window never absorbed a duplicate — the sweep proved nothing about it")
			}
			t.Logf("%s: %d schedules, %d pipelined ops, %d retries, %d dedup hits",
				w, res.Runs, res.Pipelined, res.Retried, res.DedupHits)
		})
	}
}

// TestPipelineRunActuallyPipelines pins the window mechanics on a single
// unperturbed run: every op completes, the history is full-size, and the
// depth-4 window really overlapped ops — while the synchronous overload
// config on the same seed overlaps none (the classic pools are untouched
// by the pipelining extension).
func TestPipelineRunActuallyPipelines(t *testing.T) {
	cfg := pipelineCfg(WorkloadEcho)
	rep := RunSchedule(cfg, Schedule{Seed: 7}, MutNone)
	if want := cfg.Threads * cfg.OpsPerThread; rep.Ops != want {
		t.Fatalf("recorded %d ops, want %d", rep.Ops, want)
	}
	if !rep.Completed {
		t.Fatal("pipelined run did not complete")
	}
	if !rep.Result.Ok {
		t.Fatalf("unperturbed pipelined run should pass:\n%s", rep.Result)
	}
	if rep.Pipelined == 0 {
		t.Fatal("depth-4 window never overlapped two ops of one thread")
	}
	sync := RunSchedule(overloadCfg(WorkloadEcho), Schedule{Seed: 7}, MutNone)
	if sync.Pipelined != 0 {
		t.Fatalf("synchronous config reported %d pipelined ops; want 0", sync.Pipelined)
	}
}

// TestPipelineScheduleDeterminism: same seed, same schedule — and the
// pipeline pool is its own derivation: every schedule carries at least one
// inflation window, and its salt is independent of the overload pool's
// (the two sweeps must not silently explore the same perturbation
// sequences).
func TestPipelineScheduleDeterminism(t *testing.T) {
	cfg := pipelineCfg(WorkloadEcho)
	distinct := false
	for seed := uint64(1); seed < 25; seed++ {
		s1 := PipelineScheduleFromSeed(seed, cfg)
		s2 := PipelineScheduleFromSeed(seed, cfg)
		if s1.Hash() != s2.Hash() || s1.String() != s2.String() {
			t.Fatalf("seed %d derived two different pipeline schedules", seed)
		}
		inflates := 0
		for _, p := range s1.Perturbs {
			if p.Kind == PerturbServiceInflate {
				inflates++
			}
		}
		if inflates == 0 {
			t.Fatalf("seed %d pipeline schedule has no inflation window: %s", seed, s1)
		}
		if s1.Hash() != OverloadScheduleFromSeed(seed, cfg).Hash() {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("pipeline and overload pools derived identical schedules for every probed seed — the salts collapsed")
	}
}

// TestPipelineScheduleCoversAllPerturbations: the pipeline pool must mix
// inflation with every canonical perturbation kind, or the suite loses
// the pipelining×fault interleavings it exists to explore.
func TestPipelineScheduleCoversAllPerturbations(t *testing.T) {
	cfg := pipelineCfg(WorkloadEcho)
	seen := map[PerturbKind]int{}
	for seed := uint64(1); seed <= pipelineSeeds; seed++ {
		for _, p := range PipelineScheduleFromSeed(seed, cfg).Perturbs {
			seen[p.Kind]++
		}
	}
	for _, k := range []PerturbKind{PerturbLeaderStall, PerturbQPBreak, PerturbDeliveryDelay, PerturbCreditStarve, PerturbRedistribute, PerturbServiceInflate} {
		if seen[k] == 0 {
			t.Fatalf("perturbation %s never derived across %d pipeline seeds", k, pipelineSeeds)
		}
	}
}
