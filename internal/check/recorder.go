package check

import (
	"sync"
	"sync/atomic"
)

// Recorder collects a concurrent history. Timestamps come from an atomic
// logical clock: any interleaving of Begin/End calls yields a strict total
// order consistent with real time, which is all the checker needs — no
// wall clock, no allocation on Begin.
//
// Usage per operation:
//
//	call := rec.Begin()
//	out, err := doOperation(in)
//	rec.End(clientID, call, in, out)        // completed
//	rec.EndPending(clientID, call, in)      // may or may not have executed
//
// A Recorder is safe for concurrent use by any number of goroutines.
type Recorder struct {
	clock atomic.Int64

	mu  sync.Mutex
	ops []Operation
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Begin stamps an invocation and returns its call timestamp.
func (r *Recorder) Begin() int64 { return r.clock.Add(1) }

// End records a completed operation.
func (r *Recorder) End(clientID int, call int64, input, output interface{}) {
	ret := r.clock.Add(1)
	r.mu.Lock()
	r.ops = append(r.ops, Operation{
		ClientID: clientID, Input: input, Output: output, Call: call, Return: ret,
	})
	r.mu.Unlock()
}

// EndPending records an operation with no observed response: it failed
// with an ambiguous error (timeout, broken QP) and may or may not have
// taken effect. The checker is free to linearize it anywhere after its
// call, or effectively never.
func (r *Recorder) EndPending(clientID int, call int64, input interface{}) {
	r.mu.Lock()
	r.ops = append(r.ops, Operation{
		ClientID: clientID, Input: input, Call: call, Return: Infinity,
	})
	r.mu.Unlock()
}

// Drop discards an invocation that definitely did not execute (the send
// itself failed before reaching the wire). It exists for symmetry and
// documentation; nothing was recorded at Begin, so it is a no-op.
func (r *Recorder) Drop() {}

// Len reports how many operations have been recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// History returns the recorded operations. The recorder may keep being
// used afterwards; the returned slice is a copy.
func (r *Recorder) History() []Operation {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Operation, len(r.ops))
	copy(out, r.ops)
	return out
}
