package check

import (
	"fmt"

	"flock/internal/sim"
)

// The replica simulator: a deterministic, RPC-level model of per-shard
// primary–backup replication (internal/cluster with Replicas > 0),
// driven by the same seed-derived schedule machinery as the other
// pools. It models exactly the interleavings that matter for the
// durability promise a synchronous-replication ACK makes — the apply →
// forward → backup-ack → client-ack chain, a primary killed anywhere
// inside it, and the epoch-bump promotion that follows — and nothing
// below: the wire is a flat latency plus drop windows.
//
// The protocol rules mirror the real service:
//
//   - Group-commit ACK rule: a put is acknowledged only after the key's
//     current entry is applied at every backup the primary's own map
//     lists for the shard. Acked therefore implies every backup holds
//     the write (or a newer one for the same key), which is what makes
//     promotion lossless. Forwards ride per-(shard, backup) replication
//     logs: puts gather for a flush window and one multi-entry frame
//     carries them all (mirroring the real group-commit forwarder), so
//     a kill can land between a put's enqueue and its batch's flush —
//     the window the ack-before-batch-durable mutant exploits.
//   - Failure detection and failover: a killed node is noticed after a
//     detect delay; the world (standing in for the coordinator) bumps
//     the epoch, promotes each affected shard's first live backup, and
//     prunes the dead node from every backup set. New primaries install
//     the map immediately (the Promote path), other live members after
//     a propagation gap, clients via reply piggybacks and WrongShard
//     payloads only.
//   - Pending re-evaluation: a primary blocked on a dead backup's ack
//     is released when it installs a map that no longer lists that
//     backup — the liveness half of the ACK rule.
//   - Exactly-once: applied put op-IDs go into a per-shard memo that
//     rides every replication forward, so a retry of an applied-but-
//     unacked put is deduplicated on whichever replica serves it after
//     the failover. A memo hit still re-runs the ACK rule against the
//     key's current entry before replying — replying from the memo
//     alone would promise durability a second failover could break.
//
// Under those rules every completed history is an exact linearizable
// register per key even with primaries dying mid-traffic, so
// RunReplicaSchedule checks RegisterModel for the kv workload (and the
// per-op EchoModel for the stateless echo workload, which exercises the
// routing/failover machinery without replication). The
// MutAckBeforeReplicate mutant acks after the local apply and forwards
// lazily; a kill inside that window loses an acknowledged write and the
// checker must catch it.

const (
	// replicaService is the server-side delay between apply (or
	// replication completion) and the reply hitting the wire.
	replicaService = sim.Microsecond
	// replicaThink separates a client's operations.
	replicaThink = sim.Microsecond
	// replicaNackBackoff is the client's pause after a wrong-shard
	// bounce.
	replicaNackBackoff = 2 * sim.Microsecond
	// replicaRetransmit paces replication-forward retransmission.
	replicaRetransmit = 5 * sim.Microsecond
	// replicaMutLazyDelay is how long the ack-before-replicate mutant
	// sits on a forward after acking — the asynchrony that makes the
	// premature ack a lie worth catching.
	replicaMutLazyDelay = 4 * sim.Microsecond
	// replicaFlushDelay is the group-commit gather window: a put joining
	// an empty (shard, backup) replication log arms a flush this far
	// out, and every put arriving inside the window rides the same
	// frame. It is also the ack-before-batch-durable mutant's kill
	// window — the time an acked-but-unflushed write sits exposed.
	replicaFlushDelay = 3 * sim.Microsecond
	// replicaMaxBatch caps entries per simulated forward frame (the
	// FlushEntries knob's stand-in).
	replicaMaxBatch = 8
)

// ReplicaSimConfig sizes one simulated replicated-cluster run. Zero
// values take defaults.
type ReplicaSimConfig struct {
	Nodes        int // cluster members (default 4)
	Shards       int // shard count (default 8); key k lives in shard k % Shards
	Replicas     int // backups per shard (default 2, clamped to Nodes-1)
	Clients      int // concurrent clients (default 4)
	OpsPerClient int // sequential ops per client (default 40)
	Keys         int // key-space size (default 12)
	Attempts     int // attempts per op before it goes pending (default 6)

	// Echo switches the workload to stateless echo ops checked against
	// the per-op EchoModel (default: kv puts/gets against RegisterModel).
	Echo bool

	AttemptTimeout sim.Time // per-attempt deadline (default 20µs)
	DetectDelay    sim.Time // kill → failover delay (default 6µs)
	InstallGap     sim.Time // failover → bystander install gap (default 3µs)
}

func (c ReplicaSimConfig) withDefaults() ReplicaSimConfig {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > c.Nodes-1 {
		c.Replicas = c.Nodes - 1
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.OpsPerClient <= 0 {
		c.OpsPerClient = 40
	}
	if c.Keys <= 0 {
		c.Keys = 12
	}
	if c.Attempts <= 0 {
		c.Attempts = 6
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 20 * sim.Microsecond
	}
	if c.DetectDelay <= 0 {
		c.DetectDelay = 6 * sim.Microsecond
	}
	if c.InstallGap <= 0 {
		c.InstallGap = 3 * sim.Microsecond
	}
	return c
}

func replicaHorizon(cfg ReplicaSimConfig) sim.Time {
	return sim.Time(cfg.OpsPerClient) * (3 * simWireLatency)
}

// ReplicaScheduleFromSeed derives the replica-suite schedule for a
// seed: one guaranteed mid-window kill of node 0 — the initial primary
// of shard 0, so acknowledged writes exist on both sides of the
// failover — plus 0–3 further kills, node flaps, and install delays.
// Like every other pool it is its own derivation with its own RNG salt,
// so existing pools keep replaying bit-identically.
func ReplicaScheduleFromSeed(seed uint64, cfg ReplicaSimConfig) Schedule {
	cfg = cfg.withDefaults()
	rng := newScheduleRNG(seed ^ 0x0F10CC4EF11CA7E5)
	horizon := replicaHorizon(cfg)
	at := cfg.AttemptTimeout
	s := Schedule{Seed: seed, Perturbs: []Perturbation{{
		Kind: PerturbPrimaryKill,
		At:   horizon/4 + sim.Time(rng.Uint64n(uint64(horizon/2)+1)),
		QP:   0,
	}}}
	n := rng.Intn(4)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			// A second/third kill of a non-zero member: the promoted
			// replica set must survive repeated failovers.
			s.Perturbs = append(s.Perturbs, Perturbation{
				Kind: PerturbPrimaryKill,
				At:   sim.Time(rng.Uint64n(uint64(horizon) + 1)),
				QP:   1 + rng.Intn(cfg.Nodes-1),
			})
		case 1:
			s.Perturbs = append(s.Perturbs, Perturbation{
				Kind: PerturbNodeFlap,
				At:   sim.Time(rng.Uint64n(uint64(horizon) + 1)),
				QP:   rng.Intn(cfg.Nodes),
				Dur:  at/2 + sim.Time(rng.Uint64n(uint64(at)*2)),
			})
		default:
			s.Perturbs = append(s.Perturbs, Perturbation{
				Kind: PerturbHandoffDelay,
				At:   sim.Time(rng.Uint64n(uint64(horizon) + 1)),
				Dur:  sim.Time(rng.Uint64n(uint64(at)*2) + 1),
			})
		}
	}
	return s
}

// replicaView is one immutable epoch-stamped map: table[s] is the
// primary (-1: dark, every replica died), backups[s] its backup set.
type replicaView struct {
	epoch   uint64
	table   []int
	backups [][]int
}

func (v *replicaView) hasBackup(s, id int) bool {
	for _, b := range v.backups[s] {
		if b == id {
			return true
		}
	}
	return false
}

// replicaEntry is one key's value with its per-key write version; the
// version orders a key's writes across replicas so reordered or
// retransmitted forwards cannot regress a backup.
type replicaEntry struct{ val, ver uint64 }

// replicaPend is one put blocked on the sync-forward ACK rule: the
// entry being replicated and the backups whose acks are still owed.
// Waiters are the client replies released when the set empties.
type replicaPend struct {
	shard   int
	key     uint64
	e       replicaEntry
	need    map[int]bool
	waiters []func()
}

type replicaWorld struct {
	cfg ReplicaSimConfig
	mut Mutation
	eng *sim.Engine
	rec *Recorder

	nodes   []*replicaNode
	clients []*replicaClient

	dead     []bool
	flaps    [][]Perturbation
	handoffs []Perturbation // install-delay perturbs, consumed in At order

	curView *replicaView

	failovers    int
	forwards     int
	redirects    int
	flapDrops    int
	retried      int
	dedupHits    int
	batches      int
	multiBatches int
}

type replicaNode struct {
	w    *replicaWorld
	id   int
	view *replicaView

	data    []map[uint64]replicaEntry
	memo    []map[uint64]struct{}
	pend    map[uint64]*replicaPend
	streams map[replicaStreamKey]*replicaStream
}

type replicaClient struct {
	w    *replicaWorld
	id   int
	view *replicaView

	ops     []KVIn
	idx     int
	call    int64
	attempt int
	waiting bool
	done    bool
}

func newReplicaWorld(cfg ReplicaSimConfig, sched Schedule, mut Mutation) *replicaWorld {
	w := &replicaWorld{cfg: cfg, mut: mut, eng: sim.New(), rec: NewRecorder()}

	table := make([]int, cfg.Shards)
	backups := make([][]int, cfg.Shards)
	for s := range table {
		table[s] = s % cfg.Nodes
		for r := 1; r <= cfg.Replicas; r++ {
			backups[s] = append(backups[s], (s+r)%cfg.Nodes)
		}
	}
	w.curView = &replicaView{epoch: 1, table: table, backups: backups}

	w.dead = make([]bool, cfg.Nodes)
	w.flaps = make([][]Perturbation, cfg.Nodes)
	for _, p := range sched.Perturbs {
		switch p.Kind {
		case PerturbPrimaryKill:
			node := p.QP % cfg.Nodes
			at := p.At
			w.eng.At(at, func() { w.kill(node) })
		case PerturbNodeFlap:
			node := p.QP % cfg.Nodes
			w.flaps[node] = append(w.flaps[node], p)
		case PerturbHandoffDelay:
			w.handoffs = append(w.handoffs, p)
		}
	}

	for i := 0; i < cfg.Nodes; i++ {
		n := &replicaNode{
			w: w, id: i, view: w.curView,
			data:    make([]map[uint64]replicaEntry, cfg.Shards),
			memo:    make([]map[uint64]struct{}, cfg.Shards),
			pend:    make(map[uint64]*replicaPend),
			streams: make(map[replicaStreamKey]*replicaStream),
		}
		for s := range n.data {
			n.data[s] = make(map[uint64]replicaEntry)
			n.memo[s] = make(map[uint64]struct{})
		}
		w.nodes = append(w.nodes, n)
	}

	rng := newScheduleRNG(sched.Seed ^ 0x4EF11CA5EEDFA570)
	for c := 0; c < cfg.Clients; c++ {
		cl := &replicaClient{w: w, id: c, view: w.curView}
		for i := 0; i < cfg.OpsPerClient; i++ {
			in := KVIn{Key: uint64(rng.Intn(cfg.Keys))}
			if !cfg.Echo && rng.Intn(100) < 60 {
				in.Put = true
				in.Val = clusterOpID(c, i)
			}
			cl.ops = append(cl.ops, in)
		}
		w.clients = append(w.clients, cl)
		w.eng.At(sim.Time(rng.Uint64n(uint64(4*sim.Microsecond))), cl.next)
	}
	return w
}

func (w *replicaWorld) flapped(node int) bool {
	if node < 0 {
		return false
	}
	now := w.eng.Now()
	for _, p := range w.flaps[node] {
		if now >= p.At && now < p.At+p.Dur {
			return true
		}
	}
	return false
}

// send puts fn on the wire. A dead or flapped endpoint drops the
// message silently (clients, id -1, never die or flap).
func (w *replicaWorld) send(from, to int, fn func()) {
	if from >= 0 && (w.dead[from] || w.flapped(from)) {
		w.flapDrops++
		return
	}
	w.eng.After(simWireLatency, func() {
		if to >= 0 && (w.dead[to] || w.flapped(to)) {
			w.flapDrops++
			return
		}
		fn()
	})
}

// --- kill & failover (the world stands in for detector + coordinator) ---

func (w *replicaWorld) kill(node int) {
	if w.dead[node] {
		return
	}
	w.dead[node] = true
	w.eng.After(w.cfg.DetectDelay, func() { w.failOver() })
}

// failOver publishes the post-death map: every shard primaried by a
// dead node promotes its first live backup (all backups hold every
// acknowledged write — the ACK rule — so any live one is lossless), and
// dead nodes leave every backup set, releasing primaries blocked on
// their acks. A shard whose whole replica set died goes dark (-1):
// clients' attempts there exhaust into pending ops. New primaries
// install immediately; other live members after the install gap.
func (w *replicaWorld) failOver() {
	old := w.curView
	table := append([]int(nil), old.table...)
	backups := make([][]int, w.cfg.Shards)
	changed := false
	for s := range table {
		for _, b := range old.backups[s] {
			if !w.dead[b] {
				backups[s] = append(backups[s], b)
			} else {
				changed = true
			}
		}
		if table[s] >= 0 && w.dead[table[s]] {
			changed = true
			if len(backups[s]) > 0 {
				table[s] = backups[s][0]
				backups[s] = append([]int(nil), backups[s][1:]...)
				w.failovers++
			} else {
				table[s] = -1 // dark: every replica died
			}
		}
	}
	if !changed {
		return
	}
	nv := &replicaView{epoch: old.epoch + 1, table: table, backups: backups}
	w.curView = nv
	for s, p := range nv.table {
		if p >= 0 && old.table[s] != p {
			w.nodes[p].install(nv) // Promote: new primary first
		}
	}
	gap := w.cfg.InstallGap + w.consumeInstallDelay()
	for i, n := range w.nodes {
		if !w.dead[i] {
			other := n
			w.eng.After(gap, func() { other.install(nv) })
		}
	}
}

// consumeInstallDelay takes the earliest matured install-delay
// perturbation, if any; each stretches exactly one failover's
// propagation.
func (w *replicaWorld) consumeInstallDelay() sim.Time {
	now := w.eng.Now()
	for i, p := range w.handoffs {
		if p.At <= now {
			w.handoffs = append(w.handoffs[:i], w.handoffs[i+1:]...)
			return p.Dur
		}
	}
	return 0
}

// --- client ---

func (c *replicaClient) payload(idx int) string {
	return fmt.Sprintf("c%d-%d", c.id, idx)
}

func (c *replicaClient) input(idx int) interface{} {
	if c.w.cfg.Echo {
		return EchoIn{Payload: c.payload(idx)}
	}
	return c.ops[idx]
}

func (c *replicaClient) next() {
	if c.idx >= len(c.ops) {
		c.done = true
		return
	}
	c.call = c.w.rec.Begin()
	c.attempt = 0
	c.issue(c.idx, c.ops[c.idx])
}

func (c *replicaClient) issue(idx int, in KVIn) {
	if idx != c.idx {
		return // a reply already finished this op
	}
	c.attempt++
	a := c.attempt
	if a > c.w.cfg.Attempts {
		// Ambiguous: some attempt may have applied (or a dark shard ate
		// them all). Record pending and move on.
		c.waiting = false
		c.w.rec.EndPending(c.id, c.call, c.input(idx))
		c.idx++
		c.w.eng.After(replicaThink, c.next)
		return
	}
	c.waiting = true
	shard := int(in.Key) % c.w.cfg.Shards
	owner := c.view.table[shard]
	if owner >= 0 {
		opID := clusterOpID(c.id, idx)
		n := c.w.nodes[owner]
		c.w.send(-1, owner, func() { n.handle(c, idx, a, in, opID) })
	}
	c.w.eng.After(c.w.cfg.AttemptTimeout, func() {
		if idx == c.idx && a == c.attempt && c.waiting {
			c.w.retried++
			c.issue(idx, in)
		}
	})
}

func (c *replicaClient) install(v *replicaView) {
	if v.epoch > c.view.epoch {
		c.view = v
	}
}

func (c *replicaClient) onReply(idx, attempt int, out interface{}, v *replicaView) {
	c.install(v)
	if idx != c.idx || attempt != c.attempt {
		return // stale: a later attempt owns this op now
	}
	c.waiting = false
	c.w.rec.End(c.id, c.call, c.input(idx), out)
	c.idx++
	c.w.eng.After(replicaThink, c.next)
}

func (c *replicaClient) onWrongShard(idx, attempt int, in KVIn, v *replicaView) {
	c.install(v)
	if idx != c.idx || attempt != c.attempt {
		return
	}
	c.waiting = false // kill the attempt's timeout; the bounce owns the retry
	c.w.redirects++
	c.w.eng.After(replicaNackBackoff, func() { c.issue(idx, in) })
}

// --- node ---

// serves reports whether this node is the shard's primary per its own
// map — the single-authority rule, unchanged by replication (backups
// hold data but never serve clients directly).
func (n *replicaNode) serves(s int) bool { return n.view.table[s] == n.id }

func (n *replicaNode) install(v *replicaView) {
	if v.epoch <= n.view.epoch {
		return
	}
	n.view = v
	// Re-evaluate every blocked put: backups the new map no longer lists
	// for the shard owe no ack.
	for opID, rec := range n.pend {
		for dst := range rec.need {
			if !v.hasBackup(rec.shard, dst) {
				delete(rec.need, dst)
			}
		}
		n.maybeComplete(opID, rec)
	}
}

func (n *replicaNode) handle(c *replicaClient, idx, attempt int, in KVIn, opID uint64) {
	s := int(in.Key) % n.w.cfg.Shards
	v := n.view
	if !n.serves(s) {
		n.w.send(n.id, -1, func() { c.onWrongShard(idx, attempt, in, v) })
		return
	}
	if n.w.cfg.Echo {
		out := EchoOut{Payload: c.payload(idx)}
		n.w.eng.After(replicaService, func() {
			n.w.send(n.id, -1, func() { c.onReply(idx, attempt, out, v) })
		})
		return
	}
	if !in.Put {
		e, ok := n.data[s][in.Key]
		out := KVOut{Val: e.val, Found: ok}
		reply := func() {
			n.w.eng.After(replicaService, func() {
				n.w.send(n.id, -1, func() { c.onReply(idx, attempt, out, v) })
			})
		}
		// Commit-gated read: the observed entry may belong to a put still
		// gathering in a replication log. Serving it immediately would let
		// a primary killed inside the flush window lose a value a client
		// already saw — the read, not the put's ack, becomes the broken
		// durability promise. So the reply joins every outstanding pend
		// for the key and fires only once none is owed a backup ack (the
		// same release — ack, or view-change pruning — that unblocks the
		// puts themselves). Joining all of them keeps the rule simple;
		// extra joins resolve no later than the one covering the observed
		// version.
		var join []*replicaPend
		for _, rec := range n.pend {
			if rec.shard == s && rec.key == in.Key {
				join = append(join, rec)
			}
		}
		if len(join) == 0 {
			reply()
			return
		}
		left := len(join)
		gate := func() {
			if left--; left == 0 {
				reply()
			}
		}
		for _, rec := range join {
			rec.waiters = append(rec.waiters, gate)
		}
		return
	}
	n.handlePut(c, idx, attempt, in, opID, s, v)
}

func (n *replicaNode) handlePut(c *replicaClient, idx, attempt int, in KVIn, opID uint64, s int, v *replicaView) {
	if _, dup := n.memo[s][opID]; !dup {
		n.data[s][in.Key] = replicaEntry{val: in.Val, ver: n.data[s][in.Key].ver + 1}
		n.memo[s][opID] = struct{}{}
	} else {
		n.w.dedupHits++
	}
	reply := func() {
		n.w.eng.After(replicaService, func() {
			n.w.send(n.id, -1, func() { c.onReply(idx, attempt, KVOut{}, v) })
		})
	}
	if mutantOn(n.w.mut, MutAckBeforeReplicate) {
		// The mutant: ack as soon as the local apply landed, replicate
		// whenever. The ack promises durability the backups don't have.
		reply()
		reply = nil
	}
	rec := n.pend[opID]
	fresh := rec == nil
	if fresh {
		// Replicate the key's CURRENT entry (this put's, or a newer one
		// that already superseded it — either discharges this put's
		// durability): all backups per our own map must ack before any
		// waiter is released. Memo hits re-run this too; answering from
		// the memo alone would skip the ACK rule a promotion relies on.
		rec = &replicaPend{shard: s, key: in.Key, e: n.data[s][in.Key], need: make(map[int]bool)}
		for _, b := range v.backups[s] {
			rec.need[b] = true
		}
		n.pend[opID] = rec
	}
	// The waiter joins before the forwards are enqueued: the
	// ack-before-batch-durable mutant forgives the whole need set during
	// the enqueue loop, and its premature ack must actually fire — a
	// waiter registered after the pend completed would silently never
	// resolve, turning the mutant into a liveness bug instead of the
	// durability lie the checker is meant to catch.
	if reply != nil {
		rec.waiters = append(rec.waiters, reply)
	}
	if fresh {
		lazy := sim.Time(0)
		if mutantOn(n.w.mut, MutAckBeforeReplicate) {
			lazy = replicaMutLazyDelay
		}
		for _, b := range v.backups[s] {
			dst := b
			if lazy > 0 {
				n.w.eng.After(lazy, func() { n.enqueueRepl(opID, rec, dst) })
			} else {
				n.enqueueRepl(opID, rec, dst)
			}
		}
	}
	n.maybeComplete(opID, rec)
}

// maybeComplete releases a blocked put once no backup ack is owed.
func (n *replicaNode) maybeComplete(opID uint64, rec *replicaPend) {
	if len(rec.need) > 0 || n.pend[opID] != rec {
		return
	}
	delete(n.pend, opID)
	for _, fire := range rec.waiters {
		fire()
	}
	rec.waiters = nil
}

// replicaStreamKey identifies one (shard, backup) replication log.
type replicaStreamKey struct{ shard, dst int }

// replicaItem is one pending put riding a replication log.
type replicaItem struct {
	opID uint64
	rec  *replicaPend
}

// replicaStream models one (shard, backup) group-commit log: puts
// append, a flush timer gathers companions for replicaFlushDelay, and
// the flush transmits one multi-entry frame — the sim's mirror of the
// real forwarder goroutine in internal/cluster/groupcommit.go.
type replicaStream struct {
	n        *replicaNode
	shard    int
	dst      int
	queue    []replicaItem
	flushing bool
}

// enqueueRepl appends one put to the (shard, dst) replication log and
// arms the flush. Under the ack-before-batch-durable mutant the put's
// ack debt to dst is forgiven right here — before the batch carrying it
// ever flushes, which is exactly the lie the checker must catch.
func (n *replicaNode) enqueueRepl(opID uint64, rec *replicaPend, dst int) {
	k := replicaStreamKey{shard: rec.shard, dst: dst}
	st := n.streams[k]
	if st == nil {
		st = &replicaStream{n: n, shard: rec.shard, dst: dst}
		n.streams[k] = st
	}
	st.queue = append(st.queue, replicaItem{opID: opID, rec: rec})
	if mutantOn(n.w.mut, MutAckBeforeBatchDurable) {
		delete(rec.need, dst)
		n.maybeComplete(opID, rec)
	}
	st.arm()
}

func (st *replicaStream) arm() {
	if st.flushing || len(st.queue) == 0 {
		return
	}
	st.flushing = true
	st.n.w.eng.After(replicaFlushDelay, st.flush)
}

// flush cuts up to replicaMaxBatch queued puts into one frame and
// transmits it; a longer queue re-arms for the remainder.
func (st *replicaStream) flush() {
	st.flushing = false
	if len(st.queue) == 0 {
		return
	}
	w := st.n.w
	cut := len(st.queue)
	if cut > replicaMaxBatch {
		cut = replicaMaxBatch
	}
	batch := append([]replicaItem(nil), st.queue[:cut]...)
	st.queue = append(st.queue[:0], st.queue[cut:]...)
	w.batches++
	if len(batch) > 1 {
		w.multiBatches++
	}
	w.forwards += len(batch)
	st.transmit(batch)
	st.arm()
}

// transmit reliably forwards one frame (entries plus their memo ids) to
// the backup: retransmit until every carried put's ack lands, the
// backup leaves the view, or this node dies. Flap windows just stretch
// the wait; a dead backup blocks the frame's puts until failover prunes
// it — exactly the liveness the pending re-evaluation provides. The
// frame is all-or-nothing on the wire: one delivery absorbs every
// entry, one ack clears every carried put's debt to this backup.
func (st *replicaStream) transmit(batch []replicaItem) {
	n := st.n
	w := n.w
	var xmit func(first bool)
	xmit = func(first bool) {
		if w.dead[n.id] {
			return
		}
		owed := false
		for _, it := range batch {
			if !it.rec.need[st.dst] {
				continue
			}
			if !n.view.hasBackup(st.shard, st.dst) {
				delete(it.rec.need, st.dst)
				n.maybeComplete(it.opID, it.rec)
				continue
			}
			owed = true
		}
		if !owed && !first {
			return
		}
		w.send(n.id, st.dst, func() {
			for _, it := range batch {
				w.nodes[st.dst].absorb(st.shard, it.rec.key, it.rec.e, it.opID)
			}
			w.send(st.dst, n.id, func() {
				for _, it := range batch {
					if !it.rec.need[st.dst] {
						continue
					}
					delete(it.rec.need, st.dst)
					n.maybeComplete(it.opID, it.rec)
				}
			})
		})
		w.eng.After(replicaRetransmit, func() { xmit(false) })
	}
	xmit(true)
}

// absorb applies one replicated entry at a backup: data only if
// strictly newer by version (retransmits and reordered forwards are
// harmless), memo unconditionally (a promoted backup must dedup retries
// of puts it absorbed).
func (n *replicaNode) absorb(s int, key uint64, e replicaEntry, opID uint64) {
	if e.ver > n.data[s][key].ver {
		n.data[s][key] = e
	}
	n.memo[s][opID] = struct{}{}
}

// --- driver ---

// RunReplicaSchedule executes one deterministic replicated-cluster
// simulation under the given schedule and mutation, and checks the
// history against the workload's model.
func RunReplicaSchedule(cfg ReplicaSimConfig, sched Schedule, mut Mutation) RunReport {
	cfg = cfg.withDefaults()
	w := newReplicaWorld(cfg, sched, mut)
	w.eng.Drain()
	completed := true
	for _, c := range w.clients {
		if !c.done {
			completed = false
		}
	}
	model := RegisterModel()
	if cfg.Echo {
		model = EchoModel()
	}
	history := w.rec.History()
	return RunReport{
		Schedule:     sched,
		Result:       Check(model, history),
		Ops:          len(history),
		Completed:    completed,
		Retried:      w.retried,
		DedupHits:    w.dedupHits,
		Redirects:    w.redirects,
		FlapDrops:    w.flapDrops,
		Failovers:    w.failovers,
		Forwards:     w.forwards,
		Batches:      w.batches,
		MultiBatches: w.multiBatches,
	}
}

// ExploreReplica sweeps n seed-derived replica schedules, mirroring
// ExploreCluster. Failovers/Forwards are summed so the gate can assert
// the sweep actually promoted backups and replicated writes.
func ExploreReplica(cfg ReplicaSimConfig, mut Mutation, startSeed uint64, n int, derive func(uint64, ReplicaSimConfig) Schedule) ExploreResult {
	var res ExploreResult
	for i := 0; i < n; i++ {
		seed := startSeed + uint64(i)
		sched := derive(seed, cfg)
		rep := RunReplicaSchedule(cfg, sched, mut)
		res.Runs++
		res.Retried += rep.Retried
		res.DedupHits += rep.DedupHits
		res.Redirects += rep.Redirects
		res.FlapDrops += rep.FlapDrops
		res.Failovers += rep.Failovers
		res.Forwards += rep.Forwards
		res.Batches += rep.Batches
		res.MultiBatches += rep.MultiBatches
		if rep.Failed() {
			res.Failures++
			if res.First == nil {
				res.First = &FailureReport{Report: rep, Minimal: ShrinkReplica(cfg, sched, mut)}
			}
		}
	}
	return res
}

// ShrinkReplica is Shrink for replica schedules: greedily drop
// perturbations while the schedule still fails.
func ShrinkReplica(cfg ReplicaSimConfig, sched Schedule, mut Mutation) Schedule {
	if !RunReplicaSchedule(cfg, sched, mut).Failed() {
		return sched
	}
	cur := sched
	for {
		removed := false
		for i := 0; i < len(cur.Perturbs); i++ {
			cand := Schedule{Seed: cur.Seed}
			cand.Perturbs = append(cand.Perturbs, cur.Perturbs[:i]...)
			cand.Perturbs = append(cand.Perturbs, cur.Perturbs[i+1:]...)
			if RunReplicaSchedule(cfg, cand, mut).Failed() {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}
