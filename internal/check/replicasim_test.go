package check

import (
	"testing"
)

// The replica-suite gate: the replicated sharded KV stays an exact
// linearizable register — and the echo workload keeps its per-op
// contract — with primaries killed mid-traffic, over a sweep big enough
// to hit the interesting apply/forward/ack/kill interleavings. Vacuity
// is asserted alongside correctness: a sweep that never promoted a
// backup or never replicated a write would prove nothing about the
// sync-forward ACK rule.

const replicaGateSeeds = 250

func TestClusterReplicaLinearizable(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  ReplicaSimConfig
	}{
		{"kv", ReplicaSimConfig{}},
		{"echo", ReplicaSimConfig{Echo: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := ExploreReplica(tc.cfg, MutNone, 1, replicaGateSeeds, ReplicaScheduleFromSeed)
			if res.Failures != 0 {
				t.Fatalf("faithful replica sim failed %d/%d schedules; first:\n%s", res.Failures, res.Runs, res.First)
			}
			if res.Failovers < res.Runs {
				t.Fatalf("vacuous sweep: %d failovers over %d runs (want >= 1 per run — every schedule kills a primary)",
					res.Failovers, res.Runs)
			}
			if !tc.cfg.Echo && res.Forwards == 0 {
				t.Fatal("vacuous sweep: no write was ever replicated to a backup")
			}
			if !tc.cfg.Echo && res.Batches == 0 {
				t.Fatal("vacuous sweep: no replication frame was ever flushed")
			}
			if !tc.cfg.Echo && res.MultiBatches == 0 {
				t.Fatal("vacuous sweep: every flushed frame carried a single put — group commit never coalesced, so batch-boundary failures went untested")
			}
			if res.FlapDrops == 0 {
				t.Fatal("vacuous sweep: no kill/flap ever dropped a message")
			}
			if res.Retried == 0 {
				t.Fatal("vacuous sweep: no attempt ever timed out and retried")
			}
			if !tc.cfg.Echo && res.DedupHits == 0 {
				t.Fatal("vacuous sweep: no retry was ever answered from the dedup memo")
			}
			t.Logf("replica sweep (%s): %d runs, %d failovers, %d forwards, %d batches (%d multi), %d drops, %d retries, %d dedup hits",
				tc.name, res.Runs, res.Failovers, res.Forwards, res.Batches, res.MultiBatches, res.FlapDrops, res.Retried, res.DedupHits)
		})
	}
}

// Replaying one schedule twice must produce an identical report.
func TestClusterReplicaDeterministic(t *testing.T) {
	cfg := ReplicaSimConfig{}
	for seed := uint64(1); seed <= 8; seed++ {
		s1 := ReplicaScheduleFromSeed(seed, cfg)
		s2 := ReplicaScheduleFromSeed(seed, cfg)
		if s1.Hash() != s2.Hash() {
			t.Fatalf("seed %d: schedule derivation not deterministic", seed)
		}
		r1 := RunReplicaSchedule(cfg, s1, MutNone)
		r2 := RunReplicaSchedule(cfg, s2, MutNone)
		if r1.Ops != r2.Ops || r1.Failovers != r2.Failovers ||
			r1.Forwards != r2.Forwards || r1.FlapDrops != r2.FlapDrops ||
			r1.Retried != r2.Retried || r1.DedupHits != r2.DedupHits ||
			r1.Batches != r2.Batches || r1.MultiBatches != r2.MultiBatches ||
			r1.Result.Ok != r2.Result.Ok || r1.Completed != r2.Completed {
			t.Fatalf("seed %d: replay diverged:\n  %+v\n  %+v", seed, r1, r2)
		}
	}
}

// The derivation's guarantees: the first perturbation is always a
// mid-window kill of node 0 (shard 0's initial primary, so acknowledged
// writes exist on both sides of the failover), extra kills never target
// node 0 again, and only replica perturbation kinds appear.
func TestReplicaScheduleShape(t *testing.T) {
	cfg := ReplicaSimConfig{}.withDefaults()
	horizon := replicaHorizon(cfg)
	for seed := uint64(1); seed <= 200; seed++ {
		s := ReplicaScheduleFromSeed(seed, cfg)
		if len(s.Perturbs) == 0 || s.Perturbs[0].Kind != PerturbPrimaryKill || s.Perturbs[0].QP != 0 {
			t.Fatalf("seed %d: missing guaranteed primary kill: %s", seed, s)
		}
		if at := s.Perturbs[0].At; at < horizon/4 || at > 3*horizon/4 {
			t.Fatalf("seed %d: guaranteed kill at %d outside mid-window [%d, %d]", seed, at, horizon/4, 3*horizon/4)
		}
		for i, p := range s.Perturbs {
			switch p.Kind {
			case PerturbPrimaryKill:
				if i > 0 && p.QP == 0 {
					t.Fatalf("seed %d: extra kill re-targets node 0: %s", seed, s)
				}
				if p.QP < 0 || p.QP >= cfg.Nodes {
					t.Fatalf("seed %d: kill targets nonexistent node %d", seed, p.QP)
				}
			case PerturbNodeFlap, PerturbHandoffDelay:
			default:
				t.Fatalf("seed %d: foreign perturbation kind %s in replica pool", seed, p.Kind)
			}
		}
	}
}

// A perturbation-free run never fails over, never drops, never retries,
// and completes every op; shrinking a passing schedule is the identity.
func TestReplicaQuiescentRun(t *testing.T) {
	cfg := ReplicaSimConfig{}.withDefaults()
	rep := RunReplicaSchedule(cfg, Schedule{Seed: 7}, MutNone)
	if rep.Failed() {
		t.Fatalf("quiescent run failed:\n%s", rep.Result)
	}
	if rep.Failovers != 0 || rep.FlapDrops != 0 || rep.Retried != 0 {
		t.Fatalf("quiescent run perturbed itself (%d failovers, %d drops, %d retries)",
			rep.Failovers, rep.FlapDrops, rep.Retried)
	}
	if rep.Forwards == 0 {
		t.Fatal("quiescent run never replicated a write (replication must run without faults too)")
	}
	if rep.Batches == 0 {
		t.Fatal("quiescent run never flushed a replication frame")
	}
	if rep.Forwards < rep.Batches {
		t.Fatalf("frame accounting inverted: %d forwards across %d batches", rep.Forwards, rep.Batches)
	}
	if rep.Ops != cfg.Clients*cfg.OpsPerClient {
		t.Fatalf("quiescent run recorded %d ops, want %d", rep.Ops, cfg.Clients*cfg.OpsPerClient)
	}
	s := ReplicaScheduleFromSeed(3, cfg)
	if rep := RunReplicaSchedule(cfg, s, MutNone); !rep.Failed() {
		if got := ShrinkReplica(cfg, s, MutNone); got.Hash() != s.Hash() {
			t.Fatalf("shrink modified a passing schedule: %s -> %s", s, got)
		}
	}
}

// The minimum replicated cluster: two nodes, one backup per shard.
// Every put's ack waits on exactly one forward, the guaranteed kill
// promotes that lone backup, and a second kill darkens everything —
// the edges of the replica-set math.
func TestReplicaSingleBackup(t *testing.T) {
	cfg := ReplicaSimConfig{Nodes: 2, Shards: 4, Replicas: 1}
	res := ExploreReplica(cfg, MutNone, 1, 50, ReplicaScheduleFromSeed)
	if res.Failures != 0 {
		t.Fatalf("single-backup sweep failed %d/%d; first:\n%s", res.Failures, res.Runs, res.First)
	}
	if res.Failovers == 0 || res.Forwards == 0 {
		t.Fatalf("vacuous single-backup sweep: %d failovers, %d forwards", res.Failovers, res.Forwards)
	}
}
