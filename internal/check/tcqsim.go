package check

import (
	"fmt"

	"flock/internal/sim"
	"flock/internal/stats"
)

// This file is a step-level model of FLock's combining path — the MCS
// thread combining queue, transient-leader batching, credit gating, and QP
// break/recycle recovery of internal/core — rebuilt as an explicit state
// machine on internal/sim virtual time. Running it under the schedule
// explorer gives what the real goroutine implementation cannot: the SAME
// seed replays the SAME interleaving, every interesting race (leader
// handoff vs follower timeout, recycle vs in-flight batch, renewal vs
// starvation) is a scheduling decision the explorer controls, and a
// failing schedule shrinks to a minimal reproducer.
//
// Protocol fidelity notes, keyed to internal/core:
//
//   - push/claim/handoff mirror tcq.go: the first enqueuer on an idle
//     queue leads; a leader claims followers with a CAS-equivalent state
//     check that races the follower stall timeout; handoff skips
//     abandoned nodes (tcq.go handoff).
//   - credits gate posting as in leader.go awaitCredits, with renewal
//     grants arriving as scheduled events.
//   - a QP break fails queued nodes with a migrate verdict (safe retry:
//     nothing was sent) and turns posted-but-unresponded batches into
//     ambiguous outcomes, exactly the at-least-once window recovery.go
//     documents; a recycle event restores the QP and its credit bootstrap.
//   - with Pipeline > 1 each thread keeps a window of ops in flight, the
//     way a client drives CallAsync against the pending-call table: ops
//     are issued while the window has room and each completion refills it.
//     Every op carries its own generation and idempotency key, so retries
//     of one op interleave freely with its window-mates — the exact
//     completion-matching surface the per-call table exists to get right.
//
// The `flockmut` mutants (mutants_on.go) each break one of these rules
// the way a plausible implementation bug would.

// Workload selects the operation mix the simulated threads run, and
// thereby the model the history is checked against.
type Workload int

const (
	// WorkloadCounter: every thread fetch-adds a shared counter, then
	// reads it; checked with CounterModel. The most sensitive workload:
	// any duplicated or lost apply is visible.
	WorkloadCounter Workload = iota
	// WorkloadEcho: unique payloads echoed back; checked with EchoModel.
	WorkloadEcho
	// WorkloadKV: per-thread keys, monotonic put values, interleaved
	// gets; checked with RegisterModel (the sim applies puts exactly once
	// or marks them pending, so the exact register applies).
	WorkloadKV
)

func (w Workload) String() string {
	switch w {
	case WorkloadCounter:
		return "counter"
	case WorkloadEcho:
		return "echo"
	case WorkloadKV:
		return "kv"
	}
	return fmt.Sprintf("workload(%d)", int(w))
}

// Model returns the checker model matching the workload.
func (w Workload) Model() Model {
	switch w {
	case WorkloadEcho:
		return EchoModel()
	case WorkloadKV:
		return RegisterModel()
	default:
		return CounterModel()
	}
}

// SimConfig sizes one simulated run.
type SimConfig struct {
	Threads      int
	OpsPerThread int
	QPs          int
	MaxBatch     int
	Credits      int
	Workload     Workload
	// StallTimeout is the follower verdict wait bound (virtual time);
	// zero uses 10µs.
	StallTimeout sim.Time
	// AttemptTimeout, when nonzero, arms a per-attempt response deadline
	// (core's CallOpts attemptWait): a claimed op whose response has not
	// arrived by then is abandoned and resubmitted under the same
	// idempotency key. Zero disables attempt-level retries.
	AttemptTimeout sim.Time
	// Dedup models the server's dedup window (core's DedupWindow): each
	// op's first apply is memoized by idempotency key, and every later
	// copy — a retry racing its original, or a retry after an ambiguous
	// outcome — is answered from the memo without re-executing. With
	// Dedup set, ambiguous outcomes are retried to a definite result
	// instead of going pending, so the checker demands exactly-once.
	Dedup bool
	// Pipeline is the per-thread async window (core's CallAsync driven to
	// a fixed depth): each thread keeps up to Pipeline ops in flight and
	// issues a new one as soon as a completion frees a slot. Zero or one
	// is the classic synchronous client — one op at a time — and leaves
	// the frozen schedule pools' behavior untouched.
	Pipeline int
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.OpsPerThread <= 0 {
		c.OpsPerThread = 6
	}
	if c.QPs <= 0 {
		c.QPs = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4
	}
	if c.Credits <= 0 {
		c.Credits = 4
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 10 * sim.Microsecond
	}
	return c
}

// Virtual-time constants for the simulated pipeline.
const (
	simClaimDelay   = 200 * sim.Nanosecond
	simWireLatency  = 2 * sim.Microsecond
	simRenewDelay   = 1 * sim.Microsecond
	simRecycleDelay = 5 * sim.Microsecond
	simMaxJitter    = 1 * sim.Microsecond
	// simMaxRetries bounds per-op resubmissions under hostile schedules;
	// past it the op is recorded pending (ambiguous), never dropped.
	simMaxRetries = 64
)

// Node states, mirroring tcq.go's waiting/claimed/timedout protocol.
const (
	snWaiting = iota
	snClaimed
	snTimedOut
)

// simOp is one client operation: the unit the recorder sees. With
// pipelining a thread owns several live simOps at once, so everything the
// classic sim kept per-thread — the attempt generation, the retry count,
// the idempotency key, the recorder call token — lives here. A simNode is
// one enqueue attempt of one simOp; stale attempts are recognized by
// generation mismatch exactly as before.
type simOp struct {
	th      *simThread
	idx     int    // op number within the thread
	call    int64  // recorder invocation token
	gen     int    // attempt generation; stale responses are ignored
	key     uint64 // idempotency key, stable across retries of this op
	slot    int    // pipeline slot, for the recorded client identity
	retries int
	done    bool
}

type simNode struct {
	sop   *simOp
	state int
	gen   int // sop.gen captured at enqueue; stale attempts are skipped
}

type simMsg struct {
	qp    *simQP
	nodes []*simNode
	// dropped are nodes a mutant staged out of the message (acked but
	// never applied); empty in correct runs.
	dropped []*simNode
	// poisoned marks the message lost to a QP break before delivery.
	poisoned bool
	// outs are the per-node results captured at server apply time.
	outs []interface{}
}

type simQP struct {
	idx        int
	queue      []*simNode // arrival order; leaderNode at front when leading
	leading    bool
	leaderNode *simNode
	credits    int
	broken     bool
	stallUntil sim.Time // leader-stall window: claims defer past it
	starveTill sim.Time // credit-starvation window: grants defer past it
	delayTill  sim.Time // delivery-delay window: posts get extra latency
	delayExtra sim.Time
	inflight   []*simMsg
}

type simThread struct {
	id       int
	issued   int // ops handed to the pipeline so far (next op index)
	inflight int // live ops in the window
	qp       int
	done     bool
	slots    []int // free pipeline slots, reused as completions land
}

func (th *simThread) popSlot() int {
	s := th.slots[len(th.slots)-1]
	th.slots = th.slots[:len(th.slots)-1]
	return s
}

func (th *simThread) pushSlot(s int) { th.slots = append(th.slots, s) }

type simWorld struct {
	cfg   SimConfig
	depth int // per-thread issue window; 1 = synchronous
	eng   *sim.Engine
	rng   *stats.RNG
	rec   *Recorder
	mut   Mutation
	qps   []*simQP
	thr   []*simThread
	kv    map[uint64]uint64
	count uint64
	alive int
	// memo is the dedup window: first-apply output by idempotency key.
	memo      map[uint64]interface{}
	dedupHits int
	retried   int
	// pipelined counts ops issued while the same thread already had one in
	// flight — the vacuity signal for the pipelining suite.
	pipelined int
	// Service-time inflation window (the overload perturbation): responses
	// computed while now < inflateTill take inflateExtra longer.
	inflateTill  sim.Time
	inflateExtra sim.Time
}

func newSimWorld(cfg SimConfig, seed uint64, mut Mutation) *simWorld {
	cfg = cfg.withDefaults()
	depth := cfg.Pipeline
	if depth < 1 {
		depth = 1
	}
	w := &simWorld{
		cfg:   cfg,
		depth: depth,
		eng:   sim.New(),
		rng:   stats.NewRNG(seed*0x9E3779B97F4A7C15 + 0x1234567),
		rec:   NewRecorder(),
		mut:   mut,
		kv:    make(map[uint64]uint64),
		memo:  make(map[uint64]interface{}),
		alive: cfg.Threads,
	}
	for i := 0; i < cfg.QPs; i++ {
		w.qps = append(w.qps, &simQP{idx: i, credits: cfg.Credits})
	}
	for i := 0; i < cfg.Threads; i++ {
		th := &simThread{id: i, qp: i % cfg.QPs}
		for s := depth - 1; s >= 0; s-- {
			th.slots = append(th.slots, s) // pop order: slot 0 first
		}
		w.thr = append(w.thr, th)
	}
	return w
}

func (w *simWorld) jitter() sim.Time {
	return sim.Time(w.rng.Uint64n(uint64(simMaxJitter) + 1))
}

// clientID is the recorded process identity of one op. Synchronous threads
// keep their thread id; pipelined ops are keyed by (thread, slot) so two
// ops that genuinely overlap in time are distinct clients to the checker —
// the same way each pending-call-table entry is its own completion.
func (w *simWorld) clientID(op *simOp) int {
	if w.depth <= 1 {
		return op.th.id
	}
	return op.th.id*w.depth + op.slot
}

// opInput builds thread th's op number k. The last op of every thread is a
// read/get observer, which is what makes lost or duplicated applies
// visible to the checker.
func (w *simWorld) opInput(th *simThread, k int) interface{} {
	last := k == w.cfg.OpsPerThread-1
	switch w.cfg.Workload {
	case WorkloadEcho:
		return EchoIn{Payload: fmt.Sprintf("t%d-op%d", th.id, k)}
	case WorkloadKV:
		key := uint64(th.id % 2) // shared keys: cross-thread visibility
		if last || (k > 0 && k%3 == 0) {
			return KVIn{Key: key}
		}
		return KVIn{Key: key, Put: true, Val: uint64(th.id+1)<<32 | uint64(k+1)}
	default:
		if last {
			return CounterIn{}
		}
		return CounterIn{Add: true, Delta: 1}
	}
}

// apply executes one op against the server state, returning its output.
func (w *simWorld) apply(in interface{}) interface{} {
	switch op := in.(type) {
	case EchoIn:
		return EchoOut{Payload: op.Payload}
	case KVIn:
		if op.Put {
			w.kv[op.Key] = op.Val
			return KVOut{}
		}
		v, ok := w.kv[op.Key]
		return KVOut{Val: v, Found: ok}
	case CounterIn:
		if op.Add {
			old := w.count
			w.count += op.Delta
			return CounterOut{Val: old}
		}
		return CounterOut{Val: w.count}
	}
	return nil
}

// startOp refills thread th's issue window (or finishes the thread). At
// depth 1 this is the classic one-op-at-a-time loop; deeper windows issue
// until full, and every completion calls back here to top the window up.
func (w *simWorld) startOp(th *simThread) {
	for !th.done && th.inflight < w.depth && th.issued < w.cfg.OpsPerThread {
		op := &simOp{
			th:   th,
			idx:  th.issued,
			key:  uint64(th.id+1)<<32 | uint64(th.issued+1),
			slot: th.popSlot(),
		}
		op.call = w.rec.Begin()
		th.issued++
		th.inflight++
		if th.inflight > 1 {
			w.pipelined++
		}
		w.enqueueOp(op)
	}
	if !th.done && th.inflight == 0 && th.issued >= w.cfg.OpsPerThread {
		th.done = true
		w.alive--
	}
}

// finishOp records the op's outcome, frees its window slot, and refills.
func (w *simWorld) finishOp(op *simOp, out interface{}, pending bool) {
	th := op.th
	in := w.opInput(th, op.idx)
	if pending {
		w.rec.EndPending(w.clientID(op), op.call, in)
	} else {
		w.rec.End(w.clientID(op), op.call, in, out)
	}
	op.done = true
	op.gen++ // belt and braces: no in-flight attempt can match again
	th.pushSlot(op.slot)
	th.inflight--
	w.eng.After(w.jitter(), func() { w.startOp(th) })
}

// resubmit retries the op's current attempt on another QP (migrate /
// follower re-election). Past the retry bound the op goes pending.
func (w *simWorld) resubmit(op *simOp, avoid int) {
	op.gen++
	op.retries++
	if op.retries > simMaxRetries {
		w.finishOp(op, nil, true)
		return
	}
	if len(w.qps) > 1 {
		next := (avoid + 1 + w.rng.Intn(len(w.qps)-1)) % len(w.qps)
		op.th.qp = next
	}
	w.eng.After(w.jitter(), func() { w.enqueueOp(op) })
}

// enqueueOp pushes one op attempt onto its thread's QP's combining queue —
// tcq.push. The first enqueuer on an idle queue leads.
func (w *simWorld) enqueueOp(op *simOp) {
	if op.done || op.th.done {
		return
	}
	q := w.qps[op.th.qp]
	n := &simNode{
		sop:   op,
		state: snWaiting,
		gen:   op.gen,
	}
	q.queue = append(q.queue, n)
	if w.cfg.AttemptTimeout > 0 {
		gen := op.gen
		w.eng.After(w.cfg.AttemptTimeout, func() { w.attemptExpire(op, gen) })
	}
	if !q.leading {
		q.leading = true
		q.leaderNode = n
		n.state = snClaimed // the leader's own node cannot time out
		w.scheduleClaim(q)
		return
	}
	// Follower: arm the stall timeout (awaitVerdict's deadline).
	w.eng.After(w.cfg.StallTimeout, func() { w.followerTimeout(q, n) })
}

// followerTimeout is awaitVerdict's stall path: if no leader claimed the
// node, abandon it and re-elect on another QP.
func (w *simWorld) followerTimeout(q *simQP, n *simNode) {
	if n.state != snWaiting {
		return // claimed (or already resolved): the timeout no longer applies
	}
	if n.gen != n.sop.gen || n.sop.done {
		// The op already abandoned this attempt (attempt deadline) or
		// completed; just mark the node so the handoff chain skips it.
		n.state = snTimedOut
		return
	}
	n.state = snTimedOut
	w.resubmit(n.sop, q.idx)
}

// attemptExpire is the per-attempt response deadline (CallOpts's
// attemptWait): if the op attempt armed at generation gen is still the
// op's current one, abandon it and resubmit under the same idempotency
// key. The stale copy may still be claimed, posted, and applied — exactly
// the duplication window the dedup memo absorbs.
func (w *simWorld) attemptExpire(op *simOp, gen int) {
	if op.done || op.gen != gen {
		return
	}
	w.retried++
	w.resubmit(op, op.th.qp)
}

func (w *simWorld) scheduleClaim(q *simQP) {
	w.eng.After(simClaimDelay, func() { w.leadClaim(q) })
}

// leadClaim is the leader path: claim a batch, gate on credits, stage,
// post, hand off. Mirrors leader.go processBatch.
func (w *simWorld) leadClaim(q *simQP) {
	now := w.eng.Now()
	if now < q.stallUntil {
		// Leader-stall perturbation: the leader is descheduled; its
		// followers' timeouts keep running — the re-election race window.
		w.eng.At(q.stallUntil, func() { w.leadClaim(q) })
		return
	}
	if q.broken {
		w.failQueue(q)
		return
	}
	if q.leaderNode == nil {
		q.leading = len(q.queue) > 0
		if !q.leading {
			return
		}
		q.leaderNode = q.queue[0]
		q.leaderNode.state = snClaimed
	}

	// Claim up to MaxBatch nodes from the queue front. The leader's own
	// node is first; followers are claimed only if still waiting — unless
	// the claim mutant skips the CAS and stages abandoned nodes too.
	var batch []*simNode
	rest := q.queue
	for len(batch) < w.cfg.MaxBatch && len(rest) > 0 {
		n := rest[0]
		if n == q.leaderNode || n.state == snWaiting || mutantOn(w.mut, MutClaimTimedOut) {
			if n.state == snWaiting {
				n.state = snClaimed
			}
			batch = append(batch, n)
			rest = rest[1:]
			continue
		}
		if n.state == snTimedOut {
			rest = rest[1:] // abandoned node: skip, drop from the chain
			continue
		}
		break
	}
	q.queue = rest

	// Credit gate (awaitCredits): wait for a renewal grant when short.
	if q.credits < len(batch) {
		grantAt := now + simRenewDelay
		if grantAt < q.starveTill {
			grantAt = q.starveTill // starvation perturbation defers grants
		}
		// Put the batch back and retry the claim at grant time.
		q.queue = append(batch, q.queue...)
		w.eng.At(grantAt, func() {
			q.credits += w.cfg.Credits
			w.leadClaim(q)
		})
		return
	}
	q.credits -= len(batch)

	// Stage and post. The drop-tail mutant stages all but the last item
	// of a multi-item batch while still acking the whole batch.
	msg := &simMsg{qp: q, nodes: batch}
	if mutantOn(w.mut, MutBatchDropTail) && len(batch) > 1 {
		msg.dropped = batch[len(batch)-1:]
		msg.nodes = batch[:len(batch)-1]
	}
	q.inflight = append(q.inflight, msg)
	delay := simWireLatency
	if now < q.delayTill {
		delay += q.delayExtra
	}
	w.eng.After(delay, func() { w.deliver(msg) })

	// Handoff (tcq.handoff): promote the first still-waiting successor,
	// skipping abandoned nodes.
	q.leaderNode = nil
	for len(q.queue) > 0 && q.queue[0].state == snTimedOut {
		q.queue = q.queue[1:]
	}
	if len(q.queue) == 0 {
		q.leading = false
		return
	}
	q.leaderNode = q.queue[0]
	q.leaderNode.state = snClaimed
	w.scheduleClaim(q)
}

// failQueue gives every queued node a migrate verdict — the batch was
// never posted, so resubmitting elsewhere is an exact retry.
func (w *simWorld) failQueue(q *simQP) {
	nodes := q.queue
	q.queue = nil
	q.leading = false
	q.leaderNode = nil
	for _, n := range nodes {
		if n.state == snTimedOut || n.gen != n.sop.gen || n.sop.done {
			// Abandoned attempts resubmitted themselves already; migrating
			// them again would double-enqueue the op.
			continue
		}
		n.state = snClaimed
		w.resubmit(n.sop, q.idx)
	}
}

// deliver is the message landing in the server's ring: apply each item and
// schedule the response. With Dedup, each item consults the memo first —
// a retried copy of an already-applied op is answered from the cache, the
// exactly-once guarantee server.go's execute gives idempotency-keyed
// requests. Service-time inflation (the overload perturbation) stretches
// the apply-to-respond latency, which is what pushes attempts past their
// deadline and manufactures retries.
func (w *simWorld) deliver(msg *simMsg) {
	if msg.poisoned {
		return // lost to a QP break before reaching the server
	}
	msg.outs = make([]interface{}, len(msg.nodes))
	for i, n := range msg.nodes {
		if w.cfg.Dedup && !mutantOn(w.mut, MutDedupSkip) {
			if out, ok := w.memo[n.sop.key]; ok {
				w.dedupHits++
				msg.outs[i] = out
				continue
			}
		}
		out := w.apply(w.opInput(n.sop.th, n.sop.idx))
		if w.cfg.Dedup {
			// The mutant forgets to *check* the window, not to fill it.
			w.memo[n.sop.key] = out
		}
		msg.outs[i] = out
	}
	delay := simWireLatency
	if w.eng.Now() < w.inflateTill {
		delay += w.inflateExtra
	}
	w.eng.After(delay, func() { w.respond(msg) })
}

// respond delivers verdicts and outputs back to the batch's threads.
func (w *simWorld) respond(msg *simMsg) {
	q := msg.qp
	for i := range q.inflight {
		if q.inflight[i] == msg {
			q.inflight = append(q.inflight[:i], q.inflight[i+1:]...)
			break
		}
	}
	if msg.poisoned {
		return
	}
	if q.broken {
		// Responses lost with the QP: outcomes are ambiguous (the server
		// did apply); threads see the break via failInflight.
		w.ambiguous(msg)
		return
	}
	if mutantOn(w.mut, MutPipelineMisroute) {
		w.misroutePair(msg)
	}
	for i, n := range msg.nodes {
		w.respondNode(n, msg.outs[i])
	}
	// Drop-tail mutant: the dropped item was never applied, but the
	// leader acks it anyway with whatever its unstaged slot held.
	for _, n := range msg.dropped {
		w.respondNode(n, w.fabricatedOut(n))
	}
}

// misroutePair is the pipelining mutant: when a response message carries
// two ops of the SAME thread — only possible once a thread pipelines, a
// synchronous thread never has two live ops in one batch — the completion
// path swaps their outputs. This is precisely the bug a per-call
// completion table exists to prevent: matching a response to whichever of
// the thread's outstanding calls happens to be waiting, instead of to the
// call whose sequence number it carries.
func (w *simWorld) misroutePair(msg *simMsg) {
	for i := 0; i < len(msg.nodes); i++ {
		for j := i + 1; j < len(msg.nodes); j++ {
			if msg.nodes[i].sop.th == msg.nodes[j].sop.th {
				msg.outs[i], msg.outs[j] = msg.outs[j], msg.outs[i]
				return
			}
		}
	}
}

// respondNode completes one node's op, ignoring stale generations (the op
// already timed out and resubmitted this attempt) and completed ops.
func (w *simWorld) respondNode(n *simNode, out interface{}) {
	op := n.sop
	if n.gen != op.gen || op.done {
		return
	}
	w.finishOp(op, out, false)
}

// ambiguous handles ops whose outcome was lost with their QP. Without
// dedup the op may or may not have taken effect, so it is recorded
// pending. With dedup the client retries under the same key instead: if
// the apply landed, the retry replays the memoized result; if not, it
// executes fresh — either way the outcome becomes definite, which is the
// whole point of idempotency-keyed retries.
func (w *simWorld) ambiguous(msg *simMsg) {
	for _, n := range append(append([]*simNode{}, msg.nodes...), msg.dropped...) {
		op := n.sop
		if n.gen != op.gen || op.done {
			continue
		}
		if w.cfg.Dedup {
			w.retried++
			w.resubmit(op, msg.qp.idx)
			continue
		}
		w.finishOp(op, nil, true)
	}
}

// fabricatedOut is what an unstaged response slot reads as: the zero
// value — a stale buffer in the real system.
func (w *simWorld) fabricatedOut(n *simNode) interface{} {
	switch w.cfg.Workload {
	case WorkloadEcho:
		return EchoOut{}
	case WorkloadKV:
		return KVOut{}
	default:
		return CounterOut{}
	}
}

// breakQP is the QP-break perturbation: in-flight messages become
// poisoned or ambiguous, queued nodes migrate, and a recycle event
// restores the QP after a delay — recovery.go's markBroken/recycleQP.
func (w *simWorld) breakQP(q *simQP, recycleAfter sim.Time) {
	if q.broken {
		return
	}
	q.broken = true
	inflight := q.inflight
	q.inflight = nil
	for _, msg := range inflight {
		if mutantOn(w.mut, MutRecycleAckInflight) {
			// Recovery mutant: recycle acks the in-flight batch as sent
			// instead of failing it — fabricated results for messages the
			// server may never have seen.
			m := msg
			m.poisoned = true
			for _, n := range m.nodes {
				w.respondNode(n, w.fabricatedOut(n))
			}
			continue
		}
		if msg.outs == nil {
			// Not yet delivered: the write flushes with the QP; the
			// client cannot know that, so the outcome is ambiguous.
			msg.poisoned = true
		}
		w.ambiguous(msg)
	}
	w.failQueue(q)
	if recycleAfter <= 0 {
		recycleAfter = simRecycleDelay
	}
	w.eng.After(recycleAfter, func() {
		q.broken = false
		q.credits = w.cfg.Credits
		q.stallUntil, q.starveTill = 0, 0
	})
}

// redistribute is the QP-redistribution perturbation: rotate every
// thread's assignment, as the receiver-side scheduler shuffling the
// active set would.
func (w *simWorld) redistribute() {
	for _, th := range w.thr {
		th.qp = (th.qp + 1) % len(w.qps)
	}
}

// run executes the whole simulation and returns the recorded history plus
// whether every thread completed (false = the harness deadlocked, itself
// a protocol bug).
func (w *simWorld) run(sched Schedule) (history []Operation, completed bool) {
	for _, p := range sched.Perturbs {
		p := p
		w.eng.At(p.At, func() { w.applyPerturb(p) })
	}
	for _, th := range w.thr {
		th := th
		w.eng.After(w.jitter(), func() { w.startOp(th) })
	}
	w.eng.Drain()
	return w.rec.History(), w.alive == 0
}

func (w *simWorld) applyPerturb(p Perturbation) {
	if p.QP >= len(w.qps) {
		p.QP = 0
	}
	q := w.qps[p.QP]
	switch p.Kind {
	case PerturbLeaderStall:
		q.stallUntil = w.eng.Now() + p.Dur
	case PerturbQPBreak:
		w.breakQP(q, p.Dur)
	case PerturbDeliveryDelay:
		q.delayTill = w.eng.Now() + 4*p.Dur
		q.delayExtra = p.Dur
	case PerturbCreditStarve:
		q.starveTill = w.eng.Now() + p.Dur
	case PerturbRedistribute:
		w.redistribute()
	case PerturbServiceInflate:
		// Overload: the server's service time inflates for a window (the
		// QP field is ignored — handler execution is shared). Responses
		// slip past attempt deadlines, manufacturing retries.
		w.inflateTill = w.eng.Now() + 4*p.Dur
		w.inflateExtra = p.Dur
	}
}
