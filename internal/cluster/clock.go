package cluster

import (
	"sync"
	"time"

	"flock/internal/sim"
)

// Clock abstracts the periodic timebase Membership.Start probes on. The
// default wall clock wraps time.Ticker; SimClock adapts the
// deterministic internal/sim engine so membership timing tests advance
// virtual time instead of sleeping real time — the suspect/dead
// escalation that used to take seconds of wall-clock ticker waits runs
// in microseconds, bit-identically, under -race.
type Clock interface {
	// Ticker returns a channel delivering a tick every d, plus a stop
	// function that releases the ticker (and unblocks any in-flight
	// virtual delivery).
	Ticker(d time.Duration) (<-chan time.Time, func())
}

// wallClock is the production Clock: a plain time.Ticker.
type wallClock struct{}

func (wallClock) Ticker(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTicker(d)
	return t.C, t.Stop
}

// SimClock drives Clock consumers from a virtual sim.Engine timeline.
// Advance moves the clock forward, synchronously handing every due tick
// to its receiver: each delivery blocks until the consumer goroutine
// accepts it, so when Advance returns, every tick in the window has
// been picked up (the work it triggered may still be finishing — stop
// the consumer before asserting on state it writes).
type SimClock struct {
	mu  sync.Mutex
	eng *sim.Engine
}

// NewSimClock returns a virtual clock at time zero.
func NewSimClock() *SimClock {
	return &SimClock{eng: sim.New()}
}

// Ticker implements Clock on the virtual timeline.
func (c *SimClock) Ticker(d time.Duration) (<-chan time.Time, func()) {
	ch := make(chan time.Time)
	done := make(chan struct{})
	var once sync.Once
	stop := func() { once.Do(func() { close(done) }) }
	period := sim.Time(d)
	if period == 0 {
		period = 1
	}
	var tick func()
	tick = func() {
		select {
		case ch <- time.Unix(0, int64(c.eng.Now())):
		case <-done:
			return // stopped: don't reschedule, let the engine drain
		}
		c.eng.After(period, tick)
	}
	c.mu.Lock()
	c.eng.After(period, tick)
	c.mu.Unlock()
	return ch, stop
}

// Advance runs the virtual clock forward by d, delivering every tick
// that falls due in the window.
func (c *SimClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eng.RunUntil(c.eng.Now() + sim.Time(d))
}
