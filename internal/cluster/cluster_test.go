package cluster

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"flock/internal/check"
	"flock/internal/core"
	"flock/internal/fabric"
	"flock/internal/mem"
	"flock/internal/resilience"
)

// TestMain is the pool leak gate, as in internal/core: after the whole
// package — including live migration under link flaps — the default
// pool must report zero outstanding leases.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		deadline := time.Now().Add(3 * time.Second)
		for mem.Default.Outstanding() != 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if n := mem.Default.Outstanding(); n != 0 {
			fmt.Fprintf(os.Stderr, "leak gate: %d pooled buffer leases still outstanding\n", n)
			code = 1
		}
	}
	os.Exit(code)
}

// liveCluster is the test harness: n member nodes running Services, a
// client node running a Router, and a Coordinator over them.
type liveCluster struct {
	nw       *core.Network
	services []*Service
	router   *Router
	coord    *Coordinator
	mems     *Membership
}

const testClientID = fabric.NodeID(100)

func newLiveCluster(t *testing.T, n, shards int, fcfg fabric.Config) *liveCluster {
	t.Helper()
	nw := core.NewNetwork(fcfg)
	t.Cleanup(nw.Close)
	members := make([]fabric.NodeID, n)
	for i := range members {
		members[i] = fabric.NodeID(i)
	}
	m, err := New(members, shards, 8)
	if err != nil {
		t.Fatal(err)
	}
	lc := &liveCluster{nw: nw, coord: NewCoordinator(m)}
	for _, id := range members {
		node, err := nw.NewNode(id, core.Options{Workers: 2}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Serve(); err != nil {
			t.Fatal(err)
		}
		svc, err := NewService(node, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		lc.services = append(lc.services, svc)
		lc.coord.AddService(svc)
	}
	client, err := nw.NewNode(testClientID, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	lc.router = NewRouter(client, m)
	lc.mems = NewMembership(lc.router)
	return lc
}

func TestShardedKVBasics(t *testing.T) {
	lc := newLiveCluster(t, 3, 16, fabric.Config{})
	rt := lc.router.Thread()
	for key := uint64(0); key < 200; key++ {
		if err := rt.Put(key, key*10+1); err != nil {
			t.Fatalf("put %d: %v", key, err)
		}
	}
	for key := uint64(0); key < 200; key++ {
		v, ok, err := rt.Get(key)
		if err != nil || !ok || v != key*10+1 {
			t.Fatalf("get %d = (%d,%v,%v)", key, v, ok, err)
		}
	}
	if _, ok, err := rt.Get(1 << 40); err != nil || ok {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
	// 200 uniform keys over 16 shards on 3 members: every member served.
	for i, svc := range lc.services {
		total := 0
		for s := 0; s < svc.Map().Shards; s++ {
			total += svc.Keys(s)
		}
		if total == 0 {
			t.Fatalf("member %d holds no keys", i)
		}
	}
	if lc.router.Redirects() != 0 {
		t.Fatalf("redirects on a stable map: %d", lc.router.Redirects())
	}
}

// TestLiveMigrationMovesDataAndRedirects migrates one shard under a
// router that is deliberately kept stale, so the WrongShard protocol —
// NACK carrying the newer map, redirect, retry — is what delivers every
// post-handoff call.
func TestLiveMigrationMovesDataAndRedirects(t *testing.T) {
	lc := newLiveCluster(t, 3, 16, fabric.Config{})
	rt := lc.router.Thread()
	for key := uint64(0); key < 300; key++ {
		if err := rt.Put(key, key+1); err != nil {
			t.Fatal(err)
		}
	}
	m := lc.coord.Map()
	var shard int
	for s := 0; s < m.Shards; s++ {
		if m.Owner(s) == 0 && lc.services[0].Keys(s) > 0 {
			shard = s
			break
		}
	}
	before := lc.services[0].Keys(shard)
	if before == 0 {
		t.Fatal("picked an empty shard")
	}
	// The router is NOT registered with the coordinator: it must learn
	// the handoff from WrongShard NACKs alone.
	if err := lc.coord.MigrateShard(shard, 2); err != nil {
		t.Fatal(err)
	}
	if got := lc.services[2].Keys(shard); got < before {
		t.Fatalf("target has %d keys, source had %d", got, before)
	}
	if lc.coord.Map().Owner(shard) != 2 {
		t.Fatal("handoff did not flip ownership")
	}
	// Read a migrated key FIRST: the stale router routes it to the old
	// owner, which must NACK WrongShard (a key in an unmoved shard would
	// teach the router via the epoch piggyback instead, bypassing the
	// NACK path this test is about). Then every key still reads back.
	var migratedKey uint64
	for key := uint64(0); key < 300; key++ {
		if m.ShardOf(key) == shard {
			migratedKey = key
			break
		}
	}
	if v, ok, err := rt.Get(migratedKey); err != nil || !ok || v != migratedKey+1 {
		t.Fatalf("migrated-shard get %d = (%d,%v,%v)", migratedKey, v, ok, err)
	}
	if lc.router.Redirects() == 0 {
		t.Fatal("stale router reached the migrated shard without a WrongShard NACK")
	}
	for key := uint64(0); key < 300; key++ {
		v, ok, err := rt.Get(key)
		if err != nil || !ok || v != key+1 {
			t.Fatalf("post-migration get %d = (%d,%v,%v)", key, v, ok, err)
		}
	}
	if lc.services[0].Node().Telemetry().Counter("cluster.shard_moves").Load() != 1 {
		t.Fatal("cluster.shard_moves not bumped on the source")
	}
	if lc.services[0].Node().Telemetry().Hist("cluster.migration_duration_ns").Count() != 1 {
		t.Fatal("migration duration not observed")
	}
}

// TestMembershipDetectsDeathAndRevival cuts a member's links, walks the
// detector to dead, routes around it, then restores the link and sees
// the member revive.
func TestMembershipDetectsDeathAndRevival(t *testing.T) {
	lc := newLiveCluster(t, 3, 16, fabric.Config{})
	lc.coord.AddRouter(lc.router)
	lc.mems.ProbeTimeout = 20 * time.Millisecond
	if st := lc.mems.ProbeOnce(); st[0] != resilience.MemberLive {
		t.Fatalf("initial probe: %v", st)
	}
	fab := lc.nw.Fabric()
	fab.SetLinkDown(testClientID, 1, true)
	fab.SetLinkDown(1, testClientID, true)
	var st map[fabric.NodeID]resilience.MemberState
	for i := 0; i < 6; i++ {
		st = lc.mems.ProbeOnce()
	}
	if st[1] != resilience.MemberDead {
		t.Fatalf("member 1 after 6 missed probes: %v", st[1])
	}
	if lc.router.Node().Telemetry().Counter("cluster.member_suspects").Load() == 0 {
		t.Fatal("cluster.member_suspects not bumped")
	}
	live := lc.mems.Live()
	if len(live) != 2 {
		t.Fatalf("live set = %v", live)
	}
	if err := lc.coord.RouteAround(1, live); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < lc.coord.Map().Shards; s++ {
		if lc.coord.Map().Owner(s) == 1 {
			t.Fatalf("shard %d still routed to the dead member", s)
		}
	}
	// Fresh writes land on the survivors.
	rt := lc.router.Thread()
	for key := uint64(1000); key < 1100; key++ {
		if err := rt.Put(key, key); err != nil {
			t.Fatalf("put with member down: %v", err)
		}
	}
	fab.SetLinkDown(testClientID, 1, false)
	fab.SetLinkDown(1, testClientID, false)
	// Revival takes a few rounds: the conn's QPs recover and the breaker
	// cools down before a ping gets through again.
	revived := false
	for i := 0; i < 100 && !revived; i++ {
		revived = lc.mems.ProbeOnce()[1] == resilience.MemberLive
		time.Sleep(10 * time.Millisecond)
	}
	if !revived {
		t.Fatal("member 1 never revived after link restore")
	}
}

// TestDrainResumeRejoin is the regression for the planned-maintenance
// cycle: Decommission migrates a member's shards off and drains it, the
// detector reads the drain pushback as draining (not dead), Resume
// re-marks it live, and the next Rebalance hands its shards back with a
// live copy.
func TestDrainResumeRejoin(t *testing.T) {
	lc := newLiveCluster(t, 3, 16, fabric.Config{})
	lc.coord.AddRouter(lc.router)
	rt := lc.router.Thread()
	for key := uint64(0); key < 300; key++ {
		if err := rt.Put(key, key+7); err != nil {
			t.Fatal(err)
		}
	}
	victim := fabric.NodeID(2)
	owned := lc.coord.Map().ShardsOwnedBy(victim)
	if len(owned) == 0 {
		t.Fatal("victim owns nothing; test is vacuous")
	}
	resumed := make(chan struct{}, 1)
	lc.services[2].Node().OnResume(func() { resumed <- struct{}{} })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := lc.coord.Decommission(ctx, victim); err != nil {
		t.Fatal(err)
	}
	if got := lc.coord.Map().ShardsOwnedBy(victim); len(got) != 0 {
		t.Fatalf("victim still owns %v after decommission", got)
	}
	if !lc.services[2].Node().Draining() {
		t.Fatal("victim not draining")
	}
	// The detector sees the drain pushback, not a death.
	lc.mems.ProbeTimeout = 20 * time.Millisecond
	if st := lc.mems.ProbeOnce(); st[victim] != resilience.MemberDraining {
		t.Fatalf("draining member probes as %v", st[victim])
	}
	// All data still reachable on the survivors.
	for key := uint64(0); key < 300; key++ {
		v, ok, err := rt.Get(key)
		if err != nil || !ok || v != key+7 {
			t.Fatalf("get %d during drain = (%d,%v,%v)", key, v, ok, err)
		}
	}

	// Rejoin: Resume fires the hook, the probe re-marks it live, and the
	// rebalance migrates shards back (the ring over the full member set
	// is the original placement).
	lc.services[2].Node().Resume()
	select {
	case <-resumed:
	default:
		t.Fatal("OnResume hook did not fire")
	}
	if st := lc.mems.ProbeOnce(); st[victim] != resilience.MemberLive {
		t.Fatalf("resumed member probes as %v", st[victim])
	}
	moves, err := lc.coord.Rebalance(lc.mems.Live())
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatal("rebalance moved nothing back")
	}
	back := lc.coord.Map().ShardsOwnedBy(victim)
	if len(back) == 0 {
		t.Fatal("resumed member received no shards")
	}
	// The shards came back with their data: reads served by the victim.
	total := 0
	for _, s := range back {
		total += lc.services[2].Keys(s)
	}
	if total == 0 {
		t.Fatal("shards handed back empty — copy-back did not happen")
	}
	for key := uint64(0); key < 300; key++ {
		v, ok, err := rt.Get(key)
		if err != nil || !ok || v != key+7 {
			t.Fatalf("get %d after rejoin = (%d,%v,%v)", key, v, ok, err)
		}
	}
}

// TestMigrationChaosLinearizable is the headline property: concurrent
// clients run guarded puts and gets against the sharded KV while a
// shard migrates back and forth and the source→target link flaps on a
// seeded schedule. The recorded history must be linearizable under the
// monotonic-KV model, and the run must actually have exercised
// migration (moves > 0) and the redirect protocol.
func TestMigrationChaosLinearizable(t *testing.T) {
	lc := newLiveCluster(t, 3, 8, fabric.Config{})
	lc.nw.Fabric().SetFaultPlan(&fabric.FaultPlan{
		Seed: 0xC1A05,
		Links: []fabric.LinkFault{
			// Flap both directions of the migration path (0↔2): a few
			// attempts up, a window down, forever. Windows are counted in
			// matched transmission attempts, so copy-chunk retries advance
			// them deterministically.
			{Src: 0, Dst: 2, DownAfter: 2, DownFor: 6, Repeat: true},
			{Src: 2, Dst: 0, DownAfter: 3, DownFor: 5, Repeat: true},
		},
	})
	lc.services[0].CopyBudget = 30 * time.Millisecond
	lc.services[0].ForwardBudget = 30 * time.Millisecond
	lc.router.CallBudget = 100 * time.Millisecond

	m := lc.coord.Map()
	var shard int
	for s := 0; s < m.Shards; s++ {
		if m.Owner(s) == 0 {
			shard = s
			break
		}
	}
	// Pre-populate the migrating shard so every copy is several chunks —
	// enough matched transmissions on the flapping link to hit the down
	// windows. These keys live above 1<<20, disjoint from the checked
	// working set.
	{
		rt := lc.router.Thread()
		filled := 0
		for key := uint64(1 << 20); filled < 700; key++ {
			if m.ShardOf(key) != shard {
				continue
			}
			if err := rt.Put(key, 1); err != nil {
				t.Fatalf("prefill put: %v", err)
			}
			filled++
		}
	}

	rec := check.NewRecorder()
	const (
		writers   = 4
		keysEach  = 6
		opsEach   = 150
		readers   = 2
		readerOps = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rt := lc.router.Thread()
			for i := 1; i <= opsEach; i++ {
				key := uint64(w*keysEach + i%keysEach)
				val := uint64(i) // monotonic per key per sole writer
				call := rec.Begin()
				if err := rt.Put(key, val); err != nil {
					rec.EndPending(w, call, check.KVIn{Key: key, Put: true, Val: val})
					continue
				}
				rec.End(w, call, check.KVIn{Key: key, Put: true, Val: val}, nil)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rt := lc.router.Thread()
			for i := 0; i < readerOps; i++ {
				key := uint64((r*7 + i) % (writers * keysEach))
				call := rec.Begin()
				v, ok, err := rt.Get(key)
				if err != nil {
					rec.EndPending(writers+r, call, check.KVIn{Key: key})
					continue
				}
				rec.End(writers+r, call, check.KVIn{Key: key}, check.KVOut{Val: v, Found: ok})
			}
		}(r)
	}

	// Meanwhile: migrate the shard 0→2, back 2→0, and again, through the
	// flapping link.
	migrations := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		targets := []fabric.NodeID{2, 0, 2}
		for _, to := range targets {
			if err := lc.coord.MigrateShard(shard, to); err != nil {
				t.Errorf("migrate shard %d -> %d: %v", shard, to, err)
				return
			}
			migrations++
		}
	}()
	wg.Wait()
	<-done

	if migrations == 0 {
		t.Fatal("no migration completed; chaos run is vacuous")
	}
	res := check.Check(check.MonotonicKVModel(), rec.History())
	if !res.Ok {
		t.Fatalf("history not linearizable across live migration:\n%s", res)
	}
	moves := lc.services[0].Node().Telemetry().Counter("cluster.shard_moves").Load() +
		lc.services[2].Node().Telemetry().Counter("cluster.shard_moves").Load()
	if moves < uint64(migrations) {
		t.Fatalf("shard_moves = %d, migrations = %d", moves, migrations)
	}
	if lc.nw.Fabric().FaultCounters().LinkDownDrops == 0 {
		t.Fatal("the flap windows never dropped anything; chaos run is vacuous")
	}
}
