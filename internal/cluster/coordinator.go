package cluster

import (
	"context"
	"fmt"
	"time"

	"flock/internal/fabric"
)

// Coordinator drives placement changes: it owns the authoritative map,
// executes the migration state machine against member Services, and
// pushes new epochs to the services and any registered routers. It is
// an in-process control plane — the paper's out-of-band configuration
// service, like the Network bootstrap — while every byte of shard data
// moves over the fault-injectable RPC fabric.
//
// Migration state machine for one shard (freeze → copy → forward →
// handoff):
//
//  1. publish epoch E+1 with the move in Pending (dual-write window
//     opens conceptually; routers may learn early, ownership unchanged)
//  2. source BeginMigration: forwards every subsequent put to the
//     target (chunk-of-one RPCMigrate, guarded apply)
//  3. source CopyShard: snapshot scan streamed as bulk chunks; retried
//     through fault windows
//  4. handoff: source CompleteMigration installs epoch E+2 (Table flips
//     to target) atomically with forward-off under the shard's lock —
//     from that instant the source NACKs WrongShard with the new map —
//     then the target and remaining members install E+2
//
// Writes dual-applied in step 2-3 commute with snapshot chunks because
// applies take the per-key maximum, so no ordering between scan and
// forward matters.
type Coordinator struct {
	services map[fabric.NodeID]*Service
	routers  []*Router
	cur      *ShardMap

	// CopyDeadline bounds one shard's snapshot copy (default 10s).
	CopyDeadline time.Duration
}

// NewCoordinator builds a coordinator over the initial map.
func NewCoordinator(initial *ShardMap) *Coordinator {
	return &Coordinator{
		services: make(map[fabric.NodeID]*Service),
		cur:      initial,
	}
}

// AddService registers a member's service with the control plane.
func (c *Coordinator) AddService(s *Service) { c.services[s.Node().ID()] = s }

// AddRouter registers a router to receive map pushes. Routers converge
// without this (piggybacks and NACKs carry the map), but pushing spares
// the first few redirects after each epoch.
func (c *Coordinator) AddRouter(r *Router) { c.routers = append(c.routers, r) }

// Map returns the authoritative map.
func (c *Coordinator) Map() *ShardMap { return c.cur }

func (c *Coordinator) publish(m *ShardMap) {
	c.cur = m
	for _, s := range c.services {
		s.InstallMap(m)
	}
	for _, r := range c.routers {
		r.Install(m)
	}
}

func (c *Coordinator) copyDeadline() time.Time {
	d := c.CopyDeadline
	if d <= 0 {
		d = 10 * time.Second
	}
	return time.Now().Add(d)
}

// MigrateShard moves one shard from its current owner to `to`,
// copying the data live. The coordinator must not be called
// concurrently with itself.
func (c *Coordinator) MigrateShard(shard int, to fabric.NodeID) error {
	from := c.cur.Owner(shard)
	if from == to {
		return nil
	}
	src, ok := c.services[from]
	if !ok {
		return fmt.Errorf("cluster: no service for source %d", from)
	}
	if _, ok := c.services[to]; !ok {
		return fmt.Errorf("cluster: no service for target %d", to)
	}
	mig := Migration{Shard: shard, From: from, To: to}
	pendingMap := c.cur.WithPending(mig)

	if err := src.BeginMigration(shard, to); err != nil {
		return err
	}
	c.publish(pendingMap)

	if err := src.CopyShard(shard, c.copyDeadline()); err != nil {
		// Abort: drop the pending entry, keep ownership at the source.
		revert := pendingMap.Clone()
		revert.Epoch++
		revert.Pending = nil
		src.AbortMigration(shard, revert)
		c.publish(revert)
		return err
	}

	handoff := pendingMap.WithHandoff(shard, to)
	// Source first: it must stop serving (and start NACKing with the
	// new map) before anyone else treats the target as the owner.
	src.CompleteMigration(shard, handoff)
	c.publish(handoff)
	return nil
}

// FailOver handles a dead member on a replicated map: every shard it
// primaried is promoted to a surviving backup (epoch bump, no copy —
// the backup already holds every acknowledged write, that is what the
// sync-forward ACK rule bought), and the dead node is pruned from every
// remaining backup set so primaries stop blocking on forwards to it.
// Publication order mirrors MigrateShard's handoff: each new primary
// Promotes first (install under the shard's exclusive lock), then the
// map goes out to everyone else; in between, stale routers that still
// hit the dead node fail over via the detector path, and deposed-
// primary forwards are fenced by the replication epoch check. Returns
// how many shards changed primary.
func (c *Coordinator) FailOver(dead fabric.NodeID, live []fabric.NodeID) (int, error) {
	next, promoted, rerouted := c.cur.WithFailover(dead, live)
	if promoted+rerouted == 0 {
		return 0, nil
	}
	for s, owner := range next.Table {
		if c.cur.Table[s] == owner {
			continue
		}
		if svc, ok := c.services[owner]; ok {
			svc.Promote(s, next)
		}
	}
	c.publish(next)
	if rerouted > 0 && promoted == 0 {
		// Shards with no surviving backup fell back to ring placement —
		// their data is gone with the node. Callers that require the
		// durability contract treat this as an error.
		return promoted, fmt.Errorf("cluster: %d shard(s) failed over without a backup", rerouted)
	}
	return promoted, nil
}

// Repair restores replication factor after a failover: for every shard
// whose backup set is short of the map's replica count, it recruits the
// next ring successor, publishes the widened replica set (so writes
// start forwarding to the recruit immediately), then snapshot-streams
// the shard into it. Guarded applies make the stream and the racing
// forwards commute. Returns how many backups were recruited.
func (c *Coordinator) Repair(live []fabric.NodeID) (int, error) {
	recruited := 0
	for shard := 0; shard < c.cur.Shards; shard++ {
		for len(c.cur.BackupsOf(shard)) < c.cur.Replicas {
			primary := c.cur.Owner(shard)
			cand := c.cur.ReplacementBackup(shard, live)
			if cand == primary || cand < 0 {
				break // nobody left to recruit for this shard
			}
			next, err := c.cur.WithBackup(shard, cand)
			if err != nil {
				return recruited, err
			}
			src, ok := c.services[primary]
			if !ok {
				return recruited, fmt.Errorf("cluster: no service for primary %d", primary)
			}
			c.publish(next)
			if err := src.CopyShardTo(shard, cand, c.copyDeadline()); err != nil {
				return recruited, err
			}
			recruited++
		}
	}
	return recruited, nil
}

// RouteAround reassigns every shard owned by `from` without copying —
// the move for a member the detector declared dead. Data on the dead
// member is abandoned (it re-syncs by migration if it rejoins); the
// epoch bump makes every router stop sending there.
func (c *Coordinator) RouteAround(from fabric.NodeID, live []fabric.NodeID) error {
	if len(live) == 0 {
		return fmt.Errorf("cluster: no live members to route around %d", from)
	}
	desired := c.cur.DesiredTable(live)
	next := c.cur.Clone()
	next.Epoch++
	moved := false
	for s, owner := range next.Table {
		if owner == from {
			next.Table[s] = desired[s]
			moved = true
		}
	}
	if !moved {
		return nil
	}
	c.publish(next)
	return nil
}

// Rebalance converges the map towards the ring placement over the live
// member set, migrating (with copy) from live sources and routing
// around dead ones. Returns how many shards moved.
func (c *Coordinator) Rebalance(live []fabric.NodeID) (int, error) {
	liveSet := make(map[fabric.NodeID]bool, len(live))
	for _, id := range live {
		liveSet[id] = true
	}
	moves := 0
	for _, mig := range c.cur.PlanRebalance(live) {
		if !liveSet[mig.From] {
			if err := c.RouteAround(mig.From, live); err != nil {
				return moves, err
			}
			moves++
			continue
		}
		if err := c.MigrateShard(mig.Shard, mig.To); err != nil {
			return moves, err
		}
		moves++
	}
	return moves, nil
}

// Decommission drains a member gracefully: every shard it owns is
// migrated (live, with copy) to the ring placement over the remaining
// members, and only then is the node drained — a draining node can
// neither serve nor send, so the copy must finish first. This is the
// planned-maintenance path; Node.Resume plus a Rebalance over the full
// member set brings it back.
func (c *Coordinator) Decommission(ctx context.Context, id fabric.NodeID) error {
	svc, ok := c.services[id]
	if !ok {
		return fmt.Errorf("cluster: no service for member %d", id)
	}
	var rest []fabric.NodeID
	for _, m := range c.cur.Members {
		if m != id {
			rest = append(rest, m)
		}
	}
	if len(rest) == 0 {
		return fmt.Errorf("cluster: cannot decommission the last member")
	}
	desired := c.cur.DesiredTable(rest)
	for _, shard := range c.cur.ShardsOwnedBy(id) {
		if err := c.MigrateShard(shard, desired[shard]); err != nil {
			return err
		}
	}
	return svc.Node().Drain(ctx)
}
