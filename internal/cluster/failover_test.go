package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flock/internal/check"
	"flock/internal/core"
	"flock/internal/fabric"
	"flock/internal/resilience"
)

// newReplicatedCluster is newLiveCluster with a replica factor: every
// shard gets a primary plus R backups, and every put synchronously
// replicates before acking.
func newReplicatedCluster(t *testing.T, n, shards, replicas int, fcfg fabric.Config) *liveCluster {
	t.Helper()
	nw := core.NewNetwork(fcfg)
	t.Cleanup(nw.Close)
	members := make([]fabric.NodeID, n)
	for i := range members {
		members[i] = fabric.NodeID(i)
	}
	m, err := NewReplicated(members, shards, 8, replicas)
	if err != nil {
		t.Fatal(err)
	}
	lc := &liveCluster{nw: nw, coord: NewCoordinator(m)}
	for _, id := range members {
		node, err := nw.NewNode(id, core.Options{Workers: 2}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Serve(); err != nil {
			t.Fatal(err)
		}
		svc, err := NewService(node, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		lc.services = append(lc.services, svc)
		lc.coord.AddService(svc)
	}
	client, err := nw.NewNode(testClientID, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	lc.router = NewRouter(client, m)
	lc.mems = NewMembership(lc.router)
	return lc
}

// TestReplicatedPutReachesBackups: the sync-forward ACK rule on the
// live path — an acked put is on every backup (fingerprints equal after
// a quiesce), and the replica_forwards counter moved.
func TestReplicatedPutReachesBackups(t *testing.T) {
	lc := newReplicatedCluster(t, 3, 8, 1, fabric.Config{})
	rt := lc.router.Thread()
	for key := uint64(0); key < 100; key++ {
		if err := rt.Put(key, key+1); err != nil {
			t.Fatalf("put %d: %v", key, err)
		}
	}
	m := lc.coord.Map()
	for s := 0; s < m.Shards; s++ {
		p := m.Owner(s)
		for _, b := range m.BackupsOf(s) {
			if pf, bf := lc.services[p].ShardFingerprint(s), lc.services[b].ShardFingerprint(s); pf != bf {
				t.Fatalf("shard %d: primary %d fingerprint %#x != backup %d fingerprint %#x", s, p, pf, b, bf)
			}
		}
	}
	fwds := uint64(0)
	for _, svc := range lc.services {
		fwds += svc.Node().Telemetry().Counter("cluster.replica_forwards").Load()
	}
	if fwds < 100 {
		t.Fatalf("replica_forwards = %d for 100 replicated puts", fwds)
	}
}

// TestFailoverPreservesAckedWrites is the tentpole's live acceptance
// run: concurrent clients write monotonic values into a replicated
// cluster, a shard primary is killed mid-traffic (links cut both
// directions to everyone), the detector walks it to dead, the
// coordinator promotes backups — and afterwards every write that was
// ever acknowledged is still readable, the whole history is
// linearizable, replicas fingerprint equal, and Repair restores the
// replica factor. The package leak gate (TestMain) asserts the pooled
// buffers all came home afterwards.
func TestFailoverPreservesAckedWrites(t *testing.T) {
	lc := newReplicatedCluster(t, 4, 16, 2, fabric.Config{})
	lc.coord.AddRouter(lc.router)
	// Budgets bound how long calls into the (soon-to-be) dead victim can
	// hang; generous enough that healthy-path RPCs never trip them, even
	// under the race detector's scheduling.
	lc.router.CallBudget = 200 * time.Millisecond
	for _, svc := range lc.services {
		svc.ForwardBudget = 200 * time.Millisecond
		svc.CopyBudget = 200 * time.Millisecond
	}
	lc.mems.ProbeTimeout = 100 * time.Millisecond

	victim := lc.coord.Map().Owner(0)
	victimShards := lc.coord.Map().ShardsOwnedBy(victim)
	if len(victimShards) == 0 {
		t.Fatal("victim owns nothing; kill would be vacuous")
	}

	// Working set: half the keys land in victim-primaried shards, so
	// acknowledged writes provably straddle the failover.
	const writers = 3
	const keysEach = 6
	keys := make([]uint64, 0, writers*keysEach)
	victimSet := map[int]bool{}
	for _, s := range victimShards {
		victimSet[s] = true
	}
	m0 := lc.coord.Map()
	for k, onVictim, offVictim := uint64(0), 0, 0; len(keys) < writers*keysEach; k++ {
		if victimSet[m0.ShardOf(k)] {
			if onVictim < writers*keysEach/2 {
				keys = append(keys, k)
				onVictim++
			}
		} else if offVictim < writers*keysEach-writers*keysEach/2 {
			keys = append(keys, k)
			offVictim++
		}
	}

	// Phase 1: one acked write per key before the kill. The prefill is
	// recorded too — the linearizability checker's model starts unset, so
	// a later read of the prefill value needs its put in the history.
	rec := check.NewRecorder()
	{
		rt := lc.router.Thread()
		for _, k := range keys {
			call := rec.Begin()
			if err := rt.Put(k, 1); err != nil {
				t.Fatalf("prefill put %d: %v", k, err)
			}
			rec.End(writers+1, call, check.KVIn{Key: k, Put: true, Val: 1}, nil)
		}
	}
	var stop atomic.Bool
	acked := make([]uint64, len(keys)) // last acked val per key index; single writer each
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rt := lc.router.Thread()
			for i := 1; !stop.Load(); i++ {
				ki := w*keysEach + i%keysEach
				key, val := keys[ki], uint64(i+1) // monotonic per key (prefill was 1)
				call := rec.Begin()
				if err := rt.Put(key, val); err != nil {
					rec.EndPending(w, call, check.KVIn{Key: key, Put: true, Val: val})
					continue
				}
				rec.End(w, call, check.KVIn{Key: key, Put: true, Val: val}, nil)
				if val > acked[ki] {
					acked[ki] = val // goroutine-local index range: no race
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rt := lc.router.Thread()
		for i := 0; !stop.Load(); i++ {
			key := keys[i%len(keys)]
			call := rec.Begin()
			v, ok, err := rt.Get(key)
			if err != nil {
				rec.EndPending(writers, call, check.KVIn{Key: key})
				continue
			}
			rec.End(writers, call, check.KVIn{Key: key}, check.KVOut{Val: v, Found: ok})
		}
	}()

	// Mid-traffic: the victim drops off the network entirely.
	time.Sleep(50 * time.Millisecond)
	fab := lc.nw.Fabric()
	peers := append([]fabric.NodeID{testClientID}, lc.coord.Map().Members...)
	for _, id := range peers {
		if id == victim {
			continue
		}
		fab.SetLinkDown(victim, id, true)
		fab.SetLinkDown(id, victim, true)
	}
	// Probe until the victim is dead AND every survivor is live again: a
	// healthy member can transiently miss a probe under traffic, and one
	// good round revives it — without this, FailOver/Repair could run on
	// an incomplete live set.
	deadline := time.Now().Add(10 * time.Second)
	for lc.mems.State(victim) != resilience.MemberDead || len(lc.mems.Live()) != len(m0.Members)-1 {
		if time.Now().After(deadline) {
			t.Fatalf("detector never settled: victim %v, live %v", lc.mems.State(victim), lc.mems.Live())
		}
		lc.mems.ProbeOnce()
	}
	promoted, err := lc.coord.FailOver(victim, lc.mems.Live())
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if promoted < len(victimShards) {
		t.Fatalf("promoted %d shards, victim owned %d", promoted, len(victimShards))
	}

	// Traffic keeps flowing on the promoted map for a while, then stops.
	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	m := lc.coord.Map()
	for s := 0; s < m.Shards; s++ {
		if m.Owner(s) == victim || m.IsBackup(s, victim) {
			t.Fatalf("shard %d still lists the dead victim %d", s, victim)
		}
	}
	promotions := uint64(0)
	for _, svc := range lc.services {
		promotions += svc.Node().Telemetry().Counter("cluster.promotions").Load()
	}
	if promotions == 0 {
		t.Fatal("cluster.promotions never bumped")
	}

	// Every acknowledged write survived: reads see at least the last
	// acked value of each key (guarded max; unacked retries only raise).
	rt := lc.router.Thread()
	for ki, k := range keys {
		v, ok, err := rt.Get(k)
		if err != nil || !ok {
			t.Fatalf("get %d after failover = (%v, %v)", k, ok, err)
		}
		if want := max64(acked[ki], 1); v < want {
			t.Fatalf("key %d reads %d after failover; %d was acknowledged", k, v, want)
		}
	}

	res := check.Check(check.MonotonicKVModel(), rec.History())
	if !res.Ok {
		t.Fatalf("history not linearizable across primary failover:\n%s", res)
	}

	// Settle every key with a fresh acked write, then replicas must be
	// content-identical shard by shard.
	for _, k := range keys {
		if err := rt.Put(k, 1<<20|k); err != nil {
			t.Fatalf("settle put %d: %v", k, err)
		}
	}
	assertReplicasConverged(t, lc, m)

	// Repair recruits replacements for the pruned backup slots and
	// copies the data in; the widened replica sets converge too.
	recruited, err := lc.coord.Repair(lc.mems.Live())
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if recruited == 0 {
		t.Fatal("repair recruited nobody after a failover")
	}
	m = lc.coord.Map()
	for s := 0; s < m.Shards; s++ {
		if got := len(m.BackupsOf(s)); got != m.Replicas {
			t.Fatalf("shard %d has %d backups after repair, want %d", s, got, m.Replicas)
		}
	}
	assertReplicasConverged(t, lc, m)
}

func assertReplicasConverged(t *testing.T, lc *liveCluster, m *ShardMap) {
	t.Helper()
	for s := 0; s < m.Shards; s++ {
		p := m.Owner(s)
		pf := lc.services[p].ShardFingerprint(s)
		for _, b := range m.BackupsOf(s) {
			if bf := lc.services[b].ShardFingerprint(s); bf != pf {
				t.Fatalf("shard %d diverged: primary %d %#x, backup %d %#x", s, p, pf, b, bf)
			}
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// TestReplicationEpochFence: a deposed primary's forward (stale epoch)
// is NACKed WrongShard with the newer map rather than absorbed — the
// fence that keeps a slow pre-failover primary from resurrecting
// overwritten state on a backup.
func TestReplicationEpochFence(t *testing.T) {
	lc := newReplicatedCluster(t, 3, 8, 1, fabric.Config{})
	m := lc.coord.Map()
	shard := 0
	backup := m.BackupsOf(shard)[0]
	// Bump the backup's epoch past the cluster's.
	newer := m.Clone()
	newer.Epoch += 5
	lc.services[backup].InstallMap(newer)
	// A forward stamped with the old epoch must be fenced.
	if err := lc.services[m.Owner(shard)].replicate(backup, m.Epoch, shard, 1, 1); err == nil {
		t.Fatal("stale-epoch forward accepted by a newer backup")
	}
	// The fence taught the sender: its map is now the newer one.
	if got := lc.services[m.Owner(shard)].Map().Epoch; got != newer.Epoch {
		t.Fatalf("sender epoch after fence = %d, want %d", got, newer.Epoch)
	}
	// At the fenced sender's new epoch, the forward lands.
	if err := lc.services[m.Owner(shard)].replicate(backup, newer.Epoch, shard, 1, 1); err != nil {
		t.Fatalf("current-epoch forward rejected: %v", err)
	}
}
