package cluster

import (
	"encoding/binary"

	"flock/internal/mem"
)

// wireFrame is a pooled, header-stamped wire frame of fixed-size
// 16-byte (key, val) entries — the shape shared by migration chunks and
// FRP1 replica forwards. The header is written once at lease time; the
// entry count is stamped into the header by payload(), so a frame can be
// filled, sent, reset and refilled (the snapshot streamer's loop)
// without re-deriving the header. The lease is the caller's to release.
type wireFrame struct {
	buf     *mem.Buf
	header  int // entry region starts here
	countAt int // offset of the u32 entry count within the header
	n       int
}

const wireEntryLen = 16

// add appends one entry. The caller is responsible for staying within
// the entry capacity the frame was leased for.
func (f *wireFrame) add(key, val uint64) {
	off := f.header + f.n*wireEntryLen
	b := f.buf.Data()
	binary.LittleEndian.PutUint64(b[off:off+8], key)
	binary.LittleEndian.PutUint64(b[off+8:off+16], val)
	f.n++
}

// payload stamps the entry count and returns the wire bytes. The slice
// aliases the pooled buffer: it is valid until reset or release.
func (f *wireFrame) payload() []byte {
	b := f.buf.Data()
	binary.LittleEndian.PutUint32(b[f.countAt:f.countAt+4], uint32(f.n))
	return b[:f.header+f.n*wireEntryLen]
}

// reset empties the frame for refilling; the header stays stamped.
func (f *wireFrame) reset() { f.n = 0 }

// release returns the pooled buffer. The frame is dead afterwards.
func (f *wireFrame) release() {
	f.buf.Release()
	f.buf = nil
}

// leaseChunkFrame leases a migration-chunk frame (RPCMigrate wire
// format: shard u32, count u32, entries) sized for maxEntries.
func leaseChunkFrame(shard, maxEntries int) *wireFrame {
	buf := mem.Get(chunkHeaderLen + maxEntries*chunkEntryLen)
	binary.LittleEndian.PutUint32(buf.Data()[0:4], uint32(shard))
	return &wireFrame{buf: buf, header: chunkHeaderLen, countAt: 4}
}

// leaseReplFrame leases an FRP1 replica-forward frame (magic, epoch u64,
// shard u32, count u32, entries) sized for maxEntries. A filled frame's
// payload is byte-identical to AppendReplicaForward over the same
// entries — the group-commit path and the single-entry PR 9 path share
// one wire image.
func leaseReplFrame(epoch uint64, shard, maxEntries int) *wireFrame {
	buf := mem.Get(ReplicaForwardSize(maxEntries))
	b := buf.Data()
	binary.LittleEndian.PutUint32(b[0:4], replMagic)
	binary.LittleEndian.PutUint64(b[4:12], epoch)
	binary.LittleEndian.PutUint32(b[12:16], uint32(shard))
	return &wireFrame{buf: buf, header: replHeaderLen, countAt: 16}
}
