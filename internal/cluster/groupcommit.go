package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flock/internal/core"
	"flock/internal/fabric"
)

// Group-commit replication: instead of one single-entry FRP1 frame per
// put per backup (PR 9's sync forward, which priced R=2 at ~0.2× of
// unreplicated goodput), primaries append puts to a per-(shard, backup)
// replication log and a forwarder goroutine drains it into multi-entry
// frames — the paper's flocking discipline applied to the replica
// plane. Frames are issued through the async Pending engine so several
// batches ride the wire per backup with bounded depth, and each put's
// ACK resolves only when the batch carrying it is durable on every
// backup: the durability promise is unchanged, only its granularity is.
//
// Failure semantics are batch-granular: a failed or fenced batch NACKs
// every put it carried (the client retries; guarded take-the-max applies
// absorb the replay), and a frame never spans epochs — a put admitted
// under a newer map is cut into its own frame, so the backup's epoch
// fence judges each batch under the view that admitted its writes.

// ReplTuning tunes the group-commit flush policy, doorbell-batching
// style: a frame flushes when it reaches FlushEntries (or FlushBytes),
// when an epoch boundary forces a cut, or when the first waiter has
// been parked FlushDelay. Zero FlushDelay is natural batching — flush
// as soon as the forwarder is free, so an idle stream adds no latency
// and a busy one coalesces whatever queued behind the in-flight frame.
// Set it before traffic, like the Service budgets.
type ReplTuning struct {
	// FlushEntries caps entries per frame. 0 → 64; clamped to what
	// MaxPayload and the wire format allow.
	FlushEntries int
	// FlushBytes caps frame bytes (0 → no extra cap beyond MaxPayload).
	FlushBytes int
	// FlushDelay bounds how long the oldest queued put waits for
	// companions. 0 → natural batching only.
	FlushDelay time.Duration
	// PipeDepth caps in-flight frames per backup stream. 0 → 2.
	PipeDepth int
}

// replBatchAttempts is the retry cap for one frame: with a Budget set,
// the Pending plan spreads budget/4 per attempt, so 4 attempts spend
// roughly the whole forward budget before the batch fails.
const replBatchAttempts = 4

// Typed replication errors (errors.Is/As): ErrReplicaFenced marks an
// epoch-fence NACK (the backup's newer map was installed before the
// error returned), ErrReplicaNACK any other status rejection; transport
// failures wrap the underlying core/fabric error instead.
var (
	ErrReplicaFenced = errors.New("cluster: replica fence")
	ErrReplicaNACK   = errors.New("cluster: replicate NACK")

	errReplStopped = errors.New("cluster: replication stream stopped")
	errReplCommit  = errors.New("cluster: replication commit timed out")
)

// ReplError is the typed outcome of one backup's refusal: which backup,
// the status it answered (0 for transport failures), and a sentinel or
// transport cause for errors.Is/As.
type ReplError struct {
	Backup fabric.NodeID
	Status uint32
	Err    error
}

func (e *ReplError) Error() string {
	return fmt.Sprintf("cluster: replicate to n%d failed (status %d): %v", e.Backup, e.Status, e.Err)
}

func (e *ReplError) Unwrap() error { return e.Err }

// replOp is one put riding the replication log: it resolves when every
// backup's batch carrying it committed (ack) or any of them failed.
type replOp struct {
	epoch     uint64
	key, val  uint64
	remaining atomic.Int32

	mu     sync.Mutex
	err    error
	closed bool
	done   chan struct{}
}

func (o *replOp) ack() {
	if o.remaining.Add(-1) > 0 {
		return
	}
	o.mu.Lock()
	if !o.closed {
		o.closed = true
		close(o.done)
	}
	o.mu.Unlock()
}

// fail resolves the op immediately with the first error; a later ack or
// fail from another stream's batch is a no-op.
func (o *replOp) fail(err error) {
	o.mu.Lock()
	if !o.closed {
		o.err = err
		o.closed = true
		close(o.done)
	}
	o.mu.Unlock()
}

func (o *replOp) waitCommit(limit time.Duration) error {
	t := time.NewTimer(limit)
	defer t.Stop()
	select {
	case <-o.done:
		o.mu.Lock()
		err := o.err
		o.mu.Unlock()
		return err
	case <-t.C:
		return errReplCommit
	}
}

type streamKey struct {
	shard int
	to    fabric.NodeID
}

// replStream is one (shard, backup) replication log: an append queue
// and the forwarder goroutine that drains it into FRP1 frames.
type replStream struct {
	svc   *Service
	shard int
	to    fabric.NodeID

	mu      sync.Mutex
	queue   []*replOp
	firstAt time.Time // enqueue time of queue[0] (flush-deadline anchor)
	stopped bool

	kick chan struct{} // cap 1: queue went from empty/waiting to work
	stop chan struct{}
}

// cutBatch decides the flush: given the queued ops, it returns how many
// at the head flush now (0 = none), and when to re-evaluate if the
// policy says wait. A frame carries one epoch, so the batch is the
// longest same-epoch prefix up to maxEntries; it flushes immediately
// when full, when an epoch boundary queues behind it (the boundary put
// would otherwise wait a full delay for a frame it can never join), or
// when the first waiter has aged past delay. delay <= 0 flushes
// whatever is there — natural batching.
func cutBatch(queue []*replOp, maxEntries int, delay time.Duration, firstAt, now time.Time) (int, time.Time) {
	if len(queue) == 0 {
		return 0, time.Time{}
	}
	prefix := 1
	for prefix < len(queue) && prefix < maxEntries && queue[prefix].epoch == queue[0].epoch {
		prefix++
	}
	if prefix == maxEntries || prefix < len(queue) {
		return prefix, time.Time{}
	}
	if delay <= 0 || !now.Before(firstAt.Add(delay)) {
		return prefix, time.Time{}
	}
	return 0, firstAt.Add(delay)
}

// replTuning resolves the knobs against wire and payload limits.
func (s *Service) replTuning() (maxEntries int, delay time.Duration, depth int) {
	t := s.Repl
	maxEntries = t.FlushEntries
	if maxEntries <= 0 {
		maxEntries = 64
	}
	if t.FlushBytes > 0 {
		if byBytes := (t.FlushBytes - replHeaderLen) / wireEntryLen; byBytes < maxEntries {
			maxEntries = byBytes
		}
	}
	if wire := (s.node.Options().MaxPayload - replHeaderLen) / wireEntryLen; maxEntries > wire {
		maxEntries = wire
	}
	if maxEntries > maxWireReplEntries {
		maxEntries = maxWireReplEntries
	}
	if maxEntries < 1 {
		maxEntries = 1
	}
	delay = t.FlushDelay
	depth = t.PipeDepth
	if depth <= 0 {
		depth = 2
	}
	return maxEntries, delay, depth
}

// commitWait bounds one put's park on its group commit: worst case the
// op waits a flush delay plus a full pipeline of frame budgets ahead of
// its own. It is a backstop against a wedged stream, not the normal
// resolution path.
func (s *Service) commitWait() time.Duration {
	_, delay, depth := s.replTuning()
	return delay + time.Duration(depth+2)*s.budget(s.ForwardBudget)
}

// stageCommit registers one put in the per-key pending index and
// appends it to every backup's replication log. It returns immediately;
// the caller applies locally and then parks in awaitCommit. Staging
// before the local apply is what makes the read-side commit gate sound:
// any read that observes the applied value is guaranteed to find the op
// in the index. Any failed batch resolves the op immediately with that
// batch's error.
func (s *Service) stageCommit(epoch uint64, shard int, key, val uint64, backups []fabric.NodeID) *replOp {
	op := &replOp{epoch: epoch, key: key, val: val, done: make(chan struct{})}
	op.remaining.Store(int32(len(backups)))
	s.pendMu.Lock()
	s.pendPuts[key] = append(s.pendPuts[key], op)
	s.pendMu.Unlock()
	for _, b := range backups {
		st, err := s.stream(shard, b)
		if err != nil {
			op.fail(err)
			break
		}
		st.enqueue(op)
	}
	return op
}

// awaitCommit parks until a staged put's batches are durable on every
// backup (or one failed), then drops it from the pending index so later
// reads stop gating on it.
func (s *Service) awaitCommit(key uint64, op *replOp) error {
	err := op.waitCommit(s.commitWait())
	s.pendMu.Lock()
	list := s.pendPuts[key]
	for i, o := range list {
		if o == op {
			list[i] = list[len(list)-1]
			list[len(list)-1] = nil
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(s.pendPuts, key)
	} else {
		s.pendPuts[key] = list
	}
	s.pendMu.Unlock()
	return err
}

// pendingOps snapshots the unresolved puts for a key (nil for the vast
// majority of reads — keys with no replication in flight).
func (s *Service) pendingOps(key uint64) []*replOp {
	s.pendMu.Lock()
	list := s.pendPuts[key]
	var ops []*replOp
	if len(list) != 0 {
		ops = append(ops, list...)
	}
	s.pendMu.Unlock()
	return ops
}

// stream returns (lazily starting) the forwarder for (shard, to).
func (s *Service) stream(shard int, to fabric.NodeID) (*replStream, error) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if s.streamsClosed {
		return nil, errReplStopped
	}
	k := streamKey{shard: shard, to: to}
	if st, ok := s.streams[k]; ok {
		return st, nil
	}
	st := &replStream{
		svc:   s,
		shard: shard,
		to:    to,
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
	s.streams[k] = st
	s.streamWG.Add(1)
	go st.run()
	return st, nil
}

// closeStreams stops every forwarder and waits them out; queued ops
// fail with errReplStopped, in-flight frames are completed (their
// Pendings resolve within their budgets) so no lease outlives Close.
func (s *Service) closeStreams() {
	s.streamMu.Lock()
	s.streamsClosed = true
	streams := make([]*replStream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.streamMu.Unlock()
	for _, st := range streams {
		st.mu.Lock()
		if !st.stopped {
			st.stopped = true
			close(st.stop)
		}
		st.mu.Unlock()
	}
	s.streamWG.Wait()
}

func (st *replStream) enqueue(op *replOp) {
	st.mu.Lock()
	if st.stopped {
		st.mu.Unlock()
		op.fail(errReplStopped)
		return
	}
	if len(st.queue) == 0 {
		st.firstAt = time.Now()
	}
	st.queue = append(st.queue, op)
	st.mu.Unlock()
	st.svc.logPending.Add(1)
	select {
	case st.kick <- struct{}{}:
	default:
	}
}

// replBatch is one in-flight frame: its Pending, the leased frame (the
// Pending retains the payload for retries, so the lease lives until
// Wait returns), and the ops it carries.
type replBatch struct {
	p     *core.Pending
	frame *wireFrame
	ops   []*replOp
	start time.Time
}

// run is the forwarder loop. Invariant: it never parks unboundedly
// while frames are in flight — a leased frame is always either being
// completed (Wait resolves within its budget) or waiting behind a
// bounded flush timer — so the package leak gate can't be wedged by an
// idle stream holding pool memory.
func (st *replStream) run() {
	s := st.svc
	defer s.streamWG.Done()
	var th *core.Thread
	var fly []*replBatch

	complete := func(b *replBatch) {
		resp, err := b.p.Wait()
		cerr := s.classifyReplicaResp(st.to, resp, err)
		b.frame.release()
		if cerr != nil {
			for _, op := range b.ops {
				op.fail(cerr)
			}
			return
		}
		s.batches.Inc()
		s.batchEntries.Observe(uint64(len(b.ops)))
		s.flushNS.Observe(uint64(time.Since(b.start).Nanoseconds()))
		s.replFwds.Add(uint64(len(b.ops)))
		for _, op := range b.ops {
			op.ack()
		}
	}

	failOps := func(ops []*replOp, err error) {
		for _, op := range ops {
			op.fail(&ReplError{Backup: st.to, Err: err})
		}
	}

	submit := func(ops []*replOp) {
		if th == nil {
			link, err := s.link(st.to)
			if err != nil {
				failOps(ops, err)
				return
			}
			th = link.conn.RegisterThread()
		}
		frame := leaseReplFrame(ops[0].epoch, st.shard, len(ops))
		for _, op := range ops {
			frame.add(op.key, op.val)
		}
		p, err := th.CallAsync(RPCReplicate, frame.payload(), core.CallOptions{
			Budget:      s.budget(s.ForwardBudget),
			MaxAttempts: replBatchAttempts,
		})
		if err != nil {
			frame.release()
			failOps(ops, err)
			return
		}
		fly = append(fly, &replBatch{p: p, frame: frame, ops: ops, start: time.Now()})
	}

	for {
		// Harvest finished frames without blocking so acks don't wait on
		// the next flush decision.
		for len(fly) > 0 && fly[0].p.Done() {
			complete(fly[0])
			fly = fly[1:]
		}

		maxEntries, delay, depth := s.replTuning()
		st.mu.Lock()
		if st.stopped {
			queued := st.queue
			st.queue = nil
			st.mu.Unlock()
			if len(queued) > 0 {
				s.logPending.Add(-int64(len(queued)))
				failOps(queued, errReplStopped)
			}
			for _, b := range fly {
				complete(b)
			}
			return
		}
		n, wake := cutBatch(st.queue, maxEntries, delay, st.firstAt, time.Now())
		var ops []*replOp
		if n > 0 {
			ops = make([]*replOp, n)
			copy(ops, st.queue)
			rem := copy(st.queue, st.queue[n:])
			for i := rem; i < len(st.queue); i++ {
				st.queue[i] = nil
			}
			st.queue = st.queue[:rem]
			if rem > 0 {
				st.firstAt = time.Now()
			}
		}
		st.mu.Unlock()

		if n > 0 {
			s.logPending.Add(-int64(n))
			if len(fly) >= depth {
				// Pipeline full: retire the oldest frame before this one.
				complete(fly[0])
				fly = fly[1:]
			}
			submit(ops)
			continue
		}

		if !wake.IsZero() {
			// Waiting out a flush deadline: bounded park, so any leased
			// in-flight frames are revisited promptly.
			t := time.NewTimer(time.Until(wake))
			select {
			case <-st.kick:
			case <-t.C:
			case <-st.stop:
			}
			t.Stop()
			continue
		}

		if len(fly) > 0 {
			// Empty queue, frames in flight: block on the oldest rather
			// than parking with pool leases held. New puts just append to
			// the queue meanwhile — that is the natural batching window.
			complete(fly[0])
			fly = fly[1:]
			continue
		}

		select {
		case <-st.kick:
		case <-st.stop:
		}
	}
}
