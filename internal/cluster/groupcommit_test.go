package cluster

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"flock/internal/core"
	"flock/internal/fabric"
)

// newGroupCommitCluster is newReplicatedCluster with a configurable
// worker count: group-commit tests park many concurrent puts on one
// primary, so two workers would serialize the very coalescing under
// test.
func newGroupCommitCluster(t *testing.T, n, shards, replicas, workers int) *liveCluster {
	t.Helper()
	nw := core.NewNetwork(fabric.Config{})
	t.Cleanup(nw.Close)
	members := make([]fabric.NodeID, n)
	for i := range members {
		members[i] = fabric.NodeID(i)
	}
	m, err := NewReplicated(members, shards, 8, replicas)
	if err != nil {
		t.Fatal(err)
	}
	lc := &liveCluster{nw: nw, coord: NewCoordinator(m)}
	for _, id := range members {
		node, err := nw.NewNode(id, core.Options{Workers: workers}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Serve(); err != nil {
			t.Fatal(err)
		}
		svc, err := NewService(node, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		lc.services = append(lc.services, svc)
		lc.coord.AddService(svc)
	}
	client, err := nw.NewNode(testClientID, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	lc.router = NewRouter(client, m)
	lc.mems = NewMembership(lc.router)
	return lc
}

// shardKeys returns n distinct keys that all route to shard.
func shardKeys(m *ShardMap, shard, n int) []uint64 {
	keys := make([]uint64, 0, n)
	for k := uint64(0); len(keys) < n; k++ {
		if m.ShardOf(k) == shard {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestCutBatch drives the flush policy through its batch-boundary edge
// cases: epoch bump mid-batch, the entry cap, the first-waiter
// deadline (including a single waiter), and natural batching.
func TestCutBatch(t *testing.T) {
	base := time.Unix(1000, 0)
	mk := func(epochs ...uint64) []*replOp {
		q := make([]*replOp, len(epochs))
		for i, e := range epochs {
			q[i] = &replOp{epoch: e}
		}
		return q
	}
	cases := []struct {
		name       string
		queue      []*replOp
		maxEntries int
		delay      time.Duration
		age        time.Duration // now - firstAt
		wantN      int
		wantWake   bool
	}{
		{name: "empty queue does nothing", queue: nil, maxEntries: 8, wantN: 0},
		{name: "natural batching flushes a lone op", queue: mk(5), maxEntries: 8, wantN: 1},
		{name: "natural batching flushes the whole prefix", queue: mk(5, 5, 5), maxEntries: 8, wantN: 3},
		{name: "entry cap cuts a full frame", queue: mk(5, 5, 5, 5), maxEntries: 3, delay: time.Hour, wantN: 3},
		{name: "epoch bump mid-batch cuts at the boundary", queue: mk(5, 5, 7), maxEntries: 8, delay: time.Hour, wantN: 2},
		{name: "epoch boundary overrides the deadline wait", queue: mk(5, 7), maxEntries: 8, delay: time.Hour, wantN: 1},
		{name: "young batch waits for the deadline", queue: mk(5, 5), maxEntries: 8, delay: 10 * time.Millisecond, age: time.Millisecond, wantN: 0, wantWake: true},
		{name: "aged batch flushes at the deadline", queue: mk(5, 5), maxEntries: 8, delay: 10 * time.Millisecond, age: 10 * time.Millisecond, wantN: 2},
		{name: "single waiter still waits out the delay", queue: mk(5), maxEntries: 8, delay: 10 * time.Millisecond, age: 0, wantN: 0, wantWake: true},
		{name: "single waiter flushes once aged", queue: mk(5), maxEntries: 8, delay: 10 * time.Millisecond, age: 11 * time.Millisecond, wantN: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, wake := cutBatch(tc.queue, tc.maxEntries, tc.delay, base, base.Add(tc.age))
			if n != tc.wantN {
				t.Fatalf("cutBatch n = %d, want %d", n, tc.wantN)
			}
			if gotWake := !wake.IsZero(); gotWake != tc.wantWake {
				t.Fatalf("cutBatch wake = %v, wantWake %v", wake, tc.wantWake)
			}
			if tc.wantWake {
				if want := base.Add(tc.delay); !wake.Equal(want) {
					t.Fatalf("cutBatch wake = %v, want %v", wake, want)
				}
			}
		})
	}
}

// TestReplFrameSingleEntryWireCompat: a one-entry group-commit frame is
// byte-identical to the PR 9 AppendReplicaForward image — old and new
// primaries speak one wire dialect, so mixed-version batches decode on
// any backup.
func TestReplFrameSingleEntryWireCompat(t *testing.T) {
	want := AppendReplicaForward(nil, ReplicaForward{
		Epoch:   42,
		Shard:   7,
		Entries: []ReplicaEntry{{Key: 0xDEAD, Val: 0xBEEF}},
	})
	f := leaseReplFrame(42, 7, 1)
	defer f.release()
	f.add(0xDEAD, 0xBEEF)
	got := f.payload()
	if !bytes.Equal(got, want) {
		t.Fatalf("single-entry frame differs from AppendReplicaForward:\n got %x\nwant %x", got, want)
	}
	dec, err := DecodeReplicaForward(got)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Epoch != 42 || dec.Shard != 7 || len(dec.Entries) != 1 || dec.Entries[0] != (ReplicaEntry{Key: 0xDEAD, Val: 0xBEEF}) {
		t.Fatalf("decoded %+v", dec)
	}
}

// TestReplFrameMultiEntry: an N-entry frame round-trips and matches the
// reference encoder entry for entry.
func TestReplFrameMultiEntry(t *testing.T) {
	ref := ReplicaForward{Epoch: 9, Shard: 3}
	f := leaseReplFrame(9, 3, 5)
	defer f.release()
	for i := uint64(0); i < 5; i++ {
		f.add(i*3, i*7+1)
		ref.Entries = append(ref.Entries, ReplicaEntry{Key: i * 3, Val: i*7 + 1})
	}
	if got, want := f.payload(), AppendReplicaForward(nil, ref); !bytes.Equal(got, want) {
		t.Fatalf("multi-entry frame differs from AppendReplicaForward:\n got %x\nwant %x", got, want)
	}
}

// TestGroupCommitCoalesces: concurrent puts to one shard ride shared
// FRP1 frames — the batch-entries histogram must show multi-entry
// flushes — and every acked put is on the backup (fingerprints equal).
func TestGroupCommitCoalesces(t *testing.T) {
	const writers = 8
	lc := newGroupCommitCluster(t, 3, 4, 1, writers+2)
	for _, svc := range lc.services {
		svc.Repl = ReplTuning{FlushDelay: 50 * time.Millisecond}
	}
	m := lc.coord.Map()
	shard := 0
	keys := shardKeys(m, shard, writers)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rt := lc.router.Thread()
			errs[w] = rt.Put(keys[w], uint64(w)+1)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("put %d: %v", w, err)
		}
	}
	primary, backup := m.Owner(shard), m.BackupsOf(shard)[0]
	if pf, bf := lc.services[primary].ShardFingerprint(shard), lc.services[backup].ShardFingerprint(shard); pf != bf {
		t.Fatalf("primary fingerprint %#x != backup fingerprint %#x after acked puts", pf, bf)
	}
	tl := lc.services[primary].Node().Telemetry()
	snap := tl.Hist("cluster.repl_batch_entries").Snapshot()
	if snap.Count == 0 || snap.Sum < writers {
		t.Fatalf("batch hist count=%d sum=%d; want all %d puts forwarded", snap.Count, snap.Sum, writers)
	}
	if snap.Sum <= snap.Count {
		t.Fatalf("batch hist count=%d sum=%d: no coalescing happened", snap.Count, snap.Sum)
	}
	if got := tl.Counter("cluster.repl_batches").Load(); got == 0 {
		t.Fatal("repl_batches counter never moved")
	}
	if pending := tl.Gauge("cluster.repl_log_pending").Load(); pending != 0 {
		t.Fatalf("repl_log_pending = %d after quiesce, want 0", pending)
	}
}

// TestGroupCommitBackupDeathMidBatch: the backup drops off the network
// while a batch is still gathering — every put the batch carried must
// NACK (none ack), because a group commit is all-or-nothing per backup.
func TestGroupCommitBackupDeathMidBatch(t *testing.T) {
	const writers = 4
	lc := newGroupCommitCluster(t, 3, 4, 1, writers+2)
	m := lc.coord.Map()
	shard := 0
	primary, backup := m.Owner(shard), m.BackupsOf(shard)[0]
	for _, svc := range lc.services {
		svc.Repl = ReplTuning{FlushDelay: 60 * time.Millisecond}
		svc.ForwardBudget = 100 * time.Millisecond
	}
	keys := shardKeys(m, shard, writers)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rt := lc.router.Thread()
			errs[w] = rt.Put(keys[w], uint64(w)+1)
		}(w)
	}
	// Let the puts join the pending batch, then cut the primary–backup
	// link before the flush deadline fires.
	time.Sleep(15 * time.Millisecond)
	fab := lc.nw.Fabric()
	fab.SetLinkDown(primary, backup, true)
	fab.SetLinkDown(backup, primary, true)
	wg.Wait()
	for w, err := range errs {
		if err == nil {
			t.Fatalf("put %d acked although its batch could not reach the backup", w)
		}
	}
}

// TestGroupCommitFlushDeadlineSingleWaiter: with a flush delay set, a
// lone put waits out the first-waiter deadline and then commits — the
// deadline path must both fire and succeed with exactly one op aboard.
func TestGroupCommitFlushDeadlineSingleWaiter(t *testing.T) {
	const delay = 40 * time.Millisecond
	lc := newGroupCommitCluster(t, 3, 4, 1, 4)
	for _, svc := range lc.services {
		svc.Repl = ReplTuning{FlushDelay: delay}
	}
	m := lc.coord.Map()
	shard := 0
	key := shardKeys(m, shard, 1)[0]
	rt := lc.router.Thread()
	start := time.Now()
	if err := rt.Put(key, 1); err != nil {
		t.Fatalf("put: %v", err)
	}
	if elapsed := time.Since(start); elapsed < delay/2 {
		t.Fatalf("put acked after %v; the %v flush deadline cannot have gated it", elapsed, delay)
	}
	primary, backup := m.Owner(shard), m.BackupsOf(shard)[0]
	if pf, bf := lc.services[primary].ShardFingerprint(shard), lc.services[backup].ShardFingerprint(shard); pf != bf {
		t.Fatalf("primary fingerprint %#x != backup fingerprint %#x", pf, bf)
	}
	snap := lc.services[primary].Node().Telemetry().Hist("cluster.repl_batch_entries").Snapshot()
	if snap.Count != 1 || snap.Sum != 1 {
		t.Fatalf("batch hist count=%d sum=%d, want exactly one single-entry batch", snap.Count, snap.Sum)
	}
}

// TestReplicateTypedErrors: the replication error surface is
// inspectable — a fence NACK satisfies errors.Is(ErrReplicaFenced) and
// errors.As exposes which backup refused; a transport failure carries
// no status and is not a fence.
func TestReplicateTypedErrors(t *testing.T) {
	lc := newReplicatedCluster(t, 3, 8, 1, fabric.Config{})
	m := lc.coord.Map()
	shard := 0
	primary, backup := m.Owner(shard), m.BackupsOf(shard)[0]

	newer := m.Clone()
	newer.Epoch += 5
	lc.services[backup].InstallMap(newer)
	err := lc.services[primary].replicate(backup, m.Epoch, shard, 1, 1)
	if !errors.Is(err, ErrReplicaFenced) {
		t.Fatalf("stale-epoch replicate error = %v, want ErrReplicaFenced", err)
	}
	var re *ReplError
	if !errors.As(err, &re) {
		t.Fatalf("fence error %v does not unwrap to *ReplError", err)
	}
	if re.Backup != backup || re.Status != core.StatusWrongShard {
		t.Fatalf("fence ReplError = %+v, want backup %d status %d", re, backup, core.StatusWrongShard)
	}

	// Transport failure: the backup is unreachable, so the error wraps
	// the transport cause, not a fence.
	fab := lc.nw.Fabric()
	fab.SetLinkDown(primary, backup, true)
	fab.SetLinkDown(backup, primary, true)
	lc.services[primary].ForwardBudget = 50 * time.Millisecond
	err = lc.services[primary].replicate(backup, newer.Epoch, shard, 2, 2)
	if err == nil {
		t.Fatal("replicate to an unreachable backup succeeded")
	}
	if errors.Is(err, ErrReplicaFenced) || errors.Is(err, ErrReplicaNACK) {
		t.Fatalf("transport failure misclassified as a protocol NACK: %v", err)
	}
	re = nil
	if !errors.As(err, &re) {
		t.Fatalf("transport error %v does not unwrap to *ReplError", err)
	}
	if re.Backup != backup || re.Status != 0 {
		t.Fatalf("transport ReplError = %+v, want backup %d status 0", re, backup)
	}
}

// TestGroupCommitReadGate: a get that observes a put still gathering in
// a replication log must not reply until that put's batch is durable —
// otherwise the primary could die inside the flush window having shown
// a client a value no backup holds. The get here lands mid-window and
// must be held until the flush deadline resolves the put.
func TestGroupCommitReadGate(t *testing.T) {
	const delay = 60 * time.Millisecond
	lc := newGroupCommitCluster(t, 3, 4, 1, 6)
	for _, svc := range lc.services {
		svc.Repl = ReplTuning{FlushDelay: delay}
	}
	m := lc.coord.Map()
	shard := 0
	primary := m.Owner(shard)
	key := shardKeys(m, shard, 1)[0]
	empty := lc.services[primary].ShardFingerprint(shard)

	putStart := time.Now()
	putDone := make(chan error, 1)
	go func() {
		rt := lc.router.Thread()
		putDone <- rt.Put(key, 7)
	}()
	// Wait until the put has applied locally (fingerprint moved) but its
	// batch is still gathering, then read the key.
	for lc.services[primary].ShardFingerprint(shard) == empty {
		if time.Since(putStart) > delay/2 {
			t.Fatal("put never applied locally")
		}
		time.Sleep(time.Millisecond)
	}
	readStart := time.Now()
	rt := lc.router.Thread()
	v, found, err := rt.Get(key)
	gated := time.Since(readStart)
	if err != nil || !found || v != 7 {
		t.Fatalf("get = (%d, %v, %v), want (7, true, nil)", v, found, err)
	}
	if gated < delay/4 {
		t.Fatalf("get replied after %v; an uncommitted put was pending, the read cannot have cleared the %v flush window that fast", gated, delay)
	}
	if err := <-putDone; err != nil {
		t.Fatalf("put: %v", err)
	}
	if got := lc.services[primary].Node().Telemetry().Counter("cluster.read_gate_waits").Load(); got == 0 {
		t.Fatal("read_gate_waits counter never moved although the get was gated")
	}
}
