package cluster

import (
	"errors"
	"sync"
	"time"

	"flock/internal/core"
	"flock/internal/fabric"
	"flock/internal/resilience"
	"flock/internal/telemetry"
)

// Membership runs the failure detector over the router's member set:
// one lightweight ping RPC per member per probe round, fed into a
// per-member resilience.Detector. A drain pushback (ErrDraining) marks
// the member draining rather than suspect — it is healthy, just
// refusing work. State transitions fan out to an optional OnChange
// callback, which is where a coordinator hangs rebalancing.
//
// Probing is pull-based and explicit: ProbeOnce runs one deterministic
// round (tests drive it tick by tick), Start runs rounds on a ticker.
type Membership struct {
	r *Router

	// ProbeTimeout bounds one ping (default 50ms). SuspectAfter /
	// DeadAfter configure every member's detector (zero → detector
	// defaults).
	ProbeTimeout time.Duration
	SuspectAfter int
	DeadAfter    int

	// Clock is the timebase Start ticks on (nil → wall clock). Tests
	// inject a SimClock so suspect/dead escalation runs on virtual time.
	Clock Clock

	// Probe, when set before probing starts, replaces the RPC ping
	// transport for a single member probe. A nil return counts as
	// healthy, core.ErrDraining as draining, any other error as a miss.
	// Virtual-clock tests use it to script link state without paying the
	// RPC deadline wait a downed fabric link costs.
	Probe func(id fabric.NodeID) error

	// OnChange, when set before probing starts, is called (outside
	// Membership's lock) for every member state transition.
	OnChange func(id fabric.NodeID, state resilience.MemberState)

	mu      sync.Mutex
	dets    map[fabric.NodeID]*resilience.Detector
	threads map[fabric.NodeID]*core.Thread

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	suspects *telemetry.Counter
}

// NewMembership builds the detector set over the router's current map
// members, attaches itself to the router (so routing steers around
// dead/draining members), and registers cluster.member_suspects and
// cluster.live_members on the router node's telemetry registry.
func NewMembership(r *Router) *Membership {
	m := &Membership{
		r:        r,
		dets:     make(map[fabric.NodeID]*resilience.Detector),
		threads:  make(map[fabric.NodeID]*core.Thread),
		stop:     make(chan struct{}),
		suspects: r.Node().Telemetry().Counter("cluster.member_suspects"),
	}
	for _, id := range r.Map().Members {
		m.dets[id] = &resilience.Detector{SuspectAfter: m.SuspectAfter, DeadAfter: m.DeadAfter}
	}
	r.Node().Telemetry().GaugeFunc("cluster.live_members", func() int64 {
		n := int64(0)
		m.mu.Lock()
		for _, d := range m.dets {
			if d.State() == resilience.MemberLive {
				n++
			}
		}
		m.mu.Unlock()
		return n
	})
	r.attachMembership(m)
	return m
}

// State returns the detector's verdict for one member; unknown members
// read as live.
func (m *Membership) State(id fabric.NodeID) resilience.MemberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d, ok := m.dets[id]; ok {
		return d.State()
	}
	return resilience.MemberLive
}

// Live returns the members currently considered routable (live or
// suspect — suspects still get traffic; only dead/draining are
// avoided), sorted by NodeID.
func (m *Membership) Live() []fabric.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []fabric.NodeID
	for _, id := range m.r.Map().Members {
		d := m.dets[id]
		if d == nil || d.State() == resilience.MemberLive || d.State() == resilience.MemberSuspect {
			out = append(out, id)
		}
	}
	return out
}

func (m *Membership) probeTimeout() time.Duration {
	if m.ProbeTimeout > 0 {
		return m.ProbeTimeout
	}
	return 50 * time.Millisecond
}

func (m *Membership) pingThread(id fabric.NodeID) (*core.Thread, error) {
	m.mu.Lock()
	th, ok := m.threads[id]
	m.mu.Unlock()
	if ok {
		return th, nil
	}
	c, err := m.r.conn(id)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if th, ok := m.threads[id]; ok {
		return th, nil
	}
	th = c.RegisterThread()
	m.threads[id] = th
	return th, nil
}

// probe runs one member's health check: the injected Probe transport
// when set, otherwise one RPCPing under the probe deadline.
func (m *Membership) probe(id fabric.NodeID) error {
	if m.Probe != nil {
		return m.Probe(id)
	}
	th, err := m.pingThread(id)
	if err != nil {
		return err
	}
	resp, err := th.CallWithDeadline(RPCPing, nil, m.probeTimeout())
	if err == nil {
		resp.Release()
		return nil
	}
	if errors.Is(err, core.ErrConnClosed) {
		// The conn died for good (e.g. a long outage exhausted its
		// recovery); drop it so the next probe re-dials — a dead
		// member must be able to come back.
		m.mu.Lock()
		delete(m.threads, id)
		m.mu.Unlock()
		m.r.invalidate(id, th.Conn())
	}
	return err
}

// ProbeOnce pings every member once and returns the post-round states.
// It is the deterministic unit Start loops over.
func (m *Membership) ProbeOnce() map[fabric.NodeID]resilience.MemberState {
	type change struct {
		id    fabric.NodeID
		state resilience.MemberState
	}
	var changes []change
	out := make(map[fabric.NodeID]resilience.MemberState)
	for _, id := range m.r.Map().Members {
		var next resilience.MemberState
		err := m.probe(id)
		m.mu.Lock()
		d := m.dets[id]
		if d == nil {
			d = &resilience.Detector{SuspectAfter: m.SuspectAfter, DeadAfter: m.DeadAfter}
			m.dets[id] = d
		}
		prev := d.State()
		switch {
		case err == nil:
			next = d.Observe(true)
		case errors.Is(err, core.ErrDraining):
			next = d.ObserveDraining()
		default:
			next = d.Observe(false)
		}
		m.mu.Unlock()
		out[id] = next
		if next != prev {
			if next == resilience.MemberSuspect || next == resilience.MemberDead {
				m.suspects.Inc()
			}
			changes = append(changes, change{id, next})
		}
	}
	for _, c := range changes {
		if m.OnChange != nil {
			m.OnChange(c.id, c.state)
		}
	}
	return out
}

// Start probes on the given interval until Stop, ticking on m.Clock
// (wall clock when nil).
func (m *Membership) Start(interval time.Duration) {
	clk := m.Clock
	if clk == nil {
		clk = wallClock{}
	}
	ticks, stopTicks := clk.Ticker(interval)
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer stopTicks()
		for {
			select {
			case <-m.stop:
				return
			case <-ticks:
				m.ProbeOnce()
			}
		}
	}()
}

// Stop halts probing (idempotent).
func (m *Membership) Stop() {
	m.once.Do(func() { close(m.stop) })
	m.wg.Wait()
}
