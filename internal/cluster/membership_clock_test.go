package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"flock/internal/core"
	"flock/internal/fabric"
	"flock/internal/resilience"
)

// scriptedProbe is a Probe transport for virtual-clock tests: per-member
// health toggled by the test, no RPCs, no deadlines, no wall time.
type scriptedProbe struct {
	mu   sync.Mutex
	down map[fabric.NodeID]bool
	drng map[fabric.NodeID]bool
}

func (p *scriptedProbe) set(id fabric.NodeID, down bool) {
	p.mu.Lock()
	p.down[id] = down
	p.mu.Unlock()
}

func (p *scriptedProbe) probe(id fabric.NodeID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down[id] {
		return errors.New("scripted: down")
	}
	if p.drng[id] {
		return core.ErrDraining
	}
	return nil
}

// TestMembershipEscalatesOnVirtualClock is the deflaked replacement for
// ticker-driven detector tests: Start runs on a SimClock, the probe
// transport is scripted, and the suspect → dead escalation that costs
// real seconds on a wall ticker happens in zero wall time, bit-identical
// under -race.
//
// SimClock's delivery contract makes the assertions deterministic: each
// tick's send blocks until the consumer goroutine accepts it, and the
// consumer only returns to its select after ProbeOnce completes — so
// after Advance delivers N+1 ticks, at least N full probe rounds have
// finished. Advancing one tick beyond the round count needed is all the
// slack the test ever takes.
func TestMembershipEscalatesOnVirtualClock(t *testing.T) {
	lc := newLiveCluster(t, 3, 8, fabric.Config{})
	probe := &scriptedProbe{down: map[fabric.NodeID]bool{}, drng: map[fabric.NodeID]bool{}}
	clk := NewSimClock()
	lc.mems.Clock = clk
	lc.mems.Probe = probe.probe

	const interval = 50 * time.Millisecond
	advance := func(rounds int) {
		// One extra tick so every counted round's ProbeOnce has finished
		// (the +1th tick cannot be accepted before it does).
		clk.Advance(time.Duration(rounds+1) * interval)
	}
	lc.mems.Start(interval)
	defer lc.mems.Stop()

	advance(2)
	if st := lc.mems.State(1); st != resilience.MemberLive {
		t.Fatalf("healthy member probes as %v", st)
	}

	// Down: the detector walks live → suspect → dead over missed rounds.
	probe.set(1, true)
	advance(2)
	if st := lc.mems.State(1); st != resilience.MemberSuspect {
		t.Fatalf("after 2 missed rounds: %v, want suspect", st)
	}
	advance(6)
	if st := lc.mems.State(1); st != resilience.MemberDead {
		t.Fatalf("after 8 missed rounds: %v, want dead", st)
	}
	if live := lc.mems.Live(); len(live) != 2 {
		t.Fatalf("live set with one dead member = %v", live)
	}

	// Draining pushback is not death.
	probe.mu.Lock()
	probe.drng[2] = true
	probe.mu.Unlock()
	advance(1)
	if st := lc.mems.State(2); st != resilience.MemberDraining {
		t.Fatalf("draining member probes as %v", st)
	}

	// Revival: one good probe round flips a dead member back to live.
	probe.set(1, false)
	advance(1)
	if st := lc.mems.State(1); st != resilience.MemberLive {
		t.Fatalf("revived member probes as %v", st)
	}
}

// TestMembershipOnChangeVirtualClock: state transitions fan out exactly
// once per change, in probe order, on the virtual timeline.
func TestMembershipOnChangeVirtualClock(t *testing.T) {
	lc := newLiveCluster(t, 2, 8, fabric.Config{})
	probe := &scriptedProbe{down: map[fabric.NodeID]bool{}, drng: map[fabric.NodeID]bool{}}
	clk := NewSimClock()
	lc.mems.Clock = clk
	lc.mems.Probe = probe.probe

	var mu sync.Mutex
	transitions := []resilience.MemberState{}
	lc.mems.OnChange = func(id fabric.NodeID, st resilience.MemberState) {
		if id != 1 {
			return
		}
		mu.Lock()
		transitions = append(transitions, st)
		mu.Unlock()
	}

	const interval = time.Millisecond
	lc.mems.Start(interval)
	probe.set(1, true)
	clk.Advance(12 * interval)
	lc.mems.Stop() // consumer stopped: transitions is stable to read

	want := []resilience.MemberState{resilience.MemberSuspect, resilience.MemberDead}
	mu.Lock()
	defer mu.Unlock()
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i, st := range want {
		if transitions[i] != st {
			t.Fatalf("transition %d = %v, want %v", i, transitions[i], st)
		}
	}
}
