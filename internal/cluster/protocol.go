package cluster

import "encoding/binary"

// RPC IDs the cluster layer registers on every member node. They live
// in a high range so tenants layered on the same nodes can use low IDs.
const (
	// RPCPing is the membership probe. Empty request; reply is the
	// member's 8-byte map epoch. A draining member NACKs it at admission
	// (StatusDraining), which the failure detector reads as "healthy but
	// decommissioning".
	RPCPing = 0xC1
	// RPCKV is the sharded KV data path. Request: op(1) key(8) val(8).
	// OK replies carry the epoch prefix; a mis-routed request is NACKed
	// with StatusWrongShard and the server's encoded map as payload.
	RPCKV = 0xC2
	// RPCMigrate applies a bulk chunk of key/value pairs with guarded
	// (take-the-max) semantics. Request: shard(4) n(4) then n × key(8)
	// val(8). Used both for snapshot copy and for dual-written forwards
	// (a chunk of one). Reply is the epoch prefix.
	RPCMigrate = 0xC3
	// RPCMap fetches the member's current encoded shard map. Empty
	// request; the reply is the map itself (which carries its epoch), no
	// prefix.
	RPCMap = 0xC4
	// RPCReplicate is the primary→backup replication forward: an FRP1
	// frame (see wire.go) applied with guarded take-the-max semantics.
	// The OK reply is a ReplicaAck; a backup whose map says the sender is
	// no longer a replica of the shard NACKs StatusWrongShard with its
	// newer encoded map, fencing deposed primaries.
	RPCReplicate = 0xC5
)

// KV ops.
const (
	OpGet = 0x0
	OpPut = 0x1
)

// Reply layout: every cluster-service reply except RPCMap starts with
// the serving node's 8-byte little-endian map epoch, so routers notice
// staleness on every response, not only on NACKs.
const epochPrefixLen = 8

func appendEpoch(b []byte, epoch uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, epoch)
}

// EncodeKVReq builds an RPCKV request.
func EncodeKVReq(op byte, key, val uint64) []byte {
	b := make([]byte, 17)
	b[0] = op
	binary.LittleEndian.PutUint64(b[1:9], key)
	binary.LittleEndian.PutUint64(b[9:17], val)
	return b
}

func decodeKVReq(b []byte) (op byte, key, val uint64, ok bool) {
	if len(b) != 17 {
		return 0, 0, 0, false
	}
	return b[0], binary.LittleEndian.Uint64(b[1:9]), binary.LittleEndian.Uint64(b[9:17]), true
}

// chunk layout constants for RPCMigrate.
const (
	chunkHeaderLen = 8  // shard(4) n(4)
	chunkEntryLen  = 16 // key(8) val(8)
)
