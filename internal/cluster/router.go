package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flock/internal/core"
	"flock/internal/fabric"
	"flock/internal/resilience"
	"flock/internal/telemetry"
)

// ErrNoRoute reports that a call exhausted its redirect budget without
// landing on the shard's owner.
var ErrNoRoute = errors.New("cluster: no route to shard owner")

// Router is the shard-aware client: one flock Conn per member, calls
// routed by key through the current shard map. It self-corrects from
// two signals — the epoch piggybacked on every OK reply (stale? fetch
// the map) and StatusWrongShard NACKs (which carry the newer map
// inline). Per-destination circuit breaking and budgeted retries come
// from the underlying core connections (the client node's
// BreakerThreshold / RetryMaxAttempts options apply per member conn);
// the router adds placement awareness and the failure detector on top.
type Router struct {
	node *core.Node

	mu    sync.Mutex
	conns map[fabric.NodeID]*core.Conn

	cur atomic.Pointer[ShardMap]

	// members guards the Membership attachment.
	memMu      sync.Mutex
	membership *Membership

	// CallBudget bounds one routed attempt (default 250ms);
	// MaxRedirects bounds the redirect loop (default 10).
	CallBudget   time.Duration
	MaxRedirects int

	redirects *telemetry.Counter
}

// NewRouter builds a router on the given client node with the initial
// map. Member connections are dialed lazily on first use, so a member
// that is down at construction does not fail the router.
func NewRouter(node *core.Node, initial *ShardMap) *Router {
	r := &Router{
		node:      node,
		conns:     make(map[fabric.NodeID]*core.Conn),
		redirects: node.Telemetry().Counter("cluster.wrong_shard_redirects"),
	}
	r.cur.Store(initial)
	return r
}

// Node returns the client node the router dials from.
func (r *Router) Node() *core.Node { return r.node }

// Map returns the router's current shard map.
func (r *Router) Map() *ShardMap { return r.cur.Load() }

// Install adopts m if its epoch is newer. Returns whether it switched.
func (r *Router) Install(m *ShardMap) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur := r.cur.Load(); cur != nil && m.Epoch <= cur.Epoch {
		return false
	}
	r.cur.Store(m)
	return true
}

// Redirects reports the wrong-shard redirect count (also exported as
// the cluster.wrong_shard_redirects telemetry counter).
func (r *Router) Redirects() uint64 { return r.redirects.Load() }

func (r *Router) conn(id fabric.NodeID) (*core.Conn, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.conns[id]; ok {
		return c, nil
	}
	c, err := r.node.Connect(id)
	if err != nil {
		return nil, err
	}
	r.conns[id] = c
	return c, nil
}

// invalidate drops a member's cached connection after it failed
// permanently (ErrConnClosed), so the next use re-dials. The stale
// *Conn is only removed if it is still the cached one, so concurrent
// invalidators don't tear down a fresh replacement.
func (r *Router) invalidate(id fabric.NodeID, stale *core.Conn) {
	r.mu.Lock()
	if r.conns[id] == stale {
		delete(r.conns, id)
	}
	r.mu.Unlock()
	stale.Close()
}

func (r *Router) attachMembership(m *Membership) {
	r.memMu.Lock()
	r.membership = m
	r.memMu.Unlock()
}

// memberState consults the attached failure detector; with none
// attached every member counts as live.
func (r *Router) memberState(id fabric.NodeID) resilience.MemberState {
	r.memMu.Lock()
	m := r.membership
	r.memMu.Unlock()
	if m == nil {
		return resilience.MemberLive
	}
	return m.State(id)
}

func (r *Router) callBudget() time.Duration {
	if r.CallBudget > 0 {
		return r.CallBudget
	}
	return 250 * time.Millisecond
}

func (r *Router) maxRedirects() int {
	if r.MaxRedirects > 0 {
		return r.MaxRedirects
	}
	return 10
}

// Close closes the router's member connections.
func (r *Router) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.conns {
		c.Close()
	}
	r.conns = map[fabric.NodeID]*core.Conn{}
}

// Thread returns a per-goroutine routing handle. Like core.Thread, a
// RouterThread must not be shared between goroutines.
func (r *Router) Thread() *RouterThread {
	return &RouterThread{r: r, threads: make(map[fabric.NodeID]*core.Thread)}
}

// RouterThread is one goroutine's shard-routed call handle: a lazily
// created core.Thread per member plus the redirect state machine.
type RouterThread struct {
	r       *Router
	threads map[fabric.NodeID]*core.Thread
}

func (rt *RouterThread) thread(id fabric.NodeID) (*core.Thread, error) {
	if th, ok := rt.threads[id]; ok {
		return th, nil
	}
	c, err := rt.r.conn(id)
	if err != nil {
		return nil, err
	}
	th := c.RegisterThread()
	rt.threads[id] = th
	return th, nil
}

// Call routes one RPC by key: it sends to the current map's owner of
// the key's shard, follows WrongShard NACKs (installing the newer map
// they carry), refreshes the map when a reply's epoch piggyback is
// newer, and steers around members the failure detector marks dead or
// draining. On success the returned Response's Data has the epoch
// prefix already stripped.
func (rt *RouterThread) Call(rpcID uint32, key uint64, payload []byte) (core.Response, error) {
	var lastErr error
	for attempt := 0; attempt < rt.r.maxRedirects(); attempt++ {
		if attempt > 0 {
			// A redirect storm usually means a handoff is propagating;
			// yield briefly instead of hammering.
			time.Sleep(500 * time.Microsecond)
		}
		m := rt.r.Map()
		owner := m.OwnerOfKey(key)
		if st := rt.r.memberState(owner); st == resilience.MemberDead || st == resilience.MemberDraining {
			// The owner is unroutable; the map may have moved on without
			// us. Fetch the freshest map from any live member and retry.
			if rt.refresh() {
				continue
			}
		}
		th, err := rt.thread(owner)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := th.CallWithDeadline(rpcID, payload, rt.r.callBudget())
		if err != nil {
			rt.noteErr(owner, err)
			lastErr = err
			continue
		}
		switch resp.Status {
		case core.StatusOK:
			if len(resp.Data) < epochPrefixLen {
				resp.Release()
				return core.Response{}, fmt.Errorf("cluster: short reply (%d bytes)", len(resp.Data))
			}
			epoch := binary.LittleEndian.Uint64(resp.Data[:epochPrefixLen])
			if epoch > rt.r.Map().Epoch {
				rt.refreshFrom(owner)
			}
			resp.Data = resp.Data[epochPrefixLen:]
			return resp, nil
		case core.StatusWrongShard:
			if nm, err := DecodeShardMap(resp.Data); err == nil {
				rt.r.Install(nm)
			}
			rt.r.redirects.Inc()
			resp.Release()
			lastErr = ErrNoRoute
			continue
		default:
			return resp, nil
		}
	}
	if lastErr == nil {
		lastErr = ErrNoRoute
	}
	return core.Response{}, fmt.Errorf("cluster: call for key %#x failed: %w", key, lastErr)
}

// noteErr reacts to a call failure: a permanently closed connection is
// dropped (with this thread's handle on it) so the next attempt
// re-dials the member.
func (rt *RouterThread) noteErr(id fabric.NodeID, err error) {
	if !errors.Is(err, core.ErrConnClosed) {
		return
	}
	if th, ok := rt.threads[id]; ok {
		delete(rt.threads, id)
		rt.r.invalidate(id, th.Conn())
	}
}

// refreshFrom fetches and installs the map from one member.
func (rt *RouterThread) refreshFrom(id fabric.NodeID) bool {
	th, err := rt.thread(id)
	if err != nil {
		return false
	}
	resp, err := th.CallWithDeadline(RPCMap, nil, rt.r.callBudget())
	if err != nil {
		rt.noteErr(id, err)
		return false
	}
	defer resp.Release()
	if resp.Status != core.StatusOK {
		return false
	}
	m, err := DecodeShardMap(resp.Data)
	if err != nil {
		return false
	}
	return rt.r.Install(m)
}

// refresh tries every live member until one yields a newer map.
func (rt *RouterThread) refresh() bool {
	m := rt.r.Map()
	for _, id := range m.Members {
		if st := rt.r.memberState(id); st == resilience.MemberDead || st == resilience.MemberDraining {
			continue
		}
		if rt.refreshFrom(id) {
			return true
		}
	}
	return false
}

// Get reads a key from the sharded KV. Missing keys read as (0, false).
func (rt *RouterThread) Get(key uint64) (uint64, bool, error) {
	resp, err := rt.Call(RPCKV, key, EncodeKVReq(OpGet, key, 0))
	if err != nil {
		return 0, false, err
	}
	defer resp.Release()
	if resp.Status != core.StatusOK {
		return 0, false, fmt.Errorf("cluster: get status %d", resp.Status)
	}
	if len(resp.Data) != 9 {
		return 0, false, fmt.Errorf("cluster: bad get reply length %d", len(resp.Data))
	}
	return binary.LittleEndian.Uint64(resp.Data[1:9]), resp.Data[0] == 1, nil
}

// Put writes a key into the sharded KV. val must be non-decreasing per
// key (the service's guarded-apply contract).
func (rt *RouterThread) Put(key, val uint64) error {
	resp, err := rt.Call(RPCKV, key, EncodeKVReq(OpPut, key, val))
	if err != nil {
		return err
	}
	defer resp.Release()
	if resp.Status != core.StatusOK {
		return fmt.Errorf("cluster: put status %d", resp.Status)
	}
	return nil
}
