package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flock/internal/core"
	"flock/internal/fabric"
	"flock/internal/kvstore"
	"flock/internal/telemetry"
)

// Service is the member-side half of the cluster layer: a sharded KV
// served out of per-shard kvstore partitions, plus the migration
// machinery that lets the coordinator move a shard to another member
// while both keep serving.
//
// Value contract: values are single 8-byte little-endian words and each
// key's value sequence must be non-decreasing (clients encode a
// per-key version/sequence into the value). That is what makes every
// write path a guarded take-the-max apply, which in turn makes snapshot
// chunks, dual-written forwards and client retries commute — the
// property live migration leans on instead of a distributed lock.
type Service struct {
	node *core.Node

	// mu orders map installs and migration state transitions.
	mu  sync.Mutex
	cur atomic.Pointer[ShardMap]

	shards []*shardSlot

	fwdMu sync.Mutex
	fwd   map[fabric.NodeID]*fwdLink

	// ForwardBudget bounds one dual-write forward RPC; CopyBudget bounds
	// one snapshot chunk RPC. Zero means 250ms.
	ForwardBudget time.Duration
	CopyBudget    time.Duration

	// ServiceDelay, when positive, makes every KV op consume that much
	// wall-clock before it is served — an emulated per-op service cost
	// for capacity experiments, so aggregate goodput scales with member
	// count (worker-seconds) rather than with how fast one host can spin.
	ServiceDelay time.Duration

	// Repl tunes the group-commit replication pipeline (flush policy and
	// in-flight depth per backup stream). Set before traffic, like the
	// budgets above; see ReplTuning.
	Repl ReplTuning

	// streams holds the per-(shard, backup) replication logs and their
	// forwarder goroutines, created lazily on the first replicated put.
	streamMu      sync.Mutex
	streams       map[streamKey]*replStream
	streamsClosed bool
	streamWG      sync.WaitGroup

	// pendPuts indexes, per key, every put whose group commit has not
	// resolved yet — the read-side commit gate (see OpGet in handleKV).
	pendMu   sync.Mutex
	pendPuts map[uint64][]*replOp

	moves        *telemetry.Counter
	replFwds     *telemetry.Counter
	promotions   *telemetry.Counter
	batches      *telemetry.Counter
	migDur       *telemetry.Hist
	readGate     *telemetry.Counter
	batchEntries *telemetry.Hist
	flushNS      *telemetry.Hist
	logPending   *telemetry.Gauge
}

// shardSlot is one shard's serving state on this member.
type shardSlot struct {
	// mu is held shared by every request touching the shard and
	// exclusively by migration state transitions, so a transition
	// (copying on/off, handoff) waits out in-flight requests and no
	// request straddles it.
	mu      sync.RWMutex
	store   *kvstore.Store
	copying bool
	target  fabric.NodeID
	started time.Time
}

// fwdLink is a client connection to a migration target with a free list
// of threads, since forwards run concurrently on worker goroutines and
// a core.Thread is single-goroutine.
type fwdLink struct {
	conn *core.Conn
	mu   sync.Mutex
	free []*core.Thread
}

func (f *fwdLink) call(rpcID uint32, payload []byte, budget time.Duration) (core.Response, error) {
	f.mu.Lock()
	var th *core.Thread
	if n := len(f.free); n > 0 {
		th = f.free[n-1]
		f.free = f.free[:n-1]
	}
	f.mu.Unlock()
	if th == nil {
		th = f.conn.RegisterThread()
	}
	resp, err := th.CallWithDeadline(rpcID, payload, budget)
	f.mu.Lock()
	f.free = append(f.free, th)
	f.mu.Unlock()
	return resp, err
}

// NewService stands the cluster layer up on node: per-shard stores for
// every shard in m (a member must be able to receive any shard later),
// the RPC handlers, and the cluster telemetry series on the node's
// registry. storeCap is the per-shard slot capacity (0 → 1024). The
// node must run with Workers > 0: dual-write forwards issue RPCs from
// inside a handler, which deadlocks a dispatcher-executed setup.
func NewService(node *core.Node, m *ShardMap, storeCap int) (*Service, error) {
	if node.Options().Workers <= 0 {
		return nil, errors.New("cluster: service node needs Options.Workers > 0 (forwards call RPCs from handlers)")
	}
	if storeCap <= 0 {
		storeCap = 1024
	}
	s := &Service{
		node:         node,
		shards:       make([]*shardSlot, m.Shards),
		fwd:          make(map[fabric.NodeID]*fwdLink),
		streams:      make(map[streamKey]*replStream),
		pendPuts:     make(map[uint64][]*replOp),
		moves:        node.Telemetry().Counter("cluster.shard_moves"),
		replFwds:     node.Telemetry().Counter("cluster.replica_forwards"),
		promotions:   node.Telemetry().Counter("cluster.promotions"),
		batches:      node.Telemetry().Counter("cluster.repl_batches"),
		readGate:     node.Telemetry().Counter("cluster.read_gate_waits"),
		migDur:       node.Telemetry().Hist("cluster.migration_duration_ns"),
		batchEntries: node.Telemetry().Hist("cluster.repl_batch_entries"),
		flushNS:      node.Telemetry().Hist("cluster.repl_flush_ns"),
		logPending:   node.Telemetry().Gauge("cluster.repl_log_pending"),
	}
	for i := range s.shards {
		st, err := kvstore.New(kvstore.NewMem(kvstore.ArenaSize(storeCap, 8)), storeCap, 8)
		if err != nil {
			return nil, err
		}
		s.shards[i] = &shardSlot{store: st}
	}
	s.cur.Store(m)
	// KV and migrate ops run on the worker pool (they can block: nested
	// replication forwards, emulated service time). Pings, map fetches,
	// and replication applies take the inline dispatcher lane — they are
	// short, never issue RPCs of their own, and must stay responsive even
	// when every worker is parked in a forward (otherwise replicated puts
	// across members deadlock the pools against each other, and probes
	// time out exactly when the cluster is busiest).
	node.RegisterStatusHandler(RPCKV, s.handleKV)
	node.RegisterStatusHandler(RPCMigrate, s.handleMigrate)
	node.RegisterInlineStatusHandler(RPCPing, s.handlePing)
	node.RegisterInlineStatusHandler(RPCMap, s.handleMap)
	node.RegisterInlineStatusHandler(RPCReplicate, s.handleReplicate)
	return s, nil
}

// Node returns the member node the service runs on.
func (s *Service) Node() *core.Node { return s.node }

// Map returns the service's current shard map.
func (s *Service) Map() *ShardMap { return s.cur.Load() }

// InstallMap adopts m if its epoch is newer than the current one.
func (s *Service) InstallMap(m *ShardMap) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.installLocked(m)
}

func (s *Service) installLocked(m *ShardMap) bool {
	if cur := s.cur.Load(); cur != nil && m.Epoch <= cur.Epoch {
		return false
	}
	s.cur.Store(m)
	return true
}

func (s *Service) budget(d time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return 250 * time.Millisecond
}

func (s *Service) wrongShard(m *ShardMap) ([]byte, uint32) {
	return m.Encode(), core.StatusWrongShard
}

func (s *Service) handlePing(req []byte) ([]byte, uint32) {
	return appendEpoch(nil, s.cur.Load().Epoch), core.StatusOK
}

func (s *Service) handleMap(req []byte) ([]byte, uint32) {
	return s.cur.Load().Encode(), core.StatusOK
}

func (s *Service) handleKV(req []byte) ([]byte, uint32) {
	op, key, val, ok := decodeKVReq(req)
	if !ok {
		return nil, core.StatusNoHandler
	}
	if d := s.ServiceDelay; d > 0 {
		// Burn the emulated service time before taking the shard lock so
		// migration transitions never wait behind it.
		time.Sleep(d)
	}
	m := s.cur.Load()
	shard := m.ShardOf(key)
	slot := s.shards[shard]
	slot.mu.RLock()
	defer slot.mu.RUnlock()
	// Re-load under the slot lock: handoff swaps the map while holding
	// it exclusively, so ownership and copying state are read together.
	m = s.cur.Load()
	if m.Table[shard] != s.node.ID() {
		return s.wrongShard(m)
	}
	switch op {
	case OpGet:
		v, found := slot.store.Value64(key)
		// Commit gate: the value just read may belong to a put still
		// gathering in a replication log. Answering immediately would let
		// this node die inside the flush window having shown a client a
		// value no backup holds — the read, not the put's ack, becomes
		// the broken durability promise. So the reply waits for every
		// unresolved put on this key; any failed commit NACKs the read
		// (the observed value's durability is unknown) and the client
		// retries, by which point the put has retried or a newer map is
		// out. A put staged after the read began is not waited on — the
		// read linearizes at its observation point.
		if pending := s.pendingOps(key); len(pending) != 0 {
			s.readGate.Inc()
			for _, op := range pending {
				if err := op.waitCommit(s.commitWait()); err != nil {
					return nil, core.StatusOverloaded
				}
			}
		}
		out := appendEpoch(make([]byte, 0, 17), m.Epoch)
		if found {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		return binary.LittleEndian.AppendUint64(out, v), core.StatusOK
	case OpPut:
		// Group-commit replication: the ACK below is a durability promise —
		// the write must survive this node's death — so every backup must
		// hold it first. The put joins the per-(shard, backup) replication
		// logs and parks until the batch carrying it commits on every
		// backup (see groupcommit.go). On any failure the whole batch
		// NACKs and the clients retry; a backup that already applied just
		// no-ops the retry (guarded apply). A WrongShard NACK from a
		// backup installed its newer map before the batch failed, so the
		// retry is served — or fenced — under that map.
		//
		// The commit is staged BEFORE the local apply: a concurrent read
		// that observes the applied value is then guaranteed to find the
		// pending op in the per-key index and gate on it (see OpGet).
		var op *replOp
		if backups := m.BackupsOf(shard); len(backups) > 0 {
			op = s.stageCommit(m.Epoch, shard, key, val, backups)
		}
		if _, err := slot.store.UpdateMax64(key, val); err != nil {
			if op != nil {
				s.awaitCommit(key, op)
			}
			return nil, core.StatusOverloaded
		}
		if slot.copying {
			// Dual-write: the shard is mid-copy, so the target must see
			// this write even if the snapshot scan already passed the key.
			// The local apply above happened first — if the forward fails
			// we NACK so the client retries, and at-least-once is absorbed
			// by the guarded apply.
			if err := s.forward(slot.target, shard, key, val); err != nil {
				if op != nil {
					s.awaitCommit(key, op)
				}
				return nil, core.StatusOverloaded
			}
		}
		if op != nil {
			if err := s.awaitCommit(key, op); err != nil {
				return nil, core.StatusOverloaded
			}
		}
		return appendEpoch(nil, m.Epoch), core.StatusOK
	}
	return nil, core.StatusNoHandler
}

// handleMigrate applies a guarded bulk chunk. It is authorized when
// this node is the shard's pending-migration target or its owner —
// late duplicate chunks after handoff still land (and no-op).
func (s *Service) handleMigrate(req []byte) ([]byte, uint32) {
	if len(req) < chunkHeaderLen {
		return nil, core.StatusNoHandler
	}
	shard := int(binary.LittleEndian.Uint32(req[0:4]))
	n := int(binary.LittleEndian.Uint32(req[4:8]))
	if shard < 0 || n < 0 || len(req) != chunkHeaderLen+n*chunkEntryLen {
		return nil, core.StatusNoHandler
	}
	m := s.cur.Load()
	if shard >= m.Shards {
		return nil, core.StatusNoHandler
	}
	authorized := m.Table[shard] == s.node.ID() || m.IsBackup(shard, s.node.ID())
	for _, p := range m.Pending {
		if p.Shard == shard && p.To == s.node.ID() {
			authorized = true
		}
	}
	if !authorized {
		return s.wrongShard(m)
	}
	slot := s.shards[shard]
	slot.mu.RLock()
	defer slot.mu.RUnlock()
	for i := 0; i < n; i++ {
		off := chunkHeaderLen + i*chunkEntryLen
		key := binary.LittleEndian.Uint64(req[off : off+8])
		val := binary.LittleEndian.Uint64(req[off+8 : off+16])
		if _, err := slot.store.UpdateMax64(key, val); err != nil {
			return nil, core.StatusOverloaded
		}
	}
	return appendEpoch(nil, s.cur.Load().Epoch), core.StatusOK
}

// handleReplicate is the backup half of synchronous replication. The
// epoch on the frame is the fence: a frame older than our map means the
// sender kept serving past a failover (a deposed primary), and instead
// of silently absorbing its writes we NACK WrongShard with the newer
// map so it self-corrects exactly like a stale router. A frame at or
// ahead of our epoch is applied with the same guarded take-the-max the
// owner path uses, so replays and reordered retries commute.
func (s *Service) handleReplicate(req []byte) ([]byte, uint32) {
	f, err := DecodeReplicaForward(req)
	if err != nil {
		return nil, core.StatusNoHandler
	}
	m := s.cur.Load()
	if f.Shard >= m.Shards {
		return nil, core.StatusNoHandler
	}
	if f.Epoch < m.Epoch {
		return s.wrongShard(m)
	}
	if f.Epoch == m.Epoch && !m.IsReplica(f.Shard, s.node.ID()) {
		// Same view, but we are not in this shard's replica set: the
		// sender's frame is corrupt or misrouted, not merely stale.
		return s.wrongShard(m)
	}
	slot := s.shards[f.Shard]
	slot.mu.RLock()
	defer slot.mu.RUnlock()
	applied := 0
	for _, e := range f.Entries {
		adv, err := slot.store.UpdateMax64(e.Key, e.Val)
		if err != nil {
			return nil, core.StatusOverloaded
		}
		if adv {
			applied++
		}
	}
	return EncodeReplicaAck(s.cur.Load().Epoch, applied), core.StatusOK
}

// classifyReplicaResp turns one backup's RPCReplicate outcome into a
// typed error (nil on OK). A WrongShard NACK carries the backup's newer
// map, which is installed before the fence error returns so retries run
// under the corrected view. It owns resp's lease.
func (s *Service) classifyReplicaResp(to fabric.NodeID, resp core.Response, err error) error {
	if err != nil {
		return &ReplError{Backup: to, Err: err}
	}
	defer resp.Release()
	switch resp.Status {
	case core.StatusOK:
		return nil
	case core.StatusWrongShard:
		if nm, derr := DecodeShardMap(resp.Data); derr == nil {
			s.InstallMap(nm)
		}
		return &ReplError{Backup: to, Status: resp.Status, Err: ErrReplicaFenced}
	default:
		return &ReplError{Backup: to, Status: resp.Status, Err: ErrReplicaNACK}
	}
}

// replicate sends one guarded apply to a backup and waits for its ack —
// the synchronous single-entry path the group-commit forwarder
// generalizes (both emit the identical FRP1 wire image; this one stays
// as the direct probe used by fence tests and repair checks).
func (s *Service) replicate(to fabric.NodeID, epoch uint64, shard int, key, val uint64) error {
	link, err := s.link(to)
	if err != nil {
		return err
	}
	f := leaseReplFrame(epoch, shard, 1)
	f.add(key, val)
	resp, err := link.call(RPCReplicate, f.payload(), s.budget(s.ForwardBudget))
	f.release()
	if err = s.classifyReplicaResp(to, resp, err); err != nil {
		return err
	}
	s.replFwds.Inc()
	return nil
}

// forward dual-writes one key to the migration target as a chunk of one.
func (s *Service) forward(to fabric.NodeID, shard int, key, val uint64) error {
	link, err := s.link(to)
	if err != nil {
		return err
	}
	f := leaseChunkFrame(shard, 1)
	f.add(key, val)
	resp, err := link.call(RPCMigrate, f.payload(), s.budget(s.ForwardBudget))
	f.release()
	if err != nil {
		return err
	}
	defer resp.Release()
	if resp.Status != core.StatusOK {
		return fmt.Errorf("cluster: forward NACK status %d", resp.Status)
	}
	return nil
}

func (s *Service) link(to fabric.NodeID) (*fwdLink, error) {
	s.fwdMu.Lock()
	defer s.fwdMu.Unlock()
	if l, ok := s.fwd[to]; ok {
		return l, nil
	}
	conn, err := s.node.Connect(to)
	if err != nil {
		return nil, err
	}
	l := &fwdLink{conn: conn}
	s.fwd[to] = l
	return l, nil
}

// BeginMigration turns on dual-write forwarding for shard towards `to`.
// The coordinator calls it after publishing the pending-migration epoch
// and before the snapshot copy, so every write from here on reaches the
// target by forward or by scan.
func (s *Service) BeginMigration(shard int, to fabric.NodeID) error {
	if _, err := s.link(to); err != nil {
		return err
	}
	slot := s.shards[shard]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.copying {
		return fmt.Errorf("cluster: shard %d already migrating", shard)
	}
	slot.copying = true
	slot.target = to
	slot.started = time.Now()
	return nil
}

// CopyShard streams the shard's snapshot to the target in bounded
// chunks built in pooled buffers. Each chunk send retries until
// deadline — the fault plans this runs under flap links mid-copy.
func (s *Service) CopyShard(shard int, deadline time.Time) error {
	slot := s.shards[shard]
	slot.mu.RLock()
	to, copying := slot.target, slot.copying
	slot.mu.RUnlock()
	if !copying {
		return fmt.Errorf("cluster: shard %d not migrating", shard)
	}
	return s.streamShard(shard, to, deadline)
}

// CopyShardTo snapshot-streams a shard to an explicit target without
// touching migration state. Repair uses it to seed a freshly recruited
// backup: the backup is already published in the replica set, so writes
// racing the scan reach it by replication forward, and the guarded
// apply makes scan-vs-forward order irrelevant.
func (s *Service) CopyShardTo(shard int, to fabric.NodeID, deadline time.Time) error {
	return s.streamShard(shard, to, deadline)
}

func (s *Service) streamShard(shard int, to fabric.NodeID, deadline time.Time) error {
	slot := s.shards[shard]
	link, err := s.link(to)
	if err != nil {
		return err
	}
	// Chunk geometry: stay well under MaxPayload.
	maxEntries := (s.node.Options().MaxPayload - chunkHeaderLen) / chunkEntryLen
	if maxEntries > 256 {
		maxEntries = 256
	}
	f := leaseChunkFrame(shard, maxEntries)
	defer f.release()
	flush := func() error {
		if f.n == 0 {
			return nil
		}
		payload := f.payload()
		for {
			resp, err := link.call(RPCMigrate, payload, s.budget(s.CopyBudget))
			if err == nil {
				st := resp.Status
				resp.Release()
				if st == core.StatusOK {
					f.reset()
					return nil
				}
				err = fmt.Errorf("cluster: chunk NACK status %d", st)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("cluster: shard %d copy timed out: %w", shard, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	var scanErr error
	slot.store.Scan(func(key uint64, val []byte) bool {
		f.add(key, binary.LittleEndian.Uint64(val[:8]))
		if f.n == maxEntries {
			if scanErr = flush(); scanErr != nil {
				return false
			}
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	return flush()
}

// CompleteMigration atomically installs the handoff map and stops
// forwarding: it takes the slot exclusively, so every in-flight request
// (including its dual-write forward) finishes first, and every later
// request sees the new map and NACKs WrongShard. It records the
// migration's duration and bumps cluster.shard_moves.
func (s *Service) CompleteMigration(shard int, handoff *ShardMap) {
	slot := s.shards[shard]
	slot.mu.Lock()
	s.mu.Lock()
	s.installLocked(handoff)
	s.mu.Unlock()
	wasCopying := slot.copying
	slot.copying = false
	started := slot.started
	slot.mu.Unlock()
	if wasCopying {
		s.moves.Inc()
		s.migDur.Observe(uint64(time.Since(started).Nanoseconds()))
	}
}

// Promote installs the failover map on the shard's new primary through
// the same exclusive-slot handoff CompleteMigration uses: in-flight
// requests finish under the old view, everything later serves (or
// fences) under the new epoch. It also clears any dual-write state
// pointed at the dead node — a migration whose source died is moot —
// and bumps cluster.promotions.
func (s *Service) Promote(shard int, failover *ShardMap) {
	slot := s.shards[shard]
	slot.mu.Lock()
	s.mu.Lock()
	s.installLocked(failover)
	s.mu.Unlock()
	slot.copying = false
	slot.mu.Unlock()
	s.promotions.Inc()
}

// AbortMigration turns dual-write off without a handoff (the map with
// the pending entry dropped is installed by the coordinator).
func (s *Service) AbortMigration(shard int, revert *ShardMap) {
	slot := s.shards[shard]
	slot.mu.Lock()
	s.mu.Lock()
	s.installLocked(revert)
	s.mu.Unlock()
	slot.copying = false
	slot.mu.Unlock()
}

// Keys returns how many keys shard holds locally (test/observability).
func (s *Service) Keys(shard int) int {
	n := 0
	s.shards[shard].store.Scan(func(uint64, []byte) bool { n++; return true })
	return n
}

// ShardFingerprint returns the order-independent content fingerprint of
// the shard's local partition. Equal fingerprints on a primary and its
// backup mean byte-equal replicas — what the failover tests assert
// after traffic quiesces.
func (s *Service) ShardFingerprint(shard int) uint64 {
	return s.shards[shard].store.Fingerprint64()
}

// Close stops the replication forwarders (queued ops NACK, in-flight
// frames resolve within their budgets) and tears down the forward links.
func (s *Service) Close() {
	s.closeStreams()
	s.fwdMu.Lock()
	defer s.fwdMu.Unlock()
	for _, l := range s.fwd {
		l.conn.Close()
	}
	s.fwd = map[fabric.NodeID]*fwdLink{}
}
