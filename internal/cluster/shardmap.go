// Package cluster is the placement layer: it assigns key shards to
// nodes with a versioned, epoch-stamped shard map, routes client calls
// by key, tracks membership with a lightweight ping protocol, and moves
// shards between live nodes without stopping the service.
//
// The map is the unit of agreement. Every member and every router holds
// a *ShardMap; any reply from a cluster service piggybacks the serving
// node's map epoch, and a request that lands on a node that no longer
// (or does not yet) own the key's shard is NACKed with StatusWrongShard
// and the server's full encoded map, so clients self-correct without a
// metadata service in the data path. Map distribution is eventual:
// epochs only increase, and a node installs a received map only when
// its epoch is newer than the one it holds.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"flock/internal/fabric"
)

// Migration is one pending shard move recorded in the map: while it is
// in Pending, From still owns the shard (Table[Shard] == From) but
// dual-writes to To; the handoff epoch flips Table[Shard] to To and
// drops the entry.
type Migration struct {
	Shard int
	From  fabric.NodeID
	To    fabric.NodeID
}

// ShardMap is one version of the cluster's placement. It is immutable
// once published: mutations (Rebalance planning, handoff) return a new
// map with a bumped epoch.
type ShardMap struct {
	// Epoch is the map version. Strictly increasing across publishes;
	// receivers install a map only if its epoch is newer.
	Epoch uint64
	// Shards is the number of key shards; ShardOf hashes keys into
	// [0, Shards).
	Shards int
	// VNodes is the number of virtual ring points per member used by the
	// consistent-hash placement (more vnodes → smoother balance).
	VNodes int
	// Members is the known member set, sorted by NodeID. Membership in
	// this list does not imply liveness — routing consults the failure
	// detector — but only members can own shards.
	Members []fabric.NodeID
	// Table maps shard → owning member. It is explicit rather than
	// recomputed from the ring so that migrations move exactly one shard
	// per handoff and old maps decode to exactly the placement they
	// described.
	Table []fabric.NodeID
	// Pending lists in-flight migrations (dual-write windows).
	Pending []Migration
}

// DefaultVNodes is the ring-point count per member when the caller
// passes 0.
const DefaultVNodes = 16

// New builds the epoch-1 map for the given members, with each shard
// assigned by the consistent-hash ring. members must be non-empty;
// shards must be positive.
func New(members []fabric.NodeID, shards, vnodes int) (*ShardMap, error) {
	if len(members) == 0 {
		return nil, errors.New("cluster: no members")
	}
	if shards <= 0 {
		return nil, errors.New("cluster: shards must be positive")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	ms := append([]fabric.NodeID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	for i := 1; i < len(ms); i++ {
		if ms[i] == ms[i-1] {
			return nil, fmt.Errorf("cluster: duplicate member %d", ms[i])
		}
	}
	m := &ShardMap{Epoch: 1, Shards: shards, VNodes: vnodes, Members: ms}
	m.Table = m.DesiredTable(ms)
	return m, nil
}

// ShardOf hashes a key into its shard.
func (m *ShardMap) ShardOf(key uint64) int {
	return int(mix(key) % uint64(m.Shards))
}

// Owner returns the member currently owning shard.
func (m *ShardMap) Owner(shard int) fabric.NodeID { return m.Table[shard] }

// OwnerOfKey is Owner(ShardOf(key)).
func (m *ShardMap) OwnerOfKey(key uint64) fabric.NodeID {
	return m.Table[m.ShardOf(key)]
}

// ShardsOwnedBy lists the shards Table assigns to id.
func (m *ShardMap) ShardsOwnedBy(id fabric.NodeID) []int {
	var out []int
	for s, owner := range m.Table {
		if owner == id {
			out = append(out, s)
		}
	}
	return out
}

// Clone returns a deep copy (for building the next epoch).
func (m *ShardMap) Clone() *ShardMap {
	c := *m
	c.Members = append([]fabric.NodeID(nil), m.Members...)
	c.Table = append([]fabric.NodeID(nil), m.Table...)
	c.Pending = append([]Migration(nil), m.Pending...)
	return &c
}

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash  uint64
	owner fabric.NodeID
}

// DesiredTable computes the ring placement of every shard over the
// given candidate owners (typically the live member subset). It is
// deterministic in the candidate set and independent of the current
// Table, so two nodes with the same view plan the same placement.
func (m *ShardMap) DesiredTable(candidates []fabric.NodeID) []fabric.NodeID {
	ring := make([]ringPoint, 0, len(candidates)*m.VNodes)
	for _, id := range candidates {
		for v := 0; v < m.VNodes; v++ {
			h := mix(uint64(id)<<20 ^ uint64(v)<<1 ^ 0xF10C)
			ring = append(ring, ringPoint{hash: h, owner: id})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].owner < ring[j].owner
	})
	table := make([]fabric.NodeID, m.Shards)
	for s := range table {
		h := mix(uint64(s) ^ 0x5AAD)
		i := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
		if i == len(ring) {
			i = 0
		}
		table[s] = ring[i].owner
	}
	return table
}

// PlanRebalance diffs the current Table against the ring placement over
// the live candidate set and returns the migrations that would converge
// them, ordered by shard. Shards already mid-migration are skipped.
func (m *ShardMap) PlanRebalance(live []fabric.NodeID) []Migration {
	if len(live) == 0 {
		return nil
	}
	desired := m.DesiredTable(live)
	pending := make(map[int]bool, len(m.Pending))
	for _, p := range m.Pending {
		pending[p.Shard] = true
	}
	var plan []Migration
	for s, want := range desired {
		cur := m.Table[s]
		if cur == want || pending[s] {
			continue
		}
		plan = append(plan, Migration{Shard: s, From: cur, To: want})
	}
	return plan
}

// WithPending returns a new map (epoch+1) with mig recorded as pending.
func (m *ShardMap) WithPending(mig Migration) *ShardMap {
	c := m.Clone()
	c.Epoch++
	c.Pending = append(c.Pending, mig)
	return c
}

// WithHandoff returns a new map (epoch+1) with shard's ownership
// flipped to `to` and any pending entry for the shard dropped.
func (m *ShardMap) WithHandoff(shard int, to fabric.NodeID) *ShardMap {
	c := m.Clone()
	c.Epoch++
	c.Table[shard] = to
	keep := c.Pending[:0]
	for _, p := range c.Pending {
		if p.Shard != shard {
			keep = append(keep, p)
		}
	}
	c.Pending = keep
	return c
}

// mix is splitmix64's finalizer: the key/ring hash.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
