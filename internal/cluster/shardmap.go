// Package cluster is the placement layer: it assigns key shards to
// nodes with a versioned, epoch-stamped shard map, routes client calls
// by key, tracks membership with a lightweight ping protocol, and moves
// shards between live nodes without stopping the service.
//
// The map is the unit of agreement. Every member and every router holds
// a *ShardMap; any reply from a cluster service piggybacks the serving
// node's map epoch, and a request that lands on a node that no longer
// (or does not yet) own the key's shard is NACKed with StatusWrongShard
// and the server's full encoded map, so clients self-correct without a
// metadata service in the data path. Map distribution is eventual:
// epochs only increase, and a node installs a received map only when
// its epoch is newer than the one it holds.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"flock/internal/fabric"
)

// Migration is one pending shard move recorded in the map: while it is
// in Pending, From still owns the shard (Table[Shard] == From) but
// dual-writes to To; the handoff epoch flips Table[Shard] to To and
// drops the entry.
type Migration struct {
	Shard int
	From  fabric.NodeID
	To    fabric.NodeID
}

// ShardMap is one version of the cluster's placement. It is immutable
// once published: mutations (Rebalance planning, handoff, failover)
// return a new map with a bumped epoch.
type ShardMap struct {
	// Epoch is the map version. Strictly increasing across publishes;
	// receivers install a map only if its epoch is newer.
	Epoch uint64
	// Shards is the number of key shards; ShardOf hashes keys into
	// [0, Shards).
	Shards int
	// VNodes is the number of virtual ring points per member used by the
	// consistent-hash placement (more vnodes → smoother balance).
	VNodes int
	// Replicas is the configured backup count per shard (R). Zero means
	// an unreplicated map — Backups is nil and the wire encoding is the
	// original FSM1 layout.
	Replicas int
	// Members is the known member set, sorted by NodeID. Membership in
	// this list does not imply liveness — routing consults the failure
	// detector — but only members can own shards.
	Members []fabric.NodeID
	// Table maps shard → primary member. It is explicit rather than
	// recomputed from the ring so that migrations move exactly one shard
	// per handoff and old maps decode to exactly the placement they
	// described.
	Table []fabric.NodeID
	// Backups maps shard → its backup replica set (at most Replicas
	// members, distinct from the primary and each other). nil when
	// Replicas == 0; individual shards may hold fewer than Replicas
	// backups after a failover until a Repair recruits replacements.
	Backups [][]fabric.NodeID
	// Pending lists in-flight migrations (dual-write windows).
	Pending []Migration
}

// DefaultVNodes is the ring-point count per member when the caller
// passes 0.
const DefaultVNodes = 16

// New builds the epoch-1 map for the given members, with each shard
// assigned by the consistent-hash ring. members must be non-empty;
// shards must be positive.
func New(members []fabric.NodeID, shards, vnodes int) (*ShardMap, error) {
	return NewReplicated(members, shards, vnodes, 0)
}

// NewReplicated is New with a per-shard replica set: each shard gets a
// primary (Table) plus up to `replicas` backups drawn from the ring
// successors after the primary. replicas is clamped to len(members)-1 —
// a replica set never holds the same member twice.
func NewReplicated(members []fabric.NodeID, shards, vnodes, replicas int) (*ShardMap, error) {
	if len(members) == 0 {
		return nil, errors.New("cluster: no members")
	}
	if shards <= 0 {
		return nil, errors.New("cluster: shards must be positive")
	}
	if replicas < 0 {
		return nil, errors.New("cluster: negative replica count")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if replicas > len(members)-1 {
		replicas = len(members) - 1
	}
	ms := append([]fabric.NodeID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	for i := 1; i < len(ms); i++ {
		if ms[i] == ms[i-1] {
			return nil, fmt.Errorf("cluster: duplicate member %d", ms[i])
		}
	}
	m := &ShardMap{Epoch: 1, Shards: shards, VNodes: vnodes, Replicas: replicas, Members: ms}
	m.Table = m.DesiredTable(ms)
	if replicas > 0 {
		m.Backups = m.DesiredBackups(ms, m.Table)
	}
	return m, nil
}

// ShardOf hashes a key into its shard.
func (m *ShardMap) ShardOf(key uint64) int {
	return int(mix(key) % uint64(m.Shards))
}

// Owner returns the member currently owning (serving as primary for)
// shard.
func (m *ShardMap) Owner(shard int) fabric.NodeID { return m.Table[shard] }

// OwnerOfKey is Owner(ShardOf(key)).
func (m *ShardMap) OwnerOfKey(key uint64) fabric.NodeID {
	return m.Table[m.ShardOf(key)]
}

// BackupsOf returns shard's backup set (nil when unreplicated). The
// returned slice is the map's own — callers must not mutate it.
func (m *ShardMap) BackupsOf(shard int) []fabric.NodeID {
	if m.Backups == nil {
		return nil
	}
	return m.Backups[shard]
}

// ReplicaSet returns shard's full replica set, primary first.
func (m *ShardMap) ReplicaSet(shard int) []fabric.NodeID {
	out := make([]fabric.NodeID, 0, 1+len(m.BackupsOf(shard)))
	out = append(out, m.Table[shard])
	return append(out, m.BackupsOf(shard)...)
}

// IsReplica reports whether id is in shard's replica set (primary or
// backup).
func (m *ShardMap) IsReplica(shard int, id fabric.NodeID) bool {
	if m.Table[shard] == id {
		return true
	}
	return m.IsBackup(shard, id)
}

// IsBackup reports whether id is one of shard's backups.
func (m *ShardMap) IsBackup(shard int, id fabric.NodeID) bool {
	for _, b := range m.BackupsOf(shard) {
		if b == id {
			return true
		}
	}
	return false
}

// ShardsOwnedBy lists the shards Table assigns to id.
func (m *ShardMap) ShardsOwnedBy(id fabric.NodeID) []int {
	var out []int
	for s, owner := range m.Table {
		if owner == id {
			out = append(out, s)
		}
	}
	return out
}

// Clone returns a deep copy (for building the next epoch).
func (m *ShardMap) Clone() *ShardMap {
	c := *m
	c.Members = append([]fabric.NodeID(nil), m.Members...)
	c.Table = append([]fabric.NodeID(nil), m.Table...)
	c.Pending = append([]Migration(nil), m.Pending...)
	if m.Backups != nil {
		c.Backups = make([][]fabric.NodeID, len(m.Backups))
		for s, bs := range m.Backups {
			if bs != nil {
				c.Backups[s] = append([]fabric.NodeID(nil), bs...)
			}
		}
	}
	return &c
}

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash  uint64
	owner fabric.NodeID
}

// buildRing constructs the sorted consistent-hash ring over the
// candidate owners. Equal hashes (possible in principle, and easy to
// construct in tests) tie-break by owner ID so the ring order — and
// therefore every placement derived from it — is deterministic in the
// candidate *set*, independent of the argument order.
func buildRing(candidates []fabric.NodeID, vnodes int) []ringPoint {
	ring := make([]ringPoint, 0, len(candidates)*vnodes)
	for _, id := range candidates {
		for v := 0; v < vnodes; v++ {
			h := mix(uint64(id)<<20 ^ uint64(v)<<1 ^ 0xF10C)
			ring = append(ring, ringPoint{hash: h, owner: id})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].owner < ring[j].owner
	})
	return ring
}

// ringIndex returns the index of the first ring point at or clockwise
// after shard's hash point (wrapping past the end).
func ringIndex(ring []ringPoint, shard int) int {
	h := mix(uint64(shard) ^ 0x5AAD)
	i := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
	if i == len(ring) {
		i = 0
	}
	return i
}

// ringSuccessors walks the ring clockwise from shard's point and
// returns the first n *distinct* owners. n larger than the distinct
// owner count returns them all.
func ringSuccessors(ring []ringPoint, shard, n int) []fabric.NodeID {
	var out []fabric.NodeID
	start := ringIndex(ring, shard)
	for i := 0; i < len(ring) && len(out) < n; i++ {
		owner := ring[(start+i)%len(ring)].owner
		seen := false
		for _, id := range out {
			if id == owner {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, owner)
		}
	}
	return out
}

// DesiredTable computes the ring placement of every shard over the
// given candidate owners (typically the live member subset). It is
// deterministic in the candidate set and independent of the current
// Table, so two nodes with the same view plan the same placement.
func (m *ShardMap) DesiredTable(candidates []fabric.NodeID) []fabric.NodeID {
	ring := buildRing(candidates, m.VNodes)
	table := make([]fabric.NodeID, m.Shards)
	for s := range table {
		table[s] = ring[ringIndex(ring, s)].owner
	}
	return table
}

// DesiredBackups computes each shard's backup set over the candidates:
// up to m.Replicas distinct ring successors after the shard's primary
// (as given in table). Like DesiredTable it is deterministic in the
// candidate set, so every node with the same view plans the same
// replica sets.
func (m *ShardMap) DesiredBackups(candidates []fabric.NodeID, table []fabric.NodeID) [][]fabric.NodeID {
	ring := buildRing(candidates, m.VNodes)
	backups := make([][]fabric.NodeID, m.Shards)
	for s := range backups {
		for _, id := range ringSuccessors(ring, s, m.Replicas+1) {
			if id == table[s] {
				continue
			}
			if len(backups[s]) == m.Replicas {
				break
			}
			backups[s] = append(backups[s], id)
		}
	}
	return backups
}

// PlanRebalance diffs the current Table against the ring placement over
// the live candidate set and returns the migrations that would converge
// them, ordered by shard. Shards already mid-migration are skipped.
func (m *ShardMap) PlanRebalance(live []fabric.NodeID) []Migration {
	if len(live) == 0 {
		return nil
	}
	desired := m.DesiredTable(live)
	pending := make(map[int]bool, len(m.Pending))
	for _, p := range m.Pending {
		pending[p.Shard] = true
	}
	var plan []Migration
	for s, want := range desired {
		cur := m.Table[s]
		if cur == want || pending[s] {
			continue
		}
		plan = append(plan, Migration{Shard: s, From: cur, To: want})
	}
	return plan
}

// WithPending returns a new map (epoch+1) with mig recorded as pending.
func (m *ShardMap) WithPending(mig Migration) *ShardMap {
	c := m.Clone()
	c.Epoch++
	c.Pending = append(c.Pending, mig)
	return c
}

// WithHandoff returns a new map (epoch+1) with shard's ownership
// flipped to `to` and any pending entry for the shard dropped. If the
// new primary was one of the shard's backups it leaves the backup set
// (a member appears at most once in a replica set); the shard then runs
// one backup short until a Repair recruits a replacement.
func (m *ShardMap) WithHandoff(shard int, to fabric.NodeID) *ShardMap {
	c := m.Clone()
	c.Epoch++
	c.Table[shard] = to
	if c.Backups != nil {
		c.Backups[shard] = dropNode(c.Backups[shard], to)
	}
	keep := c.Pending[:0]
	for _, p := range c.Pending {
		if p.Shard != shard {
			keep = append(keep, p)
		}
	}
	c.Pending = keep
	return c
}

// dropNode removes id from ids in place, returning nil when the result
// is empty (canonical form for wire round-trips).
func dropNode(ids []fabric.NodeID, id fabric.NodeID) []fabric.NodeID {
	keep := ids[:0]
	for _, b := range ids {
		if b != id {
			keep = append(keep, b)
		}
	}
	if len(keep) == 0 {
		return nil
	}
	return keep
}

// WithBackup returns a new map (epoch+1) with `to` added to shard's
// backup set. It is the map half of backup recruitment: once published,
// the primary dual-writes every apply to the new backup, so the
// subsequent snapshot copy only has to deliver the prefix.
func (m *ShardMap) WithBackup(shard int, to fabric.NodeID) (*ShardMap, error) {
	if m.Table[shard] == to || m.IsBackup(shard, to) {
		return nil, fmt.Errorf("cluster: %d already a replica of shard %d", to, shard)
	}
	c := m.Clone()
	c.Epoch++
	if c.Backups == nil {
		c.Backups = make([][]fabric.NodeID, c.Shards)
	}
	if c.Replicas <= len(c.Backups[shard]) {
		c.Replicas = len(c.Backups[shard]) + 1
	}
	c.Backups[shard] = append(c.Backups[shard], to)
	return c, nil
}

// ReplacementBackup picks the member Repair should recruit into shard's
// replica set: the first ring successor over the live candidates that
// is neither the primary nor already a backup. Returns -1 when every
// live member is already in the replica set.
func (m *ShardMap) ReplacementBackup(shard int, live []fabric.NodeID) fabric.NodeID {
	ring := buildRing(live, m.VNodes)
	if len(ring) == 0 {
		return -1
	}
	for _, id := range ringSuccessors(ring, shard, len(live)) {
		if id != m.Table[shard] && !m.IsBackup(shard, id) {
			return id
		}
	}
	return -1
}

// WithFailover returns a new map (epoch+1) that routes around a dead
// member with no data loss where replicas allow it: every shard whose
// primary is dead promotes its first live backup (synchronous
// replication guarantees the backup holds every acknowledged write),
// and dead is pruned from every backup set. A shard with no live backup
// falls back to the ring placement over live — the unreplicated
// route-around, data abandoned. promoted counts backup promotions,
// rerouted the fallback reassignments.
func (m *ShardMap) WithFailover(dead fabric.NodeID, live []fabric.NodeID) (c *ShardMap, promoted, rerouted int) {
	c = m.Clone()
	c.Epoch++
	liveSet := make(map[fabric.NodeID]bool, len(live))
	for _, id := range live {
		liveSet[id] = true
	}
	var desired []fabric.NodeID // lazily computed fallback placement
	for s := 0; s < c.Shards; s++ {
		if c.Backups != nil {
			c.Backups[s] = dropNode(c.Backups[s], dead)
		}
		if c.Table[s] != dead {
			continue
		}
		next := fabric.NodeID(-1)
		for _, b := range c.BackupsOf(s) {
			if liveSet[b] {
				next = b
				break
			}
		}
		if next >= 0 {
			c.Table[s] = next
			c.Backups[s] = dropNode(c.Backups[s], next)
			promoted++
			continue
		}
		if len(live) == 0 {
			continue // nobody to promote or reroute to; shard stays dark
		}
		if desired == nil {
			desired = m.DesiredTable(live)
		}
		c.Table[s] = desired[s]
		rerouted++
	}
	return c, promoted, rerouted
}

// mix is splitmix64's finalizer: the key/ring hash.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
