package cluster

import (
	"errors"
	"reflect"
	"testing"

	"flock/internal/fabric"
)

// Table-driven edges of map construction: the inputs New/NewReplicated
// must reject, and the degenerate-but-legal ones it must normalize.
func TestShardMapConstructionEdges(t *testing.T) {
	for _, tc := range []struct {
		name     string
		members  []fabric.NodeID
		shards   int
		replicas int
		wantErr  bool
		// post-conditions on success:
		wantReplicas int
		nilBackups   bool
	}{
		{name: "empty member set", members: nil, shards: 8, wantErr: true},
		{name: "zero shards", members: []fabric.NodeID{1}, shards: 0, wantErr: true},
		{name: "duplicate member", members: []fabric.NodeID{2, 2}, shards: 8, wantErr: true},
		{name: "negative replicas", members: []fabric.NodeID{1, 2}, shards: 8, replicas: -1, wantErr: true},
		{name: "single member", members: []fabric.NodeID{7}, shards: 8,
			wantReplicas: 0, nilBackups: true},
		{name: "single member clamps replicas", members: []fabric.NodeID{7}, shards: 8, replicas: 3,
			wantReplicas: 0, nilBackups: true},
		{name: "replicas clamp to members-1", members: []fabric.NodeID{1, 2, 3}, shards: 8, replicas: 9,
			wantReplicas: 2},
		{name: "replicated pair", members: []fabric.NodeID{1, 2}, shards: 4, replicas: 1,
			wantReplicas: 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := NewReplicated(tc.members, tc.shards, 4, tc.replicas)
			if tc.wantErr {
				if err == nil {
					t.Fatal("bad input accepted")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if m.Replicas != tc.wantReplicas {
				t.Fatalf("Replicas = %d, want %d", m.Replicas, tc.wantReplicas)
			}
			if tc.nilBackups != (m.Backups == nil) {
				t.Fatalf("Backups nil = %v, want %v", m.Backups == nil, tc.nilBackups)
			}
			for s := 0; s < m.Shards; s++ {
				bs := m.BackupsOf(s)
				if len(bs) != tc.wantReplicas {
					t.Fatalf("shard %d has %d backups, want %d", s, len(bs), tc.wantReplicas)
				}
				rs := m.ReplicaSet(s)
				if rs[0] != m.Owner(s) {
					t.Fatalf("shard %d replica set %v does not lead with its primary", s, rs)
				}
				seen := map[fabric.NodeID]bool{}
				for _, id := range rs {
					if seen[id] {
						t.Fatalf("shard %d replica set %v repeats member %d", s, rs, id)
					}
					seen[id] = true
				}
			}
			// Round-trip: replicated maps ride FSM2, unreplicated FSM1 —
			// both must decode back to themselves.
			got, err := DecodeShardMap(m.Encode())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, m)
			}
		})
	}
}

// A single-member map routes everything to that member, and a failover
// of the only member has nobody to promote or reroute to: every shard
// stays dark rather than silently pointing at a node with no data.
func TestShardMapSingleMemberFailover(t *testing.T) {
	m, err := New([]fabric.NodeID{5}, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < m.Shards; s++ {
		if m.Owner(s) != 5 {
			t.Fatalf("shard %d owned by %d on a one-member map", s, m.Owner(s))
		}
	}
	next, promoted, rerouted := m.WithFailover(5, nil)
	if promoted != 0 || rerouted != 0 {
		t.Fatalf("failover of the only member: promoted=%d rerouted=%d", promoted, rerouted)
	}
	if next.Epoch != m.Epoch+1 {
		t.Fatalf("failover did not bump the epoch: %d -> %d", m.Epoch, next.Epoch)
	}
	for s := 0; s < next.Shards; s++ {
		if next.Owner(s) != 5 {
			t.Fatalf("shard %d reassigned to %d with no live members", s, next.Owner(s))
		}
	}
}

// Lookup semantics through the pending dual-write window: while a
// migration is pending the source still owns the shard (the NACK
// authority), the handoff flips ownership in one epoch, and a promoted
// backup leaves the backup set the instant it becomes primary.
func TestShardMapPendingHandoffLookup(t *testing.T) {
	m, err := NewReplicated([]fabric.NodeID{0, 1, 2}, 8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	shard := 0
	from := m.Owner(shard)
	var to fabric.NodeID = -1
	for _, id := range m.Members {
		if id != from && !m.IsBackup(shard, id) {
			to = id
			break
		}
	}
	if to < 0 {
		t.Fatal("no third member outside the replica set")
	}
	p := m.WithPending(Migration{Shard: shard, From: from, To: to})
	if p.Owner(shard) != from {
		t.Fatalf("pending migration moved ownership early: %d", p.Owner(shard))
	}
	if len(p.Pending) != 1 || p.Pending[0].To != to {
		t.Fatalf("pending entry wrong: %+v", p.Pending)
	}
	h := p.WithHandoff(shard, to)
	if h.Owner(shard) != to || len(h.Pending) != 0 {
		t.Fatalf("handoff: owner=%d pending=%v", h.Owner(shard), h.Pending)
	}
	// Handoff to one of the shard's own backups: the new primary must
	// leave the backup set (a member appears at most once in a replica
	// set), shrinking it by one until Repair recruits a replacement.
	backup := m.BackupsOf(shard)[0]
	hb := m.WithHandoff(shard, backup)
	if hb.Owner(shard) != backup || hb.IsBackup(shard, backup) {
		t.Fatalf("promoted backup still in backup set: owner=%d backups=%v",
			hb.Owner(shard), hb.BackupsOf(shard))
	}
	if len(hb.BackupsOf(shard)) != len(m.BackupsOf(shard))-1 {
		t.Fatalf("backup set did not shrink: %v -> %v", m.BackupsOf(shard), hb.BackupsOf(shard))
	}
}

// Duplicate ring hashes: equal hash points tie-break by owner ID, so
// the ring order — and every successor walk over it — is deterministic
// in the candidate set, not the insertion order; and ringSuccessors
// returns distinct owners even when one owner's vnodes are adjacent.
func TestRingDuplicateHashes(t *testing.T) {
	ring := []ringPoint{
		{hash: 10, owner: 3},
		{hash: 10, owner: 1}, // duplicate hash, lower owner: sorts first
		{hash: 20, owner: 1},
		{hash: 20, owner: 2},
		{hash: 30, owner: 2},
	}
	// buildRing's comparator, applied by hand: re-sort and check the tie.
	sorted := buildRingOrder(ring)
	if sorted[0].owner != 1 || sorted[1].owner != 3 {
		t.Fatalf("equal hashes not tie-broken by owner: %+v", sorted[:2])
	}
	succ := ringSuccessors(sorted, 0, 3)
	seen := map[fabric.NodeID]bool{}
	for _, id := range succ {
		if seen[id] {
			t.Fatalf("ringSuccessors repeated owner %d: %v", id, succ)
		}
		seen[id] = true
	}
	if len(succ) != 3 {
		t.Fatalf("3 distinct owners on the ring, successors = %v", succ)
	}
	// Asking for more distinct owners than exist returns them all.
	if got := ringSuccessors(sorted, 0, 10); len(got) != 3 {
		t.Fatalf("over-asking returned %v", got)
	}
	// buildRing itself is order-independent in its candidate argument.
	a := buildRing([]fabric.NodeID{0, 1, 2}, 8)
	b := buildRing([]fabric.NodeID{2, 0, 1}, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("buildRing depends on candidate order")
	}
}

// buildRingOrder applies buildRing's sort to a hand-crafted ring.
func buildRingOrder(points []ringPoint) []ringPoint {
	ring := append([]ringPoint(nil), points...)
	// Same comparator as buildRing: hash, then owner.
	for i := 1; i < len(ring); i++ {
		for j := i; j > 0; j-- {
			a, b := ring[j-1], ring[j]
			if a.hash < b.hash || (a.hash == b.hash && a.owner < b.owner) {
				break
			}
			ring[j-1], ring[j] = b, a
		}
	}
	return ring
}

// An epoch-regressed map decodes fine — the wire format does not police
// epochs — but every install point refuses it: Router.Install,
// Service.InstallMap, and the coordinator's publish discipline all live
// on newer-epoch-wins. This is the error behavior a WrongShard NACK
// carrying a stale map (a slow deposed node) relies on.
func TestEpochRegressedMapRefused(t *testing.T) {
	old, err := New([]fabric.NodeID{0, 1}, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	newer := old.Clone()
	newer.Epoch = old.Epoch + 3

	regressed, err := DecodeShardMap(old.Encode())
	if err != nil {
		t.Fatalf("wire layer rejected an old-epoch map: %v", err)
	}

	lc := newLiveCluster(t, 2, 8, fabric.Config{})
	lc.router.Install(newer)
	if lc.router.Install(regressed) {
		t.Fatal("router installed an epoch-regressed map")
	}
	if lc.router.Map().Epoch != newer.Epoch {
		t.Fatalf("router epoch regressed to %d", lc.router.Map().Epoch)
	}
	svc := lc.services[0]
	svc.InstallMap(newer)
	if svc.InstallMap(regressed) {
		t.Fatal("service installed an epoch-regressed map")
	}
	if svc.Map().Epoch != newer.Epoch {
		t.Fatalf("service epoch regressed to %d", svc.Map().Epoch)
	}
	// Same epoch is also refused: installs need strictly newer.
	same := newer.Clone()
	if lc.router.Install(same) || svc.InstallMap(same) {
		t.Fatal("same-epoch map reinstalled")
	}
}

// Replica-set surgery edges: WithBackup rejects members already in the
// set, ReplacementBackup skips the whole replica set and reports -1
// when nobody is left, WithFailover promotes the first *live* backup.
func TestReplicaSetSurgeryEdges(t *testing.T) {
	m, err := NewReplicated([]fabric.NodeID{0, 1, 2, 3}, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	shard := 0
	primary := m.Owner(shard)
	backups := m.BackupsOf(shard)
	if len(backups) != 2 {
		t.Fatalf("backups = %v", backups)
	}
	if _, err := m.WithBackup(shard, primary); err == nil {
		t.Fatal("WithBackup accepted the primary")
	}
	if _, err := m.WithBackup(shard, backups[0]); err == nil {
		t.Fatal("WithBackup accepted an existing backup")
	}
	if got := m.ReplacementBackup(shard, nil); got != -1 {
		t.Fatalf("ReplacementBackup over no candidates = %d", got)
	}
	if got := m.ReplacementBackup(shard, m.ReplicaSet(shard)); got != -1 {
		t.Fatalf("ReplacementBackup recruited from inside the replica set: %d", got)
	}
	if got := m.ReplacementBackup(shard, m.Members); got < 0 ||
		got == primary || m.IsBackup(shard, got) {
		t.Fatalf("ReplacementBackup = %d (primary %d, backups %v)", got, primary, backups)
	}
	// Failover with the first backup also dead: the second is promoted.
	live := []fabric.NodeID{}
	for _, id := range m.Members {
		if id != primary && id != backups[0] {
			live = append(live, id)
		}
	}
	next, _, _ := m.WithFailover(primary, live)
	if next.Owner(shard) == primary || next.Owner(shard) == backups[0] {
		t.Fatalf("promoted %d; primary %d and backup %d are dead", next.Owner(shard), primary, backups[0])
	}
	if next.IsBackup(shard, primary) {
		t.Fatal("dead primary still in a backup set")
	}
}

// ErrBadReplica is the replication frame's reject error, distinct from
// the map's ErrBadMap so callers can tell a corrupt forward from a
// corrupt map payload.
func TestReplicaWireErrorsDistinct(t *testing.T) {
	if _, err := DecodeReplicaForward([]byte{1, 2, 3}); !errors.Is(err, ErrBadReplica) {
		t.Fatalf("short forward: %v", err)
	}
	if _, _, err := DecodeReplicaAck([]byte{1}); !errors.Is(err, ErrBadReplica) {
		t.Fatalf("short ack: %v", err)
	}
	if errors.Is(ErrBadReplica, ErrBadMap) {
		t.Fatal("ErrBadReplica aliases ErrBadMap")
	}
}
