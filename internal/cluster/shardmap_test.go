package cluster

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"flock/internal/fabric"
)

func mustMap(t *testing.T, members []fabric.NodeID, shards, vnodes int) *ShardMap {
	t.Helper()
	m, err := New(members, shards, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 8, 0); err == nil {
		t.Fatal("empty members accepted")
	}
	if _, err := New([]fabric.NodeID{1}, 0, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := New([]fabric.NodeID{1, 1}, 8, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
	m := mustMap(t, []fabric.NodeID{3, 1, 2}, 8, 0)
	if !reflect.DeepEqual(m.Members, []fabric.NodeID{1, 2, 3}) {
		t.Fatalf("members not sorted: %v", m.Members)
	}
	if m.Epoch != 1 || m.VNodes != DefaultVNodes {
		t.Fatalf("epoch=%d vnodes=%d", m.Epoch, m.VNodes)
	}
}

func TestPlacementCoversAndBalances(t *testing.T) {
	members := []fabric.NodeID{0, 1, 2, 3}
	m := mustMap(t, members, 64, 0)
	counts := map[fabric.NodeID]int{}
	for s := 0; s < m.Shards; s++ {
		counts[m.Owner(s)]++
	}
	for _, id := range members {
		if counts[id] == 0 {
			t.Fatalf("member %d owns no shards: %v", id, counts)
		}
	}
	// ShardOf stays in range and is deterministic.
	for k := uint64(0); k < 1000; k++ {
		s := m.ShardOf(k)
		if s < 0 || s >= m.Shards {
			t.Fatalf("ShardOf(%d) = %d out of range", k, s)
		}
		if s != m.ShardOf(k) {
			t.Fatal("ShardOf not deterministic")
		}
	}
}

func TestDesiredTableDeterministicAndStable(t *testing.T) {
	m := mustMap(t, []fabric.NodeID{0, 1, 2}, 32, 8)
	a := m.DesiredTable(m.Members)
	b := m.DesiredTable(m.Members)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("DesiredTable not deterministic")
	}
	// Removing one member must not move shards between the survivors
	// (consistent hashing's point).
	down := m.DesiredTable([]fabric.NodeID{0, 1})
	for s := range a {
		if a[s] != 2 && down[s] != a[s] {
			t.Fatalf("shard %d moved %d -> %d though its owner stayed live", s, a[s], down[s])
		}
	}
}

func TestPlanRebalance(t *testing.T) {
	m := mustMap(t, []fabric.NodeID{0, 1, 2}, 32, 8)
	if plan := m.PlanRebalance(m.Members); len(plan) != 0 {
		t.Fatalf("fresh map wants %d moves", len(plan))
	}
	plan := m.PlanRebalance([]fabric.NodeID{0, 1})
	if len(plan) == 0 {
		t.Fatal("no moves planned off member 2")
	}
	for _, mig := range plan {
		if mig.From != 2 {
			t.Fatalf("unexpected move %+v", mig)
		}
		if mig.To == 2 {
			t.Fatalf("move targets the removed member: %+v", mig)
		}
	}
	// A shard already pending is not planned again.
	p := m.WithPending(plan[0])
	again := p.PlanRebalance([]fabric.NodeID{0, 1})
	for _, mig := range again {
		if mig.Shard == plan[0].Shard {
			t.Fatalf("pending shard %d re-planned", mig.Shard)
		}
	}
}

func TestPendingAndHandoffEpochs(t *testing.T) {
	m := mustMap(t, []fabric.NodeID{0, 1}, 8, 4)
	var shard int
	for s := 0; s < m.Shards; s++ {
		if m.Owner(s) == 0 {
			shard = s
			break
		}
	}
	mig := Migration{Shard: shard, From: 0, To: 1}
	p := m.WithPending(mig)
	if p.Epoch != m.Epoch+1 || len(p.Pending) != 1 || p.Owner(shard) != 0 {
		t.Fatalf("pending map wrong: epoch=%d pending=%v owner=%d", p.Epoch, p.Pending, p.Owner(shard))
	}
	h := p.WithHandoff(shard, 1)
	if h.Epoch != p.Epoch+1 || len(h.Pending) != 0 || h.Owner(shard) != 1 {
		t.Fatalf("handoff map wrong: epoch=%d pending=%v owner=%d", h.Epoch, h.Pending, h.Owner(shard))
	}
	// Originals untouched (immutability).
	if m.Owner(shard) != 0 || len(m.Pending) != 0 {
		t.Fatal("WithPending/WithHandoff mutated the source map")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	m := mustMap(t, []fabric.NodeID{0, 2, 5}, 16, 4)
	m = m.WithPending(Migration{Shard: 3, From: m.Owner(3), To: 5})
	b := m.Encode()
	if len(b) != m.EncodedSize() {
		t.Fatalf("EncodedSize %d != len %d", m.EncodedSize(), len(b))
	}
	// WithPending may record From == To's owner; fix the pending entry to
	// reference members so decode validation passes by construction.
	got, err := DecodeShardMap(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, m)
	}
	if !bytes.Equal(got.Encode(), b) {
		t.Fatal("re-encode differs (not canonical)")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	m := mustMap(t, []fabric.NodeID{0, 1}, 8, 4)
	good := m.Encode()
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte{0, 0, 0, 0}, good[4:]...),
		"truncated": good[:len(good)-3],
		"padded":    append(append([]byte{}, good...), 0),
	}
	for name, b := range cases {
		if _, err := DecodeShardMap(b); !errors.Is(err, ErrBadMap) {
			t.Fatalf("%s: err = %v, want ErrBadMap", name, err)
		}
	}
	// Table owner outside the member set.
	bad := append([]byte{}, good...)
	bad[24+2*8] = 99 // first table entry low byte -> not a member
	if _, err := DecodeShardMap(bad); !errors.Is(err, ErrBadMap) {
		t.Fatalf("foreign owner: err = %v, want ErrBadMap", err)
	}
}
