package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flock/internal/fabric"
)

// Shard-map wire format (little-endian). This is what WrongShard NACKs
// and the map-fetch RPC carry, so it must decode defensively: the bytes
// may arrive corrupted (the fabric's CorruptProb faults flip bits) and
// DecodeShardMap must reject garbage with an error, never panic or
// allocate absurdly.
//
// FSM1 (unreplicated, Replicas == 0):
//
//	+0   magic    uint32  'F','S','M','1'
//	+4   epoch    uint64
//	+12  shards   uint32
//	+16  vnodes   uint32
//	+20  nMembers uint32
//	+24  members  nMembers × int64
//	...  table    shards × int64 (primary per shard)
//	...  nPending uint32
//	...  pending  nPending × (shard uint32, from int64, to int64)
//
// FSM2 (replicated, Replicas >= 1) inserts the replica sets between the
// table and the pending list:
//
//	...  replicas uint32  (R >= 1; an FSM2 frame with R == 0 is rejected
//	                       so every map has exactly one canonical encoding)
//	...  backups  per shard: count uint32, count × int64
//
// Encode picks the layout from Replicas, so an unreplicated map still
// produces byte-identical FSM1 frames and the pre-replication corpus
// stays valid.

const (
	wireMagic   = uint32('F') | uint32('S')<<8 | uint32('M')<<16 | uint32('1')<<24
	wireMagicV2 = uint32('F') | uint32('S')<<8 | uint32('M')<<16 | uint32('2')<<24

	// Sanity bounds: anything larger is corruption, not configuration.
	maxWireShards   = 1 << 16
	maxWireVNodes   = 1 << 12
	maxWireMembers  = 1 << 12
	maxWireReplicas = 1 << 8
)

// ErrBadMap reports undecodable shard-map bytes.
var ErrBadMap = errors.New("cluster: malformed shard map")

// EncodedSize returns the exact Encode output length.
func (m *ShardMap) EncodedSize() int {
	n := 24 + 8*len(m.Members) + 8*len(m.Table) + 4 + 20*len(m.Pending)
	if m.Replicas > 0 {
		n += 4 // replicas
		for s := 0; s < m.Shards; s++ {
			n += 4 + 8*len(m.BackupsOf(s))
		}
	}
	return n
}

// Encode serializes the map. The output is deterministic: equal maps
// encode to equal bytes, and each map has exactly one encoding (FSM1
// when unreplicated, FSM2 otherwise).
func (m *ShardMap) Encode() []byte {
	b := make([]byte, 0, m.EncodedSize())
	magic := wireMagic
	if m.Replicas > 0 {
		magic = wireMagicV2
	}
	b = binary.LittleEndian.AppendUint32(b, magic)
	b = binary.LittleEndian.AppendUint64(b, m.Epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Shards))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.VNodes))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Members)))
	for _, id := range m.Members {
		b = binary.LittleEndian.AppendUint64(b, uint64(id))
	}
	for _, id := range m.Table {
		b = binary.LittleEndian.AppendUint64(b, uint64(id))
	}
	if m.Replicas > 0 {
		b = binary.LittleEndian.AppendUint32(b, uint32(m.Replicas))
		for s := 0; s < m.Shards; s++ {
			bs := m.BackupsOf(s)
			b = binary.LittleEndian.AppendUint32(b, uint32(len(bs)))
			for _, id := range bs {
				b = binary.LittleEndian.AppendUint64(b, uint64(id))
			}
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Pending)))
	for _, p := range m.Pending {
		b = binary.LittleEndian.AppendUint32(b, uint32(p.Shard))
		b = binary.LittleEndian.AppendUint64(b, uint64(p.From))
		b = binary.LittleEndian.AppendUint64(b, uint64(p.To))
	}
	return b
}

// wireReader is a bounds-checked cursor over untrusted bytes.
type wireReader struct {
	b   []byte
	off int
	err bool
}

func (r *wireReader) u32() uint32 {
	if r.err || r.off+4 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *wireReader) u64() uint64 {
	if r.err || r.off+8 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// DecodeShardMap parses Encode output. It validates the magic, size
// bounds, exact length, sorted-unique members, table owners drawn from
// the member set, backup sets (bounded, distinct, never the primary),
// and pending entries referencing valid shards and members — a map that
// decodes is safe to route by.
func DecodeShardMap(b []byte) (*ShardMap, error) {
	r := &wireReader{b: b}
	magic := r.u32()
	if magic != wireMagic && magic != wireMagicV2 {
		return nil, fmt.Errorf("%w: bad magic", ErrBadMap)
	}
	m := &ShardMap{Epoch: r.u64()}
	shards, vnodes, nMembers := r.u32(), r.u32(), r.u32()
	if r.err || shards == 0 || shards > maxWireShards ||
		vnodes == 0 || vnodes > maxWireVNodes ||
		nMembers == 0 || nMembers > maxWireMembers {
		return nil, fmt.Errorf("%w: bad geometry", ErrBadMap)
	}
	// Bound the remaining length before allocating.
	need := 8*int(nMembers) + 8*int(shards) + 4
	if len(b)-r.off < need {
		return nil, fmt.Errorf("%w: truncated", ErrBadMap)
	}
	m.Shards, m.VNodes = int(shards), int(vnodes)
	m.Members = make([]fabric.NodeID, nMembers)
	memberSet := make(map[fabric.NodeID]bool, nMembers)
	for i := range m.Members {
		id := fabric.NodeID(r.u64())
		if i > 0 && id <= m.Members[i-1] {
			return nil, fmt.Errorf("%w: members not sorted-unique", ErrBadMap)
		}
		m.Members[i] = id
		memberSet[id] = true
	}
	m.Table = make([]fabric.NodeID, shards)
	for i := range m.Table {
		id := fabric.NodeID(r.u64())
		if !memberSet[id] {
			return nil, fmt.Errorf("%w: table owner %d not a member", ErrBadMap, id)
		}
		m.Table[i] = id
	}
	if magic == wireMagicV2 {
		replicas := r.u32()
		if r.err || replicas == 0 || replicas > maxWireReplicas {
			// An FSM2 frame with zero replicas would alias the FSM1
			// encoding of the same map; reject so encoding stays canonical.
			return nil, fmt.Errorf("%w: bad replica count", ErrBadMap)
		}
		m.Replicas = int(replicas)
		m.Backups = make([][]fabric.NodeID, shards)
		for s := 0; s < int(shards); s++ {
			count := r.u32()
			if r.err || count > replicas {
				return nil, fmt.Errorf("%w: bad backup count", ErrBadMap)
			}
			if count == 0 {
				continue
			}
			if len(b)-r.off < 8*int(count) {
				return nil, fmt.Errorf("%w: truncated backups", ErrBadMap)
			}
			bs := make([]fabric.NodeID, count)
			for i := range bs {
				id := fabric.NodeID(r.u64())
				if !memberSet[id] || id == m.Table[s] {
					return nil, fmt.Errorf("%w: bad backup %d for shard %d", ErrBadMap, id, s)
				}
				for _, prev := range bs[:i] {
					if prev == id {
						return nil, fmt.Errorf("%w: duplicate backup %d for shard %d", ErrBadMap, id, s)
					}
				}
				bs[i] = id
			}
			m.Backups[s] = bs
		}
	}
	nPending := r.u32()
	if r.err || nPending > shards {
		return nil, fmt.Errorf("%w: bad pending count", ErrBadMap)
	}
	if nPending > 0 {
		m.Pending = make([]Migration, nPending)
		for i := range m.Pending {
			s := r.u32()
			from, to := fabric.NodeID(r.u64()), fabric.NodeID(r.u64())
			if r.err || s >= shards || !memberSet[from] || !memberSet[to] {
				return nil, fmt.Errorf("%w: bad pending entry", ErrBadMap)
			}
			m.Pending[i] = Migration{Shard: int(s), From: from, To: to}
		}
	}
	if r.err || r.off != len(b) {
		return nil, fmt.Errorf("%w: length mismatch", ErrBadMap)
	}
	return m, nil
}

// Replication wire format. A primary synchronously forwards every
// guarded apply to its backups as an RPCReplicate frame and ACKs the
// client only after every backup ACKed; the frame carries the sender's
// map epoch so a deposed primary (one that kept serving past a
// failover) is fenced with a WrongShard NACK instead of silently
// diverging a backup. Like the shard map these bytes cross the
// fault-injectable fabric, so both directions decode defensively.
//
// Forward (request):
//
//	+0   magic  uint32  'F','R','P','1'
//	+4   epoch  uint64  sender's map epoch
//	+12  shard  uint32
//	+16  n      uint32
//	+20  n × (key uint64, val uint64)
//
// Ack (StatusOK reply payload):
//
//	+0   epoch   uint64  replier's map epoch
//	+8   applied uint32  entries that advanced the backup's store

const (
	replMagic = uint32('F') | uint32('R')<<8 | uint32('P')<<16 | uint32('1')<<24

	replHeaderLen = 20
	replAckLen    = 12

	// maxWireReplEntries bounds one forward frame; larger is corruption.
	maxWireReplEntries = 1 << 16
)

// ErrBadReplica reports undecodable replication-frame bytes.
var ErrBadReplica = errors.New("cluster: malformed replication frame")

// ReplicaEntry is one key/value pair in a replication forward.
type ReplicaEntry struct {
	Key, Val uint64
}

// ReplicaForward is one decoded replication forward frame.
type ReplicaForward struct {
	// Epoch is the sending primary's map epoch at forward time.
	Epoch uint64
	// Shard is the shard every entry belongs to.
	Shard int
	// Entries are the guarded (take-the-max) applies to replay.
	Entries []ReplicaEntry
}

// AppendReplicaForward encodes f into b (which may be a pooled buffer
// sized with ReplicaForwardSize) and returns the extended slice.
func AppendReplicaForward(b []byte, f ReplicaForward) []byte {
	b = binary.LittleEndian.AppendUint32(b, replMagic)
	b = binary.LittleEndian.AppendUint64(b, f.Epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(f.Shard))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Entries)))
	for _, e := range f.Entries {
		b = binary.LittleEndian.AppendUint64(b, e.Key)
		b = binary.LittleEndian.AppendUint64(b, e.Val)
	}
	return b
}

// ReplicaForwardSize is the exact encoded length of a forward with n
// entries.
func ReplicaForwardSize(n int) int { return replHeaderLen + 16*n }

// DecodeReplicaForward parses a forward frame: magic, bounded entry
// count, exact length. It never panics on arbitrary bytes.
func DecodeReplicaForward(b []byte) (ReplicaForward, error) {
	r := &wireReader{b: b}
	var f ReplicaForward
	if r.u32() != replMagic {
		return f, fmt.Errorf("%w: bad magic", ErrBadReplica)
	}
	f.Epoch = r.u64()
	shard, n := r.u32(), r.u32()
	if r.err || shard >= maxWireShards || n > maxWireReplEntries {
		return f, fmt.Errorf("%w: bad geometry", ErrBadReplica)
	}
	if len(b) != ReplicaForwardSize(int(n)) {
		return f, fmt.Errorf("%w: length mismatch", ErrBadReplica)
	}
	f.Shard = int(shard)
	if n > 0 {
		f.Entries = make([]ReplicaEntry, n)
		for i := range f.Entries {
			f.Entries[i] = ReplicaEntry{Key: r.u64(), Val: r.u64()}
		}
	}
	return f, nil
}

// EncodeReplicaAck encodes a forward's ACK payload.
func EncodeReplicaAck(epoch uint64, applied int) []byte {
	b := make([]byte, 0, replAckLen)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	return binary.LittleEndian.AppendUint32(b, uint32(applied))
}

// DecodeReplicaAck parses an ACK payload.
func DecodeReplicaAck(b []byte) (epoch uint64, applied int, err error) {
	if len(b) != replAckLen {
		return 0, 0, fmt.Errorf("%w: ack length %d", ErrBadReplica, len(b))
	}
	return binary.LittleEndian.Uint64(b[0:8]), int(binary.LittleEndian.Uint32(b[8:12])), nil
}
