package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flock/internal/fabric"
)

// Shard-map wire format (little-endian). This is what WrongShard NACKs
// and the map-fetch RPC carry, so it must decode defensively: the bytes
// may arrive corrupted (the fabric's CorruptProb faults flip bits) and
// DecodeShardMap must reject garbage with an error, never panic or
// allocate absurdly.
//
//	+0   magic    uint32  'F','S','M','1'
//	+4   epoch    uint64
//	+12  shards   uint32
//	+16  vnodes   uint32
//	+20  nMembers uint32
//	+24  members  nMembers × int64
//	...  table    shards × int64 (owner per shard)
//	...  nPending uint32
//	...  pending  nPending × (shard uint32, from int64, to int64)

const (
	wireMagic = uint32('F') | uint32('S')<<8 | uint32('M')<<16 | uint32('1')<<24

	// Sanity bounds: anything larger is corruption, not configuration.
	maxWireShards  = 1 << 16
	maxWireVNodes  = 1 << 12
	maxWireMembers = 1 << 12
)

// ErrBadMap reports undecodable shard-map bytes.
var ErrBadMap = errors.New("cluster: malformed shard map")

// EncodedSize returns the exact Encode output length.
func (m *ShardMap) EncodedSize() int {
	return 24 + 8*len(m.Members) + 8*len(m.Table) + 4 + 20*len(m.Pending)
}

// Encode serializes the map. The output is deterministic: equal maps
// encode to equal bytes.
func (m *ShardMap) Encode() []byte {
	b := make([]byte, 0, m.EncodedSize())
	b = binary.LittleEndian.AppendUint32(b, wireMagic)
	b = binary.LittleEndian.AppendUint64(b, m.Epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Shards))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.VNodes))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Members)))
	for _, id := range m.Members {
		b = binary.LittleEndian.AppendUint64(b, uint64(id))
	}
	for _, id := range m.Table {
		b = binary.LittleEndian.AppendUint64(b, uint64(id))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Pending)))
	for _, p := range m.Pending {
		b = binary.LittleEndian.AppendUint32(b, uint32(p.Shard))
		b = binary.LittleEndian.AppendUint64(b, uint64(p.From))
		b = binary.LittleEndian.AppendUint64(b, uint64(p.To))
	}
	return b
}

// wireReader is a bounds-checked cursor over untrusted bytes.
type wireReader struct {
	b   []byte
	off int
	err bool
}

func (r *wireReader) u32() uint32 {
	if r.err || r.off+4 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *wireReader) u64() uint64 {
	if r.err || r.off+8 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// DecodeShardMap parses Encode output. It validates the magic, size
// bounds, exact length, sorted-unique members, table owners drawn from
// the member set, and pending entries referencing valid shards and
// members — a map that decodes is safe to route by.
func DecodeShardMap(b []byte) (*ShardMap, error) {
	r := &wireReader{b: b}
	if r.u32() != wireMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadMap)
	}
	m := &ShardMap{Epoch: r.u64()}
	shards, vnodes, nMembers := r.u32(), r.u32(), r.u32()
	if r.err || shards == 0 || shards > maxWireShards ||
		vnodes == 0 || vnodes > maxWireVNodes ||
		nMembers == 0 || nMembers > maxWireMembers {
		return nil, fmt.Errorf("%w: bad geometry", ErrBadMap)
	}
	// Bound the remaining length before allocating.
	need := 8*int(nMembers) + 8*int(shards) + 4
	if len(b)-r.off < need {
		return nil, fmt.Errorf("%w: truncated", ErrBadMap)
	}
	m.Shards, m.VNodes = int(shards), int(vnodes)
	m.Members = make([]fabric.NodeID, nMembers)
	memberSet := make(map[fabric.NodeID]bool, nMembers)
	for i := range m.Members {
		id := fabric.NodeID(r.u64())
		if i > 0 && id <= m.Members[i-1] {
			return nil, fmt.Errorf("%w: members not sorted-unique", ErrBadMap)
		}
		m.Members[i] = id
		memberSet[id] = true
	}
	m.Table = make([]fabric.NodeID, shards)
	for i := range m.Table {
		id := fabric.NodeID(r.u64())
		if !memberSet[id] {
			return nil, fmt.Errorf("%w: table owner %d not a member", ErrBadMap, id)
		}
		m.Table[i] = id
	}
	nPending := r.u32()
	if r.err || nPending > shards {
		return nil, fmt.Errorf("%w: bad pending count", ErrBadMap)
	}
	if nPending > 0 {
		m.Pending = make([]Migration, nPending)
		for i := range m.Pending {
			s := r.u32()
			from, to := fabric.NodeID(r.u64()), fabric.NodeID(r.u64())
			if r.err || s >= shards || !memberSet[from] || !memberSet[to] {
				return nil, fmt.Errorf("%w: bad pending entry", ErrBadMap)
			}
			m.Pending[i] = Migration{Shard: int(s), From: from, To: to}
		}
	}
	if r.err || r.off != len(b) {
		return nil, fmt.Errorf("%w: length mismatch", ErrBadMap)
	}
	return m, nil
}
