package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flock/internal/fabric"
)

// Native fuzz target for the shard-map wire format — the bytes every
// WrongShard NACK and RPCMap reply carry, which a router decodes from
// an untrusted (fault-injectable, corruptible) fabric. Seed corpus
// lives in testdata/fuzz; run with
//
//	go test -fuzz=FuzzDecodeShardMap -fuzztime=30s ./internal/cluster
//
// Properties: the decoder never panics on arbitrary bytes, a
// successful decode re-encodes to exactly the input (canonical form),
// and encode→decode is the identity for every well-formed map.

func fuzzSeedMap() *ShardMap {
	m, err := New([]fabric.NodeID{0, 1, 2}, 8, 4)
	if err != nil {
		panic(err)
	}
	return m
}

func fuzzSeedPendingMap() *ShardMap {
	m := fuzzSeedMap()
	return m.WithPending(Migration{Shard: 5, From: m.Owner(5), To: 2}).
		WithPending(Migration{Shard: 1, From: m.Owner(1), To: 0})
}

func FuzzDecodeShardMap(f *testing.F) {
	f.Add([]byte{})
	f.Add(fuzzSeedMap().Encode())
	f.Add(fuzzSeedPendingMap().Encode())
	// Truncated and bit-flipped variants of a valid encoding.
	good := fuzzSeedPendingMap().Encode()
	f.Add(good[:len(good)-5])
	for _, i := range []int{0, 8, 20, 30, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		f.Add(bad)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeShardMap(data) // must not panic, whatever the bytes
		if err != nil {
			return
		}
		// A decoded map is structurally routable...
		if m.Shards != len(m.Table) {
			t.Fatalf("accepted %d shards with %d table entries", m.Shards, len(m.Table))
		}
		for k := uint64(0); k < 32; k++ {
			s := m.ShardOf(k)
			if s < 0 || s >= m.Shards {
				t.Fatalf("ShardOf out of range: %d", s)
			}
			_ = m.Owner(s)
		}
		// ...and the encoding is canonical: decode→encode gives the bytes
		// back.
		if !bytes.Equal(m.Encode(), data) {
			t.Fatalf("decode/encode not canonical for %d bytes", len(data))
		}
	})
}

func FuzzShardMapRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(8), uint8(4), uint8(0))
	f.Add(uint64(1<<40), uint8(5), uint8(32), uint8(16), uint8(3))
	f.Add(^uint64(0), uint8(1), uint8(1), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, epoch uint64, nMembers, shards, vnodes, nPending uint8) {
		if nMembers == 0 || shards == 0 || vnodes == 0 {
			return
		}
		members := make([]fabric.NodeID, nMembers)
		for i := range members {
			members[i] = fabric.NodeID(i * 3)
		}
		m, err := New(members, int(shards), int(vnodes))
		if err != nil {
			t.Fatal(err)
		}
		m.Epoch = epoch
		// At most one pending migration per shard (the decoder enforces
		// nPending <= shards).
		pend := int(nPending)
		if pend > m.Shards {
			pend = m.Shards
		}
		for s := 0; s < pend; s++ {
			m = m.WithPending(Migration{Shard: s, From: m.Owner(s), To: members[s%len(members)]})
		}
		m.Epoch = epoch // pin the epoch regardless of pending bumps
		got, err := DecodeShardMap(m.Encode())
		if err != nil {
			t.Fatalf("valid map rejected: %v", err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, m)
		}
	})
}

// --- replication frames ---
//
// The FRP1 forward and its fixed-size ack cross the same untrusted
// fabric as the shard map, between nodes that may disagree about the
// epoch; the decoder is the first thing a backup runs on every
// replicated write. Same properties as the map: never panic, canonical
// re-encode, encode→decode identity.

func fuzzSeedForward() ReplicaForward {
	return ReplicaForward{
		Epoch: 7,
		Shard: 3,
		Entries: []ReplicaEntry{
			{Key: 0x1122334455667788, Val: 1},
			{Key: 2, Val: 0xFFFFFFFFFFFFFFFF},
		},
	}
}

// fuzzSeedBatchForward is the shape group commit actually puts on the
// wire: one frame carrying a full coalesced flush (ReplTuning's default
// entry cap), not the single- and two-entry frames the pre-batching
// protocol sent. Seeding it keeps the fuzzer anchored on the multi-entry
// length math — count field vs. trailing entry bytes — where a decoder
// bug would corrupt a whole batch of acked writes at once.
func fuzzSeedBatchForward() ReplicaForward {
	fw := ReplicaForward{Epoch: 9, Shard: 1}
	for i := 0; i < 8; i++ {
		k := uint64(i+1) * 0x0101010101010101
		fw.Entries = append(fw.Entries, ReplicaEntry{Key: k, Val: ^k})
	}
	return fw
}

func FuzzDecodeReplicaForward(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendReplicaForward(nil, fuzzSeedForward()))
	f.Add(AppendReplicaForward(nil, ReplicaForward{Epoch: 1, Shard: 0}))
	batch := AppendReplicaForward(nil, fuzzSeedBatchForward())
	f.Add(batch)
	f.Add(batch[:len(batch)-9]) // batch truncated mid-entry: count promises more than arrives
	good := AppendReplicaForward(nil, fuzzSeedForward())
	f.Add(good[:len(good)-7]) // truncated mid-entry
	for _, i := range []int{0, 4, 12, 16, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		f.Add(bad)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fw, err := DecodeReplicaForward(data) // must not panic
		if err != nil {
			return
		}
		if fw.Shard < 0 || len(fw.Entries) > maxWireReplEntries {
			t.Fatalf("accepted out-of-bounds frame: shard=%d n=%d", fw.Shard, len(fw.Entries))
		}
		if !bytes.Equal(AppendReplicaForward(nil, fw), data) {
			t.Fatalf("decode/encode not canonical for %d bytes", len(data))
		}
	})
}

func FuzzReplicaForwardRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(0), uint8(0), uint64(42))
	f.Add(uint64(1<<50), uint16(255), uint8(9), uint64(0))
	f.Add(^uint64(0), uint16(1023), uint8(200), ^uint64(0))
	f.Add(uint64(9), uint16(1), uint8(8), uint64(0x0101010101010101)) // a coalesced group-commit flush
	f.Fuzz(func(t *testing.T, epoch uint64, shard uint16, n uint8, kvSeed uint64) {
		fw := ReplicaForward{Epoch: epoch, Shard: int(shard) % maxWireShards}
		for i := 0; i < int(n); i++ {
			// Deterministic in the inputs — no RNG, so failures replay.
			k := kvSeed ^ uint64(i)*0x9E3779B97F4A7C15
			fw.Entries = append(fw.Entries, ReplicaEntry{Key: k, Val: k >> 3})
		}
		b := AppendReplicaForward(nil, fw)
		if len(b) != ReplicaForwardSize(len(fw.Entries)) {
			t.Fatalf("ReplicaForwardSize(%d) = %d, encoded %d",
				len(fw.Entries), ReplicaForwardSize(len(fw.Entries)), len(b))
		}
		got, err := DecodeReplicaForward(b)
		if err != nil {
			t.Fatalf("valid forward rejected: %v", err)
		}
		if got.Epoch != fw.Epoch || got.Shard != fw.Shard || !reflect.DeepEqual(got.Entries, fw.Entries) {
			t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, fw)
		}

		// The ack rides along: fixed length, exact round trip, and every
		// non-ack length is rejected.
		applied := int(n)
		ack := EncodeReplicaAck(epoch, applied)
		e2, a2, err := DecodeReplicaAck(ack)
		if err != nil || e2 != epoch || a2 != applied {
			t.Fatalf("ack roundtrip: (%d,%d,%v)", e2, a2, err)
		}
		if _, _, err := DecodeReplicaAck(ack[:len(ack)-1]); err == nil {
			t.Fatal("truncated ack accepted")
		}
		if _, _, err := DecodeReplicaAck(append(ack, 0)); err == nil {
			t.Fatal("padded ack accepted")
		}
	})
}

// TestFuzzCorpusFresh regenerates the checked-in seed corpus whenever
// the wire layout changes, and fails the run that found it stale so the
// refresh gets committed. The files are deterministic, so a clean tree
// stays clean.
func TestFuzzCorpusFresh(t *testing.T) {
	entries := map[string][]byte{
		"testdata/fuzz/FuzzDecodeShardMap/seed-basic": corpusBytes(
			fuzzSeedMap().Encode()),
		"testdata/fuzz/FuzzDecodeShardMap/seed-pending": corpusBytes(
			fuzzSeedPendingMap().Encode()),
		"testdata/fuzz/FuzzDecodeShardMap/seed-empty": corpusBytes(nil),
		"testdata/fuzz/FuzzShardMapRoundTrip/seed-basic": []byte(
			"go test fuzz v1\nuint64(1)\nbyte(2)\nbyte(8)\nbyte(4)\nbyte(0)\n"),
		"testdata/fuzz/FuzzShardMapRoundTrip/seed-pending": []byte(
			"go test fuzz v1\nuint64(1099511627776)\nbyte(5)\nbyte(32)\nbyte(16)\nbyte(3)\n"),
		"testdata/fuzz/FuzzDecodeReplicaForward/seed-basic": corpusBytes(
			AppendReplicaForward(nil, fuzzSeedForward())),
		"testdata/fuzz/FuzzDecodeReplicaForward/seed-empty-entries": corpusBytes(
			AppendReplicaForward(nil, ReplicaForward{Epoch: 1, Shard: 0})),
		"testdata/fuzz/FuzzDecodeReplicaForward/seed-garbage": corpusBytes(nil),
		"testdata/fuzz/FuzzDecodeReplicaForward/seed-batch": corpusBytes(
			AppendReplicaForward(nil, fuzzSeedBatchForward())),
		"testdata/fuzz/FuzzReplicaForwardRoundTrip/seed-basic": []byte(
			"go test fuzz v1\nuint64(1)\nuint16(0)\nbyte(0)\nuint64(42)\n"),
		"testdata/fuzz/FuzzReplicaForwardRoundTrip/seed-deep": []byte(
			"go test fuzz v1\nuint64(1125899906842624)\nuint16(255)\nbyte(9)\nuint64(0)\n"),
		"testdata/fuzz/FuzzReplicaForwardRoundTrip/seed-batch": []byte(
			"go test fuzz v1\nuint64(9)\nuint16(1)\nbyte(8)\nuint64(72340172838076673)\n"),
	}
	for path, want := range entries {
		got, err := os.ReadFile(path)
		if err == nil && bytes.Equal(got, want) {
			continue
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Errorf("seed corpus %s was stale; regenerated — commit the refresh", path)
	}
}

// corpusBytes renders one []byte fuzz-corpus entry in the go test
// corpus file format.
func corpusBytes(b []byte) []byte {
	return []byte(fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b))
}
