package core

import (
	"runtime"
	"time"

	"flock/internal/telemetry"
)

// This file is the batched submission path: SendBatch enqueues a thread's
// whole request batch into a QP's combining queue with one tail swap, so a
// single leader claims the lot and posts it under one doorbell — the
// combining win of §4.2 made available to one thread, not just to threads
// that happen to collide. Each request still gets its own completion
// record and Pending future; after submission the batch's calls are
// indistinguishable from CallAsync calls, with the same retry, hedging
// and dedup behaviour at Wait time.

// BatchOp is one request in a SendBatch submission.
type BatchOp struct {
	// RPCID selects the handler, as in Call.
	RPCID uint32
	// Payload is the request payload; it must stay untouched until the
	// op's Pending resolves (the combining leader may copy it late).
	Payload []byte
}

// SendBatch submits every op in one combining-queue entry and returns a
// Pending per op, index-aligned with ops. The batch rides the resilient
// plan of CallOpts (opts semantics identical); breaker admission is
// checked once for the whole batch. Ops that fail terminally during
// submission (node closing, submit deadline) come back as already-resolved
// Pendings — SendBatch itself errors only when nothing was submitted.
//
// The batch counts against Options.PipelineDepth in full: SendBatch blocks
// until the thread's pending-call table has room for len(ops) more.
func (t *Thread) SendBatch(ops []BatchOp, opts CallOptions) ([]*Pending, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	c := t.conn
	o := &c.node.opts
	for _, op := range ops {
		if len(op.Payload) > o.MaxPayload {
			return nil, ErrPayloadTooLarge
		}
	}
	if c.node.draining.Load() {
		return nil, ErrDraining
	}
	if c.isClosed() {
		return nil, c.closedErr()
	}
	if !c.breaker.Allow() {
		return nil, ErrCircuitOpen
	}
	if err := t.gatePipeline(len(ops)); err != nil {
		return nil, err
	}

	now := time.Now()
	pends := make([]*Pending, len(ops))
	nodes := make([]*tcqNode, len(ops))
	for i, op := range ops {
		p := new(Pending)
		t.newPending(p, op.RPCID, op.Payload, opts, true) //nolint:errcheck // payload validated above
		rec := t.pend.get()
		t.seq++
		rec.seq = t.seq
		depth := t.pend.register(rec)
		c.node.pipeDepth.Observe(uint64(depth))
		p.rec = rec
		p.started = now
		nodes[i] = t.batchNode(op, p)
		pends[i] = p
	}

	// Submit rounds: push the still-unsent subset as one pre-linked chain,
	// drive it to verdicts (running the leader protocol on any of our nodes
	// that gets promoted), and re-push migrated/timed-out ops on the next
	// QP choice with fresh nodes (a consumed node's state and link are
	// dirty).
	idx := make([]int, len(ops))
	for i := range idx {
		idx[i] = i
	}
	deadline := pends[0].deadline
	for round := 0; len(idx) > 0; round++ {
		q := t.pickQP()
		chain := make([]*tcqNode, len(idx))
		var last *tcqNode
		for k, i := range idx {
			n := nodes[i]
			pends[i].rec.qp.Store(int32(q.idx))
			c.node.trace.Record(telemetry.EvEnqueue, q.idx, t.id, n.seqID, uint64(len(n.payload)))
			if last != nil {
				last.next.Store(n)
			}
			chain[k] = n
			last = n
		}
		q.tcq.pushChain(chain[0], last)
		verdicts := c.awaitBatch(t, q, chain)

		var redo []int
		sent, timedOut := false, false
		for k, v := range verdicts {
			i := idx[k]
			switch v {
			case stateSent:
				sent = true
				t.recordStat(len(ops[i].Payload))
			case stateTimedOut:
				timedOut = true
				fallthrough
			case stateMigrate:
				redo = append(redo, i)
			default: // stateAborted
				err := c.closedErr()
				t.pend.abandon(pends[i].rec)
				pends[i].rec = nil
				pends[i].fail(err)
			}
		}
		// The avoid rule of the single-submit path, batch-wide: a stalled
		// leader on this QP means re-elect elsewhere; a clean round clears
		// the grudge.
		if timedOut {
			t.avoidQP = int32(q.idx)
		} else if sent {
			t.avoidQP = -1
		}
		if len(redo) > 0 && !deadline.IsZero() && time.Now().After(deadline) {
			for _, i := range redo {
				t.pend.abandon(pends[i].rec)
				pends[i].rec = nil
				pends[i].fail(ErrTimeout)
			}
			redo = nil
		}
		for _, i := range redo {
			nodes[i] = t.batchNode(ops[i], pends[i])
		}
		if len(redo) > 0 {
			idleBackoff(round)
		}
		idx = redo
	}

	// Arm the in-flight state of every op that made it onto the wire,
	// mirroring startAttempt's post-submit bookkeeping.
	for _, p := range pends {
		if p.phase == pendDone {
			continue
		}
		if p.attemptWait > 0 {
			p.aDeadline = time.Now().Add(p.attemptWait)
			if !p.deadline.IsZero() && p.aDeadline.After(p.deadline) {
				p.aDeadline = p.deadline
			}
		}
		if p.resilient && p.hedge > 0 {
			if at := time.Now().Add(p.hedge); p.aDeadline.IsZero() || at.Before(p.aDeadline) {
				p.hedgeAt = at
			}
		}
		p.phase = pendInflight
	}
	return pends, nil
}

// batchNode builds a fresh combining-queue node for one batch op. The node
// is flagged leaderCopies: the submitting thread polls the whole chain at
// once, so the copy handshake (which would ask this same goroutine to
// copy while it leads) is replaced by the leader writing the payload.
func (t *Thread) batchNode(op BatchOp, p *Pending) *tcqNode {
	return &tcqNode{
		kind:         opRPC,
		rpcID:        op.RPCID,
		seqID:        p.rec.seq,
		threadID:     t.id,
		idemKey:      p.idemKey,
		payload:      op.Payload,
		leaderCopies: true,
	}
}

// awaitBatch drives one pushed chain of batch nodes to final verdicts,
// index-aligned with chain. Any chain node promoted to leadership runs the
// leader protocol right here — its claimed siblings (ours included) get
// their verdicts from that run. The stall guard matches awaitVerdict: a
// node stuck waiting past StallTimeout with no progress anywhere in the
// chain is abandoned via the waiting→timedOut CAS.
func (c *Conn) awaitBatch(th *Thread, q *connQP, chain []*tcqNode) []uint32 {
	verdicts := make([]uint32, len(chain))
	resolved := 0
	stall := c.node.opts.StallTimeout
	var deadline time.Time
	if stall > 0 {
		deadline = time.Now().Add(stall)
	}
	spins := 0
	for resolved < len(chain) {
		progressed := false
		for i, n := range chain {
			if verdicts[i] != stateWaiting {
				continue
			}
			switch s := n.state.Load(); s {
			case stateSent, stateMigrate, stateAborted, stateTimedOut:
				verdicts[i] = s
				resolved++
				progressed = true
			case stateLeader:
				verdicts[i] = c.lead(th, q, n)
				resolved++
				progressed = true
			case stateCopy:
				// Not reachable from leaders honouring leaderCopies; kept
				// for protocol completeness so a copy request can never
				// wedge the batch.
				if len(n.payload) > 0 {
					q.reqStaging.WriteAt(n.payload, n.bufOff) //nolint:errcheck // leader sized the slot
				}
				n.copied.Store(1)
				n.state.CompareAndSwap(stateCopy, stateClaimed)
				progressed = true
			case stateWaiting:
				if stall > 0 && spins%256 == 0 && time.Now().After(deadline) &&
					n.state.CompareAndSwap(stateWaiting, stateTimedOut) {
					verdicts[i] = stateTimedOut
					resolved++
					progressed = true
				}
			case stateClaimed:
				// A leader owns the node; its waits are stall-bounded, so a
				// verdict is coming.
			}
		}
		if progressed {
			if stall > 0 {
				deadline = time.Now().Add(stall)
			}
		} else {
			spins++
			runtime.Gosched()
		}
	}
	return verdicts
}
