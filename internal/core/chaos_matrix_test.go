package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"flock/internal/fabric"
)

// The chaos matrix: the suite's seeded fault plans as a table of named
// scenarios instead of ad-hoc per-test constants. Every cell drives the
// same mixed echo+kv workload and asserts the same recovery invariants;
// what varies is the named fault plan and its seed. On failure the test
// logs the seed and the plan's schedule hash plus the exact one-command
// rerun, so a CI flake reproduces locally without archaeology. (Plans
// 1–3 keep their dedicated tests above — they need the stall hook or
// QPN retargeting that doesn't fit a flat table.)

// planHash fingerprints a fault plan the way Schedule.Hash fingerprints
// an explorer schedule: a stable FNV-1a fold over every field that
// affects injection, for log correlation across runs.
func planHash(p *fabric.FaultPlan) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(p.Seed)
	mix(math.Float64bits(p.RCLossProb))
	mix(math.Float64bits(p.CorruptProb))
	mix(math.Float64bits(p.RCDelayProb))
	mix(uint64(p.RCDelay))
	for _, l := range p.Links {
		mix(uint64(l.Src))
		mix(uint64(l.Dst))
		mix(uint64(l.QPN))
		mix(l.DownAfter)
		mix(l.DownFor)
		if l.Repeat {
			mix(1)
		}
	}
	return h
}

func TestChaosMatrix(t *testing.T) {
	type cell struct {
		name string
		seed uint64
		// plan builds the fault plan for this cell; src/dst are the
		// client and server node IDs.
		plan func(src, dst fabric.NodeID) *fabric.FaultPlan
	}
	cells := []cell{
		{name: "outage-window", seed: 21, plan: func(src, dst fabric.NodeID) *fabric.FaultPlan {
			return &fabric.FaultPlan{Seed: 21, Links: []fabric.LinkFault{
				{Src: src, Dst: dst, DownAfter: 50, DownFor: 300},
			}}
		}},
		{name: "outage-window", seed: 22, plan: func(src, dst fabric.NodeID) *fabric.FaultPlan {
			return &fabric.FaultPlan{Seed: 22, Links: []fabric.LinkFault{
				{Src: src, Dst: dst, DownAfter: 25, DownFor: 150},
			}}
		}},
		{name: "rc-loss", seed: 31, plan: func(src, dst fabric.NodeID) *fabric.FaultPlan {
			return &fabric.FaultPlan{Seed: 31, RCLossProb: 0.03}
		}},
		{name: "rc-loss", seed: 32, plan: func(src, dst fabric.NodeID) *fabric.FaultPlan {
			return &fabric.FaultPlan{Seed: 32, RCLossProb: 0.05}
		}},
		{name: "corruption-as-loss", seed: 41, plan: func(src, dst fabric.NodeID) *fabric.FaultPlan {
			return &fabric.FaultPlan{Seed: 41, CorruptProb: 0.02}
		}},
		{name: "congested-link", seed: 51, plan: func(src, dst fabric.NodeID) *fabric.FaultPlan {
			return &fabric.FaultPlan{Seed: 51, RCDelayProb: 0.10, RCDelay: 50 * time.Microsecond}
		}},
		{name: "loss-plus-outage", seed: 61, plan: func(src, dst fabric.NodeID) *fabric.FaultPlan {
			return &fabric.FaultPlan{Seed: 61, RCLossProb: 0.02, Links: []fabric.LinkFault{
				{Src: src, Dst: dst, DownAfter: 80, DownFor: 200},
			}}
		}},
		{name: "flapping-link", seed: 71, plan: func(src, dst fabric.NodeID) *fabric.FaultPlan {
			return &fabric.FaultPlan{Seed: 71, Links: []fabric.LinkFault{
				{Src: src, Dst: dst, DownAfter: 40, DownFor: 80, Repeat: true},
			}}
		}},
	}

	for _, c := range cells {
		c := c
		t.Run(fmt.Sprintf("%s/seed=%d", c.name, c.seed), func(t *testing.T) {
			sOpts := Options{QPsPerConn: 2}
			cOpts := Options{
				QPsPerConn:    2,
				RPCTimeout:    100 * time.Millisecond,
				StallTimeout:  10 * time.Millisecond,
				FlapThreshold: -1,
				RCRetries:     3,
			}
			tc := newTestCluster(t, 1, sOpts, cOpts)
			registerEcho(tc.server)
			registerKV(t, tc.server)
			conn, err := tc.clients[0].Connect(0)
			if err != nil {
				t.Fatal(err)
			}
			plan := c.plan(tc.clients[0].ID(), tc.server.ID())
			// The one-command rerun, logged up front so any failure below
			// — including a timeout panic — carries it.
			t.Logf("scenario=%s seed=%d schedule-hash=%016x rerun: go test -run 'TestChaosMatrix/%s/seed=%d' ./internal/core",
				c.name, c.seed, planHash(plan), c.name, c.seed)
			tc.net.Fabric().SetFaultPlan(plan)

			const nEcho, perEcho = 3, 12
			const kvKey, kvRounds = uint64(500), uint64(20)
			var wg sync.WaitGroup
			for g := 0; g < nEcho; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					th := conn.RegisterThread()
					for i := 0; i < perEcho; i++ {
						callUntilOK(t, th, []byte(fmt.Sprintf("%s-%d-%d", c.name, g, i)))
					}
				}(g)
			}
			var kvFinal uint64
			wg.Add(1)
			go func() {
				defer wg.Done()
				kvFinal = kvDrive(t, conn.RegisterThread(), kvKey, kvRounds)
			}()
			wg.Wait()
			if t.Failed() {
				return
			}
			if kvFinal != kvRounds {
				t.Fatalf("kv finished at %d/%d acknowledged puts", kvFinal, kvRounds)
			}
			// The plan must actually have injected something, or the cell
			// is vacuous and belongs out of the matrix.
			fs := tc.net.Fabric().FaultCounters()
			if fs.RCDropped == 0 && fs.LinkDownDrops == 0 && fs.Corrupted == 0 && fs.RCDelayed == 0 {
				t.Fatal("fault plan injected nothing — vacuous scenario")
			}
			// Recovered: fresh traffic flows and the final kv state holds
			// exactly the last acknowledged counter.
			th := conn.RegisterThread()
			callUntilOK(t, th, []byte("post-"+c.name))
			req := make([]byte, 8)
			binary.LittleEndian.PutUint64(req, kvKey)
			deadline := time.Now().Add(chaosDeadline)
			for {
				resp, err := th.Call(kvGetID, req)
				if err == nil && resp.Status == StatusOK && len(resp.Data) >= 8 {
					got := binary.LittleEndian.Uint64(resp.Data[:8])
					resp.Release()
					if got != kvRounds {
						t.Fatalf("final kv counter %d != %d — lost or replayed put", got, kvRounds)
					}
					break
				}
				resp.Release()
				if time.Now().After(deadline) {
					t.Fatalf("final kv get never succeeded: %v", err)
				}
			}
		})
	}
}
