package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flock/internal/fabric"
	"flock/internal/kvstore"
)

// Chaos suite: drive real RPC traffic while seeded fault plans break QPs
// underneath it, and assert the recovery invariants end to end — no
// deadlock (every call returns within the harness deadline), no lost or
// duplicated responses (every call eventually returns exactly its own
// echo), and eventual recovery (traffic is healthy again once the fault
// clears, with the expected recovery actions visible in the metrics).

// chaosDeadline bounds every wait in the suite; generous because CI may
// pin the whole test to one CPU.
const chaosDeadline = 30 * time.Second

// waitFor polls cond until it holds or the chaos deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(chaosDeadline)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// callUntilOK retries one echo exchange until it succeeds, failing the
// test if the chaos deadline expires — the "no deadlock, no lost
// response" assertion. Each Call returns at most once per invocation and
// matches its response by sequence ID, so a successful return with the
// right payload is also the no-duplication check: stale or repeated
// responses are dropped inside the client, never surfaced.
func callUntilOK(t *testing.T, th *Thread, payload []byte) {
	t.Helper()
	deadline := time.Now().Add(chaosDeadline)
	for {
		resp, err := th.Call(echoID, payload)
		if err == nil {
			if !bytes.Equal(resp.Data, payload) {
				t.Errorf("response/request mismatch: %q != %q", resp.Data, payload)
			}
			resp.Release()
			return
		}
		if !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrQPBroken) {
			t.Errorf("fatal error under faults: %v", err)
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("call never completed: last error %v", err)
			return
		}
	}
}

// KV RPCs layered over internal/kvstore for the chaos suite: puts carry a
// per-key monotonic counter and the handler applies only newer values, so
// a stale retry of an abandoned (deadline-expired) attempt can never roll
// a key backwards — the client-visible contract is monotonic per key.
const (
	kvPutID = 2
	kvGetID = 3
)

// registerKV exports a kvstore arena on the server and registers put/get
// handlers over it. Handlers run inline on the server dispatcher (the
// cluster uses Workers=0), so they need no extra synchronization.
func registerKV(t *testing.T, n *Node) {
	t.Helper()
	const capacity, valSize = 64, 8
	arena, err := n.ExportMR("chaos-kv", kvstore.ArenaSize(capacity, valSize))
	if err != nil {
		t.Fatal(err)
	}
	store, err := kvstore.New(arena, capacity, valSize)
	if err != nil {
		t.Fatal(err)
	}
	n.RegisterHandler(kvPutID, func(req []byte) []byte {
		key := binary.LittleEndian.Uint64(req[:8])
		cur := make([]byte, valSize)
		if _, err := store.Get(key, cur); err == nil &&
			binary.LittleEndian.Uint64(cur) >= binary.LittleEndian.Uint64(req[8:16]) {
			return []byte{0} // stale retry; already applied a newer value
		}
		if err := store.Apply(key, req[8:16]); err != nil {
			return []byte{1}
		}
		return []byte{0}
	})
	n.RegisterHandler(kvGetID, func(req []byte) []byte {
		key := binary.LittleEndian.Uint64(req[:8])
		out := make([]byte, valSize)
		if _, err := store.Get(key, out); err != nil {
			return nil // key never written
		}
		return out
	})
}

// kvDrive runs one thread's put/get mix under faults: every put carries
// the next counter for this thread's key, every get must observe a
// counter no older than the last acknowledged put and no newer than the
// last attempted one. Returns the final acknowledged counter.
func kvDrive(t *testing.T, th *Thread, key, rounds uint64) uint64 {
	t.Helper()
	req := make([]byte, 16)
	binary.LittleEndian.PutUint64(req[:8], key)
	acked := uint64(0)
	for i := uint64(1); i <= rounds; i++ {
		binary.LittleEndian.PutUint64(req[8:16], i)
		deadline := time.Now().Add(chaosDeadline)
		for {
			resp, err := th.Call(kvPutID, req)
			applied := err == nil && resp.Status == StatusOK && len(resp.Data) == 1 && resp.Data[0] == 0
			resp.Release() // nil-safe on the error path
			if applied {
				acked = i
				break
			}
			if err != nil && !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrQPBroken) {
				t.Errorf("kv put: fatal error under faults: %v", err)
				return acked
			}
			if time.Now().After(deadline) {
				t.Errorf("kv put %d never acknowledged", i)
				return acked
			}
		}
		if i%8 != 0 {
			continue
		}
		resp, err := th.Call(kvGetID, req[:8])
		if err != nil || resp.Status != StatusOK || len(resp.Data) < 8 {
			resp.Release()
			continue // transient; monotonicity is checked on the next get
		}
		got := binary.LittleEndian.Uint64(resp.Data[:8])
		resp.Release()
		if got < acked || got > i {
			t.Errorf("kv get: counter %d outside [%d,%d] — lost or replayed put", got, acked, i)
			return acked
		}
	}
	return acked
}

// TestChaosRetryExhaustionRecycles is fault plan 1: a scheduled outage
// window on the client→server link exhausts the RC retry budget, breaking
// QPs mid-traffic. The connection must recycle them and every in-flight
// and subsequent call must still complete with its own echo.
func TestChaosRetryExhaustionRecycles(t *testing.T) {
	sOpts := Options{QPsPerConn: 2}
	cOpts := Options{
		QPsPerConn:    2,
		RPCTimeout:    100 * time.Millisecond,
		StallTimeout:  10 * time.Millisecond,
		FlapThreshold: -1, // this plan tests recycling; never quarantine
		RCRetries:     3,
	}
	tc := newTestCluster(t, 1, sOpts, cOpts)
	registerEcho(tc.server)
	registerKV(t, tc.server)
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th0 := conn.RegisterThread()
	callUntilOK(t, th0, []byte("warm"))

	// Plan 1: after 40 more transmission attempts the link goes down for
	// 400 attempts — long enough that retransmissions burn the retry
	// budget many times over — then recovers for good.
	tc.net.Fabric().SetFaultPlan(&fabric.FaultPlan{
		Seed: 1,
		Links: []fabric.LinkFault{
			{Src: tc.clients[0].ID(), Dst: tc.server.ID(), DownAfter: 40, DownFor: 400},
		},
	})

	// Mixed traffic: echo threads assert exactly-once delivery of their
	// own payloads; kvstore threads assert per-key monotonicity (no lost
	// or replayed put) through the same fault window.
	const nThreads, perThread = 4, 25
	const nKVThreads, kvRounds = 2, 40
	var wg sync.WaitGroup
	for g := 0; g < nThreads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := th0
			if g > 0 {
				th = conn.RegisterThread()
			}
			for i := 0; i < perThread; i++ {
				callUntilOK(t, th, []byte(fmt.Sprintf("t%02d-%04d", g, i)))
			}
		}(g)
	}
	kvFinal := make([]uint64, nKVThreads)
	for g := 0; g < nKVThreads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			kvFinal[g] = kvDrive(t, conn.RegisterThread(), uint64(100+g), kvRounds)
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// After the fault window every key must hold exactly its final
	// acknowledged counter — nothing lost, nothing replayed.
	for g := 0; g < nKVThreads; g++ {
		if kvFinal[g] != kvRounds {
			t.Fatalf("kv thread %d finished at %d/%d puts", g, kvFinal[g], kvRounds)
		}
		req := make([]byte, 8)
		binary.LittleEndian.PutUint64(req, uint64(100+g))
		var resp Response
		var err error
		deadline := time.Now().Add(chaosDeadline)
		for {
			resp, err = th0.Call(kvGetID, req)
			if err == nil && len(resp.Data) >= 8 {
				break
			}
			resp.Release()
			if time.Now().After(deadline) {
				t.Fatalf("final kv get: %v (%d bytes)", err, len(resp.Data))
			}
		}
		got := binary.LittleEndian.Uint64(resp.Data[:8])
		resp.Release()
		if got != kvRounds {
			t.Fatalf("final kv counter %d != %d", got, kvRounds)
		}
	}

	if fs := tc.net.Fabric().FaultCounters(); fs.RCDropped == 0 {
		t.Fatal("fault plan injected nothing — the chaos run was vacuous")
	}
	m := tc.clients[0].Metrics()
	if m.QPRecycles == 0 {
		t.Fatalf("no QP recycle despite retry exhaustion (metrics %+v)", m)
	}
	if m.QPQuarantines != 0 {
		t.Fatalf("quarantine disabled yet QPs were quarantined (metrics %+v)", m)
	}
	// Recovered: the fault window is exhausted, so a fresh exchange works.
	callUntilOK(t, th0, []byte("post-fault"))
}

// TestChaosLeaderStallReelection is fault plan 2: a combining leader
// wedges (via the test hook) while holding the TCQ on one QP; its
// followers must time out, re-elect on the other QP, and complete —
// with light seeded RC loss running underneath as background noise.
func TestChaosLeaderStallReelection(t *testing.T) {
	var wedged atomic.Bool
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderStallHook = func(c *Conn, q *connQP) {
		if q.idx == 0 && wedged.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
	}
	defer func() { leaderStallHook = nil }()

	sOpts := Options{QPsPerConn: 2}
	cOpts := Options{
		QPsPerConn:   2,
		RPCTimeout:   300 * time.Millisecond,
		StallTimeout: 3 * time.Millisecond,
	}
	tc := newTestCluster(t, 1, sOpts, cOpts)
	registerEcho(tc.server)
	// Plan 2: background retransmit noise under the stall scenario.
	tc.net.Fabric().SetFaultPlan(&fabric.FaultPlan{Seed: 2, RCLossProb: 0.02})
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}

	const nThreads, perThread = 4, 8
	var done atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < nThreads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := conn.RegisterThread()
			for i := 0; i < perThread; i++ {
				callUntilOK(t, th, []byte(fmt.Sprintf("t%02d-%04d", g, i)))
			}
			done.Add(1)
		}(g)
	}

	// One goroutine leads QP 0 and wedges; every other goroutine must
	// finish all its calls while it is still stuck — that is the
	// follower-timeout / re-election path working.
	select {
	case <-entered:
	case <-time.After(chaosDeadline):
		t.Fatal("no leader ever wedged on QP 0")
	}
	waitFor(t, "other goroutines to finish around the wedged leader", func() bool {
		return done.Load() >= nThreads-1 || t.Failed()
	})
	if done.Load() == nThreads {
		t.Fatal("all goroutines finished while one should be wedged in lead()")
	}
	close(release)
	wg.Wait()
	if t.Failed() {
		return
	}
	if m := tc.clients[0].Metrics(); m.ThreadMigrations == 0 {
		t.Fatalf("no thread migration despite forced re-election (metrics %+v)", m)
	}
}

// qpnOfQP reads a connQP's current queue pair number using the
// dispatcher's exclusion protocol, so it cannot race the recycler's swap
// of q.qp: holding polling>0 with broken unset pins the QP.
func qpnOfQP(q *connQP) (int, bool) {
	q.polling.Add(1)
	defer q.polling.Add(-1)
	if q.broken.Load() {
		return 0, false
	}
	return q.qp.QPN(), true
}

// TestChaosLinkFlapQuarantine is fault plan 3: one QP's link keeps going
// down (the fault is retargeted to the replacement QP after every
// recycle), so the QP flaps past FlapThreshold. It must be quarantined —
// permanently retired — while traffic keeps flowing on the surviving QP.
func TestChaosLinkFlapQuarantine(t *testing.T) {
	sOpts := Options{QPsPerConn: 2}
	cOpts := Options{
		QPsPerConn:    2,
		RPCTimeout:    100 * time.Millisecond,
		StallTimeout:  10 * time.Millisecond,
		FlapThreshold: 2,
		RCRetries:     2,
	}
	tc := newTestCluster(t, 1, sOpts, cOpts)
	registerEcho(tc.server)
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	client, fab := tc.clients[0], tc.net.Fabric()
	q0 := conn.qps[0]

	// Traffic from two threads; thread 0 is assigned QP 0 and keeps
	// re-breaking it after each recycle, thread 1 rides QP 1 throughout.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := conn.RegisterThread()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := th.Call(echoID, []byte(fmt.Sprintf("t%02d-%04d", g, i)))
				if err == nil && resp.Status != StatusOK {
					t.Errorf("bad status %d", resp.Status)
					return
				}
				resp.Release()
				if err != nil && !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrQPBroken) {
					t.Errorf("fatal error under flaps: %v", err)
					return
				}
			}
		}(g)
	}

	// Plan 3: take QP 0's link down for good; after each recycle retarget
	// the fault at the replacement queue pair number so the QP flaps.
	qpn0, _ := qpnOfQP(q0)
	fab.SetFaultPlan(&fabric.FaultPlan{Seed: 3})
	fab.AddLinkFault(fabric.LinkFault{
		Src: client.ID(), Dst: tc.server.ID(), QPN: qpn0, DownFor: 0, // down forever
	})
	lastRecycles := uint64(0)
	waitFor(t, "QP 0 to flap into quarantine", func() bool {
		if t.Failed() {
			return true
		}
		m := client.Metrics()
		if m.QPQuarantines >= 1 {
			return true
		}
		if m.QPRecycles > lastRecycles {
			if qpn, ok := qpnOfQP(q0); ok {
				lastRecycles = m.QPRecycles
				fab.ClearLinkFaults()
				fab.AddLinkFault(fabric.LinkFault{
					Src: client.ID(), Dst: tc.server.ID(), QPN: qpn, DownFor: 0,
				})
			}
		}
		return false
	})
	fab.ClearLinkFaults()
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quarantine must stick: QP 0 is retired on both ends, the active set
	// excludes it, and traffic continues on the survivor.
	if !q0.disabled.Load() {
		t.Fatal("flapping QP not disabled after quarantine")
	}
	for _, idx := range conn.ActiveQPs() {
		if idx == 0 {
			t.Fatal("quarantined QP still in the active set")
		}
	}
	waitFor(t, "server-side quarantine", func() bool {
		return tc.server.Metrics().QPQuarantines >= 1
	})
	th := conn.RegisterThread()
	for i := 0; i < 20; i++ {
		callUntilOK(t, th, []byte(fmt.Sprintf("degraded-%04d", i)))
	}
	m := client.Metrics()
	if m.QPRecycles < uint64(cOpts.FlapThreshold) {
		t.Fatalf("expected %d recycles before quarantine, got %d", cOpts.FlapThreshold, m.QPRecycles)
	}
}
