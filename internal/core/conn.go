package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flock/internal/fabric"
	"flock/internal/resilience"
	"flock/internal/rnic"
	"flock/internal/stats"
	"flock/internal/telemetry"
)

// Control-region layout. Each QP has a small control MR on each side,
// written remotely with one-sided RDMA so no CPU coordination is needed:
//
// Client control region (written by the server's QP scheduler):
//
//	+0  granted   uint64  total credits ever granted on this QP
//	+8  active    uint64  1 = QP active, 0 = deactivated (§5.1)
//	+16 respHead  uint64  client's consumed head of the response ring
//	                      (published locally; the server RDMA-reads it
//	                      when starved for response-ring space)
//
// Server control region (published by the request dispatcher):
//
//	+0  reqHead   uint64  server's consumed head of the request ring
//	                      (the client RDMA-reads it when starved; the
//	                      fast path learns it from response piggybacks)
const (
	ctrlGrantedOff  = 0
	ctrlActiveOff   = 8
	ctrlRespHeadOff = 16
	ctrlBytes       = 64

	srvCtrlReqHeadOff = 0
	srvCtrlBytes      = 64
)

// Work-request ID tags. The top byte classifies the completion so the
// single CQ poller (the dispatcher) can demultiplex operations of threads
// sharing a QP — the wr_id annotation of §6.
const (
	tagShift         = 56
	tagMsg    uint64 = 1 << tagShift // coalesced message write
	tagMem    uint64 = 2 << tagShift // one-sided memory/atomic op
	tagFresh  uint64 = 3 << tagShift // head-refresh RDMA read
	tagCtrl   uint64 = 4 << tagShift // scheduler control write
	tagMarker uint64 = 5 << tagShift // ring wrap marker write
	tagRenew  uint64 = 6 << tagShift // credit-renewal write-imm
	tagMask   uint64 = 0xff << tagShift
)

// memWRID packs a memory-op completion identity: tag | threadID | seq.
func memWRID(threadID uint32, seq uint64) uint64 {
	return tagMem | uint64(threadID)<<28 | (seq & ((1 << 28) - 1))
}

// memWRThread recovers the thread ID from a memory-op WRID.
func memWRThread(wrid uint64) uint32 {
	return uint32(wrid>>28) & ((1 << 28) - 1)
}

// Conn is the connection handle (§3): the client side of a FLock
// connection to one remote node, multiplexing opts.QPsPerConn RC queue
// pairs among any number of registered threads.
type Conn struct {
	node   *Node
	remote fabric.NodeID
	qps    []*connQP

	threadMu sync.RWMutex
	threads  map[uint32]*Thread
	nextTID  atomic.Uint32

	// failed marks the handle fatally dead; failErr remembers why, so
	// closedErr can tell callers the true cause ("retry elsewhere" drain
	// pushback vs "give up" closure) instead of a generic ErrConnClosed.
	failed  atomic.Bool
	failErr atomic.Pointer[error]

	// retryBudget is the connection-wide token bucket gating retries on
	// the resilient call path; breaker is the per-remote circuit breaker,
	// nil unless Options.BreakerThreshold enables it.
	retryBudget *resilience.Budget
	breaker     *resilience.Breaker
}

// connQP is the client end of one shared queue pair.
type connQP struct {
	idx  int
	conn *Conn
	qp   *rnic.QP

	reqStaging *rnic.MemRegion // local mirror of the server's request ring
	prod       *ringProducer   // request producer → server request ring
	respRing   *rnic.MemRegion // response ring (server writes into it)
	respCons   *ringConsumer   // owned by the client dispatcher
	ctrl       *rnic.MemRegion // client control region (server writes it)
	readback   *rnic.MemRegion // 8-byte landing zone for head-refresh reads

	serverCtrlRKey uint32
	reqRingRKey    uint32

	tcq tcq

	// Leader-owned state; leadership hand-offs through the TCQ's atomic
	// state transitions order access.
	consumed    uint64 // credits consumed
	askMark     uint64 // consumed value at the last renewal request
	askOut      bool   // a renewal is outstanding
	askSnapshot uint64 // granted value when the renewal was posted
	degrees     *stats.RunningMedian
	degHist     *telemetry.Hist // coalescing degree of every posted message
	msgSeq      uint64          // selective-signaling counter

	// Batch-processing scratch, reused across leader turns (leader-owned
	// like the fields above, so no locking). PostSend copies WRs, making
	// reuse after it returns safe.
	wrScratch  []rnic.SendWR
	rpcScratch []*tcqNode
	memScratch []*tcqNode

	refreshPending atomic.Bool

	// Fault state. broken marks the QP failed and under recycle: leaders
	// bail out via active(), the dispatcher skips it, and the recycler owns
	// all of the QP's state once the leaders and polling counters drain to
	// zero. Clearing broken is the release edge that republishes the
	// recycled state. disabled marks a QP quarantined for good after
	// breaking more than Options.FlapThreshold times.
	broken   atomic.Bool
	disabled atomic.Bool
	leaders  atomic.Int32 // threads currently inside the leader path
	polling  atomic.Int32 // dispatcher inside this QP's poll section
	breaks   atomic.Uint32
	timeouts atomic.Uint32 // consecutive RPC-deadline strikes
}

// active reports whether leaders may use the QP: the scheduler-controlled
// activation flag (§5.1) gated by the local fault state.
func (q *connQP) active() bool {
	return !q.broken.Load() && !q.disabled.Load() && q.ctrl.Load64(ctrlActiveOff) == 1
}

// granted reports the total credits granted by the server.
func (q *connQP) granted() uint64 { return q.ctrl.Load64(ctrlGrantedOff) }

// connectArgs is the client half of the out-of-band handshake.
type connectArgs struct {
	clientNode fabric.NodeID
	qps        []connectQPArgs
}

type connectQPArgs struct {
	qpn            int // client QP number
	respRingRKey   uint32
	clientCtrlRKey uint32
}

// connectReply is the server half of the handshake.
type connectReply struct {
	qps []connectQPReply
}

type connectQPReply struct {
	qpn            int // server QP number
	reqRingRKey    uint32
	serverCtrlRKey uint32
}

// Connect opens a connection handle to a remote serving node
// (fl_connect in Table 2). It creates the QP set, registers the ring and
// control regions on both ends, and performs the in-process equivalent of
// the out-of-band bootstrap exchange.
func (n *Node) Connect(remote fabric.NodeID) (*Conn, error) {
	select {
	case <-n.done:
		return nil, ErrClosed
	default:
	}
	rnode := n.net.node(remote)
	if rnode == nil {
		return nil, ErrNoSuchNode
	}
	if !rnode.Serving() {
		return nil, ErrNotServing
	}

	c := &Conn{
		node:        n,
		remote:      remote,
		threads:     make(map[uint32]*Thread),
		retryBudget: resilience.NewBudget(n.opts.RetryBudgetRatio, n.opts.RetryBudgetBurst),
	}
	if n.opts.BreakerThreshold > 0 {
		c.breaker = resilience.NewBreaker(
			n.opts.BreakerThreshold, n.opts.BreakerCooldown, n.opts.BreakerProbes, nil)
	}
	args := connectArgs{clientNode: n.id}
	for i := 0; i < n.opts.QPsPerConn; i++ {
		q, err := n.newConnQP(c, i)
		if err != nil {
			return nil, err
		}
		c.qps = append(c.qps, q)
		args.qps = append(args.qps, connectQPArgs{
			qpn:            q.qp.QPN(),
			respRingRKey:   q.respRing.RKey(),
			clientCtrlRKey: q.ctrl.RKey(),
		})
	}

	reply, err := rnode.accept(args)
	if err != nil {
		return nil, err
	}
	for i, q := range c.qps {
		r := reply.qps[i]
		if err := q.qp.Connect(int(remote), r.qpn); err != nil {
			return nil, err
		}
		q.prod.rkey = r.reqRingRKey
		q.reqRingRKey = r.reqRingRKey
		q.serverCtrlRKey = r.serverCtrlRKey
	}

	n.connMu.Lock()
	n.conns = append(n.conns, c)
	n.allConns = append(n.allConns, c)
	n.publishConnsLocked()
	n.connMu.Unlock()
	n.ensureClientSide()
	return c, nil
}

// newConnQP builds the client end of one QP: queue pair, staging region,
// response ring, control region, and readback slot.
func (n *Node) newConnQP(c *Conn, idx int) (*connQP, error) {
	qp, err := n.dev.CreateQP(rnic.RC, n.dev.CreateCQ(), n.dev.CreateCQ())
	if err != nil {
		return nil, err
	}
	staging, err := n.dev.RegisterMR(n.opts.RingBytes, 0)
	if err != nil {
		return nil, err
	}
	respRing, err := n.dev.RegisterMR(n.opts.RingBytes, rnic.PermRemoteWrite|rnic.PermRemoteRead)
	if err != nil {
		return nil, err
	}
	ctrl, err := n.dev.RegisterMR(ctrlBytes, rnic.PermRemoteWrite|rnic.PermRemoteRead)
	if err != nil {
		return nil, err
	}
	readback, err := n.dev.RegisterMR(8, 0)
	if err != nil {
		return nil, err
	}
	q := &connQP{
		idx:        idx,
		conn:       c,
		qp:         qp,
		reqStaging: staging,
		respRing:   respRing,
		ctrl:       ctrl,
		readback:   readback,
		degrees:    stats.NewRunningMedian(32),
		// Get-or-create so a recycled QP keeps accumulating into the same
		// series (the per-QP view Figure 10's analysis wants).
		degHist: n.tel.Hist(fmt.Sprintf("conn%d.qp%d.coalesce_degree", c.remote, idx)),
	}
	q.prod = &ringProducer{staging: staging, size: n.opts.RingBytes}
	q.respCons = newRingConsumer(respRing, 0, n.opts.RingBytes, ctrl, ctrlRespHeadOff)
	// Bootstrap: C credits (§5.1), QP active.
	ctrl.Store64(ctrlGrantedOff, uint64(n.opts.Credits))
	ctrl.Store64(ctrlActiveOff, 1)
	return q, nil
}

// Remote returns the node this handle is connected to.
func (c *Conn) Remote() fabric.NodeID { return c.remote }

// NumQPs returns the connection's multiplexing width.
func (c *Conn) NumQPs() int { return len(c.qps) }

// ActiveQPs returns the indexes of currently active QPs.
func (c *Conn) ActiveQPs() []int {
	var out []int
	for i, q := range c.qps {
		if q.active() {
			out = append(out, i)
		}
	}
	return out
}

// closedCh reports the owning node's done channel.
func (c *Conn) closedCh() <-chan struct{} { return c.node.done }

// isClosed reports whether the node is shutting down or the connection
// failed fatally.
func (c *Conn) isClosed() bool {
	if c.failed.Load() {
		return true
	}
	select {
	case <-c.node.done:
		return true
	default:
		return false
	}
}

// Close tears down the connection handle: subsequent operations return
// ErrClosed, threads blocked in RecvRes are released once the node's
// dispatcher notices, and the handle is removed from the node's dispatch
// set. Server-side resources are reclaimed when the server node closes
// (connection-level teardown messages are future work, as in the paper's
// prototype).
func (c *Conn) Close() {
	n := c.node
	n.connMu.Lock()
	for i, other := range n.conns {
		if other == c {
			n.conns = append(n.conns[:i], n.conns[i+1:]...)
			break
		}
	}
	n.publishConnsLocked()
	n.connMu.Unlock()
	c.fail(ErrConnClosed)
}

// fail marks the connection fatally failed and releases every waiter with
// a typed poison response: all pending-call records (whatever QP they rode)
// are completed with the closure, mailbox waiters get a wakeup on the
// response channel, and parked memory operations a QP-error status. The
// cause is recorded before the failed flag is published, so closedErr
// never observes the flag without it.
func (c *Conn) fail(err error) {
	cause := err
	c.failErr.CompareAndSwap(nil, &cause)
	if c.failed.Swap(true) {
		return
	}
	poison := Response{Status: StatusConnClosed, err: err}
	for _, t := range c.snapshotThreads() {
		for _, rec := range t.pend.failMatching(-1, poison) {
			select {
			case t.respCh <- poison:
			default:
			}
			t.pend.put(rec)
		}
		// Wake RecvRes blockers with no pending record (the pre-table
		// contract: closure always surfaces on the response channel).
		select {
		case t.respCh <- poison:
		default:
		}
		select {
		case t.memCh <- rnic.StatusQPError:
		default:
		}
	}
}

// thread returns the registered thread with the given ID, or nil.
func (c *Conn) thread(id uint32) *Thread {
	c.threadMu.RLock()
	defer c.threadMu.RUnlock()
	return c.threads[id]
}

// breakerFailure records remote-failure evidence (attempt timeout, broken
// QP) against the connection's circuit breaker, counting open transitions.
func (c *Conn) breakerFailure() {
	if c.breaker != nil && c.breaker.Failure() {
		c.node.metrics.breakerOpens.Add(1)
	}
}

// snapshotThreads copies the registered thread set.
func (c *Conn) snapshotThreads() []*Thread {
	c.threadMu.RLock()
	defer c.threadMu.RUnlock()
	out := make([]*Thread, 0, len(c.threads))
	for _, t := range c.threads {
		out = append(out, t)
	}
	return out
}

// RemoteRegion is a handle to server memory attached for one-sided
// operations (fl_attach_mreg, §6). All of the connection's threads may
// target it with Read/Write/FetchAdd/CompareSwap.
type RemoteRegion struct {
	conn *Conn
	rkey uint32
	size int
}

// Size returns the region's length in bytes.
func (r *RemoteRegion) Size() int { return r.size }

// AttachMemRegion allocates a memory region of the given size on the
// remote node and attaches it to the connection handle for one-sided
// memory and atomic operations.
func (c *Conn) AttachMemRegion(size int) (*RemoteRegion, error) {
	if c.isClosed() {
		return nil, ErrClosed
	}
	rnode := c.node.net.node(c.remote)
	if rnode == nil {
		return nil, ErrNoSuchNode
	}
	mr, err := rnode.dev.RegisterMR(size, rnic.PermRemoteRead|rnic.PermRemoteWrite|rnic.PermRemoteAtomic)
	if err != nil {
		return nil, err
	}
	return &RemoteRegion{conn: c, rkey: mr.RKey(), size: size}, nil
}

// ExportMR registers a memory region of the given size on this node under
// a name, so remote connection handles can attach it with AttachNamed. It
// is how a server exposes application state (e.g. a key-value store) to
// clients' one-sided operations, as FLockTX's validation phase requires.
func (n *Node) ExportMR(name string, size int) (*rnic.MemRegion, error) {
	mr, err := n.dev.RegisterMR(size, rnic.PermRemoteRead|rnic.PermRemoteWrite|rnic.PermRemoteAtomic)
	if err != nil {
		return nil, err
	}
	n.exportMu.Lock()
	defer n.exportMu.Unlock()
	if n.exports == nil {
		n.exports = make(map[string]*rnic.MemRegion)
	}
	if _, dup := n.exports[name]; dup {
		return nil, fmt.Errorf("flock: region %q already exported", name)
	}
	n.exports[name] = mr
	return mr, nil
}

// AttachNamed attaches a region the remote node exported with ExportMR.
func (c *Conn) AttachNamed(name string) (*RemoteRegion, error) {
	if c.isClosed() {
		return nil, ErrClosed
	}
	rnode := c.node.net.node(c.remote)
	if rnode == nil {
		return nil, ErrNoSuchNode
	}
	rnode.exportMu.Lock()
	mr := rnode.exports[name]
	rnode.exportMu.Unlock()
	if mr == nil {
		return nil, fmt.Errorf("flock: remote node exports no region %q", name)
	}
	return &RemoteRegion{conn: c, rkey: mr.RKey(), size: mr.Len()}, nil
}

// maxMsgBytes is the largest coalesced message the options permit; rings
// must hold at least two of them.
func (o Options) maxMsgBytes() int {
	return headerBytes + o.MaxBatch*(itemMetaBytes+pad8(o.MaxPayload)) + trailerBytes
}

// validate checks option consistency for ring geometry.
func (o Options) validate() error {
	if o.RingBytes < 2*o.maxMsgBytes() {
		return fmt.Errorf("flock: RingBytes %d cannot hold two max messages (%d); raise RingBytes or lower MaxBatch/MaxPayload",
			o.RingBytes, o.maxMsgBytes())
	}
	return nil
}
