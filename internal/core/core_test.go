package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"flock/internal/fabric"
)

// testCluster spins up a server node and n client nodes on one network.
type testCluster struct {
	net     *Network
	server  *Node
	clients []*Node
}

func newTestCluster(t *testing.T, nClients int, serverOpts, clientOpts Options) *testCluster {
	t.Helper()
	nw := NewNetwork(fabric.Config{})
	t.Cleanup(nw.Close)
	srv, err := nw.NewNode(0, serverOpts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(); err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{net: nw, server: srv}
	for i := 0; i < nClients; i++ {
		cl, err := nw.NewNode(fabric.NodeID(i+1), clientOpts, 0)
		if err != nil {
			t.Fatal(err)
		}
		tc.clients = append(tc.clients, cl)
	}
	return tc
}

// echoID is the RPC used by most tests: echoes the request back.
const echoID = 1

// callDrop is Call for tests that don't inspect the response: the pooled
// lease is released immediately so the package leak gate stays clean.
func callDrop(th *Thread, rpcID uint32, payload []byte) error {
	r, err := th.Call(rpcID, payload)
	if err == nil {
		r.Release()
	}
	return err
}

// recvDrop is RecvRes with the response lease released.
func recvDrop(th *Thread) error {
	r, err := th.RecvRes()
	if err == nil {
		r.Release()
	}
	return err
}

func registerEcho(n *Node) {
	n.RegisterHandler(echoID, func(req []byte) []byte {
		out := make([]byte, len(req))
		copy(out, req)
		return out
	})
}

func TestRPCEcho(t *testing.T) {
	tc := newTestCluster(t, 1, Options{}, Options{})
	registerEcho(tc.server)
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()
	for i := 0; i < 100; i++ {
		msg := []byte(fmt.Sprintf("request-%d", i))
		resp, err := th.Call(echoID, msg)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != StatusOK {
			t.Fatalf("status = %d", resp.Status)
		}
		if !bytes.Equal(resp.Data, msg) {
			t.Fatalf("echo mismatch: %q != %q", resp.Data, msg)
		}
		resp.Release()
	}
}

func TestRPCEmptyAndLargePayload(t *testing.T) {
	tc := newTestCluster(t, 1, Options{}, Options{})
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()

	resp, err := th.Call(echoID, nil)
	if err != nil || len(resp.Data) != 0 {
		t.Fatalf("empty echo: %v %v", err, resp.Data)
	}
	resp.Release()

	big := make([]byte, tc.clients[0].Options().MaxPayload)
	for i := range big {
		big[i] = byte(i * 31)
	}
	resp, err = th.Call(echoID, big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, big) {
		t.Fatal("max payload echo corrupted")
	}
	resp.Release()

	if _, err := th.SendRPC(echoID, make([]byte, tc.clients[0].Options().MaxPayload+1)); err != ErrPayloadTooLarge {
		t.Fatalf("oversized payload: %v", err)
	}
}

func TestRPCNoHandler(t *testing.T) {
	tc := newTestCluster(t, 1, Options{}, Options{})
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()
	resp, err := th.Call(999, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusNoHandler {
		t.Fatalf("status = %d, want StatusNoHandler", resp.Status)
	}
	resp.Release()
}

func TestRPCHandlerPanic(t *testing.T) {
	tc := newTestCluster(t, 1, Options{}, Options{})
	tc.server.RegisterHandler(2, func(req []byte) []byte { panic("boom") })
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()
	resp, err := th.Call(2, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusHandlerPanic {
		t.Fatalf("status = %d, want StatusHandlerPanic", resp.Status)
	}
	resp.Release()
	// The server survives and keeps serving.
	if resp, err = th.Call(echoID, []byte("alive")); err != nil || string(resp.Data) != "alive" {
		t.Fatalf("server dead after panic: %v %q", err, resp.Data)
	}
	resp.Release()
}

func TestRPCConcurrentThreadsShareQPs(t *testing.T) {
	// More threads than QPs forces sharing; all requests must complete
	// correctly and coalescing must actually occur.
	tc := newTestCluster(t, 1, Options{QPsPerConn: 2}, Options{QPsPerConn: 2})
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)

	const nThreads = 16
	const perThread = 200
	var wg sync.WaitGroup
	errs := make(chan error, nThreads)
	for i := 0; i < nThreads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := conn.RegisterThread()
			for j := 0; j < perThread; j++ {
				msg := []byte(fmt.Sprintf("t%d-req%d", id, j))
				resp, err := th.Call(echoID, msg)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp.Data, msg) {
					errs <- fmt.Errorf("mismatch %q != %q", resp.Data, msg)
					return
				}
				resp.Release()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := tc.server.Metrics()
	if m.ItemsIn != nThreads*perThread {
		t.Fatalf("served %d items, want %d", m.ItemsIn, nThreads*perThread)
	}
}

func TestCoalescingUnderBurst(t *testing.T) {
	// Threads with several outstanding requests submit back-to-back, so
	// followers pile onto the TCQ while the leader is posting — the §4.2
	// pipelining that produces coalesced messages. With one QP and eight
	// bursting threads the served coalescing degree must exceed 1.
	tc := newTestCluster(t, 1, Options{QPsPerConn: 1}, Options{QPsPerConn: 1})
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)

	const nThreads, window, rounds = 8, 8, 50
	var wg sync.WaitGroup
	for i := 0; i < nThreads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := conn.RegisterThread()
			for r := 0; r < rounds; r++ {
				for k := 0; k < window; k++ {
					if _, err := th.SendRPC(echoID, []byte("burst-x")); err != nil {
						t.Error(err)
						return
					}
				}
				for k := 0; k < window; k++ {
					if err := recvDrop(th); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	m := tc.server.Metrics()
	if m.ItemsIn != nThreads*window*rounds {
		t.Fatalf("served %d items, want %d", m.ItemsIn, nThreads*window*rounds)
	}
	degree := float64(m.ItemsIn) / float64(m.MsgsIn)
	if degree <= 1.05 {
		t.Fatalf("no meaningful coalescing under burst: degree %.2f (%d items / %d msgs)",
			degree, m.ItemsIn, m.MsgsIn)
	}
	t.Logf("coalescing degree under burst: %.2f", degree)
}

func TestRPCOutstandingWindow(t *testing.T) {
	tc := newTestCluster(t, 1, Options{}, Options{})
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()

	const window = 8
	const rounds = 50
	seqs := make(map[uint64][]byte)
	for r := 0; r < rounds; r++ {
		for k := 0; k < window; k++ {
			msg := []byte(fmt.Sprintf("r%d-k%d", r, k))
			seq, err := th.SendRPC(echoID, msg)
			if err != nil {
				t.Fatal(err)
			}
			seqs[seq] = msg
		}
		for k := 0; k < window; k++ {
			resp, err := th.RecvRes()
			if err != nil {
				t.Fatal(err)
			}
			want, ok := seqs[resp.Seq]
			if !ok {
				t.Fatalf("unknown seq %d", resp.Seq)
			}
			if !bytes.Equal(resp.Data, want) {
				t.Fatalf("seq %d: %q != %q", resp.Seq, resp.Data, want)
			}
			delete(seqs, resp.Seq)
			resp.Release()
		}
	}
	if th.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", th.Outstanding())
	}
}

func TestCreditRenewalFlows(t *testing.T) {
	// Run well past the initial credit budget; traffic only continues if
	// renewals are granted.
	tc := newTestCluster(t, 1, Options{Credits: 8, QPsPerConn: 1}, Options{Credits: 8, QPsPerConn: 1})
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()
	for i := 0; i < 500; i++ {
		if err := callDrop(th, echoID, []byte("credit")); err != nil {
			t.Fatal(err)
		}
	}
	if got := tc.server.Metrics().CreditRenewals; got == 0 {
		t.Fatal("no credit renewals were granted")
	}
}

func TestRingWrapUnderLoad(t *testing.T) {
	// A tiny ring forces constant wrapping and head-refresh traffic.
	opts := Options{RingBytes: 8192, MaxPayload: 512, MaxBatch: 4, QPsPerConn: 1}
	tc := newTestCluster(t, 1, opts, opts)
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()
	payload := make([]byte, 400)
	for i := 0; i < 300; i++ {
		payload[0] = byte(i)
		resp, err := th.Call(echoID, payload)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Data[0] != byte(i) {
			t.Fatalf("round %d corrupted", i)
		}
		resp.Release()
	}
}

func TestQPSchedulerDeactivatesUnderBudget(t *testing.T) {
	// 4 clients × 4 QPs = 16 QPs against MaxActiveQPs = 8: after traffic
	// flows, the scheduler must keep at most 8 active.
	sOpts := Options{MaxActiveQPs: 8, QPsPerConn: 4, SchedInterval: time.Millisecond, Credits: 8}
	cOpts := Options{QPsPerConn: 4, SchedInterval: time.Millisecond, Credits: 8}
	tc := newTestCluster(t, 4, sOpts, cOpts)
	registerEcho(tc.server)

	var conns []*Conn
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, cl := range tc.clients {
		conn, err := cl.Connect(0)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, conn)
		for k := 0; k < 4; k++ {
			wg.Add(1)
			go func(c *Conn) {
				defer wg.Done()
				th := c.RegisterThread()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := callDrop(th, echoID, []byte("load")); err != nil {
						return
					}
				}
			}(conn)
		}
	}
	// Let several scheduling intervals elapse under load.
	time.Sleep(100 * time.Millisecond)
	active := 0
	for _, c := range conns {
		active += len(c.ActiveQPs())
	}
	close(stop)
	wg.Wait()
	if active > 8 {
		t.Fatalf("%d QPs active, budget 8", active)
	}
	if tc.server.Metrics().QPDeactivations == 0 {
		t.Fatal("scheduler never deactivated a QP")
	}
	// Every sender keeps at least one.
	for i, c := range conns {
		if len(c.ActiveQPs()) == 0 {
			t.Fatalf("client %d starved of QPs", i)
		}
	}
}

func TestAllQPsStayActiveUnderThreshold(t *testing.T) {
	sOpts := Options{MaxActiveQPs: 64, QPsPerConn: 4, SchedInterval: time.Millisecond}
	tc := newTestCluster(t, 2, sOpts, Options{QPsPerConn: 4, SchedInterval: time.Millisecond})
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()
	for i := 0; i < 200; i++ {
		if err := callDrop(th, echoID, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if got := len(conn.ActiveQPs()); got != 4 {
		t.Fatalf("%d QPs active, want all 4 (under MAX_AQP)", got)
	}
}

func TestMemoryOps(t *testing.T) {
	tc := newTestCluster(t, 1, Options{}, Options{})
	conn, _ := tc.clients[0].Connect(0)
	region, err := conn.AttachMemRegion(4096)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()

	// Write then read back.
	src := []byte("one-sided payload")
	if err := th.Write(region, 100, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := th.Read(region, 100, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("read back %q", dst)
	}

	// Atomics.
	var zero [8]byte
	binary.LittleEndian.PutUint64(zero[:], 40)
	if err := th.Write(region, 0, zero[:]); err != nil {
		t.Fatal(err)
	}
	old, err := th.FetchAdd(region, 0, 2)
	if err != nil || old != 40 {
		t.Fatalf("faa: %v old=%d", err, old)
	}
	old, err = th.CompareSwap(region, 0, 42, 99)
	if err != nil || old != 42 {
		t.Fatalf("cas: %v old=%d", err, old)
	}
	old, err = th.CompareSwap(region, 0, 42, 7)
	if err != nil || old != 99 {
		t.Fatalf("failed cas: %v old=%d", err, old)
	}
}

func TestMemoryOpsConcurrentFetchAdd(t *testing.T) {
	// N threads × K increments via shared QPs must total exactly N*K —
	// the wr_id demultiplexing of §6 in action.
	tc := newTestCluster(t, 1, Options{QPsPerConn: 2}, Options{QPsPerConn: 2})
	conn, _ := tc.clients[0].Connect(0)
	region, _ := conn.AttachMemRegion(64)
	const nThreads, perThread = 8, 100
	var wg sync.WaitGroup
	for i := 0; i < nThreads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := conn.RegisterThread()
			for j := 0; j < perThread; j++ {
				if _, err := th.FetchAdd(region, 0, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	th := conn.RegisterThread()
	var buf [8]byte
	if err := th.Read(region, 0, buf[:]); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(buf[:]); got != nThreads*perThread {
		t.Fatalf("counter = %d, want %d", got, nThreads*perThread)
	}
}

func TestMixedRPCAndMemoryOps(t *testing.T) {
	tc := newTestCluster(t, 1, Options{QPsPerConn: 1}, Options{QPsPerConn: 1})
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	region, _ := conn.AttachMemRegion(1024)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := conn.RegisterThread()
			for j := 0; j < 100; j++ {
				if id%2 == 0 {
					if err := callDrop(th, echoID, []byte("rpc")); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := th.FetchAdd(region, 8, 1); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestWorkerPoolMode(t *testing.T) {
	tc := newTestCluster(t, 1, Options{Workers: 4}, Options{})
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := conn.RegisterThread()
			for j := 0; j < 100; j++ {
				msg := []byte(fmt.Sprintf("w%d-%d", id, j))
				resp, err := th.Call(echoID, msg)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(resp.Data, msg) {
					t.Errorf("mismatch: %q", resp.Data)
					return
				}
				resp.Release()
			}
		}(i)
	}
	wg.Wait()
}

func TestMultipleDispatchers(t *testing.T) {
	tc := newTestCluster(t, 2, Options{Dispatchers: 3, QPsPerConn: 4}, Options{QPsPerConn: 4})
	registerEcho(tc.server)
	var wg sync.WaitGroup
	for _, cl := range tc.clients {
		conn, err := cl.Connect(0)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 4; k++ {
			wg.Add(1)
			go func(c *Conn) {
				defer wg.Done()
				th := c.RegisterThread()
				for j := 0; j < 150; j++ {
					if err := callDrop(th, echoID, []byte("d")); err != nil {
						t.Error(err)
						return
					}
				}
			}(conn)
		}
	}
	wg.Wait()
}

func TestConnectErrors(t *testing.T) {
	nw := NewNetwork(fabric.Config{})
	defer nw.Close()
	srv, _ := nw.NewNode(0, Options{}, 0)
	cl, _ := nw.NewNode(1, Options{}, 0)

	// Not serving yet.
	if _, err := cl.Connect(0); err != ErrNotServing {
		t.Fatalf("connect to non-serving: %v", err)
	}
	// Unknown node.
	if _, err := cl.Connect(42); err != ErrNoSuchNode {
		t.Fatalf("connect to unknown: %v", err)
	}
	srv.Serve()
	if _, err := cl.Connect(0); err != nil {
		t.Fatalf("connect: %v", err)
	}
}

func TestCloseUnblocksCallers(t *testing.T) {
	tc := newTestCluster(t, 1, Options{}, Options{})
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()
	done := make(chan error, 1)
	go func() {
		err := recvDrop(th) // nothing outstanding: blocks until close
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	tc.clients[0].Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("RecvRes after close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RecvRes did not unblock on close")
	}
	if _, err := th.SendRPC(echoID, []byte("x")); err != ErrClosed {
		t.Fatalf("SendRPC after close: %v", err)
	}
}

func TestSelectiveSignalingReducesCompletions(t *testing.T) {
	opts := Options{SignalEvery: 16, QPsPerConn: 1}
	tc := newTestCluster(t, 1, opts, opts)
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()
	for i := 0; i < 400; i++ {
		if err := callDrop(th, echoID, []byte("s")); err != nil {
			t.Fatal(err)
		}
	}
	st := tc.clients[0].Device().Stats()
	if st.CompletionsSuppressed == 0 {
		t.Fatal("selective signaling suppressed nothing")
	}
	if st.CompletionsSuppressed < st.CompletionsDelivered {
		t.Logf("suppressed=%d delivered=%d", st.CompletionsSuppressed, st.CompletionsDelivered)
	}
}

func TestDisabledSchedulers(t *testing.T) {
	opts := Options{
		DisableQPSched:     true,
		DisableThreadSched: true,
		QPsPerConn:         2,
		MaxActiveQPs:       1, // would deactivate if the scheduler ran
		SchedInterval:      time.Millisecond,
	}
	tc := newTestCluster(t, 1, opts, opts)
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := conn.RegisterThread()
			for j := 0; j < 200; j++ {
				if err := callDrop(th, echoID, []byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	time.Sleep(10 * time.Millisecond)
	if got := len(conn.ActiveQPs()); got != 2 {
		t.Fatalf("%d active QPs with scheduling disabled, want 2", got)
	}
}

func TestSingleThreadNoCoalescing(t *testing.T) {
	// One thread with one outstanding request: every message carries
	// exactly one item (the Figure 12 "1 thrd/1 QP" worst case).
	tc := newTestCluster(t, 1, Options{QPsPerConn: 1}, Options{QPsPerConn: 1})
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()
	for i := 0; i < 100; i++ {
		if err := callDrop(th, echoID, []byte("solo")); err != nil {
			t.Fatal(err)
		}
	}
	m := tc.server.Metrics()
	if m.MsgsIn != m.ItemsIn {
		t.Fatalf("single thread coalesced: %d msgs, %d items", m.MsgsIn, m.ItemsIn)
	}
}

func TestBidirectionalNodes(t *testing.T) {
	// Two nodes that both serve and both connect — the FLockTX topology.
	nw := NewNetwork(fabric.Config{})
	defer nw.Close()
	a, _ := nw.NewNode(1, Options{}, 0)
	b, _ := nw.NewNode(2, Options{}, 0)
	a.RegisterHandler(1, func(req []byte) []byte { return []byte("from-a") })
	b.RegisterHandler(1, func(req []byte) []byte { return []byte("from-b") })
	a.Serve()
	b.Serve()

	ab, err := a.Connect(2)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := b.Connect(1)
	if err != nil {
		t.Fatal(err)
	}
	tha := ab.RegisterThread()
	thb := ba.RegisterThread()
	ra, err := tha.Call(1, nil)
	if err != nil || string(ra.Data) != "from-b" {
		t.Fatalf("a→b: %v %q", err, ra.Data)
	}
	ra.Release()
	rb, err := thb.Call(1, nil)
	if err != nil || string(rb.Data) != "from-a" {
		t.Fatalf("b→a: %v %q", err, rb.Data)
	}
	rb.Release()
}
