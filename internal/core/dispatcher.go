package core

import (
	"runtime"
	"time"

	"flock/internal/mem"
	"flock/internal/rnic"
	"flock/internal/telemetry"
)

// This file is the client-side response dispatcher (§4.3): a lightweight
// goroutine that polls every connection's response rings and send CQs,
// relaying responses to application threads by their tagged thread ID and
// demultiplexing memory-operation completions by wr_id. It never touches
// application logic, so one dispatcher comfortably covers many QPs.

// putLE64 writes v little-endian into b[:8].
func putLE64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// idleBackoff cooperatively de-schedules a polling loop that found no
// work: first yields, then sleeps briefly so idle nodes don't spin a core.
func idleBackoff(idleRounds int) {
	switch {
	case idleRounds < 64:
		runtime.Gosched()
	case idleRounds < 1024:
		time.Sleep(2 * time.Microsecond)
	default:
		time.Sleep(50 * time.Microsecond)
	}
}

// clientDispatch is the response dispatcher main loop.
func (n *Node) clientDispatch() {
	defer n.wg.Done()
	var cqBuf [64]rnic.Completion
	idle := 0
	for {
		select {
		case <-n.done:
			return
		default:
		}
		busy := false
		for _, c := range n.snapshotConns() {
			for _, q := range c.qps {
				// Broken QPs are owned by their recycler; the polling
				// counter tells it when the dispatcher has left.
				if q.broken.Load() {
					continue
				}
				q.polling.Add(1)
				if q.broken.Load() {
					q.polling.Add(-1)
					continue
				}
				// Response ring: deliver coalesced responses. The poll
				// buffer is retained once per delivered response and the
				// dispatcher's own reference dropped after the fan-out.
				for {
					h, items, mbuf, ok := q.respCons.poll()
					if !ok {
						break
					}
					busy = true
					q.prod.updateCached(h.piggyHead)
					n.trace.Record(telemetry.EvComplete, q.idx, 0, 0, uint64(len(items)))
					for i := range items {
						c.deliverResponse(&items[i], mbuf)
					}
					mbuf.Release()
				}
				// Send CQ: route memory-op and refresh completions.
				for {
					k := q.qp.SendCQ().Poll(cqBuf[:])
					if k == 0 {
						break
					}
					busy = true
					for _, comp := range cqBuf[:k] {
						c.routeSendCompletion(q, comp)
					}
				}
				q.polling.Add(-1)
			}
		}
		if busy {
			idle = 0
		} else {
			idle++
			idleBackoff(idle)
		}
	}
}

// deliverResponse routes one decoded response to its completion record in
// the owning thread's pending-call table, without copying: the Response's
// Data views the pooled message buffer, covered by a reference retained
// here. A table hit transfers that reference to the record's waiter (or
// the close-time drain); a miss means the attempt was abandoned — the
// response is stale and its reference dropped right here, which is the
// whole stale-response policy (no per-caller drop heuristics remain).
// Mailbox records (the SendRPC/RecvRes surface) are delivered into the
// thread's response channel instead.
func (c *Conn) deliverResponse(it *decodedItem, mbuf *mem.Buf) {
	t := c.thread(it.meta.threadID)
	if t == nil {
		return // thread never registered; drop
	}
	mbuf.Retain()
	c.node.trace.Record(telemetry.EvDispatch, -1, it.meta.threadID, uint64(it.meta.seqID), uint64(len(it.data)))
	r := Response{
		Seq:    it.meta.seqID,
		RPCID:  it.meta.rpcID,
		Status: it.meta.status,
		Data:   it.data,
		buf:    mbuf,
		trace:  c.node.trace,
	}
	rec, mailbox := t.pend.complete(it.meta.seqID, r)
	if rec == nil {
		c.node.metrics.staleDrops.Add(1)
		r.Release()
		return
	}
	if !mailbox {
		return // token sent under the table lock; the waiter owns r now
	}
	// The dispatcher must never block on a mailbox: a RecvRes caller that
	// walked away stops draining, and its late responses would otherwise
	// fill the channel and wedge delivery for every other thread on the
	// node. A full mailbox holds only abandoned responses (a thread has at
	// most RespWindow live operations), so the oldest entry is evicted to
	// make room for the fresh one — and its buffer lease recycled.
	for i := 0; i < 2; i++ {
		select {
		case t.respCh <- r:
			t.pend.put(rec)
			return
		default:
		}
		select {
		case ev := <-t.respCh:
			ev.Release()
		default:
		}
	}
	// Still full (a concurrent poisoner keeps winning the slot): drop the
	// response; the caller's deadline retry re-issues the request.
	r.Release()
	t.pend.put(rec)
}

// routeSendCompletion demultiplexes one send-side completion by wr_id tag
// (§6): memory operations to their thread, head refreshes to the producer
// cache. Error completions are classified: a QP failure (retry
// exhaustion, flush) triggers the recycle path, anything else — a
// protocol-level error that a fresh QP would just reproduce — fails the
// connection.
func (c *Conn) routeSendCompletion(q *connQP, comp rnic.Completion) {
	switch comp.WRID & tagMask {
	case tagMem:
		if qpFailureStatus(comp.Status) {
			c.markBroken(q)
		}
		t := c.thread(memWRThread(comp.WRID))
		if t == nil {
			return
		}
		// Non-blocking: at most one memory op waits per thread, and a full
		// slot means a wakeup (completion or poison) is already pending.
		select {
		case t.memCh <- comp.Status:
		default:
		}
	case tagFresh:
		if comp.Status == rnic.StatusOK {
			q.prod.updateCached(q.readback.Load64(0))
			q.refreshPending.Store(false)
			return
		}
		q.refreshPending.Store(false)
		if qpFailureStatus(comp.Status) {
			c.markBroken(q)
		} else {
			c.fail(ErrConnClosed)
		}
	default:
		// Message writes, markers, renewals: only errors matter.
		if comp.Status == rnic.StatusOK {
			return
		}
		if qpFailureStatus(comp.Status) {
			c.markBroken(q)
		} else {
			c.fail(ErrConnClosed)
		}
	}
}
