package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"flock/internal/fabric"
)

// These tests inject faults and drive the scheduler edge paths that the
// happy-path suite doesn't reach: ring corruption, credit decline and
// migration, QP reactivation, and option validation.

func TestOptionsValidation(t *testing.T) {
	nw := NewNetwork(fabric.Config{})
	defer nw.Close()
	// A ring too small for two maximum messages must be rejected.
	_, err := nw.NewNode(1, Options{
		RingBytes:  4096,
		MaxBatch:   16,
		MaxPayload: 64 << 10,
	}, 0)
	if err == nil {
		t.Fatal("undersized ring accepted")
	}
	// The same geometry works once MaxBatch/MaxPayload shrink.
	if _, err := nw.NewNode(2, Options{
		RingBytes:  4096,
		MaxBatch:   2,
		MaxPayload: 256,
	}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRingGarbageIsNotConsumed(t *testing.T) {
	// Write garbage into a response ring directly: a length field without
	// matching canaries must never be decoded into a response; the
	// connection keeps working for real traffic afterwards.
	tc := newTestCluster(t, 1, Options{QPsPerConn: 1}, Options{QPsPerConn: 1})
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()

	// Corrupt untouched space far ahead of the ring head with a bogus
	// "message" whose canaries mismatch.
	q := conn.qps[0]
	garbage := make([]byte, 64)
	putHeader(garbage, header{totalLen: 64, count: 1, canary: 0xABCD})
	putLE64(garbage[56:], 0x9999) // trailing canary differs
	if err := q.respRing.WriteAt(garbage, 0); err != nil {
		t.Fatal(err)
	}
	// The dispatcher polls this position first; with mismatched canaries
	// it must treat the message as incomplete forever and deliver nothing.
	time.Sleep(5 * time.Millisecond)
	select {
	case r := <-th.respCh:
		t.Fatalf("garbage decoded into response: %+v", r)
	default:
	}
	// Clean the injected bytes (as if the write never happened); real
	// traffic then flows.
	if err := q.respRing.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	resp, err := th.Call(echoID, []byte("after-corruption"))
	if err != nil || !bytes.Equal(resp.Data, []byte("after-corruption")) {
		t.Fatalf("traffic after corruption: %v %q", err, resp.Data)
	}
	resp.Release()
}

func TestDeactivatedQPDeclinesAndMigrates(t *testing.T) {
	// Force-deactivate one of two QPs the way the scheduler does (control
	// write) and verify threads migrate and traffic continues.
	tc := newTestCluster(t, 1, Options{QPsPerConn: 2, DisableQPSched: true}, Options{QPsPerConn: 2})
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()
	if err := callDrop(th, echoID, []byte("warm")); err != nil {
		t.Fatal(err)
	}

	// Deactivate QP 0 client-side exactly as a scheduler control write
	// would land.
	conn.qps[0].ctrl.Store64(ctrlActiveOff, 0)
	for i := 0; i < 200; i++ {
		if err := callDrop(th, echoID, []byte("migrated")); err != nil {
			t.Fatal(err)
		}
	}
	if got := th.curQP.Load(); got != 1 {
		t.Fatalf("thread still on deactivated QP (cur=%d)", got)
	}
	// Reactivate; the thread scheduler may move threads back eventually,
	// but traffic must flow either way.
	conn.qps[0].ctrl.Store64(ctrlActiveOff, 1)
	if err := callDrop(th, echoID, []byte("back")); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerReactivatesWhenLoadShifts(t *testing.T) {
	// Two clients over-budget: run heavy traffic from client A only, let
	// the scheduler skew QPs toward it, then shift all load to client B
	// and verify B's active share recovers.
	sOpts := Options{MaxActiveQPs: 4, QPsPerConn: 3, SchedInterval: time.Millisecond, Credits: 8}
	cOpts := Options{QPsPerConn: 3, SchedInterval: time.Millisecond, Credits: 8}
	tc := newTestCluster(t, 2, sOpts, cOpts)
	registerEcho(tc.server)
	connA, _ := tc.clients[0].Connect(0)
	connB, _ := tc.clients[1].Connect(0)

	drive := func(conn *Conn, rounds int) {
		var wg sync.WaitGroup
		for k := 0; k < 6; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := conn.RegisterThread()
				for i := 0; i < rounds; i++ {
					if err := callDrop(th, echoID, []byte("skew")); err != nil {
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	drive(connA, 400)
	time.Sleep(10 * time.Millisecond)
	aActive := len(connA.ActiveQPs())

	drive(connB, 800)
	time.Sleep(10 * time.Millisecond)
	bActive := len(connB.ActiveQPs())
	if bActive < 1 {
		t.Fatalf("client B starved after load shift (active=%d)", bActive)
	}
	// A must never have been starved below the 1-QP floor either.
	if len(connA.ActiveQPs()) < 1 {
		t.Fatal("client A starved below the one-QP floor")
	}
	t.Logf("active QPs: A=%d (after A-heavy), B=%d (after B-heavy)", aActive, bActive)
}

func TestManyConnsFromOneClientNode(t *testing.T) {
	// Regression for the multi-connection accept bug: several connection
	// handles from the same client node to the same server must all stay
	// live (the paper's multi-process clients, §8.4).
	tc := newTestCluster(t, 1, Options{QPsPerConn: 1}, Options{QPsPerConn: 1})
	registerEcho(tc.server)
	var conns []*Conn
	for i := 0; i < 4; i++ {
		conn, err := tc.clients[0].Connect(0)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, conn)
	}
	var wg sync.WaitGroup
	for i, conn := range conns {
		wg.Add(1)
		go func(i int, conn *Conn) {
			defer wg.Done()
			th := conn.RegisterThread()
			msg := []byte(fmt.Sprintf("conn-%d", i))
			for j := 0; j < 100; j++ {
				resp, err := th.Call(echoID, msg)
				if err != nil || !bytes.Equal(resp.Data, msg) {
					t.Errorf("conn %d: %v %q", i, err, resp.Data)
					return
				}
				resp.Release()
			}
		}(i, conn)
	}
	wg.Wait()
}

func TestExportAttachNamed(t *testing.T) {
	tc := newTestCluster(t, 1, Options{}, Options{})
	mr, err := tc.server.ExportMR("state", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.server.ExportMR("state", 512); err == nil {
		t.Fatal("duplicate export accepted")
	}
	conn, _ := tc.clients[0].Connect(0)
	region, err := conn.AttachNamed("state")
	if err != nil {
		t.Fatal(err)
	}
	if region.Size() != 1024 {
		t.Fatalf("size = %d", region.Size())
	}
	if _, err := conn.AttachNamed("nope"); err == nil {
		t.Fatal("attach of unknown name succeeded")
	}
	// One-sided write through the named region is visible to the server.
	th := conn.RegisterThread()
	if err := th.Write(region, 10, []byte("named")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	mr.ReadAt(got, 10) //nolint:errcheck
	if !bytes.Equal(got, []byte("named")) {
		t.Fatalf("server memory: %q", got)
	}
}

func TestMemoryOpErrorSurfaces(t *testing.T) {
	tc := newTestCluster(t, 1, Options{}, Options{})
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()
	region, _ := conn.AttachMemRegion(64)
	// Out-of-bounds one-sided write: the remote NIC rejects it and the
	// error surfaces as an OpError rather than hanging the thread.
	err := th.Write(region, 60, []byte("too-far!"))
	if err == nil {
		t.Fatal("out-of-bounds write succeeded")
	}
	if _, ok := err.(*OpError); !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
}

func TestReadLargerThanScratch(t *testing.T) {
	tc := newTestCluster(t, 1, Options{MaxPayload: 128}, Options{MaxPayload: 128})
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()
	region, _ := conn.AttachMemRegion(4096)
	if err := th.Read(region, 0, make([]byte, 4096)); err != ErrReadTooLarge {
		t.Fatalf("oversized read: %v", err)
	}
}

func TestConnCloseRacesInflightRPCs(t *testing.T) {
	// Close the connection while calls are mid-flight AND the link is
	// flapping, so some threads are inside the recovery path when the
	// poison lands. Every call must return promptly with either a real
	// response or a typed error — never hang, never surface an untyped
	// failure — and the node must accept a fresh connection afterwards.
	sOpts := Options{QPsPerConn: 2}
	cOpts := Options{
		QPsPerConn:    2,
		RPCTimeout:    50 * time.Millisecond,
		StallTimeout:  5 * time.Millisecond,
		FlapThreshold: -1,
		RCRetries:     2,
	}
	tc := newTestCluster(t, 1, sOpts, cOpts)
	registerEcho(tc.server)
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	tc.net.Fabric().SetFaultPlan(&fabric.FaultPlan{
		Seed: 4,
		Links: []fabric.LinkFault{{
			Src: tc.clients[0].ID(), Dst: tc.server.ID(),
			DownAfter: 60, DownFor: 60, Repeat: true,
		}},
	})

	const nThreads = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < nThreads; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := conn.RegisterThread()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := callDrop(th, echoID, []byte("racing"))
				if err == nil || errors.Is(err, ErrTimeout) || errors.Is(err, ErrQPBroken) {
					continue
				}
				if errors.Is(err, ErrClosed) {
					return // the expected terminal error after Close
				}
				t.Errorf("untyped error racing Close: %v", err)
				return
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let calls overlap fault windows
	conn.Close()
	closedAt := time.Now()
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(chaosDeadline):
		t.Fatal("caller hung across Conn.Close during faults")
	}
	close(stop)
	// Callers must observe the close within roughly one retry cycle, not
	// only after draining long backoffs.
	if waited := time.Since(closedAt); waited > 10*time.Second {
		t.Fatalf("callers took %v to observe Close", waited)
	}

	// The node itself is healthy: a new connection works once the fault
	// plan is cleared.
	tc.net.Fabric().SetFaultPlan(nil)
	conn2, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th2 := conn2.RegisterThread()
	callUntilOK(t, th2, []byte("post-close"))
}

func TestCreditRenewalSurvivesLoss(t *testing.T) {
	// Credit renewal under lossy RC: with a tiny credit budget the leader
	// renews constantly, so seeded loss keeps hitting renewal write-imms
	// (retransmitted by the NIC) and outage windows break QPs with
	// renewals in flight (recovered by recycling, which resets the credit
	// state on both ends). Traffic must never deadlock waiting on credits
	// that were lost with the old QP.
	sOpts := Options{QPsPerConn: 2, Credits: 4}
	cOpts := Options{
		QPsPerConn:    2,
		Credits:       4,
		RPCTimeout:    100 * time.Millisecond,
		StallTimeout:  10 * time.Millisecond,
		FlapThreshold: -1,
		RCRetries:     3,
	}
	tc := newTestCluster(t, 1, sOpts, cOpts)
	registerEcho(tc.server)
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	tc.net.Fabric().SetFaultPlan(&fabric.FaultPlan{
		Seed:       5,
		RCLossProb: 0.05,
		Links: []fabric.LinkFault{{
			Src: tc.clients[0].ID(), Dst: tc.server.ID(),
			DownAfter: 300, DownFor: 150, Repeat: true,
		}},
	})

	const nThreads, perThread = 3, 40
	var wg sync.WaitGroup
	for g := 0; g < nThreads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := conn.RegisterThread()
			for i := 0; i < perThread; i++ {
				callUntilOK(t, th, []byte(fmt.Sprintf("c%02d-%04d", g, i)))
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if fs := tc.net.Fabric().FaultCounters(); fs.RCDropped == 0 {
		t.Fatal("no RC loss injected — the renewal-loss run was vacuous")
	}
	// Clear faults; a full credit budget's worth of back-to-back calls
	// proves renewal still circulates after the lossy phase.
	tc.net.Fabric().SetFaultPlan(nil)
	th := conn.RegisterThread()
	for i := 0; i < 32; i++ {
		callUntilOK(t, th, []byte(fmt.Sprintf("renew-%04d", i)))
	}
}

func TestConnCloseReleasesAndRejects(t *testing.T) {
	tc := newTestCluster(t, 1, Options{}, Options{})
	registerEcho(tc.server)
	conn, _ := tc.clients[0].Connect(0)
	th := conn.RegisterThread()
	if err := callDrop(th, echoID, []byte("pre-close")); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		err := recvDrop(th)
		blocked <- err
	}()
	time.Sleep(2 * time.Millisecond)
	conn.Close()
	// Close poisons in-flight waiters with the typed ErrConnClosed, which
	// wraps ErrClosed for legacy callers.
	if err := <-blocked; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked RecvRes after Close: %v", err)
	}
	if _, err := th.SendRPC(echoID, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("SendRPC after Close: %v", err)
	}
	conn.Close() // idempotent

	// A fresh connection on the same node still works.
	conn2, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th2 := conn2.RegisterThread()
	resp, err := th2.Call(echoID, []byte("new-conn"))
	if err != nil || string(resp.Data) != "new-conn" {
		t.Fatalf("fresh conn: %v %q", err, resp.Data)
	}
	resp.Release()
}
