package core

import (
	"errors"
	"runtime"
	"time"

	"flock/internal/rnic"
	"flock/internal/telemetry"
)

// This file is the leader side of FLock synchronization: batch claiming,
// credit management, ring-space reservation, message staging, and the
// single linked post (§4.2, §6, §7).

// submit runs one TCQ node to a verdict on QP q, combining with concurrent
// threads. th is the calling thread (used for canary generation when it
// leads). The returned verdict is stateSent, stateMigrate or stateAborted.
func (c *Conn) submit(th *Thread, q *connQP, n *tcqNode) uint32 {
	if q.tcq.push(n) {
		return c.lead(th, q, n)
	}
	v := n.awaitVerdict(q.reqStaging, c.node.opts.StallTimeout)
	if v == stateLeader {
		return c.lead(th, q, n)
	}
	return v
}

// lead executes the leader protocol for the batch headed by own. The
// leaders counter tells a QP recycler when straggling leaders have left;
// verdicts are only stored on nodes still owned by this leader (claimed
// during processBatch) — a node whose follower timed out and left is
// skipped.
func (c *Conn) lead(th *Thread, q *connQP, own *tcqNode) uint32 {
	q.leaders.Add(1)
	defer q.leaders.Add(-1)
	if leaderStallHook != nil {
		leaderStallHook(c, q)
	}
	start := time.Now()
	batch := q.tcq.claimBatch(own, c.node.opts.MaxBatch)
	verdict := c.processBatch(th, q, batch)
	for _, n := range batch {
		if n != own && n.state.Load() != stateTimedOut {
			n.state.Store(verdict)
		}
	}
	q.tcq.handoff(batch[len(batch)-1])
	c.node.tenure.Observe(uint64(time.Since(start)))
	return verdict
}

// processBatch coalesces the batch into one message plus linked memory
// work requests and posts everything with a single doorbell. It returns
// the verdict that applies to every node in the batch.
func (c *Conn) processBatch(th *Thread, q *connQP, batch []*tcqNode) uint32 {
	if c.isClosed() {
		return stateAborted
	}
	if !q.active() {
		return stateMigrate
	}

	// Claim every follower node before using it: the CAS from waiting is
	// the race with the follower's stall timeout, and whoever wins owns
	// the node. A node the leader fails to claim was abandoned — its
	// follower already left to retry elsewhere — and must not be staged.
	rpc, mem := q.rpcScratch[:0], q.memScratch[:0]
	for _, n := range batch {
		if n != batch[0] && !n.state.CompareAndSwap(stateWaiting, stateClaimed) {
			continue // timed out and gone
		}
		if n.kind == opRPC {
			rpc = append(rpc, n)
		} else {
			mem = append(mem, n)
		}
	}
	q.rpcScratch, q.memScratch = rpc[:0], mem[:0]

	opts := &c.node.opts
	wrs := q.wrScratch[:0]
	defer func() { q.wrScratch = wrs[:0] }()

	// Memory operations: link each thread's prepared work request (§6).
	for _, n := range mem {
		wr := n.wr
		wr.WRID = memWRID(n.threadID, n.seqID)
		wr.Signaled = true
		wrs = append(wrs, wr)
	}

	if len(rpc) > 0 {
		// Credits gate RPC load on the server (§5.1); memory operations
		// bypass them since they consume no server CPU.
		if v := c.awaitCredits(q, len(rpc)); v != stateSent {
			return v
		}

		msgLen := 0
		for _, n := range rpc {
			msgLen += itemSpace(len(n.payload))
		}
		msgLen += headerBytes + trailerBytes

		res, v := c.awaitSpace(q, msgLen)
		if v != stateSent {
			return v
		}

		// Stage metadata and hand payload slots to followers; copy our
		// own payload directly.
		cursor := res.msgOff + headerBytes
		var metaBuf [itemMetaBytes]byte
		for _, n := range rpc {
			putItemMeta(metaBuf[:], itemMeta{
				size:     uint32(len(n.payload)),
				threadID: n.threadID,
				seqID:    n.seqID,
				rpcID:    n.rpcID,
				idemKey:  n.idemKey,
			})
			q.reqStaging.WriteAt(metaBuf[:], cursor) //nolint:errcheck // reserved span
			n.bufOff = cursor + itemMetaBytes
			cursor += itemSpace(len(n.payload))
			if n == batch[0] || n.leaderCopies {
				// Our own node, or a batch-submission node whose submitter
				// polls a whole chain at once: the leader copies the payload
				// itself — asking such a node's owner to copy could be asking
				// this very goroutine, which is busy leading.
				if len(n.payload) > 0 {
					q.reqStaging.WriteAt(n.payload, n.bufOff) //nolint:errcheck
				}
				n.copied.Store(1)
			} else {
				n.state.Store(stateCopy) // claimed above; follower copies
			}
		}

		// Poll the copy-completion flags (§4.2).
		for _, n := range rpc {
			for n.copied.Load() == 0 {
				runtime.Gosched()
			}
			n.copied.Store(0)
		}

		canary := th.rng.Uint64() | 1 // nonzero
		var canaryBuf [trailerBytes]byte
		putLE64(canaryBuf[:], canary)
		q.reqStaging.WriteAt(canaryBuf[:], res.msgOff+msgLen-trailerBytes) //nolint:errcheck
		var hdr [headerBytes]byte
		putHeader(hdr[:], header{
			totalLen:  uint32(msgLen),
			count:     uint32(len(rpc)),
			canary:    canary,
			piggyHead: q.ctrl.Load64(ctrlRespHeadOff),
			flags:     flagItemMetaV2,
		})
		q.reqStaging.WriteAt(hdr[:], res.msgOff) //nolint:errcheck

		if res.markerOff >= 0 {
			wrs = append(wrs, rnic.SendWR{
				WRID: tagMarker, Op: rnic.OpWrite,
				LocalMR: q.reqStaging, LocalOff: res.markerOff, LocalLen: 8,
				RKey: q.prod.rkey, RemoteOff: res.markerOff,
			})
		}
		q.msgSeq++
		wrs = append(wrs, rnic.SendWR{
			WRID: tagMsg, Op: rnic.OpWrite,
			LocalMR: q.reqStaging, LocalOff: res.msgOff, LocalLen: msgLen,
			RKey: q.prod.rkey, RemoteOff: res.msgOff,
			Signaled: q.msgSeq%uint64(opts.SignalEvery) == 0,
		})

		q.consumed += uint64(len(rpc))
		q.degrees.Add(uint64(len(rpc)))
		q.degHist.Observe(uint64(len(rpc)))
		c.node.degOut.Observe(uint64(len(rpc)))
		c.node.metrics.msgsOut.Add(1)
		c.node.metrics.itemsOut.Add(uint64(len(rpc)))
		c.node.trace.Record(telemetry.EvCombine, q.idx, th.id, 0, uint64(len(rpc)))
	}

	// Proactive renewal: ask for C more after consuming half (§5.1).
	if wr, ok := c.maybeRenew(q); ok {
		wrs = append(wrs, wr)
	}

	if len(wrs) == 0 {
		return stateSent
	}
	if err := q.qp.PostSend(wrs...); err != nil {
		return c.postFailure(q, err)
	}
	c.node.trace.Record(telemetry.EvPost, q.idx, th.id, 0, uint64(len(wrs)))
	return stateSent
}

// postFailure classifies a PostSend error: a QP in (or entering) the error
// state is recoverable by recycle and the batch migrates; anything else is
// fatal to the connection.
func (c *Conn) postFailure(q *connQP, err error) uint32 {
	if errors.Is(err, rnic.ErrQPErrorState) || errors.Is(err, rnic.ErrQPNotReady) {
		c.markBroken(q)
		return stateMigrate
	}
	c.fail(ErrConnClosed)
	return stateAborted
}

// awaitCredits blocks (spinning) until the QP has `need` credits,
// requesting renewal as required. Returns stateSent on success or a
// failure verdict. The wait is bounded by StallTimeout: a server whose QP
// end died stops granting, and the only way out is breaking the QP so the
// recycle re-bootstraps credits on both ends.
func (c *Conn) awaitCredits(q *connQP, need int) uint32 {
	stall := c.node.opts.StallTimeout
	var deadline time.Time
	if stall > 0 {
		deadline = time.Now().Add(stall)
	}
	spins := 0
	for {
		granted := q.granted()
		if q.askOut && granted > q.askSnapshot {
			q.askOut = false
		}
		if granted-q.consumed >= uint64(need) {
			return stateSent
		}
		if c.isClosed() {
			return stateAborted
		}
		if !q.active() {
			return stateMigrate // credit request declined / QP deactivated
		}
		if !q.askOut {
			if err := c.postRenewal(q); err != nil {
				return c.postFailure(q, err)
			}
		}
		if stall > 0 {
			spins++
			if spins%256 == 0 && time.Now().After(deadline) {
				c.noteLeaderStall(q)
				return stateMigrate
			}
		}
		runtime.Gosched()
	}
}

// awaitSpace reserves ring space, triggering a one-sided head refresh when
// the cached head is stale (§4.1: "the sender rarely reads"). Like
// awaitCredits the wait is stall-bounded: a flushed message write leaves a
// hole the strictly-in-order server consumer can never pass, so a full
// ring that never drains means the QP needs a recycle.
func (c *Conn) awaitSpace(q *connQP, msgLen int) (reservation, uint32) {
	stall := c.node.opts.StallTimeout
	var deadline time.Time
	if stall > 0 {
		deadline = time.Now().Add(stall)
	}
	spins := 0
	for {
		res, ok := q.prod.reserve(msgLen)
		if ok {
			return res, stateSent
		}
		if c.isClosed() {
			return res, stateAborted
		}
		if !q.active() {
			return res, stateMigrate
		}
		c.requestHeadRefresh(q)
		if stall > 0 {
			spins++
			if spins%256 == 0 && time.Now().After(deadline) {
				c.noteLeaderStall(q)
				return res, stateMigrate
			}
		}
		runtime.Gosched()
	}
}

// requestHeadRefresh posts an RDMA read of the server's published consumed
// head into the QP's readback slot. The dispatcher routes the completion
// and advances prod.cached.
func (c *Conn) requestHeadRefresh(q *connQP) {
	if q.refreshPending.Swap(true) {
		return
	}
	err := q.qp.PostSend(rnic.SendWR{
		WRID: tagFresh | uint64(q.idx), Op: rnic.OpRead,
		LocalMR: q.readback, LocalOff: 0, LocalLen: 8,
		RKey: q.serverCtrlRKey, RemoteOff: srvCtrlReqHeadOff,
		Signaled: true,
	})
	if err != nil {
		q.refreshPending.Store(false)
		c.postFailure(q, err)
	}
}

// maybeRenew builds a credit-renewal write-imm (§7) when the leader has
// consumed C/2 since the last ask and headroom is shrinking. The immediate
// carries the median coalescing degree since the last renewal — the QP
// contention metric of §5.1.
func (c *Conn) maybeRenew(q *connQP) (rnic.SendWR, bool) {
	credits := uint64(c.node.opts.Credits)
	granted := q.granted()
	if q.askOut && granted > q.askSnapshot {
		q.askOut = false
	}
	if q.askOut {
		return rnic.SendWR{}, false
	}
	avail := granted - q.consumed
	if avail >= credits || q.consumed-q.askMark < credits/2 {
		return rnic.SendWR{}, false
	}
	q.askMark = q.consumed
	q.askOut = true
	q.askSnapshot = granted
	degree := q.degrees.Median()
	if degree == 0 {
		degree = 1
	}
	if degree > 0xFFFFFFFF {
		degree = 0xFFFFFFFF
	}
	return rnic.SendWR{
		WRID: tagRenew, Op: rnic.OpWriteImm,
		RKey: q.reqRingRKey, RemoteOff: 0,
		Imm: uint32(degree), ImmValid: true,
	}, true
}

// postRenewal posts a standalone renewal (used while starved of credits,
// where there is no message to piggyback on).
func (c *Conn) postRenewal(q *connQP) error {
	q.askMark = q.consumed
	q.askOut = true
	q.askSnapshot = q.granted()
	degree := q.degrees.Median()
	if degree == 0 {
		degree = 1
	}
	if degree > 0xFFFFFFFF {
		degree = 0xFFFFFFFF
	}
	return q.qp.PostSend(rnic.SendWR{
		WRID: tagRenew, Op: rnic.OpWriteImm,
		RKey: q.reqRingRKey, RemoteOff: 0,
		Imm: uint32(degree), ImmValid: true,
	})
}
