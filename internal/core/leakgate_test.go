package core

import (
	"fmt"
	"os"
	"testing"
	"time"

	"flock/internal/mem"
)

// TestMain is the pool leak gate: after every test in the package has run
// — including the chaos and fault suites, whose QP recycles, mailbox
// evictions and deadline abandonments exercise every lease hand-off path —
// the default pool must report zero outstanding leases. A nonzero count
// means some path lost track of a buffer: the lease either leaked (held
// forever) or was dropped without Release (won't recycle). Both regress
// the zero-allocation hot path silently, which is exactly what this gate
// exists to catch.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if n := awaitLeaseDrain(3 * time.Second); n != 0 {
			fmt.Fprintf(os.Stderr, "leak gate: %d pooled buffer leases still outstanding after all tests\n", n)
			code = 1
		}
	}
	os.Exit(code)
}

// awaitLeaseDrain polls the default pool until Outstanding hits zero or
// the timeout expires, returning the final count. Polling (rather than a
// single read) tolerates releases that trail test completion: background
// recyclers and device pipelines may still be flushing pooled WRs when the
// last test returns.
func awaitLeaseDrain(timeout time.Duration) int64 {
	deadline := time.Now().Add(timeout)
	for {
		n := mem.Default.Outstanding()
		if n == 0 || time.Now().After(deadline) {
			return n
		}
		time.Sleep(time.Millisecond)
	}
}
