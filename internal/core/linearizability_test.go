package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"flock/internal/check"
	"flock/internal/fabric"
)

// Linearizability tests: record real concurrent traffic through the live
// stack with check.Recorder and hand the history to the Wing&Gong checker.
// Unlike the chaos suite's per-thread assertions, these verify the
// *global* ordering contract: whatever interleaving the TCQ, the QP
// schedulers, and the recovery paths produce, the observable history must
// be explainable by some sequential execution.

// assertTelemetryInvariants is the post-run gate every checked run ends
// with: coalesce-degree histogram totals equal the messages (and items)
// actually sent on both roles, no pooled lease is still outstanding, and
// the active QP count respects MAX_AQP.
func assertTelemetryInvariants(t *testing.T, tc *testCluster) {
	t.Helper()
	sm := tc.server.Metrics()
	_, degIn := tc.server.DegreeHistograms()
	if degIn.Count != sm.MsgsIn {
		t.Errorf("server degree-in hist count = %d, want MsgsIn = %d", degIn.Count, sm.MsgsIn)
	}
	if degIn.Sum != sm.ItemsIn {
		t.Errorf("server degree-in hist sum = %d, want ItemsIn = %d", degIn.Sum, sm.ItemsIn)
	}
	for i, cl := range tc.clients {
		cm := cl.Metrics()
		degOut, _ := cl.DegreeHistograms()
		if degOut.Count != cm.MsgsOut {
			t.Errorf("client %d degree-out hist count = %d, want MsgsOut = %d", i, degOut.Count, cm.MsgsOut)
		}
		if degOut.Sum != cm.ItemsOut {
			t.Errorf("client %d degree-out hist sum = %d, want ItemsOut = %d", i, degOut.Sum, cm.ItemsOut)
		}
		snap := cl.Telemetry().Snapshot()
		active, budget := snap.Gauges["core.active_qps"], snap.Gauges["core.max_active_qps"]
		if active > budget {
			t.Errorf("client %d active_qps %d exceeds MAX_AQP %d", i, active, budget)
		}
	}
	snap := tc.server.Telemetry().Snapshot()
	if active, budget := snap.Gauges["core.active_qps"], snap.Gauges["core.max_active_qps"]; active > budget {
		t.Errorf("server active_qps %d exceeds MAX_AQP %d", active, budget)
	}
	if n := awaitLeaseDrain(3 * time.Second); n != 0 {
		t.Errorf("%d pooled buffer leases outstanding after checked run", n)
	}
}

// TestLinearizableEchoConcurrent drives concurrent echo traffic through
// shared QPs and checks the recorded history against EchoModel: every
// response must be the caller's own payload, never a cross-wired or stale
// buffer from the coalescing path.
func TestLinearizableEchoConcurrent(t *testing.T) {
	tc := newTestCluster(t, 1, Options{QPsPerConn: 2}, Options{QPsPerConn: 2})
	registerEcho(tc.server)
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}

	rec := check.NewRecorder()
	const nThreads, perThread = 8, 150
	var wg sync.WaitGroup
	for g := 0; g < nThreads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := conn.RegisterThread()
			for i := 0; i < perThread; i++ {
				in := check.EchoIn{Payload: fmt.Sprintf("t%d-%d", g, i)}
				call := rec.Begin()
				resp, err := th.Call(echoID, []byte(in.Payload))
				if err != nil {
					t.Errorf("echo call: %v", err)
					return
				}
				rec.End(g, call, in, check.EchoOut{Payload: string(resp.Data), Status: resp.Status})
				resp.Release()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if res := check.Check(check.EchoModel(), rec.History()); !res.Ok {
		t.Fatalf("echo history not linearizable:\n%s", res)
	}
	assertTelemetryInvariants(t, tc)
}

// TestLinearizableFetchAdd checks the one-sided fetch-add verb under
// contention: the pre-values observed by concurrent adders plus final
// reads must admit a sequential order — the wr_id demultiplexing and the
// combining path must neither lose nor duplicate an atomic.
func TestLinearizableFetchAdd(t *testing.T) {
	tc := newTestCluster(t, 1, Options{QPsPerConn: 2}, Options{QPsPerConn: 2})
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	region, err := conn.AttachMemRegion(64)
	if err != nil {
		t.Fatal(err)
	}

	rec := check.NewRecorder()
	const nThreads, perThread = 6, 80
	var wg sync.WaitGroup
	for g := 0; g < nThreads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := conn.RegisterThread()
			for i := 0; i < perThread; i++ {
				call := rec.Begin()
				old, err := th.FetchAdd(region, 0, 1)
				if err != nil {
					t.Errorf("fetch-add: %v", err)
					return
				}
				rec.End(g, call, check.CounterIn{Add: true, Delta: 1}, check.CounterOut{Val: old})
			}
			// Observer read: pins the final count into the history.
			var buf [8]byte
			call := rec.Begin()
			if err := th.Read(region, 0, buf[:]); err != nil {
				t.Errorf("read: %v", err)
				return
			}
			rec.End(g, call, check.CounterIn{}, check.CounterOut{Val: binary.LittleEndian.Uint64(buf[:])})
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if res := check.Check(check.CounterModel(), rec.History()); !res.Ok {
		t.Fatalf("fetch-add history not linearizable:\n%s", res)
	}
	assertTelemetryInvariants(t, tc)
}

// TestLinearizableKVUnderFaults records put/get traffic against the
// kvstore handlers while a seeded fault plan breaks QPs underneath, and
// checks the history against MonotonicKVModel — the at-least-once
// contract the guarded put handler provides. Calls that fail with an
// ambiguous error are recorded as pending (they may or may not have
// applied); a lost acknowledged put or a stale read is still a violation.
func TestLinearizableKVUnderFaults(t *testing.T) {
	sOpts := Options{QPsPerConn: 2}
	cOpts := Options{
		QPsPerConn:    2,
		RPCTimeout:    100 * time.Millisecond,
		StallTimeout:  10 * time.Millisecond,
		FlapThreshold: -1,
		RCRetries:     3,
	}
	tc := newTestCluster(t, 1, sOpts, cOpts)
	registerKV(t, tc.server)
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	// Seeded outage window on the client→server link plus light loss.
	tc.net.Fabric().SetFaultPlan(&fabric.FaultPlan{
		Seed:       4,
		RCLossProb: 0.01,
		Links: []fabric.LinkFault{
			{Src: tc.clients[0].ID(), Dst: tc.server.ID(), DownAfter: 60, DownFor: 300},
		},
	})

	rec := check.NewRecorder()
	const nThreads, attempts = 4, 40
	var wg sync.WaitGroup
	for g := 0; g < nThreads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := conn.RegisterThread()
			key := uint64(g % 2) // two threads per key: cross-thread races
			req := make([]byte, 16)
			binary.LittleEndian.PutUint64(req[:8], key)
			for i := 0; i < attempts; i++ {
				if i%4 == 3 {
					// A get; ambiguous failures drop out of the history
					// entirely (a failed read observed nothing).
					in := check.KVIn{Key: key}
					call := rec.Begin()
					resp, err := th.Call(kvGetID, req[:8])
					switch {
					case err == nil && resp.Status == StatusOK && len(resp.Data) >= 8:
						rec.End(g, call, in, check.KVOut{
							Val: binary.LittleEndian.Uint64(resp.Data[:8]), Found: true,
						})
					case err == nil && resp.Status == StatusOK:
						rec.End(g, call, in, check.KVOut{})
					case err != nil && !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrQPBroken):
						t.Errorf("kv get: fatal error under faults: %v", err)
						resp.Release()
						return
					}
					resp.Release()
					continue
				}
				// A put with a per-key-unique, per-thread-monotonic value.
				val := uint64(i)*uint64(nThreads) + uint64(g) + 1
				in := check.KVIn{Key: key, Put: true, Val: val}
				binary.LittleEndian.PutUint64(req[8:16], val)
				call := rec.Begin()
				resp, err := th.Call(kvPutID, req)
				switch {
				case err == nil && resp.Status == StatusOK && len(resp.Data) == 1 && resp.Data[0] == 0:
					rec.End(g, call, in, check.KVOut{})
				case err == nil:
					rec.EndPending(g, call, in) // handler refused; treat as unknown
				case errors.Is(err, ErrTimeout) || errors.Is(err, ErrQPBroken):
					rec.EndPending(g, call, in) // ambiguous: may have applied
				default:
					t.Errorf("kv put: fatal error under faults: %v", err)
					resp.Release()
					return
				}
				resp.Release()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if fs := tc.net.Fabric().FaultCounters(); fs.RCDropped == 0 && fs.LinkDownDrops == 0 {
		t.Fatal("fault plan injected nothing — the checked run was vacuous")
	}
	res := check.CheckTimeout(check.MonotonicKVModel(), rec.History(), 30*time.Second)
	if !res.Ok {
		t.Fatalf("kv history under faults not linearizable:\n%s", res)
	}
	if res.TimedOut {
		t.Log("checker hit its time budget; no violation found")
	}
	assertTelemetryInvariants(t, tc)
}
