package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"flock/internal/fabric"
	"flock/internal/mem"
	"flock/internal/resilience"
	"flock/internal/rnic"
	"flock/internal/telemetry"
)

// Errors surfaced by the public API.
var (
	ErrClosed          = errors.New("flock: node closed")
	ErrPayloadTooLarge = errors.New("flock: payload exceeds MaxPayload")
	ErrNotServing      = errors.New("flock: remote node is not serving")
	ErrNoSuchNode      = errors.New("flock: no such node")
	ErrReadTooLarge    = errors.New("flock: read larger than thread scratch region")

	// ErrTimeout reports that an RPC's deadline expired before a response
	// arrived (CallWithDeadline / Options.RPCTimeout). The request may
	// still execute on the server: deadline recovery is at-least-once.
	ErrTimeout = errors.New("flock: RPC deadline exceeded")
	// ErrQPBroken reports that the QP carrying an in-flight operation
	// entered the error state (retry exhaustion, flush, stall). The
	// operation's fate is unknown; the connection recycles the QP in the
	// background and the caller may retry on it or another QP.
	ErrQPBroken = errors.New("flock: queue pair broken; in-flight operation failed")
	// ErrConnClosed reports that the connection handle was closed or
	// failed fatally. It wraps ErrClosed so errors.Is(err, ErrClosed)
	// keeps matching for callers that don't care which.
	ErrConnClosed = fmt.Errorf("flock: connection closed: %w", ErrClosed)

	// ErrOverloaded reports server-side admission pushback: the request
	// was rejected before any handler work (queue depth past
	// AdmissionLimit, or a duplicate raced its still-executing original).
	// Retryable after backoff.
	ErrOverloaded = errors.New("flock: server overloaded; request rejected")
	// ErrDraining reports that the node is draining: it finishes in-flight
	// work but admits nothing new. Deliberately does NOT wrap ErrClosed —
	// the node is healthy, so callers should retry elsewhere rather than
	// give up.
	ErrDraining = errors.New("flock: node draining; request rejected")
	// ErrCircuitOpen reports that the connection's circuit breaker is
	// open: recent history says the remote is failing, so the call was
	// refused locally without touching the wire.
	ErrCircuitOpen = errors.New("flock: circuit breaker open")
	// ErrCanceled reports that a Pending was canceled by its owner before
	// completing. The request may still execute on the server; its
	// response is dropped as stale.
	ErrCanceled = errors.New("flock: call canceled")
)

// Response status codes carried in response item metadata.
const (
	// StatusOK means the handler ran and produced the attached payload.
	StatusOK uint32 = iota
	// StatusNoHandler means no handler was registered for the RPC ID.
	StatusNoHandler
	// StatusHandlerPanic means the handler panicked; the payload is empty.
	StatusHandlerPanic
	// StatusConnClosed is delivered to blocked receivers when their
	// connection handle is closed locally.
	StatusConnClosed
	// StatusOverloaded is the admission-control NACK: rejected before
	// execution, safe (and expected) to retry after backoff.
	StatusOverloaded
	// StatusDraining is the graceful-drain NACK: the node stopped
	// admitting new work; retry on another node.
	StatusDraining
	// StatusWrongShard is the placement NACK: the request's key shard is
	// not owned by this node under its current shard map. The response
	// payload carries the server's (newer) encoded map so the client can
	// self-correct and re-route; it is not an error at the transport
	// layer — it surfaces as Response.Status, and routing layers handle
	// the redirect.
	StatusWrongShard
)

// Handler processes one RPC request and returns the response payload. It
// must not retain req past the call. Returning nil sends an empty
// response.
type Handler func(req []byte) []byte

// StatusHandler is a Handler that also chooses the response status word —
// the hook services built above core (shard routers, placement layers) use
// to NACK requests with application statuses such as StatusWrongShard
// while still attaching a payload. Returning StatusOK is equivalent to a
// plain Handler.
type StatusHandler func(req []byte) ([]byte, uint32)

// Network owns a fabric and the FLock nodes on it. It stands in for the
// out-of-band connection setup (e.g. TCP exchange of QP numbers and rkeys)
// that real RDMA deployments perform.
type Network struct {
	fab *fabric.Fabric
	tel *telemetry.Registry // network-scoped metrics: fabric wire/fault
	// counters and the shared buffer pool

	mu    sync.RWMutex
	nodes map[fabric.NodeID]*Node
}

// NewNetwork creates an empty network over a fresh fabric.
func NewNetwork(fcfg fabric.Config) *Network {
	nw := &Network{
		fab:   fabric.New(fcfg),
		tel:   telemetry.New(),
		nodes: make(map[fabric.NodeID]*Node),
	}
	nw.fab.PublishTelemetry(nw.tel, "fabric.")
	mem.Default.PublishTelemetry(nw.tel, "mem.")
	return nw
}

// Fabric exposes the underlying fabric (for traffic statistics).
func (nw *Network) Fabric() *fabric.Fabric { return nw.fab }

// Telemetry returns the network-scoped registry (fabric and buffer-pool
// views). Per-node metrics live on each Node's registry; use
// TelemetrySnapshot for the combined view.
func (nw *Network) Telemetry() *telemetry.Registry { return nw.tel }

// TelemetrySnapshot captures the whole deployment: the network registry
// plus every node's registry merged under a "node<id>." prefix.
func (nw *Network) TelemetrySnapshot() telemetry.Snapshot {
	s := nw.tel.Snapshot()
	nw.mu.RLock()
	nodes := make([]*Node, 0, len(nw.nodes))
	for _, n := range nw.nodes {
		nodes = append(nodes, n)
	}
	nw.mu.RUnlock()
	for _, n := range nodes {
		s.Merge(fmt.Sprintf("node%d.", n.id), n.tel.Snapshot())
	}
	return s
}

// NewNode creates a FLock node with its own RNIC. nicCacheSize bounds the
// device's connection-context cache: pass 0 for an unconstrained
// functional run and a positive size to model the Figure 2 thrashing
// regime.
func (nw *Network) NewNode(id fabric.NodeID, opts Options, nicCacheSize int) (*Node, error) {
	if err := opts.withDefaults().validate(); err != nil {
		return nil, err
	}
	dev, err := rnic.NewDevice(nw.fab, rnic.Config{
		Node: id, CacheSize: nicCacheSize, RCRetries: opts.RCRetries,
	})
	if err != nil {
		return nil, err
	}
	n := newNode(nw, id, dev, opts)
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if _, dup := nw.nodes[id]; dup {
		dev.Close()
		return nil, fmt.Errorf("flock: node %d already exists", id)
	}
	nw.nodes[id] = n
	return n, nil
}

// node returns the registered node, or nil.
func (nw *Network) node(id fabric.NodeID) *Node {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.nodes[id]
}

// Close shuts down every node and device.
func (nw *Network) Close() {
	nw.mu.Lock()
	nodes := make([]*Node, 0, len(nw.nodes))
	for _, n := range nw.nodes {
		nodes = append(nodes, n)
	}
	nw.nodes = make(map[fabric.NodeID]*Node)
	nw.mu.Unlock()
	for _, n := range nodes {
		n.Close()
	}
}

// NodeMetrics aggregates activity counters useful to benchmarks; see the
// coalescing analysis around Figure 10 of the paper.
type NodeMetrics struct {
	// MsgsIn / ItemsIn count inbound coalesced messages and the requests
	// within them (server role). ItemsIn/MsgsIn is the served coalescing
	// degree.
	MsgsIn  uint64
	ItemsIn uint64
	// MsgsOut / ItemsOut count outbound coalesced request messages and
	// items (client role).
	MsgsOut  uint64
	ItemsOut uint64
	// CreditRenewals counts credit-renewal requests granted (server role).
	CreditRenewals uint64
	// QPActivations / QPDeactivations count receiver-side scheduling
	// actions (server role).
	QPActivations   uint64
	QPDeactivations uint64
	// ThreadMigrations counts sender-side thread reassignments applied.
	ThreadMigrations uint64
	// QPRecycles counts broken QPs torn down and re-established (client
	// and server role combined).
	QPRecycles uint64
	// QPQuarantines counts QPs permanently retired after flapping past
	// Options.FlapThreshold.
	QPQuarantines uint64
	// RPCTimeouts counts per-attempt RPC deadline expiries observed by
	// CallWithDeadline / Call-with-RPCTimeout.
	RPCTimeouts uint64
	// LeaderStalls counts combining-leader credit/space waits that hit
	// StallTimeout and broke their QP.
	LeaderStalls uint64
	// QPRedistributions counts receiver-side scheduler rounds that changed
	// the active-QP set (server role).
	QPRedistributions uint64
	// RPCRejected counts requests shed by admission control before
	// execution (server role); RPCRejectedDraining counts drain NACKs.
	RPCRejected         uint64
	RPCRejectedDraining uint64
	// Retries counts client-side retry attempts sent; RetryBudgetExhausted
	// counts retries the token-bucket budget refused.
	Retries              uint64
	RetryBudgetExhausted uint64
	// Hedges counts hedged request copies sent; HedgesWon counts calls
	// where the hedge's response arrived first.
	Hedges    uint64
	HedgesWon uint64
	// DedupHits counts retried requests answered from the idempotent
	// response cache instead of re-executing (server role).
	DedupHits uint64
	// BreakerOpens counts circuit-breaker closed/half-open → open
	// transitions (client role).
	BreakerOpens uint64
	// CreditWithheld counts credits the watermark policy declined to grant
	// while the server ran near its admission limit.
	CreditWithheld uint64
	// StaleDrops counts responses that arrived after their attempt was
	// abandoned (deadline expiry, hedge loser, cancel) and were dropped at
	// the dispatcher with their pooled lease recycled.
	StaleDrops uint64
}

// Node is one FLock endpoint. A node can serve inbound connections
// (RegisterHandler + Serve) and open outbound connections (Connect),
// including both at once — FLockTX servers do exactly that.
type Node struct {
	net  *Network
	id   fabric.NodeID
	opts Options
	dev  *rnic.Device

	handlers   atomic.Value // map[uint32]Handler snapshot
	inlineRPCs atomic.Value // map[uint32]bool: rpcIDs that bypass the worker pool
	handMu     sync.Mutex

	serving atomic.Bool

	// Overload control (server role): inflight counts admitted-but-not-yet
	// -responded requests against Options.AdmissionLimit; draining flips
	// the node into graceful-drain mode (admit nothing, finish everything).
	inflight atomic.Int64
	draining atomic.Bool

	// Drain lifecycle hooks: observers (cluster membership, placement
	// layers) notified when the node enters drain mode and when Resume
	// re-opens it. Guarded by hookMu; hooks run synchronously on the
	// Drain/Resume caller's goroutine, outside the lock.
	hookMu      sync.Mutex
	drainHooks  []func()
	resumeHooks []func()

	// Server role.
	schedRCQ *rnic.CQ
	sconnMu  sync.Mutex
	sconns   []*serverConn // one per inbound connection handle; a client
	// node may hold several (the paper's multi-process clients, §8.4)
	sconnsSnap atomic.Value // []*serverConn snapshot for the dispatch loops
	byQPN      atomic.Value // map[int]*serverQP snapshot
	workCh     chan workUnit

	// Client role.
	connMu    sync.Mutex
	conns     []*Conn
	connsSnap atomic.Value // []*Conn snapshot for the dispatch loop
	allConns  []*Conn      // every conn ever opened, kept for the
	// Close-time mailbox drain (Conn.Close prunes conns but leases may
	// still sit in closed handles' mailboxes)
	clientState atomic.Bool // client goroutines started

	// Named regions exported for remote one-sided access.
	exportMu sync.Mutex
	exports  map[string]*rnic.MemRegion

	// metrics are sharded telemetry counters (zero value ready): msgsOut/
	// itemsOut take hits from every combining leader, and striping keeps
	// that off a single contended cache line. All of them are published on
	// the node registry as snapshot views in newNode — never lazily.
	metrics struct {
		msgsIn, itemsIn, msgsOut, itemsOut          telemetry.Counter
		renewals, activations, deactivations, migrs telemetry.Counter
		recycles, quarantines, timeouts, stalls     telemetry.Counter
		redistributions                             telemetry.Counter
		rejected, drainRejected                     telemetry.Counter
		retries, budgetExhausted                    telemetry.Counter
		hedges, hedgesWon                           telemetry.Counter
		dedupHits, breakerOpens, creditWithheld     telemetry.Counter
		staleDrops                                  telemetry.Counter
	}

	// tel is the node's telemetry registry; the histograms and the trace
	// ring hang off it. All handles are resolved at construction so the
	// hot path never touches the registry map.
	tel          *telemetry.Registry
	degOut       *telemetry.Hist // coalescing degree of outbound messages
	degIn        *telemetry.Hist // coalescing degree of inbound messages
	tenure       *telemetry.Hist // leader tenure, nanoseconds
	pipeDepth    *telemetry.Hist // pending-table depth at submission
	completionNS *telemetry.Hist // call completion latency, nanoseconds
	trace        *telemetry.TraceRing

	done chan struct{}
	wg   sync.WaitGroup
}

func newNode(nw *Network, id fabric.NodeID, dev *rnic.Device, opts Options) *Node {
	n := &Node{
		net:  nw,
		id:   id,
		opts: opts.withDefaults(),
		dev:  dev,
		tel:  telemetry.New(),
		done: make(chan struct{}),
	}
	n.handlers.Store(map[uint32]StatusHandler{})
	n.inlineRPCs.Store(map[uint32]bool{})
	n.byQPN.Store(map[int]*serverQP{})
	n.connsSnap.Store([]*Conn{})
	n.sconnsSnap.Store([]*serverConn{})
	n.publishTelemetry()
	if n.opts.Trace {
		n.trace.Enable(n.opts.TraceSample)
	}
	return n
}

// publishTelemetry registers every node-level metric on the node registry.
// It runs once at construction — the alloc gate depends on nothing being
// created lazily on the first RPC.
func (n *Node) publishTelemetry() {
	cf := func(name string, c *telemetry.Counter) {
		n.tel.CounterFunc("core."+name, c.Load)
	}
	cf("msgs_in", &n.metrics.msgsIn)
	cf("items_in", &n.metrics.itemsIn)
	cf("msgs_out", &n.metrics.msgsOut)
	cf("items_out", &n.metrics.itemsOut)
	cf("credit_renewals", &n.metrics.renewals)
	cf("qp_activations", &n.metrics.activations)
	cf("qp_deactivations", &n.metrics.deactivations)
	cf("thread_migrations", &n.metrics.migrs)
	cf("qp_recycles", &n.metrics.recycles)
	cf("qp_quarantines", &n.metrics.quarantines)
	cf("rpc_timeouts", &n.metrics.timeouts)
	cf("leader_stalls", &n.metrics.stalls)
	cf("qp_redistributions", &n.metrics.redistributions)
	cf("rpc_rejected", &n.metrics.rejected)
	cf("rpc_rejected_draining", &n.metrics.drainRejected)
	cf("retries", &n.metrics.retries)
	cf("retry_budget_exhausted", &n.metrics.budgetExhausted)
	cf("hedges", &n.metrics.hedges)
	cf("hedges_won", &n.metrics.hedgesWon)
	cf("dedup_hits", &n.metrics.dedupHits)
	cf("breaker_opens", &n.metrics.breakerOpens)
	cf("credit_withheld", &n.metrics.creditWithheld)
	cf("stale_drops", &n.metrics.staleDrops)

	n.degOut = n.tel.Hist("core.coalesce_degree_out")
	n.degIn = n.tel.Hist("core.coalesce_degree_in")
	n.tenure = n.tel.Hist("core.leader_tenure_ns")
	n.pipeDepth = n.tel.Hist("core.pipeline_depth")
	n.completionNS = n.tel.Hist("core.completion_latency_ns")
	n.trace = n.tel.Trace()

	n.tel.GaugeFunc("core.pending_calls", func() int64 {
		var pending int64
		for _, c := range n.snapshotConns() {
			for _, t := range c.snapshotThreads() {
				pending += int64(t.pend.depth())
			}
		}
		return pending
	})

	n.tel.GaugeFunc("core.active_qps", func() int64 {
		var active int64
		for _, sqp := range n.byQPN.Load().(map[int]*serverQP) {
			if sqp.active.Load() {
				active++
			}
		}
		return active
	})
	n.tel.GaugeFunc("core.max_active_qps", func() int64 {
		return int64(n.opts.MaxActiveQPs)
	})
	n.tel.GaugeFunc("core.breaker_open_conns", func() int64 {
		var open int64
		for _, c := range n.snapshotConns() {
			if c.breaker != nil && c.breaker.State() != resilience.BreakerClosed {
				open++
			}
		}
		return open
	})

	n.dev.PublishTelemetry(n.tel, "rnic.")
}

// Telemetry returns the node's metric registry.
func (n *Node) Telemetry() *telemetry.Registry { return n.tel }

// Trace returns the node's RPC-lifecycle trace ring. It is enabled at
// construction by Options.Trace, or at any time via Enable.
func (n *Node) Trace() *telemetry.TraceRing { return n.trace }

// ID returns the node's fabric address.
func (n *Node) ID() fabric.NodeID { return n.id }

// Device exposes the node's RNIC (for NIC-level statistics).
func (n *Node) Device() *rnic.Device { return n.dev }

// Options returns the node's effective (default-filled) options.
func (n *Node) Options() Options { return n.opts }

// Metrics snapshots the node's activity counters.
func (n *Node) Metrics() NodeMetrics {
	return NodeMetrics{
		MsgsIn:            n.metrics.msgsIn.Load(),
		ItemsIn:           n.metrics.itemsIn.Load(),
		MsgsOut:           n.metrics.msgsOut.Load(),
		ItemsOut:          n.metrics.itemsOut.Load(),
		CreditRenewals:    n.metrics.renewals.Load(),
		QPActivations:     n.metrics.activations.Load(),
		QPDeactivations:   n.metrics.deactivations.Load(),
		ThreadMigrations:  n.metrics.migrs.Load(),
		QPRecycles:        n.metrics.recycles.Load(),
		QPQuarantines:     n.metrics.quarantines.Load(),
		RPCTimeouts:       n.metrics.timeouts.Load(),
		LeaderStalls:      n.metrics.stalls.Load(),
		QPRedistributions: n.metrics.redistributions.Load(),

		RPCRejected:          n.metrics.rejected.Load(),
		RPCRejectedDraining:  n.metrics.drainRejected.Load(),
		Retries:              n.metrics.retries.Load(),
		RetryBudgetExhausted: n.metrics.budgetExhausted.Load(),
		Hedges:               n.metrics.hedges.Load(),
		HedgesWon:            n.metrics.hedgesWon.Load(),
		DedupHits:            n.metrics.dedupHits.Load(),
		BreakerOpens:         n.metrics.breakerOpens.Load(),
		CreditWithheld:       n.metrics.creditWithheld.Load(),
		StaleDrops:           n.metrics.staleDrops.Load(),
	}
}

// DegreeHistograms snapshots the node's coalescing-degree histograms:
// outbound (client role, per combined message posted) and inbound (server
// role, per coalesced message received).
func (n *Node) DegreeHistograms() (out, in telemetry.HistSnapshot) {
	return n.degOut.Snapshot(), n.degIn.Snapshot()
}

// RegisterHandler binds fn to rpcID (fl_reg_handler in Table 2).
// Registration is allowed at any time but handlers should be in place
// before clients call them.
func (n *Node) RegisterHandler(rpcID uint32, fn Handler) {
	n.RegisterStatusHandler(rpcID, func(req []byte) ([]byte, uint32) {
		return fn(req), StatusOK
	})
}

// RegisterStatusHandler binds a status-returning handler to rpcID. It is
// RegisterHandler for services that pick their own response status —
// e.g. a shard-aware KV returning StatusWrongShard with the current map
// as payload. Plain and status handlers share one table; the last
// registration for an rpcID wins.
func (n *Node) RegisterStatusHandler(rpcID uint32, fn StatusHandler) {
	n.handMu.Lock()
	defer n.handMu.Unlock()
	old := n.handlers.Load().(map[uint32]StatusHandler)
	next := make(map[uint32]StatusHandler, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[rpcID] = fn
	n.handlers.Store(next)
}

// RegisterInlineStatusHandler is RegisterStatusHandler plus an
// execution-lane promise: the handler runs inline on the request
// dispatcher even when a worker pool is configured, so it can never
// queue behind workers blocked in nested calls. Only for handlers that
// are short and never block on RPCs of their own — replication applies,
// pings, map fetches. A blocking inline handler stalls the node's whole
// receive path.
func (n *Node) RegisterInlineStatusHandler(rpcID uint32, fn StatusHandler) {
	n.RegisterStatusHandler(rpcID, fn)
	n.handMu.Lock()
	defer n.handMu.Unlock()
	old := n.inlineRPCs.Load().(map[uint32]bool)
	next := make(map[uint32]bool, len(old)+1)
	for k := range old {
		next[k] = true
	}
	next[rpcID] = true
	n.inlineRPCs.Store(next)
}

// handler resolves rpcID to a StatusHandler, nil if unregistered.
func (n *Node) handler(rpcID uint32) StatusHandler {
	return n.handlers.Load().(map[uint32]StatusHandler)[rpcID]
}

// inlineSet returns the current inline-lane rpcID set (empty map when
// nothing is registered inline — the common case, checked by len).
func (n *Node) inlineSet() map[uint32]bool {
	return n.inlineRPCs.Load().(map[uint32]bool)
}

// Serve starts the server role: request dispatchers, the worker pool (if
// configured), and the receiver-side QP scheduler (§5.1). It returns
// immediately; inbound connections are accepted while serving.
func (n *Node) Serve() error {
	select {
	case <-n.done:
		return ErrClosed
	default:
	}
	if n.serving.Swap(true) {
		return nil // already serving
	}
	n.schedRCQ = rnic.NewCQ(1 << 16)
	if n.opts.Workers > 0 {
		n.workCh = make(chan workUnit, 4*n.opts.Workers)
		for i := 0; i < n.opts.Workers; i++ {
			n.wg.Add(1)
			go n.worker()
		}
	}
	for i := 0; i < n.opts.Dispatchers; i++ {
		n.wg.Add(1)
		go n.serveDispatch(i)
	}
	n.wg.Add(1)
	go n.qpScheduler()
	return nil
}

// Serving reports whether Serve has been called.
func (n *Node) Serving() bool { return n.serving.Load() }

// Close stops all of the node's goroutines and its device. Blocked
// application calls return ErrClosed.
func (n *Node) Close() {
	n.connMu.Lock()
	select {
	case <-n.done:
		n.connMu.Unlock()
		return
	default:
	}
	close(n.done)
	n.connMu.Unlock()
	n.wg.Wait()
	n.drainLeases()
	n.dev.Close()
}

// Drain puts the node into graceful-drain mode and waits for quiescence:
// new requests are pushed back with StatusDraining (server role) and new
// sends fail with ErrDraining (client role), while everything already
// in flight — admitted handler work, outstanding responses, in-progress
// combines — runs to completion. It returns nil once the node is
// quiescent: zero admitted server requests and zero outstanding client
// RPCs, so no pooled lease is held on the node's behalf. ctx bounds the
// wait; nil ctx waits indefinitely. Drain does not close anything —
// after it returns, Close is safe and instant, or Resume re-opens the
// node for traffic.
func (n *Node) Drain(ctx context.Context) error {
	if !n.draining.Swap(true) {
		n.runHooks(&n.drainHooks)
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for i := 0; ; i++ {
		if n.quiescent() {
			return nil
		}
		select {
		case <-n.done:
			return ErrClosed
		default:
		}
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		idleBackoff(i)
	}
}

// Resume takes the node out of drain mode; it admits traffic again.
func (n *Node) Resume() {
	if n.draining.Swap(false) {
		n.runHooks(&n.resumeHooks)
	}
}

// OnDrain registers fn to run when the node enters drain mode (the first
// Drain call of a drain episode). Cluster layers use it to advertise a
// planned decommission so routers steer around the node before its shards
// move.
func (n *Node) OnDrain(fn func()) {
	n.hookMu.Lock()
	n.drainHooks = append(n.drainHooks, fn)
	n.hookMu.Unlock()
}

// OnResume registers fn to run when Resume re-opens a drained node —
// the rejoin signal membership layers key the give-shards-back rebalance
// off.
func (n *Node) OnResume(fn func()) {
	n.hookMu.Lock()
	n.resumeHooks = append(n.resumeHooks, fn)
	n.hookMu.Unlock()
}

// runHooks snapshots and runs one hook list outside the lock.
func (n *Node) runHooks(hooks *[]func()) {
	n.hookMu.Lock()
	fns := make([]func(), len(*hooks))
	copy(fns, *hooks)
	n.hookMu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Draining reports whether the node is in drain mode.
func (n *Node) Draining() bool { return n.draining.Load() }

// quiescent reports zero in-flight work on both roles: no admitted
// server-side requests and no outstanding client-side RPCs on any thread.
func (n *Node) quiescent() bool {
	if n.inflight.Load() != 0 {
		return false
	}
	for _, c := range n.snapshotConns() {
		for _, t := range c.snapshotThreads() {
			if t.pend.depth() != 0 {
				return false
			}
		}
	}
	return true
}

// drainLeases recycles pooled buffers still parked in mailboxes and the
// worker channel at shutdown. It runs after wg.Wait — dispatchers and
// workers are gone, so nothing refills what it drains. Application threads
// may still race a concurrent RecvRes; the channel hands each Response to
// exactly one receiver, so no lease is released twice.
func (n *Node) drainLeases() {
	n.connMu.Lock()
	all := make([]*Conn, len(n.allConns))
	copy(all, n.allConns)
	n.connMu.Unlock()
	for _, c := range all {
		for _, t := range c.snapshotThreads() {
			for more := true; more; {
				select {
				case r := <-t.respCh:
					r.Release()
				default:
					more = false
				}
			}
			// Completed pending-table records no waiter claimed still hold
			// their response leases; unwaited Pendings park here.
			t.pend.drain()
		}
	}
	if n.workCh != nil {
		for more := true; more; {
			select {
			case u := <-n.workCh:
				u.buf.Release()
				n.inflight.Add(-int64(len(u.items)))
			default:
				more = false
			}
		}
	}
}

// ensureClientSide lazily starts the client-role goroutines: the response
// dispatcher (§4.3) and the sender-side thread scheduler (§5.2).
func (n *Node) ensureClientSide() {
	if n.clientState.Swap(true) {
		return
	}
	n.wg.Add(2)
	go n.clientDispatch()
	go n.threadScheduler()
}

// snapshotConns returns the current outbound connections. The returned
// slice is a shared immutable snapshot — callers must not mutate it. The
// dispatcher reads it every spin, so it is cached and republished only
// when the set changes (Connect, Conn.Close) rather than copied per call.
func (n *Node) snapshotConns() []*Conn {
	return n.connsSnap.Load().([]*Conn)
}

// publishConnsLocked refreshes the dispatch snapshot; caller holds connMu.
func (n *Node) publishConnsLocked() {
	out := make([]*Conn, len(n.conns))
	copy(out, n.conns)
	n.connsSnap.Store(out)
}
