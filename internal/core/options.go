// Package core implements FLock: a communication framework that scales
// RDMA RPCs over reliable connections by sharing queue pairs among threads
// (SOSP 2021). It provides the paper's three mechanisms:
//
//   - The connection handle (§3): one logical connection per remote node
//     multiplexing a set of RC QPs among application threads, exposing
//     RPC, remote memory, and atomic operations (Table 2).
//   - FLock synchronization (§4.2): an MCS-style thread combining queue
//     per QP. A transient leader coalesces the requests of concurrent
//     followers into one message and posts it with a single RDMA write.
//   - Symbiotic send-recv scheduling (§5): the receiver-side QP scheduler
//     activates/deactivates QPs using credits and the coalescing-degree
//     contention metric; the sender-side thread scheduler packs threads
//     onto active QPs by Algorithm 1.
//
// The package runs over the software RNIC in internal/rnic; on real
// hardware the same structure would sit on libibverbs.
package core

import "time"

// Default parameter values; each mirrors the paper where it specifies one.
const (
	// DefaultCredits is C in §5.1: each sender starts with C credits per
	// QP and requests C more after consuming half.
	DefaultCredits = 32
	// DefaultMaxActiveQPs is MAX_AQP in §5.1, chosen in the paper to
	// avoid RNIC cache thrashing (Figure 2a).
	DefaultMaxActiveQPs = 256
	// DefaultMaxBatch bounds how many follower requests a leader
	// coalesces into one message (§4.2 "bounded number of buffers").
	DefaultMaxBatch = 16
	// DefaultRingBytes sizes each request/response ring buffer.
	DefaultRingBytes = 1 << 20
	// DefaultMaxPayload bounds a single RPC payload. Sized so a full
	// leader batch of maximum payloads still fits twice in the default
	// ring (the geometry NewNode validates).
	DefaultMaxPayload = 16 << 10
	// DefaultRespWindow bounds outstanding responses buffered per thread.
	DefaultRespWindow = 64
	// DefaultSignalEvery applies selective signaling (§7): one signaled
	// write per this many posted messages.
	DefaultSignalEvery = 16
	// DefaultSchedInterval is the period of both the receiver-side QP
	// scheduler and the sender-side thread scheduler.
	DefaultSchedInterval = 2 * time.Millisecond
	// DefaultStallTimeout bounds leader credit/space waits and follower
	// verdict waits before the stall guard declares the QP (or its leader)
	// stuck and recovers.
	DefaultStallTimeout = 20 * time.Millisecond
	// DefaultFlapThreshold is how many times a QP may break and be
	// recycled before the connection quarantines it for good.
	DefaultFlapThreshold = 3
	// DefaultTraceSample keeps one traced request lifecycle in 64 when
	// Options.Trace is on — dense enough to see the pipeline, sparse
	// enough that the trace mutex stays off the measured path.
	DefaultTraceSample = 64
	// timeoutStrikes is how many consecutive per-attempt RPC timeouts on
	// one QP it takes before the client declares the QP broken. Server-side
	// failures (the server end of the QP erroring, responses lost) are
	// invisible to the client NIC, so repeated timeouts are the signal.
	timeoutStrikes = 3
	// DefaultDedupWindow is how many completed idempotent responses each
	// inbound connection caches for retry dedup.
	DefaultDedupWindow = 1024
	// DefaultPipelineDepth caps in-flight calls per thread on the async
	// path (CallAsync / SendBatch): deep enough for full doorbell
	// coalescing, bounded so an unchecked submitter cannot grow the
	// pending-call table without limit.
	DefaultPipelineDepth = 64
	// DefaultRetryBaseBackoff / DefaultRetryMaxBackoff bound the
	// exponential full-jitter retry backoff.
	DefaultRetryBaseBackoff = 200 * time.Microsecond
	DefaultRetryMaxBackoff  = 10 * time.Millisecond
	// DefaultRetryBudgetRatio / DefaultRetryBudgetBurst parameterize the
	// token-bucket retry budget: each success earns 0.1 retry tokens,
	// bounded by a burst of 16, so retries self-extinguish under sustained
	// overload instead of amplifying it.
	DefaultRetryBudgetRatio = 0.1
	DefaultRetryBudgetBurst = 16
	// DefaultBreakerCooldown / DefaultBreakerProbes parameterize the
	// per-connection circuit breaker once BreakerThreshold enables it.
	DefaultBreakerCooldown = 100 * time.Millisecond
	DefaultBreakerProbes   = 1
)

// Options configures a Node. The zero value is usable: every field falls
// back to the defaults above.
type Options struct {
	// QPsPerConn is how many RC QPs a connection handle creates toward a
	// remote node — the multiplexing width. The paper sizes it to the
	// client's thread count; applications usually set it to their
	// expected thread count. Default 8.
	QPsPerConn int
	// MaxActiveQPs caps the number of QPs the node keeps active across
	// all inbound connections when serving (MAX_AQP). Default 256.
	MaxActiveQPs int
	// Credits is the per-QP credit budget C. Default 32.
	Credits int
	// MaxBatch bounds leader coalescing. Default 16. Setting it to 1
	// disables coalescing (the Figure 10 ablation).
	MaxBatch int
	// RingBytes sizes each ring buffer. Default 1 MiB.
	RingBytes int
	// MaxPayload bounds a single request or response payload. Default 16 KiB.
	MaxPayload int
	// RespWindow bounds buffered responses per thread. Default 64.
	RespWindow int
	// SignalEvery is the selective-signaling period. 1 signals every
	// message. Default 16.
	SignalEvery int
	// SchedInterval is the scheduling period for both schedulers.
	// Default 2ms.
	SchedInterval time.Duration
	// Dispatchers is the number of server-side request dispatcher
	// goroutines. Default 1.
	Dispatchers int
	// Workers is the size of the server-side RPC worker pool. Zero runs
	// handlers inline on the dispatcher (the paper supports both, §4.3).
	Workers int
	// DisableThreadSched turns off sender-side thread scheduling
	// (Figure 11 ablation): threads keep their initial round-robin QP.
	DisableThreadSched bool
	// DisableQPSched turns off receiver-side QP scheduling: all QPs stay
	// active and credits are granted unconditionally.
	DisableQPSched bool
	// Seed seeds per-node RNGs (canary generation, initial placement).
	Seed uint64
	// RPCTimeout is the default per-call deadline Thread.Call applies.
	// Zero disables deadlines (legacy unbounded waits);
	// Thread.CallWithDeadline always applies its explicit budget.
	RPCTimeout time.Duration
	// StallTimeout bounds how long a combining leader waits for credits or
	// ring space, and how long a follower waits for a leader verdict,
	// before the stall guard recovers (breaking the QP or re-electing on
	// another). Zero means DefaultStallTimeout; negative disables the
	// guard entirely.
	StallTimeout time.Duration
	// FlapThreshold is how many times one QP may break and be recycled
	// before the connection quarantines it instead (graceful degradation
	// for repeatedly flapping links). Zero means DefaultFlapThreshold;
	// negative recycles forever.
	FlapThreshold int
	// RCRetries is the RC retransmission budget handed to the NIC. Zero
	// uses the NIC default (7). Only matters when the fabric carries a
	// fault plan; a clean fabric never retransmits.
	RCRetries int
	// Trace enables the node's RPC-lifecycle trace ring at construction.
	// Disabled (the default), every trace probe on the hot path is a
	// single atomic load.
	Trace bool
	// TraceSample keeps one traced request lifecycle per this many
	// sequence numbers when Trace is on (rounded up to a power of two).
	// Zero means DefaultTraceSample. Per-message events (combine, post,
	// complete) are always recorded while tracing.
	TraceSample int
	// AdmissionLimit caps concurrently admitted requests in the server
	// role. Excess requests are rejected with StatusOverloaded before any
	// handler work runs — a cheap NACK instead of unbounded queueing.
	// Zero disables admission control (legacy behavior).
	AdmissionLimit int
	// DedupWindow sizes the per-inbound-connection idempotent-response
	// cache: a retried RPC whose original already executed gets the cached
	// response instead of running twice. Zero means DefaultDedupWindow;
	// negative disables dedup (idempotency keys are then ignored).
	DedupWindow int
	// RetryMaxAttempts > 0 routes Thread.Call and CallWithDeadline through
	// the resilient client path: idempotency-keyed requests retried up to
	// this many attempts total on retryable failures (timeout, broken QP,
	// overload pushback), gated by the retry budget. Zero keeps the
	// single-attempt legacy path.
	RetryMaxAttempts int
	// RetryBaseBackoff is the attempt-0 backoff ceiling (full jitter).
	// Zero means DefaultRetryBaseBackoff; negative disables backoff.
	RetryBaseBackoff time.Duration
	// RetryMaxBackoff caps the exponential backoff growth. Zero means
	// DefaultRetryMaxBackoff.
	RetryMaxBackoff time.Duration
	// RetryBudgetRatio is how many retry tokens each successful first
	// attempt earns. Zero means DefaultRetryBudgetRatio; negative earns
	// nothing (the initial burst is the whole budget).
	RetryBudgetRatio float64
	// RetryBudgetBurst is the retry budget's bucket size (it starts full).
	// Zero means DefaultRetryBudgetBurst.
	RetryBudgetBurst int
	// HedgeDelay, when positive, arms hedged requests on the resilient
	// path: if no response arrives within the delay, a second copy of the
	// request (same idempotency key — dedup keeps it single-execution) is
	// sent and the first response wins. Zero disables hedging.
	HedgeDelay time.Duration
	// BreakerThreshold enables the per-connection circuit breaker: after
	// this many consecutive failures the breaker opens and calls fail
	// fast with ErrCircuitOpen until a cooldown probe succeeds. Zero
	// disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// half-open probes. Zero means DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// BreakerProbes is how many trial requests a half-open breaker admits.
	// Zero means DefaultBreakerProbes.
	BreakerProbes int
	// PipelineDepth caps a thread's in-flight calls on the asynchronous
	// path: CallAsync and SendBatch block while the pending-call table is
	// at this depth. Zero means DefaultPipelineDepth; negative disables
	// the cap. Synchronous calls are unaffected (they hold at most a
	// hedged pair in flight).
	PipelineDepth int
}

// withDefaults returns a copy of o with zero fields replaced by defaults.
func (o Options) withDefaults() Options {
	if o.QPsPerConn <= 0 {
		o.QPsPerConn = 8
	}
	if o.MaxActiveQPs <= 0 {
		o.MaxActiveQPs = DefaultMaxActiveQPs
	}
	if o.Credits <= 0 {
		o.Credits = DefaultCredits
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.RingBytes <= 0 {
		o.RingBytes = DefaultRingBytes
	}
	if o.MaxPayload <= 0 {
		o.MaxPayload = DefaultMaxPayload
	}
	if o.RespWindow <= 0 {
		o.RespWindow = DefaultRespWindow
	}
	if o.SignalEvery <= 0 {
		o.SignalEvery = DefaultSignalEvery
	}
	if o.SchedInterval <= 0 {
		o.SchedInterval = DefaultSchedInterval
	}
	if o.Dispatchers <= 0 {
		o.Dispatchers = 1
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	if o.StallTimeout == 0 {
		o.StallTimeout = DefaultStallTimeout
	}
	if o.FlapThreshold == 0 {
		o.FlapThreshold = DefaultFlapThreshold
	}
	if o.TraceSample <= 0 {
		o.TraceSample = DefaultTraceSample
	}
	if o.DedupWindow == 0 {
		o.DedupWindow = DefaultDedupWindow
	}
	if o.RetryBaseBackoff == 0 {
		o.RetryBaseBackoff = DefaultRetryBaseBackoff
	}
	if o.RetryMaxBackoff == 0 {
		o.RetryMaxBackoff = DefaultRetryMaxBackoff
	}
	if o.RetryBudgetRatio == 0 {
		o.RetryBudgetRatio = DefaultRetryBudgetRatio
	}
	if o.RetryBudgetBurst == 0 {
		o.RetryBudgetBurst = DefaultRetryBudgetBurst
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	if o.BreakerProbes == 0 {
		o.BreakerProbes = DefaultBreakerProbes
	}
	if o.PipelineDepth == 0 {
		o.PipelineDepth = DefaultPipelineDepth
	}
	return o
}
