package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flock/internal/fabric"
)

// Overload-control suite: admission pushback, idempotent dedup, hedging,
// circuit breaking, and graceful drain, exercised end to end over the
// software RNIC. The package leak gate (TestMain) doubles as the "drain
// ends at zero leases" assertion for every test here.

// TestOverloadPushback drives more concurrent work than the admission
// limit allows and asserts the excess is shed with typed pushback before
// any handler ran: callers see ErrOverloaded (not a timeout), the server
// counts the rejects, and a backed-off retry eventually lands every call.
func TestOverloadPushback(t *testing.T) {
	const slowID = 9
	tc := newTestCluster(t, 1, Options{AdmissionLimit: 2, Workers: 2}, Options{})
	tc.server.RegisterHandler(slowID, func(req []byte) []byte {
		time.Sleep(2 * time.Millisecond)
		out := make([]byte, len(req))
		copy(out, req)
		return out
	})
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}

	const nThreads, perThread = 6, 25
	var overloaded atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < nThreads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := conn.RegisterThread()
			for i := 0; i < perThread; i++ {
				payload := []byte(fmt.Sprintf("t%d-%d", g, i))
				deadline := time.Now().Add(chaosDeadline)
				for {
					r, err := th.Call(slowID, payload)
					if err == nil {
						if !bytes.Equal(r.Data, payload) {
							t.Errorf("echo mismatch under overload: %q != %q", r.Data, payload)
						}
						r.Release()
						break
					}
					switch {
					case err == ErrOverloaded:
						overloaded.Add(1)
					case errors.Is(err, ErrTimeout):
					default:
						t.Errorf("unexpected error under overload: %v", err)
						return
					}
					if time.Now().After(deadline) {
						t.Errorf("call never admitted: %v", err)
						return
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if overloaded.Load() == 0 {
		t.Fatal("no caller ever saw ErrOverloaded — the overload was vacuous")
	}
	if m := tc.server.Metrics(); m.RPCRejected == 0 {
		t.Fatalf("admission control rejected nothing (metrics %+v)", m)
	}
}

// TestDedupSingleExecution sends one idempotency key three ways — the
// original, a duplicate racing the still-executing original, and a
// duplicate after completion — and asserts the handler executed exactly
// once: the racer is NACKed with StatusOverloaded (never blocks a
// worker), the late duplicate is answered from the dedup window with the
// cached bytes.
func TestDedupSingleExecution(t *testing.T) {
	const countID = 11
	var execs atomic.Uint64
	entered := make(chan struct{})
	release := make(chan struct{})
	tc := newTestCluster(t, 1, Options{Workers: 2}, Options{})
	tc.server.RegisterHandler(countID, func(req []byte) []byte {
		if execs.Add(1) == 1 {
			close(entered)
			<-release
		}
		return []byte{byte(execs.Load())}
	})
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()
	deadline := time.Now().Add(chaosDeadline)
	const key = 42

	seqA, err := th.sendRPCKey(countID, []byte("dup"), deadline, key)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the original is executing and holds the dedup reservation
	seqB, err := th.sendRPCKey(countID, []byte("dup"), deadline, key)
	if err != nil {
		t.Fatal(err)
	}
	rB, err := th.RecvRes()
	if err != nil {
		t.Fatal(err)
	}
	if rB.Seq != seqB || rB.Status != StatusOverloaded {
		t.Fatalf("racing duplicate: seq=%d status=%d, want seq=%d StatusOverloaded", rB.Seq, rB.Status, seqB)
	}
	rB.Release()

	close(release)
	rA, err := th.RecvRes()
	if err != nil {
		t.Fatal(err)
	}
	if rA.Seq != seqA || rA.Status != StatusOK {
		t.Fatalf("original: seq=%d status=%d, want seq=%d StatusOK", rA.Seq, rA.Status, seqA)
	}
	want := append([]byte(nil), rA.Data...)
	rA.Release()

	seqC, err := th.sendRPCKey(countID, []byte("dup"), time.Now().Add(chaosDeadline), key)
	if err != nil {
		t.Fatal(err)
	}
	rC, err := th.RecvRes()
	if err != nil {
		t.Fatal(err)
	}
	if rC.Seq != seqC || rC.Status != StatusOK {
		t.Fatalf("late duplicate: seq=%d status=%d, want seq=%d StatusOK", rC.Seq, rC.Status, seqC)
	}
	if !bytes.Equal(rC.Data, want) {
		t.Fatalf("cached replay mismatch: %v != %v", rC.Data, want)
	}
	rC.Release()

	if n := execs.Load(); n != 1 {
		t.Fatalf("handler executed %d times, want exactly 1", n)
	}
	if m := tc.server.Metrics(); m.DedupHits == 0 {
		t.Fatalf("no dedup hit recorded (metrics %+v)", m)
	}
}

// TestHedgedRequestWins arms a hedge against a laggy first copy: with the
// dedup window disabled both copies execute, the fast hedge's response
// wins the race, and the straggler is dropped as stale. The hedge metrics
// must record exactly one hedge sent and won.
func TestHedgedRequestWins(t *testing.T) {
	const laggyID = 12
	var calls atomic.Uint64
	tc := newTestCluster(t, 1, Options{Workers: 2, DedupWindow: -1}, Options{})
	tc.server.RegisterHandler(laggyID, func(req []byte) []byte {
		if calls.Add(1) == 1 {
			time.Sleep(40 * time.Millisecond) // only the first copy is slow
		}
		out := make([]byte, len(req))
		copy(out, req)
		return out
	})
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()

	payload := []byte("hedge-me")
	r, err := th.CallOpts(laggyID, payload, CallOptions{
		Budget:     2 * time.Second,
		HedgeDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data, payload) {
		t.Fatalf("hedged echo mismatch: %q != %q", r.Data, payload)
	}
	r.Release()
	if m := tc.clients[0].Metrics(); m.Hedges != 1 || m.HedgesWon != 1 {
		t.Fatalf("hedges=%d won=%d, want 1/1", m.Hedges, m.HedgesWon)
	}

	// Wait for the straggler's response to land in the mailbox, then sweep
	// it with a plain call — its recv loop drops stale responses — so the
	// lease is back in the pool before the leak gate runs.
	waitFor(t, "straggler response delivery", func() bool { return th.Outstanding() == 0 })
	if err := callDrop(th, laggyID, []byte("sweep")); err != nil {
		t.Fatalf("sweep call: %v", err)
	}
}

// TestDrainQuiesces drains the server under live fire: Drain must return
// once nothing is in flight while callers are pushed back with
// ErrDraining (not timeouts, not ErrClosed), and Resume must restore
// service on the same connections.
func TestDrainQuiesces(t *testing.T) {
	tc := newTestCluster(t, 1, Options{Workers: 1}, Options{})
	registerEcho(tc.server)
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th0 := conn.RegisterThread()
	callUntilOK(t, th0, []byte("warm"))

	stop := make(chan struct{})
	var drainNACKs atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := conn.RegisterThread()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := callDrop(th, echoID, []byte(fmt.Sprintf("g%d-%d", g, i)))
				switch {
				case err == nil:
				case err == ErrDraining:
					drainNACKs.Add(1)
					time.Sleep(200 * time.Microsecond)
				case errors.Is(err, ErrTimeout) || err == ErrOverloaded:
				default:
					t.Errorf("unexpected error during drain: %v", err)
					return
				}
			}
		}(g)
	}

	ctx, cancel := context.WithTimeout(context.Background(), chaosDeadline)
	defer cancel()
	if err := tc.server.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !tc.server.Draining() {
		t.Fatal("Draining() false after Drain returned")
	}
	waitFor(t, "a drain NACK to reach a caller", func() bool { return drainNACKs.Load() > 0 })
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if m := tc.server.Metrics(); m.RPCRejectedDraining == 0 {
		t.Fatalf("no drain rejections recorded (metrics %+v)", m)
	}

	tc.server.Resume()
	callUntilOK(t, th0, []byte("post-drain"))
}

// TestDrainingVsClosedErrors pins the error taxonomy callers route on:
// drain pushback means "the node is healthy, retry elsewhere" and must
// not look like closure, while connection teardown means "give up" and
// must wrap ErrClosed.
func TestDrainingVsClosedErrors(t *testing.T) {
	if errors.Is(ErrDraining, ErrClosed) {
		t.Fatal("ErrDraining must not wrap ErrClosed — it means retry elsewhere")
	}
	if !errors.Is(ErrConnClosed, ErrClosed) {
		t.Fatal("ErrConnClosed must wrap ErrClosed")
	}

	tc := newTestCluster(t, 2, Options{}, Options{})
	registerEcho(tc.server)

	// A draining client node refuses new sends with ErrDraining and serves
	// again after Resume.
	connA, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	thA := connA.RegisterThread()
	if err := callDrop(thA, echoID, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if err := tc.clients[0].Drain(nil); err != nil {
		t.Fatalf("idle client Drain: %v", err)
	}
	if err := callDrop(thA, echoID, []byte("x")); err != ErrDraining {
		t.Fatalf("call on draining node: %v, want ErrDraining", err)
	}
	tc.clients[0].Resume()
	if err := callDrop(thA, echoID, []byte("y")); err != nil {
		t.Fatalf("call after Resume: %v", err)
	}

	// A closed connection surfaces the recorded teardown cause.
	connB, err := tc.clients[1].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	thB := connB.RegisterThread()
	if err := callDrop(thB, echoID, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	connB.Close()
	err = callDrop(thB, echoID, []byte("z"))
	if err != ErrConnClosed {
		t.Fatalf("call on closed conn: %v, want ErrConnClosed", err)
	}
	if !errors.Is(err, ErrClosed) || errors.Is(err, ErrDraining) {
		t.Fatalf("closed-conn error taxonomy wrong: %v", err)
	}
}

// TestBreakerOpensAndRecovers trips the per-connection circuit breaker
// with consecutive attempt timeouts, asserts calls are then refused
// locally with ErrCircuitOpen, and verifies the half-open probe closes it
// again once the server recovers.
func TestBreakerOpensAndRecovers(t *testing.T) {
	const flakyID = 13
	var slow atomic.Bool
	cOpts := Options{
		RetryMaxAttempts: 1,
		RPCTimeout:       20 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		FlapThreshold:    -1, // timeouts may break QPs; recycle, never retire
	}
	tc := newTestCluster(t, 1, Options{Workers: 1}, cOpts)
	tc.server.RegisterHandler(flakyID, func(req []byte) []byte {
		if slow.Load() {
			time.Sleep(30 * time.Millisecond)
		}
		return []byte("pong")
	})
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()
	if err := callDrop(th, flakyID, []byte("warm")); err != nil {
		t.Fatal(err)
	}

	// Two consecutive per-attempt timeouts trip the breaker…
	slow.Store(true)
	for i := 0; i < 2; i++ {
		if err := callDrop(th, flakyID, []byte("ping")); err != ErrTimeout {
			t.Fatalf("slow call %d: %v, want ErrTimeout", i, err)
		}
	}
	// …so the next call is refused locally, before touching the wire.
	if err := callDrop(th, flakyID, []byte("ping")); err != ErrCircuitOpen {
		t.Fatalf("call with open breaker: %v, want ErrCircuitOpen", err)
	}

	// Server healthy again: after the cooldown the half-open probe must
	// succeed and close the breaker. Probes racing the cooldown or the
	// still-busy server are expected; only success ends the wait.
	slow.Store(false)
	waitFor(t, "breaker to close via half-open probe", func() bool {
		err := callDrop(th, flakyID, []byte("probe"))
		if err == nil {
			return true
		}
		if err != ErrCircuitOpen && err != ErrTimeout && err != ErrQPBroken {
			t.Fatalf("probe: %v", err)
		}
		return false
	})
	for i := 0; i < 3; i++ {
		if err := callDrop(th, flakyID, []byte("steady")); err != nil {
			t.Fatalf("post-recovery call %d: %v", i, err)
		}
	}
	if m := tc.clients[0].Metrics(); m.BreakerOpens == 0 {
		t.Fatalf("breaker never recorded opening (metrics %+v)", m)
	}
}

// TestOverloadChaos is the seeded end-to-end overload run: offered load
// well past the admission limit from two client nodes, RC loss injected
// underneath, resilient clients retrying with jittered backoff. Every
// call must eventually land with its own echo, shedding and retries must
// both actually happen (vacuity gates), and afterwards both roles must
// drain to quiescence.
func TestOverloadChaos(t *testing.T) {
	const slowID = 14
	sOpts := Options{AdmissionLimit: 2, Workers: 2}
	cOpts := Options{
		RetryMaxAttempts: 6,
		RPCTimeout:       250 * time.Millisecond,
		RetryBaseBackoff: 100 * time.Microsecond,
		RetryMaxBackoff:  2 * time.Millisecond,
		FlapThreshold:    -1, // loss may break QPs; recycle, never retire
	}
	tc := newTestCluster(t, 2, sOpts, cOpts)
	registerEcho(tc.server)
	tc.server.RegisterHandler(slowID, func(req []byte) []byte {
		time.Sleep(500 * time.Microsecond)
		out := make([]byte, len(req))
		copy(out, req)
		return out
	})
	tc.net.Fabric().SetFaultPlan(&fabric.FaultPlan{Seed: 6, RCLossProb: 0.01})

	const nThreads, perThread = 4, 25
	var wg sync.WaitGroup
	conns := make([]*Conn, len(tc.clients))
	for ci, cl := range tc.clients {
		conn, err := cl.Connect(0)
		if err != nil {
			t.Fatal(err)
		}
		conns[ci] = conn
		for g := 0; g < nThreads; g++ {
			wg.Add(1)
			go func(ci, g int, conn *Conn) {
				defer wg.Done()
				th := conn.RegisterThread()
				for i := 0; i < perThread; i++ {
					payload := []byte(fmt.Sprintf("c%d-t%d-%d", ci, g, i))
					deadline := time.Now().Add(chaosDeadline)
					for {
						r, err := th.Call(slowID, payload)
						if err == nil {
							if !bytes.Equal(r.Data, payload) {
								t.Errorf("echo mismatch under chaos: %q != %q", r.Data, payload)
							}
							r.Release()
							break
						}
						if err != ErrOverloaded && !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrQPBroken) {
							t.Errorf("fatal error under overload chaos: %v", err)
							return
						}
						if time.Now().After(deadline) {
							t.Errorf("call never completed: last error %v", err)
							return
						}
						time.Sleep(200 * time.Microsecond)
					}
				}
			}(ci, g, conn)
		}
	}
	wg.Wait()
	tc.net.Fabric().SetFaultPlan(nil)
	if t.Failed() {
		return
	}

	if fs := tc.net.Fabric().FaultCounters(); fs.RCDropped == 0 {
		t.Fatal("fault plan injected nothing — the chaos run was vacuous")
	}
	if m := tc.server.Metrics(); m.RPCRejected == 0 {
		t.Fatalf("admission control rejected nothing under 2x overload (metrics %+v)", m)
	}
	var retries uint64
	for _, cl := range tc.clients {
		retries += cl.Metrics().Retries
	}
	if retries == 0 {
		t.Fatal("no client retry recorded — resilience path never engaged")
	}

	// Both roles must drain to quiescence: zero admitted server work, zero
	// outstanding client RPCs (the leak gate separately proves zero leases).
	ctx, cancel := context.WithTimeout(context.Background(), chaosDeadline)
	defer cancel()
	if err := tc.server.Drain(ctx); err != nil {
		t.Fatalf("server Drain: %v", err)
	}
	for i, cl := range tc.clients {
		if err := cl.Drain(ctx); err != nil {
			t.Fatalf("client %d Drain: %v", i, err)
		}
	}
	tc.server.Resume()
	for _, cl := range tc.clients {
		cl.Resume()
	}
	th := conns[0].RegisterThread()
	callUntilOK(t, th, []byte("post-chaos"))
}
