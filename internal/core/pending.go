package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"flock/internal/resilience"
)

// This file is the unified client completion path: a per-thread
// pending-call table in which every submitted RPC owns a completion record
// the dispatcher completes directly by sequence ID, and one attempt engine
// (Pending) that every public entry point — Call, CallWithDeadline,
// CallOpts, CallAsync, SendBatch — parameterizes instead of reimplementing.
// The table replaces the old per-thread response channel scan: responses
// are routed to their exact caller, so synchronous and asynchronous calls
// interleave freely on one thread, stale responses are dropped at the
// dispatcher (no per-caller drop heuristics), and recovery poisons exactly
// the records riding a broken QP instead of a thread-wide counter's worth.
//
// Ownership protocol. A record lives in the table from registration until
// exactly one party removes it:
//
//   - A completer (dispatcher delivery, QP poisoning, connection failure)
//     that finds the record in the table marks it done, stores the
//     response, and sends the record's token — all under the table lock,
//     so "done" and "token present" are never observed apart.
//   - The waiter consumes the token and removes the record; abandoning a
//     wait (attempt deadline) removes the record first, and if a completer
//     already marked it done, consumes the guaranteed token and releases
//     the response's pooled lease.
//   - Close-time draining walks the tables and releases responses whose
//     tokens no waiter has claimed, so leases held by unwaited Pendings
//     never outlive the node.
//
// Records for the legacy SendRPC/RecvRes surface are flagged mailbox: the
// completer removes them itself and delivers into the thread's response
// channel, keeping that API's ordering contract intact.

// callRec is one entry in a thread's pending-call table: the completion
// future for a single submitted attempt.
type callRec struct {
	seq uint64
	// qp is the QP index the attempt was last pushed on (-1 before the
	// first push). The submitter stores it outside the table lock while
	// recovery reads it under the lock, hence atomic.
	qp   atomic.Int32
	done bool // completed; resp valid and token sent (guarded by table mu)
	// mailbox routes completion into the thread's legacy response channel
	// (SendRPC/RecvRes) instead of the token protocol.
	mailbox bool
	resp    Response
	// ch carries the completion token. Capacity one and reused across
	// recycles; the ownership protocol guarantees at most one send per
	// table residence and that it is drained before reuse.
	ch   chan struct{}
	next *callRec // freelist link
}

// pendingTable is the per-thread pending-call table plus its record
// freelist. One table is owned by one application thread, but completers
// (the dispatcher, recovery, connection failure) reach into it
// concurrently, hence the lock. The map is insert/delete-heavy at a
// steady-state size of the pipeline depth, so it never grows past warmup
// and the hot path stays allocation-free.
type pendingTable struct {
	mu   sync.Mutex
	recs map[uint64]*callRec
	free *callRec
	// inflight counts registered-but-not-completed records. It is the
	// successor of the old per-thread outstanding counter: pickQP's
	// migration rule, Drain quiescence, and the pipeline-depth gate all
	// read it, and unlike the counter it can never drift from the table —
	// every mutation happens under mu alongside the map it mirrors, the
	// atomic only making lock-free reads possible.
	inflight atomic.Int32
}

// get returns a record ready to register, recycling from the freelist.
func (p *pendingTable) get() *callRec {
	p.mu.Lock()
	r := p.free
	if r != nil {
		p.free = r.next
		r.next = nil
	}
	p.mu.Unlock()
	if r == nil {
		r = &callRec{ch: make(chan struct{}, 1)}
	}
	r.qp.Store(-1)
	r.done = false
	r.mailbox = false
	select {
	case <-r.ch:
		panic("flock: recycled callRec holds a stale completion token")
	default:
	}
	return r
}

// register inserts rec under its sequence ID and returns the table depth
// after insertion (the pipeline-depth sample).
func (p *pendingTable) register(rec *callRec) int {
	p.mu.Lock()
	p.recs[rec.seq] = rec
	d := p.inflight.Add(1)
	p.mu.Unlock()
	return int(d)
}

// depth reports the number of in-flight (uncompleted) records.
func (p *pendingTable) depth() int { return int(p.inflight.Load()) }

// put returns an unused (never-registered or already-removed) record to
// the freelist.
func (p *pendingTable) put(rec *callRec) {
	p.mu.Lock()
	p.recycleLocked(rec)
	p.mu.Unlock()
}

// recycleLocked pushes rec onto the freelist; caller holds mu.
func (p *pendingTable) recycleLocked(rec *callRec) {
	rec.resp = Response{}
	rec.next = p.free
	p.free = rec
}

// complete resolves the record registered under seq with r. It reports
// whether a record was found (a miss means the response is stale — its
// attempt was abandoned — and the caller drops it). Mailbox records are
// removed and returned for channel delivery; table records are marked done
// with the token sent under the lock, so any later observer holding the
// lock sees the token as already present.
func (p *pendingTable) complete(seq uint64, r Response) (rec *callRec, mailbox bool) {
	p.mu.Lock()
	rec = p.recs[seq]
	if rec == nil || rec.done {
		p.mu.Unlock()
		return nil, false
	}
	p.inflight.Add(-1)
	if rec.mailbox {
		delete(p.recs, seq)
		p.mu.Unlock()
		return rec, true
	}
	rec.done = true
	rec.resp = r
	rec.ch <- struct{}{}
	p.mu.Unlock()
	return rec, false
}

// takeDone removes a record whose token the caller just consumed and
// returns its response. Consuming the token is what excludes every other
// remover, so the record is guaranteed present and done.
func (p *pendingTable) takeDone(rec *callRec) Response {
	p.mu.Lock()
	r := rec.resp
	delete(p.recs, rec.seq)
	p.recycleLocked(rec)
	p.mu.Unlock()
	return r
}

// abandon removes a record the waiter no longer wants (attempt deadline
// expired, hedge loser, submit failure). If a completer got there first
// the token is already in the channel — consume it and recycle the lease;
// if the close-time drain got there even earlier the record is simply
// gone and must not be recycled (the drain may still hold it).
func (p *pendingTable) abandon(rec *callRec) {
	p.mu.Lock()
	cur, ok := p.recs[rec.seq]
	if !ok || cur != rec {
		p.mu.Unlock()
		return
	}
	delete(p.recs, rec.seq)
	if rec.done {
		<-rec.ch
		rec.resp.Release()
	} else {
		p.inflight.Add(-1)
	}
	p.recycleLocked(rec)
	p.mu.Unlock()
}

// failMatching completes every record riding QP qp (all records when qp is
// negative) with the poison response r. Mailbox records are returned for
// channel delivery outside the lock. This is how recovery's poison burst
// is sized from the table: exactly the in-flight attempts on the broken
// QP, not a thread-wide counter that may have drifted.
func (p *pendingTable) failMatching(qp int32, r Response) (mailbox []*callRec) {
	p.mu.Lock()
	for seq, rec := range p.recs {
		if rec.done || (qp >= 0 && rec.qp.Load() != qp) {
			continue
		}
		p.inflight.Add(-1)
		if rec.mailbox {
			delete(p.recs, seq)
			mailbox = append(mailbox, rec)
			continue
		}
		rec.done = true
		rec.resp = r
		rec.ch <- struct{}{}
	}
	p.mu.Unlock()
	return mailbox
}

// drain releases the pooled leases of completed records no waiter has
// claimed. It runs at node close, after the dispatchers are gone; a waiter
// racing it either wins the token (and owns the response) or finds its
// record gone and walks away. Drained records are not recycled — their
// waiter may still hold the pointer.
func (p *pendingTable) drain() {
	p.mu.Lock()
	for seq, rec := range p.recs {
		if !rec.done {
			continue
		}
		select {
		case <-rec.ch:
			rec.resp.Release()
			rec.resp = Response{}
			delete(p.recs, seq)
		default:
			// The waiter holds the token; the response is theirs.
		}
	}
	p.mu.Unlock()
}

// Pending is one in-flight call: the future returned by CallAsync and
// SendBatch, and the engine every synchronous wrapper drives to completion
// on its own stack. A Pending is owned by the goroutine that created it;
// Wait, Done and Cancel must not be called concurrently.
//
// The engine runs the full resilient attempt loop of CallOpts — attempt
// deadlines, hedged copies, full-jitter backoff spent against the
// connection retry budget, breaker bookkeeping, idempotency-keyed dedup —
// at Wait time, in the waiting goroutine. Submitting is cheap and
// immediate; every retry decision happens when someone asks for the
// result, so asynchronous callers inherit exactly the same resilience as
// synchronous ones without a goroutine per call.
type Pending struct {
	t       *Thread
	rpcID   uint32
	payload []byte

	// Plan (fixed at creation).
	attempts  int           // total attempt cap; legacy deadline mode uses MaxInt
	deadline  time.Time     // whole-call budget; zero = unbounded
	hedge     time.Duration // per-attempt hedge arm delay; <= 0 disabled
	idemKey   uint64        // nonzero marks attempts dedup-safe on the server
	resilient bool          // backoff / retry budget / breaker / hedging active

	// Engine state.
	phase       uint8
	attempt     int
	attemptWait time.Duration // current per-attempt wait; zero = unbounded
	aDeadline   time.Time     // current attempt's response deadline
	hedgeAt     time.Time     // when to arm the hedge copy; zero = unarmed/spent
	retryAt     time.Time     // backoff gate before the next attempt
	rec         *callRec      // primary in-flight attempt
	recB        *callRec      // hedged copy, nil unless armed
	started     time.Time     // submission time of attempt zero (latency probe)
	lastErr     error
	timer       *time.Timer
	resp        Response
	err         error
}

// Pending phases: submit the next attempt, wait for the in-flight one,
// finished.
const (
	pendStart uint8 = iota
	pendInflight
	pendDone
)

// newPending builds the engine state shared by every entry point.
// resilient selects the CallOpts plan (retries, hedging, idempotency key);
// otherwise the plan is the legacy one the wrapper encodes via
// attempts/budget. Breaker admission is the caller's job — resilient entry
// points check Allow() once per call (or once per batch) before building
// plans, so a half-open breaker's probe quota is spent per user action.
func (t *Thread) newPending(p *Pending, rpcID uint32, payload []byte, opts CallOptions, resilient bool) error {
	c := t.conn
	o := &c.node.opts
	*p = Pending{t: t, rpcID: rpcID, payload: payload, resilient: resilient}
	if len(payload) > o.MaxPayload {
		p.fail(ErrPayloadTooLarge)
		return ErrPayloadTooLarge
	}
	budget := opts.Budget
	if budget == 0 {
		budget = o.RPCTimeout
	}
	if resilient {
		p.attempts = opts.MaxAttempts
		if p.attempts <= 0 {
			p.attempts = o.RetryMaxAttempts
		}
		if p.attempts <= 0 {
			p.attempts = 1
		}
		p.hedge = opts.HedgeDelay
		if p.hedge == 0 {
			p.hedge = o.HedgeDelay
		}
		t.idemSeq++
		p.idemKey = t.idemSeq
		if p.attempts > 1 {
			// The bounded per-attempt wait exists to drive resubmission (and
			// strike dead server ends). A single-attempt plan with no budget
			// has nothing to resubmit, so it waits unbounded — parity with
			// plain Call, whose wait only a completion or QP poison resolves.
			p.attemptWait = 4 * DefaultStallTimeout
		}
	} else {
		// Legacy plans: a positive budget retries until it runs out
		// (CallWithDeadline semantics); without one there is a single
		// unbounded attempt (plain Call).
		p.attempts = 1
		if budget > 0 {
			p.attempts = math.MaxInt
		}
	}
	if budget > 0 {
		p.deadline = time.Now().Add(budget)
		p.attemptWait = budget / 4
		if p.attemptWait < time.Millisecond {
			p.attemptWait = time.Millisecond
		}
	}
	return nil
}

// fail finishes the call with err.
func (p *Pending) fail(err error) {
	p.err = err
	p.phase = pendDone
}

// finish finishes the call successfully with r.
func (p *Pending) finish(r Response) {
	p.resp = r
	p.phase = pendDone
}

// Wait blocks until the call completes and returns its response or error.
// It is where retries, hedges and backoff actually run; a Pending that is
// never waited still completes (the dispatcher resolves its record) but
// never retries. Wait may be called again after it returns; it keeps
// returning the same outcome.
func (p *Pending) Wait() (Response, error) {
	for p.phase != pendDone {
		switch p.phase {
		case pendStart:
			p.startAttempt(true)
		case pendInflight:
			p.awaitAttempt(true)
		}
	}
	if p.timer != nil {
		p.timer.Stop()
		p.timer = nil
	}
	return p.resp, p.err
}

// Done polls the call without blocking, advancing any engine step that is
// ready (arming a hedge, expiring an attempt, submitting a backed-off
// retry). It reports whether Wait would return immediately.
func (p *Pending) Done() bool {
	for p.phase != pendDone {
		var progressed bool
		switch p.phase {
		case pendStart:
			progressed = p.startAttempt(false)
		case pendInflight:
			progressed = p.awaitAttempt(false)
		}
		if !progressed {
			return false
		}
	}
	return true
}

// Cancel abandons the call: in-flight attempt records are removed from the
// table (late responses become stale drops) and any already-completed
// response lease is released. After Cancel, Wait returns ErrClosed-free
// best effort: the canceled error. Cancel of a finished call releases
// nothing and keeps the outcome.
func (p *Pending) Cancel() {
	if p.phase == pendDone {
		return
	}
	p.abandonAttempts()
	p.fail(ErrCanceled)
}

// abandonAttempts removes the in-flight attempt records.
func (p *Pending) abandonAttempts() {
	if p.rec != nil {
		p.t.pend.abandon(p.rec)
		p.rec = nil
	}
	if p.recB != nil {
		p.t.pend.abandon(p.recB)
		p.recB = nil
	}
}

// startAttempt submits the next attempt once the backoff gate opens. It
// returns false when non-blocking progress is impossible (backoff still
// pending).
func (p *Pending) startAttempt(block bool) bool {
	if !p.retryAt.IsZero() {
		if d := time.Until(p.retryAt); d > 0 {
			if !block {
				return false
			}
			time.Sleep(d)
		}
		p.retryAt = time.Time{}
	}
	t := p.t
	rec := t.pend.get()
	if p.attempt == 0 {
		p.started = time.Now()
	}
	if _, err := t.sendAttempt(p.rpcID, p.payload, p.deadline, p.idemKey, rec); err != nil {
		// Submission failures are terminal: draining/closed are fatal by
		// definition, and a submit loop that outlived the whole-call
		// deadline has no budget left to retry in.
		p.fail(err)
		return true
	}
	p.rec = rec
	if p.attemptWait > 0 {
		p.aDeadline = time.Now().Add(p.attemptWait)
		if !p.deadline.IsZero() && p.aDeadline.After(p.deadline) {
			p.aDeadline = p.deadline
		}
	} else {
		p.aDeadline = time.Time{}
	}
	p.hedgeAt = time.Time{}
	if p.resilient && p.hedge > 0 {
		if at := time.Now().Add(p.hedge); p.aDeadline.IsZero() || at.Before(p.aDeadline) {
			p.hedgeAt = at
		}
	}
	p.phase = pendInflight
	return true
}

// awaitAttempt waits for the in-flight attempt to resolve: a completion
// token on either copy, the hedge arm point, or the attempt deadline. It
// returns false when nothing is ready and block is false.
func (p *Pending) awaitAttempt(block bool) bool {
	t := p.t
	for {
		var bch chan struct{}
		if p.recB != nil {
			bch = p.recB.ch
		}
		// Fast path: a token is already there.
		select {
		case <-p.rec.ch:
			return p.onToken(false)
		case <-bch:
			return p.onToken(true)
		default:
		}
		wake := p.aDeadline
		if !p.hedgeAt.IsZero() && (wake.IsZero() || p.hedgeAt.Before(wake)) {
			wake = p.hedgeAt
		}
		if !block {
			if wake.IsZero() || time.Now().Before(wake) {
				return false
			}
		} else if wake.IsZero() {
			select {
			case <-p.rec.ch:
				return p.onToken(false)
			case <-bch:
				return p.onToken(true)
			case <-t.conn.closedCh():
				return p.onClosed()
			}
		} else {
			if p.timer == nil {
				p.timer = time.NewTimer(time.Until(wake))
			} else {
				if !p.timer.Stop() {
					select {
					case <-p.timer.C:
					default:
					}
				}
				p.timer.Reset(time.Until(wake))
			}
			select {
			case <-p.rec.ch:
				return p.onToken(false)
			case <-bch:
				return p.onToken(true)
			case <-p.timer.C:
			case <-t.conn.closedCh():
				return p.onClosed()
			}
		}
		now := time.Now()
		if !p.hedgeAt.IsZero() && !now.Before(p.hedgeAt) {
			p.armHedge()
			continue
		}
		if !p.aDeadline.IsZero() && !now.Before(p.aDeadline) {
			// Attempt expired: abandon both copies (late responses become
			// stale drops at the dispatcher) and strike the QP in use —
			// repeated expiries are the only signal a dead server end
			// gives, and enough of them break the QP for recycling.
			p.abandonAttempts()
			c := t.conn
			if cur := t.curQP.Load(); cur >= 0 && int(cur) < len(c.qps) {
				c.noteTimeout(c.qps[cur])
			}
			return p.attemptFailed(ErrTimeout)
		}
	}
}

// onClosed resolves the call when the node shut down mid-wait: a
// completion that raced the shutdown still wins, otherwise the attempt is
// abandoned and the closure surfaced.
func (p *Pending) onClosed() bool {
	select {
	case <-p.rec.ch:
		return p.onToken(false)
	default:
	}
	if p.recB != nil {
		select {
		case <-p.recB.ch:
			return p.onToken(true)
		default:
		}
	}
	p.abandonAttempts()
	p.fail(p.t.conn.closedErr())
	return true
}

// armHedge submits the hedged second copy of the current attempt (same
// idempotency key — the server's dedup window keeps the pair
// exactly-once) and disarms the hedge point.
func (p *Pending) armHedge() {
	t := p.t
	p.hedgeAt = time.Time{}
	rec := t.pend.get()
	if _, err := t.sendAttempt(p.rpcID, p.payload, p.deadline, p.idemKey, rec); err != nil {
		return // best effort; the primary copy is still in flight
	}
	p.recB = rec
	t.conn.node.metrics.hedges.Add(1)
}

// onToken consumes a completion: hedged reports which copy resolved.
func (p *Pending) onToken(hedged bool) bool {
	t := p.t
	c := t.conn
	var rec *callRec
	if hedged {
		rec, p.recB = p.recB, nil
	} else {
		rec, p.rec = p.rec, nil
	}
	r := t.pend.takeDone(rec)
	if r.err != nil {
		p.abandonAttempts()
		if r.err == ErrQPBroken {
			return p.attemptFailed(ErrQPBroken)
		}
		if r.Status == StatusConnClosed {
			p.fail(ErrConnClosed)
			return true
		}
		p.fail(r.err)
		return true
	}
	if hedged {
		c.node.metrics.hedgesWon.Add(1)
	}
	if perr := pushbackErr(r.Status); perr != nil {
		r.Release()
		p.abandonAttempts()
		if p.resilient && perr == ErrOverloaded {
			// Admission pushback is retryable on the resilient plan; the
			// breaker must not count it — the server is alive and shedding.
			return p.attemptFailed(ErrOverloaded)
		}
		p.fail(perr)
		return true
	}
	// Success. The losing hedge copy (or primary) is abandoned; its late
	// response is dropped as stale.
	p.abandonAttempts()
	if cur := t.curQP.Load(); cur >= 0 && int(cur) < len(c.qps) {
		c.qps[cur].timeouts.Store(0) // healthy again
	}
	if p.resilient {
		c.breaker.Success()
		if p.attempt == 0 {
			// Only clean first attempts earn budget: retries paying for
			// retries would defeat the self-extinguishing property.
			c.retryBudget.OnSuccess()
		}
	}
	c.node.completionNS.Observe(uint64(time.Since(p.started)))
	p.finish(r)
	return true
}

// attemptFailed records a retryable attempt outcome and decides whether
// another attempt runs: the attempt cap, the whole-call deadline, and (on
// the resilient plan) the retry budget all gate it, with full-jitter
// backoff pacing the next submission.
func (p *Pending) attemptFailed(err error) bool {
	t := p.t
	c := t.conn
	p.lastErr = err
	if p.resilient && err != ErrOverloaded {
		// Timeouts and broken QPs are failure evidence; overload pushback
		// means the server is alive and shedding.
		c.breakerFailure()
	}
	if !p.resilient && err == ErrQPBroken {
		// Legacy deadline semantics counted broken-QP attempt failures as
		// timeout strikes (the QP is already broken, so only the counter
		// moves).
		if cur := t.curQP.Load(); cur >= 0 && int(cur) < len(c.qps) {
			c.noteTimeout(c.qps[cur])
		}
	}
	if p.attempt+1 >= p.attempts {
		p.fail(p.lastErr)
		return true
	}
	if !p.deadline.IsZero() && !time.Now().Before(p.deadline) {
		p.fail(p.lastErr)
		return true
	}
	if p.resilient {
		if !c.retryBudget.TryRetry() {
			c.node.metrics.budgetExhausted.Add(1)
			p.fail(p.lastErr)
			return true
		}
		c.node.metrics.retries.Add(1)
		o := &c.node.opts
		backoff := resilience.Backoff{Base: o.RetryBaseBackoff, Cap: o.RetryMaxBackoff}
		if d := backoff.Delay(p.attempt, t.rng); d > 0 {
			if !p.deadline.IsZero() {
				if remain := time.Until(p.deadline); d > remain {
					d = remain
				}
			}
			if d > 0 {
				p.retryAt = time.Now().Add(d)
			}
		}
	}
	p.attempt++
	p.attemptWait *= 2
	p.phase = pendStart
	return true
}
