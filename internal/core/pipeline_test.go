package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flock/internal/fabric"
)

// Tests for the unified completion path (ISSUE 7): the per-thread
// pending-call table, asynchronous calls (CallAsync/SendBatch) with full
// resilience parity, deep pipelining, and the regressions the refactor
// fixes by construction — the RecvRes close-race drain and the lost
// inflight decrement when recovery races an abandoned attempt. The
// package leak gate (TestMain) asserts zero outstanding leases after
// every test here.

// TestRecvResCloseDrainSkipsPoison pins the close-drain contract: a
// response buffer holding [QP poison, real response] at node closure must
// surface the real response (and its pooled lease) to the caller, and
// report closure only once the buffer holds nothing real.
func TestRecvResCloseDrainSkipsPoison(t *testing.T) {
	tc := newTestCluster(t, 1, Options{}, Options{})
	registerEcho(tc.server)
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()

	// A recovery poison lands ahead of a delivered response in the
	// mailbox, the ordering the pre-table drain lost responses to.
	th.respCh <- Response{err: ErrQPBroken}
	if _, err := th.SendRPC(echoID, []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "echo delivery behind the poison", func() bool { return len(th.respCh) == 2 })

	r, err := th.recvDrainClosed()
	if err != nil {
		t.Fatalf("close drain surfaced %v before the buffered real response", err)
	}
	if !bytes.Equal(r.Data, []byte("survivor")) {
		t.Fatalf("close drain returned %q, want the real echo", r.Data)
	}
	r.Release()
	if _, err := th.recvDrainClosed(); err != ErrClosed {
		t.Fatalf("drained-empty close path: %v, want ErrClosed", err)
	}
}

// TestCallAsyncUnboundedWaitsOut pins wait parity with plain Call: a
// default-options async call (no RPCTimeout, no RetryMaxAttempts) has a
// single-attempt plan with nothing to resubmit, so its Wait must ride out
// a slow handler rather than expire on the resilient path's bounded
// per-attempt wait. The original regression surfaced as spurious
// ErrTimeout from FlockTransport.CallMulti under CPU contention.
func TestCallAsyncUnboundedWaitsOut(t *testing.T) {
	const slowID = 23
	tc := newTestCluster(t, 1, Options{}, Options{})
	tc.server.RegisterHandler(slowID, func(req []byte) []byte {
		time.Sleep(5 * DefaultStallTimeout) // past the 4x bounded attempt wait
		out := make([]byte, len(req))
		copy(out, req)
		return out
	})
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()
	p, err := th.CallAsync(slowID, []byte("patience"), CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Wait()
	if err != nil {
		t.Fatalf("unbounded async call expired: %v", err)
	}
	if !bytes.Equal(r.Data, []byte("patience")) {
		t.Fatalf("got %q", r.Data)
	}
	r.Release()
}

// TestOverloadAbandonAccountingRace is the lost-decrement regression: QP
// poisoning (failInflight) racing deadline-abandoned attempts must leave
// the pending-call table at exactly zero. Under the old per-thread
// counter, a poison burst sized from a stale counter read could eat the
// decrement of an attempt that was concurrently abandoned, wedging
// Outstanding above zero forever.
func TestOverloadAbandonAccountingRace(t *testing.T) {
	const slowID = 21
	tc := newTestCluster(t, 1, Options{Workers: 2}, Options{QPsPerConn: 2, FlapThreshold: -1})
	registerEcho(tc.server)
	tc.server.RegisterHandler(slowID, func(req []byte) []byte {
		time.Sleep(500 * time.Microsecond)
		out := make([]byte, len(req))
		copy(out, req)
		return out
	})
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var poisoner sync.WaitGroup
	poisoner.Add(1)
	go func() {
		defer poisoner.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			conn.failInflight(conn.qps[i%len(conn.qps)], ErrQPBroken)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const nThreads, perThread = 4, 30
	threads := make([]*Thread, nThreads)
	var wg sync.WaitGroup
	for g := 0; g < nThreads; g++ {
		th := conn.RegisterThread()
		threads[g] = th
		wg.Add(1)
		go func(g int, th *Thread) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				r, err := th.CallWithDeadline(slowID, []byte(fmt.Sprintf("ar-%d-%d", g, i)), 2*time.Millisecond)
				switch {
				case err == nil:
					r.Release()
				case errors.Is(err, ErrTimeout) || errors.Is(err, ErrQPBroken):
				default:
					t.Errorf("unexpected error under poison race: %v", err)
					return
				}
			}
		}(g, threads[g])
	}
	wg.Wait()
	close(stop)
	poisoner.Wait()
	if t.Failed() {
		return
	}

	// The regression gate: every thread's table must converge to exactly
	// zero — no decrement was lost to the race, none double-counted.
	for i, th := range threads {
		th := th
		waitFor(t, fmt.Sprintf("thread %d pending table to empty", i), func() bool {
			return th.Outstanding() == 0
		})
	}
	callUntilOK(t, threads[0], []byte("post-race"))
}

// TestCallInterleavesWithAsync drives a mixed workload on one thread — a
// window of CallAsync futures with synchronous Calls issued between them —
// over a seeded lossy fabric, and asserts every response routes to exactly
// the request that owns it. Under the old respCh scan this interleaving
// was a documented footgun; the completion table must make it correct by
// construction.
func TestCallInterleavesWithAsync(t *testing.T) {
	sOpts := Options{Workers: 4}
	cOpts := Options{
		RetryMaxAttempts: 6,
		RPCTimeout:       250 * time.Millisecond,
		RetryBaseBackoff: 100 * time.Microsecond,
		RetryMaxBackoff:  2 * time.Millisecond,
		FlapThreshold:    -1, // loss may break QPs; recycle, never retire
	}
	tc := newTestCluster(t, 1, sOpts, cOpts)
	registerEcho(tc.server)
	tc.net.Fabric().SetFaultPlan(&fabric.FaultPlan{Seed: 7, RCLossProb: 0.005})
	defer tc.net.Fabric().SetFaultPlan(nil)
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()

	verify := func(payload []byte, r Response, err error) {
		t.Helper()
		if err != nil {
			if err != ErrOverloaded && !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrQPBroken) {
				t.Fatalf("fatal error for %q: %v", payload, err)
			}
			// Transient exhaustion under loss: re-offer until it lands.
			deadline := time.Now().Add(chaosDeadline)
			for {
				r, err = th.CallOpts(echoID, payload, CallOptions{})
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("%q never completed: %v", payload, err)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
		if !bytes.Equal(r.Data, payload) {
			t.Fatalf("response misrouted: got %q, want %q", r.Data, payload)
		}
		r.Release()
	}

	type inflight struct {
		p       *Pending
		payload []byte
	}
	const total, depth = 160, 8
	var window []inflight
	for i := 0; i < total; i++ {
		payload := []byte(fmt.Sprintf("async-%03d", i))
		p, err := th.CallAsync(echoID, payload, CallOptions{})
		if err != nil {
			t.Fatalf("CallAsync: %v", err)
		}
		window = append(window, inflight{p, payload})
		if len(window) >= depth {
			f := window[0]
			window = window[:copy(window, window[1:])]
			r, err := f.p.Wait()
			verify(f.payload, r, err)
		}
		if i%5 == 0 {
			// A synchronous call right through the middle of the async
			// window, on the same thread.
			sp := []byte(fmt.Sprintf("sync-%03d", i))
			r, err := th.CallOpts(echoID, sp, CallOptions{})
			verify(sp, r, err)
		}
	}
	for _, f := range window {
		r, err := f.p.Wait()
		verify(f.payload, r, err)
	}
	waitFor(t, "pending table to empty", func() bool { return th.Outstanding() == 0 })
}

// TestDedupAsyncRetrySingleExecution is the async parity check for
// idempotent dedup: a CallAsync whose first attempt times out client-side
// while the handler is still executing must retry under the same
// idempotency key, get NACKed or served from the dedup window, and
// resolve with the first execution's bytes — the handler runs exactly
// once.
func TestDedupAsyncRetrySingleExecution(t *testing.T) {
	const countID = 22
	var execs atomic.Uint64
	cOpts := Options{
		// The NACK-retry cycle is fast (round trip + small backoff), so the
		// attempt cap and the retry-token burst must cover every retry the
		// window between first-attempt expiry and first-execution completion
		// can fit.
		RetryMaxAttempts: 64,
		RetryBudgetBurst: 64,
		RetryBaseBackoff: 2 * time.Millisecond,
		RetryMaxBackoff:  10 * time.Millisecond,
		FlapThreshold:    -1,
	}
	tc := newTestCluster(t, 1, Options{Workers: 2}, cOpts)
	tc.server.RegisterHandler(countID, func(req []byte) []byte {
		if execs.Add(1) == 1 {
			// Outlive the 250ms per-attempt window (budget/4) but not the
			// 1s budget: the client retries while this copy executes.
			time.Sleep(300 * time.Millisecond)
		}
		return []byte{byte(execs.Load())}
	})
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()

	p, err := th.CallAsync(countID, []byte("dup"), CallOptions{Budget: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if r.Status != StatusOK {
		t.Fatalf("status %d, want StatusOK", r.Status)
	}
	if !bytes.Equal(r.Data, []byte{1}) {
		t.Fatalf("got %v, want the first execution's bytes", r.Data)
	}
	r.Release()
	if n := execs.Load(); n != 1 {
		t.Fatalf("handler executed %d times, want exactly 1 — retries must dedup", n)
	}
	if m := tc.clients[0].Metrics(); m.Retries == 0 {
		t.Fatal("no retry recorded — the dedup run was vacuous")
	}
	if m := tc.server.Metrics(); m.DedupHits == 0 {
		t.Fatalf("no dedup hit recorded (metrics %+v)", m)
	}
	waitFor(t, "straggler responses to resolve", func() bool { return th.Outstanding() == 0 })
}

// TestHedgedAsyncWins is the async parity check for hedging: a CallAsync
// armed with a hedge delay against a laggy first copy must resolve with
// the fast hedge's response and count the win, identically to the
// synchronous CallOpts path.
func TestHedgedAsyncWins(t *testing.T) {
	const laggyID = 23
	var calls atomic.Uint64
	tc := newTestCluster(t, 1, Options{Workers: 2, DedupWindow: -1}, Options{})
	tc.server.RegisterHandler(laggyID, func(req []byte) []byte {
		if calls.Add(1) == 1 {
			time.Sleep(40 * time.Millisecond) // only the first copy is slow
		}
		out := make([]byte, len(req))
		copy(out, req)
		return out
	})
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()

	payload := []byte("hedge-async")
	p, err := th.CallAsync(laggyID, payload, CallOptions{
		Budget:     2 * time.Second,
		HedgeDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data, payload) {
		t.Fatalf("hedged echo mismatch: %q != %q", r.Data, payload)
	}
	r.Release()
	if m := tc.clients[0].Metrics(); m.Hedges != 1 || m.HedgesWon != 1 {
		t.Fatalf("hedges=%d won=%d, want 1/1", m.Hedges, m.HedgesWon)
	}
	// The straggler's record was abandoned with the hedge win; its late
	// response is dropped at the dispatcher with the lease released.
	waitFor(t, "straggler response drop", func() bool { return th.Outstanding() == 0 })
}

// TestBreakerRefusesAsync trips the circuit breaker via the synchronous
// path and asserts the async entry points share it: CallAsync and
// SendBatch must refuse locally with ErrCircuitOpen, before any record is
// registered or payload touched.
func TestBreakerRefusesAsync(t *testing.T) {
	const flakyID = 24
	cOpts := Options{
		RetryMaxAttempts: 1,
		RPCTimeout:       20 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second, // stays open for the whole test
		FlapThreshold:    -1,
	}
	tc := newTestCluster(t, 1, Options{Workers: 1}, cOpts)
	tc.server.RegisterHandler(flakyID, func(req []byte) []byte {
		time.Sleep(30 * time.Millisecond)
		return []byte("pong")
	})
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()
	for i := 0; i < 2; i++ {
		if err := callDrop(th, flakyID, []byte("trip")); err != ErrTimeout {
			t.Fatalf("trip call %d: %v, want ErrTimeout", i, err)
		}
	}

	if p, err := th.CallAsync(flakyID, []byte("x"), CallOptions{}); err != ErrCircuitOpen || p != nil {
		t.Fatalf("CallAsync with open breaker: p=%v err=%v, want nil/ErrCircuitOpen", p, err)
	}
	ops := []BatchOp{{RPCID: flakyID, Payload: []byte("a")}, {RPCID: flakyID, Payload: []byte("b")}}
	if ps, err := th.SendBatch(ops, CallOptions{}); err != ErrCircuitOpen || ps != nil {
		t.Fatalf("SendBatch with open breaker: ps=%v err=%v, want nil/ErrCircuitOpen", ps, err)
	}
	if th.Outstanding() != 0 {
		t.Fatalf("refused async calls left %d records in the table", th.Outstanding())
	}
	// Wait out the slow handler's stragglers so the leak gate sees every
	// lease home.
	waitFor(t, "trip-call stragglers", func() bool { return th.Outstanding() == 0 })
}

// TestSendBatchEcho submits one batch of distinct payloads and asserts
// every Pending resolves with its own echo, and that the batch actually
// coalesced: the whole chain enters the combining queue in one push, so
// the items-per-message ratio must exceed one.
func TestSendBatchEcho(t *testing.T) {
	tc := newTestCluster(t, 1, Options{}, Options{})
	registerEcho(tc.server)
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()
	callUntilOK(t, th, []byte("warm"))

	m0 := tc.clients[0].Metrics()
	const n = 16
	ops := make([]BatchOp, n)
	for i := range ops {
		ops[i] = BatchOp{RPCID: echoID, Payload: []byte(fmt.Sprintf("batch-%02d", i))}
	}
	pends, err := th.SendBatch(ops, CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pends) != n {
		t.Fatalf("got %d pendings, want %d", len(pends), n)
	}
	for i, p := range pends {
		r, err := p.Wait()
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if !bytes.Equal(r.Data, ops[i].Payload) {
			t.Fatalf("op %d misrouted: got %q, want %q", i, r.Data, ops[i].Payload)
		}
		r.Release()
	}
	m1 := tc.clients[0].Metrics()
	items := m1.ItemsOut - m0.ItemsOut
	msgs := m1.MsgsOut - m0.MsgsOut
	if items < n {
		t.Fatalf("batch sent %d items, want >= %d", items, n)
	}
	if msgs >= items {
		t.Fatalf("batch did not coalesce: %d messages for %d items", msgs, items)
	}
}

// TestSendBatchUnderChaos rides a batch over a lossy fabric with the
// resilient plan: lost attempts retry at Wait time exactly like CallAsync,
// and every op must eventually land with its own echo.
func TestSendBatchUnderChaos(t *testing.T) {
	cOpts := Options{
		RetryMaxAttempts: 6,
		RPCTimeout:       250 * time.Millisecond,
		RetryBaseBackoff: 100 * time.Microsecond,
		RetryMaxBackoff:  2 * time.Millisecond,
		FlapThreshold:    -1,
	}
	tc := newTestCluster(t, 1, Options{Workers: 4}, cOpts)
	registerEcho(tc.server)
	tc.net.Fabric().SetFaultPlan(&fabric.FaultPlan{Seed: 9, RCLossProb: 0.01})
	defer tc.net.Fabric().SetFaultPlan(nil)
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()

	for round := 0; round < 8; round++ {
		const n = 12
		ops := make([]BatchOp, n)
		for i := range ops {
			ops[i] = BatchOp{RPCID: echoID, Payload: []byte(fmt.Sprintf("cb-%d-%02d", round, i))}
		}
		pends, err := th.SendBatch(ops, CallOptions{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, p := range pends {
			r, err := p.Wait()
			if err != nil {
				if err != ErrOverloaded && !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrQPBroken) {
					t.Fatalf("round %d op %d fatal: %v", round, i, err)
				}
				deadline := time.Now().Add(chaosDeadline)
				for {
					r, err = th.CallOpts(echoID, ops[i].Payload, CallOptions{})
					if err == nil {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("round %d op %d never completed: %v", round, i, err)
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
			if !bytes.Equal(r.Data, ops[i].Payload) {
				t.Fatalf("round %d op %d misrouted: got %q, want %q", round, i, r.Data, ops[i].Payload)
			}
			r.Release()
		}
	}
	waitFor(t, "pending table to empty", func() bool { return th.Outstanding() == 0 })
}

// TestDrainRefusesBatch pins drain pushback on the async entry points: a
// draining client node refuses CallAsync and SendBatch with ErrDraining
// (not closure), and serves both again after Resume.
func TestDrainRefusesBatch(t *testing.T) {
	tc := newTestCluster(t, 1, Options{}, Options{})
	registerEcho(tc.server)
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()
	callUntilOK(t, th, []byte("warm"))

	if err := tc.clients[0].Drain(nil); err != nil {
		t.Fatalf("idle client Drain: %v", err)
	}
	if _, err := th.CallAsync(echoID, []byte("x"), CallOptions{}); err != ErrDraining {
		t.Fatalf("CallAsync on draining node: %v, want ErrDraining", err)
	}
	ops := []BatchOp{{RPCID: echoID, Payload: []byte("y")}}
	if _, err := th.SendBatch(ops, CallOptions{}); err != ErrDraining {
		t.Fatalf("SendBatch on draining node: %v, want ErrDraining", err)
	}
	tc.clients[0].Resume()
	pends, err := th.SendBatch(ops, CallOptions{})
	if err != nil {
		t.Fatalf("SendBatch after Resume: %v", err)
	}
	r, err := pends[0].Wait()
	if err != nil {
		t.Fatalf("Wait after Resume: %v", err)
	}
	r.Release()
}

// TestPipelineDepthGate pins the backpressure contract: with
// Options.PipelineDepth set, the N+1th CallAsync blocks until an earlier
// record completes, instead of growing the table without bound.
func TestPipelineDepthGate(t *testing.T) {
	const gateID = 25
	release := make(chan struct{})
	tc := newTestCluster(t, 1, Options{Workers: 8}, Options{PipelineDepth: 4})
	tc.server.RegisterHandler(gateID, func(req []byte) []byte {
		<-release
		out := make([]byte, len(req))
		copy(out, req)
		return out
	})
	conn, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	th := conn.RegisterThread()

	var pends []*Pending
	for i := 0; i < 4; i++ {
		p, err := th.CallAsync(gateID, []byte(fmt.Sprintf("g-%d", i)), CallOptions{Budget: chaosDeadline})
		if err != nil {
			t.Fatal(err)
		}
		pends = append(pends, p)
	}

	overflowed := make(chan *Pending)
	go func() {
		p, err := th.CallAsync(gateID, []byte("g-4"), CallOptions{Budget: chaosDeadline})
		if err != nil {
			t.Errorf("overflow CallAsync: %v", err)
		}
		overflowed <- p
	}()
	select {
	case <-overflowed:
		t.Fatal("5th CallAsync returned with the table at the depth limit")
	case <-time.After(30 * time.Millisecond):
	}

	close(release)
	p := <-overflowed
	if p != nil {
		pends = append(pends, p)
	}
	for i, p := range pends {
		r, err := p.Wait()
		if err != nil {
			t.Fatalf("pending %d: %v", i, err)
		}
		r.Release()
	}
}
