package core

import (
	"encoding/binary"
	"sort"
	"time"

	"flock/internal/rnic"
)

// This file is the receiver-side QP scheduler (§5.1): a dedicated server
// goroutine that (1) grants credit-renewal requests, (2) accumulates the
// reported coalescing degrees as per-QP utilization, and (3) periodically
// redistributes active QPs among senders in proportion to utilization,
// keeping the active set under MAX_AQP to avoid RNIC cache thrashing.

// qpScheduler is the scheduler main loop.
func (n *Node) qpScheduler() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.opts.SchedInterval)
	defer ticker.Stop()
	var cqBuf [64]rnic.Completion
	idle := 0
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
			n.redistribute()
		default:
		}
		busy := false
		for {
			k := n.schedRCQ.Poll(cqBuf[:])
			if k == 0 {
				break
			}
			busy = true
			byQPN := n.byQPN.Load().(map[int]*serverQP)
			for _, comp := range cqBuf[:k] {
				if sqp := byQPN[comp.QPN]; sqp != nil && comp.ImmValid {
					n.handleRenewal(sqp, comp.Imm)
				}
			}
		}
		if busy {
			idle = 0
		} else {
			idle++
			idleBackoff(idle)
		}
	}
}

// handleRenewal processes one credit-renewal write-imm: record the
// reported coalescing degree as QP utilization and, if the QP is active
// (or scheduling is disabled), grant C more credits by writing the new
// total into the client's control region. Declining — not granting — is
// how the scheduler deactivates load from a QP (§5.1).
func (n *Node) handleRenewal(sqp *serverQP, degree uint32) {
	if !sqp.enter() {
		return // under recycle; the renewal rides on a dead QP anyway
	}
	defer sqp.exit()
	sqp.util += float64(degree)
	sqp.renews++
	// Replenish the receive WQE the write-imm consumed.
	sqp.qp.PostRecv(rnic.RecvWR{WRID: uint64(sqp.qp.QPN())}) //nolint:errcheck

	if sqp.quarantined.Load() {
		return // permanently declined
	}
	if !sqp.active.Load() && !n.opts.DisableQPSched {
		return // declined
	}
	grant := uint64(n.opts.Credits)
	if lim := int64(n.opts.AdmissionLimit); lim > 0 && n.inflight.Load()*2 >= lim {
		// Credit watermark: past half the admission limit, halve renewal
		// grants so senders throttle at the source before hitting the
		// rejection cliff — shedding by declined credits is cheaper than
		// shedding by NACK.
		half := (grant + 1) / 2
		n.metrics.creditWithheld.Add(grant - half)
		grant = half
	}
	sqp.granted += grant
	n.metrics.renewals.Add(1)
	n.writeClientCtrl(sqp, ctrlGrantedOff, sqp.granted)
}

// writeClientCtrl posts a one-sided 8-byte write into the client's
// control region. The client polls the region locally, so no client CPU
// or recv WQE is involved.
func (n *Node) writeClientCtrl(sqp *serverQP, off int, val uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	sqp.qp.PostSend(rnic.SendWR{ //nolint:errcheck // device closing is benign
		WRID: tagCtrl, Op: rnic.OpWrite,
		Inline: buf[:],
		RKey:   sqp.clientCtrlRKey, RemoteOff: off,
	})
}

// redistribute runs one scheduling interval: aggregate per-sender
// utilization, compute each sender's active-QP share, and apply
// activation changes by writing the per-QP active flags into client
// control regions.
func (n *Node) redistribute() {
	if n.opts.DisableQPSched {
		return
	}
	sconns := n.snapshotSconns()
	if len(sconns) == 0 {
		return
	}
	totalQPs := 0
	for _, sc := range sconns {
		totalQPs += len(sc.qps)
	}
	if totalQPs <= n.opts.MaxActiveQPs {
		// Under the thrashing threshold: everything stays active (§8.3.1:
		// "FLock does not experience any QP sharing up to eight threads").
		changed := false
		for _, sc := range sconns {
			for _, sqp := range sc.qps {
				sqp.util = 0
				sqp.renews = 0
				if sqp.quarantined.Load() {
					sqp.active.Store(false) // stays retired
					continue
				}
				if !sqp.active.Load() {
					n.activate(sqp)
					changed = true
				}
			}
		}
		if changed {
			n.metrics.redistributions.Add(1)
		}
		return
	}

	utils := make([][]float64, len(sconns))
	for i, sc := range sconns {
		utils[i] = make([]float64, len(sc.qps))
		for j, sqp := range sc.qps {
			utils[i][j] = sqp.util
		}
	}
	counts := RedistributeQPs(utils, n.opts.MaxActiveQPs)
	changed := false
	for i, sc := range sconns {
		// Prefer the most-utilized QPs of each sender; ties keep index
		// order for stability.
		order := make([]int, len(sc.qps))
		for j := range order {
			order[j] = j
		}
		sort.SliceStable(order, func(a, b int) bool {
			return utils[i][order[a]] > utils[i][order[b]]
		})
		keep := counts[i]
		for rank, j := range order {
			sqp := sc.qps[j]
			sqp.util = 0
			sqp.renews = 0
			if sqp.quarantined.Load() {
				sqp.active.Store(false) // stays retired; its share shifts
				continue
			}
			if rank < keep {
				if !sqp.active.Load() {
					n.activate(sqp)
					changed = true
				}
			} else if sqp.active.Load() {
				n.deactivate(sqp)
				changed = true
			}
		}
	}
	if changed {
		n.metrics.redistributions.Add(1)
	}
}

// activate marks a QP active and publishes the flag to the client. The
// publish is skipped while the QP is under recycle — recycleAccept
// re-bootstraps both ends to the active state anyway.
func (n *Node) activate(sqp *serverQP) {
	sqp.active.Store(true)
	n.metrics.activations.Add(1)
	if sqp.enter() {
		n.writeClientCtrl(sqp, ctrlActiveOff, 1)
		sqp.exit()
	}
}

// deactivate marks a QP inactive and publishes the flag; from now on its
// renewal requests are declined, which stops the sender's leaders from
// using it (§5.1).
func (n *Node) deactivate(sqp *serverQP) {
	sqp.active.Store(false)
	n.metrics.deactivations.Add(1)
	if sqp.enter() {
		n.writeClientCtrl(sqp, ctrlActiveOff, 0)
		sqp.exit()
	}
}

// RedistributeQPs computes each sender's active-QP count from per-QP
// utilization (§5.1):
//
//	AQP_i = MAX_AQP · U_i / Σ_k U_k   if U_i > 0
//	AQP_i = 1                         otherwise (dormant)
//
// where U_i is the sum of sender i's per-QP utilizations (each the sum of
// coalescing degrees reported in credit renewals since the last interval).
// Every sender keeps at least one QP for future communication; counts are
// capped by the sender's QP count; any overshoot of maxAQP from the
// 1-minimums is trimmed from the largest allocations first.
//
// The function is pure — it is the exact decision logic the live scheduler
// applies, and the DES models in internal/model call it directly so the
// benchmark figures exercise the shipped policy.
func RedistributeQPs(util [][]float64, maxAQP int) []int {
	counts := make([]int, len(util))
	if len(util) == 0 {
		return counts
	}
	if maxAQP < len(util) {
		maxAQP = len(util) // at least one QP per sender, as the paper requires
	}
	totals := make([]float64, len(util))
	var grand float64
	for i, qps := range util {
		for _, u := range qps {
			totals[i] += u
		}
		grand += totals[i]
	}
	for i := range util {
		c := 1
		if totals[i] > 0 && grand > 0 {
			c = int(float64(maxAQP) * totals[i] / grand)
			if c < 1 {
				c = 1
			}
		}
		if c > len(util[i]) {
			c = len(util[i])
		}
		if len(util[i]) == 0 {
			c = 0
		}
		counts[i] = c
	}
	// Trim overshoot, largest first, never below 1.
	total := 0
	for _, c := range counts {
		total += c
	}
	for total > maxAQP {
		maxI, maxC := -1, 1
		for i, c := range counts {
			if c > maxC {
				maxI, maxC = i, c
			}
		}
		if maxI < 0 {
			break // everyone is at 1 already
		}
		counts[maxI]--
		total--
	}
	return counts
}
