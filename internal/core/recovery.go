package core

import (
	"runtime"

	"flock/internal/fabric"
	"flock/internal/rnic"
)

// This file is QP fault recovery. A connection detects that one of its
// shared QPs broke — retry-budget exhaustion, flushed work requests, or a
// stall-guard trip — fails the in-flight operations on it with typed
// errors, and recycles the QP in the background: the rnic queue pairs on
// both ends are destroyed (flushing any straggling work requests still in
// the device pipelines) and re-created, the rings are zeroed, and the
// credit state is re-bootstrapped. The memory regions and rkeys survive the
// recycle; only the queue pairs and the ring positions are new. A QP that
// breaks more than Options.FlapThreshold times is quarantined instead —
// permanently retired so the thread scheduler and the receiver-side QP
// scheduler redistribute its load (graceful degradation).
//
// Exclusion protocol, client end: markBroken wins the broken flag, then
// the recycler waits for the leaders and polling counters to drain. From
// then on every leader bails out via active() and the dispatcher skips the
// QP, so the recycler owns all of its state; clearing broken is the
// release edge that republishes it. Server end: recycleAccept sets the
// server QP's broken flag, waits out the dispatcher/scheduler inuse
// counter, and holds respMu against response flushers.

// leaderStallHook, when non-nil, runs at every leader-path entry. It
// exists so tests can wedge a leader in place and exercise the follower
// timeout / re-election path; production leaves it nil.
var leaderStallHook func(c *Conn, q *connQP)

// qpFailureStatus reports whether a completion status means the QP itself
// broke, as opposed to a per-operation protocol error.
func qpFailureStatus(st rnic.Status) bool {
	switch st {
	case rnic.StatusRetryExceeded, rnic.StatusWRFlush, rnic.StatusQPError, rnic.StatusRNRExceeded:
		return true
	}
	return false
}

// markBroken transitions a QP into the broken state exactly once: fails
// the in-flight operations of threads parked on it and starts the
// background recycle.
func (c *Conn) markBroken(q *connQP) {
	if q.disabled.Load() || q.broken.Swap(true) {
		return
	}
	c.failInflight(q, ErrQPBroken)
	n := c.node
	// Spawn under connMu so the Add cannot race Node.Close's final Wait
	// (Close closes done while holding connMu).
	n.connMu.Lock()
	select {
	case <-n.done:
		n.connMu.Unlock()
		return
	default:
	}
	n.wg.Add(1)
	n.connMu.Unlock()
	go c.recycleQP(q)
}

// failInflight releases threads whose operations were riding the broken
// QP: every pending-call record whose attempt was pushed on it is
// completed with a poison response carrying err — the poison burst is
// sized from the table itself, so it hits exactly the in-flight attempts
// on this QP and nothing else — and a waiting memory operation gets a
// QP-error status. Mailbox (SendRPC/RecvRes) records deliver their poison
// into the response channel best-effort non-blocking: a thread with a
// full mailbox has work to drain and is not parked.
func (c *Conn) failInflight(q *connQP, err error) {
	for _, t := range c.snapshotThreads() {
		for _, rec := range t.pend.failMatching(int32(q.idx), Response{err: err}) {
			select {
			case t.respCh <- Response{err: err}:
			default:
			}
			t.pend.put(rec)
		}
		if t.curQP.Load() != int32(q.idx) {
			continue
		}
		select {
		case t.memCh <- rnic.StatusQPError:
		default:
		}
	}
}

// noteTimeout records one per-attempt RPC deadline expiry against the QP
// the thread was using. Repeated strikes break the QP: a dead server end
// (its QP errored, responses lost) is invisible to the client NIC, so
// timeouts are the only signal that forces the recycle that heals both
// ends.
func (c *Conn) noteTimeout(q *connQP) {
	c.node.metrics.timeouts.Add(1)
	if q == nil || q.broken.Load() || q.disabled.Load() {
		return
	}
	if q.timeouts.Add(1) >= timeoutStrikes {
		q.timeouts.Store(0)
		c.markBroken(q)
	}
}

// noteLeaderStall records a leader credit/space wait that hit StallTimeout
// and breaks the QP — the stall means credits or ring-head updates stopped
// flowing, which a recycle resolves by re-bootstrapping both ends.
func (c *Conn) noteLeaderStall(q *connQP) {
	c.node.metrics.stalls.Add(1)
	c.markBroken(q)
}

// recycleQP is the background recovery goroutine for one broken QP.
func (c *Conn) recycleQP(q *connQP) {
	n := c.node
	defer n.wg.Done()
	if strikes := int(q.breaks.Add(1)); n.opts.FlapThreshold > 0 && strikes > n.opts.FlapThreshold {
		c.quarantine(q)
		return
	}
	// Wait for straggler leaders and the dispatcher to leave the QP; they
	// all observe broken and exit promptly.
	for q.leaders.Load() != 0 || q.polling.Load() != 0 {
		if c.isClosed() {
			return
		}
		runtime.Gosched()
	}
	oldQPN := q.qp.QPN()
	_, peerQPN := q.qp.Peer()
	// Destroy before zeroing: the old QP's WRs still queued in the device
	// flush as errors instead of landing, so no stale write can hit the
	// rings after the reset below.
	n.dev.DestroyQP(oldQPN)

	qp, err := n.dev.CreateQP(rnic.RC, n.dev.CreateCQ(), n.dev.CreateCQ())
	if err != nil {
		c.fail(ErrConnClosed)
		return
	}
	rnode := n.net.node(c.remote)
	if rnode == nil {
		c.fail(ErrConnClosed)
		return
	}
	reply, err := rnode.recycleAccept(recycleArgs{
		clientNode:   n.id,
		oldServerQPN: peerQPN,
		newClientQPN: qp.QPN(),
	})
	if err != nil {
		c.fail(ErrConnClosed)
		return
	}
	if err := qp.Connect(int(c.remote), reply.serverQPN); err != nil {
		c.fail(ErrConnClosed)
		return
	}

	// Re-bootstrap the client end: empty rings, position zero, C credits,
	// QP active. MRs and rkeys are stable across the recycle.
	zeroMR(q.respRing)
	q.prod.reset()
	q.respCons.reset()
	q.consumed, q.askMark, q.askOut, q.askSnapshot = 0, 0, false, 0
	q.msgSeq = 0
	q.refreshPending.Store(false)
	q.timeouts.Store(0)
	q.ctrl.Store64(ctrlGrantedOff, uint64(n.opts.Credits))
	q.ctrl.Store64(ctrlActiveOff, 1)
	q.qp = qp
	n.metrics.recycles.Add(1)
	// Release edge: republish the recycled state to leaders and the
	// dispatcher.
	q.broken.Store(false)
}

// quarantine permanently retires a QP that broke more than FlapThreshold
// times. The broken flag stays set (the dispatcher keeps skipping it) and
// disabled makes the retirement stick through active(). The server end is
// told so its scheduler stops granting and redistributes the active-QP
// budget. If no usable QP remains the connection is failed.
func (c *Conn) quarantine(q *connQP) {
	q.disabled.Store(true)
	c.node.metrics.quarantines.Add(1)
	// A flapping QP retired for good is stronger failure evidence than any
	// single request outcome: trip the circuit breaker immediately.
	if c.breaker != nil && c.breaker.ForceOpen() {
		c.node.metrics.breakerOpens.Add(1)
	}
	_, peerQPN := q.qp.Peer()
	if rnode := c.node.net.node(c.remote); rnode != nil {
		rnode.quarantineServerQP(peerQPN)
	}
	for _, o := range c.qps {
		if !o.disabled.Load() {
			return
		}
	}
	c.fail(ErrConnClosed)
}

// zeroMR clears an entire memory region (ring reset during recycle) using
// the package's shared zero page instead of allocating a slab per recycle.
func zeroMR(mr *rnic.MemRegion) {
	for off := 0; off < mr.Len(); off += len(zeroPage) {
		k := mr.Len() - off
		if k > len(zeroPage) {
			k = len(zeroPage)
		}
		mr.WriteAt(zeroPage[:k], off) //nolint:errcheck // in range by construction
	}
}

// recycleArgs is the client half of the out-of-band recycle handshake; it
// identifies the server QP by the number the client was connected to.
type recycleArgs struct {
	clientNode   fabric.NodeID
	oldServerQPN int
	newClientQPN int
}

// recycleReply carries the replacement server QP number. Ring rkeys are
// unchanged — the regions survive the recycle.
type recycleReply struct {
	serverQPN int
}

// recycleAccept is the server side of a QP recycle: destroy the broken
// server QP, build a fresh one on the scheduler's shared recv CQ, zero the
// request ring, rewind both ring positions, and restore the credit
// bootstrap. Runs on the client's recycle goroutine (the in-process
// stand-in for an out-of-band reconnect exchange).
func (n *Node) recycleAccept(a recycleArgs) (recycleReply, error) {
	if !n.Serving() {
		return recycleReply{}, ErrNotServing
	}
	sqp := n.byQPN.Load().(map[int]*serverQP)[a.oldServerQPN]
	if sqp == nil || sqp.sender != a.clientNode {
		return recycleReply{}, ErrNoSuchNode
	}
	sqp.broken.Store(true)
	for sqp.inuse.Load() != 0 {
		select {
		case <-n.done:
			return recycleReply{}, ErrClosed
		default:
		}
		runtime.Gosched()
	}
	// respMu excludes response flushers (workers and inline dispatch);
	// broken+inuse excluded the dispatcher and the QP scheduler above.
	sqp.respMu.Lock()
	defer sqp.respMu.Unlock()

	n.dev.DestroyQP(a.oldServerQPN) // flush stragglers before ring zeroing
	qp, err := n.dev.CreateQP(rnic.RC, n.dev.CreateCQ(), n.schedRCQ)
	if err != nil {
		return recycleReply{}, err
	}
	if err := qp.Connect(int(a.clientNode), a.newClientQPN); err != nil {
		return recycleReply{}, err
	}
	for r := 0; r < recvDepth; r++ {
		if err := qp.PostRecv(rnic.RecvWR{WRID: uint64(qp.QPN())}); err != nil {
			return recycleReply{}, err
		}
	}
	zeroMR(sqp.reqRing)
	sqp.reqCons.reset()
	sqp.respProd.reset()
	sqp.refresh.Store(false)
	sqp.granted = uint64(n.opts.Credits)
	sqp.active.Store(true)
	n.sconnMu.Lock()
	sqp.qp = qp
	n.rebuildQPNIndexLocked()
	n.sconnMu.Unlock()
	n.metrics.recycles.Add(1)
	sqp.broken.Store(false)
	return recycleReply{serverQPN: qp.QPN()}, nil
}

// quarantineServerQP retires the server end of a client-quarantined QP so
// the QP scheduler stops granting credits on it and excludes it from
// redistribution.
func (n *Node) quarantineServerQP(qpn int) {
	sqp := n.byQPN.Load().(map[int]*serverQP)[qpn]
	if sqp == nil {
		return
	}
	sqp.quarantined.Store(true)
	sqp.active.Store(false)
	n.metrics.quarantines.Add(1)
}
