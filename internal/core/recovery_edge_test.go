package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flock/internal/fabric"
)

// Table-driven edge cases for recovery.go: each scenario forces one of
// the narrow races the recovery design must survive — a recycle
// contending with active combining leaders, quarantine landing while a
// combine is in flight, and a per-call deadline expiring while the
// response buffer is still a pooled lease in flight. Every case ends at
// the same gate: traffic healthy again and zero outstanding pooled
// leases.
func TestRecoveryEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		run  func(t *testing.T, tc *testCluster, conn *Conn)
	}{
		{
			// A link outage breaks QPs while combining leaders — slowed
			// by the stall hook so they are still inside lead() when
			// markBroken fires — race the recycler's drain loop. The
			// recycler must wait out every leader, and every call must
			// still complete after migration/retry.
			name: "qp-recycle-races-leader-handoff",
			opts: Options{
				QPsPerConn:    2,
				RPCTimeout:    100 * time.Millisecond,
				StallTimeout:  10 * time.Millisecond,
				FlapThreshold: -1,
				RCRetries:     2,
			},
			run: func(t *testing.T, tc *testCluster, conn *Conn) {
				leaderStallHook = func(c *Conn, q *connQP) { time.Sleep(50 * time.Microsecond) }
				defer func() { leaderStallHook = nil }()
				tc.net.Fabric().SetFaultPlan(&fabric.FaultPlan{
					Seed: 11,
					Links: []fabric.LinkFault{
						{Src: tc.clients[0].ID(), Dst: tc.server.ID(), DownAfter: 10, DownFor: 250},
					},
				})
				const nThreads, perThread = 6, 12
				var wg sync.WaitGroup
				for g := 0; g < nThreads; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						th := conn.RegisterThread()
						for i := 0; i < perThread; i++ {
							callUntilOK(t, th, []byte(fmt.Sprintf("rr-%d-%d", g, i)))
						}
					}(g)
				}
				wg.Wait()
				if t.Failed() {
					return
				}
				if m := tc.clients[0].Metrics(); m.QPRecycles == 0 {
					t.Errorf("no recycle despite outage window (metrics %+v)", m)
				}
			},
		},
		{
			// The flapping QP crosses FlapThreshold and is quarantined
			// while combines are in flight on both QPs. The in-flight
			// operations on the dying QP must fail over, the survivor must
			// keep serving, and the retirement must stick.
			name: "flap-quarantine-expiry-during-inflight-combine",
			opts: Options{
				QPsPerConn:    2,
				RPCTimeout:    100 * time.Millisecond,
				StallTimeout:  10 * time.Millisecond,
				FlapThreshold: 2,
				RCRetries:     2,
			},
			run: func(t *testing.T, tc *testCluster, conn *Conn) {
				client, fab := tc.clients[0], tc.net.Fabric()
				q0 := conn.qps[0]
				stop := make(chan struct{})
				var wg sync.WaitGroup
				// Four threads keep combines in flight on both QPs for the
				// whole flap/quarantine sequence.
				for g := 0; g < 4; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						th := conn.RegisterThread()
						for i := 0; ; i++ {
							select {
							case <-stop:
								return
							default:
							}
							resp, err := th.Call(echoID, []byte(fmt.Sprintf("fq-%d-%d", g, i)))
							resp.Release()
							if err != nil && !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrQPBroken) {
								t.Errorf("fatal error under flaps: %v", err)
								return
							}
						}
					}(g)
				}
				qpn0, _ := qpnOfQP(q0)
				fab.SetFaultPlan(&fabric.FaultPlan{Seed: 12})
				fab.AddLinkFault(fabric.LinkFault{
					Src: client.ID(), Dst: tc.server.ID(), QPN: qpn0, DownFor: 0,
				})
				lastRecycles := uint64(0)
				waitFor(t, "flapping QP to be quarantined", func() bool {
					if t.Failed() {
						return true
					}
					m := client.Metrics()
					if m.QPQuarantines >= 1 {
						return true
					}
					if m.QPRecycles > lastRecycles {
						if qpn, ok := qpnOfQP(q0); ok {
							lastRecycles = m.QPRecycles
							fab.ClearLinkFaults()
							fab.AddLinkFault(fabric.LinkFault{
								Src: client.ID(), Dst: tc.server.ID(), QPN: qpn, DownFor: 0,
							})
						}
					}
					return false
				})
				fab.ClearLinkFaults()
				close(stop)
				wg.Wait()
				if t.Failed() {
					return
				}
				if !q0.disabled.Load() {
					t.Error("quarantined QP not disabled")
				}
				th := conn.RegisterThread()
				for i := 0; i < 10; i++ {
					callUntilOK(t, th, []byte(fmt.Sprintf("fq-post-%d", i)))
				}
			},
		},
		{
			// CallWithDeadline expires while the response buffer is still
			// a pooled lease in flight (the handler is slow, the response
			// lands after abandonment). The late response must be dropped
			// AND its lease released — this is the path that silently
			// leaks buffers if the abandonment bookkeeping is wrong.
			name: "deadline-expiry-while-holding-pooled-lease",
			opts: Options{QPsPerConn: 1},
			run: func(t *testing.T, tc *testCluster, conn *Conn) {
				var slow atomic.Bool
				slow.Store(true)
				tc.server.RegisterHandler(7, func(req []byte) []byte {
					if slow.Load() {
						time.Sleep(5 * time.Millisecond)
					}
					return req
				})
				th := conn.RegisterThread()
				timeouts := 0
				for i := 0; i < 8; i++ {
					resp, err := th.CallWithDeadline(7, []byte(fmt.Sprintf("dl-%d", i)), time.Millisecond)
					if err == nil {
						resp.Release()
						continue
					}
					if !errors.Is(err, ErrTimeout) {
						t.Fatalf("unexpected error: %v", err)
					}
					timeouts++
				}
				if timeouts == 0 {
					t.Skip("no deadline ever expired; timing too coarse on this machine")
				}
				slow.Store(false)
				// Healthy again: the abandoned responses drained through
				// the mailbox-drop path without wedging the thread.
				callUntilOK(t, th, []byte("dl-post"))
				if m := tc.clients[0].Metrics(); m.RPCTimeouts == 0 {
					t.Error("timeouts observed by the caller but not counted")
				}
			},
		},
	}
	for _, tcase := range cases {
		tcase := tcase
		t.Run(tcase.name, func(t *testing.T) {
			tc := newTestCluster(t, 1, Options{QPsPerConn: 2}, tcase.opts)
			registerEcho(tc.server)
			conn, err := tc.clients[0].Connect(0)
			if err != nil {
				t.Fatal(err)
			}
			tcase.run(t, tc, conn)
			if t.Failed() {
				return
			}
			// The shared gate: every lease handed out during the scenario
			// must come back to the pool.
			if n := awaitLeaseDrain(5 * time.Second); n != 0 {
				t.Errorf("%d pooled buffer leases outstanding after %s", n, tcase.name)
			}
		})
	}
}
