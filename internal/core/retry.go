package core

import (
	"time"
)

// This file is the resilient client call surface: retries with exponential
// full-jitter backoff, gated by a per-connection token-bucket retry
// budget and (when enabled) a circuit breaker, with optional hedged
// requests. Every attempt of one call carries the same idempotency key,
// so the server's dedup window keeps retried and hedged copies
// exactly-once within it — a retry whose original executed gets the
// cached response instead of a second execution.
//
// The attempt loop itself lives in pending.go (the unified completion
// engine); CallOpts and CallAsync are plans over it. Options.
// RetryMaxAttempts > 0 routes Thread.Call / CallWithDeadline here
// automatically; CallOpts is the explicit synchronous entry point and
// CallAsync the pipelined one.

// CallOptions parameterizes one resilient call. Zero fields inherit the
// node Options' retry knobs.
type CallOptions struct {
	// Budget bounds the whole call — attempts, backoff, and hedges
	// included. Zero inherits Options.RPCTimeout; if that is zero too the
	// call is bounded only by the attempt count.
	Budget time.Duration
	// MaxAttempts is the total attempt cap (first try included). Zero
	// inherits Options.RetryMaxAttempts; both zero means one attempt.
	MaxAttempts int
	// HedgeDelay arms a hedged second copy of the request after this much
	// silence within an attempt. Zero inherits Options.HedgeDelay;
	// negative disables hedging for this call.
	HedgeDelay time.Duration
}

// CallOpts is the resilient synchronous call (§4.1 semantics plus
// overload control): at-most MaxAttempts idempotency-keyed attempts with
// full-jitter backoff, spent against the connection's retry budget, fast-
// failed by the circuit breaker, optionally hedged. It drives the unified
// completion engine on the caller's stack, so it interleaves freely with
// outstanding CallAsync/SendBatch requests on the same thread.
func (t *Thread) CallOpts(rpcID uint32, payload []byte, opts CallOptions) (Response, error) {
	if !t.conn.breaker.Allow() {
		return Response{}, ErrCircuitOpen
	}
	var p Pending
	if err := t.newPending(&p, rpcID, payload, opts, true); err != nil {
		return Response{}, err
	}
	return p.Wait()
}

// CallAsync submits a resilient call without waiting and returns its
// Pending future. The first attempt is pushed into the TCQ before
// CallAsync returns (so pipelined submissions coalesce under the leader's
// doorbell); retries, hedging, backoff, budget and breaker bookkeeping —
// the same plan CallOpts runs — execute inside Wait/Done in the caller's
// goroutine. A Pending that is never waited still completes and its
// response lease is reclaimed at close, but it never retries.
//
// Outstanding Pendings may be freely interleaved with Call/CallOpts/
// SendRPC on the same thread. Submission respects Options.PipelineDepth:
// when the thread's table is full, CallAsync blocks until a slot frees.
func (t *Thread) CallAsync(rpcID uint32, payload []byte, opts CallOptions) (*Pending, error) {
	if !t.conn.breaker.Allow() {
		return nil, ErrCircuitOpen
	}
	p := new(Pending)
	if err := t.newPending(p, rpcID, payload, opts, true); err != nil {
		return nil, err
	}
	if err := t.gatePipeline(1); err != nil {
		p.fail(err)
		return nil, err
	}
	p.startAttempt(true)
	if p.phase == pendDone {
		return nil, p.err
	}
	return p, nil
}

// gatePipeline blocks until the thread's pending-call table has room for
// extra more submissions under Options.PipelineDepth. The wait spins with
// the submit loop's backoff — depth-limited callers are by definition
// waiting on their own earlier responses, which arrive on dispatcher
// timescales.
func (t *Thread) gatePipeline(extra int) error {
	limit := t.conn.node.opts.PipelineDepth
	if limit <= 0 {
		return nil
	}
	for i := 0; t.pend.depth()+extra > limit; i++ {
		if t.conn.isClosed() {
			return t.conn.closedErr()
		}
		idleBackoff(i)
	}
	return nil
}
