package core

import (
	"time"

	"flock/internal/resilience"
)

// This file is the resilient client call path: retries with exponential
// full-jitter backoff, gated by a per-connection token-bucket retry
// budget and (when enabled) a circuit breaker, with optional hedged
// requests. Every attempt of one call carries the same idempotency key,
// so the server's dedup window keeps retried and hedged copies
// exactly-once within it — a retry whose original executed gets the
// cached response instead of a second execution.
//
// Options.RetryMaxAttempts > 0 routes Thread.Call / CallWithDeadline here
// automatically; CallOpts is the explicit entry point.

// CallOptions parameterizes one resilient call. Zero fields inherit the
// node Options' retry knobs.
type CallOptions struct {
	// Budget bounds the whole call — attempts, backoff, and hedges
	// included. Zero inherits Options.RPCTimeout; if that is zero too the
	// call is bounded only by the attempt count.
	Budget time.Duration
	// MaxAttempts is the total attempt cap (first try included). Zero
	// inherits Options.RetryMaxAttempts; both zero means one attempt.
	MaxAttempts int
	// HedgeDelay arms a hedged second copy of the request after this much
	// silence within an attempt. Zero inherits Options.HedgeDelay;
	// negative disables hedging for this call.
	HedgeDelay time.Duration
}

// retryableErr reports whether a failed attempt may be retried on the
// same connection: per-attempt timeouts and broken QPs (recovery recycles
// them in the background) and overload pushback (the server sheds load
// and expects a backed-off retry). Drain pushback is deliberately not
// retryable here — the node stays drained, so the retry belongs on
// another connection.
func retryableErr(err error) bool {
	return err == ErrTimeout || err == ErrQPBroken || err == ErrOverloaded
}

// CallOpts is the resilient synchronous call (§4.1 semantics plus
// overload control): at-most MaxAttempts idempotency-keyed attempts with
// full-jitter backoff, spent against the connection's retry budget, fast-
// failed by the circuit breaker, optionally hedged. Like Call, it must
// not be interleaved with outstanding async requests on the same thread.
func (t *Thread) CallOpts(rpcID uint32, payload []byte, opts CallOptions) (Response, error) {
	c := t.conn
	o := c.node.opts

	attempts := opts.MaxAttempts
	if attempts <= 0 {
		attempts = o.RetryMaxAttempts
	}
	if attempts <= 0 {
		attempts = 1
	}
	budget := opts.Budget
	if budget == 0 {
		budget = o.RPCTimeout
	}
	hedge := opts.HedgeDelay
	if hedge == 0 {
		hedge = o.HedgeDelay
	}
	if !c.breaker.Allow() {
		return Response{}, ErrCircuitOpen
	}

	var deadline time.Time
	attemptWait := 4 * DefaultStallTimeout
	if budget > 0 {
		deadline = time.Now().Add(budget)
		attemptWait = budget / 4
		if attemptWait < time.Millisecond {
			attemptWait = time.Millisecond
		}
	}
	backoff := resilience.Backoff{Base: o.RetryBaseBackoff, Cap: o.RetryMaxBackoff}
	t.idemSeq++
	idemKey := t.idemSeq
	timer := time.NewTimer(attemptWait)
	defer timer.Stop()

	lastErr := ErrTimeout
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				break
			}
			if !c.retryBudget.TryRetry() {
				c.node.metrics.budgetExhausted.Add(1)
				break
			}
			c.node.metrics.retries.Add(1)
			if d := backoff.Delay(attempt-1, t.rng); d > 0 {
				if !deadline.IsZero() {
					if remain := time.Until(deadline); d > remain {
						d = remain
					}
				}
				if d > 0 {
					time.Sleep(d)
				}
			}
		}
		r, err := t.attemptOnce(rpcID, payload, deadline, idemKey, attemptWait, hedge, timer)
		if err == nil {
			cur := t.curQP.Load()
			if cur >= 0 && int(cur) < len(c.qps) {
				c.qps[cur].timeouts.Store(0) // healthy again
			}
			c.breaker.Success()
			if attempt == 0 {
				// Only clean first attempts earn budget: retries paying for
				// retries would defeat the self-extinguishing property.
				c.retryBudget.OnSuccess()
			}
			return r, nil
		}
		if !retryableErr(err) {
			return Response{}, err
		}
		if err != ErrOverloaded {
			// Timeouts and broken QPs are failure evidence; overload
			// pushback means the server is alive and shedding, which the
			// breaker must not mistake for an outage.
			c.breakerFailure()
		}
		lastErr = err
		attemptWait *= 2
	}
	return Response{}, lastErr
}

// attemptOnce runs one attempt: send, optionally hedge after the hedge
// delay, and wait until the attempt deadline for a response to either
// copy. It returns the matched response, or a typed error — ErrTimeout /
// ErrQPBroken / ErrOverloaded for retryable outcomes, anything else
// fatal to the call.
func (t *Thread) attemptOnce(rpcID uint32, payload []byte, deadline time.Time, idemKey uint64, attemptWait, hedge time.Duration, timer *time.Timer) (Response, error) {
	seqA, err := t.sendRPCKey(rpcID, payload, deadline, idemKey)
	if err != nil {
		return Response{}, err
	}
	pending := 1
	var seqB uint64
	aDeadline := time.Now().Add(attemptWait)
	if !deadline.IsZero() && aDeadline.After(deadline) {
		aDeadline = deadline
	}
	var hedgeAt time.Time
	if hedge > 0 {
		if at := time.Now().Add(hedge); at.Before(aDeadline) {
			hedgeAt = at
		}
	}
	for {
		wait := aDeadline
		if !hedgeAt.IsZero() && hedgeAt.Before(wait) {
			wait = hedgeAt
		}
		r, verdict, rerr := t.recvSeq2(seqA, seqB, wait, timer)
		if rerr != nil {
			return Response{}, rerr
		}
		switch verdict {
		case recvMatched:
			if seqB != 0 && r.Seq == seqB {
				t.conn.node.metrics.hedgesWon.Add(1)
			}
			if perr := pushbackErr(r.Status); perr != nil {
				r.Release()
				return Response{}, perr
			}
			return r, nil
		case recvBroken:
			// failInflight already zeroed the outstanding count for the
			// poisoned requests; nothing to release here.
			return Response{}, ErrQPBroken
		}
		// Expired: either the hedge point or the attempt deadline.
		if !hedgeAt.IsZero() && time.Now().Before(aDeadline) {
			hedgeAt = time.Time{} // one hedge per attempt
			if s, herr := t.sendRPCKey(rpcID, payload, deadline, idemKey); herr == nil {
				seqB = s
				pending++
				t.conn.node.metrics.hedges.Add(1)
			}
			continue
		}
		// Genuine attempt timeout: abandon the in-flight copies. CAS
		// (rather than Add) avoids racing a concurrent failInflight
		// Swap(0) into negative counts; late responses are dropped as
		// stale by sequence matching.
		for i := 0; i < pending; i++ {
			if o := t.outstanding.Load(); o > 0 {
				t.outstanding.CompareAndSwap(o, o-1)
			}
		}
		cur := t.curQP.Load()
		if cur >= 0 && int(cur) < len(t.conn.qps) {
			t.conn.noteTimeout(t.conn.qps[cur])
		}
		return Response{}, ErrTimeout
	}
}

// recvVerdict classifies one recvSeq2 wait.
type recvVerdict int

const (
	recvMatched recvVerdict = iota // response to one of the wanted seqs
	recvExpired                    // deadline passed with no match
	recvBroken                     // in-flight requests died with their QP
)

// recvSeq2 waits until aDeadline for a response matching seqA or seqB
// (seqB zero = unset; sequence IDs start at one). Poison bursts from a
// broken QP are absorbed whole, stale responses from abandoned attempts
// are dropped, and fatal conditions surface as errors.
func (t *Thread) recvSeq2(seqA, seqB uint64, aDeadline time.Time, timer *time.Timer) (Response, recvVerdict, error) {
	for {
		d := time.Until(aDeadline)
		if d <= 0 {
			return Response{}, recvExpired, nil
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d)
		select {
		case r := <-t.respCh:
			for {
				if r.err != nil {
					if r.err != ErrQPBroken {
						return Response{}, recvExpired, r.err
					}
					// Absorb the whole poison burst already queued —
					// returning on the first one would leave the mailbox
					// saturated and starve real responses.
					select {
					case r = <-t.respCh:
						continue
					default:
					}
					return Response{}, recvBroken, nil
				}
				if r.Status == StatusConnClosed {
					return Response{}, recvExpired, ErrConnClosed
				}
				if r.Seq == seqA || (seqB != 0 && r.Seq == seqB) {
					return r, recvMatched, nil
				}
				// Stale response from an abandoned attempt; drop it.
				r.Release()
				break
			}
		case <-timer.C:
			return Response{}, recvExpired, nil
		case <-t.conn.closedCh():
			return Response{}, recvExpired, t.conn.closedErr()
		}
	}
}
