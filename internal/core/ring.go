package core

import (
	"encoding/binary"
	"sync/atomic"

	"flock/internal/mem"
	"flock/internal/rnic"
)

// zeroPage is a shared read-only slab of zeros used to clear consumed ring
// space and reset regions during QP recycle. One page for the whole
// package: the writers only ever read from it.
var zeroPage [4096]byte

// ringProducer is the sender's view of one ring buffer (§4): a local
// staging region mirroring the receiver's ring, a monotonic tail, and a
// cached copy of the receiver's consumed Head. The producer reserves
// space, lets threads stage their payloads, and the leader ships the span
// with a single RDMA write to the same offset in the remote ring.
type ringProducer struct {
	staging *rnic.MemRegion // local mirror of the remote ring
	base    int             // ring base offset inside staging and remote MR
	size    int
	rkey    uint32 // remote ring MR
	tail    uint64 // monotonic bytes produced; current-leader-owned

	// cached is the monotonic consumed head as last learned (the
	// "sender's copy of Head", §4.1). The response dispatcher advances it
	// from piggybacked headers concurrently with the leader reading it,
	// hence atomic.
	cached atomic.Uint64
}

// free reports how many ring bytes are available given the cached head.
func (p *ringProducer) free() int {
	return p.size - int(p.tail-p.cached.Load())
}

// reset returns the producer to the fresh-ring state after a QP recycle:
// nothing produced, nothing known consumed. The caller must have excluded
// every concurrent producer and cache-updater first.
func (p *ringProducer) reset() {
	p.tail = 0
	p.cached.Store(0)
}

// updateCached advances the cached consumed head (monotonic, so stale
// piggybacked values are harmless).
func (p *ringProducer) updateCached(h uint64) {
	for {
		cur := p.cached.Load()
		if h <= cur || p.cached.CompareAndSwap(cur, h) {
			return
		}
	}
}

// reservation describes ring space handed out by reserve.
type reservation struct {
	msgOff    int // staging/remote offset where the message goes
	markerOff int // offset of a wrap marker to transmit, or -1
	markerLen int // bytes the marker occupies on the ring (skipped region)
}

// reserve allocates space for a message of msgLen bytes, returning false
// if the ring lacks room (the caller refreshes the cached head and
// retries). If the message would straddle the ring end, an 8-byte wrap
// marker is staged at the current tail and the message starts at offset 0.
func (p *ringProducer) reserve(msgLen int) (reservation, bool) {
	r := reservation{markerOff: -1}
	off := int(p.tail) % p.size
	need := msgLen
	rem := 0
	if off+msgLen > p.size {
		rem = p.size - off
		need += rem
	}
	if need > p.free() {
		return r, false
	}
	if rem > 0 {
		// Stage the wrap marker; it is transmitted by the caller ahead of
		// the message so the receiver skips to offset zero.
		var marker [8]byte
		binary.LittleEndian.PutUint32(marker[0:], wrapMarker)
		p.staging.WriteAt(marker[:], p.base+off) //nolint:errcheck // in range by construction
		r.markerOff = off
		r.markerLen = rem
		p.tail += uint64(rem)
		off = 0
	}
	r.msgOff = off
	p.tail += uint64(msgLen)
	return r, true
}

// ringConsumer is the receiver's view of one ring buffer: it polls the
// Head position for complete messages, validates canaries, zeroes consumed
// space, and publishes its consumed head for the producer (piggybacked on
// responses and readable via one-sided RDMA when the producer is starved).
type ringConsumer struct {
	mr   *rnic.MemRegion
	base int
	size int

	// head is the monotonic consumed counter. Only the owning dispatcher
	// advances it, but response-flush paths on other goroutines read it
	// for piggybacking, hence atomic.
	head atomic.Uint64

	publishMR  *rnic.MemRegion // control region carrying the consumed head
	publishOff int

	items []decodedItem // reusable decode scratch, overwritten per poll
}

// newRingConsumer builds a consumer over mr[base : base+size].
func newRingConsumer(mr *rnic.MemRegion, base, size int, publishMR *rnic.MemRegion, publishOff int) *ringConsumer {
	return &ringConsumer{
		mr:         mr,
		base:       base,
		size:       size,
		publishMR:  publishMR,
		publishOff: publishOff,
	}
}

// consumed returns the monotonic consumed-head counter.
func (c *ringConsumer) consumed() uint64 { return c.head.Load() }

// reset rewinds the consumer to offset zero and republishes, matching a
// recycled producer that restarts at tail zero. The caller must have
// excluded the polling dispatcher first.
func (c *ringConsumer) reset() {
	c.head.Store(0)
	c.publish()
}

// poll checks the head position for one complete message. It returns the
// decoded header, the items (views into a pooled message buffer), the
// pooled buffer itself, and true; or false if no complete message is
// available. The caller owns one reference on the returned buffer: it must
// Release after distributing the items (retaining per item it hands on).
// The item slice is consumer-owned scratch, overwritten by the next poll.
// Incomplete messages — header visible but trailing canary not yet placed —
// are left untouched for the next poll, exactly the §4.1 protocol.
func (c *ringConsumer) poll() (header, []decodedItem, *mem.Buf, bool) {
	off := int(c.head.Load()) % c.size
	word := c.mr.Load64(c.base + off)
	totalLen := uint32(word)
	if totalLen == 0 {
		return header{}, nil, nil, false
	}
	if totalLen == wrapMarker {
		c.zeroRange(off, 8)
		c.head.Add(uint64(c.size - off))
		c.publish()
		off = 0
		word = c.mr.Load64(c.base + off)
		totalLen = uint32(word)
		if totalLen == 0 || totalLen == wrapMarker {
			return header{}, nil, nil, false
		}
	}
	if int(totalLen) < headerBytes+trailerBytes || int(totalLen) > c.size-off {
		// Torn or corrupt length; wait for more bytes. A length that can
		// never be valid will be caught by decode once canaries match.
		return header{}, nil, nil, false
	}
	canary := c.mr.Load64(c.base + off + 8)
	if canary == 0 {
		return header{}, nil, nil, false
	}
	tail := c.mr.Load64(c.base + off + int(totalLen) - trailerBytes)
	if tail != canary {
		return header{}, nil, nil, false // incomplete: trailing canary not placed yet
	}
	mbuf := mem.Get(int(totalLen))
	buf := mbuf.Data()
	c.mr.ReadAt(buf, c.base+off) //nolint:errcheck // in range by construction
	h, items, err := decodeMessageInto(buf, c.items)
	c.items = items[:0]
	if err != nil {
		// Structurally corrupt despite matching canaries: drop the
		// message to keep the ring live. This cannot happen with a
		// well-behaved producer.
		mbuf.Release()
		c.zeroRange(off, int(totalLen))
		c.head.Add(uint64(totalLen))
		c.publish()
		return header{}, nil, nil, false
	}
	c.zeroRange(off, int(totalLen))
	c.head.Add(uint64(totalLen))
	c.publish()
	return h, items, mbuf, true
}

// zeroRange clears [off, off+n) of the ring so the slot is reusable.
func (c *ringConsumer) zeroRange(off, n int) {
	for n > 0 {
		k := n
		if k > len(zeroPage) {
			k = len(zeroPage)
		}
		c.mr.WriteAt(zeroPage[:k], c.base+off) //nolint:errcheck // in range by construction
		off += k
		n -= k
	}
}

// publish stores the consumed head into the control region.
func (c *ringConsumer) publish() {
	if c.publishMR != nil {
		c.publishMR.Store64(c.publishOff, c.head.Load())
	}
}
