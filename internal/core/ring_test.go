package core

import (
	"bytes"
	"testing"

	"flock/internal/fabric"
	"flock/internal/rnic"
	"flock/internal/stats"
)

// ringPair wires a producer and consumer over two memory regions on one
// test device; shuttle() simulates the RDMA write delivery.
type ringPair struct {
	dev  *rnic.Device
	prod *ringProducer
	cons *ringConsumer
	dst  *rnic.MemRegion
}

func newRingPair(t *testing.T, size int) *ringPair {
	t.Helper()
	fab := fabric.New(fabric.Config{})
	dev, err := rnic.NewDevice(fab, rnic.Config{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dev.Close)
	staging, err := dev.RegisterMR(size, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dev.RegisterMR(size, rnic.PermRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := dev.RegisterMR(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &ringPair{
		dev:  dev,
		prod: &ringProducer{staging: staging, size: size},
		cons: newRingConsumer(dst, 0, size, ctrl, 0),
		dst:  dst,
	}
}

// shuttle copies n bytes at off from staging to the destination ring,
// standing in for the RDMA write.
func (rp *ringPair) shuttle(off, n int) {
	buf := make([]byte, n)
	rp.prod.staging.ReadAt(buf, off) //nolint:errcheck
	rp.dst.WriteAt(buf, off)         //nolint:errcheck
}

// produce stages and delivers one message with the given payloads.
func (rp *ringPair) produce(t *testing.T, canary uint64, payloads ...[]byte) {
	t.Helper()
	items := make([]itemMeta, len(payloads))
	for i := range payloads {
		items[i] = itemMeta{threadID: uint32(i), seqID: uint64(i)}
	}
	msg := buildMessage(items, payloads, canary, 0)
	res, ok := rp.prod.reserve(len(msg))
	if !ok {
		t.Fatal("reserve failed unexpectedly")
	}
	rp.prod.staging.WriteAt(msg, res.msgOff) //nolint:errcheck
	if res.markerOff >= 0 {
		rp.shuttle(res.markerOff, 8)
	}
	rp.shuttle(res.msgOff, len(msg))
}

func TestRingProduceConsume(t *testing.T) {
	rp := newRingPair(t, 4096)
	rp.produce(t, 7, []byte("hello"), []byte("world!"))
	h, items, mbuf, ok := rp.cons.poll()
	if !ok {
		t.Fatal("message not consumed")
	}
	defer mbuf.Release()
	if h.count != 2 || string(items[0].data) != "hello" || string(items[1].data) != "world!" {
		t.Fatalf("decoded: %+v", items)
	}
	if _, _, _, ok := rp.cons.poll(); ok {
		t.Fatal("phantom second message")
	}
	// Consumed head advanced and was published.
	if rp.cons.consumed() == 0 {
		t.Fatal("consumed head not advanced")
	}
	if rp.cons.publishMR.Load64(0) != rp.cons.consumed() {
		t.Fatal("consumed head not published")
	}
}

func TestRingWrapMarker(t *testing.T) {
	const size = 512
	rp := newRingPair(t, size)
	// Fill most of the ring, consume it, then produce a message that
	// must wrap.
	big := make([]byte, 300)
	for i := range big {
		big[i] = 0x55
	}
	rp.produce(t, 3, big)
	if _, _, b, ok := rp.cons.poll(); !ok {
		t.Fatal("first message lost")
	} else {
		b.Release()
	}
	rp.prod.updateCached(rp.cons.consumed())

	// Tail is now ~364; a 200-byte payload message (~256 total) wraps.
	rp.produce(t, 4, make([]byte, 200))
	h, items, mbuf, ok := rp.cons.poll()
	if !ok {
		t.Fatal("wrapped message not consumed")
	}
	defer mbuf.Release()
	if h.count != 1 || len(items[0].data) != 200 {
		t.Fatalf("wrapped decode: count=%d", h.count)
	}
	// Producer and consumer agree on position after the wrap.
	if rp.prod.tail != rp.cons.consumed() {
		t.Fatalf("tail %d != consumed %d", rp.prod.tail, rp.cons.consumed())
	}
}

func TestRingBackpressure(t *testing.T) {
	const size = 256
	rp := newRingPair(t, size)
	msg := buildMessage([]itemMeta{{}}, [][]byte{make([]byte, 100)}, 5, 0)
	res, ok := rp.prod.reserve(len(msg))
	if !ok {
		t.Fatal("first reserve failed")
	}
	rp.prod.staging.WriteAt(msg, res.msgOff) //nolint:errcheck
	rp.shuttle(res.msgOff, len(msg))
	// Second message does not fit until the consumer catches up.
	if _, ok := rp.prod.reserve(len(msg)); ok {
		t.Fatal("reserve succeeded with a full ring")
	}
	if _, _, b, ok := rp.cons.poll(); !ok {
		t.Fatal("consume failed")
	} else {
		b.Release()
	}
	rp.prod.updateCached(rp.cons.consumed())
	if _, ok := rp.prod.reserve(len(msg)); !ok {
		t.Fatal("reserve failed after head refresh")
	}
}

func TestRingIncompleteMessageNotConsumed(t *testing.T) {
	rp := newRingPair(t, 4096)
	msg := buildMessage([]itemMeta{{}}, [][]byte{[]byte("partial")}, 9, 0)
	res, _ := rp.prod.reserve(len(msg))
	rp.prod.staging.WriteAt(msg, res.msgOff) //nolint:errcheck
	// Deliver everything except the trailing canary: the poller must not
	// consume the torn message.
	rp.shuttle(res.msgOff, len(msg)-trailerBytes)
	if _, _, _, ok := rp.cons.poll(); ok {
		t.Fatal("torn message consumed")
	}
	// Now deliver the tail; consumption succeeds.
	rp.shuttle(res.msgOff+len(msg)-trailerBytes, trailerBytes)
	if _, _, b, ok := rp.cons.poll(); !ok {
		t.Fatal("completed message not consumed")
	} else {
		b.Release()
	}
}

func TestRingManyLaps(t *testing.T) {
	const size = 1024
	rp := newRingPair(t, size)
	payload := make([]byte, 64)
	for lap := 0; lap < 200; lap++ {
		payload[0] = byte(lap)
		rp.produce(t, uint64(lap)+1, payload)
		_, items, mbuf, ok := rp.cons.poll()
		if !ok {
			t.Fatalf("lap %d: message lost", lap)
		}
		if items[0].data[0] != byte(lap) {
			t.Fatalf("lap %d: wrong payload %d", lap, items[0].data[0])
		}
		mbuf.Release()
		rp.prod.updateCached(rp.cons.consumed())
	}
}

func TestProducerCachedMonotonic(t *testing.T) {
	rp := newRingPair(t, 1024)
	rp.prod.updateCached(100)
	rp.prod.updateCached(50) // stale piggyback must not regress
	if got := rp.prod.cached.Load(); got != 100 {
		t.Fatalf("cached = %d", got)
	}
	rp.prod.updateCached(200)
	if got := rp.prod.cached.Load(); got != 200 {
		t.Fatalf("cached = %d", got)
	}
}

func TestRingModelBasedProperty(t *testing.T) {
	// Model-based check: random sequences of variable-size messages with
	// interleaved consumption must deliver every message intact and in
	// order, across many wraps. The reference model is a simple FIFO of
	// payload hashes.
	rng := stats.NewRNG(777)
	const size = 2048
	rp := newRingPair(t, size)
	type sentMsg struct{ payload []byte }
	var fifo []sentMsg
	produced, consumed := 0, 0
	for step := 0; step < 3000; step++ {
		if rng.Uint64n(2) == 0 {
			// Produce, if space allows.
			payload := make([]byte, rng.Uint64n(300)+1)
			for i := range payload {
				payload[i] = byte(rng.Uint64())
			}
			msg := buildMessage([]itemMeta{{seqID: uint64(produced)}}, [][]byte{payload}, rng.Uint64()|1, 0)
			res, ok := rp.prod.reserve(len(msg))
			if !ok {
				continue // ring full; consumer must catch up
			}
			if err := rp.prod.staging.WriteAt(msg, res.msgOff); err != nil {
				t.Fatal(err)
			}
			if res.markerOff >= 0 {
				rp.shuttle(res.markerOff, 8)
			}
			rp.shuttle(res.msgOff, len(msg))
			fifo = append(fifo, sentMsg{payload: payload})
			produced++
		} else {
			h, items, mbuf, ok := rp.cons.poll()
			if !ok {
				continue
			}
			if len(fifo) == 0 {
				t.Fatal("consumed a message that was never produced")
			}
			want := fifo[0]
			fifo = fifo[1:]
			if h.count != 1 || !bytes.Equal(items[0].data, want.payload) {
				t.Fatalf("step %d: message %d corrupted or reordered", step, consumed)
			}
			if items[0].meta.seqID != uint64(consumed) {
				t.Fatalf("step %d: seq %d, want %d", step, items[0].meta.seqID, consumed)
			}
			mbuf.Release()
			consumed++
			rp.prod.updateCached(rp.cons.consumed())
		}
	}
	// Drain the tail.
	for len(fifo) > 0 {
		_, items, mbuf, ok := rp.cons.poll()
		if !ok {
			t.Fatalf("ring wedged with %d messages outstanding", len(fifo))
		}
		if !bytes.Equal(items[0].data, fifo[0].payload) {
			t.Fatal("tail message corrupted")
		}
		mbuf.Release()
		fifo = fifo[1:]
		consumed++
		rp.prod.updateCached(rp.cons.consumed())
	}
	if consumed != produced {
		t.Fatalf("consumed %d != produced %d", consumed, produced)
	}
	t.Logf("model-based: %d messages across ~%d ring laps", produced, int(rp.prod.tail)/size)
}
