package core

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestAssignThreadsSeparatesBySize(t *testing.T) {
	// Two large-payload threads and six small ones, equal total bytes per
	// group: Algorithm 1 should never co-locate a small thread with a
	// large one when quota allows separation.
	threads := []ThreadStat{
		{ID: 0, MedianReq: 64, Reqs: 100, Bytes: 6400},
		{ID: 1, MedianReq: 64, Reqs: 100, Bytes: 6400},
		{ID: 2, MedianReq: 64, Reqs: 100, Bytes: 6400},
		{ID: 3, MedianReq: 1024, Reqs: 20, Bytes: 19200},
	}
	asg := AssignThreads(threads, 2)
	if len(asg) != 4 {
		t.Fatalf("assignments: %v", asg)
	}
	// Small threads sort first, so they share low slots; the large thread
	// lands on the last slot alone.
	if asg[3] == asg[0] || asg[3] == asg[1] || asg[3] == asg[2] {
		t.Errorf("large thread co-located with small: %v", asg)
	}
}

func TestAssignThreadsBalancesLoad(t *testing.T) {
	// 8 identical threads over 4 QPs: 2 per QP.
	var threads []ThreadStat
	for i := 0; i < 8; i++ {
		threads = append(threads, ThreadStat{ID: uint32(i), MedianReq: 64, Reqs: 10, Bytes: 640})
	}
	asg := AssignThreads(threads, 4)
	counts := map[int]int{}
	for _, slot := range asg {
		counts[slot]++
	}
	for slot, c := range counts {
		if c != 2 {
			t.Errorf("slot %d has %d threads, want 2 (%v)", slot, c, asg)
		}
	}
}

func TestAssignThreadsZeroBytes(t *testing.T) {
	threads := []ThreadStat{{ID: 0}, {ID: 1}, {ID: 2}}
	asg := AssignThreads(threads, 2)
	if len(asg) != 3 {
		t.Fatalf("assignments: %v", asg)
	}
	for id, slot := range asg {
		if slot < 0 || slot >= 2 {
			t.Errorf("thread %d slot %d out of range", id, slot)
		}
	}
}

func TestAssignThreadsDegenerate(t *testing.T) {
	if got := AssignThreads(nil, 4); len(got) != 0 {
		t.Errorf("nil threads: %v", got)
	}
	if got := AssignThreads([]ThreadStat{{ID: 1, Bytes: 10}}, 0); len(got) != 0 {
		t.Errorf("zero QPs: %v", got)
	}
	// One thread, many QPs.
	asg := AssignThreads([]ThreadStat{{ID: 5, Bytes: 100, MedianReq: 10}}, 8)
	if asg[5] != 0 {
		t.Errorf("single thread slot = %d", asg[5])
	}
}

func TestAssignThreadsProperty(t *testing.T) {
	// Every thread gets a slot in range; deterministic for equal input.
	f := func(seed uint8, nThreads, nQPs uint8) bool {
		n := int(nThreads)%32 + 1
		q := int(nQPs)%8 + 1
		var threads []ThreadStat
		for i := 0; i < n; i++ {
			threads = append(threads, ThreadStat{
				ID:        uint32(i),
				MedianReq: uint64((int(seed)+i*37)%512) + 1,
				Reqs:      uint64(i + 1),
				Bytes:     uint64(((int(seed) + i*13) % 1000) * 10),
			})
		}
		a := AssignThreads(threads, q)
		b := AssignThreads(threads, q)
		if len(a) != n {
			return false
		}
		for id, slot := range a {
			if slot < 0 || slot >= q || b[id] != slot {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerObservabilityUnderSkew drives a skewed two-client workload
// (2 conns × 4 QPs against MAX_AQP=4, one hot client and one near-idle
// client) and asserts the telemetry the PR adds actually moves with the
// scheduler: the coalescing-degree histograms account for every message,
// and the receiver-side scheduler records redistributions and
// deactivations as it shifts active QPs toward the hot sender.
func TestSchedulerObservabilityUnderSkew(t *testing.T) {
	serverOpts := Options{
		QPsPerConn:    4,
		MaxActiveQPs:  4, // 8 QPs total across 2 conns → sharing forced
		SchedInterval: time.Millisecond,
	}
	clientOpts := Options{QPsPerConn: 4, SchedInterval: time.Millisecond}
	tc := newTestCluster(t, 2, serverOpts, clientOpts)
	registerEcho(tc.server)

	hot, err := tc.clients[0].Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := tc.clients[1].Connect(0)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Hot client: 6 threads with a deep window, to drive coalescing and
	// concentrate utilization on conn 0's QPs.
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := hot.RegisterThread()
			payload := make([]byte, 64)
			const window = 8
			for {
				select {
				case <-stop:
					return
				default:
				}
				sent := 0
				for k := 0; k < window; k++ {
					if _, err := th.SendRPC(echoID, payload); err != nil {
						return
					}
					sent++
				}
				for k := 0; k < sent; k++ {
					if recvDrop(th) != nil {
						return
					}
				}
			}
		}()
	}
	// Cold client: one thread, one RPC at a time with a pause — just
	// enough traffic that its QPs report utilization near zero.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := cold.RegisterThread()
		payload := make([]byte, 64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if callDrop(th, echoID, payload) != nil {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The server-side degree histogram must account for exactly the
	// messages and items the node counted: one Observe per coalesced
	// message, the observed value being the number of items it carried.
	m := tc.server.Metrics()
	_, degIn := tc.server.DegreeHistograms()
	if degIn.Count != m.MsgsIn {
		t.Errorf("server degree-in hist count = %d, want MsgsIn = %d", degIn.Count, m.MsgsIn)
	}
	if degIn.Sum != m.ItemsIn {
		t.Errorf("server degree-in hist sum = %d, want ItemsIn = %d", degIn.Sum, m.ItemsIn)
	}
	if m.MsgsIn == 0 {
		t.Fatal("no traffic reached the server")
	}

	// Same invariant on the hot client's sender side.
	hm := tc.clients[0].Metrics()
	degOut, _ := tc.clients[0].DegreeHistograms()
	if degOut.Count != hm.MsgsOut {
		t.Errorf("client degree-out hist count = %d, want MsgsOut = %d", degOut.Count, hm.MsgsOut)
	}
	if degOut.Sum != hm.ItemsOut {
		t.Errorf("client degree-out hist sum = %d, want ItemsOut = %d", degOut.Sum, hm.ItemsOut)
	}

	// With 8 QPs over a budget of 4 and skewed utilization, the scheduler
	// must have applied at least one redistribution that deactivated QPs.
	if m.QPRedistributions == 0 {
		t.Error("scheduler recorded no QP redistributions under forced sharing")
	}
	if m.QPDeactivations == 0 {
		t.Error("scheduler recorded no QP deactivations with 8 QPs over MAX_AQP=4")
	}

	// The per-QP coalescing histograms are registered in the client's
	// telemetry and must have absorbed the hot client's messages.
	snap := tc.clients[0].Telemetry().Snapshot()
	var perQP uint64
	for name, h := range snap.Hists {
		if strings.HasPrefix(name, "conn") && strings.HasSuffix(name, "coalesce_degree") {
			perQP += h.Count
		}
	}
	if perQP != hm.MsgsOut {
		t.Errorf("per-QP coalesce hists count %d messages, want MsgsOut = %d", perQP, hm.MsgsOut)
	}
}

func TestRedistributeProportional(t *testing.T) {
	// Sender 0 three times as utilized as sender 1.
	util := [][]float64{
		{30, 30, 30, 30}, // U_0 = 120
		{10, 10, 10, 10}, // U_1 = 40
	}
	counts := RedistributeQPs(util, 4)
	if counts[0] != 3 || counts[1] != 1 {
		t.Fatalf("counts = %v, want [3 1]", counts)
	}
}

func TestRedistributeDormantKeepsOne(t *testing.T) {
	util := [][]float64{
		{100, 100},
		{0, 0}, // dormant
	}
	counts := RedistributeQPs(util, 3)
	if counts[1] != 1 {
		t.Fatalf("dormant sender got %d QPs, want 1", counts[1])
	}
	if counts[0] < 1 || counts[0] > 2 {
		t.Fatalf("active sender got %d QPs", counts[0])
	}
}

func TestRedistributeCapsBySenderQPs(t *testing.T) {
	util := [][]float64{
		{1000}, // hot but only has 1 QP
		{1, 1, 1},
	}
	counts := RedistributeQPs(util, 4)
	if counts[0] != 1 {
		t.Fatalf("sender 0 allocated %d > its QP count", counts[0])
	}
	if counts[1] < 1 {
		t.Fatalf("sender 1 starved: %v", counts)
	}
}

func TestRedistributeRespectsBudget(t *testing.T) {
	// 8 senders × 4 QPs, equal utilization, budget 8: one each.
	util := make([][]float64, 8)
	for i := range util {
		util[i] = []float64{5, 5, 5, 5}
	}
	counts := RedistributeQPs(util, 8)
	total := 0
	for _, c := range counts {
		if c < 1 {
			t.Fatalf("sender starved: %v", counts)
		}
		total += c
	}
	if total > 8 {
		t.Fatalf("budget exceeded: %v (total %d)", counts, total)
	}
}

func TestRedistributeTrimsMinimumOvershoot(t *testing.T) {
	// 10 dormant senders but budget 5: minimum-1 guarantee overrides the
	// budget (the paper keeps one QP per sender for future traffic).
	util := make([][]float64, 10)
	for i := range util {
		util[i] = []float64{0, 0}
	}
	counts := RedistributeQPs(util, 5)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("sender %d got %d, want 1", i, c)
		}
	}
}

func TestRedistributeEmpty(t *testing.T) {
	if got := RedistributeQPs(nil, 10); len(got) != 0 {
		t.Fatalf("empty input: %v", got)
	}
	if got := RedistributeQPs([][]float64{{}}, 10); got[0] != 0 {
		t.Fatalf("sender with zero QPs: %v", got)
	}
}

func TestRedistributeProperty(t *testing.T) {
	f := func(seed uint16, nSenders, nQPs, budget uint8) bool {
		ns := int(nSenders)%12 + 1
		nq := int(nQPs)%6 + 1
		b := int(budget)%64 + 1
		util := make([][]float64, ns)
		for i := range util {
			util[i] = make([]float64, nq)
			for j := range util[i] {
				util[i][j] = float64((int(seed) + i*31 + j*7) % 50)
			}
		}
		counts := RedistributeQPs(util, b)
		total := 0
		for i, c := range counts {
			if c < 1 || c > nq {
				return false
			}
			total += c
			_ = i
		}
		// Budget respected unless the per-sender minimum forces overshoot.
		limit := b
		if ns > limit {
			limit = ns
		}
		return total <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
