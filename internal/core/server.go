package core

import (
	"sync"
	"sync/atomic"

	"flock/internal/fabric"
	"flock/internal/mem"
	"flock/internal/resilience"
	"flock/internal/rnic"
	"flock/internal/stats"
)

// This file is the server side: connection acceptance, the request
// dispatcher (§4.3), the optional RPC worker pool, and coalesced response
// flushing. The receiver-side QP scheduler lives in qpsched.go.

// recvDepth is how many receive WQEs the server keeps posted per QP to
// absorb credit-renewal write-imms between scheduler rounds.
const recvDepth = 16

// serverConn is the server end of one client's connection handle.
type serverConn struct {
	node   *Node
	sender fabric.NodeID
	qps    []*serverQP
	// dedup is the idempotent-response cache for this client: retried
	// requests carrying a nonzero idempotency key whose original already
	// executed are answered from here. Nil when Options.DedupWindow < 0.
	dedup *resilience.DedupWindow
}

// serverQP is the server end of one shared queue pair.
type serverQP struct {
	gid    int // global index across all server connections
	idx    int // index within the connection
	sc     *serverConn
	qp     *rnic.QP
	sender fabric.NodeID

	reqRing    *rnic.MemRegion // clients RDMA-write coalesced requests here
	reqCons    *ringConsumer
	serverCtrl *rnic.MemRegion // publishes the request-ring consumed head
	respProd   *ringProducer   // writes responses into the client's ring
	readback   *rnic.MemRegion

	clientCtrlRKey uint32

	respMu  sync.Mutex // guards respProd geometry, rng, msgSeq
	rng     *stats.RNG
	msgSeq  uint64
	refresh atomic.Bool

	// Scheduler-owned state (§5.1). active is atomic because accept and
	// metrics paths read it.
	active  atomic.Bool
	granted uint64  // scheduler-only (recycleAccept resets it under exclusion)
	util    float64 // Σ reported coalescing degrees since last interval
	renews  uint64  // renewals seen since last interval

	// Fault state: broken excludes the dispatcher and scheduler while
	// recycleAccept rebuilds the QP (inuse counts them in their critical
	// sections); quarantined permanently retires the QP from scheduling.
	broken      atomic.Bool
	inuse       atomic.Int32
	quarantined atomic.Bool

	// outScratch is the inline-mode response batch, reused across messages;
	// only the owning dispatcher touches it. wrScratch stages the flush work
	// requests under respMu (PostSend copies WRs, so reuse after it returns
	// is safe). nackScratch batches admission-control pushbacks the same
	// way outScratch batches responses.
	outScratch  []respOut
	wrScratch   []rnic.SendWR
	nackScratch []respOut
}

// enter begins a dispatcher/scheduler critical section on the QP. It
// returns false when the QP is broken (under recycle) and must be skipped;
// a true return must be paired with exit.
func (sqp *serverQP) enter() bool {
	if sqp.broken.Load() {
		return false
	}
	sqp.inuse.Add(1)
	if sqp.broken.Load() {
		sqp.inuse.Add(-1)
		return false
	}
	return true
}

// exit ends a critical section begun by enter.
func (sqp *serverQP) exit() { sqp.inuse.Add(-1) }

// workUnit carries one inbound coalesced message's requests to the worker
// pool; the worker executes every handler, flushes the coalesced response,
// and releases buf — the pooled message buffer every item payload views,
// whose reference the unit owns.
type workUnit struct {
	sqp   *serverQP
	items []workItem
	buf   *mem.Buf
}

// workItem is one decoded request; payload views the unit's pooled buffer.
type workItem struct {
	meta    itemMeta
	payload []byte
}

// respOut is one computed response awaiting coalescing.
type respOut struct {
	meta itemMeta
	data []byte
}

// accept builds the server side of a connection handle; called in-process
// by the client's Connect (the out-of-band bootstrap stand-in).
func (n *Node) accept(args connectArgs) (connectReply, error) {
	if !n.Serving() {
		return connectReply{}, ErrNotServing
	}
	select {
	case <-n.done:
		return connectReply{}, ErrClosed
	default:
	}
	sc := &serverConn{node: n, sender: args.clientNode}
	if n.opts.DedupWindow > 0 {
		sc.dedup = resilience.NewDedupWindow(n.opts.DedupWindow)
	}
	var reply connectReply

	n.sconnMu.Lock()
	defer n.sconnMu.Unlock()
	gidBase := 0
	for _, other := range n.sconns {
		gidBase += len(other.qps)
	}
	for i, qa := range args.qps {
		qp, err := n.dev.CreateQP(rnic.RC, n.dev.CreateCQ(), n.schedRCQ)
		if err != nil {
			return connectReply{}, err
		}
		reqRing, err := n.dev.RegisterMR(n.opts.RingBytes, rnic.PermRemoteWrite)
		if err != nil {
			return connectReply{}, err
		}
		serverCtrl, err := n.dev.RegisterMR(srvCtrlBytes, rnic.PermRemoteRead)
		if err != nil {
			return connectReply{}, err
		}
		respStaging, err := n.dev.RegisterMR(n.opts.RingBytes, 0)
		if err != nil {
			return connectReply{}, err
		}
		readback, err := n.dev.RegisterMR(8, 0)
		if err != nil {
			return connectReply{}, err
		}
		if err := qp.Connect(int(args.clientNode), qa.qpn); err != nil {
			return connectReply{}, err
		}
		for r := 0; r < recvDepth; r++ {
			if err := qp.PostRecv(rnic.RecvWR{WRID: uint64(qp.QPN())}); err != nil {
				return connectReply{}, err
			}
		}
		sqp := &serverQP{
			gid:            gidBase + i,
			idx:            i,
			sc:             sc,
			qp:             qp,
			sender:         args.clientNode,
			reqRing:        reqRing,
			reqCons:        newRingConsumer(reqRing, 0, n.opts.RingBytes, serverCtrl, srvCtrlReqHeadOff),
			serverCtrl:     serverCtrl,
			readback:       readback,
			clientCtrlRKey: qa.clientCtrlRKey,
			rng:            stats.NewRNG(n.opts.Seed + uint64(gidBase+i)*0x9E3779B9 + 7),
			granted:        uint64(n.opts.Credits),
		}
		sqp.respProd = &ringProducer{staging: respStaging, size: n.opts.RingBytes, rkey: qa.respRingRKey}
		sqp.active.Store(true)
		sc.qps = append(sc.qps, sqp)
		reply.qps = append(reply.qps, connectQPReply{
			qpn:            qp.QPN(),
			reqRingRKey:    reqRing.RKey(),
			serverCtrlRKey: serverCtrl.RKey(),
		})
	}
	n.sconns = append(n.sconns, sc)
	n.rebuildQPNIndexLocked()
	snap := make([]*serverConn, len(n.sconns))
	copy(snap, n.sconns)
	n.sconnsSnap.Store(snap)
	return reply, nil
}

// rebuildQPNIndexLocked refreshes the QPN → serverQP snapshot used by the
// QP scheduler. Caller holds sconnMu.
func (n *Node) rebuildQPNIndexLocked() {
	m := make(map[int]*serverQP)
	for _, sc := range n.sconns {
		for _, sqp := range sc.qps {
			m[sqp.qp.QPN()] = sqp
		}
	}
	n.byQPN.Store(m)
}

// snapshotSconns returns the inbound connection set: a shared immutable
// snapshot republished by accept (the set only grows), so the dispatch
// loops don't allocate a copy every spin.
func (n *Node) snapshotSconns() []*serverConn {
	return n.sconnsSnap.Load().([]*serverConn)
}

// serveDispatch is one request-dispatcher goroutine; dispatcher i owns the
// server QPs with gid ≡ i (mod Dispatchers).
func (n *Node) serveDispatch(i int) {
	defer n.wg.Done()
	var cqBuf [64]rnic.Completion
	idle := 0
	for {
		select {
		case <-n.done:
			return
		default:
		}
		busy := false
		for _, sc := range n.snapshotSconns() {
			for _, sqp := range sc.qps {
				if sqp.gid%n.opts.Dispatchers != i {
					continue
				}
				if !sqp.enter() {
					continue // under recycle
				}
				if n.pumpRequests(sqp) {
					busy = true
				}
				for {
					k := sqp.qp.SendCQ().Poll(cqBuf[:])
					if k == 0 {
						break
					}
					busy = true
					for _, comp := range cqBuf[:k] {
						sqp.routeCompletion(comp)
					}
				}
				sqp.exit()
			}
		}
		if busy {
			idle = 0
		} else {
			idle++
			idleBackoff(idle)
		}
	}
}

// pumpRequests drains complete messages from one request ring, executing
// them inline or handing them to the worker pool. Reports whether any work
// was found.
//
// Admission control runs here, before any handler work: while draining,
// every request is pushed back with StatusDraining; past AdmissionLimit,
// excess requests are shed with StatusOverloaded. A rejection costs the
// server one coalesced NACK — no handler execution, no worker queueing —
// which is what keeps goodput flat instead of collapsing when offered
// load exceeds capacity.
func (n *Node) pumpRequests(sqp *serverQP) bool {
	busy := false
	limit := int64(n.opts.AdmissionLimit)
	for {
		h, items, mbuf, ok := sqp.reqCons.poll()
		if !ok {
			return busy
		}
		busy = true
		n.metrics.msgsIn.Add(1)
		n.metrics.itemsIn.Add(uint64(len(items)))
		n.degIn.Observe(uint64(len(items)))
		sqp.respProd.updateCached(h.piggyHead)

		admit := items[:0]
		nacks := sqp.nackScratch[:0]
		draining := n.draining.Load()
		for _, it := range items {
			if draining {
				n.metrics.drainRejected.Add(1)
				nacks = append(nacks, nackOut(it.meta, StatusDraining))
				continue
			}
			if in := n.inflight.Add(1); limit > 0 && in > limit {
				n.inflight.Add(-1)
				n.metrics.rejected.Add(1)
				nacks = append(nacks, nackOut(it.meta, StatusOverloaded))
				continue
			}
			admit = append(admit, it)
		}
		if len(nacks) > 0 {
			n.flushResponses(sqp, nacks)
			sqp.nackScratch = nacks[:0]
		}
		if len(admit) == 0 {
			mbuf.Release()
			continue
		}

		if n.workCh != nil {
			// Inline-lane RPCs (RegisterInlineStatusHandler) execute here on
			// the dispatcher before the rest of the batch is handed to the
			// pool: a replication apply or ping must never wait behind
			// workers that are themselves blocked in nested forwards.
			if inline := n.inlineSet(); len(inline) > 0 {
				out := sqp.outScratch[:0]
				keep := admit[:0]
				for _, it := range admit {
					if inline[it.meta.rpcID] {
						out = append(out, n.execute(sqp.sc, it.meta, it.data))
					} else {
						keep = append(keep, it)
					}
				}
				if len(out) > 0 {
					n.flushResponses(sqp, out)
					sqp.outScratch = out[:0]
					n.inflight.Add(-int64(len(out)))
				}
				admit = keep
				if len(admit) == 0 {
					mbuf.Release()
					continue
				}
			}
			// Hand the poll reference to the unit; payloads stay views into
			// the pooled message buffer and the worker releases it after the
			// flush.
			unit := workUnit{sqp: sqp, items: make([]workItem, len(admit)), buf: mbuf}
			for k, it := range admit {
				unit.items[k] = workItem{meta: it.meta, payload: it.data}
			}
			select {
			case n.workCh <- unit:
			case <-n.done:
				mbuf.Release()
				n.inflight.Add(-int64(len(admit)))
				return busy
			}
			continue
		}
		// Inline mode: execute handlers on the dispatcher (§4.3). The
		// handler contract (no retaining req) plus flushResponses staging
		// the output synchronously make releasing after the flush safe even
		// for handlers that return their input.
		out := sqp.outScratch[:0]
		for k := range admit {
			out = append(out, n.execute(sqp.sc, admit[k].meta, admit[k].data))
		}
		n.flushResponses(sqp, out)
		sqp.outScratch = out[:0]
		mbuf.Release()
		n.inflight.Add(-int64(len(admit)))
	}
}

// nackOut builds a pushback response for one rejected request: the
// request's identity echoed back with a rejection status and no payload.
func nackOut(m itemMeta, status uint32) respOut {
	return respOut{meta: itemMeta{
		threadID: m.threadID,
		seqID:    m.seqID,
		rpcID:    m.rpcID,
		idemKey:  m.idemKey,
		status:   status,
	}}
}

// worker is one pool goroutine executing handler batches (§4.3's
// "application-managed pool of RPC workers").
func (n *Node) worker() {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case unit := <-n.workCh:
			out := make([]respOut, len(unit.items))
			for k, it := range unit.items {
				out[k] = n.execute(unit.sqp.sc, it.meta, it.payload)
			}
			n.flushResponses(unit.sqp, out)
			unit.buf.Release()
			n.inflight.Add(-int64(len(unit.items)))
		}
	}
}

// execute runs the registered handler for one request, capturing panics
// as a response status rather than crashing the dispatcher.
//
// Requests carrying a nonzero idempotency key go through the connection's
// dedup window first: a retry whose original already executed is answered
// from the cache (exactly-once within the window), and a duplicate racing
// its still-executing original gets a retryable StatusOverloaded pushback
// rather than blocking a worker or running twice.
func (n *Node) execute(sc *serverConn, meta itemMeta, payload []byte) (out respOut) {
	out.meta = itemMeta{
		threadID: meta.threadID,
		seqID:    meta.seqID,
		rpcID:    meta.rpcID,
		idemKey:  meta.idemKey,
		status:   StatusOK,
	}
	if meta.idemKey != 0 && sc != nil && sc.dedup != nil {
		k := resilience.DedupKey{Thread: meta.threadID, Key: meta.idemKey}
		res, verdict := sc.dedup.Begin(k)
		switch verdict {
		case resilience.DedupHit:
			n.metrics.dedupHits.Add(1)
			out.meta.status = res.Status
			out.data = res.Data
			return out
		case resilience.DedupInflight:
			out.meta.status = StatusOverloaded
			return out
		}
		// Registered before the recover defer so it runs after the panic
		// status is in place; the copy detaches the cached payload from
		// the pooled request buffer a handler may have returned a view of.
		defer func() {
			sc.dedup.Commit(k, resilience.DedupResult{
				Status: out.meta.status,
				Data:   append([]byte(nil), out.data...),
			})
		}()
	}
	fn := n.handler(meta.rpcID)
	if fn == nil {
		out.meta.status = StatusNoHandler
		return out
	}
	defer func() {
		if recover() != nil {
			out.meta.status = StatusHandlerPanic
			out.data = nil
		}
	}()
	out.data, out.meta.status = fn(payload)
	return out
}

// flushResponses coalesces the batch into one response message — tagging
// each item with its request's thread ID and sequence ID, piggybacking the
// request-ring consumed head — and posts it with a single RDMA write.
func (n *Node) flushResponses(sqp *serverQP, out []respOut) {
	if len(out) == 0 {
		return
	}
	msgLen := headerBytes + trailerBytes
	for i := range out {
		if len(out[i].data) > n.opts.MaxPayload {
			// Oversized handler response: truncate to keep ring geometry
			// sound; the application bug is surfaced via status.
			out[i].data = out[i].data[:n.opts.MaxPayload]
			out[i].meta.status = StatusHandlerPanic
		}
		msgLen += itemSpace(len(out[i].data))
	}

	sqp.respMu.Lock()
	defer sqp.respMu.Unlock()

	var res reservation
	for i := 0; ; i++ {
		if sqp.broken.Load() {
			// QP under recycle: the client already failed these requests;
			// drop the responses rather than wedge the flush path (and the
			// recycler waiting on respMu) against a dead consumer.
			return
		}
		var ok bool
		res, ok = sqp.respProd.reserve(msgLen)
		if ok {
			break
		}
		sqp.requestRespHeadRefresh()
		// Poll our own send CQ so the refresh completion can land even
		// while we hold the flush path.
		var cqBuf [16]rnic.Completion
		if k := sqp.qp.SendCQ().Poll(cqBuf[:]); k > 0 {
			for _, comp := range cqBuf[:k] {
				sqp.routeCompletion(comp)
			}
		}
		select {
		case <-n.done:
			return
		default:
		}
		idleBackoff(i)
	}

	staging := sqp.respProd.staging
	cursor := res.msgOff + headerBytes
	var metaBuf [itemMetaBytes]byte
	for i := range out {
		m := out[i].meta
		m.size = uint32(len(out[i].data))
		putItemMeta(metaBuf[:], m)
		staging.WriteAt(metaBuf[:], cursor) //nolint:errcheck // reserved span
		if len(out[i].data) > 0 {
			staging.WriteAt(out[i].data, cursor+itemMetaBytes) //nolint:errcheck
		}
		cursor += itemSpace(len(out[i].data))
	}
	canary := sqp.rng.Uint64() | 1
	var canaryBuf [trailerBytes]byte
	putLE64(canaryBuf[:], canary)
	staging.WriteAt(canaryBuf[:], res.msgOff+msgLen-trailerBytes) //nolint:errcheck
	var hdr [headerBytes]byte
	putHeader(hdr[:], header{
		totalLen:  uint32(msgLen),
		count:     uint32(len(out)),
		canary:    canary,
		piggyHead: sqp.reqCons.consumed(),
		flags:     flagItemMetaV2,
	})
	staging.WriteAt(hdr[:], res.msgOff) //nolint:errcheck

	wrs := sqp.wrScratch[:0]
	if res.markerOff >= 0 {
		wrs = append(wrs, rnic.SendWR{
			WRID: tagMarker, Op: rnic.OpWrite,
			LocalMR: staging, LocalOff: res.markerOff, LocalLen: 8,
			RKey: sqp.respProd.rkey, RemoteOff: res.markerOff,
		})
	}
	sqp.msgSeq++
	wrs = append(wrs, rnic.SendWR{
		WRID: tagMsg, Op: rnic.OpWrite,
		LocalMR: staging, LocalOff: res.msgOff, LocalLen: msgLen,
		RKey: sqp.respProd.rkey, RemoteOff: res.msgOff,
		Signaled: sqp.msgSeq%uint64(n.opts.SignalEvery) == 0,
	})
	sqp.wrScratch = wrs[:0]
	sqp.qp.PostSend(wrs...) //nolint:errcheck // device closing is benign here
}

// requestRespHeadRefresh posts a one-sided read of the client's published
// response-ring consumed head.
func (sqp *serverQP) requestRespHeadRefresh() {
	if sqp.refresh.Swap(true) {
		return
	}
	err := sqp.qp.PostSend(rnic.SendWR{
		WRID: tagFresh, Op: rnic.OpRead,
		LocalMR: sqp.readback, LocalOff: 0, LocalLen: 8,
		RKey: sqp.clientCtrlRKey, RemoteOff: ctrlRespHeadOff,
		Signaled: true,
	})
	if err != nil {
		sqp.refresh.Store(false)
	}
}

// routeCompletion handles one server-side send completion. A failed
// refresh read leaves the cached head alone (the readback slot holds
// garbage); the client-driven recycle heals the QP.
func (sqp *serverQP) routeCompletion(comp rnic.Completion) {
	if comp.WRID&tagMask == tagFresh {
		if comp.Status == rnic.StatusOK {
			sqp.respProd.updateCached(sqp.readback.Load64(0))
		}
		sqp.refresh.Store(false)
	}
}
