package core

import (
	"runtime"
	"sync/atomic"
	"time"

	"flock/internal/rnic"
)

// This file implements FLock synchronization (§4.2): the thread combining
// queue (TCQ). Threads that want to use a shared QP enqueue themselves
// with an atomic swap on the queue tail, exactly like an MCS lock. The
// thread that finds a nil predecessor is the leader; it claims a bounded
// batch of queued requests, coalesces them into one message (RPC items)
// and one linked work-request chain (memory operations), posts the lot
// with a single doorbell, and hands leadership to the first unclaimed
// node.
//
// Compared to a spinlock around the QP (the FaRM-style baseline in
// internal/baseline/lockshare), every thread still "waits its turn", but
// the turn produces one combined network operation instead of N serialized
// ones — the entire point of the paper.

// opKind distinguishes what a TCQ node carries.
type opKind uint8

const (
	// opRPC is a coalescible RPC request (§4.2).
	opRPC opKind = iota
	// opMem is a one-sided memory or atomic operation; the leader links
	// these work requests into its single post (§6).
	opMem
)

// Node states / verdicts. waiting→leader, or
// waiting→claimed{→copy→claimed}→sent/migrate, or waiting→timedout.
//
// The claimed/timedout pair is the stall-guard protocol: a leader must win
// a CAS from waiting before touching a follower's node, and a follower
// gives up waiting only by winning the same CAS. Whoever wins owns the
// node; the loser walks away. A follower whose node was claimed can no
// longer time out — the leader's own waits are stall-bounded, so a verdict
// is guaranteed — and a leader never stages or posts a node it failed to
// claim.
const (
	stateWaiting  uint32 = iota
	stateLeader          // promoted: this thread must run the leader path
	stateClaimed         // leader owns the node; follower timeout disabled
	stateCopy            // follower: buffer assigned, copy payload now
	stateSent            // verdict: operation posted on the QP
	stateMigrate         // verdict: QP deactivated, re-submit on another QP
	stateAborted         // verdict: connection closing
	stateTimedOut        // follower abandoned the node after a stall timeout
)

// tcqNode is one thread's slot in the combining queue.
type tcqNode struct {
	next   atomic.Pointer[tcqNode]
	state  atomic.Uint32
	copied atomic.Uint32

	kind opKind

	// leaderCopies marks a node whose payload the leader writes into
	// staging itself instead of running the copy handshake. Batch
	// submissions (SendBatch) set it: the submitting thread polls a whole
	// chain of its own nodes at once, and if one of them is promoted to
	// leader it claims its siblings — waiting for itself to copy would
	// deadlock, so the leader does the copy.
	leaderCopies bool

	// opRPC fields.
	rpcID    uint32
	seqID    uint64
	threadID uint32
	idemKey  uint64 // nonzero marks the request idempotent (dedup-safe retry)
	payload  []byte
	bufOff   int // absolute staging offset assigned by the leader

	// opMem fields.
	wr rnic.SendWR
}

// tcq is the per-QP combining queue; Flock Tail in Figure 5.
type tcq struct {
	tail atomic.Pointer[tcqNode]
}

// push enqueues n and reports whether the caller became the leader.
func (q *tcq) push(n *tcqNode) (leader bool) {
	prev := q.tail.Swap(n)
	if prev == nil {
		n.state.Store(stateLeader)
		return true
	}
	prev.next.Store(n)
	return false
}

// pushChain enqueues a pre-linked chain of nodes (first..last, next
// pointers already stored) with one tail swap — the whole batch enters the
// queue atomically, so a single leader claim can take all of it under one
// doorbell. Reports whether first became the leader.
func (q *tcq) pushChain(first, last *tcqNode) (leader bool) {
	prev := q.tail.Swap(last)
	if prev == nil {
		first.state.Store(stateLeader)
		return true
	}
	prev.next.Store(first)
	return false
}

// claimBatch collects up to max nodes starting at head (the leader's own
// node), following next pointers. A successor that has swapped the tail
// but not yet linked itself is awaited, as in MCS. The returned slice
// always starts with head.
func (q *tcq) claimBatch(head *tcqNode, max int) []*tcqNode {
	batch := make([]*tcqNode, 1, max)
	batch[0] = head
	cur := head
	for len(batch) < max {
		next := cur.next.Load()
		if next == nil {
			if q.tail.Load() == cur {
				break // genuinely last
			}
			// A successor is between swap and link; wait for it.
			for next == nil {
				runtime.Gosched()
				next = cur.next.Load()
			}
		}
		batch = append(batch, next)
		cur = next
	}
	return batch
}

// handoff passes leadership after the leader finished with batch. The
// first successor still waiting is promoted by CAS; successors that timed
// out and left are skipped (their abandoned nodes stay linked in the chain
// purely as stepping stones). If no live successor exists, the queue is
// closed out.
func (q *tcq) handoff(last *tcqNode) {
	cur := last
	for {
		next := cur.next.Load()
		if next == nil {
			if q.tail.CompareAndSwap(cur, nil) {
				return // queue empty
			}
			// A successor swapped the tail; wait for the link.
			for next == nil {
				runtime.Gosched()
				next = cur.next.Load()
			}
		}
		if next.state.CompareAndSwap(stateWaiting, stateLeader) {
			return
		}
		// The successor abandoned its node (timed out); keep walking.
		cur = next
	}
}

// awaitVerdict spins until a final verdict (sent/migrate/aborted) or a
// leadership promotion, passing through the copy phase by copying the
// payload into staging. A stateLeader return means the caller must run the
// leader path for its own node. If stall > 0 and no leader has claimed the
// node within that budget, the follower abandons it and returns
// stateTimedOut — the caller re-submits a fresh node, preferably on
// another QP (leader re-election around a stalled or descheduled leader).
func (n *tcqNode) awaitVerdict(staging *rnic.MemRegion, stall time.Duration) uint32 {
	var deadline time.Time
	if stall > 0 {
		deadline = time.Now().Add(stall)
	}
	spins := 0
	for {
		switch s := n.state.Load(); s {
		case stateSent, stateMigrate, stateAborted, stateLeader:
			return s
		case stateCopy:
			// Leader assigned our slot: copy payload, raise the
			// copy-completion flag, and keep waiting for the verdict.
			if len(n.payload) > 0 {
				staging.WriteAt(n.payload, n.bufOff) //nolint:errcheck // leader sized the slot
			}
			n.copied.Store(1)
			n.state.CompareAndSwap(stateCopy, stateClaimed)
		case stateWaiting:
			if stall > 0 {
				spins++
				if spins%256 == 0 && time.Now().After(deadline) &&
					n.state.CompareAndSwap(stateWaiting, stateTimedOut) {
					return stateTimedOut
				}
			}
		case stateClaimed:
			// A leader owns the node; its waits are stall-bounded, so a
			// verdict is coming. The timeout no longer applies.
		}
		runtime.Gosched()
	}
}
