package core

import (
	"runtime"
	"sync/atomic"

	"flock/internal/rnic"
)

// This file implements FLock synchronization (§4.2): the thread combining
// queue (TCQ). Threads that want to use a shared QP enqueue themselves
// with an atomic swap on the queue tail, exactly like an MCS lock. The
// thread that finds a nil predecessor is the leader; it claims a bounded
// batch of queued requests, coalesces them into one message (RPC items)
// and one linked work-request chain (memory operations), posts the lot
// with a single doorbell, and hands leadership to the first unclaimed
// node.
//
// Compared to a spinlock around the QP (the FaRM-style baseline in
// internal/baseline/lockshare), every thread still "waits its turn", but
// the turn produces one combined network operation instead of N serialized
// ones — the entire point of the paper.

// opKind distinguishes what a TCQ node carries.
type opKind uint8

const (
	// opRPC is a coalescible RPC request (§4.2).
	opRPC opKind = iota
	// opMem is a one-sided memory or atomic operation; the leader links
	// these work requests into its single post (§6).
	opMem
)

// Node states / verdicts. waiting→leader or waiting→{copy→}sent/migrate.
const (
	stateWaiting uint32 = iota
	stateLeader         // promoted: this thread must run the leader path
	stateCopy           // follower: buffer assigned, copy payload now
	stateSent           // verdict: operation posted on the QP
	stateMigrate        // verdict: QP deactivated, re-submit on another QP
	stateAborted        // verdict: connection closing
)

// tcqNode is one thread's slot in the combining queue.
type tcqNode struct {
	next   atomic.Pointer[tcqNode]
	state  atomic.Uint32
	copied atomic.Uint32

	kind opKind

	// opRPC fields.
	rpcID    uint32
	seqID    uint64
	threadID uint32
	payload  []byte
	bufOff   int // absolute staging offset assigned by the leader

	// opMem fields.
	wr rnic.SendWR
}

// tcq is the per-QP combining queue; Flock Tail in Figure 5.
type tcq struct {
	tail atomic.Pointer[tcqNode]
}

// push enqueues n and reports whether the caller became the leader.
func (q *tcq) push(n *tcqNode) (leader bool) {
	prev := q.tail.Swap(n)
	if prev == nil {
		n.state.Store(stateLeader)
		return true
	}
	prev.next.Store(n)
	return false
}

// claimBatch collects up to max nodes starting at head (the leader's own
// node), following next pointers. A successor that has swapped the tail
// but not yet linked itself is awaited, as in MCS. The returned slice
// always starts with head.
func (q *tcq) claimBatch(head *tcqNode, max int) []*tcqNode {
	batch := make([]*tcqNode, 1, max)
	batch[0] = head
	cur := head
	for len(batch) < max {
		next := cur.next.Load()
		if next == nil {
			if q.tail.Load() == cur {
				break // genuinely last
			}
			// A successor is between swap and link; wait for it.
			for next == nil {
				runtime.Gosched()
				next = cur.next.Load()
			}
		}
		batch = append(batch, next)
		cur = next
	}
	return batch
}

// handoff passes leadership after the leader finished with batch. If a
// node beyond the batch exists (or arrives concurrently), it is promoted
// to leader; otherwise the queue is closed out.
func (q *tcq) handoff(last *tcqNode) {
	next := last.next.Load()
	if next == nil {
		if q.tail.CompareAndSwap(last, nil) {
			return // queue empty
		}
		// A successor swapped the tail; wait for the link.
		for next == nil {
			runtime.Gosched()
			next = last.next.Load()
		}
	}
	next.state.Store(stateLeader)
}

// awaitVerdict spins until a final verdict (sent/migrate/aborted) or a
// leadership promotion, passing through the copy phase by copying the
// payload into staging. A stateLeader return means the caller must run the
// leader path for its own node.
func (n *tcqNode) awaitVerdict(staging *rnic.MemRegion) uint32 {
	for {
		switch s := n.state.Load(); s {
		case stateSent, stateMigrate, stateAborted, stateLeader:
			return s
		case stateCopy:
			// Leader assigned our slot: copy payload, raise the
			// copy-completion flag, and keep waiting for the verdict.
			if len(n.payload) > 0 {
				staging.WriteAt(n.payload, n.bufOff) //nolint:errcheck // leader sized the slot
			}
			n.copied.Store(1)
			n.state.CompareAndSwap(stateCopy, stateWaiting)
		}
		runtime.Gosched()
	}
}
