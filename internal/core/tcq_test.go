package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// White-box tests of the combining queue's queueing discipline, separate
// from the full RPC paths: we drive push/claimBatch/handoff directly with
// a synthetic leader loop.

// runTCQ drives ops submissions from nThreads goroutines through one tcq,
// with each leader claiming batches of up to maxBatch and "processing"
// them by setting verdicts. Returns total processed and the batch sizes.
func runTCQ(t *testing.T, nThreads, opsPerThread, maxBatch int) []int {
	t.Helper()
	var q tcq
	var mu sync.Mutex
	var batches []int
	var wg sync.WaitGroup
	for g := 0; g < nThreads; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerThread; i++ {
				n := &tcqNode{kind: opMem}
				lead := q.push(n)
				if !lead {
					// Followers wait for a verdict or promotion (no
					// staging region needed for opMem nodes).
					if v := n.awaitVerdict(nil, 0); v != stateLeader {
						if v != stateSent {
							t.Errorf("verdict %d", v)
						}
						continue
					}
				}
				// Leader path: claim, "process", set verdicts, hand off.
				batch := q.claimBatch(n, maxBatch)
				mu.Lock()
				batches = append(batches, len(batch))
				mu.Unlock()
				for _, b := range batch {
					if b != n {
						b.state.Store(stateSent)
					}
				}
				q.handoff(batch[len(batch)-1])
			}
		}()
	}
	wg.Wait()
	return batches
}

func TestTCQAllSubmissionsProcessed(t *testing.T) {
	const nThreads, ops, maxBatch = 8, 500, 16
	batches := runTCQ(t, nThreads, ops, maxBatch)
	total := 0
	for _, b := range batches {
		total += b
		if b < 1 || b > maxBatch {
			t.Fatalf("batch size %d outside [1,%d]", b, maxBatch)
		}
	}
	if total != nThreads*ops {
		t.Fatalf("processed %d, want %d", total, nThreads*ops)
	}
}

func TestTCQBatchBound(t *testing.T) {
	for _, maxBatch := range []int{1, 2, 4} {
		batches := runTCQ(t, 6, 200, maxBatch)
		for _, b := range batches {
			if b > maxBatch {
				t.Fatalf("maxBatch %d violated: batch of %d", maxBatch, b)
			}
		}
	}
}

func TestTCQSingleThreadNeverCombines(t *testing.T) {
	batches := runTCQ(t, 1, 300, 16)
	for _, b := range batches {
		if b != 1 {
			t.Fatalf("solo thread combined a batch of %d", b)
		}
	}
	if len(batches) != 300 {
		t.Fatalf("%d batches", len(batches))
	}
}

func TestTCQPushLeaderElection(t *testing.T) {
	var q tcq
	a := &tcqNode{}
	if !q.push(a) {
		t.Fatal("first push should lead")
	}
	b := &tcqNode{}
	if q.push(b) {
		t.Fatal("second push should follow")
	}
	// Claim both; handoff with nothing after ends the queue.
	batch := q.claimBatch(a, 16)
	if len(batch) != 2 || batch[0] != a || batch[1] != b {
		t.Fatalf("batch: %v", batch)
	}
	q.handoff(b)
	// Queue is empty: a fresh push leads again.
	c := &tcqNode{}
	if !q.push(c) {
		t.Fatal("push after drain should lead")
	}
	q.claimBatch(c, 16)
	q.handoff(c)
}

func TestTCQPromotionBeyondBatch(t *testing.T) {
	var q tcq
	nodes := make([]*tcqNode, 5)
	for i := range nodes {
		nodes[i] = &tcqNode{}
		q.push(nodes[i])
	}
	// Leader claims only 3 of 5; node 3 must be promoted on handoff.
	batch := q.claimBatch(nodes[0], 3)
	if len(batch) != 3 {
		t.Fatalf("claimed %d", len(batch))
	}
	for _, b := range batch[1:] {
		b.state.Store(stateSent)
	}
	q.handoff(batch[2])
	if nodes[3].state.Load() != stateLeader {
		t.Fatalf("node 3 state = %d, want leader", nodes[3].state.Load())
	}
	// The promoted leader claims the rest.
	rest := q.claimBatch(nodes[3], 16)
	if len(rest) != 2 || rest[0] != nodes[3] || rest[1] != nodes[4] {
		t.Fatalf("promoted batch: %v", rest)
	}
	rest[1].state.Store(stateSent)
	q.handoff(rest[1])
}

func TestTCQCopyPhaseHandshake(t *testing.T) {
	// A follower in awaitVerdict must perform the copy phase exactly once
	// and then accept the final verdict.
	var q tcq
	leader := &tcqNode{}
	q.push(leader)
	follower := &tcqNode{payload: []byte{}} // empty payload: no staging write
	q.push(follower)

	done := make(chan uint32, 1)
	go func() {
		done <- follower.awaitVerdict(nil, 0)
	}()
	// Leader assigns the copy phase and polls the flag.
	follower.state.Store(stateCopy)
	for follower.copied.Load() == 0 {
	}
	follower.state.Store(stateSent)
	if v := <-done; v != stateSent {
		t.Fatalf("verdict %d", v)
	}
}

func TestTCQStressManyThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	var processed atomic.Int64
	batches := runTCQ(t, 16, 400, 8)
	for _, b := range batches {
		processed.Add(int64(b))
	}
	if processed.Load() != 16*400 {
		t.Fatalf("processed %d", processed.Load())
	}
}
