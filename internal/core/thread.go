package core

import (
	"sync"
	"sync/atomic"
	"time"

	"flock/internal/mem"
	"flock/internal/rnic"
	"flock/internal/stats"
	"flock/internal/telemetry"
)

// Thread is a per-application-thread handle on a connection. FLock
// multiplexes threads onto the connection's QP set; the thread scheduler
// (§5.2) periodically reassigns them. All RPC and memory APIs of Table 2
// hang off Thread.
//
// A Thread must be used by one goroutine at a time (it models an OS
// thread); create one per worker goroutine with Conn.RegisterThread.
type Thread struct {
	conn *Conn
	id   uint32
	rng  *stats.RNG

	seq     uint64
	idemSeq uint64 // idempotency-key counter for the resilient path
	// pend is the thread's pending-call table: one completion record per
	// submitted RPC, resolved directly by sequence ID (see pending.go).
	pend   pendingTable
	respCh chan Response
	memCh  chan rnic.Status
	scratch *rnic.MemRegion

	assigned atomic.Int32 // scheduler-written QP index
	curQP    atomic.Int32 // QP in current use (recovery paths read it)
	avoidQP  int32        // thread-local: QP to sidestep after a follower timeout

	// Request statistics consumed by the thread scheduler; guarded by
	// statMu because the scheduler reads-and-resets them.
	statMu  sync.Mutex
	median  *stats.RunningMedian
	reqs    uint64
	bytes   uint64
	pending bool // stats present since last scheduling
}

// Response is one RPC response delivered to a thread (fl_recv_res).
type Response struct {
	// Seq echoes the sequence ID returned by SendRPC, mapping the
	// response to its outstanding request (§4.1).
	Seq uint64
	// RPCID echoes the handler ID.
	RPCID uint32
	// Status is StatusOK, StatusNoHandler or StatusHandlerPanic.
	Status uint32
	// Data is the response payload. It views a pooled buffer leased to
	// this Response: it stays valid until Release is called, and forever
	// for callers that never Release (the garbage collector reclaims the
	// lease instead of the pool recycling it).
	Data []byte

	// buf is the pool lease backing Data; nil for poison responses and
	// responses whose payload was copied.
	buf *mem.Buf

	// trace, when non-nil, is the owning node's lifecycle ring; Release
	// records the final EvRelease event on it. Set by the dispatcher.
	trace *telemetry.TraceRing

	// err marks a poison response injected by recovery paths (ErrQPBroken,
	// ErrConnClosed) rather than a response off the wire.
	err error
}

// Release returns the response's payload buffer to the pool. Call it once
// the Data has been consumed (or copied out); after Release the Data slice
// must not be touched. Release is idempotent on the same Response value
// and a no-op for responses without a pooled payload, so legacy callers
// that never Release — and code handling poison responses — stay correct;
// they merely forgo buffer recycling.
func (r *Response) Release() {
	if b := r.buf; b != nil {
		r.buf = nil
		r.Data = nil
		b.Release()
		if r.trace != nil {
			r.trace.Record(telemetry.EvRelease, -1, 0, r.Seq, 0)
		}
	}
}

// RegisterThread creates a thread handle. The initial QP assignment is
// round-robin; the thread scheduler refines it from observed behaviour.
func (c *Conn) RegisterThread() *Thread {
	id := c.nextTID.Add(1) - 1
	scratchLen := c.node.opts.MaxPayload
	if scratchLen < 64 {
		scratchLen = 64
	}
	scratch, err := c.node.dev.RegisterMR(scratchLen, 0)
	if err != nil {
		scratch = nil // node closing; ops will fail with ErrClosed
	}
	t := &Thread{
		conn:    c,
		id:      id,
		rng:     stats.NewRNG(c.node.opts.Seed*0x9E3779B9 + uint64(id) + uint64(c.remote)<<32 + 1),
		respCh:  make(chan Response, c.node.opts.RespWindow),
		memCh:   make(chan rnic.Status, 1),
		scratch: scratch,
		median:  stats.NewRunningMedian(32),
	}
	t.pend.recs = make(map[uint64]*callRec)
	t.assigned.Store(int32(int(id) % len(c.qps)))
	t.curQP.Store(t.assigned.Load())
	t.avoidQP = -1
	c.threadMu.Lock()
	c.threads[id] = t
	c.threadMu.Unlock()
	return t
}

// ID returns the thread's identifier within the connection.
func (t *Thread) ID() uint32 { return t.id }

// Conn returns the owning connection handle.
func (t *Thread) Conn() *Conn { return t.conn }

// Outstanding reports requests sent but not yet completed: the depth of
// the thread's pending-call table.
func (t *Thread) Outstanding() int { return t.pend.depth() }

// pickQP selects the QP for the next operation: the scheduler's
// assignment, deferred while responses are outstanding on a still-active
// previous QP (§5.2 migration rule), with a fallback scan when the choice
// is deactivated.
func (t *Thread) pickQP() *connQP {
	c := t.conn
	idx := t.assigned.Load()
	if idx < 0 || int(idx) >= len(c.qps) {
		idx = 0
	}
	cur := t.curQP.Load()
	if cur != idx && t.pend.depth() > 1 && c.qps[cur].active() {
		// Finish in-flight traffic on the old QP before migrating. The
		// caller has already counted the operation being placed, so only
		// a count above one means earlier responses are still due.
		idx = cur
	}
	q := c.qps[idx]
	// Scan away from a deactivated choice, and from a QP whose leader just
	// stalled on us (avoidQP) when an alternative exists — that sidestep is
	// the re-election onto a live QP.
	if !q.active() || (idx == t.avoidQP && len(c.qps) > 1) {
		for off := 1; off <= len(c.qps); off++ {
			cand := c.qps[(int(idx)+off)%len(c.qps)]
			if cand.active() && int32(cand.idx) != t.avoidQP {
				q = cand
				idx = int32(cand.idx)
				break
			}
		}
		if !q.active() && t.avoidQP >= 0 && int(t.avoidQP) < len(c.qps) &&
			c.qps[t.avoidQP].active() {
			// The avoided QP is the only active one left; use it.
			q = c.qps[t.avoidQP]
			idx = t.avoidQP
		}
	}
	if cur != idx {
		c.node.metrics.migrs.Add(1)
	}
	t.curQP.Store(idx)
	return q
}

// recordStat feeds the thread scheduler's inputs (§5.2): median request
// size, request count, and bytes since the last scheduling interval.
func (t *Thread) recordStat(size int) {
	t.statMu.Lock()
	t.median.Add(uint64(size))
	t.reqs++
	t.bytes += uint64(size)
	t.pending = true
	t.statMu.Unlock()
}

// takeStat snapshots and resets the scheduler inputs.
func (t *Thread) takeStat() (ThreadStat, bool) {
	t.statMu.Lock()
	defer t.statMu.Unlock()
	if !t.pending {
		return ThreadStat{ID: t.id}, false
	}
	s := ThreadStat{
		ID:        t.id,
		MedianReq: t.median.Median(),
		Reqs:      t.reqs,
		Bytes:     t.bytes,
	}
	t.reqs, t.bytes, t.pending = 0, 0, false
	return s, true
}

// SendRPC submits an RPC request (fl_send_rpc) and returns its sequence
// ID. The request is coalesced with concurrent threads' requests via
// FLock synchronization; the response arrives through RecvRes. SendRPC
// registers a mailbox-mode completion record, so its responses keep
// flowing through the thread's response channel while table-routed calls
// (Call, CallAsync, SendBatch) interleave freely on the same thread.
func (t *Thread) SendRPC(rpcID uint32, payload []byte) (uint64, error) {
	return t.sendRPCKey(rpcID, payload, time.Time{}, 0)
}

// sendRPCKey is SendRPC with a submit-loop deadline and an idempotency key
// in the wire metadata.
func (t *Thread) sendRPCKey(rpcID uint32, payload []byte, deadline time.Time, idemKey uint64) (uint64, error) {
	if len(payload) > t.conn.node.opts.MaxPayload {
		return 0, ErrPayloadTooLarge
	}
	rec := t.pend.get()
	rec.mailbox = true
	return t.sendAttempt(rpcID, payload, deadline, idemKey, rec)
}

// sendAttempt registers rec in the pending-call table and submits one
// attempt carrying idemKey in the wire metadata (a nonzero key marks the
// request dedup-safe on the server). The optional deadline bounds the
// submit retry loop (migrations, follower timeouts). On failure the record
// is removed again — or, if a completer raced the failing submit, its
// response lease is recycled — so no error path leaks a table entry.
func (t *Thread) sendAttempt(rpcID uint32, payload []byte, deadline time.Time, idemKey uint64, rec *callRec) (uint64, error) {
	c := t.conn
	if c.node.draining.Load() {
		t.pend.put(rec)
		return 0, ErrDraining
	}
	if c.isClosed() {
		err := c.closedErr()
		t.pend.put(rec)
		return 0, err
	}
	t.seq++
	seq := t.seq
	rec.seq = seq
	depth := t.pend.register(rec)
	c.node.pipeDepth.Observe(uint64(depth))
	for i := 0; ; i++ {
		q := t.pickQP()
		rec.qp.Store(int32(q.idx))
		c.node.trace.Record(telemetry.EvEnqueue, q.idx, t.id, seq, uint64(len(payload)))
		n := &tcqNode{
			kind:     opRPC,
			rpcID:    rpcID,
			seqID:    seq,
			threadID: t.id,
			idemKey:  idemKey,
			payload:  payload,
		}
		switch c.submit(t, q, n) {
		case stateSent:
			t.avoidQP = -1
			t.recordStat(len(payload))
			return seq, nil
		case stateTimedOut:
			// Our leader stalled before claiming us: re-elect on another
			// QP if one exists.
			t.avoidQP = int32(q.idx)
			fallthrough
		case stateMigrate:
			if !deadline.IsZero() && time.Now().After(deadline) {
				t.pend.abandon(rec)
				return 0, ErrTimeout
			}
			idleBackoff(i)
			continue // re-read assignment and retry (§5.2)
		default:
			err := c.closedErr()
			t.pend.abandon(rec)
			return 0, err
		}
	}
}

// closedErr picks the error matching why the connection is unusable: the
// recorded failure cause when the handle died (so callers can tell "give
// up" closure from retryable causes), ErrClosed when the node is merely
// shutting down.
func (c *Conn) closedErr() error {
	if c.failed.Load() {
		if p := c.failErr.Load(); p != nil {
			return *p
		}
		return ErrConnClosed
	}
	return ErrClosed
}

// pushbackErr maps server rejection statuses to their typed errors, nil
// for anything that is not a pushback.
func pushbackErr(status uint32) error {
	switch status {
	case StatusOverloaded:
		return ErrOverloaded
	case StatusDraining:
		return ErrDraining
	}
	return nil
}

// RecvRes blocks until the next RPC response for this thread arrives
// (fl_recv_res). Responses may arrive in any order when multiple requests
// are outstanding; match them by Response.Seq. Poison responses injected
// by recovery surface as typed errors: ErrQPBroken for in-flight requests
// lost to a broken QP (retry at the caller's discretion), ErrConnClosed
// when the handle is closed.
func (t *Thread) RecvRes() (Response, error) {
	select {
	case r := <-t.respCh:
		if r.err != nil {
			return Response{}, r.err
		}
		if r.Status == StatusConnClosed {
			return Response{}, ErrConnClosed
		}
		return r, nil
	case <-t.conn.closedCh():
		return t.recvDrainClosed()
	}
}

// recvDrainClosed is RecvRes's closed-node path: drain everything already
// delivered before reporting closure. Poison and closed-markers carry no
// payload, but real responses in the buffer hold pooled leases — return
// the first real one to the caller and let the rest surface on later
// RecvRes calls. Without the loop a buffer holding [poison, real] would
// lose the real response behind a single drained poison.
func (t *Thread) recvDrainClosed() (Response, error) {
	for {
		select {
		case r := <-t.respCh:
			if r.err != nil {
				if r.err == ErrQPBroken {
					// Recovery poison racing close; keep draining for a
					// real buffered response before surfacing closure.
					continue
				}
				return Response{}, r.err
			}
			if r.Status == StatusConnClosed {
				continue
			}
			return r, nil
		default:
			return Response{}, ErrClosed
		}
	}
}

// Call is the synchronous convenience wrapper around the unified
// completion engine: submit one request, wait for its completion record.
// When Options.RPCTimeout is set it behaves as CallWithDeadline with that
// budget; when Options.RetryMaxAttempts is set it routes through the
// resilient CallOpts path. Call may be freely interleaved with
// outstanding CallAsync/SendBatch requests on the same thread — every
// request owns a completion record resolved by sequence ID, so responses
// can never be misdelivered between waiters.
func (t *Thread) Call(rpcID uint32, payload []byte) (Response, error) {
	if t.conn.node.opts.RetryMaxAttempts > 0 {
		return t.CallOpts(rpcID, payload, CallOptions{})
	}
	var p Pending
	if err := t.newPending(&p, rpcID, payload, CallOptions{}, false); err != nil {
		return Response{}, err
	}
	return p.Wait()
}

// CallWithDeadline is Call bounded by a total time budget. Attempts whose
// per-attempt wait expires are retried with a fresh sequence ID and an
// exponentially growing wait until the budget runs out, then ErrTimeout.
// Each expiry is a strike against the QP in use; enough strikes break it
// and trigger the background recycle (the server end of a QP failing is
// invisible to the client NIC — timeouts are the detection signal).
//
// Delivery is at-least-once under retries: a request whose response was
// merely late may execute on the server more than once. Responses to
// abandoned attempts land on completion records the waiter has already
// walked away from, so the caller sees exactly one response.
func (t *Thread) CallWithDeadline(rpcID uint32, payload []byte, budget time.Duration) (Response, error) {
	if t.conn.node.opts.RetryMaxAttempts > 0 {
		return t.CallOpts(rpcID, payload, CallOptions{Budget: budget})
	}
	if budget <= 0 {
		return t.Call(rpcID, payload)
	}
	var p Pending
	if err := t.newPending(&p, rpcID, payload, CallOptions{Budget: budget}, false); err != nil {
		return Response{}, err
	}
	return p.Wait()
}

// memOp runs one one-sided operation through FLock synchronization and
// waits for its completion (§6). With Options.RPCTimeout set, the
// completion wait is bounded and expiry returns ErrTimeout.
func (t *Thread) memOp(wr rnic.SendWR, size int) (rnic.Status, error) {
	if t.conn.node.draining.Load() {
		return rnic.StatusQPError, ErrDraining
	}
	if t.conn.isClosed() {
		return rnic.StatusQPError, t.conn.closedErr()
	}
	// Drain a stale wakeup left over from a poisoned earlier operation (the
	// channel has capacity one and recovery sends are non-blocking, so a
	// leftover token would satisfy this op's wait prematurely).
	select {
	case <-t.memCh:
	default:
	}
	t.seq++
	var deadline time.Time
	if to := t.conn.node.opts.RPCTimeout; to > 0 {
		deadline = time.Now().Add(to)
	}
	for i := 0; ; i++ {
		q := t.pickQP()
		n := &tcqNode{
			kind:     opMem,
			seqID:    t.seq,
			threadID: t.id,
			wr:       wr,
		}
		switch t.conn.submit(t, q, n) {
		case stateSent:
			t.avoidQP = -1
			t.recordStat(size)
			if deadline.IsZero() {
				select {
				case st := <-t.memCh:
					return st, nil
				case <-t.conn.closedCh():
					return rnic.StatusQPError, t.conn.closedErr()
				}
			}
			timer := time.NewTimer(time.Until(deadline))
			defer timer.Stop()
			select {
			case st := <-t.memCh:
				return st, nil
			case <-timer.C:
				t.conn.noteTimeout(q)
				return rnic.StatusQPError, ErrTimeout
			case <-t.conn.closedCh():
				return rnic.StatusQPError, t.conn.closedErr()
			}
		case stateTimedOut:
			t.avoidQP = int32(q.idx)
			fallthrough
		case stateMigrate:
			if !deadline.IsZero() && time.Now().After(deadline) {
				return rnic.StatusQPError, ErrTimeout
			}
			idleBackoff(i)
			continue
		default:
			return rnic.StatusQPError, t.conn.closedErr()
		}
	}
}

// Read performs a one-sided RDMA read of len(dst) bytes from the remote
// region at off (fl_read).
func (t *Thread) Read(r *RemoteRegion, off int, dst []byte) error {
	if t.scratch == nil || len(dst) > t.scratch.Len() {
		return ErrReadTooLarge
	}
	st, err := t.memOp(rnic.SendWR{
		Op: rnic.OpRead, LocalMR: t.scratch, LocalOff: 0, LocalLen: len(dst),
		RKey: r.rkey, RemoteOff: off,
	}, len(dst))
	if err != nil {
		return err
	}
	if st != rnic.StatusOK {
		return statusError(st)
	}
	return t.scratch.ReadAt(dst, 0)
}

// Write performs a one-sided RDMA write of src to the remote region at
// off (fl_write).
func (t *Thread) Write(r *RemoteRegion, off int, src []byte) error {
	st, err := t.memOp(rnic.SendWR{
		Op: rnic.OpWrite, Inline: src,
		RKey: r.rkey, RemoteOff: off,
	}, len(src))
	if err != nil {
		return err
	}
	if st != rnic.StatusOK {
		return statusError(st)
	}
	return nil
}

// FetchAdd atomically adds delta to the 64-bit word at off in the remote
// region and returns its previous value (fl_fetch_and_add).
func (t *Thread) FetchAdd(r *RemoteRegion, off int, delta uint64) (uint64, error) {
	if t.scratch == nil {
		return 0, ErrClosed
	}
	st, err := t.memOp(rnic.SendWR{
		Op: rnic.OpFetchAdd, LocalMR: t.scratch, LocalOff: 0,
		RKey: r.rkey, RemoteOff: off, CompareAdd: delta,
	}, 8)
	if err != nil {
		return 0, err
	}
	if st != rnic.StatusOK {
		return 0, statusError(st)
	}
	return t.scratch.Load64(0), nil
}

// CompareSwap atomically replaces the 64-bit word at off with swap when it
// equals expect, returning the previous value (fl_cmp_and_swap). The swap
// took effect iff the returned value equals expect.
func (t *Thread) CompareSwap(r *RemoteRegion, off int, expect, swap uint64) (uint64, error) {
	if t.scratch == nil {
		return 0, ErrClosed
	}
	st, err := t.memOp(rnic.SendWR{
		Op: rnic.OpCmpSwap, LocalMR: t.scratch, LocalOff: 0,
		RKey: r.rkey, RemoteOff: off, CompareAdd: expect, Swap: swap,
	}, 8)
	if err != nil {
		return 0, err
	}
	if st != rnic.StatusOK {
		return 0, statusError(st)
	}
	return t.scratch.Load64(0), nil
}

// statusError converts a completion status to an error. QP-failure
// statuses map to ErrQPBroken — the operation was lost to a broken QP
// (now recycling in the background) and may be retried; other statuses
// are protocol errors wrapped in OpError.
func statusError(st rnic.Status) error {
	if qpFailureStatus(st) {
		return ErrQPBroken
	}
	return &OpError{Status: st}
}

// OpError reports a memory operation that completed unsuccessfully.
type OpError struct {
	// Status is the RNIC completion status.
	Status rnic.Status
}

// Error implements error.
func (e *OpError) Error() string { return "flock: operation failed: " + e.Status.String() }
