package core

import (
	"sync"
	"sync/atomic"

	"flock/internal/rnic"
	"flock/internal/stats"
)

// Thread is a per-application-thread handle on a connection. FLock
// multiplexes threads onto the connection's QP set; the thread scheduler
// (§5.2) periodically reassigns them. All RPC and memory APIs of Table 2
// hang off Thread.
//
// A Thread must be used by one goroutine at a time (it models an OS
// thread); create one per worker goroutine with Conn.RegisterThread.
type Thread struct {
	conn *Conn
	id   uint32
	rng  *stats.RNG

	seq         uint64
	outstanding atomic.Int32
	respCh      chan Response
	memCh       chan rnic.Status
	scratch     *rnic.MemRegion

	assigned atomic.Int32 // scheduler-written QP index
	curQP    int32        // thread-local: QP in current use

	// Request statistics consumed by the thread scheduler; guarded by
	// statMu because the scheduler reads-and-resets them.
	statMu  sync.Mutex
	median  *stats.RunningMedian
	reqs    uint64
	bytes   uint64
	pending bool // stats present since last scheduling
}

// Response is one RPC response delivered to a thread (fl_recv_res).
type Response struct {
	// Seq echoes the sequence ID returned by SendRPC, mapping the
	// response to its outstanding request (§4.1).
	Seq uint64
	// RPCID echoes the handler ID.
	RPCID uint32
	// Status is StatusOK, StatusNoHandler or StatusHandlerPanic.
	Status uint32
	// Data is the response payload; owned by the caller.
	Data []byte
}

// RegisterThread creates a thread handle. The initial QP assignment is
// round-robin; the thread scheduler refines it from observed behaviour.
func (c *Conn) RegisterThread() *Thread {
	id := c.nextTID.Add(1) - 1
	scratchLen := c.node.opts.MaxPayload
	if scratchLen < 64 {
		scratchLen = 64
	}
	scratch, err := c.node.dev.RegisterMR(scratchLen, 0)
	if err != nil {
		scratch = nil // node closing; ops will fail with ErrClosed
	}
	t := &Thread{
		conn:    c,
		id:      id,
		rng:     stats.NewRNG(c.node.opts.Seed*0x9E3779B9 + uint64(id) + uint64(c.remote)<<32 + 1),
		respCh:  make(chan Response, c.node.opts.RespWindow),
		memCh:   make(chan rnic.Status, 1),
		scratch: scratch,
		median:  stats.NewRunningMedian(32),
	}
	t.assigned.Store(int32(int(id) % len(c.qps)))
	t.curQP = t.assigned.Load()
	c.threadMu.Lock()
	c.threads[id] = t
	c.threadMu.Unlock()
	return t
}

// ID returns the thread's identifier within the connection.
func (t *Thread) ID() uint32 { return t.id }

// Conn returns the owning connection handle.
func (t *Thread) Conn() *Conn { return t.conn }

// Outstanding reports requests sent but not yet received.
func (t *Thread) Outstanding() int { return int(t.outstanding.Load()) }

// pickQP selects the QP for the next operation: the scheduler's
// assignment, deferred while responses are outstanding on a still-active
// previous QP (§5.2 migration rule), with a fallback scan when the choice
// is deactivated.
func (t *Thread) pickQP() *connQP {
	c := t.conn
	idx := t.assigned.Load()
	if idx < 0 || int(idx) >= len(c.qps) {
		idx = 0
	}
	cur := t.curQP
	if cur != idx && t.outstanding.Load() > 0 && c.qps[cur].active() {
		// Finish in-flight traffic on the old QP before migrating.
		idx = cur
	}
	q := c.qps[idx]
	if !q.active() {
		for off := 1; off <= len(c.qps); off++ {
			cand := c.qps[(int(idx)+off)%len(c.qps)]
			if cand.active() {
				q = cand
				idx = int32(cand.idx)
				break
			}
		}
	}
	if t.curQP != idx {
		c.node.metrics.migrs.Add(1)
	}
	t.curQP = idx
	return q
}

// recordStat feeds the thread scheduler's inputs (§5.2): median request
// size, request count, and bytes since the last scheduling interval.
func (t *Thread) recordStat(size int) {
	t.statMu.Lock()
	t.median.Add(uint64(size))
	t.reqs++
	t.bytes += uint64(size)
	t.pending = true
	t.statMu.Unlock()
}

// takeStat snapshots and resets the scheduler inputs.
func (t *Thread) takeStat() (ThreadStat, bool) {
	t.statMu.Lock()
	defer t.statMu.Unlock()
	if !t.pending {
		return ThreadStat{ID: t.id}, false
	}
	s := ThreadStat{
		ID:        t.id,
		MedianReq: t.median.Median(),
		Reqs:      t.reqs,
		Bytes:     t.bytes,
	}
	t.reqs, t.bytes, t.pending = 0, 0, false
	return s, true
}

// SendRPC submits an RPC request (fl_send_rpc) and returns its sequence
// ID. The request is coalesced with concurrent threads' requests via
// FLock synchronization; the response arrives through RecvRes.
func (t *Thread) SendRPC(rpcID uint32, payload []byte) (uint64, error) {
	if len(payload) > t.conn.node.opts.MaxPayload {
		return 0, ErrPayloadTooLarge
	}
	if t.conn.isClosed() {
		return 0, ErrClosed
	}
	t.seq++
	seq := t.seq
	t.outstanding.Add(1)
	for {
		q := t.pickQP()
		n := &tcqNode{
			kind:     opRPC,
			rpcID:    rpcID,
			seqID:    seq,
			threadID: t.id,
			payload:  payload,
		}
		switch t.conn.submit(t, q, n) {
		case stateSent:
			t.recordStat(len(payload))
			return seq, nil
		case stateMigrate:
			continue // re-read assignment and retry (§5.2)
		default:
			t.outstanding.Add(-1)
			return 0, ErrClosed
		}
	}
}

// RecvRes blocks until the next RPC response for this thread arrives
// (fl_recv_res). Responses may arrive in any order when multiple requests
// are outstanding; match them by Response.Seq.
func (t *Thread) RecvRes() (Response, error) {
	select {
	case r := <-t.respCh:
		if r.Status == StatusConnClosed {
			return Response{}, ErrClosed
		}
		return r, nil
	case <-t.conn.closedCh():
		// Drain anything already delivered before reporting closure.
		select {
		case r := <-t.respCh:
			return r, nil
		default:
			return Response{}, ErrClosed
		}
	}
}

// Call is the synchronous convenience wrapper: SendRPC then RecvRes.
// Don't interleave Call with outstanding async requests on the same
// thread — the response it returns is matched by sequence ID, and any
// other responses received while waiting are surfaced to RecvRes callers
// in order, which a mixed usage pattern would confuse.
func (t *Thread) Call(rpcID uint32, payload []byte) (Response, error) {
	seq, err := t.SendRPC(rpcID, payload)
	if err != nil {
		return Response{}, err
	}
	for {
		r, err := t.RecvRes()
		if err != nil {
			return Response{}, err
		}
		if r.Seq == seq {
			return r, nil
		}
		// A stale response from a previous timed-out exchange; drop it.
	}
}

// memOp runs one one-sided operation through FLock synchronization and
// waits for its completion (§6).
func (t *Thread) memOp(wr rnic.SendWR, size int) (rnic.Status, error) {
	if t.conn.isClosed() {
		return rnic.StatusQPError, ErrClosed
	}
	t.seq++
	for {
		q := t.pickQP()
		n := &tcqNode{
			kind:     opMem,
			seqID:    t.seq,
			threadID: t.id,
			wr:       wr,
		}
		switch t.conn.submit(t, q, n) {
		case stateSent:
			t.recordStat(size)
			select {
			case st := <-t.memCh:
				return st, nil
			case <-t.conn.closedCh():
				return rnic.StatusQPError, ErrClosed
			}
		case stateMigrate:
			continue
		default:
			return rnic.StatusQPError, ErrClosed
		}
	}
}

// Read performs a one-sided RDMA read of len(dst) bytes from the remote
// region at off (fl_read).
func (t *Thread) Read(r *RemoteRegion, off int, dst []byte) error {
	if t.scratch == nil || len(dst) > t.scratch.Len() {
		return ErrReadTooLarge
	}
	st, err := t.memOp(rnic.SendWR{
		Op: rnic.OpRead, LocalMR: t.scratch, LocalOff: 0, LocalLen: len(dst),
		RKey: r.rkey, RemoteOff: off,
	}, len(dst))
	if err != nil {
		return err
	}
	if st != rnic.StatusOK {
		return statusError(st)
	}
	return t.scratch.ReadAt(dst, 0)
}

// Write performs a one-sided RDMA write of src to the remote region at
// off (fl_write).
func (t *Thread) Write(r *RemoteRegion, off int, src []byte) error {
	st, err := t.memOp(rnic.SendWR{
		Op: rnic.OpWrite, Inline: src,
		RKey: r.rkey, RemoteOff: off,
	}, len(src))
	if err != nil {
		return err
	}
	if st != rnic.StatusOK {
		return statusError(st)
	}
	return nil
}

// FetchAdd atomically adds delta to the 64-bit word at off in the remote
// region and returns its previous value (fl_fetch_and_add).
func (t *Thread) FetchAdd(r *RemoteRegion, off int, delta uint64) (uint64, error) {
	if t.scratch == nil {
		return 0, ErrClosed
	}
	st, err := t.memOp(rnic.SendWR{
		Op: rnic.OpFetchAdd, LocalMR: t.scratch, LocalOff: 0,
		RKey: r.rkey, RemoteOff: off, CompareAdd: delta,
	}, 8)
	if err != nil {
		return 0, err
	}
	if st != rnic.StatusOK {
		return 0, statusError(st)
	}
	return t.scratch.Load64(0), nil
}

// CompareSwap atomically replaces the 64-bit word at off with swap when it
// equals expect, returning the previous value (fl_cmp_and_swap). The swap
// took effect iff the returned value equals expect.
func (t *Thread) CompareSwap(r *RemoteRegion, off int, expect, swap uint64) (uint64, error) {
	if t.scratch == nil {
		return 0, ErrClosed
	}
	st, err := t.memOp(rnic.SendWR{
		Op: rnic.OpCmpSwap, LocalMR: t.scratch, LocalOff: 0,
		RKey: r.rkey, RemoteOff: off, CompareAdd: expect, Swap: swap,
	}, 8)
	if err != nil {
		return 0, err
	}
	if st != rnic.StatusOK {
		return 0, statusError(st)
	}
	return t.scratch.Load64(0), nil
}

// statusError converts a completion status to an error.
func statusError(st rnic.Status) error {
	return &OpError{Status: st}
}

// OpError reports a memory operation that completed unsuccessfully.
type OpError struct {
	// Status is the RNIC completion status.
	Status rnic.Status
}

// Error implements error.
func (e *OpError) Error() string { return "flock: operation failed: " + e.Status.String() }
