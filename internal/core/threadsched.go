package core

import (
	"sort"
	"time"
)

// This file is the sender-side thread scheduler (§5.2): a dedicated client
// goroutine that collects per-thread request statistics, maps threads to
// the currently active QPs with Algorithm 1, and publishes assignments
// that threads pick up on their next operation.

// ThreadStat is one thread's behaviour since the last scheduling interval —
// the inputs of Algorithm 1.
type ThreadStat struct {
	// ID identifies the thread within its connection.
	ID uint32
	// MedianReq is the median request size in bytes.
	MedianReq uint64
	// Reqs is the number of requests sent.
	Reqs uint64
	// Bytes is the total payload bytes sent.
	Bytes uint64
}

// AssignThreads implements Algorithm 1 of the paper: sort threads first by
// median request size then by request count, and pack them onto QP slots
// [0, activeQPs) by byte quota so each active QP carries a similar load
// and threads with small requests share QPs (maximizing coalescing) while
// large-payload threads land on their own (avoiding head-of-line
// blocking).
//
// The returned map gives each thread a slot index in [0, activeQPs); the
// caller maps slots to concrete active QP indexes. Pure function, shared
// with the DES models.
func AssignThreads(threads []ThreadStat, activeQPs int) map[uint32]int {
	asg := make(map[uint32]int, len(threads))
	if activeQPs <= 0 || len(threads) == 0 {
		return asg
	}
	sorted := make([]ThreadStat, len(threads))
	copy(sorted, threads)
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].MedianReq != sorted[b].MedianReq {
			return sorted[a].MedianReq < sorted[b].MedianReq
		}
		if sorted[a].Reqs != sorted[b].Reqs {
			return sorted[a].Reqs > sorted[b].Reqs
		}
		return sorted[a].ID < sorted[b].ID
	})
	var total uint64
	for _, t := range sorted {
		total += t.Bytes
	}
	if total == 0 {
		// No byte information: spread round-robin.
		for i, t := range sorted {
			asg[t.ID] = i % activeQPs
		}
		return asg
	}
	quota := total / uint64(activeQPs)
	if quota == 0 {
		quota = 1
	}
	qpID, load := 0, uint64(0)
	for _, t := range sorted {
		load += t.Bytes
		asg[t.ID] = qpID
		if load >= quota && qpID < activeQPs-1 {
			qpID++
			load = 0
		}
	}
	return asg
}

// threadScheduler is the client-side scheduler main loop.
func (n *Node) threadScheduler() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.opts.SchedInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
		}
		for _, c := range n.snapshotConns() {
			n.scheduleConn(c)
		}
	}
}

// scheduleConn runs one scheduling interval for one connection.
func (n *Node) scheduleConn(c *Conn) {
	active := c.ActiveQPs()
	if len(active) == 0 {
		return // nothing usable; threads fall back to scanning
	}
	threads := c.snapshotThreads()
	if n.opts.DisableThreadSched {
		// Ablation mode (Figure 11 "without sender-side thread
		// scheduling"): keep static assignments, only stepping threads
		// off deactivated QPs.
		for _, t := range threads {
			cur := int(t.assigned.Load())
			if cur < 0 || cur >= len(c.qps) || !c.qps[cur].active() {
				t.assigned.Store(int32(active[int(t.id)%len(active)]))
			}
		}
		return
	}
	var statted []ThreadStat
	var idle []*Thread
	byID := make(map[uint32]*Thread, len(threads))
	for _, t := range threads {
		byID[t.id] = t
		if s, ok := t.takeStat(); ok {
			statted = append(statted, s)
		} else {
			idle = append(idle, t)
		}
	}
	asg := AssignThreads(statted, len(active))
	for tid, slot := range asg {
		byID[tid].assigned.Store(int32(active[slot]))
	}
	// Threads with no recent requests keep their QP unless it was
	// deactivated (the paper assigns brand-new threads randomly and fixes
	// them up next interval; round-robin is our deterministic stand-in).
	for _, t := range idle {
		cur := int(t.assigned.Load())
		if cur < 0 || cur >= len(c.qps) || !c.qps[cur].active() {
			t.assigned.Store(int32(active[int(t.id)%len(active)]))
		}
	}
}
