package core

import (
	"encoding/binary"
	"fmt"
)

// Wire format of a coalesced message (§4.1, Figure 5).
//
//	header (32 B):
//	  +0  totalLen  uint32  whole message incl. header and trailing canary
//	  +4  count     uint32  number of items
//	  +8  canary    uint64  random, repeated at the end of the message
//	  +16 piggyHead uint64  sender's consumed head of the opposite ring
//	  +24 credit    uint32  responses: credit grant delta for this QP
//	  +28 flags     uint32  reserved
//	item (32 B metadata, then payload padded to 8 B):
//	  +0  size     uint32  payload bytes
//	  +4  threadID uint32
//	  +8  seqID    uint64  thread-local monotonically increasing (§4.1)
//	  +16 rpcID    uint32  handler ID (requests) / echoed (responses)
//	  +20 status   uint32  response status
//	  +24 idemKey  uint64  idempotency key; 0 = not idempotent (v2 only)
//	trailer (8 B): canary uint64
//
// The receiver polls the first word at its Head; a nonzero totalLen with
// matching canaries at both ends means the message is complete, relying on
// RDMA writes becoming visible in ascending address order (§4.1). A
// totalLen of wrapMarker tells the receiver the producer wrapped to offset
// zero.
//
// Item-metadata versioning: the original format carried 24-byte metadata
// without idemKey. Encoders now always emit the 32-byte v2 layout and set
// flagItemMetaV2 in the header; the decoder accepts both, selecting the
// metadata width from the flag, so frames captured from (or produced by)
// the v1 format still decode.
const (
	headerBytes     = 32
	itemMetaV1Bytes = 24 // legacy metadata layout, no idemKey
	itemMetaBytes   = 32 // v2 metadata layout, emitted by this version
	trailerBytes    = 8
	wrapMarker      = ^uint32(0)

	// flagItemMetaV2 in header.flags marks 32-byte item metadata.
	flagItemMetaV2 uint32 = 1 << 0
)

// msgSpace returns the on-ring footprint of a message with the given
// payload sizes.
func msgSpace(sizes []int) int {
	n := headerBytes + trailerBytes
	for _, s := range sizes {
		n += itemMetaBytes + pad8(s)
	}
	return n
}

// itemSpace returns the footprint of one item.
func itemSpace(payload int) int { return itemMetaBytes + pad8(payload) }

// pad8 rounds n up to a multiple of 8.
func pad8(n int) int { return (n + 7) &^ 7 }

// header is the decoded message header.
type header struct {
	totalLen  uint32
	count     uint32
	canary    uint64
	piggyHead uint64
	credit    uint32
	flags     uint32
}

// putHeader encodes h into b (len >= headerBytes).
func putHeader(b []byte, h header) {
	binary.LittleEndian.PutUint32(b[0:], h.totalLen)
	binary.LittleEndian.PutUint32(b[4:], h.count)
	binary.LittleEndian.PutUint64(b[8:], h.canary)
	binary.LittleEndian.PutUint64(b[16:], h.piggyHead)
	binary.LittleEndian.PutUint32(b[24:], h.credit)
	binary.LittleEndian.PutUint32(b[28:], h.flags)
}

// getHeader decodes a header from b.
func getHeader(b []byte) header {
	return header{
		totalLen:  binary.LittleEndian.Uint32(b[0:]),
		count:     binary.LittleEndian.Uint32(b[4:]),
		canary:    binary.LittleEndian.Uint64(b[8:]),
		piggyHead: binary.LittleEndian.Uint64(b[16:]),
		credit:    binary.LittleEndian.Uint32(b[24:]),
		flags:     binary.LittleEndian.Uint32(b[28:]),
	}
}

// itemMeta is the decoded per-item metadata.
type itemMeta struct {
	size     uint32
	threadID uint32
	seqID    uint64
	rpcID    uint32
	status   uint32
	idemKey  uint64 // zero on frames decoded from the v1 layout
}

// putItemMeta encodes m into b (len >= itemMetaBytes) in the v2 layout.
func putItemMeta(b []byte, m itemMeta) {
	binary.LittleEndian.PutUint32(b[0:], m.size)
	binary.LittleEndian.PutUint32(b[4:], m.threadID)
	binary.LittleEndian.PutUint64(b[8:], m.seqID)
	binary.LittleEndian.PutUint32(b[16:], m.rpcID)
	binary.LittleEndian.PutUint32(b[20:], m.status)
	binary.LittleEndian.PutUint64(b[24:], m.idemKey)
}

// putItemMetaV1 encodes m into b (len >= itemMetaV1Bytes) in the legacy
// layout, dropping idemKey. Kept for old/new frame-compatibility tests.
func putItemMetaV1(b []byte, m itemMeta) {
	binary.LittleEndian.PutUint32(b[0:], m.size)
	binary.LittleEndian.PutUint32(b[4:], m.threadID)
	binary.LittleEndian.PutUint64(b[8:], m.seqID)
	binary.LittleEndian.PutUint32(b[16:], m.rpcID)
	binary.LittleEndian.PutUint32(b[20:], m.status)
}

// getItemMeta decodes v2 per-item metadata from b.
func getItemMeta(b []byte) itemMeta {
	m := getItemMetaV1(b)
	m.idemKey = binary.LittleEndian.Uint64(b[24:])
	return m
}

// getItemMetaV1 decodes legacy per-item metadata from b; idemKey is zero.
func getItemMetaV1(b []byte) itemMeta {
	return itemMeta{
		size:     binary.LittleEndian.Uint32(b[0:]),
		threadID: binary.LittleEndian.Uint32(b[4:]),
		seqID:    binary.LittleEndian.Uint64(b[8:]),
		rpcID:    binary.LittleEndian.Uint32(b[16:]),
		status:   binary.LittleEndian.Uint32(b[20:]),
	}
}

// decodedItem is one request or response extracted from a message.
type decodedItem struct {
	meta itemMeta
	data []byte // slice of the decode buffer; copy before retaining
}

// decodeMessage validates and splits a complete message. buf must hold the
// entire message (totalLen bytes). It returns the header and items, or an
// error if the message is structurally corrupt. Canary validation is the
// caller's business (the caller polls; decode assumes completeness).
func decodeMessage(buf []byte) (header, []decodedItem, error) {
	return decodeMessageInto(buf, nil)
}

// decodeMessageInto is decodeMessage appending into items[:0], so a
// polling loop can reuse one item slice across messages instead of
// allocating per poll.
func decodeMessageInto(buf []byte, items []decodedItem) (header, []decodedItem, error) {
	if len(buf) < headerBytes+trailerBytes {
		return header{}, nil, fmt.Errorf("core: message shorter than framing (%d)", len(buf))
	}
	h := getHeader(buf)
	if int(h.totalLen) != len(buf) {
		return header{}, nil, fmt.Errorf("core: totalLen %d != buffer %d", h.totalLen, len(buf))
	}
	tail := binary.LittleEndian.Uint64(buf[len(buf)-trailerBytes:])
	if tail != h.canary {
		return header{}, nil, fmt.Errorf("core: canary mismatch")
	}
	// The header flag selects the item-metadata width: v2 frames carry the
	// 32-byte layout with idemKey, v1 frames the legacy 24-byte one.
	metaBytes := itemMetaV1Bytes
	if h.flags&flagItemMetaV2 != 0 {
		metaBytes = itemMetaBytes
	}
	items = items[:0]
	off := headerBytes
	for i := uint32(0); i < h.count; i++ {
		if off+metaBytes > len(buf)-trailerBytes {
			return header{}, nil, fmt.Errorf("core: item %d metadata overruns message", i)
		}
		var m itemMeta
		if metaBytes == itemMetaBytes {
			m = getItemMeta(buf[off:])
		} else {
			m = getItemMetaV1(buf[off:])
		}
		off += metaBytes
		end := off + pad8(int(m.size))
		if int(m.size) > pad8(int(m.size)) || end > len(buf)-trailerBytes {
			return header{}, nil, fmt.Errorf("core: item %d payload overruns message", i)
		}
		items = append(items, decodedItem{meta: m, data: buf[off : off+int(m.size)]})
		off = end
	}
	if off != len(buf)-trailerBytes {
		return header{}, nil, fmt.Errorf("core: message has %d trailing bytes", len(buf)-trailerBytes-off)
	}
	return h, items, nil
}
