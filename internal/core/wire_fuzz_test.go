package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Native fuzz targets for the wire format (§4.1): the coalesced-message
// framing and the per-item metadata — the TCQ slot header the leader
// stages for each follower. Seed corpus lives in testdata/fuzz; run with
//
//	go test -fuzz=FuzzDecodeMessage -fuzztime=30s ./internal/core
//
// The targets assert three properties: the decoder never panics on
// arbitrary bytes (it guards a ring the remote side writes), encode→decode
// is the identity for every representable value, and v1 frames (24-byte
// item metadata, no idempotency key) keep decoding next to the v2 layout
// this version emits.

// encodeTestMessage builds a valid v2 message from payloads using the
// production encode helpers, mirroring the leader's staging layout.
func encodeTestMessage(h header, payloads [][]byte) []byte {
	sizes := make([]int, len(payloads))
	for i, p := range payloads {
		sizes[i] = len(p)
	}
	h.totalLen = uint32(msgSpace(sizes))
	h.count = uint32(len(payloads))
	h.flags |= flagItemMetaV2
	buf := make([]byte, h.totalLen)
	putHeader(buf, h)
	off := headerBytes
	for i, p := range payloads {
		putItemMeta(buf[off:], itemMeta{
			size:     uint32(len(p)),
			threadID: uint32(i),
			seqID:    uint64(i) * 7,
			rpcID:    uint32(i) + 1,
			status:   0,
			idemKey:  uint64(i) * 13,
		})
		off += itemMetaBytes
		copy(buf[off:], p)
		off += pad8(len(p))
	}
	binary.LittleEndian.PutUint64(buf[len(buf)-trailerBytes:], h.canary)
	return buf
}

// encodeTestMessageV1 builds the same message in the legacy v1 layout:
// 24-byte item metadata, flag clear. Retired encoders produced exactly
// this; the decoder must keep accepting it.
func encodeTestMessageV1(h header, payloads [][]byte) []byte {
	msgLen := headerBytes + trailerBytes
	for _, p := range payloads {
		msgLen += itemMetaV1Bytes + pad8(len(p))
	}
	h.totalLen = uint32(msgLen)
	h.count = uint32(len(payloads))
	h.flags &^= flagItemMetaV2
	buf := make([]byte, msgLen)
	putHeader(buf, h)
	off := headerBytes
	for i, p := range payloads {
		putItemMetaV1(buf[off:], itemMeta{
			size:     uint32(len(p)),
			threadID: uint32(i),
			seqID:    uint64(i) * 7,
			rpcID:    uint32(i) + 1,
			status:   0,
		})
		off += itemMetaV1Bytes
		copy(buf[off:], p)
		off += pad8(len(p))
	}
	binary.LittleEndian.PutUint64(buf[len(buf)-trailerBytes:], h.canary)
	return buf
}

func FuzzDecodeMessage(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, headerBytes+trailerBytes))
	f.Add(encodeTestMessage(header{canary: 0xfeedface}, [][]byte{[]byte("hello")}))
	f.Add(encodeTestMessage(header{canary: 1, piggyHead: 42, credit: 3},
		[][]byte{nil, []byte("x"), bytes.Repeat([]byte{0xab}, 100)}))
	// Legacy v1 frames must stay decodable.
	f.Add(encodeTestMessageV1(header{canary: 0xfeedface}, [][]byte{[]byte("hello")}))
	f.Add(encodeTestMessageV1(header{canary: 5, piggyHead: 9},
		[][]byte{nil, []byte("legacy")}))
	// A frame carrying pushback statuses and idempotency keys.
	f.Add(encodeTestMessage(header{canary: 11, flags: flagItemMetaV2},
		[][]byte{[]byte("overloaded"), []byte("draining")}))
	// Torn/corrupt variants of a valid message.
	m := encodeTestMessage(header{canary: 7}, [][]byte{[]byte("payload")})
	f.Add(m[:len(m)-1])
	bad := append([]byte(nil), m...)
	bad[4] = 200 // count no longer matches the items present
	f.Add(bad)
	// A v2 frame whose flag was stripped: the decoder re-parses the bytes
	// as v1 metadata and must reject or mis-see it without panicking.
	stripped := append([]byte(nil), m...)
	binary.LittleEndian.PutUint32(stripped[28:], 0)
	f.Add(stripped)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, items, err := decodeMessage(data) // must not panic, whatever the bytes
		if err != nil {
			return
		}
		// Structural postconditions of a successful decode.
		if int(h.totalLen) != len(data) {
			t.Fatalf("accepted totalLen %d for %d bytes", h.totalLen, len(data))
		}
		if uint32(len(items)) != h.count {
			t.Fatalf("returned %d items, header says %d", len(items), h.count)
		}
		for i, it := range items {
			if int(it.meta.size) != len(it.data) {
				t.Fatalf("item %d: meta size %d, data %d", i, it.meta.size, len(it.data))
			}
			if h.flags&flagItemMetaV2 == 0 && it.meta.idemKey != 0 {
				t.Fatalf("item %d: v1 frame decoded a nonzero idemKey %d", i, it.meta.idemKey)
			}
		}
		// Decoding is deterministic, and the reuse path agrees with the
		// allocating path.
		h2, items2, err2 := decodeMessageInto(data, make([]decodedItem, 0, 4))
		if err2 != nil || h2 != h || len(items2) != len(items) {
			t.Fatalf("decodeMessageInto diverged: %v %+v", err2, h2)
		}
		for i := range items {
			if items2[i].meta != items[i].meta || !bytes.Equal(items2[i].data, items[i].data) {
				t.Fatalf("item %d diverged between decode paths", i)
			}
		}
	})
}

func FuzzMessageRoundTrip(f *testing.F) {
	f.Add(uint64(0xdeadbeef), uint64(12), uint32(4), []byte("hello world"))
	f.Add(uint64(1), uint64(0), uint32(0), []byte{})
	f.Add(uint64(0), uint64(1<<40), uint32(1<<20), bytes.Repeat([]byte{0x5a}, 300))

	f.Fuzz(func(t *testing.T, canary, piggyHead uint64, credit uint32, blob []byte) {
		// Split the blob into up to 5 items (including empty ones) and
		// round-trip the whole message.
		var payloads [][]byte
		for i := 0; i < 5 && len(blob) > 0; i++ {
			n := len(blob) / (5 - i)
			payloads = append(payloads, blob[:n])
			blob = blob[n:]
		}
		buf := encodeTestMessage(header{canary: canary, piggyHead: piggyHead, credit: credit}, payloads)
		h, items, err := decodeMessage(buf)
		if err != nil {
			t.Fatalf("valid message rejected: %v", err)
		}
		if h.canary != canary || h.piggyHead != piggyHead || h.credit != credit {
			t.Fatalf("header fields changed: %+v", h)
		}
		if len(items) != len(payloads) {
			t.Fatalf("%d items out, %d in", len(items), len(payloads))
		}
		for i, p := range payloads {
			if !bytes.Equal(items[i].data, p) {
				t.Fatalf("item %d payload changed: %q != %q", i, items[i].data, p)
			}
		}

		// Old/new frame compatibility: the v1 encoding of the same items
		// must decode to identical metadata and payloads, idemKey aside.
		buf1 := encodeTestMessageV1(header{canary: canary, piggyHead: piggyHead, credit: credit}, payloads)
		h1, items1, err := decodeMessage(buf1)
		if err != nil {
			t.Fatalf("valid v1 message rejected: %v", err)
		}
		if h1.canary != canary || h1.piggyHead != piggyHead || h1.credit != credit {
			t.Fatalf("v1 header fields changed: %+v", h1)
		}
		if len(items1) != len(items) {
			t.Fatalf("v1 decoded %d items, v2 %d", len(items1), len(items))
		}
		for i := range items {
			m2, m1 := items[i].meta, items1[i].meta
			m2.idemKey = 0
			if m1 != m2 {
				t.Fatalf("item %d meta diverged across layouts: v1 %+v, v2 %+v", i, m1, items[i].meta)
			}
			if !bytes.Equal(items1[i].data, items[i].data) {
				t.Fatalf("item %d payload diverged across layouts", i)
			}
		}
	})
}

func FuzzHeaderRoundTrip(f *testing.F) {
	f.Add(uint32(64), uint32(1), uint64(0xfeedface), uint64(9), uint32(2), uint32(0))
	f.Add(^uint32(0), ^uint32(0), ^uint64(0), ^uint64(0), ^uint32(0), ^uint32(0))
	f.Add(uint32(72), uint32(1), uint64(3), uint64(0), uint32(0), flagItemMetaV2)
	f.Fuzz(func(t *testing.T, totalLen, count uint32, canary, piggyHead uint64, credit, flags uint32) {
		in := header{totalLen: totalLen, count: count, canary: canary,
			piggyHead: piggyHead, credit: credit, flags: flags}
		var buf [headerBytes]byte
		putHeader(buf[:], in)
		if out := getHeader(buf[:]); out != in {
			t.Fatalf("header round trip: %+v != %+v", out, in)
		}
	})
}

func FuzzItemMetaRoundTrip(f *testing.F) {
	f.Add(uint32(8), uint32(3), uint64(77), uint32(1), uint32(0))
	f.Add(^uint32(0), ^uint32(0), ^uint64(0), ^uint32(0), ^uint32(0))
	f.Fuzz(func(t *testing.T, size, threadID uint32, seqID uint64, rpcID, status uint32) {
		in := itemMeta{size: size, threadID: threadID, seqID: seqID, rpcID: rpcID, status: status}
		var buf [itemMetaBytes]byte
		putItemMeta(buf[:], in)
		if out := getItemMeta(buf[:]); out != in {
			t.Fatalf("item meta round trip: %+v != %+v", out, in)
		}
	})
}

// FuzzItemMetaV2RoundTrip covers the full v2 metadata including the
// idempotency key and the v1 truncation relationship: dropping the key is
// exactly what the legacy layout encodes.
func FuzzItemMetaV2RoundTrip(f *testing.F) {
	f.Add(uint32(8), uint32(3), uint64(77), uint32(1), uint32(4), uint64(0xabcdef))
	f.Add(^uint32(0), ^uint32(0), ^uint64(0), ^uint32(0), ^uint32(0), ^uint64(0))
	f.Add(uint32(0), uint32(0), uint64(0), uint32(0), uint32(5), uint64(1))
	f.Fuzz(func(t *testing.T, size, threadID uint32, seqID uint64, rpcID, status uint32, idemKey uint64) {
		in := itemMeta{size: size, threadID: threadID, seqID: seqID,
			rpcID: rpcID, status: status, idemKey: idemKey}
		var buf [itemMetaBytes]byte
		putItemMeta(buf[:], in)
		if out := getItemMeta(buf[:]); out != in {
			t.Fatalf("v2 item meta round trip: %+v != %+v", out, in)
		}
		var buf1 [itemMetaV1Bytes]byte
		putItemMetaV1(buf1[:], in)
		want := in
		want.idemKey = 0
		if out := getItemMetaV1(buf1[:]); out != want {
			t.Fatalf("v1 item meta round trip: %+v != %+v", out, want)
		}
	})
}

// TestFuzzCorpusFresh regenerates the checked-in seed corpus for the
// format-sensitive targets whenever the wire layout changes, and fails the
// run that found them stale so the refresh gets committed. The files are
// deterministic, so a clean tree stays clean.
func TestFuzzCorpusFresh(t *testing.T) {
	entries := map[string][]byte{
		"testdata/fuzz/FuzzDecodeMessage/seed-v2-single": corpusBytes(
			encodeTestMessage(header{canary: 0xfeedface}, [][]byte{[]byte("hello")})),
		"testdata/fuzz/FuzzDecodeMessage/seed-v2-idem": corpusBytes(
			encodeTestMessage(header{canary: 11}, [][]byte{[]byte("idempotent"), nil})),
		"testdata/fuzz/FuzzDecodeMessage/seed-v1-legacy": corpusBytes(
			encodeTestMessageV1(header{canary: 5, piggyHead: 9}, [][]byte{nil, []byte("legacy")})),
		"testdata/fuzz/FuzzItemMetaV2RoundTrip/seed-basic": []byte(
			"go test fuzz v1\nuint32(8)\nuint32(3)\nuint64(77)\nuint32(1)\nuint32(4)\nuint64(11259375)\n"),
		"testdata/fuzz/FuzzItemMetaV2RoundTrip/seed-max": []byte(
			"go test fuzz v1\nuint32(4294967295)\nuint32(4294967295)\nuint64(18446744073709551615)\nuint32(4294967295)\nuint32(4294967295)\nuint64(18446744073709551615)\n"),
	}
	for path, want := range entries {
		got, err := os.ReadFile(path)
		if err == nil && bytes.Equal(got, want) {
			continue
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Errorf("seed corpus %s was stale; regenerated — commit the refresh", path)
	}
}

// corpusBytes renders one []byte fuzz-corpus entry in the go test corpus
// file format.
func corpusBytes(b []byte) []byte {
	return []byte(fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b))
}
