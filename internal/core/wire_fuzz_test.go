package core

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Native fuzz targets for the wire format (§4.1): the coalesced-message
// framing and the per-item metadata — the TCQ slot header the leader
// stages for each follower. Seed corpus lives in testdata/fuzz; run with
//
//	go test -fuzz=FuzzDecodeMessage -fuzztime=30s ./internal/core
//
// The targets assert two properties: the decoder never panics on
// arbitrary bytes (it guards a ring the remote side writes), and
// encode→decode is the identity for every representable value.

// encodeTestMessage builds a valid message from payloads using the
// production encode helpers, mirroring the leader's staging layout.
func encodeTestMessage(h header, payloads [][]byte) []byte {
	sizes := make([]int, len(payloads))
	for i, p := range payloads {
		sizes[i] = len(p)
	}
	h.totalLen = uint32(msgSpace(sizes))
	h.count = uint32(len(payloads))
	buf := make([]byte, h.totalLen)
	putHeader(buf, h)
	off := headerBytes
	for i, p := range payloads {
		putItemMeta(buf[off:], itemMeta{
			size:     uint32(len(p)),
			threadID: uint32(i),
			seqID:    uint64(i) * 7,
			rpcID:    uint32(i) + 1,
			status:   0,
		})
		off += itemMetaBytes
		copy(buf[off:], p)
		off += pad8(len(p))
	}
	binary.LittleEndian.PutUint64(buf[len(buf)-trailerBytes:], h.canary)
	return buf
}

func FuzzDecodeMessage(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, headerBytes+trailerBytes))
	f.Add(encodeTestMessage(header{canary: 0xfeedface}, [][]byte{[]byte("hello")}))
	f.Add(encodeTestMessage(header{canary: 1, piggyHead: 42, credit: 3},
		[][]byte{nil, []byte("x"), bytes.Repeat([]byte{0xab}, 100)}))
	// Torn/corrupt variants of a valid message.
	m := encodeTestMessage(header{canary: 7}, [][]byte{[]byte("payload")})
	f.Add(m[:len(m)-1])
	bad := append([]byte(nil), m...)
	bad[4] = 200 // count no longer matches the items present
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, items, err := decodeMessage(data) // must not panic, whatever the bytes
		if err != nil {
			return
		}
		// Structural postconditions of a successful decode.
		if int(h.totalLen) != len(data) {
			t.Fatalf("accepted totalLen %d for %d bytes", h.totalLen, len(data))
		}
		if uint32(len(items)) != h.count {
			t.Fatalf("returned %d items, header says %d", len(items), h.count)
		}
		for i, it := range items {
			if int(it.meta.size) != len(it.data) {
				t.Fatalf("item %d: meta size %d, data %d", i, it.meta.size, len(it.data))
			}
		}
		// Decoding is deterministic, and the reuse path agrees with the
		// allocating path.
		h2, items2, err2 := decodeMessageInto(data, make([]decodedItem, 0, 4))
		if err2 != nil || h2 != h || len(items2) != len(items) {
			t.Fatalf("decodeMessageInto diverged: %v %+v", err2, h2)
		}
		for i := range items {
			if items2[i].meta != items[i].meta || !bytes.Equal(items2[i].data, items[i].data) {
				t.Fatalf("item %d diverged between decode paths", i)
			}
		}
	})
}

func FuzzMessageRoundTrip(f *testing.F) {
	f.Add(uint64(0xdeadbeef), uint64(12), uint32(4), []byte("hello world"))
	f.Add(uint64(1), uint64(0), uint32(0), []byte{})
	f.Add(uint64(0), uint64(1<<40), uint32(1<<20), bytes.Repeat([]byte{0x5a}, 300))

	f.Fuzz(func(t *testing.T, canary, piggyHead uint64, credit uint32, blob []byte) {
		// Split the blob into up to 5 items (including empty ones) and
		// round-trip the whole message.
		var payloads [][]byte
		for i := 0; i < 5 && len(blob) > 0; i++ {
			n := len(blob) / (5 - i)
			payloads = append(payloads, blob[:n])
			blob = blob[n:]
		}
		buf := encodeTestMessage(header{canary: canary, piggyHead: piggyHead, credit: credit}, payloads)
		h, items, err := decodeMessage(buf)
		if err != nil {
			t.Fatalf("valid message rejected: %v", err)
		}
		if h.canary != canary || h.piggyHead != piggyHead || h.credit != credit {
			t.Fatalf("header fields changed: %+v", h)
		}
		if len(items) != len(payloads) {
			t.Fatalf("%d items out, %d in", len(items), len(payloads))
		}
		for i, p := range payloads {
			if !bytes.Equal(items[i].data, p) {
				t.Fatalf("item %d payload changed: %q != %q", i, items[i].data, p)
			}
		}
	})
}

func FuzzHeaderRoundTrip(f *testing.F) {
	f.Add(uint32(64), uint32(1), uint64(0xfeedface), uint64(9), uint32(2), uint32(0))
	f.Add(^uint32(0), ^uint32(0), ^uint64(0), ^uint64(0), ^uint32(0), ^uint32(0))
	f.Fuzz(func(t *testing.T, totalLen, count uint32, canary, piggyHead uint64, credit, flags uint32) {
		in := header{totalLen: totalLen, count: count, canary: canary,
			piggyHead: piggyHead, credit: credit, flags: flags}
		var buf [headerBytes]byte
		putHeader(buf[:], in)
		if out := getHeader(buf[:]); out != in {
			t.Fatalf("header round trip: %+v != %+v", out, in)
		}
	})
}

func FuzzItemMetaRoundTrip(f *testing.F) {
	f.Add(uint32(8), uint32(3), uint64(77), uint32(1), uint32(0))
	f.Add(^uint32(0), ^uint32(0), ^uint64(0), ^uint32(0), ^uint32(0))
	f.Fuzz(func(t *testing.T, size, threadID uint32, seqID uint64, rpcID, status uint32) {
		in := itemMeta{size: size, threadID: threadID, seqID: seqID, rpcID: rpcID, status: status}
		var buf [itemMetaBytes]byte
		putItemMeta(buf[:], in)
		if out := getItemMeta(buf[:]); out != in {
			t.Fatalf("item meta round trip: %+v != %+v", out, in)
		}
	})
}
