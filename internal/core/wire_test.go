package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

// buildMessage encodes a full message the way the leader does, for tests.
func buildMessage(items []itemMeta, payloads [][]byte, canary, piggy uint64) []byte {
	msgLen := headerBytes + trailerBytes
	for i := range payloads {
		msgLen += itemSpace(len(payloads[i]))
	}
	buf := make([]byte, msgLen)
	putHeader(buf, header{
		totalLen:  uint32(msgLen),
		count:     uint32(len(items)),
		canary:    canary,
		piggyHead: piggy,
		flags:     flagItemMetaV2,
	})
	off := headerBytes
	for i := range items {
		m := items[i]
		m.size = uint32(len(payloads[i]))
		putItemMeta(buf[off:], m)
		copy(buf[off+itemMetaBytes:], payloads[i])
		off += itemSpace(len(payloads[i]))
	}
	putLE64(buf[msgLen-trailerBytes:], canary)
	return buf
}

func TestMessageRoundTrip(t *testing.T) {
	items := []itemMeta{
		{threadID: 1, seqID: 10, rpcID: 7},
		{threadID: 2, seqID: 20, rpcID: 8, status: 3},
		{threadID: 3, seqID: 30, rpcID: 9},
	}
	payloads := [][]byte{[]byte("alpha"), {}, []byte("a much longer payload, not 8-aligned!")}
	buf := buildMessage(items, payloads, 0xDEADBEEF, 4242)

	h, got, err := decodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.count != 3 || h.canary != 0xDEADBEEF || h.piggyHead != 4242 {
		t.Fatalf("header: %+v", h)
	}
	for i, it := range got {
		if it.meta.threadID != items[i].threadID || it.meta.seqID != items[i].seqID ||
			it.meta.rpcID != items[i].rpcID || it.meta.status != items[i].status {
			t.Fatalf("item %d meta: %+v", i, it.meta)
		}
		if !bytes.Equal(it.data, payloads[i]) {
			t.Fatalf("item %d data: %q != %q", i, it.data, payloads[i])
		}
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(p1, p2 []byte, tid1, tid2 uint32, seq uint64, canary uint64) bool {
		if canary == 0 {
			canary = 1
		}
		if len(p1) > 1024 {
			p1 = p1[:1024]
		}
		if len(p2) > 1024 {
			p2 = p2[:1024]
		}
		items := []itemMeta{{threadID: tid1, seqID: seq}, {threadID: tid2, seqID: seq + 1}}
		buf := buildMessage(items, [][]byte{p1, p2}, canary, 0)
		h, got, err := decodeMessage(buf)
		if err != nil || h.count != 2 {
			return false
		}
		return bytes.Equal(got[0].data, p1) && bytes.Equal(got[1].data, p2) &&
			got[0].meta.threadID == tid1 && got[1].meta.threadID == tid2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := buildMessage([]itemMeta{{threadID: 1}}, [][]byte{[]byte("x")}, 99, 0)

	short := good[:headerBytes+4]
	if _, _, err := decodeMessage(short); err == nil {
		t.Error("short message accepted")
	}

	badLen := append([]byte(nil), good...)
	putHeader(badLen, header{totalLen: uint32(len(badLen) + 8), count: 1, canary: 99})
	if _, _, err := decodeMessage(badLen); err == nil {
		t.Error("wrong totalLen accepted")
	}

	badCanary := append([]byte(nil), good...)
	putLE64(badCanary[len(badCanary)-8:], 12345)
	if _, _, err := decodeMessage(badCanary); err == nil {
		t.Error("canary mismatch accepted")
	}

	// count larger than items present.
	badCount := append([]byte(nil), good...)
	putHeader(badCount, header{totalLen: uint32(len(badCount)), count: 50, canary: 99})
	if _, _, err := decodeMessage(badCount); err == nil {
		t.Error("overrunning count accepted")
	}

	// item size overrunning the message.
	badSize := append([]byte(nil), good...)
	putItemMeta(badSize[headerBytes:], itemMeta{size: 4096, threadID: 1})
	if _, _, err := decodeMessage(badSize); err == nil {
		t.Error("overrunning item size accepted")
	}
}

func TestPad8(t *testing.T) {
	cases := map[int]int{0: 0, 1: 8, 7: 8, 8: 8, 9: 16, 63: 64, 64: 64}
	for in, want := range cases {
		if got := pad8(in); got != want {
			t.Errorf("pad8(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestMsgSpace(t *testing.T) {
	if got := msgSpace(nil); got != headerBytes+trailerBytes {
		t.Errorf("empty msgSpace = %d", got)
	}
	// One 5-byte item: 32 meta + 8 padded payload.
	if got := msgSpace([]int{5}); got != headerBytes+trailerBytes+itemMetaBytes+8 {
		t.Errorf("msgSpace([5]) = %d", got)
	}
	if got := itemSpace(64); got != itemMetaBytes+64 {
		t.Errorf("itemSpace(64) = %d", got)
	}
}

func TestHeaderEncoding(t *testing.T) {
	var b [headerBytes]byte
	in := header{totalLen: 1000, count: 3, canary: ^uint64(0), piggyHead: 1 << 40, credit: 32, flags: 5}
	putHeader(b[:], in)
	if out := getHeader(b[:]); out != in {
		t.Fatalf("header round trip: %+v != %+v", out, in)
	}
}

func TestItemMetaEncoding(t *testing.T) {
	var b [itemMetaBytes]byte
	in := itemMeta{size: 77, threadID: 3, seqID: 1 << 50, rpcID: 9, status: 2, idemKey: 1 << 60}
	putItemMeta(b[:], in)
	if out := getItemMeta(b[:]); out != in {
		t.Fatalf("item meta round trip: %+v != %+v", out, in)
	}
}

func TestItemMetaV1Compat(t *testing.T) {
	// A v1 frame (flag clear, 24-byte metadata) must decode to the same
	// items as its v2 counterpart, with idemKey zeroed.
	items := []itemMeta{
		{threadID: 1, seqID: 10, rpcID: 7, idemKey: 99},
		{threadID: 2, seqID: 20, rpcID: 8, status: 3, idemKey: 100},
	}
	payloads := [][]byte{[]byte("legacy"), []byte("frame")}
	msgLen := headerBytes + trailerBytes
	for i := range payloads {
		msgLen += itemMetaV1Bytes + pad8(len(payloads[i]))
	}
	buf := make([]byte, msgLen)
	putHeader(buf, header{totalLen: uint32(msgLen), count: uint32(len(items)), canary: 7})
	off := headerBytes
	for i := range items {
		m := items[i]
		m.size = uint32(len(payloads[i]))
		putItemMetaV1(buf[off:], m)
		copy(buf[off+itemMetaV1Bytes:], payloads[i])
		off += itemMetaV1Bytes + pad8(len(payloads[i]))
	}
	putLE64(buf[msgLen-trailerBytes:], 7)

	h, got, err := decodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.flags&flagItemMetaV2 != 0 {
		t.Fatalf("v1 frame decoded with v2 flag: %+v", h)
	}
	for i, it := range got {
		if it.meta.idemKey != 0 {
			t.Fatalf("item %d: v1 decode produced idemKey %d", i, it.meta.idemKey)
		}
		if it.meta.threadID != items[i].threadID || it.meta.seqID != items[i].seqID ||
			it.meta.rpcID != items[i].rpcID || it.meta.status != items[i].status {
			t.Fatalf("item %d meta: %+v", i, it.meta)
		}
		if !bytes.Equal(it.data, payloads[i]) {
			t.Fatalf("item %d data: %q", i, it.data)
		}
	}
}
