// Package fabric provides the in-process network substrate connecting
// software RNICs (package rnic). It plays the role of the paper's 100 Gbps
// switched network: it routes traffic between nodes, accounts per-link
// packets and bytes, and injects loss for unreliable (UD) traffic so that
// software-reliability baselines have something real to recover from.
//
// The fabric is purely functional: it carries no timing. Virtual-time
// behaviour (bandwidth, propagation delay, queueing) belongs to the
// discrete-event models in internal/model; the functional tier needs only
// correct delivery semantics.
package fabric

import (
	"fmt"
	"sync"

	"flock/internal/stats"
)

// NodeID identifies a node (machine) on the fabric.
type NodeID int

// Endpoint is anything attachable to the fabric; in practice an
// *rnic.Device.
type Endpoint interface {
	// Node returns the endpoint's fabric address.
	Node() NodeID
}

// LinkStats accumulates traffic counters for one directed (src → dst) link.
type LinkStats struct {
	Packets uint64
	Bytes   uint64
	Dropped uint64
}

// Config controls fabric-wide behaviour.
type Config struct {
	// UDLossProb is the probability that an unreliable-datagram packet is
	// silently dropped in flight. RC/UC traffic is never dropped (the
	// paper's RC reliability is hardware-provided; UC loss is possible on
	// real fabrics but both the paper and we exercise loss only on UD).
	UDLossProb float64
	// Seed seeds the fabric's loss generator; runs with equal seeds drop
	// the same packets.
	Seed uint64
	// MTU is the wire maximum transmission unit in bytes. Messages larger
	// than the MTU are carried as multiple packets for accounting
	// purposes. Zero means the default of 4096 (the paper's setting).
	MTU int
}

// DefaultMTU matches the MTU used across all nodes in the paper's
// evaluation (§8.1).
const DefaultMTU = 4096

// Fabric connects endpoints. Safe for concurrent use.
type Fabric struct {
	cfg Config

	mu        sync.RWMutex
	endpoints map[NodeID]Endpoint
	links     map[linkKey]*LinkStats
	rng       *stats.RNG

	// Fault injection (faults.go). plan and faultRNG are nil until
	// SetFaultPlan installs a plan; manualDown holds links forced down via
	// SetLinkDown.
	plan       *FaultPlan
	faultRNG   *stats.RNG
	faults     []*linkFaultState
	manualDown map[linkKey]bool
	fstats     FaultStats
}

type linkKey struct {
	src, dst NodeID
}

// New creates an empty fabric.
func New(cfg Config) *Fabric {
	if cfg.MTU <= 0 {
		cfg.MTU = DefaultMTU
	}
	return &Fabric{
		cfg:       cfg,
		endpoints: make(map[NodeID]Endpoint),
		links:     make(map[linkKey]*LinkStats),
		rng:       stats.NewRNG(cfg.Seed),
	}
}

// MTU reports the fabric MTU.
func (f *Fabric) MTU() int { return f.cfg.MTU }

// Register attaches ep to the fabric. Registering two endpoints with the
// same NodeID is a configuration error and returns one.
func (f *Fabric) Register(ep Endpoint) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := ep.Node()
	if _, dup := f.endpoints[id]; dup {
		return fmt.Errorf("fabric: node %d already registered", id)
	}
	f.endpoints[id] = ep
	return nil
}

// Unregister detaches the endpoint with the given id, if present.
func (f *Fabric) Unregister(id NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.endpoints, id)
}

// Lookup returns the endpoint registered at id, or nil.
func (f *Fabric) Lookup(id NodeID) Endpoint {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.endpoints[id]
}

// Nodes returns the number of registered endpoints.
func (f *Fabric) Nodes() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.endpoints)
}

// ChargeTX records len bytes of payload moving src → dst and returns the
// number of wire packets it occupies (⌈bytes/MTU⌉, minimum 1 — even a
// zero-byte message consumes a packet of headers).
func (f *Fabric) ChargeTX(src, dst NodeID, bytes int) int {
	pkts := (bytes + f.cfg.MTU - 1) / f.cfg.MTU
	if pkts < 1 {
		pkts = 1
	}
	f.mu.Lock()
	ls := f.link(src, dst)
	ls.Packets += uint64(pkts)
	ls.Bytes += uint64(bytes)
	f.mu.Unlock()
	return pkts
}

// DropUD decides whether an unreliable datagram from src to dst is lost in
// flight, recording the drop if so.
func (f *Fabric) DropUD(src, dst NodeID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	// Link-down windows drop datagrams too: a flapped link carries nothing.
	if (len(f.faults) > 0 || len(f.manualDown) > 0) && f.stepLinkFaultsLocked(src, dst, 0) {
		f.fstats.LinkDownDrops++
		f.link(src, dst).Dropped++
		return true
	}
	if f.cfg.UDLossProb <= 0 {
		return false
	}
	if f.rng.Float64() >= f.cfg.UDLossProb {
		return false
	}
	f.link(src, dst).Dropped++
	return true
}

// link returns the stats record for (src, dst), creating it if needed.
// Caller holds f.mu.
func (f *Fabric) link(src, dst NodeID) *LinkStats {
	k := linkKey{src, dst}
	ls := f.links[k]
	if ls == nil {
		ls = &LinkStats{}
		f.links[k] = ls
	}
	return ls
}

// Link returns a copy of the traffic counters for the directed link
// src → dst. A link with no traffic reports zeros.
func (f *Fabric) Link(src, dst NodeID) LinkStats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if ls := f.links[linkKey{src, dst}]; ls != nil {
		return *ls
	}
	return LinkStats{}
}

// Totals sums the traffic counters across all links.
func (f *Fabric) Totals() LinkStats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var t LinkStats
	for _, ls := range f.links {
		t.Packets += ls.Packets
		t.Bytes += ls.Bytes
		t.Dropped += ls.Dropped
	}
	return t
}
