package fabric

import (
	"sync"
	"testing"
)

type fakeEndpoint struct{ id NodeID }

func (e *fakeEndpoint) Node() NodeID { return e.id }

func TestRegisterLookup(t *testing.T) {
	f := New(Config{})
	a := &fakeEndpoint{id: 1}
	if err := f.Register(a); err != nil {
		t.Fatal(err)
	}
	if got := f.Lookup(1); got != a {
		t.Fatalf("Lookup(1) = %v", got)
	}
	if got := f.Lookup(2); got != nil {
		t.Fatalf("Lookup(2) = %v, want nil", got)
	}
	if f.Nodes() != 1 {
		t.Fatalf("Nodes() = %d", f.Nodes())
	}
}

func TestRegisterDuplicate(t *testing.T) {
	f := New(Config{})
	if err := f.Register(&fakeEndpoint{id: 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Register(&fakeEndpoint{id: 3}); err == nil {
		t.Fatal("duplicate registration did not error")
	}
}

func TestUnregister(t *testing.T) {
	f := New(Config{})
	f.Register(&fakeEndpoint{id: 4})
	f.Unregister(4)
	if f.Lookup(4) != nil {
		t.Fatal("endpoint still present after Unregister")
	}
	f.Unregister(99) // absent: no panic
}

func TestDefaultMTU(t *testing.T) {
	if got := New(Config{}).MTU(); got != DefaultMTU {
		t.Fatalf("MTU = %d, want %d", got, DefaultMTU)
	}
	if got := New(Config{MTU: 1024}).MTU(); got != 1024 {
		t.Fatalf("MTU = %d, want 1024", got)
	}
}

func TestChargeTXPacketization(t *testing.T) {
	f := New(Config{MTU: 1000})
	cases := []struct {
		bytes, pkts int
	}{
		{0, 1}, {1, 1}, {999, 1}, {1000, 1}, {1001, 2}, {5000, 5}, {5001, 6},
	}
	for _, c := range cases {
		if got := f.ChargeTX(1, 2, c.bytes); got != c.pkts {
			t.Errorf("ChargeTX(%d bytes) = %d pkts, want %d", c.bytes, got, c.pkts)
		}
	}
	ls := f.Link(1, 2)
	if ls.Bytes != 0+1+999+1000+1001+5000+5001 {
		t.Errorf("link bytes = %d", ls.Bytes)
	}
	if ls.Packets != 1+1+1+1+2+5+6 {
		t.Errorf("link packets = %d", ls.Packets)
	}
	// Reverse direction is a separate link.
	if rev := f.Link(2, 1); rev.Packets != 0 {
		t.Errorf("reverse link has traffic: %+v", rev)
	}
}

func TestDropUDDisabled(t *testing.T) {
	f := New(Config{UDLossProb: 0})
	for i := 0; i < 1000; i++ {
		if f.DropUD(1, 2) {
			t.Fatal("dropped with loss probability 0")
		}
	}
}

func TestDropUDRate(t *testing.T) {
	f := New(Config{UDLossProb: 0.1, Seed: 7})
	drops := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if f.DropUD(1, 2) {
			drops++
		}
	}
	frac := float64(drops) / n
	if frac < 0.08 || frac > 0.12 {
		t.Errorf("drop rate %.3f, want ~0.10", frac)
	}
	if got := f.Link(1, 2).Dropped; got != uint64(drops) {
		t.Errorf("link dropped = %d, counted %d", got, drops)
	}
}

func TestDropUDDeterministic(t *testing.T) {
	a := New(Config{UDLossProb: 0.5, Seed: 42})
	b := New(Config{UDLossProb: 0.5, Seed: 42})
	for i := 0; i < 1000; i++ {
		if a.DropUD(1, 2) != b.DropUD(1, 2) {
			t.Fatalf("same-seed fabrics disagreed at packet %d", i)
		}
	}
}

func TestTotals(t *testing.T) {
	f := New(Config{MTU: 100})
	f.ChargeTX(1, 2, 250) // 3 pkts
	f.ChargeTX(2, 1, 50)  // 1 pkt
	f.ChargeTX(3, 2, 100) // 1 pkt
	tot := f.Totals()
	if tot.Packets != 5 || tot.Bytes != 400 {
		t.Errorf("totals = %+v", tot)
	}
}

func TestConcurrentAccess(t *testing.T) {
	f := New(Config{UDLossProb: 0.01, Seed: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ep := &fakeEndpoint{id: NodeID(id)}
			f.Register(ep)
			for i := 0; i < 1000; i++ {
				f.ChargeTX(NodeID(id), NodeID((id+1)%8), 64)
				f.DropUD(NodeID(id), NodeID((id+1)%8))
				f.Lookup(NodeID(i % 8))
			}
		}(g)
	}
	wg.Wait()
	if f.Totals().Packets != 8000 {
		t.Errorf("total packets = %d, want 8000", f.Totals().Packets)
	}
}
