package fabric

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"flock/internal/stats"
)

// AnyNode is a wildcard for LinkFault selectors: a fault whose Src or Dst
// is AnyNode matches every source or destination node.
const AnyNode NodeID = -1

// FaultPlan describes deterministic fault injection for connected (RC)
// traffic and payload corruption, extending the fabric's UD-only loss
// model. Two fabrics given equal plans (and equal traffic) inject equal
// faults: all randomness comes from the plan's own seeded generator, and
// link flap schedules are counted in transmission attempts rather than
// wall-clock time, because the fabric carries no timing.
type FaultPlan struct {
	// Seed seeds the plan's fault generator, independently of the
	// fabric-wide Config.Seed used for UD loss.
	Seed uint64
	// RCLossProb is the per-attempt probability that one RC transmission
	// is lost in flight, forcing the requester NIC to retransmit.
	RCLossProb float64
	// CorruptProb is the per-attempt probability that payload bytes are
	// corrupted in flight. RC traffic is CRC-protected, so corruption is
	// detected and counts as loss (a retransmission); UD traffic carries
	// no end-to-end check and is delivered corrupted.
	CorruptProb float64
	// RCDelayProb is the per-attempt probability that an RC transmission
	// is delayed by RCDelay (default 10µs when zero), modelling congested
	// or degraded links.
	RCDelayProb float64
	RCDelay     time.Duration
	// Links are scheduled per-link (optionally per-QP) outage windows.
	Links []LinkFault
}

// LinkFault schedules a down window on a directed link. Because the fabric
// is purely functional, the schedule is counted in matching transmission
// attempts: the link carries DownAfter attempts, is down for the next
// DownFor attempts (every attempt in the window is dropped), and then
// recovers. DownFor == 0 keeps the link down forever; Repeat restarts the
// cycle, flapping the link indefinitely.
type LinkFault struct {
	Src, Dst NodeID // AnyNode matches all nodes
	// QPN restricts the fault to transmissions from one source queue pair;
	// zero matches every QP on the link.
	QPN       int
	DownAfter uint64
	DownFor   uint64
	Repeat    bool
}

// linkFaultState is one scheduled fault plus its attempt counter.
type linkFaultState struct {
	LinkFault
	attempts uint64
}

func (s *linkFaultState) matches(src, dst NodeID, qpn int) bool {
	if s.Src != AnyNode && s.Src != src {
		return false
	}
	if s.Dst != AnyNode && s.Dst != dst {
		return false
	}
	return s.QPN == 0 || s.QPN == qpn
}

// step consumes one matching attempt and reports whether the link is down
// for it.
func (s *linkFaultState) step() bool {
	pos := s.attempts
	s.attempts++
	period := s.DownAfter + s.DownFor
	if s.Repeat && s.DownFor > 0 {
		pos %= period
	}
	if pos < s.DownAfter {
		return false
	}
	if s.DownFor == 0 {
		return true
	}
	return pos < period
}

// FaultStats counts injected faults fabric-wide.
type FaultStats struct {
	// RCDropped counts RC transmission attempts lost for any reason.
	RCDropped uint64
	// RCDelayed counts RC transmission attempts delayed.
	RCDelayed uint64
	// Corrupted counts corrupted payloads (RC: detected and dropped;
	// UD: delivered corrupted).
	Corrupted uint64
	// LinkDownDrops counts attempts dropped by link-down windows
	// (scheduled flaps and manual SetLinkDown).
	LinkDownDrops uint64
}

// SetFaultPlan installs (or, with nil, clears) the fault plan. Flap
// schedules restart from attempt zero. Safe to call while traffic flows —
// chaos harnesses retarget plans mid-run.
func (f *Fabric) SetFaultPlan(p *FaultPlan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p == nil {
		f.plan = nil
		f.faults = nil
		f.faultRNG = nil
		return
	}
	cp := *p
	f.plan = &cp
	f.faultRNG = stats.NewRNG(cp.Seed)
	f.faults = f.faults[:0]
	for _, lf := range cp.Links {
		f.faults = append(f.faults, &linkFaultState{LinkFault: lf})
	}
}

// AddLinkFault appends one scheduled link fault to the active plan,
// creating an empty plan if none is installed.
func (f *Fabric) AddLinkFault(lf LinkFault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.plan == nil {
		f.plan = &FaultPlan{}
		f.faultRNG = stats.NewRNG(0)
	}
	f.faults = append(f.faults, &linkFaultState{LinkFault: lf})
}

// ClearLinkFaults removes all scheduled link faults, keeping the rest of
// the plan (loss/corruption/delay probabilities) in force.
func (f *Fabric) ClearLinkFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = nil
}

// SetLinkDown forces the directed link src → dst down (or back up) until
// changed, independent of any scheduled faults.
func (f *Fabric) SetLinkDown(src, dst NodeID, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.manualDown == nil {
		f.manualDown = make(map[linkKey]bool)
	}
	if down {
		f.manualDown[linkKey{src, dst}] = true
	} else {
		delete(f.manualDown, linkKey{src, dst})
	}
}

// FaultCounters returns a copy of the fault-injection counters.
func (f *Fabric) FaultCounters() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fstats
}

// FaultRC judges one transmission attempt of an RC work request from src
// (source queue pair qpn) to dst. It returns whether the attempt is lost —
// forcing the requester NIC to retransmit — and any injected delay the
// pipeline should stall for. Link-down windows, random loss, and detected
// corruption (RC CRCs turn corruption into loss) all count as drops.
func (f *Fabric) FaultRC(src, dst NodeID, qpn int) (drop bool, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.plan == nil && len(f.faults) == 0 && len(f.manualDown) == 0 {
		return false, 0
	}
	if f.stepLinkFaultsLocked(src, dst, qpn) {
		f.fstats.LinkDownDrops++
		drop = true
	} else if f.plan != nil {
		if f.plan.RCLossProb > 0 && f.faultRNG.Float64() < f.plan.RCLossProb {
			drop = true
		} else if f.plan.CorruptProb > 0 && f.faultRNG.Float64() < f.plan.CorruptProb {
			f.fstats.Corrupted++
			drop = true
		}
	}
	if drop {
		f.fstats.RCDropped++
		f.link(src, dst).Dropped++
	}
	if f.plan != nil && f.plan.RCDelayProb > 0 && f.faultRNG.Float64() < f.plan.RCDelayProb {
		delay = f.plan.RCDelay
		if delay <= 0 {
			delay = 10 * time.Microsecond
		}
		f.fstats.RCDelayed++
	}
	return drop, delay
}

// MangleUD decides whether a UD payload is corrupted in flight and, if so,
// returns a corrupted copy (the caller's buffer is never touched — it may
// be application memory captured inline). UD has no end-to-end integrity
// check in this model, so the corruption reaches the receiver.
func (f *Fabric) MangleUD(src, dst NodeID, payload []byte) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.plan == nil || f.plan.CorruptProb <= 0 || len(payload) == 0 {
		return payload, false
	}
	if f.faultRNG.Float64() >= f.plan.CorruptProb {
		return payload, false
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	out[f.faultRNG.Intn(len(out))] ^= 0xff
	f.fstats.Corrupted++
	return out, true
}

// stepLinkFaultsLocked reports whether a link-down condition applies to
// the attempt, advancing matching flap schedules. Caller holds f.mu.
func (f *Fabric) stepLinkFaultsLocked(src, dst NodeID, qpn int) bool {
	down := f.manualDown[linkKey{src, dst}]
	for _, s := range f.faults {
		if s.matches(src, dst, qpn) && s.step() {
			down = true
		}
	}
	return down
}

// ParseFaultPlan parses the compact key=value spec accepted by flockload's
// -faults flag, e.g. "seed=7,rc-loss=0.01,flap=3".
//
//	seed=N        fault generator seed
//	rc-loss=P     per-attempt RC loss probability
//	corrupt=P     per-attempt corruption probability
//	delay=P       per-attempt RC delay probability
//	delay-us=N    injected delay in microseconds (default 10)
//	flap=QPN      flap the given source QP on every link (repeating)
//	flap-after=N  attempts carried before each down window (default 256)
//	flap-for=N    attempts each down window lasts (default 32)
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	p := &FaultPlan{}
	flapQP := 0
	flapAfter, flapFor := uint64(256), uint64(32)
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("fabric: fault spec %q: want key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		case "rc-loss":
			p.RCLossProb, err = strconv.ParseFloat(v, 64)
		case "corrupt":
			p.CorruptProb, err = strconv.ParseFloat(v, 64)
		case "delay":
			p.RCDelayProb, err = strconv.ParseFloat(v, 64)
		case "delay-us":
			var us uint64
			us, err = strconv.ParseUint(v, 10, 32)
			p.RCDelay = time.Duration(us) * time.Microsecond
		case "flap":
			flapQP, err = strconv.Atoi(v)
		case "flap-after":
			flapAfter, err = strconv.ParseUint(v, 10, 64)
		case "flap-for":
			flapFor, err = strconv.ParseUint(v, 10, 64)
		default:
			return nil, fmt.Errorf("fabric: unknown fault key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("fabric: fault key %q: %v", k, err)
		}
	}
	if flapQP > 0 {
		p.Links = append(p.Links, LinkFault{
			Src: AnyNode, Dst: AnyNode, QPN: flapQP,
			DownAfter: flapAfter, DownFor: flapFor, Repeat: true,
		})
	}
	return p, nil
}
