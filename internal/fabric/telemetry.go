package fabric

import "flock/internal/telemetry"

// PublishTelemetry registers snapshot-time views of the fabric's wire and
// fault-injection counters under prefix (e.g. "fabric."). This folds the
// formerly ad-hoc FaultCounters/Totals reporting into the telemetry
// registry; the mutex-guarded write paths stay as they are and are read
// only when a snapshot is taken.
func (f *Fabric) PublishTelemetry(reg *telemetry.Registry, prefix string) {
	reg.CounterFunc(prefix+"packets", func() uint64 { return f.Totals().Packets })
	reg.CounterFunc(prefix+"bytes", func() uint64 { return f.Totals().Bytes })
	reg.CounterFunc(prefix+"dropped", func() uint64 { return f.Totals().Dropped })
	reg.CounterFunc(prefix+"rc_dropped", func() uint64 { return f.FaultCounters().RCDropped })
	reg.CounterFunc(prefix+"rc_delayed", func() uint64 { return f.FaultCounters().RCDelayed })
	reg.CounterFunc(prefix+"corrupted", func() uint64 { return f.FaultCounters().Corrupted })
	reg.CounterFunc(prefix+"link_down_drops", func() uint64 { return f.FaultCounters().LinkDownDrops })
}
