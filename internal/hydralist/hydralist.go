// Package hydralist is an in-memory ordered index standing in for
// HydraList (Mathew & Min, VLDB'20), the index served over FLock and eRPC
// in §8.6 of the FLock paper. HydraList splits a skip-list-like structure
// into a data layer and replicated search layers updated asynchronously;
// what the paper's experiment needs from it is a concurrent ordered map
// with point lookups (get) and bounded range scans (scan 64), whose scan
// service time exceeds get service time — the variance that limits
// client-side coalescing in Figures 16–18.
//
// This implementation keeps the two-layer spirit in miniature: a lock-free
// sorted data layer (a linked list with atomic forward pointers, insertion
// via CAS) under a skip-list search layer whose upper levels are built
// with the same CAS discipline. Readers never lock; inserts lock nothing
// but retry CAS races.
package hydralist

import (
	"math"
	"sync/atomic"

	"flock/internal/stats"
)

// maxLevel bounds the skip-list height; 2^20 keys need ~20/1.44 ≈ 14
// levels at p = 1/2; 24 gives headroom for hundreds of millions.
const maxLevel = 24

// node is one key in the index. next[0] is the data layer; higher levels
// form the search layer.
type node struct {
	key  uint64
	val  atomic.Uint64
	next [maxLevel]atomic.Pointer[node]
	lvl  int
}

// List is the concurrent ordered index. Safe for concurrent use by any
// number of readers and writers.
type List struct {
	head  *node
	size  atomic.Int64
	level atomic.Int32 // highest level in use
}

// New creates an empty index.
func New() *List {
	h := &node{key: 0, lvl: maxLevel}
	l := &List{head: h}
	l.level.Store(1)
	return l
}

// Len reports the number of keys.
func (l *List) Len() int { return int(l.size.Load()) }

// randomLevel draws a geometric level from the rng.
func randomLevel(rng *stats.RNG) int {
	lvl := 1
	for lvl < maxLevel && rng.Uint64()&1 == 1 {
		lvl++
	}
	return lvl
}

// findPreds fills preds/succs with the nodes straddling key at each
// level. Returns the node with exactly this key, if present.
func (l *List) findPreds(key uint64, preds, succs *[maxLevel]*node) *node {
	var found *node
	pred := l.head
	for lvl := int(l.level.Load()) - 1; lvl >= 0; lvl-- {
		cur := pred.next[lvl].Load()
		for cur != nil && cur.key < key {
			pred = cur
			cur = pred.next[lvl].Load()
		}
		if cur != nil && cur.key == key {
			found = cur
		}
		preds[lvl] = pred
		succs[lvl] = cur
	}
	return found
}

// Get returns the value stored under key.
func (l *List) Get(key uint64) (uint64, bool) {
	pred := l.head
	for lvl := int(l.level.Load()) - 1; lvl >= 0; lvl-- {
		cur := pred.next[lvl].Load()
		for cur != nil && cur.key < key {
			pred = cur
			cur = pred.next[lvl].Load()
		}
		if cur != nil && cur.key == key {
			return cur.val.Load(), true
		}
	}
	return 0, false
}

// Insert stores val under key, replacing any existing value. rng supplies
// the level draw; give each inserting goroutine its own.
func (l *List) Insert(key uint64, val uint64, rng *stats.RNG) {
	if key == 0 {
		key = 1 // head sentinel owns 0; fold into 1 (documented domain is 1..2^64-1)
	}
	var preds, succs [maxLevel]*node
	for {
		if existing := l.findPreds(key, &preds, &succs); existing != nil {
			existing.val.Store(val)
			return
		}
		lvl := randomLevel(rng)
		for {
			cur := int(l.level.Load())
			if lvl <= cur || l.level.CompareAndSwap(int32(cur), int32(lvl)) {
				break
			}
		}
		for i := int(l.level.Load()); i > 0; i-- {
			if preds[i-1] == nil {
				preds[i-1] = l.head
			}
		}
		n := &node{key: key, lvl: lvl}
		n.val.Store(val)
		// Link bottom-up; level 0 linearizes the insert.
		n.next[0].Store(succs[0])
		if !preds[0].next[0].CompareAndSwap(succs[0], n) {
			continue // raced; recompute
		}
		l.size.Add(1)
		for i := 1; i < lvl; i++ {
			for {
				pred, succ := preds[i], succs[i]
				if pred == nil {
					pred = l.head
				}
				n.next[i].Store(succ)
				if pred.next[i].CompareAndSwap(succ, n) {
					break
				}
				// Recompute straddle at this level and retry.
				l.findPreds(key, &preds, &succs)
				if succs[i] == n || (succs[i] != nil && succs[i].key == key) {
					break // someone already linked us here
				}
			}
		}
		return
	}
}

// Scan walks up to count keys starting at the smallest key >= start and
// returns how many it visited — the paper's scan query replies with the
// number of keys found (§8.6). visit may be nil.
func (l *List) Scan(start uint64, count int, visit func(key, val uint64)) int {
	pred := l.head
	for lvl := int(l.level.Load()) - 1; lvl >= 0; lvl-- {
		cur := pred.next[lvl].Load()
		for cur != nil && cur.key < start {
			pred = cur
			cur = pred.next[lvl].Load()
		}
	}
	n := pred.next[0].Load()
	visited := 0
	for n != nil && visited < count {
		if visit != nil {
			visit(n.key, n.val.Load())
		}
		visited++
		n = n.next[0].Load()
	}
	return visited
}

// Min returns the smallest key, or (0, false) when empty.
func (l *List) Min() (uint64, bool) {
	n := l.head.next[0].Load()
	if n == nil {
		return 0, false
	}
	return n.key, true
}

// ExpectedLevels reports the theoretically ideal level count for n keys —
// exposed for tests asserting the search layer stays logarithmic.
func ExpectedLevels(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}
