package hydralist

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"flock/internal/stats"
)

func TestInsertGet(t *testing.T) {
	l := New()
	rng := stats.NewRNG(1)
	for k := uint64(1); k <= 1000; k++ {
		l.Insert(k, k*10, rng)
	}
	if l.Len() != 1000 {
		t.Fatalf("len = %d", l.Len())
	}
	for k := uint64(1); k <= 1000; k++ {
		v, ok := l.Get(k)
		if !ok || v != k*10 {
			t.Fatalf("get %d = (%d, %v)", k, v, ok)
		}
	}
	if _, ok := l.Get(5000); ok {
		t.Fatal("phantom key")
	}
}

func TestInsertOverwrite(t *testing.T) {
	l := New()
	rng := stats.NewRNG(2)
	l.Insert(7, 1, rng)
	l.Insert(7, 2, rng)
	if l.Len() != 1 {
		t.Fatalf("len = %d after overwrite", l.Len())
	}
	if v, _ := l.Get(7); v != 2 {
		t.Fatalf("value = %d", v)
	}
}

func TestScanOrderAndBounds(t *testing.T) {
	l := New()
	rng := stats.NewRNG(3)
	// Insert shuffled keys 2,4,6,...,200.
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(2 * (i + 1))
	}
	for i := range keys {
		j := rng.Intn(len(keys))
		keys[i], keys[j] = keys[j], keys[i]
	}
	for _, k := range keys {
		l.Insert(k, k, rng)
	}

	var got []uint64
	n := l.Scan(50, 10, func(k, v uint64) { got = append(got, k) })
	if n != 10 || len(got) != 10 {
		t.Fatalf("scan returned %d", n)
	}
	if got[0] != 50 {
		t.Fatalf("scan start = %d, want 50", got[0])
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("scan unordered: %v", got)
	}
	// Start between keys.
	got = got[:0]
	l.Scan(51, 3, func(k, v uint64) { got = append(got, k) })
	if got[0] != 52 {
		t.Fatalf("scan from gap starts at %d", got[0])
	}
	// Scan past the end returns fewer.
	if n := l.Scan(195, 64, nil); n != 3 {
		t.Fatalf("tail scan = %d, want 3 (196,198,200)", n)
	}
	// Empty range.
	if n := l.Scan(10_000, 64, nil); n != 0 {
		t.Fatalf("past-end scan = %d", n)
	}
}

func TestMin(t *testing.T) {
	l := New()
	if _, ok := l.Min(); ok {
		t.Fatal("min of empty list")
	}
	rng := stats.NewRNG(4)
	l.Insert(500, 1, rng)
	l.Insert(100, 1, rng)
	l.Insert(900, 1, rng)
	if k, _ := l.Min(); k != 100 {
		t.Fatalf("min = %d", k)
	}
}

func TestConcurrentInsertGet(t *testing.T) {
	l := New()
	const nG = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < nG; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(g) + 10)
			for i := 0; i < perG; i++ {
				k := uint64(g*perG + i + 1)
				l.Insert(k, k, rng)
				if v, ok := l.Get(k); !ok || v != k {
					t.Errorf("lost own insert %d", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != nG*perG {
		t.Fatalf("len = %d, want %d", l.Len(), nG*perG)
	}
	// Full scan sees every key in order.
	var prev uint64
	count := l.Scan(1, nG*perG+10, func(k, v uint64) {
		if k <= prev {
			t.Fatalf("order violated: %d after %d", k, prev)
		}
		prev = k
	})
	if count != nG*perG {
		t.Fatalf("scan visited %d, want %d", count, nG*perG)
	}
}

func TestConcurrentMixedReadWrite(t *testing.T) {
	l := New()
	rng := stats.NewRNG(7)
	for k := uint64(1); k <= 4096; k++ {
		l.Insert(k, k, rng)
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers overwrite random existing keys; readers do gets and scans;
	// an existing key must never go missing mid-overwrite.
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			r := stats.NewRNG(uint64(g) + 100)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := r.Uint64n(4096) + 1
				l.Insert(k, r.Uint64(), r)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			r := stats.NewRNG(uint64(g) + 200)
			for i := 0; i < 5000; i++ {
				k := r.Uint64n(4096) + 1
				if _, ok := l.Get(k); !ok {
					t.Errorf("existing key %d missing", k)
					return
				}
				if r.Intn(10) == 0 {
					l.Scan(k, 64, nil)
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	if l.Len() != 4096 {
		t.Fatalf("len = %d after overwrites, want 4096", l.Len())
	}
}

func TestKeyZeroFoldsToOne(t *testing.T) {
	l := New()
	rng := stats.NewRNG(5)
	l.Insert(0, 42, rng)
	if v, ok := l.Get(1); !ok || v != 42 {
		t.Fatalf("key 0 fold: (%d, %v)", v, ok)
	}
}

func TestGetInsertProperty(t *testing.T) {
	l := New()
	rng := stats.NewRNG(6)
	model := map[uint64]uint64{}
	f := func(key, val uint64) bool {
		if key == 0 {
			key = 1
		}
		l.Insert(key, val, rng)
		model[key] = val
		got, ok := l.Get(key)
		return ok && got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	for k, want := range model {
		if got, ok := l.Get(k); !ok || got != want {
			t.Fatalf("model divergence at %d: (%d, %v) want %d", k, got, ok, want)
		}
	}
	if l.Len() != len(model) {
		t.Fatalf("len %d != model %d", l.Len(), len(model))
	}
}

func TestExpectedLevels(t *testing.T) {
	if ExpectedLevels(1) != 1 || ExpectedLevels(0) != 1 {
		t.Fatal("degenerate levels")
	}
	if got := ExpectedLevels(1 << 20); got != 20 {
		t.Fatalf("levels(2^20) = %d", got)
	}
}

func BenchmarkGet(b *testing.B) {
	l := New()
	rng := stats.NewRNG(1)
	for k := uint64(1); k <= 1<<18; k++ {
		l.Insert(k, k, rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get(uint64(i)&(1<<18-1) + 1)
	}
}

func BenchmarkScan64(b *testing.B) {
	l := New()
	rng := stats.NewRNG(1)
	for k := uint64(1); k <= 1<<16; k++ {
		l.Insert(k, k, rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Scan(uint64(i)&(1<<16-1)+1, 64, nil)
	}
}

func BenchmarkInsert(b *testing.B) {
	l := New()
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(uint64(i)+1, uint64(i), rng)
	}
}
