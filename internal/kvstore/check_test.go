package kvstore

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"flock/internal/check"
	"flock/internal/fabric"
	"flock/internal/rnic"
)

// Linearizability of the store's OCC protocol under real concurrency: the
// seqlock get and the lock/unlock commit path must together present each
// key as an atomic register. The arena lives in an rnic.MemRegion — the
// same lock-mediated memory the RDMA paths use — so the test is valid
// under -race.
func TestStoreLinearizableUnderContention(t *testing.T) {
	const capacity, valSize = 64, 8
	fab := fabric.New(fabric.Config{})
	dev, err := rnic.NewDevice(fab, rnic.Config{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	arena, err := dev.RegisterMR(ArenaSize(capacity, valSize), rnic.PermRemoteRead|rnic.PermRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	store, err := New(arena, capacity, valSize)
	if err != nil {
		t.Fatal(err)
	}

	rec := check.NewRecorder()
	keys := []uint64{11, 22}
	// Bootstrap: every key exists before the concurrent phase, recorded as
	// an initial (sequential) put so the model's state matches the store's.
	buf := make([]byte, valSize)
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf, 1)
		call := rec.Begin()
		if err := store.Insert(k, buf); err != nil {
			t.Fatal(err)
		}
		rec.End(0, call, check.KVIn{Key: k, Put: true, Val: 1}, check.KVOut{})
	}

	const nWriters, nReaders, rounds = 4, 4, 120
	var wg sync.WaitGroup
	for g := 0; g < nWriters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			val := make([]byte, valSize)
			for i := 0; i < rounds; i++ {
				key := keys[(g+i)%len(keys)]
				// Writer-unique value so the checker can tell puts apart.
				v := uint64(g+1)<<32 | uint64(i+2)
				binary.LittleEndian.PutUint64(val, v)
				call := rec.Begin()
				if err := store.Lock(key); err != nil {
					if errors.Is(err, ErrLocked) {
						continue // OCC abort: nothing observed, nothing recorded
					}
					t.Errorf("lock: %v", err)
					return
				}
				if err := store.Unlock(key, val); err != nil {
					t.Errorf("unlock: %v", err)
					return
				}
				rec.End(1+g, call, check.KVIn{Key: key, Put: true, Val: v}, check.KVOut{})
			}
		}(g)
	}
	for g := 0; g < nReaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]byte, valSize)
			for i := 0; i < rounds; i++ {
				key := keys[(g+i)%len(keys)]
				call := rec.Begin()
				if _, err := store.Get(key, dst); err != nil {
					if errors.Is(err, ErrLocked) {
						continue // reader aborts on a locked slot; observed nothing
					}
					t.Errorf("get: %v", err)
					return
				}
				rec.End(1+nWriters+g, call, check.KVIn{Key: key},
					check.KVOut{Val: binary.LittleEndian.Uint64(dst), Found: true})
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if res := check.Check(check.RegisterModel(), rec.History()); !res.Ok {
		t.Fatalf("store history not linearizable:\n%s", res)
	}
}
