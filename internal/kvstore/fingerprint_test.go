package kvstore

import (
	"encoding/binary"
	"testing"
)

// Fingerprint64 is the replica-comparison digest: two stores holding the
// same key→value content must fingerprint equal regardless of insertion
// order or slot placement, and any single-entry difference must show.
func TestFingerprintOrderIndependent(t *testing.T) {
	a := newStore(t, 128, 8)
	b := newStore(t, 128, 8)
	keys := []uint64{3, 99, 0, 17, 1 << 40, 7}
	put := func(s *Store, k, v uint64) {
		t.Helper()
		if _, err := s.UpdateMax64(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		put(a, k, k*5+1)
	}
	// Same content, reverse insertion order (different probe/slot walk).
	for i := len(keys) - 1; i >= 0; i-- {
		put(b, keys[i], keys[i]*5+1)
	}
	if a.Fingerprint64() != b.Fingerprint64() {
		t.Fatal("equal content, unequal fingerprints")
	}
	// Write paths that end at the same value converge too: b took extra
	// superseded writes (guarded max absorbs them).
	put(b, 17, 17*5) // below current → no-op
	if a.Fingerprint64() != b.Fingerprint64() {
		t.Fatal("superseded write changed the fingerprint")
	}
}

func TestFingerprintDetectsDifferences(t *testing.T) {
	empty := newStore(t, 64, 8)
	if empty.Fingerprint64() != 0 {
		t.Fatalf("empty store fingerprints %#x, want 0", empty.Fingerprint64())
	}
	a := newStore(t, 64, 8)
	if _, err := a.UpdateMax64(1, 10); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint64() == 0 {
		t.Fatal("one-entry store fingerprints as empty")
	}
	// Differing value for the same key.
	b := newStore(t, 64, 8)
	if _, err := b.UpdateMax64(1, 11); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint64() == b.Fingerprint64() {
		t.Fatal("different values, equal fingerprints")
	}
	// A missing key (extra entry on one side).
	if _, err := b.UpdateMax64(1, 12); err != nil {
		t.Fatal(err)
	}
	c := newStore(t, 64, 8)
	if _, err := c.UpdateMax64(1, 12); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdateMax64(2, 1); err != nil {
		t.Fatal(err)
	}
	if b.Fingerprint64() == c.Fingerprint64() {
		t.Fatal("extra key, equal fingerprints")
	}
	// Key and value contributions don't cancel: {k:1,v:2} vs {k:2,v:1}.
	d := newStore(t, 64, 8)
	e := newStore(t, 64, 8)
	if _, err := d.UpdateMax64(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.UpdateMax64(2, 1); err != nil {
		t.Fatal(err)
	}
	if d.Fingerprint64() == e.Fingerprint64() {
		t.Fatal("swapped key/value fingerprints collide")
	}
}

// The fingerprint covers Insert-created entries identically to
// UpdateMax64 ones — it digests content, not write history.
func TestFingerprintIgnoresWritePath(t *testing.T) {
	a := newStore(t, 64, 8)
	b := newStore(t, 64, 8)
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], 77)
	if err := a.Insert(5, v[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.UpdateMax64(5, 77); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint64() != b.Fingerprint64() {
		t.Fatal("Insert and UpdateMax64 of the same entry fingerprint differently")
	}
}
