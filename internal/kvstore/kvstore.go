// Package kvstore is a MICA-like partitioned in-memory key-value store
// (Lim et al., NSDI'14), the storage substrate the FaSST evaluation — and
// therefore FLockTX's (§8.5) — builds on. It is a lossless open-addressing
// hash table over a flat memory arena with a per-key version+lock word, so
// optimistic concurrency control can:
//
//   - read values with a seqlock protocol (version, value, version);
//   - lock keys for writing with a CAS on the lock bit;
//   - validate read sets remotely by RDMA-reading the version word — the
//     arena is laid out for registration as an RDMA memory region, and
//     VersionOffset exposes each key's word for one-sided access
//     (FLockTX's validation phase, Figure 13).
//
// Slot layout (little-endian), repeated Capacity times after an 8-byte
// header word:
//
//	+0  key      uint64  (0 = empty; keys are offset by 1 on insert)
//	+8  verLock  uint64  bit 0 = locked, bits 1.. = version
//	+16 value    [ValSize]bytes (8-aligned)
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Mem is the storage arena. *rnic.MemRegion implements it, which is the
// intended backing when the store is served over RDMA; byteMem adapts a
// plain slice for standalone use.
type Mem interface {
	ReadAt(dst []byte, off int) error
	WriteAt(src []byte, off int) error
	Load64(off int) uint64
	Store64(off int, v uint64)
	CAS64(off int, old, new uint64) bool
	Len() int
}

// byteMem is a process-local arena.
type byteMem struct {
	mu sync.Mutex
	b  []byte
}

// NewMem returns a process-local arena of size bytes for standalone use.
// The store's protocol needs CAS64 and 64-bit load/store atomicity;
// byteMem provides them with an internal lock, so concurrent readers
// and CAS writers on the same word (a primary's get racing a put, a
// backup's inline replica apply racing a deposed primary) are safe —
// use an rnic.MemRegion for shared setups.
func NewMem(size int) Mem { return &byteMem{b: make([]byte, size)} }

func (m *byteMem) ReadAt(dst []byte, off int) error {
	if off < 0 || off+len(dst) > len(m.b) {
		return errors.New("kvstore: read out of range")
	}
	m.mu.Lock()
	copy(dst, m.b[off:])
	m.mu.Unlock()
	return nil
}

func (m *byteMem) WriteAt(src []byte, off int) error {
	if off < 0 || off+len(src) > len(m.b) {
		return errors.New("kvstore: write out of range")
	}
	m.mu.Lock()
	copy(m.b[off:], src)
	m.mu.Unlock()
	return nil
}

func (m *byteMem) Load64(off int) uint64 {
	m.mu.Lock()
	v := le64(m.b[off : off+8])
	m.mu.Unlock()
	return v
}

func (m *byteMem) Store64(off int, v uint64) {
	m.mu.Lock()
	putLE64(m.b[off:off+8], v)
	m.mu.Unlock()
}

func (m *byteMem) CAS64(off int, old, new uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if le64(m.b[off:off+8]) != old {
		return false
	}
	putLE64(m.b[off:off+8], new)
	return true
}

func (m *byteMem) Len() int { return len(m.b) }

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// Errors.
var (
	ErrFull     = errors.New("kvstore: table full")
	ErrNotFound = errors.New("kvstore: key not found")
	ErrLocked   = errors.New("kvstore: key locked")
)

const (
	lockBit     = uint64(1)
	headerBytes = 8
)

// Store is one partition's hash table.
type Store struct {
	mem      Mem
	capacity uint64 // slots, power of two
	valSize  int
	slotSize int
}

// ArenaSize returns the arena bytes needed for a store with the given
// geometry.
func ArenaSize(capacity, valSize int) int {
	return headerBytes + capacity*slotBytes(valSize)
}

func slotBytes(valSize int) int {
	return 16 + (valSize+7)&^7
}

// New builds a store over mem. capacity is rounded up to a power of two
// and must fit in mem.
func New(mem Mem, capacity, valSize int) (*Store, error) {
	cap2 := uint64(1)
	for cap2 < uint64(capacity) {
		cap2 <<= 1
	}
	s := &Store{mem: mem, capacity: cap2, valSize: valSize, slotSize: slotBytes(valSize)}
	if need := headerBytes + int(cap2)*s.slotSize; need > mem.Len() {
		return nil, fmt.Errorf("kvstore: arena %d bytes < needed %d", mem.Len(), need)
	}
	return s, nil
}

// Capacity reports the slot count.
func (s *Store) Capacity() int { return int(s.capacity) }

// ValSize reports the value size in bytes.
func (s *Store) ValSize() int { return s.valSize }

// slotOff returns the byte offset of slot i.
func (s *Store) slotOff(i uint64) int { return headerBytes + int(i)*s.slotSize }

// hash mixes a key (fibonacci hashing).
func hash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return key
}

// findSlot locates key's slot offset via linear probing; insert controls
// whether an empty slot claims the key.
func (s *Store) findSlot(key uint64, insert bool) (int, error) {
	stored := key + 1 // reserve 0 for "empty"
	if stored == 0 {
		return 0, errors.New("kvstore: key ^uint64(0) unsupported")
	}
	idx := hash(key) & (s.capacity - 1)
	for probe := uint64(0); probe < s.capacity; probe++ {
		off := s.slotOff((idx + probe) & (s.capacity - 1))
		cur := s.mem.Load64(off)
		if cur == stored {
			return off, nil
		}
		if cur == 0 {
			if !insert {
				return 0, ErrNotFound
			}
			// Claim the slot; on a race, re-check the winner.
			if s.mem.CAS64(off, 0, stored) {
				return off, nil
			}
			if s.mem.Load64(off) == stored {
				return off, nil
			}
			continue
		}
	}
	if insert {
		return 0, ErrFull
	}
	return 0, ErrNotFound
}

// Insert stores val under key, creating the slot if needed. Not
// linearizable against concurrent writers of the same key — loading is a
// bootstrap activity; steady-state mutation goes through Lock/Unlock.
func (s *Store) Insert(key uint64, val []byte) error {
	if len(val) > s.valSize {
		return fmt.Errorf("kvstore: value %d > slot %d", len(val), s.valSize)
	}
	off, err := s.findSlot(key, true)
	if err != nil {
		return err
	}
	if err := s.mem.WriteAt(val, off+16); err != nil {
		return err
	}
	ver := s.mem.Load64(off + 8)
	s.mem.Store64(off+8, (ver|lockBit)+1) // bump version, clear lock
	return nil
}

// Get reads key's value and version with the seqlock protocol. A torn
// copy (version moved underneath the read) retries; a *locked* slot
// returns ErrLocked immediately instead of waiting — the OCC execution
// phase must abort on a locked key (Figure 13), and spinning inside an
// RPC handler would wedge the dispatcher the lock holder needs for its
// own commit.
func (s *Store) Get(key uint64, dst []byte) (version uint64, err error) {
	off, err := s.findSlot(key, false)
	if err != nil {
		return 0, err
	}
	if len(dst) > s.valSize {
		dst = dst[:s.valSize]
	}
	for {
		v1 := s.mem.Load64(off + 8)
		if v1&lockBit != 0 {
			return v1, ErrLocked
		}
		if err := s.mem.ReadAt(dst, off+16); err != nil {
			return 0, err
		}
		if s.mem.Load64(off+8) == v1 {
			return v1, nil
		}
		// Torn copy: a writer committed mid-read; retry (writers finish).
	}
}

// Lock acquires key's write lock (OCC execution phase). It fails
// immediately with ErrLocked when contended — the coordinator aborts, as
// in Figure 13.
func (s *Store) Lock(key uint64) error {
	off, err := s.findSlot(key, false)
	if err != nil {
		return err
	}
	ver := s.mem.Load64(off + 8)
	if ver&lockBit != 0 || !s.mem.CAS64(off+8, ver, ver|lockBit) {
		return ErrLocked
	}
	return nil
}

// Unlock releases key's lock; when val is non-nil the value is replaced
// and the version bumped (OCC commit), otherwise the version is restored
// unchanged (abort).
func (s *Store) Unlock(key uint64, val []byte) error {
	off, err := s.findSlot(key, false)
	if err != nil {
		return err
	}
	ver := s.mem.Load64(off + 8)
	if ver&lockBit == 0 {
		return errors.New("kvstore: unlock of unlocked key")
	}
	if val != nil {
		if len(val) > s.valSize {
			return fmt.Errorf("kvstore: value %d > slot %d", len(val), s.valSize)
		}
		if err := s.mem.WriteAt(val, off+16); err != nil {
			return err
		}
		s.mem.Store64(off+8, ver+1) // clears lock bit (ver is odd), bumps version
		return nil
	}
	s.mem.Store64(off+8, ver&^lockBit)
	return nil
}

// GetLocked reads key's value without the seqlock retry loop; the caller
// must hold the key's lock (OCC read-modify-write under the write lock).
func (s *Store) GetLocked(key uint64, dst []byte) error {
	off, err := s.findSlot(key, false)
	if err != nil {
		return err
	}
	if len(dst) > s.valSize {
		dst = dst[:s.valSize]
	}
	return s.mem.ReadAt(dst, off+16)
}

// Apply overwrites key's value and bumps the version without the lock
// protocol; replicas use it to apply logged updates in receive order.
func (s *Store) Apply(key uint64, val []byte) error {
	off, err := s.findSlot(key, true)
	if err != nil {
		return err
	}
	if err := s.mem.WriteAt(val, off+16); err != nil {
		return err
	}
	ver := s.mem.Load64(off + 8)
	s.mem.Store64(off+8, (ver|lockBit)+1)
	return nil
}

// UpdateMax64 atomically raises key's value — interpreted as one
// little-endian uint64 word — to val, creating the slot if needed. It
// returns whether the stored value changed. The CAS loop makes
// concurrent UpdateMax64 calls converge on the maximum, which is the
// guarded-apply primitive shard migration relies on: snapshot chunks,
// dual-written forwards and client retries may arrive in any order and
// any multiplicity, and the slot still ends at the newest value. The
// store must have ValSize >= 8; the version word is left alone (the
// value is a single word, so readers don't need the seqlock).
func (s *Store) UpdateMax64(key uint64, val uint64) (bool, error) {
	if s.valSize < 8 {
		return false, fmt.Errorf("kvstore: UpdateMax64 needs ValSize >= 8, have %d", s.valSize)
	}
	off, err := s.findSlot(key, true)
	if err != nil {
		return false, err
	}
	for {
		cur := s.mem.Load64(off + 16)
		if cur >= val {
			return false, nil
		}
		if s.mem.CAS64(off+16, cur, val) {
			return true, nil
		}
	}
}

// Value64 reads key's value as one little-endian uint64 word; ok is
// false when the key has no slot. Like UpdateMax64 it bypasses the
// seqlock — a single word loads atomically.
func (s *Store) Value64(key uint64) (val uint64, ok bool) {
	off, err := s.findSlot(key, false)
	if err != nil {
		return 0, false
	}
	return s.mem.Load64(off + 16), true
}

// VersionOffset returns the byte offset of key's version+lock word inside
// the arena, for one-sided RDMA validation.
func (s *Store) VersionOffset(key uint64) (int, error) {
	off, err := s.findSlot(key, false)
	if err != nil {
		return 0, err
	}
	return off + 8, nil
}

// Version reads key's current version word (local fast path).
func (s *Store) Version(key uint64) (uint64, error) {
	off, err := s.findSlot(key, false)
	if err != nil {
		return 0, err
	}
	return s.mem.Load64(off + 8), nil
}

// Fingerprint64 folds every occupied slot's key and first value word
// into one order-independent digest (a commutative sum of per-slot
// mixes), so two stores hold the same 8-byte-word contents iff their
// fingerprints match — regardless of insertion order or arena layout.
// Replication tests use it to compare a primary against its backups
// after traffic quiesces; like Scan it is not a point-in-time snapshot
// under concurrent writers.
func (s *Store) Fingerprint64() uint64 {
	var fp uint64
	s.Scan(func(key uint64, val []byte) bool {
		word := binary.LittleEndian.Uint64(val[:8])
		// splitmix64-style finalizer over (key, word) so near-identical
		// slots don't cancel in the commutative sum.
		x := key ^ 0x9E3779B97F4A7C15
		x ^= word * 0xBF58476D1CE4E5B9
		x ^= x >> 30
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		fp += x
		return true
	})
	return fp
}

// Scan iterates every occupied slot in arena order, calling fn with the
// key and a copy of its value. Returning false from fn stops the scan.
// Scan uses the seqlock protocol per slot, so it tolerates concurrent
// writers; it is the snapshot primitive shard migration copies from. The
// iteration is not a point-in-time snapshot — concurrent writes may or
// may not be observed — so migration pairs it with guarded applies on the
// receiving side.
func (s *Store) Scan(fn func(key uint64, val []byte) bool) {
	val := make([]byte, s.valSize)
	for i := uint64(0); i < s.capacity; i++ {
		off := s.slotOff(i)
		stored := s.mem.Load64(off)
		if stored == 0 {
			continue
		}
		for {
			v1 := s.mem.Load64(off + 8)
			if v1&lockBit != 0 {
				continue // writer mid-commit; it finishes promptly
			}
			if err := s.mem.ReadAt(val, off+16); err != nil {
				return
			}
			if s.mem.Load64(off+8) == v1 {
				break
			}
		}
		if !fn(stored-1, val) {
			return
		}
	}
}

// Locked reports whether a version word carries the lock bit.
func Locked(verLock uint64) bool { return verLock&lockBit != 0 }

// VersionOf strips the lock bit off a version word.
func VersionOf(verLock uint64) uint64 { return verLock &^ lockBit }
