package kvstore

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"

	"flock/internal/fabric"
	"flock/internal/rnic"
)

func newStore(t *testing.T, capacity, valSize int) *Store {
	t.Helper()
	s, err := New(NewMem(ArenaSize(capacity, valSize)), capacity, valSize)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInsertGet(t *testing.T) {
	s := newStore(t, 128, 8)
	for k := uint64(0); k < 100; k++ {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], k*3)
		if err := s.Insert(k, v[:]); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	var buf [8]byte
	for k := uint64(0); k < 100; k++ {
		ver, err := s.Get(k, buf[:])
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if got := binary.LittleEndian.Uint64(buf[:]); got != k*3 {
			t.Fatalf("key %d = %d, want %d", k, got, k*3)
		}
		if Locked(ver) {
			t.Fatalf("key %d locked after insert", k)
		}
	}
}

func TestGetMissing(t *testing.T) {
	s := newStore(t, 16, 8)
	var buf [8]byte
	if _, err := s.Get(42, buf[:]); err != ErrNotFound {
		t.Fatalf("missing get: %v", err)
	}
}

func TestKeyZeroWorks(t *testing.T) {
	s := newStore(t, 16, 8)
	if err := s.Insert(0, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	var buf [8]byte
	if _, err := s.Get(0, buf[:]); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[7] != 8 {
		t.Fatalf("key 0 value: %v", buf)
	}
}

func TestTableFull(t *testing.T) {
	s := newStore(t, 4, 8) // 4 slots
	var err error
	for k := uint64(0); k < 10; k++ {
		if err = s.Insert(k, []byte{byte(k)}); err != nil {
			break
		}
	}
	if err != ErrFull {
		t.Fatalf("overfull insert: %v", err)
	}
}

func TestLockUnlockCommit(t *testing.T) {
	s := newStore(t, 16, 8)
	s.Insert(7, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	v0, _ := s.Version(7)

	if err := s.Lock(7); err != nil {
		t.Fatal(err)
	}
	// Second lock fails — OCC abort path.
	if err := s.Lock(7); err != ErrLocked {
		t.Fatalf("double lock: %v", err)
	}
	// Version word shows the lock remotely.
	ver, _ := s.Version(7)
	if !Locked(ver) {
		t.Fatal("lock bit not visible")
	}
	// Commit: new value, version bumped, unlocked.
	if err := s.Unlock(7, []byte{9, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	var buf [8]byte
	v1, err := s.Get(7, buf[:])
	if err != nil || buf[0] != 9 {
		t.Fatalf("after commit: %v %v", err, buf)
	}
	if VersionOf(v1) == VersionOf(v0) {
		t.Fatal("version not bumped by commit")
	}
	if Locked(v1) {
		t.Fatal("still locked after commit")
	}
}

func TestUnlockAbortKeepsVersion(t *testing.T) {
	s := newStore(t, 16, 8)
	s.Insert(3, []byte{5, 0, 0, 0, 0, 0, 0, 0})
	v0, _ := s.Version(3)
	s.Lock(3)
	if err := s.Unlock(3, nil); err != nil {
		t.Fatal(err)
	}
	v1, _ := s.Version(3)
	if v1 != v0 {
		t.Fatalf("abort changed version: %d → %d", v0, v1)
	}
	var buf [8]byte
	s.Get(3, buf[:])
	if buf[0] != 5 {
		t.Fatal("abort changed value")
	}
}

func TestGetOnLockedReturnsErrLocked(t *testing.T) {
	// Get must not spin on a locked key: the OCC execution phase aborts,
	// and a spinning handler would deadlock the dispatcher against the
	// lock holder's commit.
	s := newStore(t, 16, 8)
	s.Insert(4, make([]byte, 8))
	s.Lock(4)
	var buf [8]byte
	ver, err := s.Get(4, buf[:])
	if err != ErrLocked {
		t.Fatalf("get on locked key: %v", err)
	}
	if !Locked(ver) {
		t.Fatal("returned version should carry the lock bit")
	}
	s.Unlock(4, nil)
	if _, err := s.Get(4, buf[:]); err != nil {
		t.Fatalf("get after unlock: %v", err)
	}
}

func TestUnlockUnlocked(t *testing.T) {
	s := newStore(t, 16, 8)
	s.Insert(1, make([]byte, 8))
	if err := s.Unlock(1, nil); err == nil {
		t.Fatal("unlock of unlocked key succeeded")
	}
}

func TestVersionOffsetMatchesStore(t *testing.T) {
	// The offset handed to one-sided validation must point at the same
	// word Version() reads.
	mem := NewMem(ArenaSize(64, 8))
	s, _ := New(mem, 64, 8)
	s.Insert(11, make([]byte, 8))
	off, err := s.VersionOffset(11)
	if err != nil {
		t.Fatal(err)
	}
	direct := mem.Load64(off)
	viaAPI, _ := s.Version(11)
	if direct != viaAPI {
		t.Fatalf("offset word %d != API word %d", direct, viaAPI)
	}
	s.Lock(11)
	if !Locked(mem.Load64(off)) {
		t.Fatal("lock not visible through raw offset")
	}
	s.Unlock(11, nil)
}

func TestApplyBumpsVersion(t *testing.T) {
	s := newStore(t, 16, 8)
	s.Insert(2, make([]byte, 8))
	v0, _ := s.Version(2)
	if err := s.Apply(2, []byte{7, 7, 7, 7, 7, 7, 7, 7}); err != nil {
		t.Fatal(err)
	}
	v1, _ := s.Version(2)
	if VersionOf(v1) <= VersionOf(v0) {
		t.Fatal("apply did not bump version")
	}
	// Apply also creates missing keys (replica catch-up).
	if err := s.Apply(999, []byte{1, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	var buf [8]byte
	if _, err := s.Get(999, buf[:]); err != nil || buf[0] != 1 {
		t.Fatalf("applied key missing: %v %v", err, buf)
	}
}

func TestOversizedValueRejected(t *testing.T) {
	s := newStore(t, 16, 8)
	if err := s.Insert(1, make([]byte, 9)); err == nil {
		t.Fatal("oversized insert accepted")
	}
	s.Insert(1, make([]byte, 8))
	s.Lock(1)
	if err := s.Unlock(1, make([]byte, 9)); err == nil {
		t.Fatal("oversized unlock accepted")
	}
	s.Unlock(1, nil)
}

func TestConcurrentLockExclusion(t *testing.T) {
	// Over an rnic arena (real CAS), concurrent lockers must serialize:
	// each successful Lock→Unlock(+1) pair increments exactly once.
	fab := fabric.New(fabric.Config{})
	dev, err := rnic.NewDevice(fab, rnic.Config{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	mr, err := dev.RegisterMR(ArenaSize(64, 8), rnic.PermRemoteRead)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(mr, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	s.Insert(5, make([]byte, 8))

	const nGoroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < nGoroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf [8]byte
			for i := 0; i < perG; i++ {
				for s.Lock(5) != nil {
				}
				if err := s.GetLocked(5, buf[:]); err != nil {
					t.Error(err)
					return
				}
				binary.LittleEndian.PutUint64(buf[:], binary.LittleEndian.Uint64(buf[:])+1)
				if err := s.Unlock(5, buf[:]); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var buf [8]byte
	s.Get(5, buf[:])
	if got := binary.LittleEndian.Uint64(buf[:]); got != nGoroutines*perG {
		t.Fatalf("counter = %d, want %d", got, nGoroutines*perG)
	}
}

func TestInsertGetProperty(t *testing.T) {
	s := newStore(t, 1024, 16)
	seen := map[uint64][]byte{}
	f := func(key uint64, val []byte) bool {
		key %= 1 << 40
		if len(val) > 16 {
			val = val[:16]
		}
		full := make([]byte, 16)
		copy(full, val)
		if err := s.Insert(key, full); err != nil {
			return err == ErrFull
		}
		seen[key] = full
		got := make([]byte, 16)
		if _, err := s.Get(key, got); err != nil {
			return false
		}
		return bytes.Equal(got, full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	// Everything inserted stays retrievable.
	for k, want := range seen {
		got := make([]byte, 16)
		if _, err := s.Get(k, got); err != nil || !bytes.Equal(got, want) {
			t.Fatalf("key %d lost or corrupted", k)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	s, _ := New(NewMem(ArenaSize(1<<16, 8)), 1<<16, 8)
	for k := uint64(0); k < 1<<15; k++ {
		s.Insert(k, make([]byte, 8))
	}
	var buf [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(uint64(i)&(1<<15-1), buf[:]) //nolint:errcheck
	}
}

func BenchmarkLockUnlock(b *testing.B) {
	s, _ := New(NewMem(ArenaSize(1024, 8)), 1024, 8)
	s.Insert(1, make([]byte, 8))
	val := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Lock(1)        //nolint:errcheck
		s.Unlock(1, val) //nolint:errcheck
	}
}
