// Package mem provides a slab-style pool of refcounted, lease-tracked
// byte buffers for the FLock hot path.
//
// Every layer of the request/response path used to allocate per message:
// the software RNIC gathered scatter lists into a fresh []byte per work
// request, the ring consumer decoded into fresh slices, and the
// dispatcher/server copied each item into yet another allocation before
// handing it to the application. Under flockload-style traffic that made
// Go GC pressure — not the modeled NIC — the scaling bottleneck, exactly
// the failure mode FLock's QP sharing is meant to avoid (§4–§5 keep
// per-message CPU flat as threads grow). The pool gives those layers
// recycled, size-classed buffers with explicit lease accounting so the
// steady state allocates nothing.
//
// Ownership model: Get returns a Buf with one reference held by the
// caller. Retain adds a reference for each additional holder; Release
// drops one, and the last Release returns the buffer to its size-class
// free list. Releasing more times than retained panics (a double-release
// would let two leases share bytes — the worst kind of corruption to
// debug). Outstanding counts live leases for the leak gates in the core
// test suites.
package mem

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"flock/internal/telemetry"
)

// Size classes are powers of two from minClass (64 B — below that the Buf
// header dominates) to maxClass (2 MiB — the ring size ceiling). Requests
// above maxClass fall back to direct allocation and are not recycled.
const (
	minShift = 6  // 64 B
	maxShift = 21 // 2 MiB
	classes  = maxShift - minShift + 1

	// freeListCap bounds each class's free list so a burst doesn't pin
	// memory forever; beyond it, released buffers go back to the GC.
	freeListCap = 64
)

// Buf is one pooled buffer lease. The zero value is not useful; obtain
// one from Pool.Get. A Buf must not be used after its final Release.
type Buf struct {
	pool  *Pool
	data  []byte // full class-sized backing array
	n     int    // requested length; Data returns data[:n]
	class int    // size class index, -1 for direct (non-recycled) allocs
	refs  atomic.Int32
}

// Data returns the buffer contents sized to the Get request. The slice
// remains valid until the final Release; views handed to other holders
// must be covered by a Retain.
func (b *Buf) Data() []byte { return b.data[:b.n] }

// Retain adds a reference for a new holder of the buffer.
func (b *Buf) Retain() {
	if b.refs.Add(1) <= 1 {
		panic("mem: Retain after final Release")
	}
}

// Release drops one reference; the final Release recycles the buffer.
// Releasing an already-free Buf panics.
func (b *Buf) Release() {
	refs := b.refs.Add(-1)
	if refs < 0 {
		panic("mem: double Release")
	}
	if refs == 0 {
		b.pool.put(b)
	}
}

// Pool is a set of size-classed free lists. The zero value is not ready;
// use NewPool or the package-level Default.
type Pool struct {
	classes     [classes]freeList
	outstanding atomic.Int64
	// gets and hits are telemetry counters (sharded, padded) because every
	// dispatcher, server thread, and the device pipeline bump them on each
	// lease — a single atomic here bounces one cache line across all of
	// them.
	gets telemetry.Counter
	hits telemetry.Counter
}

type freeList struct {
	mu   sync.Mutex
	bufs []*Buf
}

// NewPool creates an empty pool; free lists fill as leases are released.
func NewPool() *Pool { return &Pool{} }

// Default is the process-wide pool used by the FLock hot path.
var Default = NewPool()

// Get leases a buffer of at least n bytes from the default pool.
func Get(n int) *Buf { return Default.Get(n) }

// classFor maps a request size to its size class, or -1 for direct alloc.
func classFor(n int) int {
	if n > 1<<maxShift {
		return -1
	}
	if n <= 1<<minShift {
		return 0
	}
	return bits.Len(uint(n-1)) - minShift
}

// Get leases a buffer of at least n bytes. The returned Buf carries one
// reference owned by the caller; its Data() has length exactly n. The
// contents are NOT zeroed — callers that need zeros must clear or fully
// overwrite it (every hot-path user writes the full payload).
func (p *Pool) Get(n int) *Buf {
	if n < 0 {
		panic(fmt.Sprintf("mem: Get(%d)", n))
	}
	p.gets.Add(1)
	p.outstanding.Add(1)
	class := classFor(n)
	if class < 0 {
		// Oversized: direct allocation, returned to the GC on Release.
		b := &Buf{pool: p, data: make([]byte, n), n: n, class: -1}
		b.refs.Store(1)
		return b
	}
	fl := &p.classes[class]
	fl.mu.Lock()
	if last := len(fl.bufs) - 1; last >= 0 {
		b := fl.bufs[last]
		fl.bufs[last] = nil
		fl.bufs = fl.bufs[:last]
		fl.mu.Unlock()
		p.hits.Add(1)
		b.n = n
		b.refs.Store(1)
		return b
	}
	fl.mu.Unlock()
	b := &Buf{pool: p, data: make([]byte, 1<<(class+minShift)), n: n, class: class}
	b.refs.Store(1)
	return b
}

// put recycles a fully released buffer onto its class free list.
func (p *Pool) put(b *Buf) {
	p.outstanding.Add(-1)
	if b.class < 0 {
		return // oversized; let the GC have it
	}
	fl := &p.classes[b.class]
	fl.mu.Lock()
	if len(fl.bufs) < freeListCap {
		fl.bufs = append(fl.bufs, b)
	}
	fl.mu.Unlock()
}

// Outstanding reports live leases: Gets minus final Releases. The core
// test suites use it as a leak gate after draining.
func (p *Pool) Outstanding() int64 { return p.outstanding.Load() }

// Stats reports cumulative pool activity.
func (p *Pool) Stats() Stats {
	return Stats{
		Gets:        p.gets.Load(),
		Hits:        p.hits.Load(),
		Outstanding: p.outstanding.Load(),
	}
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Gets        uint64 // total leases handed out
	Hits        uint64 // leases served from a free list (no allocation)
	Outstanding int64  // live leases right now
}

// classLen reports the current free-list occupancy of one size class.
func (p *Pool) classLen(class int) int {
	fl := &p.classes[class]
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return len(fl.bufs)
}

// PublishTelemetry registers snapshot-time views of the pool under prefix
// (e.g. "mem."): cumulative gets/hits, the hit rate in percent, live
// leases, and per-size-class free-list occupancy. The pool's write paths
// are untouched.
func (p *Pool) PublishTelemetry(reg *telemetry.Registry, prefix string) {
	reg.CounterFunc(prefix+"pool_gets", p.gets.Load)
	reg.CounterFunc(prefix+"pool_hits", p.hits.Load)
	reg.GaugeFunc(prefix+"outstanding", p.outstanding.Load)
	reg.GaugeFunc(prefix+"pool_hit_rate_pct", func() int64 {
		gets := p.gets.Load()
		if gets == 0 {
			return 0
		}
		return int64(p.hits.Load() * 100 / gets)
	})
	for class := 0; class < classes; class++ {
		class := class
		name := fmt.Sprintf("%sclass_%db_free", prefix, 1<<(class+minShift))
		reg.GaugeFunc(name, func() int64 { return int64(p.classLen(class)) })
	}
}
