package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

// TestGetServesEverySize: property — for any non-negative size, Get
// returns a lease whose Data has exactly that length and whose backing
// capacity covers it.
func TestGetServesEverySize(t *testing.T) {
	p := NewPool()
	prop := func(raw uint32) bool {
		n := int(raw % (3 << 20)) // 0 .. 3 MiB spans every class plus the direct path
		b := p.Get(n)
		ok := len(b.Data()) == n && cap(b.data) >= n
		b.Release()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("outstanding after release-all = %d, want 0", got)
	}
}

// TestLeaseIsolation: property — two concurrently live leases never share
// bytes: writing a fill pattern into one does not disturb the other.
func TestLeaseIsolation(t *testing.T) {
	p := NewPool()
	prop := func(na, nb uint16, fa, fb byte) bool {
		a, b := p.Get(int(na)), p.Get(int(nb))
		defer a.Release()
		defer b.Release()
		for i := range a.Data() {
			a.Data()[i] = fa
		}
		for i := range b.Data() {
			b.Data()[i] = fb
		}
		for _, v := range a.Data() {
			if v != fa {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRecycleReuse: a released buffer of the same class comes back on the
// next Get without allocating a new backing array.
func TestRecycleReuse(t *testing.T) {
	p := NewPool()
	a := p.Get(100)
	backing := &a.data[0]
	a.Release()
	b := p.Get(128) // same class (128 B)
	defer b.Release()
	if &b.data[0] != backing {
		t.Fatal("same-class Get after Release did not reuse the backing array")
	}
	if s := p.Stats(); s.Hits != 1 {
		t.Fatalf("hits = %d, want 1", s.Hits)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool()
	b := p.Get(64)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	b.Release()
}

func TestRetainAfterFinalReleasePanics(t *testing.T) {
	p := NewPool()
	b := p.Get(64)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain after final Release did not panic")
		}
	}()
	b.Retain()
}

// TestRetainRelease: refcounting — the buffer recycles only after every
// holder releases, and Outstanding tracks the lease, not the holders.
func TestRetainRelease(t *testing.T) {
	p := NewPool()
	b := p.Get(64)
	b.Retain()
	b.Retain()
	b.Release()
	b.Release()
	if got := p.Outstanding(); got != 1 {
		t.Fatalf("outstanding with one holder left = %d, want 1", got)
	}
	b.Release()
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("outstanding after final release = %d, want 0", got)
	}
}

// TestConcurrentLeases hammers Get/Retain/Release from many goroutines;
// run under -race this doubles as the pool's synchronization test.
func TestConcurrentLeases(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := p.Get(64 << (i % 6))
				b.Data()[0] = byte(g)
				b.Retain()
				b.Release()
				if b.Data()[0] != byte(g) {
					panic("lease bytes shared across goroutines")
				}
				b.Release()
			}
		}(g)
	}
	wg.Wait()
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("outstanding after drain = %d, want 0", got)
	}
}

func TestOversizedDirectAlloc(t *testing.T) {
	p := NewPool()
	b := p.Get(3 << 20) // above the 2 MiB class ceiling
	if b.class != -1 {
		t.Fatalf("class = %d, want -1 (direct)", b.class)
	}
	if len(b.Data()) != 3<<20 {
		t.Fatalf("len = %d", len(b.Data()))
	}
	b.Release()
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d, want 0", got)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 20, 14}, {1<<21 - 1, 15}, {1 << 21, 15}, {1<<21 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}
