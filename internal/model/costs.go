// Package model contains the discrete-event performance models that
// regenerate every figure of the FLock paper's evaluation (§8). The models
// run on the engine in internal/sim and reuse the live library's policy
// functions (core.AssignThreads, core.RedistributeQPs) so the simulated
// schedulers are the shipped ones.
//
// Absolute numbers depend on the cost calibration below and are not
// expected to match the paper's testbed; the claims under reproduction are
// the *shapes*: who wins, by roughly what factor, and where the crossovers
// fall. EXPERIMENTS.md records paper-vs-model for each figure.
package model

import "flock/internal/sim"

// Costs calibrates the hardware and software constants of the model, in
// virtual nanoseconds (or ns/byte). Defaults approximate the paper's
// testbed: 32-core 2.35 GHz servers, ConnectX-5 100 Gbps NICs, a
// single-switch fabric (§8.1).
type Costs struct {
	// --- Client-side CPU ---

	// StageWindow is the leader's combining window: the time from
	// becoming leader to ringing the doorbell (staging, metadata, canary,
	// post). Followers arriving within it join the message (§4.2).
	StageWindow sim.Time
	// FollowerJoin is a follower's CPU cost to enqueue and copy its
	// payload into the leader's buffer.
	FollowerJoin sim.Time
	// MMIO is one doorbell write (also charged for UD sends). Coalescing
	// amortizes it across the batch; the paper measures a 36 % drop in
	// MMIO cycles from coalescing (§8.3.1).
	MMIO sim.Time
	// CopyPerByte is payload staging bandwidth (memcpy).
	CopyPerByte float64
	// RespDispatch is the client response dispatcher's per-item cost.
	RespDispatch sim.Time

	// --- NIC ---

	// NICUnits is the number of parallel processing units per NIC.
	NICUnits int
	// NICBaseWR is the per-work-request NIC pipeline cost (cache hit).
	NICBaseWR sim.Time
	// NICCacheMiss is the extra cost of a connection-context cache miss:
	// the PCIe fetch of QP state from host memory (Figure 1/2).
	NICCacheMiss sim.Time
	// NICCacheEntries sizes the connection-context cache. Calibrated so
	// the Figure 2(a) read sweep peaks through a few hundred QPs and
	// collapses by 2816, while the RPC-write workloads of Figure 9
	// (up to 1104 QPs) stay largely resident, as the paper observes.
	NICCacheEntries int
	// WirePerByte is serialization delay (100 Gb/s ⇒ 0.08 ns/B).
	WirePerByte float64
	// WireLat is one-way propagation plus switch latency.
	WireLat sim.Time
	// PktOverheadBytes is per-packet header overhead on the wire.
	PktOverheadBytes int
	// MTU is the wire MTU (the paper uses 4096 everywhere).
	MTU int

	// --- Server CPU (FLock / RC ring path) ---

	// ServerCores is the number of cores serving requests.
	ServerCores int
	// PollFind is the dispatcher's cost to discover one complete message
	// in a ring (§4.3); paid once per coalesced message.
	PollFind sim.Time
	// ScanPerQP is the amortized cost per served message of scanning the
	// other rings — it grows with the number of QPs polled, which is why
	// "no sharing" burns more CPU at high thread counts (§8.3.1).
	ScanPerQP sim.Time
	// ItemDispatch is the per-request decode/dispatch cost.
	ItemDispatch sim.Time
	// RespStage is the per-response staging cost (metadata + copy base).
	RespStage sim.Time

	// --- Server CPU (UD / eRPC-FaSST path) ---

	// UDPktRX is the per-packet receive cost: CQ polling plus receive-
	// buffer recycling (ibv_post_recv) — the overhead that saturates UD
	// servers in Figure 2(b) ("most cycles are spent recycling receive
	// buffers and polling the completion queue").
	UDPktRX sim.Time
	// UDPktTX is the per-packet transmit cost (header build, post, CQ).
	UDPktTX sim.Time
	// UDClientPkt is the client-side per-packet cost (latency only).
	UDClientPkt sim.Time
}

// DefaultCosts returns the calibration used throughout EXPERIMENTS.md.
func DefaultCosts() Costs {
	return Costs{
		StageWindow:  250,
		FollowerJoin: 60,
		MMIO:         150,
		CopyPerByte:  0.3,
		RespDispatch: 50,

		NICUnits:         4,
		NICBaseWR:        70,
		NICCacheMiss:     300,
		NICCacheEntries:  2048,
		WirePerByte:      0.08,
		WireLat:          850,
		PktOverheadBytes: 60,
		MTU:              4096,

		ServerCores:  32,
		PollFind:     300,
		ScanPerQP:    1,
		ItemDispatch: 150,
		RespStage:    100,

		UDPktRX:     900,
		UDPktTX:     600,
		UDClientPkt: 300,
	}
}

// wireBytes returns the on-wire footprint of a payload.
func (c *Costs) wireBytes(payload int) int {
	pkts := (payload + c.MTU - 1) / c.MTU
	if pkts < 1 {
		pkts = 1
	}
	return payload + pkts*c.PktOverheadBytes
}

// packets returns the packet count of a payload.
func (c *Costs) packets(payload int) int {
	pkts := (payload + c.MTU - 1) / c.MTU
	if pkts < 1 {
		pkts = 1
	}
	return pkts
}

// nicService is the NIC pipeline time for one WR of the given wire size.
func (c *Costs) nicService(bytes int, miss bool) sim.Time {
	t := c.NICBaseWR + sim.Time(float64(bytes)*c.WirePerByte)
	if miss {
		t += c.NICCacheMiss
	}
	return t
}
