package model

import (
	"fmt"
	"math"

	"flock/internal/sim"
	"flock/internal/stats"
)

// Row is one data point of a regenerated table or figure.
type Row struct {
	Figure string  // e.g. "fig6a"
	Series string  // e.g. "flock", "erpc", "no-share"
	X      float64 // the figure's x-axis value (threads, QPs, clients, bytes)
	Mops   float64 // throughput, million ops/sec
	P50us  float64 // median latency, microseconds
	P99us  float64 // 99th-percentile latency, microseconds
	Degree float64 // served coalescing degree (0 when n/a)
	CPU    float64 // server CPU utilization [0,1]
}

// String formats a row for the harness output.
func (r Row) String() string {
	return fmt.Sprintf("%-10s %-14s x=%-8g thr=%8.2fMops p50=%8.1fus p99=%8.1fus deg=%5.2f cpu=%4.2f",
		r.Figure, r.Series, r.X, r.Mops, r.P50us, r.P99us, r.Degree, r.CPU)
}

// rowFrom converts a Result.
func rowFrom(fig, series string, x float64, res Result) Row {
	return Row{
		Figure: fig, Series: series, X: x,
		Mops:   res.Mops,
		P50us:  float64(res.Lat.Median()) / 1000,
		P99us:  float64(res.Lat.P99()) / 1000,
		Degree: res.AvgDegree,
		CPU:    res.ServerCPU,
	}
}

// expTime draws an exponential service time around mean, floored at
// mean/4 — handler-time variance that gives latency distributions a
// realistic tail.
func expTime(rng *stats.RNG, mean sim.Time) sim.Time {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	v := sim.Time(-float64(mean) * math.Log(u))
	if v < mean/4 {
		v = mean / 4
	}
	if v > mean*8 {
		v = mean * 8
	}
	return v
}

// durations returns warmup and measurement windows; quick shrinks them for
// smoke tests and testing.B.
func durations(quick bool) (sim.Time, sim.Time) {
	if quick {
		return 500 * sim.Microsecond, 2 * sim.Millisecond
	}
	return 2 * sim.Millisecond, 10 * sim.Millisecond
}

// echoReq builds the 64-byte echo workload of §8.2/§8.3 with exponential
// handler variance.
func echoReq(handlerMean sim.Time) func(int, int, *stats.RNG) ReqSpec {
	return func(c, t int, rng *stats.RNG) ReqSpec {
		return ReqSpec{ReqSize: 64, RespSize: 64, Handler: expTime(rng, handlerMean)}
	}
}

const echoHandler = 100 // trivial echo handler mean, ns

// Fig2a regenerates Figure 2(a): 16-byte RDMA reads from 22 clients to
// one server, sweeping the total QP count. Performance peaks while the
// server NIC's connection cache holds the working set and falls off a
// cliff beyond it.
func Fig2a(quick bool) []Row {
	var rows []Row
	warm, dur := durations(quick)
	for _, qps := range []int{22, 44, 88, 176, 352, 704, 1408, 2816} {
		perClient := qps / 22
		if perClient < 1 {
			perClient = 1
		}
		cfg := RPCConfig{
			Transport:        TransportFlock, // raw RC topology; reads bypass combining
			Clients:          22,
			ThreadsPerClient: perClient,
			QPsPerConn:       perClient,
			MaxActiveQPs:     1 << 20, // no scheduler: this is vanilla RDMA
			NextReq:          echoReq(echoHandler),
			Warmup:           warm,
			Duration:         dur,
		}
		m := NewModel(cfg)
		// One outstanding 16-byte read per QP, driven directly through the
		// one-sided path (no server CPU at all).
		var pump func(th *threadModel)
		pump = func(th *threadModel) {
			start := m.eng.Now()
			m.OneSidedRead(th, 0, 16, func() {
				if m.measuring {
					m.ops++
					m.lat.Record(uint64(m.eng.Now() - start))
				}
				pump(th)
			})
		}
		for _, th := range m.threads {
			th := th
			m.eng.After(sim.Time(th.idx%13), func() { pump(th) })
		}
		m.eng.After(warm, m.startMeasuring)
		m.eng.RunUntil(warm + dur)
		res := m.Finish(dur)
		rows = append(rows, rowFrom("fig2a", "rdma-read-rc", float64(qps), res))
	}
	return rows
}

// Fig2b regenerates Figure 2(b): 16-byte UD RPCs with a growing sender
// count; the server saturates on per-packet CPU (receive-buffer recycling
// and CQ polling) and throughput flattens.
func Fig2b(quick bool) []Row {
	var rows []Row
	warm, dur := durations(quick)
	for _, senders := range []int{22, 44, 88, 176, 352, 704, 1408, 2816} {
		perClient := senders / 22
		if perClient < 1 {
			perClient = 1
		}
		cfg := RPCConfig{
			Transport:        TransportUD,
			Clients:          22,
			ThreadsPerClient: perClient,
			Outstanding:      1,
			NextReq: func(c, t int, rng *stats.RNG) ReqSpec {
				return ReqSpec{ReqSize: 16, RespSize: 16, Handler: expTime(rng, echoHandler)}
			},
			Warmup:   warm,
			Duration: dur,
		}
		rows = append(rows, rowFrom("fig2b", "ud-rpc", float64(senders), NewModel(cfg).Run()))
	}
	return rows
}

// figThreads is the per-client thread sweep of Figures 6–8.
var figThreads = []int{1, 2, 4, 8, 16, 32, 48}

// Fig6 regenerates Figures 6, 7 and 8 in one sweep (they are the
// throughput, median, and 99th-percentile views of the same runs): FLock
// vs eRPC, 23 clients, 64-byte echo, outstanding ∈ {1, 4, 8}.
func Fig6(quick bool) []Row {
	var rows []Row
	warm, dur := durations(quick)
	for _, outstanding := range []int{1, 4, 8} {
		sub := map[int]string{1: "a", 4: "b", 8: "c"}[outstanding]
		for _, threads := range figThreads {
			base := RPCConfig{
				Clients:          23,
				ThreadsPerClient: threads,
				Outstanding:      outstanding,
				NextReq:          echoReq(echoHandler),
				ThreadSched:      true,
				Warmup:           warm,
				Duration:         dur,
			}
			fl := base
			fl.Transport = TransportFlock
			rows = append(rows, rowFrom("fig6"+sub, "flock", float64(threads), NewModel(fl).Run()))
			ud := base
			ud.Transport = TransportUD
			rows = append(rows, rowFrom("fig6"+sub, "erpc", float64(threads), NewModel(ud).Run()))
		}
	}
	return rows
}

// Fig9 regenerates Figure 9: FLock vs no sharing (1 thread/QP) vs
// FaRM-like spinlock sharing (2 and 4 threads/QP), 64-byte RPCs with 8
// outstanding per thread.
func Fig9(quick bool) []Row {
	var rows []Row
	warm, dur := durations(quick)
	series := []struct {
		name string
		tr   Transport
		tpq  int
	}{
		{"flock", TransportFlock, 0},
		{"no-share", TransportNoShare, 1},
		{"farm-2/qp", TransportLockShare, 2},
		{"farm-4/qp", TransportLockShare, 4},
	}
	for _, threads := range []int{1, 2, 4, 8, 16, 32, 48} {
		for _, s := range series {
			cfg := RPCConfig{
				Transport:        s.tr,
				Clients:          23,
				ThreadsPerClient: threads,
				Outstanding:      8,
				NextReq:          echoReq(echoHandler),
				ThreadSched:      true,
				ThreadsPerQP:     s.tpq,
				Warmup:           warm,
				Duration:         dur,
			}
			rows = append(rows, rowFrom("fig9", s.name, float64(threads), NewModel(cfg).Run()))
		}
	}
	return rows
}

// Fig10 regenerates Figure 10: coalescing on vs off at 32 threads/client,
// outstanding ∈ {1, 4, 8}. "Off" bounds the leader batch at one request.
func Fig10(quick bool) []Row {
	var rows []Row
	warm, dur := durations(quick)
	for _, outstanding := range []int{1, 4, 8} {
		for _, coalesce := range []bool{false, true} {
			cfg := RPCConfig{
				Transport:        TransportFlock,
				Clients:          23,
				ThreadsPerClient: 32,
				Outstanding:      outstanding,
				NextReq:          echoReq(echoHandler),
				ThreadSched:      true,
				MaxBatch:         1,
				Warmup:           warm,
				Duration:         dur,
			}
			name := "no-coalescing"
			if coalesce {
				cfg.MaxBatch = 16
				name = "coalescing"
			}
			rows = append(rows, rowFrom("fig10", name, float64(outstanding), NewModel(cfg).Run()))
		}
	}
	return rows
}

// Fig11 regenerates Figure 11: 90 % of threads send 64-byte requests and
// 10 % send large ones (512/768/1024 B); sender-side thread scheduling on
// vs off. Scheduling isolates the large-payload threads on their own QPs,
// sparing the small requests the head-of-line blocking.
func Fig11(quick bool) []Row {
	var rows []Row
	warm, dur := durations(quick)
	for _, large := range []int{512, 768, 1024} {
		for _, sched := range []bool{false, true} {
			large := large
			cfg := RPCConfig{
				Transport:        TransportFlock,
				Clients:          23,
				ThreadsPerClient: 32,
				Outstanding:      8,
				NextReq: func(c, t int, rng *stats.RNG) ReqSpec {
					size := 64
					if t < 4 { // 4 of 32 threads ≈ 10% large (paper's mix, rounded)
						size = large
					}
					return ReqSpec{ReqSize: size, RespSize: 64, Handler: expTime(rng, echoHandler)}
				},
				ThreadSched: sched,
				Warmup:      warm,
				Duration:    dur,
			}
			name := "no-thread-sched"
			if sched {
				name = "thread-sched"
			}
			rows = append(rows, rowFrom("fig11", name, float64(large), NewModel(cfg).Run()))
		}
	}
	return rows
}

// Fig12 regenerates Figure 12 (node scalability): 23→368 client processes
// across three configurations — one thread with its own QP (no coalescing
// possible), two threads sharing one QP (FLock), and two threads with
// dedicated QPs (native RC).
func Fig12(quick bool) []Row {
	var rows []Row
	warm, dur := durations(quick)
	for _, clients := range []int{23, 46, 92, 184, 368} {
		configs := []struct {
			name    string
			tr      Transport
			threads int
			qps     int
		}{
			{"1thr-1qp", TransportFlock, 1, 1},
			{"2thr-1qp", TransportFlock, 2, 1},
			{"2thr-2qp", TransportNoShare, 2, 2},
		}
		for _, c := range configs {
			cfg := RPCConfig{
				Transport:        c.tr,
				Clients:          clients,
				ThreadsPerClient: c.threads,
				QPsPerConn:       c.qps,
				Outstanding:      8,
				NextReq:          echoReq(echoHandler),
				Warmup:           warm,
				Duration:         dur,
			}
			rows = append(rows, rowFrom("fig12", c.name, float64(clients), NewModel(cfg).Run()))
		}
	}
	return rows
}

// Fig16 regenerates Figures 16–18: the HydraList index served over FLock
// vs eRPC; 22 clients; 90 % get / 10 % scan(64); outstanding ∈ {1, 4, 8}.
// Get and scan are separate latency classes (the paper reports them
// separately in Figures 17 and 18).
func Fig16(quick bool) []Row {
	const (
		classGet  = 0
		classScan = 1
		getCost   = 250  // point lookup in a 32M-key index
		scanCost  = 1800 // 64-key range scan
	)
	var rows []Row
	warm, dur := durations(quick)
	for _, outstanding := range []int{1, 4, 8} {
		sub := map[int]string{1: "a", 4: "b", 8: "c"}[outstanding]
		for _, threads := range []int{1, 2, 4, 8, 16, 32} {
			base := RPCConfig{
				Clients:          22,
				ThreadsPerClient: threads,
				Outstanding:      outstanding,
				NextReq: func(c, t int, rng *stats.RNG) ReqSpec {
					if rng.Uint64n(10) == 0 {
						return ReqSpec{Class: classScan, ReqSize: 16, RespSize: 8, Handler: expTime(rng, scanCost)}
					}
					return ReqSpec{Class: classGet, ReqSize: 8, RespSize: 8, Handler: expTime(rng, getCost)}
				},
				ThreadSched: true,
				Warmup:      warm,
				Duration:    dur,
			}
			for _, s := range []struct {
				name string
				tr   Transport
			}{{"flock", TransportFlock}, {"erpc", TransportUD}} {
				cfg := base
				cfg.Transport = s.tr
				res := NewModel(cfg).Run()
				row := rowFrom("fig16"+sub, s.name, float64(threads), res)
				rows = append(rows, row)
				// Per-class latency rows for Figures 17/18.
				if g := res.ByClass[classGet]; g != nil {
					rows = append(rows, Row{
						Figure: "fig17" + sub, Series: s.name + "-get", X: float64(threads),
						P50us: float64(g.Median()) / 1000, P99us: float64(g.P99()) / 1000,
					})
				}
				if sc := res.ByClass[classScan]; sc != nil {
					rows = append(rows, Row{
						Figure: "fig17" + sub, Series: s.name + "-scan", X: float64(threads),
						P50us: float64(sc.Median()) / 1000, P99us: float64(sc.P99()) / 1000,
					})
				}
			}
		}
	}
	return rows
}

// AblationMaxAQP sweeps MAX_AQP (the Figure 2-motivated cap of §5.1) at a
// fixed heavy load, showing the sweet spot the paper picked (256).
func AblationMaxAQP(quick bool) []Row {
	var rows []Row
	warm, dur := durations(quick)
	costs := DefaultCosts()
	costs.NICCacheEntries = 512 // the Figure 2(a)-era NIC the cap protects
	for _, maxAQP := range []int{32, 64, 128, 256, 512, 1024, 2048} {
		cfg := RPCConfig{
			Transport:        TransportFlock,
			Clients:          23,
			ThreadsPerClient: 48,
			Outstanding:      8,
			MaxActiveQPs:     maxAQP,
			Costs:            costs,
			NextReq:          echoReq(echoHandler),
			ThreadSched:      true,
			Warmup:           warm,
			Duration:         dur,
		}
		rows = append(rows, rowFrom("ablation-maxaqp", "flock", float64(maxAQP), NewModel(cfg).Run()))
	}
	return rows
}

// AblationBatch sweeps the leader's combining bound (§4.2's "bounded
// number of buffers") at 32 threads/client with 8 outstanding.
func AblationBatch(quick bool) []Row {
	var rows []Row
	warm, dur := durations(quick)
	for _, batch := range []int{1, 2, 4, 8, 16, 32} {
		cfg := RPCConfig{
			Transport:        TransportFlock,
			Clients:          23,
			ThreadsPerClient: 32,
			Outstanding:      8,
			MaxBatch:         batch,
			NextReq:          echoReq(echoHandler),
			ThreadSched:      true,
			Warmup:           warm,
			Duration:         dur,
		}
		rows = append(rows, rowFrom("ablation-batch", "flock", float64(batch), NewModel(cfg).Run()))
	}
	return rows
}

// AblationInterval sweeps the scheduling interval's effect indirectly by
// varying the stage window (the combining opportunity window): the longer
// a leader combines, the higher the degree but the worse the base
// latency — the §4.2 trade-off.
func AblationInterval(quick bool) []Row {
	var rows []Row
	warm, dur := durations(quick)
	for _, window := range []sim.Time{100, 200, 400, 800, 1600} {
		costs := DefaultCosts()
		costs.StageWindow = window
		cfg := RPCConfig{
			Transport:        TransportFlock,
			Clients:          23,
			ThreadsPerClient: 32,
			Outstanding:      8,
			Costs:            costs,
			NextReq:          echoReq(echoHandler),
			ThreadSched:      true,
			Warmup:           warm,
			Duration:         dur,
		}
		rows = append(rows, rowFrom("ablation-window", "flock", float64(window), NewModel(cfg).Run()))
	}
	return rows
}
