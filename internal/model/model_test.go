package model

import (
	"testing"

	"flock/internal/sim"
	"flock/internal/stats"
)

// pick returns the row for (figure, series, x), failing if absent.
func pick(t *testing.T, rows []Row, fig, series string, x float64) Row {
	t.Helper()
	for _, r := range rows {
		if r.Figure == fig && r.Series == series && r.X == x {
			return r
		}
	}
	t.Fatalf("no row %s/%s/x=%g", fig, series, x)
	return Row{}
}

func TestFig2aShape(t *testing.T) {
	rows := Fig2a(true)
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	low := pick(t, rows, "fig2a", "rdma-read-rc", 22)
	peak := pick(t, rows, "fig2a", "rdma-read-rc", 352)
	cliff := pick(t, rows, "fig2a", "rdma-read-rc", 2816)
	// Paper shape: rises to a peak between 176–704 QPs, then a sharp drop.
	if peak.Mops <= low.Mops {
		t.Errorf("no rise: peak %.1f <= low %.1f", peak.Mops, low.Mops)
	}
	if cliff.Mops >= peak.Mops*0.7 {
		t.Errorf("no cliff: 2816 QPs %.1f vs peak %.1f", cliff.Mops, peak.Mops)
	}
}

func TestFig2bShape(t *testing.T) {
	rows := Fig2b(true)
	low := pick(t, rows, "fig2b", "ud-rpc", 22)
	mid := pick(t, rows, "fig2b", "ud-rpc", 352)
	high := pick(t, rows, "fig2b", "ud-rpc", 2816)
	// Paper shape: rises, then saturates on server CPU (no cliff).
	if mid.Mops <= low.Mops {
		t.Errorf("no rise: %.1f <= %.1f", mid.Mops, low.Mops)
	}
	if high.Mops < mid.Mops*0.8 || high.Mops > mid.Mops*1.2 {
		t.Errorf("UD should plateau: 352→%.1f, 2816→%.1f", mid.Mops, high.Mops)
	}
	if mid.CPU < 0.9 {
		t.Errorf("UD server should be CPU-bound: util %.2f", mid.CPU)
	}
}

func TestFig6Shape(t *testing.T) {
	rows := Fig6(true)
	// At low thread counts the systems are comparable (paper: "comparable
	// performance up to four threads").
	fl4 := pick(t, rows, "fig6a", "flock", 4)
	ud4 := pick(t, rows, "fig6a", "erpc", 4)
	if ratio := fl4.Mops / ud4.Mops; ratio > 2 || ratio < 0.5 {
		t.Errorf("4 threads should be comparable: flock %.1f vs erpc %.1f", fl4.Mops, ud4.Mops)
	}
	// eRPC saturates; FLock keeps scaling. Overall improvement 1.25–3.4×.
	fl48 := pick(t, rows, "fig6a", "flock", 48)
	ud48 := pick(t, rows, "fig6a", "erpc", 48)
	ratio := fl48.Mops / ud48.Mops
	if ratio < 1.5 || ratio > 4.5 {
		t.Errorf("48-thread ratio %.2f outside the paper's band", ratio)
	}
	// FLock throughput grows from 16 → 32 → 48 threads (§8.2).
	fl16 := pick(t, rows, "fig6a", "flock", 16)
	fl32 := pick(t, rows, "fig6a", "flock", 32)
	if fl32.Mops <= fl16.Mops*1.05 || fl48.Mops <= fl32.Mops*1.02 {
		t.Errorf("flock not scaling: 16→%.1f 32→%.1f 48→%.1f", fl16.Mops, fl32.Mops, fl48.Mops)
	}
	// eRPC saturated by 16 threads.
	ud16 := pick(t, rows, "fig6a", "erpc", 16)
	if ud48.Mops > ud16.Mops*1.15 {
		t.Errorf("erpc should saturate: 16→%.1f 48→%.1f", ud16.Mops, ud48.Mops)
	}
	// Latency: eRPC median spikes at high threads (Figure 7).
	if ud48.P50us < fl48.P50us*1.5 {
		t.Errorf("erpc median should spike: erpc %.1fus vs flock %.1fus", ud48.P50us, fl48.P50us)
	}
	// Tail latency orders the same way (Figure 8).
	if ud48.P99us < fl48.P99us {
		t.Errorf("erpc p99 %.1fus below flock %.1fus", ud48.P99us, fl48.P99us)
	}
}

func TestFig9Shape(t *testing.T) {
	rows := Fig9(true)
	// Up to 8 threads all approaches are similar (no sharing yet).
	fl8 := pick(t, rows, "fig9", "flock", 8)
	ns8 := pick(t, rows, "fig9", "no-share", 8)
	if r := fl8.Mops / ns8.Mops; r < 0.7 || r > 1.5 {
		t.Errorf("8 threads should be similar: flock %.1f vs no-share %.1f", fl8.Mops, ns8.Mops)
	}
	// At 32/48 threads FLock wins by a clear margin (paper: ≥62%/133%).
	for _, x := range []float64{32, 48} {
		fl := pick(t, rows, "fig9", "flock", x)
		ns := pick(t, rows, "fig9", "no-share", x)
		ls2 := pick(t, rows, "fig9", "farm-2/qp", x)
		ls4 := pick(t, rows, "fig9", "farm-4/qp", x)
		if fl.Mops < ns.Mops*1.3 {
			t.Errorf("x=%g: flock %.1f not ahead of no-share %.1f", x, fl.Mops, ns.Mops)
		}
		// Lock sharing performs like no sharing (paper's observation).
		for _, ls := range []Row{ls2, ls4} {
			if r := ls.Mops / ns.Mops; r < 0.5 || r > 1.5 {
				t.Errorf("x=%g: lock-share %.1f should track no-share %.1f", x, ls.Mops, ns.Mops)
			}
		}
		// FLock's tail is lower than no-share's (paper: 27%/49% lower).
		if fl.P99us > ns.P99us {
			t.Errorf("x=%g: flock p99 %.1f above no-share %.1f", x, fl.P99us, ns.P99us)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	rows := Fig10(true)
	for _, outstanding := range []float64{1, 4, 8} {
		on := pick(t, rows, "fig10", "coalescing", outstanding)
		off := pick(t, rows, "fig10", "no-coalescing", outstanding)
		gain := on.Mops / off.Mops
		// Paper: 1.4× at one outstanding, 1.7× at 4 and 8.
		if gain < 1.15 {
			t.Errorf("outstanding %g: coalescing gain %.2f too small", outstanding, gain)
		}
		if on.Degree <= 1.1 {
			t.Errorf("outstanding %g: degree %.2f with coalescing on", outstanding, on.Degree)
		}
		if off.Degree > 1.01 {
			t.Errorf("outstanding %g: degree %.2f with coalescing off", outstanding, off.Degree)
		}
	}
	// The paper reports 1.4×–1.7× across outstanding counts; the model
	// lands in the 1.5×–2.5× band (see EXPERIMENTS.md for the per-point
	// comparison). Assert the band rather than the fine trend.
	for _, outstanding := range []float64{1, 4, 8} {
		g := pick(t, rows, "fig10", "coalescing", outstanding).Mops /
			pick(t, rows, "fig10", "no-coalescing", outstanding).Mops
		if g < 1.3 || g > 3.0 {
			t.Errorf("outstanding %g: coalescing gain %.2f outside [1.3, 3.0]", outstanding, g)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	rows := Fig11(true)
	for _, size := range []float64{512, 768, 1024} {
		with := pick(t, rows, "fig11", "thread-sched", size)
		without := pick(t, rows, "fig11", "no-thread-sched", size)
		gain := with.Mops / without.Mops
		// Paper: up to 1.5× improvement.
		if gain < 1.05 {
			t.Errorf("size %g: thread scheduling gain %.2f", size, gain)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	rows := Fig12(true)
	// 1thr/1QP saturates with client count (no coalescing possible).
	one184 := pick(t, rows, "fig12", "1thr-1qp", 184)
	one368 := pick(t, rows, "fig12", "1thr-1qp", 368)
	if one368.Mops > one184.Mops*1.5 {
		t.Errorf("1thr/1qp should be saturating: 184→%.1f 368→%.1f", one184.Mops, one368.Mops)
	}
	// Shared QP beats dedicated QPs at scale (paper: 10–30% better).
	for _, x := range []float64{184, 368} {
		shared := pick(t, rows, "fig12", "2thr-1qp", x)
		dedicated := pick(t, rows, "fig12", "2thr-2qp", x)
		if shared.Mops < dedicated.Mops {
			t.Errorf("x=%g: shared %.1f below dedicated %.1f", x, shared.Mops, dedicated.Mops)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	rows := Fig14(true)
	// FaSST is competitive at low thread counts, then saturates while
	// FLockTX keeps scaling (paper: 1.9×/2.4× at 8/16 threads).
	fl1 := pick(t, rows, "fig14", "flocktx", 1)
	fa1 := pick(t, rows, "fig14", "fasst", 1)
	if r := fl1.Mops / fa1.Mops; r > 2.2 || r < 0.45 {
		t.Errorf("1 thread should be comparable: %.2f vs %.2f", fl1.Mops, fa1.Mops)
	}
	fl16 := pick(t, rows, "fig14", "flocktx", 16)
	fa16 := pick(t, rows, "fig14", "fasst", 16)
	if fl16.Mops < fa16.Mops*1.4 {
		t.Errorf("16 threads: flocktx %.2f vs fasst %.2f (want ≥1.4×)", fl16.Mops, fa16.Mops)
	}
	// FLockTX throughput grows with threads.
	fl8 := pick(t, rows, "fig14", "flocktx", 8)
	if fl16.Mops <= fl8.Mops {
		t.Errorf("flocktx not scaling: 8→%.2f 16→%.2f", fl8.Mops, fl16.Mops)
	}
	// FaSST latency worse at scale.
	if fa16.P99us < fl16.P99us {
		t.Errorf("fasst p99 %.1f below flocktx %.1f at 16 threads", fa16.P99us, fl16.P99us)
	}
}

func TestFig15Shape(t *testing.T) {
	rows := Fig15(true)
	fl8 := pick(t, rows, "fig15", "flocktx", 8)
	fa8 := pick(t, rows, "fig15", "fasst", 8)
	// Paper: up to 88% better at 8 threads on the write-heavy workload.
	if fl8.Mops < fa8.Mops*1.2 {
		t.Errorf("8 threads: flocktx %.2f vs fasst %.2f", fl8.Mops, fa8.Mops)
	}
}

func TestFig16Shape(t *testing.T) {
	rows := Fig16(true)
	// At 32 threads with 8 outstanding FLock wins (paper: 1.4×).
	fl := pick(t, rows, "fig16c", "flock", 32)
	ud := pick(t, rows, "fig16c", "erpc", 32)
	if fl.Mops < ud.Mops*1.1 {
		t.Errorf("32 threads: flock %.2f vs erpc %.2f", fl.Mops, ud.Mops)
	}
	// Scan latency exceeds get latency where service time dominates
	// (low load; at saturation queueing delay swamps the difference).
	flGet := pick(t, rows, "fig17a", "flock-get", 1)
	flScan := pick(t, rows, "fig17a", "flock-scan", 1)
	if flScan.P50us <= flGet.P50us {
		t.Errorf("scan p50 %.1f not above get p50 %.1f", flScan.P50us, flGet.P50us)
	}
}

func TestAblations(t *testing.T) {
	aqp := AblationMaxAQP(true)
	// The cap exists to avoid NIC-cache thrashing: the paper's choice
	// (256) must beat an uncapped configuration that thrashes (2048
	// active QPs over a 512-context cache).
	best := pick(t, aqp, "ablation-maxaqp", "flock", 256)
	thrash := pick(t, aqp, "ablation-maxaqp", "flock", 2048)
	if best.Mops <= thrash.Mops {
		t.Errorf("MAX_AQP 256 (%.1f) should beat 2048 (%.1f)", best.Mops, thrash.Mops)
	}

	batch := AblationBatch(true)
	b1 := pick(t, batch, "ablation-batch", "flock", 1)
	b16 := pick(t, batch, "ablation-batch", "flock", 16)
	if b16.Mops <= b1.Mops {
		t.Errorf("batch 16 (%.1f) should beat batch 1 (%.1f)", b16.Mops, b1.Mops)
	}

	win := AblationInterval(true)
	if len(win) != 5 {
		t.Fatalf("window ablation rows: %d", len(win))
	}
	// Longer combining windows raise the coalescing degree.
	w100 := pick(t, win, "ablation-window", "flock", 100)
	w1600 := pick(t, win, "ablation-window", "flock", 1600)
	if w1600.Degree <= w100.Degree {
		t.Errorf("degree should grow with window: %.2f → %.2f", w100.Degree, w1600.Degree)
	}
}

func TestExpTime(t *testing.T) {
	rng := stats.NewRNG(3)
	var sum float64
	const n = 20000
	const mean = 1000
	for i := 0; i < n; i++ {
		v := expTime(rng, mean)
		if v < mean/4 || v > mean*8 {
			t.Fatalf("expTime out of clamp: %d", v)
		}
		sum += float64(v)
	}
	got := sum / n
	// Clamping biases the mean slightly; allow a broad band.
	if got < mean*0.8 || got > mean*1.3 {
		t.Errorf("exp mean %.0f, want ~%d", got, mean)
	}
}

func TestLRUCacheModel(t *testing.T) {
	c := newLRU(2)
	if c.access(1) {
		t.Fatal("first access hit")
	}
	if !c.access(1) {
		t.Fatal("second access missed")
	}
	c.access(2)
	c.access(3) // evicts 1
	if c.access(1) {
		t.Fatal("evicted entry hit")
	}
	h, m := c.stats()
	if h != 1 || m != 4 {
		t.Fatalf("hits=%d misses=%d", h, m)
	}
	// Unlimited cache always hits.
	u := newLRU(0)
	for i := 0; i < 100; i++ {
		if !u.access(i) {
			t.Fatal("unlimited cache missed")
		}
	}
}

func TestModelDeterminism(t *testing.T) {
	run := func() Result {
		cfg := RPCConfig{
			Transport:        TransportFlock,
			Clients:          4,
			ThreadsPerClient: 8,
			Outstanding:      4,
			NextReq:          echoReq(echoHandler),
			ThreadSched:      true,
			Seed:             99,
			Warmup:           200 * sim.Microsecond,
			Duration:         1 * sim.Millisecond,
		}
		return NewModel(cfg).Run()
	}
	a, b := run(), run()
	if a.Ops != b.Ops || a.Mops != b.Mops || a.Lat.P99() != b.Lat.P99() {
		t.Fatalf("nondeterministic model: %d vs %d ops", a.Ops, b.Ops)
	}
}
