package model

import (
	"testing"

	"flock/internal/sim"
	"flock/internal/stats"
)

// Hand-computed single-request pipeline checks: with one thread and one
// request, the model's latency must equal the sum of its stage costs
// exactly — this pins the event plumbing independent of contention.

// flatCosts returns a calibration with every constant distinct and easy
// to sum by hand.
func flatCosts() Costs {
	return Costs{
		StageWindow:      100,
		FollowerJoin:     10,
		MMIO:             20,
		CopyPerByte:      0, // no size-dependent terms
		RespDispatch:     30,
		NICUnits:         1,
		NICBaseWR:        40,
		NICCacheMiss:     1000,
		NICCacheEntries:  0, // unlimited: no misses
		WirePerByte:      0,
		WireLat:          500,
		PktOverheadBytes: 0,
		MTU:              4096,
		ServerCores:      1,
		PollFind:         60,
		ScanPerQP:        0,
		ItemDispatch:     70,
		RespStage:        80,
		UDPktRX:          90,
		UDPktTX:          110,
		UDClientPkt:      120,
	}
}

// runOne executes exactly one request and returns its latency.
func runOne(t *testing.T, tr Transport) sim.Time {
	t.Helper()
	cfg := RPCConfig{
		Transport:        tr,
		Clients:          1,
		ThreadsPerClient: 1,
		Costs:            flatCosts(),
		NextReq: func(c, th int, rng *stats.RNG) ReqSpec {
			return ReqSpec{ReqSize: 64, RespSize: 64, Handler: 1000}
		},
	}
	m := NewModel(cfg)
	var lat sim.Time
	done := false
	m.measuring = true
	spec := cfg.NextReq(0, 0, nil)
	start := m.eng.Now()
	m.Submit(m.threads[0], 0, spec, func(r *request) {
		lat = m.eng.Now() - start
		done = true
	})
	m.eng.Drain()
	if !done {
		t.Fatal("request never completed")
	}
	return lat
}

func TestPipelineLatencyFlock(t *testing.T) {
	// Stage sum:
	//   leader window            100
	//   client NIC (1 WR)         40
	//   wire                     500
	//   server NIC               40
	//   server CPU: poll 60 + dispatch 70 + handler 1000 + respStage 80
	//              + MMIO 20  = 1230
	//   server NIC (resp)         40
	//   wire                     500
	//   client NIC                40
	//   resp dispatch (i=0 ⇒ ×1)  30
	const want = 100 + 40 + 500 + 40 + 1230 + 40 + 500 + 40 + 30
	if got := runOne(t, TransportFlock); got != want {
		t.Fatalf("flock single-request latency = %d, want %d", got, want)
	}
}

func TestPipelineLatencyUD(t *testing.T) {
	// Stage sum:
	//   submit: MMIO 20 (copy 0)
	//   client NIC (1 pkt)        40
	//   wire                     500
	//   server NIC                40
	//   server CPU: RX 90 + handler 1000 + TX 110 = 1200
	//   server NIC (resp)         40
	//   wire                     500
	//   client NIC                40
	//   client per-pkt           120
	const want = 20 + 40 + 500 + 40 + 1200 + 40 + 500 + 40 + 120
	if got := runOne(t, TransportUD); got != want {
		t.Fatalf("ud single-request latency = %d, want %d", got, want)
	}
}

func TestPipelineLatencyNoShare(t *testing.T) {
	// Same as flock with a batch of exactly one (stage window identical).
	const want = 100 + 40 + 500 + 40 + 1230 + 40 + 500 + 40 + 30
	if got := runOne(t, TransportNoShare); got != want {
		t.Fatalf("no-share single-request latency = %d, want %d", got, want)
	}
}

func TestPipelineOneSidedRead(t *testing.T) {
	// fl_read path: client NIC, wire, server NIC, wire, client NIC —
	// no server CPU at all.
	cfg := RPCConfig{
		Transport:        TransportFlock,
		Clients:          1,
		ThreadsPerClient: 1,
		Costs:            flatCosts(),
		NextReq: func(c, th int, rng *stats.RNG) ReqSpec {
			return ReqSpec{ReqSize: 8, RespSize: 8, Handler: 0}
		},
	}
	m := NewModel(cfg)
	var lat sim.Time
	start := m.eng.Now()
	m.OneSidedRead(m.threads[0], 0, 8, func() {
		lat = m.eng.Now() - start
	})
	m.eng.Drain()
	const want = 40 + 500 + 40 + 500 + 40
	if lat != want {
		t.Fatalf("one-sided read latency = %d, want %d", lat, want)
	}
	if m.servers[0].cores.Served() != 0 {
		t.Fatal("one-sided read consumed server CPU")
	}
}

func TestPipelineNICMissCharged(t *testing.T) {
	// With a 1-entry cache and two distinct QPs, the second QP's request
	// must pay the miss penalty at the server NIC.
	costs := flatCosts()
	costs.NICCacheEntries = 1
	cfg := RPCConfig{
		Transport:        TransportNoShare,
		Clients:          2,
		ThreadsPerClient: 1,
		Costs:            costs,
		NextReq: func(c, th int, rng *stats.RNG) ReqSpec {
			return ReqSpec{ReqSize: 64, RespSize: 64, Handler: 0}
		},
	}
	m := NewModel(cfg)
	m.measuring = true
	var lats []sim.Time
	for i, th := range m.threads {
		th := th
		start := sim.Time(i) * 10000 // serialize: no queueing effects
		spec := cfg.NextReq(0, 0, nil)
		m.eng.At(start, func() {
			s := m.eng.Now()
			m.Submit(th, 0, spec, func(*request) {
				lats = append(lats, m.eng.Now()-s)
			})
		})
	}
	m.eng.Drain()
	if len(lats) != 2 {
		t.Fatalf("%d completions", len(lats))
	}
	// Each request's RX misses (evicting the other context); its response
	// TX then hits the just-fetched context. Both requests identical.
	if lats[0] != lats[1] {
		t.Fatalf("asymmetric latencies: %v", lats)
	}
	hits, misses := m.servers[0].cache.stats()
	if misses != 2 || hits != 2 {
		t.Fatalf("server NIC hits/misses = %d/%d, want 2/2", hits, misses)
	}
}

func TestTxnModelDeterminism(t *testing.T) {
	run := func() TxnResult {
		return RunTxnModel(TxnConfig{
			Workload:         "smallbank",
			Transport:        TransportFlock,
			Clients:          2,
			ThreadsPerClient: 2,
			Streams:          4,
			Keys:             10_000,
			Seed:             5,
			Warmup:           200 * sim.Microsecond,
			Duration:         1 * sim.Millisecond,
		})
	}
	a, b := run(), run()
	if a.Mtps != b.Mtps || a.Lat.P99() != b.Lat.P99() {
		t.Fatalf("txn model nondeterministic: %.3f vs %.3f Mtps", a.Mtps, b.Mtps)
	}
	if a.Mtps <= 0 {
		t.Fatal("no transactions completed")
	}
}
