package model

import (
	"flock/internal/core"
	"flock/internal/sim"
	"flock/internal/stats"
)

// Transport selects which communication stack the model simulates.
type Transport int

// The four stacks compared across the paper's figures.
const (
	// TransportFlock is the full system: TCQ combining, coalesced ring
	// messages, QP scheduling, thread scheduling.
	TransportFlock Transport = iota
	// TransportUD is the eRPC/FaSST-style datagram RPC: per-packet CPU,
	// one NIC context, no coalescing.
	TransportUD
	// TransportNoShare is RC with a dedicated QP per thread (Figure 9).
	TransportNoShare
	// TransportLockShare is FaRM-style spinlock QP sharing (Figure 9).
	TransportLockShare
)

// ReqSpec describes one request: its latency class (for per-class
// histograms, e.g. get vs scan), sizes, and server-side handler time.
type ReqSpec struct {
	Class    int
	ReqSize  int
	RespSize int
	Handler  sim.Time
}

// RPCConfig parameterizes a model run.
type RPCConfig struct {
	Transport Transport
	Costs     Costs

	// Cluster shape.
	Servers          int // default 1
	Clients          int
	ThreadsPerClient int
	// Outstanding is the closed-loop window per thread (requests kept in
	// flight; the paper's "outstanding requests per thread").
	Outstanding int

	// NextReq draws the next request for a thread; rng is per-thread.
	NextReq func(client, thread int, rng *stats.RNG) ReqSpec

	// FLock knobs.
	QPsPerConn   int  // per server; default ThreadsPerClient (one per thread)
	MaxActiveQPs int  // per server (MAX_AQP); default 256
	MaxBatch     int  // leader combining bound; 1 disables coalescing
	ThreadSched  bool // Algorithm 1 on/off (Figure 11 ablation)

	// Lock-share knob.
	ThreadsPerQP int // threads per shared QP (2 or 4 in Figure 9)

	Seed     uint64
	Warmup   sim.Time
	Duration sim.Time
}

func (c RPCConfig) withDefaults() RPCConfig {
	if c.Servers <= 0 {
		c.Servers = 1
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.ThreadsPerClient <= 0 {
		c.ThreadsPerClient = 1
	}
	if c.Outstanding <= 0 {
		c.Outstanding = 1
	}
	if c.QPsPerConn <= 0 {
		c.QPsPerConn = c.ThreadsPerClient
	}
	if c.MaxActiveQPs <= 0 {
		c.MaxActiveQPs = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.ThreadsPerQP <= 0 {
		c.ThreadsPerQP = 1
	}
	if c.Warmup == 0 {
		c.Warmup = 2 * sim.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 10 * sim.Millisecond
	}
	if (c.Costs == Costs{}) {
		c.Costs = DefaultCosts()
	}
	return c
}

// Result reports one run's measurements.
type Result struct {
	// Mops is throughput in million operations per second.
	Mops float64
	// Lat is the overall latency distribution (ns).
	Lat *stats.Hist
	// ByClass holds per-class latency distributions.
	ByClass map[int]*stats.Hist
	// AvgDegree is served items per coalesced message (≥ 1).
	AvgDegree float64
	// ServerCPU is server core utilization in [0, 1].
	ServerCPU float64
	// NICMissRate is the server NIC context-cache miss fraction.
	NICMissRate float64
	// Ops is the raw completed-operation count in the measured window.
	Ops uint64
}

// serverModel is one server's resources.
type serverModel struct {
	nic   *sim.Resource
	cores *sim.Resource
	cache *lruCache
}

// qpModel is the client end of one (possibly shared) queue pair.
type qpModel struct {
	gid        int // global id: the NIC cache key
	client     int
	server     int
	pending    []*request
	leaderBusy bool
	lock       *sim.Resource // lock-share submission serialization
}

// threadModel is one client application thread: a serial executor.
type threadModel struct {
	client, idx int
	qp          []*qpModel // assigned QP per server
	queue       []*request
	busy        bool
	rng         *stats.RNG
}

// request is one in-flight operation (or, when local > 0, a slice of
// thread-local CPU work occupying the thread's serial executor — the
// coordinator-side processing a transaction spends between its RPCs).
type request struct {
	start  sim.Time
	spec   ReqSpec
	th     *threadModel
	server int
	local  sim.Time
	done   func(*request) // completion hook (closed loop or txn driver)
}

// Model is the instantiated cluster; the figure runners drive it either
// with the built-in closed loop (Run) or directly via Submit (the
// transaction models).
type Model struct {
	cfg RPCConfig
	C   *Costs
	eng *sim.Engine

	servers    []*serverModel
	clientNICs []*sim.Resource
	threads    []*threadModel
	qps        [][]*qpModel // [server][global qp index among that server's]
	activeQPs  int          // total active across servers (scan cost input)

	measuring bool
	ops       uint64
	msgs      uint64
	items     uint64
	lat       *stats.Hist
	byClass   map[int]*stats.Hist

	cpuBusy0 sim.Time
	hits0    uint64
	miss0    uint64
}

// NewModel builds the cluster without starting load.
func NewModel(cfg RPCConfig) *Model {
	cfg = cfg.withDefaults()
	C := cfg.Costs
	m := &Model{
		cfg:     cfg,
		C:       &C,
		eng:     sim.New(),
		lat:     stats.NewHist(),
		byClass: make(map[int]*stats.Hist),
	}
	for s := 0; s < cfg.Servers; s++ {
		m.servers = append(m.servers, &serverModel{
			nic:   sim.NewResource(m.eng, C.NICUnits),
			cores: sim.NewResource(m.eng, C.ServerCores),
			cache: newLRU(C.NICCacheEntries),
		})
	}
	for cl := 0; cl < cfg.Clients; cl++ {
		m.clientNICs = append(m.clientNICs, sim.NewResource(m.eng, C.NICUnits))
	}
	m.buildTopology()
	return m
}

// Engine exposes the simulation engine (txn drivers schedule on it).
func (m *Model) Engine() *sim.Engine { return m.eng }

// Threads exposes the thread models.
func (m *Model) Threads() []*threadModel { return m.threads }

// buildTopology creates QPs and assigns threads per the transport.
func (m *Model) buildTopology() {
	cfg := m.cfg
	gid := 0
	m.qps = make([][]*qpModel, cfg.Servers)

	qpsPerConn := cfg.QPsPerConn
	switch cfg.Transport {
	case TransportNoShare:
		qpsPerConn = cfg.ThreadsPerClient
	case TransportLockShare:
		qpsPerConn = (cfg.ThreadsPerClient + cfg.ThreadsPerQP - 1) / cfg.ThreadsPerQP
	case TransportUD:
		qpsPerConn = 1 // one datagram context per client; never thrashes
	}

	// Receiver-side QP scheduling (§5.1): under the MAX_AQP budget all
	// QPs stay active; above it, the shipped RedistributeQPs formula
	// splits the budget (equal utilization across equally-loaded
	// clients).
	activePerClient := qpsPerConn
	if cfg.Transport == TransportFlock {
		total := qpsPerConn * cfg.Clients
		if total > cfg.MaxActiveQPs {
			util := make([][]float64, cfg.Clients)
			for i := range util {
				util[i] = make([]float64, qpsPerConn)
				for j := range util[i] {
					util[i][j] = 1
				}
			}
			counts := core.RedistributeQPs(util, cfg.MaxActiveQPs)
			activePerClient = counts[0] // equal load ⇒ equal share
			if activePerClient < 1 {
				activePerClient = 1
			}
		}
	}

	type connQPs struct{ qps []*qpModel }
	conns := make([][]connQPs, cfg.Clients) // [client][server]
	for cl := 0; cl < cfg.Clients; cl++ {
		conns[cl] = make([]connQPs, cfg.Servers)
		for s := 0; s < cfg.Servers; s++ {
			for q := 0; q < activePerClient; q++ {
				qp := &qpModel{gid: gid, client: cl, server: s}
				if cfg.Transport == TransportLockShare {
					qp.lock = sim.NewResource(m.eng, 1)
				}
				gid++
				conns[cl][s].qps = append(conns[cl][s].qps, qp)
				m.qps[s] = append(m.qps[s], qp)
			}
		}
	}
	m.activeQPs = gid

	// Sender-side thread assignment (§5.2).
	for cl := 0; cl < cfg.Clients; cl++ {
		rngBase := stats.NewRNG(cfg.Seed + uint64(cl)*7919 + 1)
		var tstats []core.ThreadStat
		for th := 0; th < cfg.ThreadsPerClient; th++ {
			spec := cfg.NextReq(cl, th, rngBase)
			tstats = append(tstats, core.ThreadStat{
				ID:        uint32(th),
				MedianReq: uint64(spec.ReqSize),
				Reqs:      1000,
				Bytes:     uint64(spec.ReqSize) * 1000,
			})
		}
		var asg map[uint32]int
		if cfg.Transport == TransportFlock && cfg.ThreadSched {
			asg = core.AssignThreads(tstats, activePerClient)
		}
		for th := 0; th < cfg.ThreadsPerClient; th++ {
			tm := &threadModel{
				client: cl,
				idx:    th,
				rng:    stats.NewRNG(cfg.Seed + uint64(cl)<<20 + uint64(th) + 13),
			}
			for s := 0; s < cfg.Servers; s++ {
				qlist := conns[cl][s].qps
				var slot int
				switch cfg.Transport {
				case TransportLockShare:
					slot = th / cfg.ThreadsPerQP
				case TransportUD:
					slot = 0
				default:
					if asg != nil {
						slot = asg[uint32(th)]
					} else {
						slot = th % len(qlist)
					}
				}
				if slot >= len(qlist) {
					slot = len(qlist) - 1
				}
				tm.qp = append(tm.qp, qlist[slot])
			}
			m.threads = append(m.threads, tm)
		}
	}
}

// Submit issues one request from th to server; done runs at completion
// (on the engine goroutine).
func (m *Model) Submit(th *threadModel, server int, spec ReqSpec, done func(*request)) {
	r := &request{start: m.eng.Now(), spec: spec, th: th, server: server, done: done}
	th.queue = append(th.queue, r)
	if !th.busy {
		th.busy = true
		m.threadStep(th)
	}
}

// ThreadWork occupies th's serial executor for dur of local CPU time,
// then runs done. Transaction drivers use it for coordinator-side
// processing: a thread's coroutines overlap network waits but serialize
// on the thread's CPU (§8.5.2).
func (m *Model) ThreadWork(th *threadModel, dur sim.Time, done func()) {
	r := &request{start: m.eng.Now(), th: th, local: dur,
		done: func(*request) { done() }}
	th.queue = append(th.queue, r)
	if !th.busy {
		th.busy = true
		m.threadStep(th)
	}
}

// threadStep processes the thread's next queued submission. The thread is
// a serial executor: while it acts as a combining leader it cannot submit
// its next request — which is exactly why coroutines of one thread do not
// coalesce with each other in the paper (§8.5.2) while threads sharing a
// QP do.
func (m *Model) threadStep(th *threadModel) {
	r := th.queue[0]
	copy(th.queue, th.queue[1:])
	th.queue = th.queue[:len(th.queue)-1]

	finish := func(busyFor sim.Time) {
		m.eng.After(busyFor, func() {
			if len(th.queue) > 0 {
				m.threadStep(th)
			} else {
				th.busy = false
			}
		})
	}

	if r.local > 0 {
		finish(r.local)
		m.eng.After(r.local, func() { m.complete(r) })
		return
	}

	switch m.cfg.Transport {
	case TransportUD:
		pkts := m.C.packets(r.spec.ReqSize)
		submitCost := m.C.MMIO + sim.Time(float64(r.spec.ReqSize)*m.C.CopyPerByte)
		finish(submitCost)
		m.eng.After(submitCost, func() { m.udSend(r, pkts) })

	case TransportFlock:
		q := r.th.qp[r.server]
		q.pending = append(q.pending, r)
		if !q.leaderBusy {
			q.leaderBusy = true
			// The post event precedes the thread's own release at the
			// window boundary: a thread never coalesces with itself
			// (coroutines of one OS thread do not coalesce, §8.5.2).
			m.eng.After(m.C.StageWindow, func() { m.leaderPost(q) })
			finish(m.C.StageWindow) // this thread runs the leader path
		} else {
			finish(m.C.FollowerJoin)
		}

	case TransportNoShare:
		q := r.th.qp[r.server]
		cost := m.C.StageWindow // stage + doorbell, same work minus combining
		finish(cost)
		m.eng.After(cost, func() { m.sendMessage(q, []*request{r}) })

	case TransportLockShare:
		q := r.th.qp[r.server]
		finish(m.C.StageWindow)
		// The spinlock serializes the whole stage+post critical section.
		q.lock.Use(m.C.StageWindow, func() { m.sendMessage(q, []*request{r}) })
	}
}

// leaderPost fires at the end of a combining window: drain up to MaxBatch
// pending requests into one message. Leftover requests immediately start
// the successor leader (§4.2's leadership handoff).
func (m *Model) leaderPost(q *qpModel) {
	n := len(q.pending)
	if n == 0 {
		q.leaderBusy = false
		return
	}
	if n > m.cfg.MaxBatch {
		n = m.cfg.MaxBatch
	}
	batch := make([]*request, n)
	copy(batch, q.pending)
	rem := copy(q.pending, q.pending[n:])
	q.pending = q.pending[:rem]
	// Payload staging extends the critical path by the copy time — the
	// head-of-line cost a large follower imposes on the whole message
	// (§5.2's motivation).
	var copyExtra sim.Time
	for _, r := range batch {
		copyExtra += sim.Time(float64(r.spec.ReqSize) * m.C.CopyPerByte)
	}
	if len(q.pending) > 0 {
		m.eng.After(m.C.StageWindow+copyExtra, func() { m.leaderPost(q) })
	} else {
		q.leaderBusy = false
	}
	m.eng.After(copyExtra, func() { m.sendMessage(q, batch) })
}

// msgBytes computes the coalesced message's payload footprint (header,
// per-item metadata, payloads, canary — §4.1's layout).
func msgBytes(batch []*request, resp bool) int {
	const header = 32
	const meta = 24
	const trailer = 8
	n := header + trailer
	for _, r := range batch {
		sz := r.spec.ReqSize
		if resp {
			sz = r.spec.RespSize
		}
		n += meta + (sz+7)&^7
	}
	return n
}

// sendMessage moves one coalesced message through client NIC → wire →
// server NIC → server CPU → response message back.
func (m *Model) sendMessage(q *qpModel, batch []*request) {
	bytes := m.C.wireBytes(msgBytes(batch, false))
	srv := m.servers[q.server]
	m.clientNICs[q.client].Use(m.C.nicService(bytes, false), func() {
		m.eng.After(m.C.WireLat, func() {
			miss := !srv.cache.access(q.gid)
			srv.nic.Use(m.C.nicService(bytes, miss), func() {
				m.serverProcess(q, batch)
			})
		})
	})
}

// serverProcess charges the server CPU for the whole message and sends
// the coalesced response.
func (m *Model) serverProcess(q *qpModel, batch []*request) {
	srv := m.servers[q.server]
	if m.measuring {
		m.msgs++
		m.items += uint64(len(batch))
	}
	cost := m.C.PollFind + m.C.ScanPerQP*sim.Time(len(m.qps[q.server]))
	for _, r := range batch {
		cost += m.C.ItemDispatch + r.spec.Handler +
			sim.Time(float64(r.spec.ReqSize)*m.C.CopyPerByte) +
			m.C.RespStage + sim.Time(float64(r.spec.RespSize)*m.C.CopyPerByte)
	}
	cost += m.C.MMIO
	srv.cores.Use(cost, func() {
		respBytes := m.C.wireBytes(msgBytes(batch, true))
		miss := !srv.cache.access(q.gid)
		srv.nic.Use(m.C.nicService(respBytes, miss), func() {
			m.eng.After(m.C.WireLat, func() {
				m.clientNICs[q.client].Use(m.C.nicService(respBytes, false), func() {
					for i, r := range batch {
						r := r
						m.eng.After(m.C.RespDispatch*sim.Time(i+1), func() {
							m.complete(r)
						})
					}
				})
			})
		})
	})
}

// udSend moves one datagram request through the UD path: per-packet NIC
// work, per-packet server CPU (CQ poll + recv recycle), handler, response
// datagrams back.
func (m *Model) udSend(r *request, pkts int) {
	srv := m.servers[r.server]
	bytes := m.C.wireBytes(r.spec.ReqSize)
	m.clientNICs[r.th.client].Use(m.C.NICBaseWR*sim.Time(pkts)+sim.Time(float64(bytes)*m.C.WirePerByte), func() {
		m.eng.After(m.C.WireLat, func() {
			srv.cache.access(0) // single datagram context: always resident
			srv.nic.Use(m.C.NICBaseWR*sim.Time(pkts)+sim.Time(float64(bytes)*m.C.WirePerByte), func() {
				if m.measuring {
					m.msgs++
					m.items++
				}
				respPkts := m.C.packets(r.spec.RespSize)
				cpu := m.C.UDPktRX*sim.Time(pkts) + r.spec.Handler + m.C.UDPktTX*sim.Time(respPkts)
				srv.cores.Use(cpu, func() {
					respBytes := m.C.wireBytes(r.spec.RespSize)
					srv.nic.Use(m.C.NICBaseWR*sim.Time(respPkts)+sim.Time(float64(respBytes)*m.C.WirePerByte), func() {
						m.eng.After(m.C.WireLat, func() {
							m.clientNICs[r.th.client].Use(m.C.NICBaseWR*sim.Time(respPkts), func() {
								m.eng.After(m.C.UDClientPkt*sim.Time(respPkts), func() {
									m.complete(r)
								})
							})
						})
					})
				})
			})
		})
	})
}

// OneSidedRead models an fl_read of a few bytes from a server's memory:
// NIC and wire only, no server CPU (§6). done runs at completion.
func (m *Model) OneSidedRead(th *threadModel, server int, bytes int, done func()) {
	q := th.qp[server]
	srv := m.servers[server]
	wire := m.C.wireBytes(bytes)
	m.clientNICs[th.client].Use(m.C.nicService(wire, false), func() {
		m.eng.After(m.C.WireLat, func() {
			miss := !srv.cache.access(q.gid)
			srv.nic.Use(m.C.nicService(wire, miss), func() {
				m.eng.After(m.C.WireLat, func() {
					m.clientNICs[th.client].Use(m.C.nicService(wire, false), func() {
						done()
					})
				})
			})
		})
	})
}

// complete finishes one request: record, then hand to the driver.
func (m *Model) complete(r *request) {
	if r.local > 0 {
		if r.done != nil {
			r.done(r)
		}
		return
	}
	if m.measuring {
		m.ops++
		lat := uint64(m.eng.Now() - r.start)
		m.lat.Record(lat)
		h := m.byClass[r.spec.Class]
		if h == nil {
			h = stats.NewHist()
			m.byClass[r.spec.Class] = h
		}
		h.Record(lat)
	}
	if r.done != nil {
		r.done(r)
	}
}

// Run drives the built-in closed loop: every thread keeps Outstanding
// requests to server 0 in flight for Warmup+Duration, measuring after
// warmup. Use it for the pure-RPC figures; transaction figures drive
// Submit directly.
func (m *Model) Run() Result {
	cfg := m.cfg
	var pump func(th *threadModel)
	pump = func(th *threadModel) {
		spec := cfg.NextReq(th.client, th.idx, th.rng)
		m.Submit(th, 0, spec, func(done *request) { pump(th) })
	}
	for _, th := range m.threads {
		for k := 0; k < cfg.Outstanding; k++ {
			th := th
			m.eng.After(sim.Time(th.idx%7)*10, func() { pump(th) })
		}
	}
	m.eng.After(cfg.Warmup, m.startMeasuring)
	m.eng.RunUntil(cfg.Warmup + cfg.Duration)
	return m.Finish(cfg.Duration)
}

// startMeasuring begins the measurement window (txn drivers call it via
// the engine at their warmup boundary).
func (m *Model) startMeasuring() {
	m.measuring = true
	m.ops, m.msgs, m.items = 0, 0, 0
	m.lat.Reset()
	for _, h := range m.byClass {
		h.Reset()
	}
	var busy sim.Time
	for _, s := range m.servers {
		busy += s.cores.BusyTime()
	}
	m.cpuBusy0 = busy
	m.hits0, m.miss0 = 0, 0
	for _, s := range m.servers {
		h, mi := s.cache.stats()
		m.hits0 += h
		m.miss0 += mi
	}
}

// Finish closes the measurement window and reports.
func (m *Model) Finish(duration sim.Time) Result {
	var busy sim.Time
	var hits, misses uint64
	for _, s := range m.servers {
		busy += s.cores.BusyTime()
		h, mi := s.cache.stats()
		hits += h
		misses += mi
	}
	res := Result{
		Mops:    float64(m.ops) / (float64(duration) / 1000),
		Lat:     m.lat,
		ByClass: m.byClass,
		Ops:     m.ops,
	}
	if m.msgs > 0 {
		res.AvgDegree = float64(m.items) / float64(m.msgs)
	}
	totalCoreTime := float64(duration) * float64(m.C.ServerCores) * float64(len(m.servers))
	res.ServerCPU = float64(busy-m.cpuBusy0) / totalCoreTime
	if d := (hits + misses) - (m.hits0 + m.miss0); d > 0 {
		res.NICMissRate = float64(misses-m.miss0) / float64(d)
	}
	return res
}

// lruCache is the NIC connection-context cache used by the models (same
// policy as the functional rnic's, duplicated here to stay allocation-free
// and engine-local).
type lruCache struct {
	capacity int
	entries  map[int]*lruNode
	head     *lruNode
	tail     *lruNode
	hits     uint64
	misses   uint64
}

type lruNode struct {
	key        int
	prev, next *lruNode
}

func newLRU(capacity int) *lruCache {
	return &lruCache{capacity: capacity, entries: make(map[int]*lruNode)}
}

func (c *lruCache) stats() (uint64, uint64) { return c.hits, c.misses }

// access touches key; true on hit.
func (c *lruCache) access(key int) bool {
	if c.capacity <= 0 {
		return true
	}
	if n := c.entries[key]; n != nil {
		c.hits++
		if c.head != n {
			c.unlink(n)
			c.pushFront(n)
		}
		return true
	}
	c.misses++
	n := &lruNode{key: key}
	c.entries[key] = n
	c.pushFront(n)
	if len(c.entries) > c.capacity {
		ev := c.tail
		c.unlink(ev)
		delete(c.entries, ev.key)
	}
	return false
}

func (c *lruCache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
