package model

import (
	"flock/internal/sim"
	"flock/internal/stats"
	"flock/internal/workload"
)

// This file models FLockTX vs FaSST (Figures 14 and 15): distributed
// transactions with OCC + 2PC + 3-way primary-backup replication over the
// RPC model. Each client thread runs 19 concurrent transaction streams
// plus a response-processing share — the paper's coroutine structure —
// against 3 servers. Transactions follow Figure 13:
//
//	execution  → one RPC per involved partition (locks write set)
//	validation → FLock: one-sided read per read-set key (no server CPU);
//	             FaSST: a validation RPC per partition (UD has no reads)
//	logging    → one RPC per replica of each written partition
//	commit     → one RPC per written partition
//
// OCC conflict aborts affect both systems identically at equal key skew
// and are not modeled; what separates the systems is per-message CPU and
// the validation path, which the model captures.

// TxnConfig parameterizes a transaction-model run.
type TxnConfig struct {
	// Workload is "tatp" or "smallbank".
	Workload string
	// Transport is TransportFlock (FLockTX) or TransportUD (FaSST).
	Transport Transport
	// Clients and ThreadsPerClient; the paper uses 20 clients.
	Clients          int
	ThreadsPerClient int
	// Streams is the concurrent transactions per thread (19 request
	// coroutines in the paper).
	Streams int
	// Servers is the partition count (3 in the paper).
	Servers int
	// Keys is the keyspace size (1M subscribers / 100k accounts ×2 keys).
	Keys uint64

	Costs    Costs
	Seed     uint64
	Warmup   sim.Time
	Duration sim.Time
	Quick    bool
}

func (c TxnConfig) withDefaults() TxnConfig {
	if c.Clients <= 0 {
		c.Clients = 20
	}
	if c.ThreadsPerClient <= 0 {
		c.ThreadsPerClient = 1
	}
	if c.Streams <= 0 {
		c.Streams = 19
	}
	if c.Servers <= 0 {
		c.Servers = 3
	}
	if c.Keys == 0 {
		c.Keys = 1_000_000
	}
	if (c.Costs == Costs{}) {
		c.Costs = DefaultCosts()
	}
	if c.Warmup == 0 {
		c.Warmup, c.Duration = durations(c.Quick)
	}
	return c
}

// Transaction-phase handler costs (server CPU per RPC), ns.
const (
	txExecBase   = 300 // message handling + store access setup
	txExecPerKey = 200 // hash probe + lock/read per key
	txValPerKey  = 120 // version re-read (RPC validation path)
	txLogCost    = 250 // replica apply
	txCommitCost = 250 // install + unlock

	// Coordinator-side CPU per transaction (request building, response
	// decoding, protocol state) charged on the client thread's serial
	// executor. Coroutines hide network latency, not this work —
	// low-thread-count configurations are client-CPU-bound, which is why
	// throughput grows with threads in Figures 14/15.
	txCoordWork = 2000
)

// TxnResult reports a transaction-model run.
type TxnResult struct {
	// Mtps is transaction throughput, millions per second.
	Mtps float64
	// Lat is the transaction latency distribution (ns).
	Lat *stats.Hist
	// AvgDegree and ServerCPU mirror the RPC-level metrics.
	AvgDegree float64
	ServerCPU float64
}

// txnDriver runs the streams over a Model.
type txnDriver struct {
	m    *Model
	cfg  TxnConfig
	gens []*genState // one per thread

	measStart sim.Time
	txns      uint64
	lat       *stats.Hist
}

type genState struct {
	tatp *workload.TATP
	sb   *workload.Smallbank
}

func (g *genState) next() workload.Txn {
	if g.tatp != nil {
		return g.tatp.Next()
	}
	return g.sb.Next()
}

// RunTxnModel executes one Figure 14/15 data point.
func RunTxnModel(cfg TxnConfig) TxnResult {
	cfg = cfg.withDefaults()
	rcfg := RPCConfig{
		Transport:        cfg.Transport,
		Costs:            cfg.Costs,
		Servers:          cfg.Servers,
		Clients:          cfg.Clients,
		ThreadsPerClient: cfg.ThreadsPerClient,
		// QPs: one per thread per server, as FLockTX (peer-thread model).
		QPsPerConn: cfg.ThreadsPerClient,
		NextReq: func(c, t int, rng *stats.RNG) ReqSpec {
			return ReqSpec{ReqSize: 64, RespSize: 64, Handler: 300}
		},
		ThreadSched: true,
		Seed:        cfg.Seed,
		Warmup:      cfg.Warmup,
		Duration:    cfg.Duration,
	}
	m := NewModel(rcfg)
	d := &txnDriver{
		m:         m,
		cfg:       cfg,
		measStart: cfg.Warmup,
		lat:       stats.NewHist(),
	}
	for i := 0; i < cfg.Clients*cfg.ThreadsPerClient; i++ {
		g := &genState{}
		seed := cfg.Seed + uint64(i)*104729 + 11
		if cfg.Workload == "smallbank" {
			g.sb = workload.NewSmallbank(seed, cfg.Keys/2)
		} else {
			g.tatp = workload.NewTATP(seed, cfg.Keys)
		}
		d.gens = append(d.gens, g)
	}
	for ti, th := range m.threads {
		for s := 0; s < cfg.Streams; s++ {
			th, ti := th, ti
			m.eng.After(sim.Time(s*37+ti%11), func() { d.stream(th, ti) })
		}
	}
	m.eng.After(cfg.Warmup, m.startMeasuring)
	m.eng.RunUntil(cfg.Warmup + cfg.Duration)
	res := m.Finish(cfg.Duration)
	return TxnResult{
		Mtps:      float64(d.txns) / (float64(cfg.Duration) / 1000),
		Lat:       d.lat,
		AvgDegree: res.AvgDegree,
		ServerCPU: res.ServerCPU,
	}
}

// stream runs one transaction after another on its thread.
func (d *txnDriver) stream(th *threadModel, threadIdx int) {
	t := d.gens[threadIdx].next()
	start := d.m.eng.Now()

	// Group keys by partition. Iteration must be deterministic (the DES
	// replays identically for a given seed), so keep first-touch order in
	// a slice rather than ranging over a map.
	type partKeys struct {
		p             int
		reads, writes int
	}
	var parts []*partKeys
	touch := func(p int) *partKeys {
		for _, pk := range parts {
			if pk.p == p {
				return pk
			}
		}
		pk := &partKeys{p: p}
		parts = append(parts, pk)
		return pk
	}
	for _, k := range t.Reads {
		touch(int(k%uint64(d.cfg.Servers))).reads++
	}
	for _, k := range t.Writes {
		touch(int(k%uint64(d.cfg.Servers))).writes++
	}

	finish := func() {
		if d.m.eng.Now() >= d.measStart {
			d.txns++
			d.lat.Record(uint64(d.m.eng.Now() - start))
		}
		d.stream(th, threadIdx) // next transaction
	}

	// Join helper: call cont after n completions.
	join := func(n int, cont func()) func() {
		if n == 0 {
			cont()
			return func() {}
		}
		remaining := n
		return func() {
			remaining--
			if remaining == 0 {
				cont()
			}
		}
	}

	// Phase 4: commit.
	commit := func() {
		nw := 0
		for _, pk := range parts {
			if pk.writes > 0 {
				nw++
			}
		}
		if nw == 0 {
			finish()
			return
		}
		j := join(nw, finish)
		for _, pk := range parts {
			if pk.writes == 0 {
				continue
			}
			spec := ReqSpec{
				ReqSize:  8 + 16*pk.writes,
				RespSize: 8,
				Handler:  txCommitCost + sim.Time(50*pk.writes),
			}
			d.m.Submit(th, pk.p, spec, func(*request) { j() })
		}
	}

	// Phase 3: logging to each replica of each written partition.
	logging := func() {
		type logTarget struct {
			server int
			keys   int
		}
		var targets []logTarget
		for _, pk := range parts {
			if pk.writes == 0 {
				continue
			}
			for r := 1; r < 3 && r < d.cfg.Servers; r++ {
				targets = append(targets, logTarget{server: (pk.p + r) % d.cfg.Servers, keys: pk.writes})
			}
		}
		if len(targets) == 0 {
			commit()
			return
		}
		j := join(len(targets), commit)
		for _, tg := range targets {
			spec := ReqSpec{
				ReqSize:  8 + 16*tg.keys,
				RespSize: 1,
				Handler:  txLogCost + sim.Time(50*tg.keys),
			}
			d.m.Submit(th, tg.server, spec, func(*request) { j() })
		}
	}

	// Phase 2: validation of the read set.
	validate := func() {
		nReads := len(t.Reads)
		if nReads == 0 {
			logging()
			return
		}
		if d.cfg.Transport == TransportFlock {
			// One-sided read per read-set key: NIC only, no server CPU.
			j := join(nReads, logging)
			for _, k := range t.Reads {
				p := int(k % uint64(d.cfg.Servers))
				d.m.OneSidedRead(th, p, 8, j)
			}
			return
		}
		// FaSST: validation RPC per partition holding read keys.
		nparts := 0
		for _, pk := range parts {
			if pk.reads > 0 {
				nparts++
			}
		}
		j := join(nparts, logging)
		for _, pk := range parts {
			if pk.reads == 0 {
				continue
			}
			spec := ReqSpec{
				ReqSize:  8 + 8*pk.reads,
				RespSize: 8 * pk.reads,
				Handler:  sim.Time(txValPerKey * pk.reads),
			}
			d.m.Submit(th, pk.p, spec, func(*request) { j() })
		}
	}

	// Phase 0: coordinator-side CPU, serialized on the thread.
	// Phase 1: execution RPC per involved partition.
	execute := func() {
		j := join(len(parts), validate)
		for _, pk := range parts {
			spec := ReqSpec{
				ReqSize:  8 + 8*(pk.reads+pk.writes),
				RespSize: 4 + 24*pk.reads + 8*pk.writes,
				Handler:  txExecBase + sim.Time(txExecPerKey*(pk.reads+pk.writes)),
			}
			d.m.Submit(th, pk.p, spec, func(*request) { j() })
		}
	}
	d.m.ThreadWork(th, txCoordWork, execute)
}

// Fig14 regenerates Figure 14: TATP over FLockTX vs FaSST, 20 clients, 3
// servers, thread sweep.
func Fig14(quick bool) []Row {
	return txnFigure("fig14", "tatp", 1_000_000, []int{1, 2, 4, 8, 16, 32}, quick)
}

// Fig15 regenerates Figure 15: Smallbank over FLockTX vs FaSST.
func Fig15(quick bool) []Row {
	return txnFigure("fig15", "smallbank", 200_000, []int{1, 2, 4, 8, 16}, quick)
}

func txnFigure(fig, wl string, keys uint64, threads []int, quick bool) []Row {
	var rows []Row
	for _, th := range threads {
		for _, s := range []struct {
			name string
			tr   Transport
		}{{"flocktx", TransportFlock}, {"fasst", TransportUD}} {
			res := RunTxnModel(TxnConfig{
				Workload:         wl,
				Transport:        s.tr,
				ThreadsPerClient: th,
				Keys:             keys,
				Quick:            quick,
			})
			rows = append(rows, Row{
				Figure: fig, Series: s.name, X: float64(th),
				Mops:   res.Mtps,
				P50us:  float64(res.Lat.Median()) / 1000,
				P99us:  float64(res.Lat.P99()) / 1000,
				Degree: res.AvgDegree,
				CPU:    res.ServerCPU,
			})
		}
	}
	return rows
}
