// Package resilience is the overload-control toolkit threaded through
// internal/core: client-side retry policies (exponential backoff with full
// jitter, token-bucket retry budgets, circuit breakers) and the
// server-side idempotent-response dedup window that makes those retries
// safe. Everything here is deterministic given a seeded RNG or an
// injected clock, so the policies are unit-testable without wall time.
//
// The package deliberately knows nothing about QPs, rings, or the wire
// format — core wires the policies into its paths and maps their outcomes
// onto typed errors (ErrOverloaded, ErrDraining, ErrCircuitOpen).
package resilience

import (
	"time"

	"flock/internal/stats"
)

// Backoff computes retry delays: exponential growth from Base doubling per
// attempt, capped at Cap, with "full jitter" — the delay is drawn
// uniformly from [0, cappedExponential] so synchronized clients that
// failed together do not retry together (the thundering-herd fix the AWS
// architecture blog popularized).
type Backoff struct {
	// Base is the attempt-0 ceiling. Must be > 0 for Delay to be nonzero.
	Base time.Duration
	// Cap bounds the exponential growth; 0 means no cap.
	Cap time.Duration
}

// Delay returns the sleep before retry number attempt (0-based: the delay
// between the first failure and the second try is attempt 0). rng supplies
// the jitter; the same seed yields the same schedule.
func (b Backoff) Delay(attempt int, rng *stats.RNG) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	d := b.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d <= 0 || (b.Cap > 0 && d >= b.Cap) {
			d = b.Cap
			if d <= 0 {
				d = 1 << 62 // uncapped overflow guard
			}
			break
		}
	}
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	// Full jitter: uniform in [0, d]. Inclusive of d, exclusive of 0 only
	// when d is 0 — a zero draw is a legitimate immediate retry.
	return time.Duration(rng.Uint64n(uint64(d) + 1))
}
