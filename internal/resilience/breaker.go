package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's three-state machine.
type BreakerState int32

const (
	// BreakerClosed passes traffic and counts failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fast-fails everything until Cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits up to Probes trial requests; one success
	// closes the breaker, one failure re-opens it.
	BreakerHalfOpen
)

// String implements fmt.Stringer for logs and test output.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "invalid"
}

// Breaker is a per-remote circuit breaker fed by completion/timeout
// telemetry. It opens after Threshold consecutive failures, stays open for
// Cooldown, then half-opens and sends up to Probes probe RPCs; a probe
// success closes it, a probe failure re-arms the cooldown. Alongside the
// consecutive counter it maintains an EWMA of the failure indicator — a
// phi-accrual-style health score in [0,1] the telemetry layer exports, so
// operators see a remote degrading before the breaker trips.
//
// The clock is injected (Now) so state transitions are deterministic in
// tests; a nil Now uses time.Now.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	probes    int
	now       func() time.Time

	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	inflight int       // probes admitted while half-open
	ewma     float64   // failure-rate EWMA, 1 = everything failing
	samples  uint64
}

// ewmaWeight is the per-sample weight of the failure EWMA: roughly the
// last 32 samples dominate. Exported health is advisory only, so the
// constant is not tunable.
const ewmaWeight = 1.0 / 32

// NewBreaker returns a closed breaker. threshold ≤ 0 is remapped to 1;
// probes ≤ 0 to 1; cooldown ≤ 0 to 1ms so an open breaker always heals.
func NewBreaker(threshold int, cooldown time.Duration, probes int, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 1
	}
	if probes <= 0 {
		probes = 1
	}
	if cooldown <= 0 {
		cooldown = time.Millisecond
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, probes: probes, now: now}
}

// Allow reports whether a request may be sent. While open it returns false
// until Cooldown has elapsed, then transitions to half-open and admits up
// to Probes callers as probes.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.inflight = 0
		fallthrough
	default: // half-open
		if b.inflight >= b.probes {
			return false
		}
		b.inflight++
		return true
	}
}

// Success records a completed request. A half-open probe success closes
// the breaker and resets the failure count.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.observe(0)
	b.fails = 0
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.inflight = 0
	}
}

// Failure records a failed request (timeout, broken QP, pushback). It
// returns true when this failure transitioned the breaker to open — the
// caller counts those transitions in telemetry.
func (b *Breaker) Failure() (opened bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.observe(1)
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
			return true
		}
	case BreakerHalfOpen:
		// The probe failed: back to open, cooldown re-armed.
		b.trip()
		return true
	}
	return false
}

// ForceOpen trips the breaker immediately — the hook for external fault
// evidence such as a QP quarantine, which is stronger than any single
// request failure. Returns true when the state actually changed to open.
func (b *Breaker) ForceOpen() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		return false
	}
	b.trip()
	return true
}

// trip moves to open; caller holds mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.inflight = 0
}

// observe folds one failure indicator into the EWMA; caller holds mu.
func (b *Breaker) observe(fail float64) {
	b.samples++
	if b.samples == 1 {
		b.ewma = fail
		return
	}
	b.ewma += ewmaWeight * (fail - b.ewma)
}

// State reports the current state, applying the open→half-open clock
// transition so observers never see a stale "open" past its cooldown.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.state = BreakerHalfOpen
		b.inflight = 0
	}
	return b.state
}

// Health returns 1-EWMA: 1 means every recent request succeeded, 0 means
// everything is failing.
func (b *Breaker) Health() float64 {
	if b == nil {
		return 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return 1 - b.ewma
}
