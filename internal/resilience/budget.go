package resilience

import "sync"

// Budget is a token-bucket retry budget (the self-extinguishing-retries
// policy): every successful first attempt earns Ratio tokens, every retry
// spends one. Under transient failure the bucket drains slowly and retries
// flow; under sustained overload successes stop, the bucket empties, and
// retries extinguish themselves instead of amplifying the overload into
// congestion collapse. The bucket starts full (Burst tokens) so a cold
// client can ride out a fault burst.
//
// Tokens are tracked in milli-token units so fractional earn rates (the
// conventional 0.1 retries-per-request) stay exact.
type Budget struct {
	mu     sync.Mutex
	milli  int64 // current tokens ×1000
	burst  int64 // cap, ×1000
	earn   int64 // per-success earn, ×1000
	denied uint64
}

// NewBudget returns a budget earning ratio tokens per success, holding at
// most burst tokens, starting full. ratio ≤ 0 earns nothing; burst ≤ 0 is
// remapped to 1 so TryRetry can ever succeed after successes.
func NewBudget(ratio float64, burst int) *Budget {
	if burst <= 0 {
		burst = 1
	}
	earn := int64(ratio * 1000)
	if earn < 0 {
		earn = 0
	}
	return &Budget{
		milli: int64(burst) * 1000,
		burst: int64(burst) * 1000,
		earn:  earn,
	}
}

// OnSuccess credits the budget for one successful (non-retry) request.
func (b *Budget) OnSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.milli += b.earn
	if b.milli > b.burst {
		b.milli = b.burst
	}
	b.mu.Unlock()
}

// TryRetry spends one token; a false return means the budget is exhausted
// and the retry must not be sent.
func (b *Budget) TryRetry() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.milli < 1000 {
		b.denied++
		return false
	}
	b.milli -= 1000
	return true
}

// Tokens reports the current whole-token balance (observability/tests).
func (b *Budget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return float64(b.milli) / 1000
}

// Denied reports how many retries the budget has refused.
func (b *Budget) Denied() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}
