package resilience

import "sync"

// DedupKey identifies one logical RPC across retries: the sender's thread
// ID plus the per-thread idempotency key carried in the wire metadata.
type DedupKey struct {
	Thread uint32
	Key    uint64
}

// DedupResult is a cached response: the status and an owned copy of the
// payload. Data is immutable once committed — readers may alias it.
type DedupResult struct {
	Status uint32
	Data   []byte
}

// DedupOutcome classifies a Begin call.
type DedupOutcome int

const (
	// DedupExecute: the key is new and now reserved; the caller must run
	// the handler and Commit (or Abort on the way out of a dying server).
	DedupExecute DedupOutcome = iota
	// DedupHit: the original already executed; respond with the cached
	// result instead of running the handler again.
	DedupHit
	// DedupInflight: another worker is executing this key right now. The
	// caller must not execute a second copy; it answers with a retryable
	// pushback and the client's next retry finds the committed result.
	DedupInflight
)

// DedupWindow is the bounded server-side response cache that makes client
// retries exactly-once within the window: a retried RPC whose original
// executed returns the cached response rather than re-executing. Entries
// are keyed by (thread, idempotency key); completed entries are evicted
// FIFO once the window exceeds its capacity. Reservations (in-flight
// executions) never block and are never evicted, which keeps the
// guarantee that two executions of one key cannot be concurrent.
type DedupWindow struct {
	mu      sync.Mutex
	cap     int
	entries map[DedupKey]*dedupEntry
	fifo    []DedupKey // completed keys in commit order
	hits    uint64
	races   uint64
}

type dedupEntry struct {
	done bool
	res  DedupResult
}

// NewDedupWindow returns a window caching up to capacity completed
// responses; capacity ≤ 0 is remapped to 1.
func NewDedupWindow(capacity int) *DedupWindow {
	if capacity <= 0 {
		capacity = 1
	}
	return &DedupWindow{
		cap:     capacity,
		entries: make(map[DedupKey]*dedupEntry, capacity),
	}
}

// Begin looks up k, reserving it for execution when absent. The outcome
// tells the caller whether to execute, replay the cached result, or push
// back on a racing duplicate.
func (w *DedupWindow) Begin(k DedupKey) (DedupResult, DedupOutcome) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if e, ok := w.entries[k]; ok {
		if e.done {
			w.hits++
			return e.res, DedupHit
		}
		w.races++
		return DedupResult{}, DedupInflight
	}
	w.entries[k] = &dedupEntry{}
	return DedupResult{}, DedupExecute
}

// Commit publishes the result of a reservation made by Begin and evicts
// the oldest completed entries beyond capacity. res.Data must be owned by
// the window (the caller copies before committing).
func (w *DedupWindow) Commit(k DedupKey, res DedupResult) {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.entries[k]
	if !ok || e.done {
		return
	}
	e.done = true
	e.res = res
	w.fifo = append(w.fifo, k)
	for len(w.fifo) > w.cap {
		old := w.fifo[0]
		w.fifo = w.fifo[1:]
		if oe, ok := w.entries[old]; ok && oe.done {
			delete(w.entries, old)
		}
	}
}

// Abort drops a reservation without committing (server shutting down
// between Begin and Commit), so a later retry can execute.
func (w *DedupWindow) Abort(k DedupKey) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if e, ok := w.entries[k]; ok && !e.done {
		delete(w.entries, k)
	}
}

// Hits reports replayed responses; Races reports in-flight duplicate
// pushbacks. Len reports resident entries (observability/tests).
func (w *DedupWindow) Hits() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hits
}

// Races reports Begin calls that found the key still executing.
func (w *DedupWindow) Races() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.races
}

// Len reports resident entries, reservations included.
func (w *DedupWindow) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}
