package resilience

// Detector is a deterministic consecutive-miss failure detector: the
// accrual logic cluster membership runs per member on top of its ping
// RPCs. Observe feeds it one probe outcome at a time; the state walks
// Live → Suspect → Dead as misses accumulate and snaps back to Live on
// any success (a rejoining member is trusted immediately — the shard
// rebalance, not the detector, is what takes time). It has no clock and
// no goroutines, so membership tests drive it tick by tick.
type Detector struct {
	// SuspectAfter and DeadAfter are the consecutive-miss thresholds.
	// Zero values fall back to 2 and 4.
	SuspectAfter int
	DeadAfter    int

	misses int
	state  MemberState
}

// MemberState is the detector's verdict on one member.
type MemberState int32

const (
	// MemberLive: probes are answered; route to it.
	MemberLive MemberState = iota
	// MemberSuspect: recent probes missed; keep routing but prepare to
	// fail over.
	MemberSuspect
	// MemberDead: the miss budget is exhausted; route around it and
	// rebalance its shards away.
	MemberDead
	// MemberDraining: the member answered with a drain pushback — it is
	// healthy but refusing new work (planned decommission).
	MemberDraining
)

func (s MemberState) String() string {
	switch s {
	case MemberLive:
		return "live"
	case MemberSuspect:
		return "suspect"
	case MemberDead:
		return "dead"
	case MemberDraining:
		return "draining"
	}
	return "unknown"
}

func (d *Detector) thresholds() (suspect, dead int) {
	suspect, dead = d.SuspectAfter, d.DeadAfter
	if suspect <= 0 {
		suspect = 2
	}
	if dead <= 0 {
		dead = 4
	}
	if dead < suspect {
		dead = suspect
	}
	return suspect, dead
}

// Observe feeds one probe outcome and returns the resulting state. A
// success resets the miss count and revives even a dead member; a miss
// advances the Live → Suspect → Dead walk.
func (d *Detector) Observe(ok bool) MemberState {
	if ok {
		d.misses = 0
		d.state = MemberLive
		return d.state
	}
	d.misses++
	suspect, dead := d.thresholds()
	switch {
	case d.misses >= dead:
		d.state = MemberDead
	case d.misses >= suspect:
		d.state = MemberSuspect
	default:
		d.state = MemberLive
	}
	return d.state
}

// ObserveDraining records a drain pushback: the member is reachable, so
// the miss count resets, but it is advertising a planned decommission.
func (d *Detector) ObserveDraining() MemberState {
	d.misses = 0
	d.state = MemberDraining
	return d.state
}

// State returns the current verdict without feeding an observation.
func (d *Detector) State() MemberState { return d.state }

// Misses returns the current consecutive-miss count.
func (d *Detector) Misses() int { return d.misses }
