package resilience

import "testing"

func TestDetectorWalk(t *testing.T) {
	cases := []struct {
		name     string
		suspect  int
		dead     int
		outcomes []bool
		want     []MemberState
	}{
		{
			name:     "defaults walk live-suspect-dead",
			outcomes: []bool{false, false, false, false},
			want:     []MemberState{MemberLive, MemberSuspect, MemberSuspect, MemberDead},
		},
		{
			name:     "success resets the miss count",
			outcomes: []bool{false, true, false, false, false, false},
			want: []MemberState{MemberLive, MemberLive, MemberLive, MemberSuspect,
				MemberSuspect, MemberDead},
		},
		{
			name:     "dead member revives on one success",
			outcomes: []bool{false, false, false, false, true},
			want: []MemberState{MemberLive, MemberSuspect, MemberSuspect,
				MemberDead, MemberLive},
		},
		{
			name:     "custom thresholds",
			suspect:  1,
			dead:     2,
			outcomes: []bool{false, false, false},
			want:     []MemberState{MemberSuspect, MemberDead, MemberDead},
		},
		{
			name:     "dead floor never below suspect",
			suspect:  3,
			dead:     1,
			outcomes: []bool{false, false, false},
			want:     []MemberState{MemberLive, MemberLive, MemberDead},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := &Detector{SuspectAfter: tc.suspect, DeadAfter: tc.dead}
			for i, ok := range tc.outcomes {
				if got := d.Observe(ok); got != tc.want[i] {
					t.Fatalf("step %d: Observe(%v) = %v, want %v", i, ok, got, tc.want[i])
				}
				if got := d.State(); got != tc.want[i] {
					t.Fatalf("step %d: State() = %v, want %v", i, got, tc.want[i])
				}
			}
		})
	}
}

func TestDetectorDraining(t *testing.T) {
	d := &Detector{}
	d.Observe(false)
	d.Observe(false)
	if got := d.ObserveDraining(); got != MemberDraining {
		t.Fatalf("ObserveDraining = %v", got)
	}
	if d.Misses() != 0 {
		t.Fatalf("draining should reset misses, got %d", d.Misses())
	}
	// Draining is sticky until the next observation.
	if got := d.Observe(true); got != MemberLive {
		t.Fatalf("post-drain success = %v, want live", got)
	}
}

func TestMemberStateString(t *testing.T) {
	for s, want := range map[MemberState]string{
		MemberLive: "live", MemberSuspect: "suspect",
		MemberDead: "dead", MemberDraining: "draining",
		MemberState(9): "unknown",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
